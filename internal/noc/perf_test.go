package noc

import (
	"testing"

	"nord/internal/traffic"
)

func benchNet(b *testing.B, d Design, w, h int, rate float64) {
	p := DefaultParams(d)
	p.Width, p.Height = w, h
	n := MustNew(p)
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, rate, 1)
	n.BeginMeasurement()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
}

func BenchmarkTick16NoPG(b *testing.B) { benchNet(b, NoPG, 4, 4, 0.05) }
func BenchmarkTick16NoRD(b *testing.B) { benchNet(b, NoRD, 4, 4, 0.05) }
func BenchmarkTick64NoRD(b *testing.B) { benchNet(b, NoRD, 8, 8, 0.05) }
func BenchmarkTick64NoPG(b *testing.B) { benchNet(b, NoPG, 8, 8, 0.05) }
