package noc

import (
	"fmt"
	"testing"
	"time"

	"nord/internal/topology"
	"nord/internal/traffic"
)

func benchNet(b *testing.B, d Design, w, h int, rate float64) {
	p := DefaultParams(d)
	p.Width, p.Height = w, h
	n := MustNew(p)
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, rate, 1)
	n.BeginMeasurement()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
}

func BenchmarkTick16NoPG(b *testing.B) { benchNet(b, NoPG, 4, 4, 0.05) }
func BenchmarkTick16NoRD(b *testing.B) { benchNet(b, NoRD, 4, 4, 0.05) }
func BenchmarkTick64NoRD(b *testing.B) { benchNet(b, NoRD, 8, 8, 0.05) }
func BenchmarkTick64NoPG(b *testing.B) { benchNet(b, NoPG, 8, 8, 0.05) }

// kernelRates is the standard load matrix of the benchmark-regression
// harness: low (most routers dormant), mid, and saturation load in
// flits/node/cycle on an 8x8 mesh.
var kernelRates = []float64{0.02, 0.10, 0.30}

// BenchmarkKernel is the regression matrix consumed by CI and by
// `nordbench -kernel`: 8x8 mesh x 4 designs x 3 loads, reporting
// simulated cycles/sec on top of the usual ns/op and allocs/op.
func BenchmarkKernel(b *testing.B) {
	for _, d := range []Design{NoPG, ConvPG, ConvPGOpt, NoRD} {
		for _, rate := range kernelRates {
			b.Run(fmt.Sprintf("%s/rate%.2f", d, rate), func(b *testing.B) {
				p := DefaultParams(d)
				p.Width, p.Height = 8, 8
				n := MustNew(p)
				inj := traffic.NewSynthetic(n, traffic.UniformRandom, rate, 1)
				// Warm up: fills the pools, settles gating, reaches the
				// steady state the harness is meant to measure.
				for c := 0; c < 2000; c++ {
					inj.Tick(n.Cycle())
					n.Tick()
				}
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					inj.Tick(n.Cycle())
					n.Tick()
				}
				if el := time.Since(start).Seconds(); el > 0 {
					b.ReportMetric(float64(b.N)/el, "cycles/sec")
				}
			})
		}
	}
}

// BenchmarkKernelParallel is the sharded-kernel scaling matrix: NoRD on
// 16x16/32x32/64x64 meshes at every shard count the BENCH_kernel.json
// scaling points use. Loads drop with mesh size to stay below the
// uniform-random saturation bound (~1/width), matching
// sim.KernelScalingMeshes; P=1 is the same code path run single-shard —
// the speedup denominator.
func BenchmarkKernelParallel(b *testing.B) {
	for _, m := range []struct {
		w    int
		rate float64
	}{{16, 0.10}, {32, 0.05}, {64, 0.02}} {
		for _, cpus := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("NoRD/%dx%d/P%d", m.w, m.w, cpus), func(b *testing.B) {
				p := DefaultParams(NoRD)
				p.Width, p.Height = m.w, m.w
				p.Parallelism = cpus
				n := MustNew(p)
				defer n.Close()
				inj := traffic.NewSynthetic(n, traffic.UniformRandom, m.rate, 1)
				for c := 0; c < 2000; c++ {
					inj.Tick(n.Cycle())
					n.Tick()
				}
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					inj.Tick(n.Cycle())
					n.Tick()
				}
				if el := time.Since(start).Seconds(); el > 0 {
					b.ReportMetric(float64(b.N)/el, "cycles/sec")
				}
			})
		}
	}
}

// TestSteadyStateZeroAllocs proves the tick hot path is allocation-free
// in steady state for all four designs and all three topologies: after
// warmup, whole simulated cycles (traffic generation included) must not
// allocate. The topology interface calls, the torus dateline escape-VC
// computation, and the concentrated local-port crossbar slots are all on
// the hot path and must not escape to the heap.
func TestSteadyStateZeroAllocs(t *testing.T) {
	for _, topo := range []topology.Kind{topology.KindMesh, topology.KindTorus, topology.KindCMesh} {
		for _, d := range []Design{NoPG, ConvPG, ConvPGOpt, NoRD} {
			t.Run(fmt.Sprintf("%s/%s", d, topo), func(t *testing.T) {
				p := DefaultParams(d)
				p.Width, p.Height = 8, 8
				p.Topology = topo
				n := MustNew(p)
				inj := traffic.NewSynthetic(n, traffic.UniformRandom, 0.02, 11)
				for c := 0; c < 5000; c++ {
					inj.Tick(n.Cycle())
					n.Tick()
				}
				avg := testing.AllocsPerRun(300, func() {
					inj.Tick(n.Cycle())
					n.Tick()
				})
				if avg != 0 {
					t.Errorf("%s/%s: steady-state tick allocates %.4f allocs/op, want 0", d, topo, avg)
				}
			})
		}
	}
}
