// Package noc implements the cycle-level on-chip network: canonical
// 4-stage (RC, VA, SA, ST + LT) wormhole virtual-channel routers on a 2D
// mesh with credit-based flow control, adaptive routing with Duato-protocol
// escape resources, and the four power-gating designs the paper compares
// (No_PG, Conv_PG, Conv_PG_OPT and NoRD with its decoupling bypass ring).
package noc

import (
	"fmt"
	"strings"

	"nord/internal/topology"
)

// Design selects the power-gating scheme (Section 5.1's comparison set).
type Design int

const (
	// NoPG is the baseline without power-gating: routers are always on.
	NoPG Design = iota
	// ConvPG applies conventional power-gating: a router gates off when
	// its datapath is empty and wakes when a neighbor's switch-allocation
	// request or the local NI needs it, exposing the full wakeup latency.
	ConvPG
	// ConvPGOpt is ConvPG optimised with early wakeup: the WU signal is
	// generated as soon as the upstream route is computed, hiding
	// EarlyWakeupCycles of the wakeup latency and avoiding gate-offs for
	// idle periods shorter than the early-wakeup horizon.
	ConvPGOpt
	// NoRD decouples nodes from routers with the bypass ring: packets are
	// sent, received and forwarded through the NI bypass of gated-off
	// routers, and wakeups are driven by the NI VC-request metric.
	NoRD
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case NoPG:
		return "No_PG"
	case ConvPG:
		return "Conv_PG"
	case ConvPGOpt:
		return "Conv_PG_OPT"
	case NoRD:
		return "NoRD"
	default:
		return fmt.Sprintf("design(%d)", int(d))
	}
}

// PowerGated reports whether the design gates routers at all.
func (d Design) PowerGated() bool { return d != NoPG }

// Designs returns the paper's full comparison set in presentation order.
func Designs() []Design { return []Design{NoPG, ConvPG, ConvPGOpt, NoRD} }

// DesignByName parses a design name: the canonical String() forms
// (case-insensitively) plus the short aliases the CLIs and the serve API
// accept.
func DesignByName(s string) (Design, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "no_pg", "nopg", "baseline":
		return NoPG, nil
	case "conv_pg", "conv", "convpg":
		return ConvPG, nil
	case "conv_pg_opt", "opt", "convpgopt":
		return ConvPGOpt, nil
	case "nord":
		return NoRD, nil
	}
	return 0, fmt.Errorf("noc: unknown design %q (no_pg, conv_pg, conv_pg_opt, nord)", s)
}

// Params configures a network. The zero value is not usable; start from
// DefaultParams.
type Params struct {
	// Width, Height give the router-grid dimensions (Table 1: 4x4 and
	// 8x8). For the concentrated mesh this is the router grid; the
	// terminal grid is twice as large in each dimension.
	Width, Height int
	// Topology selects the network topology: the zero value is the 2D
	// mesh; KindTorus adds wraparound links (with a second escape VC for
	// the dateline discipline); KindCMesh concentrates 4 terminals per
	// router behind a widened local port.
	Topology topology.Kind
	// Classes is the number of protocol classes (1 for synthetic traffic,
	// 2 for the coherence substrate: requests and responses).
	Classes int
	// VCsPerClass is the number of virtual channels per protocol class
	// (Table 1: 4). Within a class, escape VCs come first: 1 for
	// conventional designs (XY escape), 2 for NoRD (ring escape with a
	// dateline); the remainder are adaptive.
	VCsPerClass int
	// BufferDepth is the input-buffer depth in flits (Table 1: 5).
	BufferDepth int
	// Design selects the power-gating scheme.
	Design Design
	// WakeupLatency is the cycles needed to power a router back on
	// (Section 5.1: 12 cycles = 4ns at 3GHz).
	WakeupLatency int
	// EarlyWakeupCycles is the wakeup latency hidden by early WU
	// generation in Conv_PG_OPT (Section 5.1: 3).
	EarlyWakeupCycles int
	// GateIdleCycles is the consecutive empty cycles a router requires
	// before gating off, covering flits in the ST and LT stages of
	// neighbors (the IC signal of Section 4.3: 2 cycles).
	GateIdleCycles int
	// MisrouteCap bounds the non-minimal hops a NoRD packet may take on
	// adaptive resources before being forced onto the escape ring
	// (Section 4.2's livelock bound).
	MisrouteCap int
	// WakeupWindow is the sliding window (cycles) of the NoRD VC-request
	// wakeup metric (Section 4.3: 10).
	WakeupWindow int
	// ThresholdPerf / ThresholdPower are the asymmetric wakeup thresholds
	// (Section 6.1 picks 1 for performance-centric routers and 3 for
	// power-centric routers on the paper's metric; this implementation's
	// blocked-request metric calibrates empirically to 1 and 6 — the same
	// methodology, re-run against this simulator, per Section 6.1's
	// "determined empirically").
	ThresholdPerf, ThresholdPower int
	// PerfCentric lists the performance-centric router IDs (Section 4.4;
	// the Figure 6 planner picks {4,5,6,7,13,14} for the 4x4 mesh). Nil
	// means all routers are power-centric.
	PerfCentric []int
	// ForcedOff keeps every router asleep regardless of load, the
	// Figure 7 methodology for measuring pure bypass-ring throughput.
	ForcedOff bool
	// InjectQueueDepth is the per-class NI injection queue capacity in
	// packets; injection fails (backpressure) when full.
	InjectQueueDepth int
	// StarvationLimit grants the local node priority over bypass-forward
	// traffic after this many consecutive blocked cycles (Section 4.2).
	StarvationLimit int
	// MaxIdlePeriod bounds the idle-period histogram in cycles.
	MaxIdlePeriod int
	// RingOrder optionally overrides the bypass-ring node sequence
	// (must be a Hamiltonian cycle); nil selects the comb serpentine.
	RingOrder []int
	// AggressiveBypass enables the Section 6.8 optimisation: when a flit
	// arriving at a gated-off router's Bypass Inport can proceed
	// immediately (downstream VC and credit available, no conflicting
	// traffic at the NI), it is forwarded combinationally from Bypass
	// Inport to Bypass Outport in a single cycle instead of the 2-cycle
	// latch pipeline. On conflict it falls back to the normal bypass.
	AggressiveBypass bool
	// TwoStageRouter shortens the powered-on pipeline from the canonical
	// 4 stages to 2 (look-ahead routing folds RC into VA; speculative SA
	// folds ST into SA), the Section 6.8 baseline variant. Contention
	// makes speculation fail naturally, adding cycles back. When set,
	// EarlyWakeupCycles should usually be reduced to 1: a shorter
	// pipeline hides fewer wakeup cycles.
	TwoStageRouter bool
	// DynamicClassify enables the Section 4.4 extension the paper leaves
	// as future work: instead of a fixed planner-chosen
	// performance-centric class, routers are re-ranked every
	// ReclassifyPeriod cycles by observed demand, and the busiest 3N/8
	// get the performance-centric thresholds.
	DynamicClassify bool
	// ReclassifyPeriod is the re-ranking interval in cycles for
	// DynamicClassify (default 2048).
	ReclassifyPeriod int
	// WatchdogLimit is the no-progress horizon (cycles) after which the
	// deadlock watchdog raises a DeadlockError; 0 selects the default
	// (50k cycles). Fault-injection tests lower it so partitioned runs
	// fail fast.
	WatchdogLimit int
	// FullScanTick is a debug flag that disables the event-sparse kernel:
	// every node is ticked every cycle, as the original kernel did. The
	// two kernels are behaviour-identical by construction; the golden
	// determinism test compares their statistics bit for bit. Attaching a
	// fault schedule forces full-scan mode regardless of this flag.
	FullScanTick bool
	// Parallelism selects the sharded parallel tick kernel: the mesh (and
	// the NoRD bypass ring) is partitioned into this many contiguous
	// spatial domains, each ticked by a pinned worker goroutine, with
	// cross-shard link/credit traffic committed at deterministic phase
	// barriers in fixed (shard, source, port) order. 0 and 1 both select
	// the serial kernel, which is the single-shard special case of the
	// same code path; values above the node count are clamped. Results
	// are bit-identical across all parallelism levels (the golden
	// TestParallelMatchesSerial equivalence).
	Parallelism int
}

// DefaultParams returns the paper's Table 1 configuration for a given
// design on a 4x4 mesh with one protocol class.
func DefaultParams(d Design) Params {
	return Params{
		Width: 4, Height: 4,
		Classes:           1,
		VCsPerClass:       4,
		BufferDepth:       5,
		Design:            d,
		WakeupLatency:     12,
		EarlyWakeupCycles: 3,
		GateIdleCycles:    2,
		MisrouteCap:       2,
		WakeupWindow:      10,
		ThresholdPerf:     1,
		ThresholdPower:    6,
		InjectQueueDepth:  16,
		StarvationLimit:   8,
		MaxIdlePeriod:     4096,
		ReclassifyPeriod:  2048,
	}
}

// Validate checks parameter consistency.
func (p *Params) Validate() error {
	if p.Width < 2 || p.Height < 2 {
		return fmt.Errorf("noc: router grid must be at least 2x2, got %dx%d", p.Width, p.Height)
	}
	if _, err := topology.New(p.Topology, p.Width, p.Height); err != nil {
		return err
	}
	if p.Classes < 1 {
		return fmt.Errorf("noc: need at least one protocol class, got %d", p.Classes)
	}
	// Escape VCs (the ring dateline pair for NoRD, the torus dateline
	// pair for conventional designs) plus at least one adaptive VC.
	minVCs := p.escapeVCs() + 1
	if p.VCsPerClass < minVCs {
		return fmt.Errorf("noc: design %v on %v needs at least %d VCs per class, got %d",
			p.Design, p.Topology, minVCs, p.VCsPerClass)
	}
	if p.vcsPerPort() > 64 {
		// The per-phase VC occupancy masks carry one bit per VC and port.
		return fmt.Errorf("noc: at most 64 VCs per port supported, got %d", p.vcsPerPort())
	}
	if p.BufferDepth < 1 {
		return fmt.Errorf("noc: buffer depth must be positive, got %d", p.BufferDepth)
	}
	if p.Design.PowerGated() && p.WakeupLatency < 1 {
		return fmt.Errorf("noc: wakeup latency must be positive, got %d", p.WakeupLatency)
	}
	if p.EarlyWakeupCycles < 0 || p.GateIdleCycles < 0 || p.MisrouteCap < 0 {
		return fmt.Errorf("noc: negative pipeline parameter")
	}
	if p.Design == NoRD {
		if p.WakeupWindow < 1 {
			return fmt.Errorf("noc: NoRD wakeup window must be positive, got %d", p.WakeupWindow)
		}
		if p.ThresholdPerf < 1 || p.ThresholdPower < 1 {
			return fmt.Errorf("noc: NoRD wakeup thresholds must be positive")
		}
	}
	if p.InjectQueueDepth < 1 {
		return fmt.Errorf("noc: injection queue depth must be positive, got %d", p.InjectQueueDepth)
	}
	if p.MaxIdlePeriod < 1 {
		return fmt.Errorf("noc: max idle period must be positive, got %d", p.MaxIdlePeriod)
	}
	for _, id := range p.PerfCentric {
		if id < 0 || id >= p.Width*p.Height {
			return fmt.Errorf("noc: performance-centric router %d out of range", id)
		}
	}
	if p.DynamicClassify && p.ReclassifyPeriod < 1 {
		return fmt.Errorf("noc: dynamic classification needs a positive reclassify period")
	}
	if p.WatchdogLimit < 0 {
		return fmt.Errorf("noc: watchdog limit must be non-negative, got %d", p.WatchdogLimit)
	}
	if p.Parallelism < 0 {
		return fmt.Errorf("noc: parallelism must be non-negative, got %d", p.Parallelism)
	}
	return nil
}

// vcsPerPort returns the total number of VCs at each router port.
func (p *Params) vcsPerPort() int { return p.Classes * p.VCsPerClass }

// escapeVCs returns the number of escape VCs per class. NoRD always uses
// the ring dateline pair; conventional designs need one XY escape VC on a
// mesh (or cmesh) and a dateline pair on a torus, whose wrap links close
// rings the single-VC Duato escape cannot break.
func (p *Params) escapeVCs() int {
	if p.Design == NoRD || p.Topology == topology.KindTorus {
		return 2
	}
	return 1
}

// vcBase returns the first VC index of class c.
func (p *Params) vcBase(c int) int { return c * p.VCsPerClass }

// NumNodes returns the router count.
func (p *Params) NumNodes() int { return p.Width * p.Height }
