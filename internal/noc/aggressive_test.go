package noc

import (
	"testing"

	"nord/internal/flit"
	"nord/internal/traffic"
)

// TestAggressiveBypassOneCycleHop: with the Section 6.8 optimisation an
// uncontended flit crosses a gated-off router in a single cycle instead
// of the 2-cycle latch pipeline + link.
func TestAggressiveBypassOneCycleHop(t *testing.T) {
	lat := map[bool]uint64{}
	for _, aggr := range []bool{false, true} {
		p := DefaultParams(NoRD)
		p.ForcedOff = true
		p.AggressiveBypass = aggr
		n := MustNew(p)
		n.BeginMeasurement()
		pkt := n.NewPacket(0, 4, flit.ClassRequest, 1) // 15 ring hops
		n.Inject(pkt)
		got := runUntilDelivered(t, n, 1, 1000)
		lat[aggr] = got[0].at - pkt.InjectTime
	}
	// Normal: 4 + 3*14 = 46. Aggressive: transit hops collapse to ~1
	// cycle each.
	if lat[true] >= lat[false] {
		t.Fatalf("aggressive bypass (%d) not faster than normal (%d)", lat[true], lat[false])
	}
	if lat[true] > 25 {
		t.Errorf("aggressive ring traversal took %d cycles, expected ~18", lat[true])
	}
}

// TestAggressiveBypassUnderLoad: correctness (delivery, conservation,
// quiescent credits) holds with the speculative path under contention,
// where it must constantly fall back to the latch pipeline.
func TestAggressiveBypassUnderLoad(t *testing.T) {
	p := DefaultParams(NoRD)
	p.AggressiveBypass = true
	stressOne(t, p, traffic.UniformRandom, 0.15, 6000, 77)
	p.ForcedOff = true
	stressOne(t, p, traffic.UniformRandom, 0.02, 5000, 78)
}

// TestTwoStageRouterLatency: the 2-stage pipeline yields 3-cycle hops
// instead of 5 at zero load.
func TestTwoStageRouterLatency(t *testing.T) {
	p := DefaultParams(NoPG)
	p.TwoStageRouter = true
	n := MustNew(p)
	n.BeginMeasurement()
	pkt := n.NewPacket(0, 3, flit.ClassRequest, 1)
	n.Inject(pkt)
	got := runUntilDelivered(t, n, 1, 1000)
	lat := got[0].at - pkt.InjectTime
	const want = 14 // inject 3 + 3 hops x 3 + 2 eject
	if lat != want {
		t.Errorf("2-stage zero-load latency = %d, want %d", lat, want)
	}
}

// TestTwoStageRouterUnderLoad: all designs stay correct with the short
// pipeline.
func TestTwoStageRouterUnderLoad(t *testing.T) {
	for _, d := range []Design{NoPG, ConvPGOpt, NoRD} {
		p := DefaultParams(d)
		p.TwoStageRouter = true
		if d != NoPG {
			p.EarlyWakeupCycles = 1
		}
		stressOne(t, p, traffic.UniformRandom, 0.10, 6000, 79)
	}
}

// TestSection68Competitiveness reproduces the Section 6.8 argument: when
// both the baseline and NoRD are optimised (2-stage pipeline, aggressive
// bypass), NoRD stays competitive with the optimised conventional design.
func TestSection68Competitiveness(t *testing.T) {
	run := func(d Design, aggr bool) float64 {
		p := DefaultParams(d)
		p.TwoStageRouter = true
		p.EarlyWakeupCycles = 1
		p.AggressiveBypass = aggr
		if d == NoRD {
			p.PerfCentric = []int{2, 4, 5, 6, 10, 14}
		}
		n := MustNew(p)
		inj := traffic.NewSynthetic(n, traffic.UniformRandom, 0.05, 80)
		for c := 0; c < 4000; c++ {
			inj.Tick(n.Cycle())
			n.Tick()
		}
		n.BeginMeasurement()
		for c := 0; c < 25_000; c++ {
			inj.Tick(n.Cycle())
			n.Tick()
		}
		return n.Collector().AvgPacketLatency()
	}
	opt := run(ConvPGOpt, false)
	nord := run(NoRD, true)
	// "There are no clear advantages for the baseline, and NoRD remains
	// competitive": allow a modest band rather than requiring a win.
	if nord > opt*1.25 {
		t.Errorf("2-stage NoRD latency %.1f not competitive with 2-stage Conv_PG_OPT %.1f", nord, opt)
	}
}
