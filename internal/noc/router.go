package noc

import (
	"fmt"
	"math/bits"

	"nord/internal/fault"
	"nord/internal/flit"
	"nord/internal/topology"
)

// powerState is a router's power-gating state.
type powerState uint8

const (
	powerOn powerState = iota
	powerOff
	powerWaking
)

// String implements fmt.Stringer.
func (s powerState) String() string {
	switch s {
	case powerOn:
		return "on"
	case powerOff:
		return "off"
	case powerWaking:
		return "waking"
	default:
		return "?"
	}
}

// vcPhase is the state machine of one input virtual channel.
type vcPhase uint8

const (
	vcIdle     vcPhase = iota
	vcRouting          // head at front, route computation pending
	vcWaitVA           // route computed, awaiting an output VC
	vcActive           // output VC held; flits move in SA
	vcWaitWake         // conventional designs: stalled waking a gated-off router
)

// owner identifies the holder of an output VC: a (input port, input VC)
// pair, or the NI bypass engine of a gated-off router.
type owner struct {
	port topology.Dir
	vc   int16
}

const (
	ownerFreePort   topology.Dir = 0xFE
	ownerBypassPort topology.Dir = 0xFD
)

var ownerFree = owner{port: ownerFreePort}

// vcState is one input virtual channel.
type vcState struct {
	buf     []*flit.Flit
	phase   vcPhase
	route   topology.Dir
	outVC   int
	escape  bool // the allocation uses escape resources
	target  int  // router being awoken while in vcWaitWake
	wuFrom  uint64
	stallAt uint64 // cycle the wait began, for wakeup-stall stats
	vaFails int    // consecutive failed VA attempts (forces escape/wake)
	// port/vcIdx locate this VC in its router (the bit it owns in the
	// per-phase occupancy masks).
	port  uint8
	vcIdx uint8
}

func (v *vcState) empty() bool { return len(v.buf) == 0 }

func (v *vcState) head() *flit.Flit {
	if len(v.buf) == 0 {
		return nil
	}
	return v.buf[0]
}

func (v *vcState) push(f *flit.Flit) { v.buf = append(v.buf, f) }

func (v *vcState) pop() *flit.Flit {
	f := v.buf[0]
	copy(v.buf, v.buf[1:])
	v.buf = v.buf[:len(v.buf)-1]
	return f
}

// Router is a canonical 4-stage wormhole VC router (Section 3.1): routing
// computation (RC), VC allocation (VA), switch allocation (SA), switch
// traversal (ST), with link traversal and buffer write (LT) overlapped on
// the wire.
type Router struct {
	id  int
	net *Network
	// sh is the shard owning this router's node (the single shard of a
	// serial network); section-phase writes go through it.
	sh *shard

	// in[dir][vc] are the input units. The Local port receives flits
	// injected by the NI.
	in [topology.NumDirs][]*vcState

	// outCredits[dir][vc] tracks the free downstream buffer slots for
	// each output VC; outOwner[dir][vc] is the current holder.
	outCredits [topology.NumDirs][]int
	outOwner   [topology.NumDirs][]owner

	// stReg[dir] holds the flit that won SA last cycle and traverses the
	// crossbar to output dir this cycle. On a concentrated topology the
	// Local output is C flits wide: stLocalX holds the C-1 extra Local
	// ejection slots (nil slice at concentration 1, so the mesh pipeline
	// is untouched).
	stReg    [topology.NumDirs]*flit.Flit
	stLocalX []*flit.Flit

	state       powerState
	wakeCounter int
	emptyRun    int

	// Fault-injection state. hardFailed pins the router off permanently
	// (it behaves as power-gated forever; under NoRD its node survives on
	// the bypass ring). failPending defers a scheduled hard-fail until the
	// datapath drains. wakeBlocked models a stuck PG controller that
	// refuses wakeups; wakeSwallowed a single lost wakeup handshake. Both
	// are recovered by the power-gating watchdog, which force-wakes the
	// router once demand has persisted past the timeout (wakeWantSince
	// tracks the demand onset). dropWakeups is the number of armed
	// lost-handshake events; stuckCounted dedups the triggered accounting.
	hardFailed    bool
	failPending   bool
	wakeBlocked   bool
	wakeSwallowed bool
	stuckCounted  bool
	dropWakeups   int
	wakeWantSince uint64

	// bypassRemaining[vc] > 0 marks a packet mid-flight through this
	// (gated-off or just-woken) router's NI bypass on ring VC vc: its
	// remaining flits must keep using the bypass so wormhole order is
	// preserved across a wakeup (Section 4.3).
	bypassRemaining []int
	// creditsHeld[vc] counts credits withheld from the ring upstream for
	// VCs still mid-bypass at wakeup time, to be restored when they drain.
	creditsHeld []int

	// rr is the round-robin pointer used by SA and VA arbitration.
	rr int

	// Occupancy counters for fast-pathing idle routers: bufFlits counts
	// flits resident in input buffers, stFlits flits in ST registers,
	// and phaseCnt the number of input VCs in each non-idle phase.
	// phaseMask mirrors phaseCnt as one occupancy bit per input VC
	// (phaseMask[phase][port] bit v), letting the pipeline stages iterate
	// only the occupied VCs instead of scanning every slot.
	bufFlits  int
	stFlits   int
	phaseCnt  [5]int
	phaseMask [5][topology.NumDirs]uint64

	// bypassSum is the running total of bypassRemaining and heldVCs the
	// number of VCs with withheld ring credits — O(1) stand-ins for the
	// per-VC scans on the hot path.
	bypassSum int
	heldVCs   int

	// saScratch is reused each cycle to gather SA candidates.
	saScratch []saCand

	// Per-router statistics for spatial reports (measured interval only).
	statOffCycles   uint64
	statWakeups     uint64
	statGateOffs    uint64
	statSAGrants    uint64
	statBypassFlits uint64

	// stateSince is the cycle of the last power-FSM transition, giving
	// the residency argument on trace events; watchdogWoke attributes the
	// next wakeup to the fault watchdog.
	stateSince   uint64
	watchdogWoke bool

	// saGrantsLastCycle feeds the NoRD wakeup window while the router is
	// on: through-traffic is demand just as NI VC requests are while it
	// is off, so a router being actively used does not immediately
	// re-gate and thrash.
	saGrantsLastCycle uint32
	saGrantsThisCycle uint32
}

// saCand is one switch-allocation candidate: an active input VC with a
// flit at its head.
type saCand struct {
	d  topology.Dir
	v  int
	vc *vcState
}

// freshHeadPhase is the phase a head flit enters when it reaches the
// front of its VC: vcRouting for the canonical 4-stage pipeline (a full
// RC cycle), or vcWaitVA directly when look-ahead routing folds RC away
// (TwoStageRouter, Section 6.8).
func (r *Router) freshHeadPhase() vcPhase {
	if r.net.p.TwoStageRouter {
		return vcWaitVA
	}
	return vcRouting
}

// setPhase moves an input VC to a new phase, maintaining the counters and
// occupancy masks.
func (r *Router) setPhase(vc *vcState, p vcPhase) {
	bit := uint64(1) << vc.vcIdx
	if vc.phase != vcIdle {
		r.phaseCnt[vc.phase]--
		r.phaseMask[vc.phase][vc.port] &^= bit
	}
	vc.phase = p
	if p != vcIdle {
		r.phaseCnt[p]++
		r.phaseMask[p][vc.port] |= bit
	}
}

// initRouter initialises a (zeroed, contiguously allocated) router in
// place. The per-port slices share contiguous backing arrays so the
// pipeline scans walk sequential memory.
func initRouter(r *Router, id int, net *Network) {
	p := &net.p
	V := p.vcsPerPort()
	ND := int(topology.NumDirs)
	r.id = id
	r.net = net
	r.sh = net.shardFor(id)
	r.bypassRemaining = make([]int, V)
	r.creditsHeld = make([]int, V)
	states := make([]vcState, ND*V)
	ptrs := make([]*vcState, ND*V)
	credits := make([]int, ND*V)
	owners := make([]owner, ND*V)
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		base := int(d) * V
		r.in[d] = ptrs[base : base+V : base+V]
		r.outCredits[d] = credits[base : base+V : base+V]
		r.outOwner[d] = owners[base : base+V : base+V]
		for v := 0; v < V; v++ {
			st := &states[base+v]
			st.buf = make([]*flit.Flit, 0, p.BufferDepth)
			st.port = uint8(d)
			st.vcIdx = uint8(v)
			r.in[d][v] = st
			r.outOwner[d][v] = ownerFree
			// Credits toward wired neighbors are the downstream buffer
			// depth (on a torus every grid port is wired); the Local
			// output (ejection) is modelled as an always-available sink
			// via the stReg only.
			if d != topology.Local {
				if _, ok := net.topo.Neighbor(id, d); ok {
					r.outCredits[d][v] = p.BufferDepth
				}
			}
		}
	}
	if c := net.conc; c > 1 {
		r.stLocalX = make([]*flit.Flit, c-1)
	}
	if p.Design.PowerGated() && p.ForcedOff {
		r.state = powerOff
	}
}

// on reports whether the router's normal pipeline is usable (PG signal
// deasserted). A waking router still presents as gated-off to neighbors.
func (r *Router) on() bool { return r.state == powerOn }

// datapathEmpty reports whether the router holds no flits in buffers or
// pipeline registers and no VC is mid-packet. VCs stalled in vcWaitWake
// hold buffered head flits, so the flit counters cover them.
func (r *Router) datapathEmpty() bool {
	return r.bufFlits == 0 && r.stFlits == 0 &&
		r.phaseCnt[vcRouting] == 0 && r.phaseCnt[vcWaitVA] == 0 && r.phaseCnt[vcActive] == 0
}

// busy reports datapath occupancy for idle-period statistics: any flit in
// buffers, pipeline registers, or mid-bypass.
func (r *Router) busy() bool {
	return !r.datapathEmpty() || r.bypassSum > 0
}

// tickST moves last cycle's SA winners onto the output links (the ST
// stage; the following LT cycle is modelled by the link's delivery delay).
func (r *Router) tickST() {
	if r.stFlits == 0 {
		return
	}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		f := r.stReg[d]
		if f == nil {
			continue
		}
		r.stReg[d] = nil
		r.stFlits--
		if d == topology.Local {
			// Ejection: short local wire, arrives at the NI next cycle.
			r.net.nis[r.id].deliverEject(f)
			continue
		}
		r.net.sendLink(r.id, d, f)
	}
	// Extra Local ejection slots of a widened (concentrated) local port.
	for i, f := range r.stLocalX {
		if f == nil {
			continue
		}
		r.stLocalX[i] = nil
		r.stFlits--
		r.net.nis[r.id].deliverEject(f)
	}
}

// tickSA performs switch allocation: for each output, pick one eligible
// active input VC (round-robin), pop its flit, charge a credit and place
// the flit into the ST register.
func (r *Router) tickSA() {
	if !r.on() || r.bufFlits == 0 || r.phaseCnt[vcActive] == 0 {
		return
	}
	// Gather the (few) active input VCs with a flit at their head once,
	// iterating only the occupied bits of the vcActive mask (same
	// ascending port/VC order as a full scan).
	cands := r.saScratch[:0]
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		m := r.phaseMask[vcActive][d]
		for m != 0 {
			v := bits.TrailingZeros64(m)
			m &= m - 1
			vc := r.in[d][v]
			if !vc.empty() {
				cands = append(cands, saCand{d: d, v: v, vc: vc})
			}
		}
	}
	r.saScratch = cands
	if len(cands) == 0 {
		return
	}
	var portRead [topology.NumDirs]bool
	rrOut := r.rr % int(topology.NumDirs)
	rrCand := r.rr % len(cands)
	for outIdx := 0; outIdx < int(topology.NumDirs); outIdx++ {
		out := topology.Dir(outIdx + rrOut)
		if out >= topology.NumDirs {
			out -= topology.NumDirs
		}
		if r.stReg[out] != nil {
			continue
		}
		granted := false
		for k := 0; k < len(cands) && !granted; k++ {
			ci := k + rrCand
			if ci >= len(cands) {
				ci -= len(cands)
			}
			c := cands[ci]
			d, v, vc := c.d, c.v, c.vc
			// No emptiness re-check: every cand had a head flit at gather
			// time, and the only pops in this loop are grants, which mark
			// portRead[d] and so exclude the candidate from later outputs.
			if vc.route != out || portRead[d] {
				continue
			}
			if out != topology.Local && r.outCredits[out][vc.outVC] <= 0 {
				continue
			}
			f := vc.pop()
			r.bufFlits--
			f.VC = vc.outVC
			portRead[d] = true
			granted = true
			if out != topology.Local {
				r.outCredits[out][vc.outVC]--
			}
			if r.net.p.TwoStageRouter {
				// Speculative SA folds switch traversal into this cycle:
				// the flit leaves immediately (best case; contention has
				// already cost retries in VA/SA).
				if out == topology.Local {
					r.net.nis[r.id].deliverEject(f)
				} else {
					r.net.sendLink(r.id, out, f)
				}
			} else {
				r.stReg[out] = f
				r.stFlits++
			}
			r.saGrantsThisCycle++
			if r.net.collecting {
				r.statSAGrants++
			}
			r.net.noteSAGrant(r.sh, d)
			// Return a credit upstream for the freed buffer slot.
			r.net.creditReturn(r.sh, r.id, d, v)
			if f.Kind.IsTail() {
				if out != topology.Local {
					r.outOwner[out][vc.outVC] = ownerFree
				}
				r.setPhase(vc, vcIdle)
				// The next packet's head may already be queued behind
				// the departed tail; it starts route computation now.
				if h := vc.head(); h != nil {
					if !h.Kind.IsHead() {
						r.net.failSh(r.sh, &fault.ProtocolError{Cycle: r.net.cycle, Router: r.id,
							Msg: "non-head flit follows a tail in a VC buffer"})
						continue
					}
					r.setPhase(vc, r.freshHeadPhase())
				}
			}
		}
	}
	// A concentrated local port ejects up to C flits per cycle: grant the
	// C-1 extra Local slots to further active ejecting VCs. Each input
	// port still has a single read port, so portRead carries over from
	// the main pass. Empty on concentration-1 topologies.
	for i := range r.stLocalX {
		if r.stLocalX[i] != nil {
			continue
		}
		for k := 0; k < len(cands); k++ {
			ci := k + rrCand
			if ci >= len(cands) {
				ci -= len(cands)
			}
			c := cands[ci]
			d, v, vc := c.d, c.v, c.vc
			if vc.route != topology.Local || portRead[d] || vc.phase != vcActive || vc.empty() {
				continue
			}
			f := vc.pop()
			r.bufFlits--
			f.VC = vc.outVC
			portRead[d] = true
			if r.net.p.TwoStageRouter {
				r.net.nis[r.id].deliverEject(f)
			} else {
				r.stLocalX[i] = f
				r.stFlits++
			}
			r.saGrantsThisCycle++
			if r.net.collecting {
				r.statSAGrants++
			}
			r.net.noteSAGrant(r.sh, d)
			r.net.creditReturn(r.sh, r.id, d, v)
			if f.Kind.IsTail() {
				r.setPhase(vc, vcIdle)
				if h := vc.head(); h != nil {
					if !h.Kind.IsHead() {
						r.net.failSh(r.sh, &fault.ProtocolError{Cycle: r.net.cycle, Router: r.id,
							Msg: "non-head flit follows a tail in a VC buffer"})
						break
					}
					r.setPhase(vc, r.freshHeadPhase())
				}
			}
			break
		}
	}
	r.rr++
}

// tickVA performs VC allocation for input VCs in vcWaitVA. Each cycle the
// route is re-evaluated (adaptive routers use up-to-date availability) and
// an output VC of the appropriate type is requested; on failure the VC
// retries next cycle, possibly falling back to escape resources
// (Duato's protocol).
func (r *Router) tickVA() {
	if !r.on() || r.phaseCnt[vcWaitVA] == 0 {
		return
	}
	// Visit waiting VCs in the same rotated flat order (port-major,
	// starting at r.rr) as a full slot scan, but via the occupancy mask so
	// the cost scales with the number of waiters. allocate never moves
	// another VC into vcWaitVA, so the per-port mask snapshots are exact.
	p := &r.net.p
	V := p.vcsPerPort()
	total := int(topology.NumDirs) * V
	start := r.rr % total
	d0 := topology.Dir(start / V)
	lowMask := (uint64(1) << uint(start%V)) - 1
	r.vaScanPort(d0, r.phaseMask[vcWaitVA][d0]&^lowMask)
	for d := d0 + 1; d < topology.NumDirs; d++ {
		r.vaScanPort(d, r.phaseMask[vcWaitVA][d])
	}
	for d := topology.Dir(0); d < d0; d++ {
		r.vaScanPort(d, r.phaseMask[vcWaitVA][d])
	}
	r.vaScanPort(d0, r.phaseMask[vcWaitVA][d0]&lowMask)
}

// vaScanPort runs VC allocation for the masked waiting VCs of one port.
func (r *Router) vaScanPort(d topology.Dir, m uint64) {
	for m != 0 {
		v := bits.TrailingZeros64(m)
		m &= m - 1
		vc := r.in[d][v]
		if vc.phase == vcWaitVA {
			r.allocate(d, v, vc)
		}
	}
}

// allocate attempts VC allocation for the head packet of input VC (d, v).
func (r *Router) allocate(d topology.Dir, v int, vc *vcState) {
	h := vc.head()
	if h == nil {
		// Head was consumed unexpectedly; reset defensively.
		r.setPhase(vc, vcIdle)
		return
	}
	pkt := h.Packet
	dec := r.net.route(r, d, pkt, vc.vaFails)
	switch dec.action {
	case actWake:
		r.setPhase(vc, vcWaitWake)
		vc.target = dec.wakeTarget
		vc.stallAt = r.net.cycle
		vc.wuFrom = r.net.cycle + uint64(dec.wuDelay)
		vc.vaFails = 0
		// The wake target may be dormant: put it on the worklist so its
		// controller observes the asserted WU level this cycle (deferred
		// to the merge when the target lives in another shard — its
		// controller phase runs serially after the merge either way).
		r.net.activateFrom(r.sh, dec.wakeTarget)
		return
	case actEject:
		// Local ejection needs no VC allocation; the Local "output VC" 0
		// is used for bookkeeping only.
		r.setPhase(vc, vcActive)
		vc.route = topology.Local
		vc.outVC = 0
		vc.vaFails = 0
		r.net.noteVAGrant(r.sh)
		return
	}
	// Try the ordered candidates (adaptive first, escape fallback).
	for _, c := range dec.cands {
		if r.outOwner[c.dir][c.vc] != ownerFree || r.outCredits[c.dir][c.vc] <= 0 {
			continue
		}
		r.outOwner[c.dir][c.vc] = owner{port: d, vc: int16(v)}
		r.setPhase(vc, vcActive)
		vc.route = c.dir
		vc.outVC = c.vc
		vc.escape = c.escape
		vc.vaFails = 0
		if c.escape && !pkt.Escaped {
			pkt.Escaped = true
			r.net.noteEscape(r.sh, r.id)
		}
		if c.escape {
			pkt.EscapeVC = c.escapeVCNext
		}
		if c.misroute {
			pkt.Misroutes++
			r.net.noteMisroute(r.sh, r.id)
		}
		r.net.noteVAGrant(r.sh)
		return
	}
	// Allocation failed; retry (and recompute the route) next cycle.
	vc.vaFails++
}

// tickRC runs route computation: input VCs in vcRouting move to vcWaitVA
// (one cycle), and VCs stalled in vcWaitWake re-check whether their target
// woke up.
func (r *Router) tickRC() {
	if !r.on() || (r.phaseCnt[vcRouting] == 0 && r.phaseCnt[vcWaitWake] == 0) {
		return
	}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		// Snapshot both masks up front: a resumed vcWaitWake VC re-enters
		// vcRouting but must not be revisited this cycle (a full slot scan
		// visits each VC once too).
		m := r.phaseMask[vcRouting][d] | r.phaseMask[vcWaitWake][d]
		for m != 0 {
			v := bits.TrailingZeros64(m)
			m &= m - 1
			vc := r.in[d][v]
			switch vc.phase {
			case vcRouting:
				if vc.head() == nil {
					continue
				}
				r.setPhase(vc, vcWaitVA)
			case vcWaitWake:
				// Resume once the target router woke (or an alternative
				// appeared); the route is recomputed from scratch.
				if r.net.routers[vc.target].on() || r.net.route(r, d, vc.head().Packet, 0).action != actWake {
					r.net.noteWakeStall(r.sh, r.net.cycle-vc.stallAt)
					r.setPhase(vc, r.freshHeadPhase())
				} else {
					// Still stalled: keep the target on the worklist so
					// it keeps seeing the WU level (its own queues give
					// it nothing to stay awake for).
					r.net.activateFrom(r.sh, vc.target)
				}
			}
		}
	}
}

// acceptFlit writes a delivered flit into the input buffer (the BW half of
// the LT stage).
func (r *Router) acceptFlit(d topology.Dir, f *flit.Flit) {
	vc := r.in[d][f.VC]
	if len(vc.buf) >= r.net.p.BufferDepth {
		r.net.failSh(r.sh, &fault.ProtocolError{Cycle: r.net.cycle, Router: r.id,
			Msg: fmt.Sprintf("buffer overflow at port %v vc %d (credit protocol violated)", d, f.VC)})
		return
	}
	vc.push(f)
	r.bufFlits++
	r.net.noteBufWrite(r.sh)
	// A head flit starts route computation only once it is at the front
	// of the buffer (an earlier packet's tail may still be draining; the
	// upstream freed the output VC at its tail).
	if f.Kind.IsHead() && len(vc.buf) == 1 {
		if vc.phase != vcIdle {
			r.net.failSh(r.sh, &fault.ProtocolError{Cycle: r.net.cycle, Router: r.id,
				Msg: fmt.Sprintf("head flit at front of busy VC at port %v vc %d phase %d", d, f.VC, vc.phase)})
			return
		}
		r.setPhase(vc, r.freshHeadPhase())
	}
}

// incomingSoon reports whether any flit is en route to this router: on an
// incoming link, in a neighbor's ST register, or granted this cycle. This
// is the IC (incoming) handshake of Section 4.3 that keeps a router from
// gating off under a flit already in flight.
func (r *Router) incomingSoon() bool {
	for d := topology.Dir(0); d < topology.Local; d++ {
		nb, ok := r.net.neighbor(r.id, d)
		if !ok {
			continue
		}
		// Flits in flight on the link from nb toward us.
		if r.net.linkBusy(nb, d.Opposite()) {
			return true
		}
		// Flit in nb's ST register headed our way.
		if r.net.routers[nb].stReg[d.Opposite()] != nil {
			return true
		}
	}
	// Flits in flight from the local NI.
	if r.net.nis[r.id].injectInFlight() {
		return true
	}
	// NoRD: the ring predecessor's NI may hold a flit for us in its
	// re-injection register (bypass stage 3) that is not yet on the link.
	if r.net.p.Design == NoRD {
		if r.net.nis[r.net.ring.Pred(r.id)].injectOut != nil {
			return true
		}
	}
	return false
}
