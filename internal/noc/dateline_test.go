package noc

import (
	"fmt"
	"testing"

	"nord/internal/flit"
	"nord/internal/topology"
)

// escNode is one escape channel: a directed link (router, outDir)
// together with the escape VC a packet holds while traversing it.
type escNode struct {
	id int
	d  topology.Dir
	vc int
}

// TestTorusDatelineVCSafety is the deadlock-freedom property test of the
// torus DOR escape discipline (the dateline VC assignment). For every
// (src, dst) pair it walks the XY escape path exactly as routeConv
// assigns VCs — convEscapeVC picks the channel, convEscapeVCNext is the
// state the packet carries onward — and checks:
//
//  1. a wrap (dateline) link is never granted escape VC 0,
//  2. within one dimension the escape VC never decreases (the dateline
//     bumps it 0->1 at most once; minimal routing crosses each dateline
//     at most once),
//  3. the channel-dependency graph over all escape channels, as induced
//     by the union of all walked paths, is acyclic — the textbook
//     sufficient condition for escape-network deadlock freedom.
//
// The same walk on mesh and cmesh must keep every packet on VC 0 (those
// topologies have no wrap links and a single conv escape VC).
func TestTorusDatelineVCSafety(t *testing.T) {
	for _, g := range []struct {
		kind topology.Kind
		w, h int
	}{
		{topology.KindTorus, 4, 4},
		{topology.KindTorus, 5, 5},
		{topology.KindTorus, 8, 8},
		{topology.KindTorus, 3, 7},
		{topology.KindMesh, 5, 5},
		{topology.KindCMesh, 4, 4},
	} {
		t.Run(fmt.Sprintf("%v_%dx%d", g.kind, g.w, g.h), func(t *testing.T) {
			p := DefaultParams(ConvPG)
			p.Width, p.Height = g.w, g.h
			p.Topology = g.kind
			n := MustNew(p)
			defer n.Close()

			succ := make(map[escNode]map[escNode]bool)
			nn := n.topo.N()
			for src := 0; src < nn; src++ {
				for dst := 0; dst < nn; dst++ {
					if src == dst {
						continue
					}
					pkt := &flit.Packet{Dst: dst}
					cur := src
					prev := escNode{id: -1}
					prevDim := -1
					for hops := 0; cur != dst; hops++ {
						if hops > g.w+g.h {
							t.Fatalf("XY walk %d->%d did not terminate", src, dst)
						}
						xy := n.xyDir(cur, dst)
						vc := n.convEscapeVC(cur, xy, pkt)
						if n.topo.WrapLink(cur, xy) && vc != 1 {
							t.Fatalf("%d->%d: wrap link at router %d dir %v granted escape VC %d, dateline requires VC 1",
								src, dst, cur, xy, vc)
						}
						if g.kind != topology.KindTorus && vc != 0 {
							t.Fatalf("%d->%d: %v granted escape VC %d on a topology with a single escape VC",
								src, dst, g.kind, vc)
						}
						if dimOf(xy) == prevDim && vc < prev.vc {
							t.Fatalf("%d->%d: escape VC dropped %d->%d within dimension %d at router %d",
								src, dst, prev.vc, vc, prevDim, cur)
						}
						node := escNode{id: cur, d: xy, vc: vc}
						if prev.id >= 0 {
							m := succ[prev]
							if m == nil {
								m = make(map[escNode]bool)
								succ[prev] = m
							}
							m[node] = true
						}
						pkt.EscapeVC = n.convEscapeVCNext(cur, xy, pkt)
						pkt.Escaped = true
						prev, prevDim = node, dimOf(xy)
						nb, ok := n.neighbor(cur, xy)
						if !ok {
							t.Fatalf("%d->%d: XY walk fell off the grid at router %d dir %v", src, dst, cur, xy)
						}
						cur = nb
					}
				}
			}

			// Cycle detection over the induced channel-dependency graph.
			const (
				white = 0
				grey  = 1
				black = 2
			)
			color := make(map[escNode]int)
			var visit func(u escNode) bool
			visit = func(u escNode) bool {
				color[u] = grey
				for v := range succ[u] {
					switch color[v] {
					case grey:
						return false
					case white:
						if !visit(v) {
							return false
						}
					}
				}
				color[u] = black
				return true
			}
			for u := range succ {
				if color[u] == white && !visit(u) {
					t.Fatalf("escape channel-dependency graph has a cycle through (router %d, %v, VC %d)", u.id, u.d, u.vc)
				}
			}
		})
	}
}
