package noc

import (
	"testing"

	"nord/internal/flit"
	"nord/internal/topology"
	"nord/internal/traffic"
)

// TestGateOffClampsRingCredits checks the Section 4.3 handshake: when a
// NoRD router gates off, its ring upstream holds exactly one credit per
// VC (the bypass latch); on wakeup the credits are topped back up.
func TestGateOffClampsRingCredits(t *testing.T) {
	p := DefaultParams(NoRD)
	n := MustNew(p)
	n.Run(60) // everything idle -> all routers gate off
	for id, r := range n.routers {
		if r.on() {
			t.Fatalf("router %d still on in an idle network", id)
		}
		pred := n.ring.Pred(id)
		out := n.ring.OutDir(pred)
		for v, c := range n.routers[pred].outCredits[out] {
			if c != 1 {
				t.Errorf("router %d vc %d: ring-upstream credit %d, want 1", id, v, c)
			}
		}
	}
	// Wake one router via sustained local traffic and check restoration.
	target := 5
	for i := 0; i < 10; i++ {
		n.Inject(n.NewPacket(target, 10, flit.ClassRequest, 1))
	}
	for i := 0; i < 3000 && !n.routers[target].on(); i++ {
		n.Tick()
	}
	if !n.routers[target].on() {
		t.Skip("router never woke under this threshold calibration")
	}
	if err := n.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	pred := n.ring.Pred(target)
	out := n.ring.OutDir(pred)
	for v, c := range n.routers[pred].outCredits[out] {
		held := n.routers[target].creditsHeld[v]
		if !n.routers[target].on() {
			// It may have re-gated; credits must be back to 1.
			if c != 1 {
				t.Errorf("vc %d: re-gated credits %d, want 1", v, c)
			}
			continue
		}
		if c+held != p.BufferDepth {
			t.Errorf("vc %d: credits %d + held %d != depth %d", v, c, held, p.BufferDepth)
		}
	}
}

// TestConvOptHidesWakeupStall: early wakeup generates WU at RC time, so
// packets stalled on a waking router wait measurably less in
// Conv_PG_OPT than in Conv_PG (Section 3.3's 3-cycle hiding), which
// shows up as lower average packet latency.
func TestConvOptHidesWakeupStall(t *testing.T) {
	stall := map[Design]float64{}
	lat := map[Design]float64{}
	for _, d := range []Design{ConvPG, ConvPGOpt} {
		n := MustNew(DefaultParams(d))
		inj := traffic.NewSynthetic(n, traffic.UniformRandom, 0.10, 9)
		n.BeginMeasurement()
		for c := 0; c < 20_000; c++ {
			inj.Tick(n.Cycle())
			n.Tick()
		}
		stall[d] = n.Collector().WakeupStall.Mean()
		lat[d] = n.Collector().AvgPacketLatency()
	}
	if stall[ConvPGOpt] >= stall[ConvPG] {
		t.Errorf("Conv_PG_OPT mean wakeup stall (%.2f) should be below Conv_PG (%.2f)",
			stall[ConvPGOpt], stall[ConvPG])
	}
	if lat[ConvPGOpt] >= lat[ConvPG] {
		t.Errorf("Conv_PG_OPT latency (%.2f) should beat Conv_PG (%.2f)",
			lat[ConvPGOpt], lat[ConvPG])
	}
}

// TestEscapedPacketsStayOnRing: once a packet enters the escape ring it
// must follow ring links only, and its dateline VC can only go 0 -> 1
// (Section 4.2's deadlock argument depends on both).
func TestEscapedPacketsStayOnRing(t *testing.T) {
	p := DefaultParams(NoRD)
	p.ForcedOff = true // everything rides the ring; escapes are common
	n := MustNew(p)
	n.BeginMeasurement()
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, 0.03, 4)
	sawEscape := false
	n.SetDeliveryHandler(func(pk *flit.Packet, _ uint64) {
		if pk.Escaped {
			sawEscape = true
			if pk.EscapeVC != 0 && pk.EscapeVC != 1 {
				t.Errorf("packet %d escape VC %d out of the dateline pair", pk.ID, pk.EscapeVC)
			}
		}
	})
	for c := 0; c < 15_000; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	if !sawEscape {
		t.Error("no packet used the escape ring under forced-off overload")
	}
}

// TestMisrouteCapEnforced: delivered packets never exceed the cap by
// more than the single forced hop that triggered the escape.
func TestMisrouteCapEnforced(t *testing.T) {
	p := DefaultParams(NoRD)
	p.MisrouteCap = 2
	p.ForcedOff = true
	n := MustNew(p)
	n.BeginMeasurement()
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, 0.02, 5)
	n.SetDeliveryHandler(func(pk *flit.Packet, _ uint64) {
		if pk.Misroutes > p.MisrouteCap {
			t.Errorf("packet %d took %d misroutes on adaptive resources (cap %d)",
				pk.ID, pk.Misroutes, p.MisrouteCap)
		}
	})
	for c := 0; c < 10_000; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
}

// TestOnRouterOffRequeuesLocalPacket: a NoRD NI that had set up a
// local-port injection but sent nothing re-queues the packet when its
// router gates off, and the packet still gets delivered (via the ring).
func TestOnRouterOffRequeuesLocalPacket(t *testing.T) {
	p := DefaultParams(NoRD)
	p.ThresholdPerf = 30
	p.ThresholdPower = 30 // keep routers asleep
	n := MustNew(p)
	n.BeginMeasurement()
	delivered := 0
	n.SetDeliveryHandler(func(pk *flit.Packet, _ uint64) { delivered++ })
	// Inject while the router is still on (before first gate-off): the
	// NI may begin a local-port injection that gets interrupted.
	n.Inject(n.NewPacket(0, 9, flit.ClassRequest, 5))
	for c := 0; c < 5_000 && delivered == 0; c++ {
		n.Tick()
	}
	if delivered != 1 {
		t.Fatal("packet lost across a gate-off during injection setup")
	}
}

// TestPhaseCountersConsistent cross-checks the occupancy fast-path
// counters against a full scan after a busy run (the optimisation must
// not drift).
func TestPhaseCountersConsistent(t *testing.T) {
	for _, d := range []Design{ConvPGOpt, NoRD} {
		n := MustNew(DefaultParams(d))
		inj := traffic.NewSynthetic(n, traffic.UniformRandom, 0.20, 8)
		for c := 0; c < 5_000; c++ {
			inj.Tick(n.Cycle())
			n.Tick()
		}
		for id, r := range n.routers {
			var cnt [5]int
			buf, st := 0, 0
			for dd := topology.Dir(0); dd < topology.NumDirs; dd++ {
				if r.stReg[dd] != nil {
					st++
				}
				for _, vc := range r.in[dd] {
					if vc.phase != vcIdle {
						cnt[vc.phase]++
					}
					buf += len(vc.buf)
				}
			}
			for ph := 1; ph < 5; ph++ {
				if cnt[ph] != r.phaseCnt[ph] {
					t.Fatalf("%v router %d: phase %d counter %d, actual %d", d, id, ph, r.phaseCnt[ph], cnt[ph])
				}
			}
			if buf != r.bufFlits || st != r.stFlits {
				t.Fatalf("%v router %d: flit counters buf=%d/%d st=%d/%d", d, id, r.bufFlits, buf, r.stFlits, st)
			}
		}
	}
}

// TestNoRDQuietHysteresis: a router that wakes under load must stay on
// while through-traffic continues (no mid-burst thrash).
func TestNoRDQuietHysteresis(t *testing.T) {
	p := DefaultParams(NoRD)
	n := MustNew(p)
	n.BeginMeasurement()
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, 0.25, 10)
	for c := 0; c < 20_000; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	col := n.Collector()
	// At 25% load the network is busy; wakeups must be rare relative to
	// the traffic (tens, not thousands: roughly one per burst, not one
	// per packet).
	if col.Wakeups > col.PacketsInjected/10 {
		t.Errorf("NoRD thrashing: %d wakeups for %d packets", col.Wakeups, col.PacketsInjected)
	}
}

// TestRingOrderOverride exercises the RingOrder parameter.
func TestRingOrderOverride(t *testing.T) {
	p := DefaultParams(NoRD)
	p.Width, p.Height = 2, 2
	p.RingOrder = []int{0, 1, 3, 2}
	n := MustNew(p)
	if n.Ring().Succ(0) != 1 || n.Ring().Succ(3) != 2 {
		t.Error("ring order override not applied")
	}
	p.RingOrder = []int{0, 3, 1, 2} // not a mesh cycle
	if _, err := New(p); err == nil {
		t.Error("invalid ring order accepted")
	}
}

// TestWakeupLatencyRespected: the first wakeup of a conventional design
// takes at least WakeupLatency cycles before the router is on.
func TestWakeupLatencyRespected(t *testing.T) {
	p := DefaultParams(ConvPG)
	p.WakeupLatency = 20
	n := MustNew(p)
	n.Run(50) // gate everything
	if n.RouterPowerOn(0) {
		t.Fatal("router 0 still on")
	}
	n.Inject(n.NewPacket(0, 3, flit.ClassRequest, 1))
	woke := -1
	start := int(n.Cycle())
	for i := 0; i < 200; i++ {
		n.Tick()
		if n.RouterPowerOn(0) {
			woke = int(n.Cycle())
			break
		}
	}
	if woke < 0 {
		t.Fatal("router 0 never woke")
	}
	if woke-start < 20 {
		t.Errorf("router 0 woke after %d cycles, wakeup latency is 20", woke-start)
	}
}
