package noc

import (
	"fmt"
	"math/rand"
	"testing"

	"nord/internal/flit"
	"nord/internal/traffic"
)

// TestSoakRandomConfigs drives randomly drawn configurations (mesh size,
// VC count, buffer depth, design, pipeline variant, feature flags, load)
// through short random-traffic runs and checks the global invariants:
// every injected packet is delivered exactly once, and the network
// returns to a clean quiescent state (empty buffers, restored credits).
// Any deadlock trips the no-progress watchdog; any credit or latch
// protocol violation panics.
func TestSoakRandomConfigs(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 10
	}
	rng := rand.New(rand.NewSource(20260704))
	designs := []Design{NoPG, ConvPG, ConvPGOpt, NoRD}
	for i := 0; i < iterations; i++ {
		p := DefaultParams(designs[rng.Intn(len(designs))])
		// Random mesh with at least one even dimension (ring feasibility).
		p.Width = 2 + rng.Intn(5)
		p.Height = 2 + rng.Intn(5)
		if p.Width%2 == 1 && p.Height%2 == 1 {
			p.Height++
		}
		p.Classes = 1 + rng.Intn(3)
		p.VCsPerClass = 3 + rng.Intn(3)
		p.BufferDepth = 2 + rng.Intn(6)
		p.WakeupLatency = 6 + rng.Intn(16)
		p.MisrouteCap = 1 + rng.Intn(6)
		p.ThresholdPower = 2 + rng.Intn(8)
		p.TwoStageRouter = rng.Intn(3) == 0
		p.AggressiveBypass = rng.Intn(2) == 0
		if p.Design == NoRD {
			p.DynamicClassify = rng.Intn(3) == 0
			p.ForcedOff = rng.Intn(6) == 0
		}
		if p.TwoStageRouter {
			p.EarlyWakeupCycles = 1
		}
		rate := 0.01 + rng.Float64()*0.15
		seed := rng.Int63()

		label := fmt.Sprintf("iter %d: %v %dx%d cls=%d vcs=%d buf=%d wl=%d cap=%d 2st=%v aggr=%v dyn=%v forced=%v rate=%.3f seed=%d",
			i, p.Design, p.Width, p.Height, p.Classes, p.VCsPerClass, p.BufferDepth,
			p.WakeupLatency, p.MisrouteCap, p.TwoStageRouter, p.AggressiveBypass,
			p.DynamicClassify, p.ForcedOff, rate, seed)

		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s\npanic: %v", label, r)
				}
			}()
			n := MustNew(p)
			delivered := map[uint64]bool{}
			n.SetDeliveryHandler(func(pk *flit.Packet, _ uint64) {
				if delivered[pk.ID] {
					t.Fatalf("%s\npacket %d delivered twice", label, pk.ID)
				}
				delivered[pk.ID] = true
			})
			n.BeginMeasurement()
			inj := traffic.NewSynthetic(n, traffic.UniformRandom, rate, seed)
			if p.Classes > 1 && rng.Intn(2) == 0 {
				inj.Class = flit.ClassResponse
			}
			for c := 0; c < 2500; c++ {
				inj.Tick(n.Cycle())
				n.Tick()
			}
			inj.Rate = 0
			for k := 0; k < 400_000 && inj.Pending() > 0; k++ {
				inj.Tick(n.Cycle())
				n.Tick()
			}
			if inj.Pending() > 0 {
				t.Fatalf("%s\nsource queues stuck (%d pending)", label, inj.Pending())
			}
			if err := n.Drain(400_000); err != nil {
				t.Fatalf("%s\n%v", label, err)
			}
			if uint64(len(delivered))+inj.Dropped() != inj.Offered() {
				t.Fatalf("%s\nconservation broken: %d delivered + %d dropped != %d offered",
					label, len(delivered), inj.Dropped(), inj.Offered())
			}
			n.FinishMeasurement()
			checkQuiescentInvariants(t, n)
		}()
		if t.Failed() {
			return
		}
	}
}
