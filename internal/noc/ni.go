package noc

import (
	"nord/internal/fault"
	"nord/internal/flit"
	"nord/internal/stats"
	"nord/internal/topology"
)

// injMode describes how the NI is currently injecting a packet.
type injMode uint8

const (
	modeNone  injMode = iota
	modeLocal         // through the router's Local input port (router on)
	modeRing          // through the Bypass Outport (NoRD, router gated off)
)

type timedFlit struct {
	f  *flit.Flit
	at uint64
}

// timedPkt is a whole packet in flight over the NI-local crossbar of a
// concentrated router (terminal-to-terminal traffic that never enters
// the network).
type timedPkt struct {
	p  *flit.Packet
	at uint64
}

// pktQueue is a growable ring buffer of queued packets (the NI injection
// queue). It replaces a plain slice whose pop-front reslicing leaked
// capacity and reallocated on the hot path.
type pktQueue struct {
	buf  []*flit.Packet
	head int
	n    int
}

func (q *pktQueue) len() int { return q.n }

func (q *pktQueue) at(i int) *flit.Packet { return q.buf[(q.head+i)%len(q.buf)] }

func (q *pktQueue) front() *flit.Packet { return q.buf[q.head] }

func (q *pktQueue) grow() {
	nb := make([]*flit.Packet, max(4, 2*len(q.buf)))
	for i := 0; i < q.n; i++ {
		nb[i] = q.at(i)
	}
	q.buf = nb
	q.head = 0
}

func (q *pktQueue) pushBack(p *flit.Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *pktQueue) pushFront(p *flit.Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1 + len(q.buf)) % len(q.buf)
	q.buf[q.head] = p
	q.n++
}

func (q *pktQueue) popFront() *flit.Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

// NI is a node's network interface. Besides the usual injection and
// ejection queues it implements NoRD's decoupling bypass (Section 4.2,
// Figure 4c): a per-VC single-flit latch fed by the router's Bypass
// Inport, a VC-check/forward stage, and a re-injection stage multiplexed
// with local injection onto the Bypass Outport. The NI also computes the
// VC-request wakeup metric over a sliding window (Section 4.3).
type NI struct {
	id  int
	net *Network
	// sh is the shard owning this node (the single shard of a serial
	// network); section-phase writes go through it.
	sh *shard

	// Injection queues, one per protocol class, in packets.
	injQ []pktQueue
	// Current packet being injected. curFlits is a consuming window over
	// curBuf, the persistent serialisation buffer refilled from the
	// network's flit pool.
	curFlits   []*flit.Flit
	curBuf     []*flit.Flit
	curVC      int
	curMode    injMode
	allocCycle uint64
	classRR    int
	// lastTick is the cycle tick() last ran, letting the end-of-cycle
	// accounting catch up nodes activated after the NI phase.
	lastTick uint64

	// localCredits tracks free slots of the router's Local input VCs.
	localCredits []int
	// toLocal holds flits in flight over the short NI->router wire.
	toLocal []timedFlit
	// ejPend holds flits in flight from the router's Local output.
	ejPend []timedFlit
	// localQ holds intra-router packets (terminals of the same
	// concentrated router) crossing the NI-local path: wire plus
	// serialization latency, no router involvement, no wakeup. Always
	// empty at concentration 1.
	localQ []timedPkt

	// Bypass engine (NoRD only).
	latch     []*flit.Flit // one-flit latch per ring VC
	fwdOutVC  []int        // downstream VC held by the in-progress forward, -1 if none
	fwdFails  []int        // consecutive failed allocations per latch VC
	injFails  int          // consecutive failed ring-injection allocations
	injectOut *flit.Flit   // stage-3 register: re-injection onto the Bypass Outport
	injectFwd bool         // injectOut carries forwarded (vs locally injected) traffic
	bypassRR  int
	starve    int
	// latchCount/fwdCount/queuedTotal are O(1) occupancy counters (number
	// of held latches, of in-progress forwards, of queued packets across
	// classes) standing in for per-VC and per-class scans on the hot path.
	latchCount  int
	fwdCount    int
	queuedTotal int

	// window accumulates per-cycle VC request counts for the wakeup
	// metric; threshold is this node's asymmetric wakeup threshold.
	window    *stats.Window
	threshold int
	// quietRun counts consecutive cycles with the demand window at or
	// below gateSlack; gating requires it to reach quietNeed (longer for
	// performance-centric routers, which sleep late as well as waking
	// early). Power-centric routers tolerate a light trickle (the bypass
	// will carry it), trading a little latency for static energy.
	quietRun  int
	quietNeed int
	gateSlack uint64
	// demandAccum integrates the windowed demand signal between
	// reclassification rounds (DynamicClassify).
	demandAccum uint64
}

// initNI initialises a (zeroed, contiguously allocated) NI in place.
func initNI(ni *NI, id int, net *Network) {
	p := &net.p
	V := p.vcsPerPort()
	ni.id = id
	ni.net = net
	ni.sh = net.shardFor(id)
	ni.injQ = make([]pktQueue, p.Classes)
	ni.localCredits = make([]int, V)
	ni.latch = make([]*flit.Flit, V)
	ni.fwdOutVC = make([]int, V)
	ni.fwdFails = make([]int, V)
	ni.window = stats.NewWindow(max(p.WakeupWindow, 1))
	ni.threshold = p.ThresholdPower
	for c := range ni.injQ {
		// One extra slot: a drained-router requeue (pushFront) can briefly
		// hold depth+1 packets.
		ni.injQ[c].buf = make([]*flit.Packet, p.InjectQueueDepth+1)
	}
	for v := range ni.localCredits {
		ni.localCredits[v] = p.BufferDepth
		ni.fwdOutVC[v] = -1
	}
	ni.setClass(false)
	for _, pc := range p.PerfCentric {
		if pc == id {
			ni.setClass(true)
		}
	}
}

// setClass assigns this NI's wakeup behaviour to the performance-centric
// or power-centric class (Section 4.4).
func (ni *NI) setClass(perf bool) {
	p := &ni.net.p
	if perf {
		ni.threshold = p.ThresholdPerf
		ni.quietNeed = 2 * p.WakeupWindow
		ni.gateSlack = 0
	} else {
		ni.threshold = p.ThresholdPower
		ni.quietNeed = p.WakeupWindow
		ni.gateSlack = 1
	}
}

// inject enqueues a packet for injection; it reports false (backpressure)
// when the class queue is full.
func (ni *NI) inject(p *flit.Packet) bool {
	c := int(p.Class)
	if ni.injQ[c].len() >= ni.net.p.InjectQueueDepth {
		return false
	}
	p.InjectTime = ni.net.cycle
	ni.injQ[c].pushBack(p)
	ni.queuedTotal++
	ni.net.notePacketInjected(p)
	return true
}

// injectLocal accepts an intra-router packet: its source and destination
// terminals share this concentrated router, so it crosses the NI-local
// path (wire + serialization delay) without touching the network or
// waking the router. Reports false (backpressure) when the local queue
// is full.
func (ni *NI) injectLocal(p *flit.Packet) bool {
	if len(ni.localQ) >= ni.net.p.InjectQueueDepth {
		return false
	}
	p.InjectTime = ni.net.cycle
	p.EnqueueTime = ni.net.cycle
	ni.localQ = append(ni.localQ, timedPkt{p: p, at: ni.net.cycle + 2 + uint64(p.Length)})
	ni.net.notePacketInjected(p)
	return true
}

// queuedPackets returns the number of packets waiting or mid-injection.
func (ni *NI) queuedPackets() int {
	n := ni.queuedTotal
	if len(ni.curFlits) > 0 {
		n++
	}
	return n
}

// injectInFlight reports flits on the NI->router local wire (part of the
// IC incoming check).
func (ni *NI) injectInFlight() bool { return len(ni.toLocal) > 0 }

// wantsRouterOn reports whether the node needs its router awake: for
// conventional designs any pending injection requires the router
// (node-router dependence); NoRD never does.
func (ni *NI) wantsRouterOn() bool {
	if ni.net.p.Design == NoRD {
		return false
	}
	return ni.queuedPackets() > 0
}

// wakeupMetricHigh reports whether the windowed VC-request count has
// reached this node's threshold (NoRD's wakeup condition).
func (ni *NI) wakeupMetricHigh() bool {
	return ni.window.Sum() >= uint64(ni.threshold)
}

// deliverEject accepts a flit leaving the router's Local output (ST
// stage); it reaches the node next cycle.
func (ni *NI) deliverEject(f *flit.Flit) {
	ni.ejPend = append(ni.ejPend, timedFlit{f: f, at: ni.net.cycle + 1})
}

// deliverBypass accepts a flit arriving over the Bypass Inport link while
// the router is gated off (or mid-bypass after a wakeup). Flits destined
// to this node are sunk directly through the ejection demultiplexer;
// transit flits land in the per-VC bypass latch.
func (ni *NI) deliverBypass(f *flit.Flit) {
	r := ni.net.routers[ni.id]
	inDir := ni.net.ring.InDir(ni.id)
	if f.Kind.IsHead() {
		f.Packet.Hops++
	}
	if f.Packet.Dst == ni.id {
		// Sink: the latch is not occupied, so the credit returns at once.
		ni.net.creditReturn(ni.sh, ni.id, inDir, f.VC)
		ni.net.noteBypassEject(ni.sh)
		if r.bypassRemaining[f.VC] > 0 {
			r.bypassRemaining[f.VC]--
			r.bypassSum--
		}
		if f.Kind.IsTail() {
			ni.net.deliverPacket(ni.sh, f.Packet)
		} else if f.Kind.IsHead() {
			r.bypassSum += f.Packet.Length - 1 - r.bypassRemaining[f.VC]
			r.bypassRemaining[f.VC] = f.Packet.Length - 1
		}
		ni.sh.pool.PutFlit(f)
		return
	}
	if ni.latch[f.VC] != nil {
		ni.net.failSh(ni.sh, &fault.ProtocolError{Cycle: ni.net.cycle, Router: ni.id,
			Msg: "bypass latch overrun (ring credit protocol violated)"})
		return
	}
	if ni.net.p.AggressiveBypass && ni.tryAggressiveForward(r, f) {
		return
	}
	ni.latch[f.VC] = f
	ni.latchCount++
	if f.Kind.IsHead() {
		r.bypassSum += f.Packet.Length - 1 - r.bypassRemaining[f.VC]
		r.bypassRemaining[f.VC] = f.Packet.Length - 1
	} else if r.bypassRemaining[f.VC] > 0 {
		r.bypassRemaining[f.VC]--
		r.bypassSum--
	}
}

// tryAggressiveForward implements the Section 6.8 aggressive bypass:
// forward the arriving flit combinationally from the Bypass Inport to the
// Bypass Outport within this cycle, optimistically assuming no conflict.
// It succeeds only when nothing else wants the outport (no latched flits,
// no pending re-injection, no local traffic) and the downstream VC and
// credit are immediately available; otherwise the caller falls back to
// the normal 2-cycle latch pipeline.
func (ni *NI) tryAggressiveForward(r *Router, f *flit.Flit) bool {
	if ni.injectOut != nil || ni.curMode == modeRing || ni.latchCount > 0 || ni.localRingHeadPending(r) {
		return false
	}
	ringOut := ni.net.ring.OutDir(ni.id)
	v := f.VC
	if f.Kind.IsHead() && ni.fwdOutVC[v] < 0 {
		granted := false
		for _, c := range ni.net.bypassCands(r, f.Packet, 0) {
			if r.outOwner[ringOut][c.vc] != ownerFree || r.outCredits[ringOut][c.vc] <= 0 {
				continue
			}
			r.outOwner[ringOut][c.vc] = owner{port: ownerBypassPort, vc: int16(v)}
			ni.fwdOutVC[v] = c.vc
			ni.fwdCount++
			if c.escape && !f.Packet.Escaped {
				f.Packet.Escaped = true
				ni.net.noteEscape(ni.sh, ni.id)
			}
			if c.escape {
				f.Packet.EscapeVC = c.escapeVCNext
			}
			if c.misroute {
				f.Packet.Misroutes++
				ni.net.noteMisroute(ni.sh, ni.id)
			}
			granted = true
			break
		}
		if !granted {
			return false
		}
	}
	out := ni.fwdOutVC[v]
	if out < 0 || r.outCredits[ringOut][out] <= 0 {
		return false
	}
	r.outCredits[ringOut][out]--
	// Maintain the mid-bypass bookkeeping exactly as the latch path does
	// so wakeups mid-packet behave identically.
	if f.Kind.IsHead() {
		r.bypassSum += f.Packet.Length - 1 - r.bypassRemaining[v]
		r.bypassRemaining[v] = f.Packet.Length - 1
	} else if r.bypassRemaining[v] > 0 {
		r.bypassRemaining[v]--
		r.bypassSum--
	}
	// The latch was never occupied: the upstream credit returns at once.
	ni.net.creditReturn(ni.sh, ni.id, ni.net.ring.InDir(ni.id), v)
	f.VC = out
	ni.net.sendLinkDelay(ni.id, ringOut, f, 1)
	if ni.net.collecting {
		r.statBypassFlits++
	}
	ni.net.noteBypassHop(ni.sh, ni.id)
	if f.Kind.IsTail() {
		r.outOwner[ringOut][out] = ownerFree
		ni.fwdOutVC[v] = -1
		ni.fwdCount--
	}
	return true
}

// tickDeliver processes flits whose wire delay expired: ejections reach
// the node and injected flits reach the router's Local input port.
func (ni *NI) tickDeliver() {
	now := ni.net.cycle
	keepEj := ni.ejPend[:0]
	for _, tf := range ni.ejPend {
		if tf.at > now {
			keepEj = append(keepEj, tf)
			continue
		}
		if tf.f.Kind.IsTail() {
			ni.net.deliverPacket(ni.sh, tf.f.Packet)
		}
		ni.sh.pool.PutFlit(tf.f)
	}
	ni.ejPend = keepEj
	if len(ni.localQ) > 0 {
		keepLoc := ni.localQ[:0]
		for _, tp := range ni.localQ {
			if tp.at > now {
				keepLoc = append(keepLoc, tp)
				continue
			}
			if ni.net.collecting && tp.p.InjectTime >= ni.net.measureFrom {
				ni.sh.col.LocalFlits += uint64(tp.p.Length)
			}
			ni.net.deliverPacket(ni.sh, tp.p)
		}
		ni.localQ = keepLoc
	}
	keepIn := ni.toLocal[:0]
	for _, tf := range ni.toLocal {
		if tf.at > now {
			keepIn = append(keepIn, tf)
			continue
		}
		ni.net.routers[ni.id].acceptFlit(topology.Local, tf.f)
	}
	ni.toLocal = keepIn
}

// tick runs one NI cycle: the bypass stage-3 send, the bypass stage-2
// VC-check/forward (arbitrated with local injection), local-port
// injection, and the wakeup-metric window update.
func (ni *NI) tick() {
	ni.lastTick = ni.net.cycle
	r := ni.net.routers[ni.id]
	requests := uint32(0)

	if ni.net.p.Design == NoRD {
		requests += ni.tickBypass(r)
	}
	requests += ni.tickInjection(r)

	// Through-traffic counts as demand while the router is on (the NI's
	// VC requests stop once the router serves packets normally, but the
	// node's demand has not dropped).
	ni.window.Push(requests + r.saGrantsLastCycle)
	ni.demandAccum += uint64(requests) + uint64(r.saGrantsLastCycle)
	if ni.window.Sum() <= ni.gateSlack {
		ni.quietRun++
	} else {
		ni.quietRun = 0
	}
	ni.net.noteVCRequests(ni.sh, requests)
}

// tickBypass runs the NoRD bypass pipeline. It returns the number of VC
// requests made this cycle (for the wakeup metric).
func (ni *NI) tickBypass(r *Router) uint32 {
	ringOut := ni.net.ring.OutDir(ni.id)
	// Stage 3: re-inject last cycle's winner onto the Bypass Outport.
	if ni.injectOut != nil {
		f := ni.injectOut
		ni.injectOut = nil
		ni.net.sendLink(ni.id, ringOut, f)
		if ni.injectFwd {
			if ni.net.collecting {
				r.statBypassFlits++
			}
			ni.net.noteBypassHop(ni.sh, ni.id)
		} else {
			ni.net.noteBypassInject(ni.sh)
		}
		if f.Kind.IsTail() {
			r.outOwner[ringOut][f.VC] = ownerFree
			if !ni.injectFwd {
				ni.curFlits = nil
				ni.curMode = modeNone
			}
		}
	}

	// Stage 2: pick the next flit for the inject register, forwarded
	// traffic first; the local node gets priority after StarvationLimit
	// consecutive blocked cycles (Section 4.2). Every occupied latch VC
	// is tried in rotating order so one blocked head cannot starve a
	// movable flit (whose departure may free the very VC the head needs).
	V := ni.net.p.vcsPerPort()
	hasFwd := ni.latchCount > 0
	localWants := ni.localRingHeadPending(r)
	tryForward := func() bool {
		for k := 0; k < V; k++ {
			v := (k + ni.bypassRR) % V
			if ni.latch[v] == nil {
				continue
			}
			if ni.forwardFromLatch(r, v) {
				ni.bypassRR = v + 1
				return true
			}
		}
		return false
	}
	if ni.injectOut == nil {
		localFirst := localWants && ni.starve >= ni.net.p.StarvationLimit
		moved := false
		if !localFirst && hasFwd {
			moved = tryForward()
			if moved && localWants {
				ni.starve++
			}
		}
		if !moved {
			if ni.advanceRingInjection(r) {
				ni.starve = 0
				moved = true
			} else if hasFwd && localFirst {
				moved = tryForward()
			}
		}
	}

	// The wakeup metric counts demand still outstanding after this
	// cycle's VC-check stage: an uncontended transit clears its latch
	// immediately and adds nothing, while congestion leaves flits parked
	// in the latches re-requesting every cycle ("the number of VC
	// requests goes up even if the flits are stalled", Section 4.3).
	requests := uint32(ni.latchCount)
	if !r.on() && (ni.localRingHeadPending(r) || (ni.curMode == modeNone && ni.nextQueuedClass() >= 0)) {
		requests++ // local traffic still waiting for the ring
	}
	if ni.threshold <= 1 && ni.injectOut != nil {
		// Performance-centric routers (threshold 1) also count served
		// transits, so they wake at the first sign of use rather than
		// the first blockage — the "wake up early" intent of the
		// asymmetric classification (Section 4.4).
		requests++
	}

	// Withheld ring credits for VCs whose mid-bypass packet has fully
	// drained after a wakeup (Section 4.3) are restored by
	// restoreRingCredits at the post-NI merge point: the restore writes the
	// ring-upstream neighbour, which may live in another shard.
	return requests
}

// forwardFromLatch tries to move the latch flit on VC v into the inject
// register (the VC-check stage (2) of Figure 4c). Heads allocate a
// downstream VC with the same routing rules the routers use.
func (ni *NI) forwardFromLatch(r *Router, v int) bool {
	f := ni.latch[v]
	ringOut := ni.net.ring.OutDir(ni.id)
	if f.Kind.IsHead() && ni.fwdOutVC[v] < 0 {
		cands := ni.net.bypassCands(r, f.Packet, ni.fwdFails[v])
		granted := false
		for _, c := range cands {
			if r.outOwner[ringOut][c.vc] != ownerFree || r.outCredits[ringOut][c.vc] <= 0 {
				continue
			}
			r.outOwner[ringOut][c.vc] = owner{port: ownerBypassPort, vc: int16(v)}
			ni.fwdOutVC[v] = c.vc
			ni.fwdCount++
			if c.escape && !f.Packet.Escaped {
				f.Packet.Escaped = true
				ni.net.noteEscape(ni.sh, ni.id)
			}
			if c.escape {
				f.Packet.EscapeVC = c.escapeVCNext
			}
			if c.misroute {
				f.Packet.Misroutes++
				ni.net.noteMisroute(ni.sh, ni.id)
			}
			granted = true
			break
		}
		if !granted {
			ni.fwdFails[v]++
			return false
		}
		ni.fwdFails[v] = 0
	}
	out := ni.fwdOutVC[v]
	if out < 0 {
		ni.net.failSh(ni.sh, &fault.ProtocolError{Cycle: ni.net.cycle, Router: ni.id,
			Msg: "bypass body flit without an allocated downstream VC"})
		return false
	}
	if r.outCredits[ringOut][out] <= 0 {
		return false
	}
	r.outCredits[ringOut][out]--
	ni.latch[v] = nil
	ni.latchCount--
	// The latch slot frees: return the ring-upstream credit.
	ni.net.creditReturn(ni.sh, ni.id, ni.net.ring.InDir(ni.id), v)
	f.VC = out
	ni.injectOut = f
	ni.injectFwd = true
	if f.Kind.IsTail() {
		ni.fwdOutVC[v] = -1
		ni.fwdCount--
	}
	return true
}

// localRingHeadPending reports whether local injection needs the ring this
// cycle (a head awaiting a VC or a body flit awaiting movement).
func (ni *NI) localRingHeadPending(r *Router) bool {
	if ni.curMode == modeRing && len(ni.curFlits) > 0 {
		return true
	}
	if ni.curMode != modeNone {
		return false
	}
	// A fresh packet would use the ring when the router is unavailable
	// (NoRD decoupling: inject anyway).
	if r.on() {
		return false
	}
	return ni.nextQueuedClass() >= 0
}

// advanceRingInjection moves one locally injected flit toward the Bypass
// Outport: allocating a downstream VC for a fresh head, or streaming the
// next flit of the in-progress packet.
func (ni *NI) advanceRingInjection(r *Router) bool {
	ringOut := ni.net.ring.OutDir(ni.id)
	if ni.curMode == modeNone {
		if r.on() {
			return false
		}
		c := ni.nextQueuedClass()
		if c < 0 {
			return false
		}
		pkt := ni.injQ[c].front()
		cands := ni.net.bypassCands(r, pkt, ni.injFails)
		for _, cd := range cands {
			if r.outOwner[ringOut][cd.vc] != ownerFree || r.outCredits[ringOut][cd.vc] <= 0 {
				continue
			}
			r.outOwner[ringOut][cd.vc] = owner{port: ownerBypassPort, vc: -1}
			ni.injQ[c].popFront()
			ni.queuedTotal--
			ni.classRR = c + 1
			ni.curBuf = ni.sh.pool.AppendFlits(ni.curBuf[:0], pkt)
			ni.curFlits = ni.curBuf
			ni.curVC = cd.vc
			ni.curMode = modeRing
			pkt.EnqueueTime = ni.net.cycle
			if cd.escape && !pkt.Escaped {
				pkt.Escaped = true
				ni.net.noteEscape(ni.sh, ni.id)
			}
			if cd.escape {
				pkt.EscapeVC = cd.escapeVCNext
			}
			if cd.misroute {
				pkt.Misroutes++
				ni.net.noteMisroute(ni.sh, ni.id)
			}
			break
		}
		if ni.curMode != modeRing {
			ni.injFails++
			return false
		}
		ni.injFails = 0
		// The head moves into the inject register in this same VC-check
		// stage (symmetric with forwardFromLatch).
	}
	if ni.curMode != modeRing || len(ni.curFlits) == 0 {
		return false
	}
	if r.outCredits[ringOut][ni.curVC] <= 0 {
		return false
	}
	f := ni.curFlits[0]
	ni.curFlits = ni.curFlits[1:]
	r.outCredits[ringOut][ni.curVC]--
	f.VC = ni.curVC
	ni.injectOut = f
	ni.injectFwd = false
	return true
}

// tickInjection advances local-port injection (router on) and falls back
// to ring injection bookkeeping. It returns VC requests made against the
// local input port this cycle.
func (ni *NI) tickInjection(r *Router) uint32 {
	requests := uint32(0)
	switch ni.curMode {
	case modeNone:
		c := ni.nextQueuedClass()
		if c < 0 {
			return 0
		}
		if !r.on() {
			// Conventional designs stall (their WU assertion is handled
			// by the controller via wantsRouterOn); NoRD's ring path is
			// handled in tickBypass.
			if ni.net.p.Design != NoRD {
				requests++
			}
			return requests
		}
		requests++
		pkt := ni.injQ[c].front()
		if v, ok := ni.freeLocalVC(int(pkt.Class)); ok {
			ni.injQ[c].popFront()
			ni.queuedTotal--
			ni.classRR = c + 1
			ni.curBuf = ni.sh.pool.AppendFlits(ni.curBuf[:0], pkt)
			ni.curFlits = ni.curBuf
			ni.curVC = v
			ni.curMode = modeLocal
			ni.allocCycle = ni.net.cycle
			pkt.EnqueueTime = ni.net.cycle
		}
	case modeLocal:
		if len(ni.curFlits) == 0 {
			ni.curMode = modeNone
			return 0
		}
		if ni.net.cycle <= ni.allocCycle {
			return 0
		}
		// A concentrated local port is C flits wide: up to C flits of the
		// in-progress packet enter the router per cycle (one at
		// concentration 1, the plain mesh behaviour).
		for k := 0; k < ni.net.conc && len(ni.curFlits) > 0; k++ {
			if ni.localCredits[ni.curVC] <= 0 {
				break
			}
			f := ni.curFlits[0]
			ni.curFlits = ni.curFlits[1:]
			ni.localCredits[ni.curVC]--
			f.VC = ni.curVC
			ni.toLocal = append(ni.toLocal, timedFlit{f: f, at: ni.net.cycle + 1})
		}
		if len(ni.curFlits) == 0 {
			ni.curMode = modeNone
		}
	case modeRing:
		// Handled by tickBypass.
	}
	return requests
}

// nextQueuedClass returns the class of the next packet to inject
// (round-robin across classes), or -1 when idle.
func (ni *NI) nextQueuedClass() int {
	if ni.queuedTotal == 0 {
		return -1
	}
	n := len(ni.injQ)
	for k := 0; k < n; k++ {
		c := (k + ni.classRR) % n
		if ni.injQ[c].len() > 0 {
			return c
		}
	}
	return -1
}

// freeLocalVC finds an idle Local-input VC of the class with full credit.
func (ni *NI) freeLocalVC(class int) (int, bool) {
	p := &ni.net.p
	r := ni.net.routers[ni.id]
	base := p.vcBase(class)
	for v := base; v < base+p.VCsPerClass; v++ {
		if r.in[topology.Local][v].phase == vcIdle && ni.localCredits[v] == p.BufferDepth {
			return v, true
		}
	}
	return 0, false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
