package noc

import (
	"testing"

	"nord/internal/flit"
	"nord/internal/traffic"
)

// TestDynamicClassifyTracksHotspot: with demand concentrated on one
// corner of the mesh, dynamic reclassification should promote routers
// near the hotspot into the performance-centric class.
func TestDynamicClassifyTracksHotspot(t *testing.T) {
	p := DefaultParams(NoRD)
	p.DynamicClassify = true
	p.ReclassifyPeriod = 512
	n := MustNew(p)
	n.BeginMeasurement()
	// All traffic into node 0 from its row/column neighborhood.
	inj := traffic.NewSynthetic(n, traffic.Hotspot([]int{0, 1, 4}, 1.0), 0.12, 3)
	for c := 0; c < 6_000; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	perf := n.PerfCentricNow()
	if len(perf) != 6 {
		t.Fatalf("performance-centric class has %d routers, want 3N/8 = 6", len(perf))
	}
	nearHot := 0
	for _, id := range perf {
		if n.topo.HopDist(id, 0) <= 2 {
			nearHot++
		}
	}
	if nearHot < 3 {
		t.Errorf("only %d of the perf-centric routers %v are near the hotspot", nearHot, perf)
	}
}

// TestDynamicClassifyCorrectness: the reclassification machinery must not
// break delivery or conservation invariants.
func TestDynamicClassifyCorrectness(t *testing.T) {
	p := DefaultParams(NoRD)
	p.DynamicClassify = true
	p.ReclassifyPeriod = 256
	stressOne(t, p, traffic.UniformRandom, 0.10, 6000, 81)
}

// TestDynamicClassifyValidation: a zero period is rejected.
func TestDynamicClassifyValidation(t *testing.T) {
	p := DefaultParams(NoRD)
	p.DynamicClassify = true
	p.ReclassifyPeriod = 0
	if err := p.Validate(); err == nil {
		t.Error("zero reclassify period should fail validation")
	}
}

// TestPerfCentricNowStatic reports the fixed planner class when dynamic
// classification is off.
func TestPerfCentricNowStatic(t *testing.T) {
	p := DefaultParams(NoRD)
	p.PerfCentric = []int{2, 4, 5}
	n := MustNew(p)
	got := n.PerfCentricNow()
	if len(got) != 3 {
		t.Fatalf("got %v, want the 3 configured routers", got)
	}
	_ = flit.ClassRequest
}
