package noc

import (
	"errors"
	"testing"

	"nord/internal/fault"
	"nord/internal/traffic"
)

// runFaulted drives synthetic traffic through a faulted network with
// Step (the error-returning path), stops injection, and drains. It
// returns the first structured error, or nil if the run completed.
func runFaulted(n *Network, rate float64, seed int64, cycles, drainBudget int) error {
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, rate, seed)
	for i := 0; i < cycles; i++ {
		inj.Tick(n.Cycle())
		if err := n.Step(); err != nil {
			return err
		}
	}
	inj.Rate = 0
	for i := 0; i < drainBudget && inj.Pending() > 0; i++ {
		inj.Tick(n.Cycle())
		if err := n.Step(); err != nil {
			return err
		}
	}
	return n.Drain(drainBudget)
}

// checkFaultAccounting asserts the conservation invariant of a drained
// faulted run: every unique injected payload was delivered or reported
// lost, and every loss carries an unrecoverable error.
func checkFaultAccounting(t *testing.T, label string, rep *fault.Report) {
	t.Helper()
	if rep == nil {
		t.Fatalf("%s: no fault report", label)
	}
	if rep.PacketsDelivered+rep.PacketsLost != rep.PacketsInjected {
		t.Fatalf("%s: conservation broken: %d delivered + %d lost != %d injected",
			label, rep.PacketsDelivered, rep.PacketsLost, rep.PacketsInjected)
	}
	if rep.PacketsLost > 0 && len(rep.Unrecoverable) == 0 {
		t.Fatalf("%s: %d packets lost but no unrecoverable errors reported", label, rep.PacketsLost)
	}
	if !rep.Recovered() && len(rep.Unrecoverable) == 0 {
		t.Fatalf("%s: not recovered yet nothing reported: %v", label, rep)
	}
}

// TestFaultSoakTransients runs seeded transient-fault schedules
// (corruption, dropped wakeups, stuck-off routers — no hard-fails)
// against all four designs and checks that every triggered fault is
// either recovered or reported, with delivery accounting intact.
func TestFaultSoakTransients(t *testing.T) {
	for _, d := range []Design{NoPG, ConvPG, ConvPGOpt, NoRD} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			p := DefaultParams(d)
			p.Width, p.Height = 4, 4
			n := MustNew(p)
			cfg := fault.Config{
				Seed:         int64(100 + d),
				Horizon:      4_000,
				StuckOff:     2,
				DropWakeups:  3,
				CorruptLinks: 12,
			}
			sched, err := fault.Generate(cfg, p.NumNodes())
			if err != nil {
				t.Fatal(err)
			}
			if err := n.AttachFaults(sched, FaultOptions{}); err != nil {
				t.Fatal(err)
			}
			if err := runFaulted(n, 0.08, 42, 5_000, 200_000); err != nil {
				t.Fatalf("transient faults must be survivable on %v, got %v", d, err)
			}
			rep := n.FaultReport()
			if rep.InjectedTotal() != cfg.Total() {
				t.Fatalf("injected %d != scheduled %d", rep.InjectedTotal(), cfg.Total())
			}
			checkFaultAccounting(t, d.String(), rep)
			if rep.Triggered[fault.CorruptLink] > 0 && rep.Retransmits == 0 {
				t.Fatalf("%d corruptions triggered but no retransmissions issued",
					rep.Triggered[fault.CorruptLink])
			}
			if !n.Quiescent() {
				t.Fatal("network not quiescent after drain")
			}
		})
	}
}

// TestNoRDHardFailGracefulDegradation checks the headline robustness
// claim: NoRD survives permanently hard-failed routers because every
// node stays attached through the non-gated bypass ring. Three routers
// are killed mid-run on an 8x8 mesh; the run must complete without a
// structured error and deliver at least 99% of unique payloads.
func TestNoRDHardFailGracefulDegradation(t *testing.T) {
	p := DefaultParams(NoRD)
	p.Width, p.Height = 8, 8
	n := MustNew(p)
	cfg := fault.Config{Seed: 7, Horizon: 3_000, HardFails: 3, CorruptLinks: 6, DropWakeups: 2}
	sched, err := fault.Generate(cfg, p.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachFaults(sched, FaultOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := runFaulted(n, 0.05, 9, 12_000, 400_000); err != nil {
		t.Fatalf("NoRD must survive hard-failed routers, got %v", err)
	}
	rep := n.FaultReport()
	if rep.Triggered[fault.HardFail] != 3 || rep.RoutersLost != 3 {
		t.Fatalf("want 3 hard-fails triggered, got %d (routers lost %d)",
			rep.Triggered[fault.HardFail], rep.RoutersLost)
	}
	if got := len(n.HardFailedRouters()); got != 3 {
		t.Fatalf("HardFailedRouters reports %d routers, want 3", got)
	}
	if f := rep.DeliveredFraction(); f < 0.99 {
		t.Fatalf("delivered fraction %.4f < 0.99: %v", f, rep)
	}
	checkFaultAccounting(t, "NoRD", rep)
	for _, id := range n.HardFailedRouters() {
		if name := n.RouterStateName(id); name != "failed" {
			t.Fatalf("router %d state %q, want failed", id, name)
		}
	}
}

// TestConvHardFailReportsDeadlock checks the other half of the
// degradation story: designs without the bypass ring lose the failed
// router's node entirely, traffic through it wedges, and the run must
// surface a structured DeadlockError naming the failed routers instead
// of panicking.
func TestConvHardFailReportsDeadlock(t *testing.T) {
	for _, d := range []Design{NoPG, ConvPG} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			p := DefaultParams(d)
			p.Width, p.Height = 4, 4
			p.WatchdogLimit = 3_000
			n := MustNew(p)
			// Kill an interior router so XY routes are guaranteed to cross it.
			sched := fault.FromEvents(fault.Event{Cycle: 500, Kind: fault.HardFail, Router: 5})
			if err := n.AttachFaults(sched, FaultOptions{}); err != nil {
				t.Fatal(err)
			}
			var runErr error
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("run panicked instead of returning an error: %v", r)
					}
				}()
				runErr = runFaulted(n, 0.05, 3, 60_000, 20_000)
			}()
			if runErr == nil {
				t.Fatal("expected a structured failure after hard-failing router 5")
			}
			var de *fault.DeadlockError
			if !errors.As(runErr, &de) {
				t.Fatalf("want DeadlockError, got %T: %v", runErr, runErr)
			}
			if de.Design != d.String() {
				t.Fatalf("deadlock error names design %q, want %q", de.Design, d)
			}
			found := false
			for _, id := range de.FailedRouters {
				if id == 5 {
					found = true
				}
			}
			if !found {
				t.Fatalf("deadlock error should name failed router 5, got %v", de.FailedRouters)
			}
			if len(de.Packets) == 0 || len(de.Packets) > fault.MaxDumpPackets {
				t.Fatalf("packet dump size %d outside (0,%d]", len(de.Packets), fault.MaxDumpPackets)
			}
			// The latched error is sticky: further steps keep returning it.
			if err := n.Step(); !errors.As(err, &de) {
				t.Fatalf("latched error not sticky, got %v", err)
			}
		})
	}
}

// TestFaultScheduleDeterminism runs the same seeded schedule twice and
// requires identical recovery reports.
func TestFaultScheduleDeterminism(t *testing.T) {
	run := func() string {
		p := DefaultParams(NoRD)
		p.Width, p.Height = 4, 4
		n := MustNew(p)
		cfg := fault.Config{Seed: 11, Horizon: 2_000, HardFails: 1, CorruptLinks: 8, DropWakeups: 2, StuckOff: 1}
		sched, err := fault.Generate(cfg, p.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		if err := n.AttachFaults(sched, FaultOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := runFaulted(n, 0.06, 5, 4_000, 200_000); err != nil {
			t.Fatal(err)
		}
		return n.FaultReport().String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same schedule diverged:\n%s\n%s", a, b)
	}
}

// TestRetryBudgetExhaustion corrupts one link so persistently that a
// packet crossing it burns its whole retry budget, and checks the loss
// is reported as an UnrecoverableError rather than silently dropped.
func TestRetryBudgetExhaustion(t *testing.T) {
	p := DefaultParams(NoPG)
	p.Width, p.Height = 4, 4
	n := MustNew(p)
	// Arm far more corruption events on the same link than the retry
	// budget: every retransmission is corrupted again until it is lost.
	var evs []fault.Event
	for i := 0; i < 400; i++ {
		evs = append(evs, fault.Event{Cycle: 10, Kind: fault.CorruptLink, Router: 5, Dir: 0})
	}
	if err := n.AttachFaults(fault.FromEvents(evs...), FaultOptions{
		RetryLimit: 3, RetryBackoffBase: 2, RetryBackoffCap: 8,
	}); err != nil {
		t.Fatal(err)
	}
	if err := runFaulted(n, 0.10, 8, 2_000, 200_000); err != nil {
		t.Fatalf("lost packets must degrade, not error the run: %v", err)
	}
	rep := n.FaultReport()
	if rep.PacketsLost == 0 {
		t.Fatalf("expected lost packets under persistent corruption: %v", rep)
	}
	if len(rep.Unrecoverable) == 0 {
		t.Fatal("losses must be reported as unrecoverable errors")
	}
	var ue *fault.UnrecoverableError
	if !errors.As(rep.Unrecoverable[0], &ue) {
		t.Fatalf("want UnrecoverableError, got %T", rep.Unrecoverable[0])
	}
	if ue.Retries != 3 {
		t.Fatalf("unrecoverable after %d retries, want the RetryLimit of 3", ue.Retries)
	}
	checkFaultAccounting(t, "retry-exhaustion", rep)
}

// TestWatchdogRecoversDroppedWakeup swallows a wakeup handshake on a
// gated router with pending traffic and checks the power-gating
// watchdog eventually force-wakes it.
func TestWatchdogRecoversDroppedWakeup(t *testing.T) {
	for _, d := range []Design{ConvPG, NoRD} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			p := DefaultParams(d)
			p.Width, p.Height = 4, 4
			n := MustNew(p)
			// Drop the next several wakeups on every router so some gated
			// router with demand is guaranteed to exercise the watchdog.
			var evs []fault.Event
			for id := 0; id < p.NumNodes(); id++ {
				evs = append(evs, fault.Event{Cycle: 300, Kind: fault.DropWakeup, Router: id})
			}
			if err := n.AttachFaults(fault.FromEvents(evs...), FaultOptions{WatchdogTimeout: 50}); err != nil {
				t.Fatal(err)
			}
			if err := runFaulted(n, 0.03, 17, 6_000, 400_000); err != nil {
				t.Fatalf("dropped wakeups must be survivable: %v", err)
			}
			rep := n.FaultReport()
			if rep.Triggered[fault.DropWakeup] == 0 {
				t.Skipf("no wakeup was swallowed at this load on %v", d)
			}
			// Conventional PG has no alternative path: a swallowed wakeup
			// must be recovered by the watchdog. On NoRD the bypass ring
			// keeps draining the blocked router's traffic, so demand can
			// evaporate before the timeout and the fault self-heals; only
			// require that the run recovered either way.
			if d == ConvPG && rep.WatchdogWakeups == 0 {
				t.Fatalf("%d wakeups dropped but watchdog never fired: %v",
					rep.Triggered[fault.DropWakeup], rep)
			}
			checkFaultAccounting(t, d.String(), rep)
		})
	}
}
