package noc

import (
	"testing"

	"nord/internal/flit"
	"nord/internal/topology"
)

// forceOff puts a router into the gated-off state directly (decision-level
// tests only; no handshake side effects are needed because no packets are
// in flight).
func forceOff(n *Network, ids ...int) {
	for _, id := range ids {
		n.routers[id].state = powerOff
	}
}

func TestRouteEject(t *testing.T) {
	n := MustNew(DefaultParams(NoRD))
	pkt := &flit.Packet{Src: 0, Dst: 5}
	dec := n.route(n.routers[5], topology.West, pkt, 0)
	if dec.action != actEject {
		t.Errorf("at destination: action %v, want eject", dec.action)
	}
}

func TestRouteConvAdaptiveCandidates(t *testing.T) {
	n := MustNew(DefaultParams(ConvPG))
	pkt := &flit.Packet{Src: 0, Dst: 15}
	dec := n.route(n.routers[0], topology.Local, pkt, 0)
	if dec.action != actPort {
		t.Fatalf("action %v, want port candidates", dec.action)
	}
	// Two minimal dirs (E, S) x 3 adaptive VCs + 1 escape = 7 candidates.
	if len(dec.cands) != 7 {
		t.Errorf("got %d candidates, want 7", len(dec.cands))
	}
	last := dec.cands[len(dec.cands)-1]
	if !last.escape {
		t.Error("last candidate should be the escape fallback")
	}
	for _, c := range dec.cands[:len(dec.cands)-1] {
		if c.escape || c.misroute {
			t.Error("adaptive candidates must not be escape/misroute")
		}
	}
}

func TestRouteConvWakesWhenBlocked(t *testing.T) {
	n := MustNew(DefaultParams(ConvPG))
	// From node 0 to 3: only minimal dir East; gate router 1 off.
	forceOff(n, 1)
	pkt := &flit.Packet{Src: 0, Dst: 3}
	dec := n.route(n.routers[0], topology.Local, pkt, 0)
	if dec.action != actWake || dec.wakeTarget != 1 {
		t.Fatalf("decision %+v, want wake router 1", dec)
	}
	if dec.wuDelay != n.p.EarlyWakeupCycles {
		t.Errorf("Conv_PG WU delay %d, want %d (SA-time assertion)", dec.wuDelay, n.p.EarlyWakeupCycles)
	}
	// Conv_PG_OPT asserts at RC time (no delay).
	n2 := MustNew(DefaultParams(ConvPGOpt))
	forceOff(n2, 1)
	dec2 := n2.route(n2.routers[0], topology.Local, pkt, 0)
	if dec2.action != actWake || dec2.wuDelay != 0 {
		t.Errorf("Conv_PG_OPT decision %+v, want immediate WU", dec2)
	}
}

func TestRouteConvEscapeStarvationWake(t *testing.T) {
	n := MustNew(DefaultParams(ConvPG))
	// Node 5 to 6: minimal East (router 6 on), but XY router is also 6...
	// pick a case where adaptive exists and the XY router is off:
	// from 4 to 7, minimal East via 5,6; XY dir East -> router 5. Gate 5
	// off; adaptive via... minimal is only East. Use 4 -> 15: minimal E
	// (5, off) and S (8, on). XY = East = off.
	forceOff(n, 5)
	pkt := &flit.Packet{Src: 4, Dst: 15}
	dec := n.route(n.routers[4], topology.Local, pkt, 0)
	if dec.action != actPort {
		t.Fatalf("adaptive path via South should exist: %+v", dec)
	}
	// After prolonged starvation the XY escape router must be awoken.
	dec2 := n.route(n.routers[4], topology.Local, pkt, escapeForceAfter)
	if dec2.action != actWake || dec2.wakeTarget != 5 {
		t.Errorf("starved packet should wake the escape router: %+v", dec2)
	}
}

func TestRouteNoRDBypassUsability(t *testing.T) {
	n := MustNew(DefaultParams(NoRD))
	// Ring: 0->1->2->3->7->... Node 0's ring-out is East (to 1).
	// Gate router 1 off. From 0 to 3, minimal = East only; East is 0's
	// Bypass Outport, so router 1 is usable through its bypass.
	forceOff(n, 1)
	pkt := &flit.Packet{Src: 0, Dst: 3}
	dec := n.route(n.routers[0], topology.Local, pkt, 0)
	if dec.action != actPort || len(dec.cands) == 0 {
		t.Fatalf("bypass-usable minimal port missing: %+v", dec)
	}
	if dec.cands[0].dir != topology.East || dec.cands[0].misroute {
		t.Errorf("first candidate %+v, want minimal East without misroute", dec.cands[0])
	}

	// From node 4 (ring-out North, to 0): gate router 5 off. Minimal to
	// 7 is East only; East is NOT 4's bypass outport, so the packet is
	// forced to detour via the ring (misroute) toward node 0.
	forceOff(n, 5)
	pkt2 := &flit.Packet{Src: 4, Dst: 7}
	dec2 := n.route(n.routers[4], topology.Local, pkt2, 0)
	if dec2.action != actPort {
		t.Fatalf("NoRD must never wake for routing: %+v", dec2)
	}
	foundMisroute := false
	for _, c := range dec2.cands {
		if c.misroute && c.dir == n.ring.OutDir(4) {
			foundMisroute = true
		}
	}
	if !foundMisroute {
		t.Errorf("expected a forced ring detour candidate: %+v", dec2.cands)
	}
}

func TestRouteNoRDEscapedConfinement(t *testing.T) {
	n := MustNew(DefaultParams(NoRD))
	pkt := &flit.Packet{Src: 0, Dst: 15, Escaped: true, EscapeVC: 0}
	for id := 0; id < 16; id++ {
		if id == 15 {
			continue
		}
		dec := n.route(n.routers[id], n.ring.InDir(id), pkt, 0)
		if dec.action != actPort || len(dec.cands) != 1 {
			t.Fatalf("escaped packet at %d: %+v, want exactly the ring", id, dec)
		}
		c := dec.cands[0]
		if c.dir != n.ring.OutDir(id) || !c.escape {
			t.Errorf("escaped packet at %d offered %+v", id, c)
		}
		if c.escapeVCNext < c.vc%n.p.VCsPerClass {
			t.Errorf("dateline VC went backward at %d: %+v", id, c)
		}
	}
}

func TestRouteNoRDDatelineSwitch(t *testing.T) {
	n := MustNew(DefaultParams(NoRD))
	// The dateline is the link into ring position 0 (node 0); its ring
	// predecessor is node 4.
	pred := n.ring.Pred(0)
	pkt := &flit.Packet{Src: 8, Dst: 1, Escaped: true, EscapeVC: 0}
	dec := n.route(n.routers[pred], n.ring.InDir(pred), pkt, 0)
	if dec.cands[0].escapeVCNext != 1 {
		t.Errorf("crossing the dateline must switch to escape VC 1: %+v", dec.cands[0])
	}
	// Elsewhere it stays.
	other := n.ring.Pred(pred)
	dec2 := n.route(n.routers[other], n.ring.InDir(other), pkt, 0)
	if dec2.cands[0].escapeVCNext != 0 {
		t.Errorf("non-dateline hop must keep escape VC 0: %+v", dec2.cands[0])
	}
}

func TestBypassCandsMisrouteCap(t *testing.T) {
	n := MustNew(DefaultParams(NoRD))
	forceOff(n, 1)
	// Transit at off router 1 (ring-out East toward 2). Destination 0:
	// minimal is West; the forced East hop is a misroute.
	pkt := &flit.Packet{Src: 3, Dst: 0}
	cands := n.bypassCands(n.routers[1], pkt, 0)
	if len(cands) == 0 || !cands[0].misroute {
		t.Fatalf("expected misroute candidates: %+v", cands)
	}
	// At the cap, only the escape remains.
	pkt.Misroutes = n.p.MisrouteCap
	cands = n.bypassCands(n.routers[1], pkt, 0)
	if len(cands) != 1 || !cands[0].escape {
		t.Errorf("at the cap only escape should be offered: %+v", cands)
	}
	// A minimal ring hop never counts as a misroute regardless of count.
	pkt2 := &flit.Packet{Src: 0, Dst: 3, Misroutes: n.p.MisrouteCap}
	cands = n.bypassCands(n.routers[1], pkt2, 0)
	hasAdaptive := false
	for _, c := range cands {
		if !c.escape && c.misroute {
			t.Errorf("minimal ring hop flagged as misroute: %+v", c)
		}
		if !c.escape {
			hasAdaptive = true
		}
	}
	if !hasAdaptive {
		t.Error("minimal ring hop should keep adaptive latches usable")
	}
}

func TestRouteNoRDEscapeLastResort(t *testing.T) {
	n := MustNew(DefaultParams(NoRD))
	pkt := &flit.Packet{Src: 0, Dst: 15}
	dec := n.route(n.routers[0], topology.Local, pkt, 0)
	for _, c := range dec.cands {
		if c.escape {
			t.Error("fresh packet with adaptive options should not be offered escape")
		}
	}
	dec = n.route(n.routers[0], topology.Local, pkt, escapeAfterNoRD)
	found := false
	for _, c := range dec.cands {
		if c.escape {
			found = true
		}
	}
	if !found {
		t.Error("starved packet must be offered the escape ring")
	}
}

func TestOrderByCreditPrefersFreeDirection(t *testing.T) {
	n := MustNew(DefaultParams(NoPG))
	r := n.routers[0]
	// Exhaust East credits on the adaptive range.
	base := 0
	lo, hi := base+n.p.escapeVCs(), base+n.p.VCsPerClass
	for v := lo; v < hi; v++ {
		r.outCredits[topology.East][v] = 0
	}
	dirs := []topology.Dir{topology.East, topology.South}
	n.orderByCredit(r, dirs, lo, hi)
	if dirs[0] != topology.South {
		t.Errorf("credit ordering failed: %v", dirs)
	}
}
