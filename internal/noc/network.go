package noc

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"

	"nord/internal/fault"
	"nord/internal/flit"
	"nord/internal/obs"
	"nord/internal/stats"
	"nord/internal/topology"
)

// defaultWatchdogLimit is the number of consecutive cycles without any
// flit movement (while packets are in flight) after which the network
// declares itself deadlocked. Wakeup latencies are tens of cycles, so tens
// of thousands of stalled cycles indicate a protocol bug (or, with fault
// injection active, a partition). Params.WatchdogLimit overrides it.
const defaultWatchdogLimit = 50_000

// creditEvt is a pending credit return, applied at the end of the cycle
// (one-cycle credit propagation).
type creditEvt struct {
	router int
	port   topology.Dir
	vc     int
}

// Network is the complete NoC fabric: routers, NIs, links and the
// measurement machinery, advanced one cycle at a time by Tick.
type Network struct {
	p    Params
	topo topology.Topology
	// term is the terminal grid (topo.Terminals()); traffic sources
	// address terminals, which the injection path maps onto routers. For
	// concentration-1 topologies it is the identity frame over the router
	// grid. conc caches topo.Concentration() for the hot paths.
	term topology.Mesh
	conc int
	ring *topology.Ring

	routers []*Router
	nis     []*NI

	// links[id][dir] holds flits in flight on the unidirectional channel
	// leaving router id through dir.
	links [][4][]timedFlit

	cycle        uint64
	col          *stats.NoC
	collecting   bool
	measureFrom  uint64
	idle         []*stats.IdleTracker
	ejectHandler func(*flit.Packet, uint64)
	injectHook   func(*flit.Packet, uint64)

	// nbrTab caches topo.Neighbor for the hot paths: nbrTab[id*5+dir] is
	// the adjacent node id, or -1 when the port is unwired (mesh edges;
	// a torus has every grid port wired) — and always -1 for the Local
	// pseudo-direction.
	nbrTab []int32

	inFlight     int
	lastProgress uint64
	nextPktID    uint64

	// faults is the attached fault injector (nil when no schedule is
	// armed); err latches the first structured error — once set, every
	// subsequent Step returns it without advancing the simulation.
	faults *faultInjector
	err    error

	// tracer is the optional cycle-level event sink (internal/obs). Nil
	// when tracing is off: every hook is behind a single nil check, so
	// the steady-state tick path stays allocation-free.
	tracer *obs.Tracer

	// Sharded parallel kernel state (shard.go). shards always holds at
	// least one shard: the serial kernel is the single-shard special
	// case, running the same sections inline. shardOf maps node id to
	// owning shard index; sharded is len(shards) > 1; par is the lazily
	// spawned worker fleet; evScratch/dropScratch are the merge-time
	// replay buffers; poolPtrs collects the per-shard flit pools for
	// periodic leveling.
	shards      []*shard
	shardOf     []int32
	sharded     bool
	par         *parKernel
	evScratch   []defEvent
	dropScratch []pendingDrop
	poolPtrs    []*flit.Pool

	// Event-sparse kernel state. activeMask is a bitset of the nodes that
	// must be ticked; a node leaves the set when nodeNeedsTick turns false
	// and rejoins through activate() when an event touches it again.
	// lastTicked records, per node, the cycle through which its per-cycle
	// accounting (idle/power statistics, the NI quiet-run counter) has
	// been applied; statEpoch is the cycle the network as a whole has been
	// accounted through, so activate() can back-fill a dormant stretch in
	// one step. sparse is false in full-scan mode (Params.FullScanTick or
	// an armed fault schedule), where every bit stays set and the kernel
	// degenerates to the original walk-everything loop.
	nn         int
	sparse     bool
	activeMask []uint64
	idScratch  []int
	lastTicked []uint64
	statEpoch  uint64
	// linkCount[id] counts flits in flight on node id's output links, so
	// link delivery can skip nodes whose channels are idle.
	linkCount []int

	// minDirs/xyDirs are the precomputed routing tables, indexed
	// src*nn+dst (nil beyond routeTableMaxNodes; directions are then
	// computed arithmetically, still allocation-free).
	minDirs []topology.DirSet
	xyDirs  []topology.Dir
}

// New builds a network from validated parameters.
func New(p Params) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	topo, err := topology.New(p.Topology, p.Width, p.Height)
	if err != nil {
		return nil, err
	}
	n := &Network{
		p:     p,
		topo:  topo,
		term:  topo.Terminals(),
		conc:  topo.Concentration(),
		col:   stats.NewNoC(p.MaxIdlePeriod),
		links: make([][4][]timedFlit, topo.N()),
		idle:  make([]*stats.IdleTracker, topo.N()),
	}
	if p.Design == NoRD {
		var ring *topology.Ring
		if p.RingOrder != nil {
			ring, err = topology.RingFromOrder(topo, p.RingOrder)
		} else {
			ring, err = topology.NewRing(topo)
		}
		if err != nil {
			return nil, fmt.Errorf("noc: building bypass ring: %w", err)
		}
		n.ring = ring
	}
	n.nn = topo.N()
	n.sparse = !p.FullScanTick
	n.activeMask = make([]uint64, (n.nn+63)/64)
	n.idScratch = make([]int, 0, n.nn)
	n.lastTicked = make([]uint64, n.nn)
	n.linkCount = make([]int, n.nn)
	n.nbrTab = make([]int32, n.nn*int(topology.NumDirs))
	for id := 0; id < n.nn; id++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			nb, ok := topo.Neighbor(id, d)
			if !ok {
				nb = -1
			}
			n.nbrTab[id*int(topology.NumDirs)+int(d)] = int32(nb)
		}
	}
	n.setAllActive()
	n.buildRouteTables()
	// Spatial domain decomposition: P contiguous shards of node IDs (the
	// serial kernel is the P=1 case of the same machinery). Shards must
	// exist before router/NI construction, which binds each node to its
	// owner.
	P := p.Parallelism
	if P < 1 {
		P = 1
	}
	if P > n.nn {
		P = n.nn
	}
	n.shards = make([]*shard, P)
	n.shardOf = make([]int32, n.nn)
	n.poolPtrs = make([]*flit.Pool, P)
	for i := 0; i < P; i++ {
		sh := &shard{
			idx: i,
			lo:  i * n.nn / P,
			hi:  (i + 1) * n.nn / P,
			col: stats.NewNoC(p.MaxIdlePeriod),
		}
		sh.ids = make([]int, 0, sh.hi-sh.lo)
		n.shards[i] = sh
		n.poolPtrs[i] = &sh.pool
		for id := sh.lo; id < sh.hi; id++ {
			n.shardOf[id] = int32(i)
		}
	}
	n.sharded = P > 1
	// Routers and NIs live in two contiguous arrays: the per-cycle loops
	// walk them in index order, so locality matters more than it would for
	// individually boxed objects.
	rbuf := make([]Router, n.nn)
	nbuf := make([]NI, n.nn)
	n.routers = make([]*Router, n.nn)
	n.nis = make([]*NI, n.nn)
	for id := 0; id < n.nn; id++ {
		n.routers[id] = &rbuf[id]
		initRouter(n.routers[id], id, n)
		n.nis[id] = &nbuf[id]
		initNI(n.nis[id], id, n)
		n.idle[id] = stats.NewIdleTracker(p.MaxIdlePeriod)
	}
	if p.Design == NoRD && p.ForcedOff {
		// Routers start gated off: each ring upstream holds the single
		// bypass-latch credit per VC (Section 4.3).
		for id := 0; id < n.nn; id++ {
			out := n.ring.OutDir(id)
			for v := range n.routers[id].outCredits[out] {
				n.routers[id].outCredits[out][v] = 1
			}
		}
	}
	return n, nil
}

// MustNew is New that panics on invalid parameters.
func MustNew(p Params) *Network {
	n, err := New(p)
	if err != nil {
		panic(err)
	}
	return n
}

// Params returns the network's configuration.
func (n *Network) Params() Params { return n.p }

// Mesh returns the terminal grid: the coordinate frame traffic patterns
// and injection addresses live in. For mesh and torus it coincides with
// the router grid; for the concentrated mesh it is the 2Wx2H terminal
// grid (four terminals per router).
func (n *Network) Mesh() topology.Mesh { return n.term }

// Topo returns the router-level topology.
func (n *Network) Topo() topology.Topology { return n.topo }

// Ring returns the bypass ring (nil for non-NoRD designs).
func (n *Network) Ring() *topology.Ring { return n.ring }

// Cycle returns the current simulation cycle.
func (n *Network) Cycle() uint64 { return n.cycle }

// Collector exposes the raw statistics collector, first syncing the
// lazily accounted per-node counters of dormant nodes (the power time
// series samples cumulative counters mid-run).
func (n *Network) Collector() *stats.NoC {
	n.syncStats()
	n.foldStats()
	return n.col
}

// InFlight returns the number of packets injected but not yet delivered.
func (n *Network) InFlight() int { return n.inFlight }

// SetTracer attaches (or, with nil, detaches) the cycle-level event sink.
// With no tracer attached every hook on the tick path is a single nil
// check, preserving the zero-allocation steady state.
func (n *Network) SetTracer(t *obs.Tracer) {
	n.tracer = t
	if t != nil {
		t.SetNodes(n.nn)
	}
}

// Tracer returns the attached event sink (nil when tracing is off).
func (n *Network) Tracer() *obs.Tracer { return n.tracer }

// SetDeliveryHandler registers a callback invoked when a packet's tail is
// ejected at its destination (used by the memory-system substrate).
func (n *Network) SetDeliveryHandler(f func(*flit.Packet, uint64)) { n.ejectHandler = f }

// BeginMeasurement starts statistics collection (call after warmup).
// Packets injected before this cycle do not contribute latency samples.
func (n *Network) BeginMeasurement() {
	// Consume the dormant stretches accumulated during warmup against the
	// pre-measurement interval, so the measured window starts clean.
	n.syncStats()
	n.foldStats()
	n.collecting = true
	n.measureFrom = n.cycle
}

// FinishMeasurement flushes per-router trackers into the collector.
func (n *Network) FinishMeasurement() {
	n.syncStats()
	n.foldStats()
	for _, it := range n.idle {
		it.Flush()
		n.col.IdlePeriods.Merge(it.Periods())
		n.col.IdleCycles += it.IdleCycles()
		n.col.BusyCycles += it.BusyCycles()
	}
}

// NewPacket returns a packet with a unique ID, ready for Inject, drawn
// from the network's recycling pool.
func (n *Network) NewPacket(src, dst int, class flit.Class, length int) *flit.Packet {
	n.nextPktID++
	pool := &n.shards[0].pool
	if src >= 0 && src < n.term.N() {
		pool = &n.shardFor(n.topo.TerminalRouter(src)).pool
	}
	p := pool.Packet()
	p.ID = n.nextPktID
	p.Src = src
	p.Dst = dst
	p.Class = class
	p.Length = length
	return p
}

// SetInjectHook registers a callback invoked for every packet accepted
// into an NI (used by the trace recorder).
func (n *Network) SetInjectHook(f func(*flit.Packet, uint64)) { n.injectHook = f }

// Inject queues a packet at its source NI; it reports false when the
// injection queue is full (backpressure to the traffic source). Src and
// Dst are terminal IDs; on concentrated topologies they are rewritten to
// the serving routers' IDs once the packet is accepted. Terminals of the
// same router exchange packets over the widened local port without
// entering the network.
func (n *Network) Inject(p *flit.Packet) bool {
	if !n.term.Valid(p.Src) || !n.term.Valid(p.Dst) || p.Src == p.Dst {
		return false
	}
	src, dst := p.Src, p.Dst
	if n.conc > 1 {
		src = n.topo.TerminalRouter(src)
		dst = n.topo.TerminalRouter(dst)
	}
	n.activate(src)
	if src == dst {
		if !n.nis[src].injectLocal(p) {
			return false
		}
	} else if !n.nis[src].inject(p) {
		return false
	}
	p.Src, p.Dst = src, dst
	if n.injectHook != nil {
		n.injectHook(p, n.cycle)
	}
	return true
}

// RouterPowerOn reports whether router id is powered on (PG deasserted).
func (n *Network) RouterPowerOn(id int) bool { return n.routers[id].on() }

// RouterStateName returns "on", "off", "waking" or "failed" for router id.
func (n *Network) RouterStateName(id int) string {
	if n.routers[id].hardFailed {
		return "failed"
	}
	return n.routers[id].state.String()
}

// fail latches the first structured error; the simulation stops advancing
// once set. Later failures are dropped: the first one is the cause.
func (n *Network) fail(err error) {
	if n.err == nil {
		n.err = err
	}
}

// Err returns the latched error, if any.
func (n *Network) Err() error { return n.err }

// watchdogLimit returns the configured no-progress horizon.
func (n *Network) watchdogLimit() uint64 {
	if n.p.WatchdogLimit > 0 {
		return uint64(n.p.WatchdogLimit)
	}
	return defaultWatchdogLimit
}

// Tick advances the network by one cycle, panicking on a structured
// error. Prefer Step in code that can propagate errors; Tick keeps the
// legacy call sites (and the many tests built on them) working with the
// same crash-on-corruption semantics they had before.
func (n *Network) Tick() {
	if err := n.Step(); err != nil {
		panic(err)
	}
}

// Step advances the network by one cycle. It returns a structured error
// (*fault.DeadlockError, *fault.ProtocolError) instead of panicking when
// the network deadlocks or a flow-control invariant breaks; once an error
// is returned the network is frozen and every later Step returns the same
// error.
func (n *Network) Step() error {
	if n.err != nil {
		return n.err
	}
	n.cycle++

	// 0. Fault injection: due events, hard-fail activation, retransmits.
	// Serial: the injector pokes arbitrary routers.
	if n.faults != nil {
		n.faults.tick(n)
	}
	if n.sharded && n.par == nil && n.ejectHandler == nil {
		n.spawnWorkers()
	}
	// Each parallel section walks a fresh snapshot of its shard's active
	// worklist: a node activated mid-cycle (flit delivery, wakeup
	// assertion, injection) joins the remaining phases of the same cycle
	// — exactly the phases that could observe it in a full scan, since a
	// dormant node's earlier phases are no-ops by construction (empty
	// datapath, empty queues, settled power state). Cross-shard effects
	// are deferred into per-shard buffers and committed at the merge
	// points between sections, in the serial kernel's order.
	// 1. Link traversal completion: deliver flits whose LT finished.
	n.runPhase(secLinks)
	n.mergeLinks()
	// 2-4. NI wire deliveries, router ST, NI pipelines — fused into one
	// pass per node. Safe because within these three phases no node reads
	// state another node writes the same cycle (ST and the NI engines
	// emit onto links with >= 1 cycle of delay; the one cross-node write
	// of the serial kernel, the ring-upstream credit restore, is hoisted
	// to the merge), and none of the three activates new nodes, so the
	// snapshot is stable.
	n.runPhase(secNode)
	n.mergeNode()
	// 5-7. Router SA, VA, RC (reverse pipeline order so a flit advances
	// at most one stage per cycle), likewise fused: these stages touch
	// only their own router's datapath (credit returns are deferred to
	// phase 9) and the nodes they activate — wakeup targets — are
	// dormant, with empty pipelines, so deferring their activation to the
	// merge matches the full scan's no-ops.
	n.runPhase(secRouter)
	n.mergeRouter()
	// 8. Power-gating controllers. Serial: gate-off and wake transitions
	// write neighbor pipeline and credit state across shard boundaries,
	// and the wakeup conditions read neighbor pipelines.
	for _, id := range n.collectActive() {
		r := n.routers[id]
		r.saGrantsLastCycle = r.saGrantsThisCycle
		r.saGrantsThisCycle = 0
		r.tickController()
	}
	// 8b. Dynamic reclassification (Section 4.4 extension).
	if n.p.Design == NoRD && n.p.DynamicClassify && n.cycle%uint64(n.p.ReclassifyPeriod) == 0 {
		n.reclassify()
	}
	// 9. Credit propagation, in (shard, emission) order. Credit grants
	// are commutative increments, so the folded order is equivalent to
	// the serial kernel's chronological order.
	for _, sh := range n.shards {
		for _, ev := range sh.credits {
			n.applyCredit(ev)
		}
		sh.credits = sh.credits[:0]
	}
	// 10-11. Per-node accounting and the deactivation sweep.
	n.runPhase(secStats)
	if n.collecting {
		n.col.Cycles++
	}
	n.statEpoch = n.cycle
	if n.tracer != nil {
		if row := n.tracer.ResidencyRow(n.cycle); row != nil {
			for id, r := range n.routers {
				s := uint8(r.state)
				if r.hardFailed {
					s = obs.StateFailed
				}
				row[id] = s
			}
		}
	}
	// Epilogue: fold the per-shard per-cycle accumulators, then run the
	// deadlock watchdog against the folded progress flag.
	progressed := false
	for _, sh := range n.shards {
		progressed = progressed || sh.progressed
		sh.progressed = false
		n.inFlight += sh.inFlightDelta
		sh.inFlightDelta = 0
		if n.faults != nil {
			n.faults.report.Triggered[fault.CorruptLink] += int(sh.repCorrupt)
			n.faults.report.FlitsCorrupted += sh.repCorrupt
			n.faults.report.PacketsPoisoned += sh.repPoisoned
			n.faults.report.PacketsDelivered += sh.repDelivered
			sh.repCorrupt, sh.repPoisoned, sh.repDelivered = 0, 0, 0
		}
	}
	if progressed {
		n.lastProgress = n.cycle
	} else if n.inFlight > 0 && n.cycle-n.lastProgress > n.watchdogLimit() {
		n.fail(&fault.DeadlockError{
			Design:        n.p.Design.String(),
			Cycle:         n.cycle,
			StallCycles:   n.watchdogLimit(),
			InFlight:      n.inFlight,
			Packets:       n.collectInFlightDump(fault.MaxDumpPackets),
			FailedRouters: n.HardFailedRouters(),
		})
	}
	// Packets born in one shard are often recycled in another: level the
	// per-shard free-lists periodically so a sink-heavy shard's pool does
	// not grow while a source-heavy one allocates. No-op when serial.
	if n.sharded && n.cycle&4095 == 0 {
		flit.Level(n.poolPtrs)
	}
	return n.err
}

// setAllActive marks every node active (full-scan mode, initialisation).
func (n *Network) setAllActive() {
	for w := range n.activeMask {
		atomic.StoreUint64(&n.activeMask[w], ^uint64(0))
	}
	if r := uint(n.nn) & 63; r != 0 {
		atomic.StoreUint64(&n.activeMask[len(n.activeMask)-1], (uint64(1)<<r)-1)
	}
}

// collectActive snapshots the whole active worklist into a reusable
// scratch slice, in ascending node order — the same iteration order as
// the original full scan, so arbitration and statistics stay
// bit-identical. Serial phases only; sections use shardActive.
func (n *Network) collectActive() []int {
	ids := n.idScratch[:0]
	for w := range n.activeMask {
		word := atomic.LoadUint64(&n.activeMask[w])
		base := w << 6
		for word != 0 {
			ids = append(ids, base+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	n.idScratch = ids
	return ids
}

// activate puts node id on the active worklist, first back-filling the
// per-cycle accounting it skipped while dormant (during which, by the
// deactivation invariant, its datapath was empty, its power state
// constant and its demand window zero). Call it before the triggering
// event mutates any of that state. Inside a parallel section it may only
// be called for shard-local nodes (cross-shard wakes go through
// activateFrom); the bit operations are atomic because boundary words of
// the mask are shared between adjacent shards.
func (n *Network) activate(id int) {
	w := uint(id) >> 6
	bit := uint64(1) << (uint(id) & 63)
	if atomic.LoadUint64(&n.activeMask[w])&bit != 0 {
		return
	}
	atomic.OrUint64(&n.activeMask[w], bit)
	n.flushNode(id)
}

// flushNode applies the per-cycle accounting node id skipped while
// dormant: NI quiet-run cycles (a dormant node's windowed demand is zero,
// which never exceeds the gating slack) and, while measuring, the
// idle-tracker and power-state cycle counters.
func (n *Network) flushNode(id int) {
	last := n.lastTicked[id]
	gap := n.statEpoch - last
	if gap == 0 {
		return
	}
	n.lastTicked[id] = n.statEpoch
	n.nis[id].quietRun += int(gap)
	if !n.collecting {
		return
	}
	if last < n.measureFrom {
		// The stretch straddles BeginMeasurement: only the measured part
		// feeds statistics.
		if n.statEpoch <= n.measureFrom {
			return
		}
		gap = n.statEpoch - n.measureFrom
	}
	r := n.routers[id]
	n.idle[id].RecordRun(r.busy(), gap)
	col := n.shardFor(id).col
	switch r.state {
	case powerOn:
		col.RouterOnCycles += gap
	case powerOff:
		col.RouterOffCycles += gap
		r.statOffCycles += gap
	case powerWaking:
		col.RouterWakingCycles += gap
	}
}

// syncStats back-fills the lazily accounted statistics of every dormant
// node up to the current cycle, so cumulative counters read mid-run (the
// power time series, mid-run collector probes) are exact.
func (n *Network) syncStats() {
	for id := range n.lastTicked {
		n.flushNode(id)
	}
}

// nodeNeedsTick reports whether node id still has work that requires
// ticking: router datapath or pipeline occupancy, an unfinished
// power-state transition, flits in flight on its output links, or NI-side
// queues, registers and windowed demand. Every mutation that can turn
// this true for a dormant node goes through activate().
func (n *Network) nodeNeedsTick(id int) bool {
	r := n.routers[id]
	if r.bufFlits > 0 || r.stFlits > 0 {
		return true
	}
	if r.phaseCnt[vcRouting] > 0 || r.phaseCnt[vcWaitVA] > 0 ||
		r.phaseCnt[vcActive] > 0 || r.phaseCnt[vcWaitWake] > 0 {
		return true
	}
	if r.saGrantsLastCycle > 0 || r.saGrantsThisCycle > 0 {
		return true
	}
	switch r.state {
	case powerWaking:
		return true
	case powerOn:
		// Gated designs keep powered-on routers ticking so the controller
		// can evaluate gate-off; NoPG routers may sleep once the empty-run
		// counter saturates past the gating horizon (it stops changing).
		if n.p.Design.PowerGated() || r.emptyRun <= n.p.GateIdleCycles {
			return true
		}
	}
	if n.linkCount[id] > 0 {
		return true
	}
	ni := n.nis[id]
	if ni.curMode != modeNone || len(ni.curFlits) > 0 || ni.injectOut != nil {
		return true
	}
	if len(ni.ejPend) > 0 || len(ni.toLocal) > 0 || len(ni.localQ) > 0 {
		return true
	}
	if ni.window.Sum() > 0 {
		return true
	}
	if ni.queuedTotal > 0 {
		return true
	}
	if n.p.Design == NoRD {
		if ni.latchCount > 0 || ni.fwdCount > 0 || r.heldVCs > 0 || r.bypassSum > 0 {
			return true
		}
	}
	return false
}

// Run advances the network by the given number of cycles.
func (n *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		n.Tick()
	}
}

// defaultCheckEvery is the cycle interval between context polls in the
// cooperatively cancellable loops: coarse enough to stay off the hot
// path, fine enough that a canceled run stops within ~a kilocycle.
const defaultCheckEvery = 1024

// RunCtx advances the network by up to the given number of cycles,
// polling ctx every checkEvery cycles (0 selects the 1024 default). It
// returns the context's error on cancellation, or the first structured
// Step error.
func (n *Network) RunCtx(ctx context.Context, cycles, checkEvery int) error {
	if checkEvery <= 0 {
		checkEvery = defaultCheckEvery
	}
	for i := 0; i < cycles; i++ {
		if err := n.Step(); err != nil {
			return err
		}
		if (i+1)%checkEvery == 0 {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
		}
	}
	return nil
}

// DrainCtx is Drain with cooperative cancellation: ctx is polled every
// checkEvery cycles (0 selects the 1024 default).
func (n *Network) DrainCtx(ctx context.Context, maxCycles, checkEvery int) error {
	if checkEvery <= 0 {
		checkEvery = defaultCheckEvery
	}
	for i := 0; i < maxCycles; i++ {
		if n.Quiescent() {
			return nil
		}
		if err := n.Step(); err != nil {
			return err
		}
		if (i+1)%checkEvery == 0 {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
		}
	}
	if !n.Quiescent() {
		return fmt.Errorf("noc: %d packets still in flight after %d drain cycles", n.inFlight, maxCycles)
	}
	return nil
}

// Drain runs until all in-flight packets are delivered (and, with faults
// armed, all pending retransmits resolved) or maxCycles pass; it returns
// an error in the latter case and propagates structured Step errors.
func (n *Network) Drain(maxCycles int) error {
	for i := 0; i < maxCycles; i++ {
		if n.Quiescent() {
			return nil
		}
		if err := n.Step(); err != nil {
			return err
		}
	}
	if !n.Quiescent() {
		return fmt.Errorf("noc: %d packets still in flight after %d drain cycles", n.inFlight, maxCycles)
	}
	return nil
}

// collectInFlightDump walks every place a flit or queued packet can sit
// (NI queues and latches, router buffers and pipeline registers, links,
// the retransmit queue) and returns a bounded, deduplicated snapshot of
// stuck packets for the DeadlockError.
func (n *Network) collectInFlightDump(limit int) []fault.PacketDump {
	var out []fault.PacketDump
	seen := map[uint64]bool{}
	add := func(p *flit.Packet, where string) {
		if p == nil || seen[p.ID] || len(out) >= limit {
			return
		}
		seen[p.ID] = true
		out = append(out, fault.PacketDump{
			ID: p.ID, Src: p.Src, Dst: p.Dst,
			Class: p.Class.String(), Length: p.Length,
			AgeCycle: n.cycle - p.InjectTime,
			Where:    where,
		})
	}
	addFlit := func(f *flit.Flit, where string) {
		if f != nil {
			add(f.Packet, where)
		}
	}
	for id, ni := range n.nis {
		for c := range ni.injQ {
			q := &ni.injQ[c]
			for i := 0; i < q.len(); i++ {
				add(q.at(i), fmt.Sprintf("NI %d inject queue", id))
			}
		}
		if len(ni.curFlits) > 0 {
			add(ni.curFlits[0].Packet, fmt.Sprintf("NI %d injecting", id))
		}
		addFlit(ni.injectOut, fmt.Sprintf("NI %d ring-inject register", id))
		for v := range ni.latch {
			addFlit(ni.latch[v], fmt.Sprintf("NI %d bypass latch vc %d", id, v))
		}
		for _, tf := range ni.toLocal {
			addFlit(tf.f, fmt.Sprintf("NI %d local wire", id))
		}
		for _, tp := range ni.localQ {
			add(tp.p, fmt.Sprintf("NI %d local crossbar", id))
		}
	}
	for id, r := range n.routers {
		for d := range r.in {
			for v := range r.in[d] {
				for _, f := range r.in[d][v].buf {
					addFlit(f, fmt.Sprintf("router %d port %v vc %d", id, topology.Dir(d), v))
				}
			}
		}
		for _, sf := range r.stReg {
			addFlit(sf, fmt.Sprintf("router %d ST register", id))
		}
	}
	for id := range n.links {
		for d := 0; d < 4; d++ {
			for _, tf := range n.links[id][d] {
				addFlit(tf.f, fmt.Sprintf("link %d->%v", id, topology.Dir(d)))
			}
		}
	}
	if n.faults != nil {
		for _, e := range n.faults.retryQ {
			add(e.pkt, "retransmit queue")
		}
	}
	return out
}

// deliverNodeLinks completes link traversal for node id's due flits,
// executing on id's owning shard. Deliveries whose target lives in
// another shard are deferred to the links merge, keyed by (source, port,
// queue position) so the commit order is the serial kernel's.
func (n *Network) deliverNodeLinks(sh *shard, id int) {
	for d := 0; d < 4; d++ {
		q := n.links[id][d]
		if len(q) == 0 {
			continue
		}
		base := (uint64(id)*4 + uint64(d)) << 32
		qidx := uint64(0)
		keep := q[:0]
		for _, tf := range q {
			if tf.at > n.cycle {
				keep = append(keep, tf)
				continue
			}
			n.linkCount[id]--
			key := base | qidx<<16
			qidx++
			to := n.nbrTab[id*int(topology.NumDirs)+d]
			if to >= 0 && n.shardOf[to] != int32(sh.idx) {
				sh.xout = append(sh.xout, xDeliver{key: key, from: int32(id), dir: int8(d), f: tf.f})
				continue
			}
			sh.evBase, sh.evSeq = key, 0
			n.deliverFlit(id, topology.Dir(d), tf.f)
		}
		n.links[id][d] = keep
	}
}

// deliverFlit hands a flit that left router `from` on port `dir` to the
// downstream router or, when that router is gated off (or the flit's
// packet is mid-bypass), to its NI bypass. It runs either on the
// target's owning shard (in-shard deliveries) or serially at the links
// merge (cross-shard), so every write it triggers lands in the target
// shard's state.
func (n *Network) deliverFlit(from int, dir topology.Dir, f *flit.Flit) {
	to, ok := n.neighbor(from, dir)
	if !ok {
		n.failSh(n.shardFor(from), &fault.ProtocolError{Cycle: n.cycle, Router: from,
			Msg: fmt.Sprintf("flit sent off the edge of the mesh on dir %v", dir)})
		return
	}
	sh := n.shardFor(to)
	n.activate(to)
	sh.progressed = true
	if n.faults != nil {
		n.faults.verify(n, sh, f)
	}
	r := n.routers[to]
	inPort := dir.Opposite()
	if n.p.Design == NoRD && inPort == n.ring.InDir(to) {
		if !r.on() || r.bypassRemaining[f.VC] > 0 || n.nis[to].latch[f.VC] != nil || n.nis[to].fwdOutVC[f.VC] >= 0 {
			n.nis[to].deliverBypass(f)
			return
		}
	}
	if !r.on() {
		n.failSh(sh, &fault.ProtocolError{Cycle: n.cycle, Router: to,
			Msg: fmt.Sprintf("flit delivered to gated-off router on non-bypass port %v", inPort)})
		return
	}
	if f.Kind.IsHead() {
		f.Packet.Hops++
	}
	r.acceptFlit(inPort, f)
}

// sendLink places a flit on the unidirectional channel leaving router id
// through dir; delivery happens after the 1-cycle link traversal (the
// flit appears downstream at cycle+2: ST this cycle, LT next).
func (n *Network) sendLink(id int, dir topology.Dir, f *flit.Flit) {
	n.sendLinkDelay(id, dir, f, 2)
}

// sendLinkDelay is sendLink with an explicit delivery delay; the
// aggressive bypass uses delay 1 (no ST stage: the flit goes straight
// from Bypass Inport to Bypass Outport within the arrival cycle).
func (n *Network) sendLinkDelay(id int, dir topology.Dir, f *flit.Flit, delay uint64) {
	sh := n.shardFor(id)
	if dir >= topology.Local {
		n.failSh(sh, &fault.ProtocolError{Cycle: n.cycle, Router: id, Msg: "sendLink on local port"})
		return
	}
	if n.faults != nil {
		n.faults.maybeCorrupt(sh, id, dir, f)
	}
	n.links[id][dir] = append(n.links[id][dir], timedFlit{f: f, at: n.cycle + delay})
	n.linkCount[id]++
	sh.progressed = true
	if n.collecting {
		sh.col.LinkTraversals++
	}
}

// neighbor is the table-backed equivalent of mesh.Neighbor.
func (n *Network) neighbor(id int, d topology.Dir) (int, bool) {
	nb := n.nbrTab[id*int(topology.NumDirs)+int(d)]
	return int(nb), nb >= 0
}

// linkBusy reports flits in flight on the channel leaving id through dir.
func (n *Network) linkBusy(id int, dir topology.Dir) bool {
	return len(n.links[id][dir]) > 0
}

// creditReturn schedules a credit for the upstream of router id's input
// (port, vc): the mesh neighbor for mesh ports, the NI for the Local
// port. Credits accumulate per shard and apply at phase 9, serially.
func (n *Network) creditReturn(sh *shard, id int, port topology.Dir, vc int) {
	sh.credits = append(sh.credits, creditEvt{router: id, port: port, vc: vc})
}

func (n *Network) applyCredit(ev creditEvt) {
	if ev.port == topology.Local {
		n.nis[ev.router].localCredits[ev.vc]++
		return
	}
	nb, ok := n.neighbor(ev.router, ev.port)
	if !ok {
		n.fail(&fault.ProtocolError{Cycle: n.cycle, Router: ev.router, Msg: "credit return off the mesh"})
		return
	}
	n.routers[nb].outCredits[ev.port.Opposite()][ev.vc]++
}

// addRingUpstreamCredits tops up the ring predecessor's credits toward
// router id on VC vc (wakeup credit restoration, Section 4.3).
func (n *Network) addRingUpstreamCredits(id, vc, add int) {
	pred := n.ring.Pred(id)
	n.routers[pred].outCredits[n.ring.OutDir(pred)][vc] += add
}

// deliverPacket finalises a delivered packet (tail ejected), on the
// destination's owning shard. Poisoned packets are dropped — the
// destination NI rejects the corrupted payload and the source's
// retransmit machinery takes over; the drop mutates injector-global
// state, so a sharded kernel defers it to the next merge.
func (n *Network) deliverPacket(sh *shard, p *flit.Packet) {
	sh.inFlightDelta--
	sh.progressed = true
	if p.IsPoisoned() && n.faults != nil {
		if n.sharded {
			sh.drops = append(sh.drops, pendingDrop{key: sh.nextEvKey(), pkt: p})
		} else {
			n.faults.dropPoisoned(n, p)
		}
		return
	}
	if n.faults != nil {
		sh.repDelivered++
	}
	if n.collecting && p.InjectTime >= n.measureFrom {
		sh.col.PacketsDelivered++
		sh.col.FlitsDelivered += uint64(p.Length)
		sh.col.PacketLatency.Add(float64(n.cycle - p.InjectTime))
		sh.col.LatencyHist.Add(n.cycle - p.InjectTime)
		sh.col.NetworkLatency.Add(float64(n.cycle - p.EnqueueTime))
		sh.col.Hops.Add(float64(p.Hops))
	}
	if n.ejectHandler != nil {
		n.ejectHandler(p, n.cycle)
	} else if n.faults == nil && n.injectHook == nil {
		// Nothing outside the network can retain the packet (handlers and
		// hooks may hold delivered packets; the fault machinery's retry
		// queue does): recycle it.
		sh.pool.PutPacket(p)
	}
}

// Statistic note helpers, gated on measurement.

func (n *Network) notePacketInjected(p *flit.Packet) {
	n.inFlight++
	if n.faults != nil && p.Retries == 0 {
		// Unique payloads only: retransmit clones carry the same payload.
		n.faults.report.PacketsInjected++
	}
	if n.collecting {
		n.col.PacketsInjected++
	}
}

// The helpers below run inside parallel sections (or at serial merge
// points), so they take the executing shard and write its collector;
// noteWakeup and noteGateOff are called only from the serial controller
// phase and keep writing the master directly.

func (n *Network) noteSAGrant(sh *shard, inPort topology.Dir) {
	sh.progressed = true
	if !n.collecting {
		return
	}
	sh.col.BufReads++
	sh.col.XbarTraversals++
	sh.col.SAArbs++
	sh.col.ClockedFlitHops++
	_ = inPort
}

func (n *Network) noteVCRequests(sh *shard, r uint32) {
	if n.collecting {
		sh.col.NIVCRequests += uint64(r)
	}
}

func (n *Network) noteVAGrant(sh *shard) {
	if n.collecting {
		sh.col.VAArbs++
	}
}

func (n *Network) noteBufWrite(sh *shard) {
	if n.collecting {
		sh.col.BufWrites++
	}
}

func (n *Network) noteWakeup() {
	if n.collecting {
		n.col.Wakeups++
	}
}

func (n *Network) noteGateOff() {
	if n.collecting {
		n.col.GateOffs++
	}
}

func (n *Network) noteWakeStall(sh *shard, cycles uint64) {
	if n.collecting {
		sh.col.WakeupStall.Add(float64(cycles))
	}
}

func (n *Network) noteMisroute(sh *shard, router int) {
	if n.collecting {
		sh.col.MisroutedHops++
	}
	if n.tracer != nil {
		n.traceEvent(sh, int32(router), obs.KindDetour, obs.CauseNone, 0, false)
	}
}

func (n *Network) noteEscape(sh *shard, router int) {
	if n.collecting {
		sh.col.EscapedPackets++
	}
	if n.tracer != nil {
		n.traceEvent(sh, int32(router), obs.KindEscape, obs.CauseNone, 0, false)
	}
}

func (n *Network) noteBypassHop(sh *shard, router int) {
	sh.progressed = true
	if n.collecting {
		sh.col.BypassHops++
	}
	if n.tracer != nil {
		// Every offered hop is deferred (sampled=true) so the tracer's
		// order-sensitive sampling counter replays the serial subset.
		n.traceEvent(sh, int32(router), obs.KindBypassHop, obs.CauseNone, 0, true)
	}
}

func (n *Network) noteBypassInject(sh *shard) {
	sh.progressed = true
	if n.collecting {
		sh.col.BypassInjections++
	}
}

func (n *Network) noteBypassEject(sh *shard) {
	sh.progressed = true
	if n.collecting {
		sh.col.BypassEjections++
	}
}

// reclassify re-ranks routers by demand integrated since the last round
// and assigns the busiest 3N/8 the performance-centric thresholds.
func (n *Network) reclassify() {
	type ranked struct {
		id     int
		demand uint64
	}
	rs := make([]ranked, len(n.nis))
	for id, ni := range n.nis {
		rs[id] = ranked{id: id, demand: ni.demandAccum}
		ni.demandAccum = 0
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].demand != rs[j].demand {
			return rs[i].demand > rs[j].demand
		}
		return rs[i].id < rs[j].id
	})
	k := 3 * len(rs) / 8
	perf := make(map[int]bool, k)
	for _, r := range rs[:k] {
		perf[r.id] = true
	}
	for id, ni := range n.nis {
		ni.setClass(perf[id])
	}
}

// PerfCentricNow returns the router IDs currently holding the
// performance-centric thresholds (fixed or dynamically assigned).
func (n *Network) PerfCentricNow() []int {
	var out []int
	for id, ni := range n.nis {
		if ni.threshold == n.p.ThresholdPerf && n.p.ThresholdPerf != n.p.ThresholdPower {
			out = append(out, id)
		}
	}
	return out
}

// RouterReport is one router's spatial statistics over the measured
// interval.
type RouterReport struct {
	ID           int
	X, Y         int
	IdleFraction float64
	OffFraction  float64
	Wakeups      uint64
	GateOffs     uint64
	// MeanOffInterval is the mean length of this router's gated-off
	// stretches in cycles (off time over wakeups, or over gate-offs for a
	// router that never woke; 0 when it never gated).
	MeanOffInterval float64
	FlitsRouted     uint64 // SA grants (normal pipeline traversals)
	BypassFlits     uint64 // flits forwarded through the NI bypass
	PerfCentric     bool
	HardFailed      bool // permanently failed by fault injection
}

// PerRouterReports returns per-router statistics for spatial analysis
// (utilisation heat maps, gating behaviour per location).
func (n *Network) PerRouterReports() []RouterReport {
	n.syncStats()
	out := make([]RouterReport, len(n.routers))
	perf := map[int]bool{}
	for _, id := range n.PerfCentricNow() {
		perf[id] = true
	}
	for id, r := range n.routers {
		x, y := n.topo.Coord(id)
		it := n.idle[id]
		total := it.IdleCycles() + it.BusyCycles()
		rep := RouterReport{
			ID: id, X: x, Y: y,
			IdleFraction: it.IdleFraction(),
			Wakeups:      r.statWakeups,
			GateOffs:     r.statGateOffs,
			FlitsRouted:  r.statSAGrants,
			BypassFlits:  r.statBypassFlits,
			PerfCentric:  perf[id],
			HardFailed:   r.hardFailed,
		}
		if total > 0 {
			rep.OffFraction = float64(r.statOffCycles) / float64(total)
		}
		switch {
		case r.statWakeups > 0:
			rep.MeanOffInterval = float64(r.statOffCycles) / float64(r.statWakeups)
		case r.statGateOffs > 0:
			rep.MeanOffInterval = float64(r.statOffCycles) / float64(r.statGateOffs)
		}
		out[id] = rep
	}
	return out
}

// HasPGController reports whether routers carry the always-on monitoring
// controller (any gated design).
func (n *Network) HasPGController() bool { return n.p.Design.PowerGated() }

// HasBypass reports whether the NoRD bypass datapath is present.
func (n *Network) HasBypass() bool { return n.p.Design == NoRD }

// NumLinks returns the number of unidirectional inter-router channels
// (torus wrap links included).
func (n *Network) NumLinks() int { return n.topo.NumLinks() }
