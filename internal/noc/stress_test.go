package noc

import (
	"testing"

	"nord/internal/flit"
	"nord/internal/topology"
	"nord/internal/traffic"
)

// checkQuiescentInvariants validates conservation properties once no
// packets are in flight: every buffer empty, every VC idle, and every
// credit counter restored to exactly the downstream buffer capacity
// (BufferDepth toward powered-on routers, 1 toward gated-off NoRD
// routers' bypass latches).
func checkQuiescentInvariants(t *testing.T, n *Network) {
	t.Helper()
	if n.InFlight() != 0 {
		t.Fatalf("network not quiescent: %d in flight", n.InFlight())
	}
	p := &n.p
	for id, r := range n.routers {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if r.stReg[d] != nil {
				t.Errorf("router %d: ST register %v still holds a flit", id, d)
			}
			for v, vc := range r.in[d] {
				if !vc.empty() || vc.phase != vcIdle {
					t.Errorf("router %d port %v vc %d: not idle (phase %d, %d flits)", id, d, v, vc.phase, len(vc.buf))
				}
			}
			if d == topology.Local {
				continue
			}
			nb, ok := n.topo.Neighbor(id, d)
			if !ok {
				continue
			}
			wantCredit := p.BufferDepth
			if p.Design == NoRD && !n.routers[nb].on() && n.ring.OutDir(id) == d {
				wantCredit = 1
			}
			if !n.routers[nb].on() && !(p.Design == NoRD && n.ring.OutDir(id) == d) {
				// Port unusable while neighbor off; its credits are
				// whatever they were clamped/held to — skip.
				continue
			}
			for v := 0; v < p.vcsPerPort(); v++ {
				if got := r.outCredits[d][v] + n.routers[nb].creditsHeld[v]; got != wantCredit {
					t.Errorf("router %d out %v vc %d: credits %d (want %d)", id, d, v, got, wantCredit)
				}
				if r.outOwner[d][v] != ownerFree {
					t.Errorf("router %d out %v vc %d: owner not free at quiescence", id, d, v)
				}
			}
		}
		ni := n.nis[id]
		if ni.injectOut != nil || len(ni.toLocal) > 0 || len(ni.ejPend) > 0 {
			t.Errorf("NI %d: pipeline not drained", id)
		}
		for v := range ni.latch {
			if ni.latch[v] != nil || ni.fwdOutVC[v] >= 0 {
				t.Errorf("NI %d vc %d: bypass state not drained", id, v)
			}
		}
		for v, c := range ni.localCredits {
			if c != p.BufferDepth {
				t.Errorf("NI %d local vc %d: credits %d, want %d", id, v, c, p.BufferDepth)
			}
		}
	}
}

func stressOne(t *testing.T, p Params, pattern traffic.Pattern, rate float64, cycles int, seed int64) *Network {
	t.Helper()
	n := MustNew(p)
	inj := traffic.NewSynthetic(n, pattern, rate, seed)
	delivered := 0
	n.SetDeliveryHandler(func(pk *flit.Packet, _ uint64) { delivered++ })
	n.BeginMeasurement()
	for c := 0; c < cycles; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	// Drain the per-node source queues (without generating new packets),
	// then the network itself.
	inj.Rate = 0
	for i := 0; i < 500_000 && inj.Pending() > 0; i++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	if inj.Pending() > 0 {
		t.Fatalf("source queues never drained (%d pending)", inj.Pending())
	}
	if err := n.Drain(500_000); err != nil {
		t.Fatal(err)
	}
	n.FinishMeasurement()
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if uint64(delivered)+inj.Dropped() != inj.Offered() {
		t.Fatalf("packet conservation broken: delivered %d + dropped %d != offered %d",
			delivered, inj.Dropped(), inj.Offered())
	}
	checkQuiescentInvariants(t, n)
	return n
}

func TestStressAllDesignsUniform(t *testing.T) {
	for _, d := range []Design{NoPG, ConvPG, ConvPGOpt, NoRD} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			for _, rate := range []float64{0.02, 0.10, 0.25} {
				n := stressOne(t, DefaultParams(d), traffic.UniformRandom, rate, 6000, 99)
				lat := n.Collector().AvgPacketLatency()
				if lat < 10 || lat > 4000 {
					t.Errorf("rate %.2f: implausible latency %.1f", rate, lat)
				}
			}
		})
	}
}

func TestStressBitComplement(t *testing.T) {
	for _, d := range []Design{NoPG, NoRD} {
		n := stressOne(t, DefaultParams(d), traffic.BitComplement, 0.08, 6000, 5)
		if n.Collector().PacketsDelivered == 0 {
			t.Error("no measured deliveries")
		}
	}
}

func TestStress8x8(t *testing.T) {
	if testing.Short() {
		t.Skip("8x8 stress is slow")
	}
	for _, d := range []Design{ConvPGOpt, NoRD} {
		p := DefaultParams(d)
		p.Width, p.Height = 8, 8
		stressOne(t, p, traffic.UniformRandom, 0.08, 5000, 17)
	}
}

func TestStressTwoClasses(t *testing.T) {
	p := DefaultParams(NoRD)
	p.Classes = 2
	n := MustNew(p)
	delivered := map[flit.Class]int{}
	n.SetDeliveryHandler(func(pk *flit.Packet, _ uint64) { delivered[pk.Class]++ })
	n.BeginMeasurement()
	inj1 := traffic.NewSynthetic(n, traffic.UniformRandom, 0.05, 1)
	inj2 := traffic.NewSynthetic(n, traffic.UniformRandom, 0.05, 2)
	inj2.Class = flit.ClassResponse
	for c := 0; c < 4000; c++ {
		inj1.Tick(n.Cycle())
		inj2.Tick(n.Cycle())
		n.Tick()
	}
	if err := n.Drain(200_000); err != nil {
		t.Fatal(err)
	}
	n.FinishMeasurement()
	if delivered[flit.ClassRequest] == 0 || delivered[flit.ClassResponse] == 0 {
		t.Errorf("both classes should deliver: %v", delivered)
	}
	checkQuiescentInvariants(t, n)
}

func TestStressForcedOffHighLoad(t *testing.T) {
	// The pure bypass ring saturates at a small fraction of full-network
	// throughput (Figure 7 reports ~14%); it must still deliver and stay
	// deadlock-free under overload.
	p := DefaultParams(NoRD)
	p.ForcedOff = true
	n := stressOne(t, p, traffic.UniformRandom, 0.10, 4000, 23)
	if n.Collector().Wakeups != 0 {
		t.Errorf("forced-off network woke %d routers", n.Collector().Wakeups)
	}
	if !(n.Collector().BypassHops > 0) {
		t.Error("no bypass traffic recorded")
	}
}

func TestStressNoRDPerfCentric(t *testing.T) {
	p := DefaultParams(NoRD)
	p.PerfCentric = []int{4, 5, 6, 7, 13, 14} // the paper's Figure 6 set
	n := stressOne(t, p, traffic.UniformRandom, 0.10, 6000, 31)
	// Under sustained 10% load the network must wake at least the
	// performance-centric routers at some point.
	if n.Collector().Wakeups == 0 {
		t.Error("no wakeups under sustained load with threshold-1 routers")
	}
}

// NoRD at moderate load must beat Conv_PG on average latency and on
// wakeup count (the paper's headline claims, Figures 9b and 11).
func TestNoRDBeatsConvPGAtLowLoad(t *testing.T) {
	results := map[Design]*Network{}
	for _, d := range []Design{ConvPG, NoRD} {
		p := DefaultParams(d)
		p.PerfCentric = []int{4, 5, 6, 7, 13, 14}
		results[d] = stressOne(t, p, traffic.UniformRandom, 0.05, 8000, 77)
	}
	nordCol, convCol := results[NoRD].Collector(), results[ConvPG].Collector()
	if nordCol.Wakeups >= convCol.Wakeups {
		t.Errorf("NoRD wakeups (%d) should be far below Conv_PG (%d)", nordCol.Wakeups, convCol.Wakeups)
	}
	if nordCol.AvgPacketLatency() >= convCol.AvgPacketLatency() {
		t.Errorf("NoRD latency (%.1f) should beat Conv_PG (%.1f)",
			nordCol.AvgPacketLatency(), convCol.AvgPacketLatency())
	}
}
