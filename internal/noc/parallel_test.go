package noc

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"nord/internal/fault"
	"nord/internal/obs"
	"nord/internal/stats"
	"nord/internal/topology"
	"nord/internal/traffic"
)

// parallelRun is goldenRun with an explicit shard count: it drives one
// sweep point to completion under the sharded kernel and returns
// everything observable about it.
func parallelRun(t *testing.T, p Params, cpus int, rate float64, seed int64, warmup, measure int) (*stats.NoC, []RouterReport, int) {
	t.Helper()
	p.Parallelism = cpus
	n := MustNew(p)
	defer n.Close()
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, rate, seed)
	for c := 0; c < warmup; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	n.BeginMeasurement()
	for c := 0; c < measure; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	n.FinishMeasurement()
	return n.Collector(), n.PerRouterReports(), n.InFlight()
}

// TestParallelMatchesSerial is the determinism golden test of the sharded
// parallel kernel: for every design, a mid-load sweep point run with P
// worker shards must produce statistics bit-identical to the serial (P=1)
// run — the parallel kernel is an execution strategy, not a model change.
func TestParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name   string
		rate   float64
		mutate func(*Params)
	}{
		{"NoPG", 0.10, func(p *Params) { p.Design = NoPG }},
		{"ConvPG", 0.10, func(p *Params) { p.Design = ConvPG }},
		{"ConvPGOpt", 0.10, func(p *Params) { p.Design = ConvPGOpt }},
		{"NoRD", 0.10, func(p *Params) { p.Design = NoRD }},
		{"NoRD_aggressive_dynamic", 0.10, func(p *Params) {
			p.Design = NoRD
			p.AggressiveBypass = true
			p.DynamicClassify = true
			p.ReclassifyPeriod = 512
		}},
		{"NoRD_forced_off", 0.05, func(p *Params) {
			p.Design = NoRD
			p.ForcedOff = true
		}},
		{"ConvPG_torus", 0.10, func(p *Params) {
			p.Design = ConvPG
			p.Topology = topology.KindTorus
		}},
		{"NoRD_torus", 0.10, func(p *Params) {
			p.Design = NoRD
			p.Topology = topology.KindTorus
		}},
		{"NoPG_cmesh", 0.10, func(p *Params) {
			p.Design = NoPG
			p.Topology = topology.KindCMesh
		}},
		{"NoRD_cmesh", 0.05, func(p *Params) {
			p.Design = NoRD
			p.Topology = topology.KindCMesh
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams(NoPG)
			p.Width, p.Height = 8, 8
			tc.mutate(&p)

			sCol, sPer, sInFlight := parallelRun(t, p, 1, tc.rate, 7, 1000, 4000)
			if sCol.PacketsDelivered == 0 {
				t.Fatal("sweep point delivered no packets; test is vacuous")
			}
			for _, cpus := range []int{2, 3, 8} {
				pCol, pPer, pInFlight := parallelRun(t, p, cpus, tc.rate, 7, 1000, 4000)
				if !reflect.DeepEqual(sCol, pCol) {
					t.Errorf("P=%d: collector statistics diverge:\nserial:   %+v\nparallel: %+v", cpus, sCol, pCol)
				}
				if !reflect.DeepEqual(sPer, pPer) {
					for i := range sPer {
						if !reflect.DeepEqual(sPer[i], pPer[i]) {
							t.Errorf("P=%d: router %d report diverges:\nserial:   %+v\nparallel: %+v", cpus, i, sPer[i], pPer[i])
						}
					}
				}
				if sInFlight != pInFlight {
					t.Errorf("P=%d: in-flight count diverges: serial %d, parallel %d", cpus, sInFlight, pInFlight)
				}
			}
		})
	}
}

// faultedRun is parallelRun with a fault schedule armed; it additionally
// returns the recovery report.
func faultedRun(t *testing.T, p Params, cpus int, cfg fault.Config, rate float64, seed int64, warmup, measure int) (*stats.NoC, *fault.Report, int) {
	t.Helper()
	p.Parallelism = cpus
	n := MustNew(p)
	defer n.Close()
	sched, err := fault.Generate(cfg, p.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachFaults(sched, FaultOptions{}); err != nil {
		t.Fatal(err)
	}
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, rate, seed)
	for c := 0; c < warmup; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	n.BeginMeasurement()
	for c := 0; c < measure; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	n.FinishMeasurement()
	return n.Collector(), n.FaultReport(), n.InFlight()
}

// TestParallelMatchesSerialFaults extends the golden test to faulted runs:
// link corruptions land on shard-boundary links, poisoned packets are
// dropped and retransmitted, and the recovery report must still match the
// serial run exactly.
func TestParallelMatchesSerialFaults(t *testing.T) {
	cases := []struct {
		name   string
		design Design
		cfg    fault.Config
	}{
		{"NoRD_all_faults", NoRD, fault.Config{
			Seed: 5, Horizon: 3500, CorruptLinks: 24, DropWakeups: 4, StuckOff: 2, HardFails: 1,
		}},
		{"ConvPG_corrupt_links", ConvPG, fault.Config{
			Seed: 9, Horizon: 3500, CorruptLinks: 32,
		}},
		{"NoRD_torus_faults", NoRD, fault.Config{
			Seed: 17, Horizon: 3500, CorruptLinks: 24, DropWakeups: 2, StuckOff: 1, HardFails: 1,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams(tc.design)
			p.Width, p.Height = 8, 8
			if tc.name == "NoRD_torus_faults" {
				p.Topology = topology.KindTorus
			}

			sCol, sRep, sInFlight := faultedRun(t, p, 1, tc.cfg, 0.10, 13, 1000, 3000)
			if sRep.FlitsCorrupted == 0 {
				t.Fatal("no flit was corrupted; test is vacuous")
			}
			for _, cpus := range []int{2, 8} {
				pCol, pRep, pInFlight := faultedRun(t, p, cpus, tc.cfg, 0.10, 13, 1000, 3000)
				if !reflect.DeepEqual(sCol, pCol) {
					t.Errorf("P=%d: collector statistics diverge:\nserial:   %+v\nparallel: %+v", cpus, sCol, pCol)
				}
				if !reflect.DeepEqual(sRep, pRep) {
					t.Errorf("P=%d: fault report diverges:\nserial:   %+v\nparallel: %+v", cpus, sRep, pRep)
				}
				if sInFlight != pInFlight {
					t.Errorf("P=%d: in-flight count diverges: serial %d, parallel %d", cpus, sInFlight, pInFlight)
				}
			}
		})
	}
}

// tracedRun runs a sweep point with a tracer attached and returns the
// rendered Chrome trace and NDJSON dump.
func tracedRun(t *testing.T, p Params, cpus int) (chrome, ndjson []byte) {
	t.Helper()
	p.Parallelism = cpus
	n := MustNew(p)
	defer n.Close()
	tr := obs.New(obs.Config{SampleEvery: 64, ResidencyEvery: 256})
	n.SetTracer(tr)
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, 0.10, 3)
	for c := 0; c < 4000; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	var cb, nb bytes.Buffer
	if err := tr.WriteChromeTrace(&cb, n.Cycle()); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteNDJSON(&nb); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), nb.Bytes()
}

// TestParallelTracerIdentical proves the deferred-event replay keeps the
// tracer exact: the rendered Chrome trace and NDJSON dump of a P=8 run
// must be byte-identical to the serial run's, including the subset picked
// by the order-sensitive bypass-hop sampling counter.
func TestParallelTracerIdentical(t *testing.T) {
	p := DefaultParams(NoRD)
	p.Width, p.Height = 8, 8
	p.AggressiveBypass = true

	sChrome, sND := tracedRun(t, p, 1)
	pChrome, pND := tracedRun(t, p, 8)
	if !bytes.Equal(sChrome, pChrome) {
		t.Errorf("Chrome trace diverges: serial %d bytes, parallel %d bytes", len(sChrome), len(pChrome))
	}
	if !bytes.Equal(sND, pND) {
		t.Errorf("NDJSON dump diverges: serial %d bytes, parallel %d bytes", len(sND), len(pND))
	}
	if len(sND) == 0 {
		t.Fatal("tracer recorded nothing; test is vacuous")
	}
}

// TestParallelSoak stresses the sharded kernel under the race detector
// (the CI race job selects it by name): a 16x16 mesh at P=8 plus a small
// random (seed, P) matrix on 8x8, checking against the serial run each
// time. Kept short; correctness depth lives in TestParallelMatchesSerial.
func TestParallelSoak(t *testing.T) {
	t.Run("16x16_P8", func(t *testing.T) {
		p := DefaultParams(NoRD)
		p.Width, p.Height = 16, 16
		sCol, _, _ := parallelRun(t, p, 1, 0.10, 21, 500, 1500)
		pCol, _, _ := parallelRun(t, p, 8, 0.10, 21, 500, 1500)
		if sCol.PacketsDelivered == 0 {
			t.Fatal("no packets delivered; test is vacuous")
		}
		if !reflect.DeepEqual(sCol, pCol) {
			t.Errorf("collector statistics diverge:\nserial:   %+v\nparallel: %+v", sCol, pCol)
		}
	})
	for _, tc := range []struct {
		design Design
		topo   topology.Kind
		seed   int64
		cpus   int
	}{
		{NoRD, topology.KindMesh, 31, 5},
		{ConvPGOpt, topology.KindMesh, 32, 7},
		{NoPG, topology.KindMesh, 33, 4},
		{NoRD, topology.KindTorus, 34, 6},
		{ConvPG, topology.KindTorus, 35, 3},
		{NoRD, topology.KindCMesh, 36, 5},
	} {
		t.Run(fmt.Sprintf("%s_%v_seed%d_P%d", tc.design, tc.topo, tc.seed, tc.cpus), func(t *testing.T) {
			p := DefaultParams(tc.design)
			p.Width, p.Height = 8, 8
			p.Topology = tc.topo
			sCol, _, _ := parallelRun(t, p, 1, 0.15, tc.seed, 400, 1200)
			pCol, _, _ := parallelRun(t, p, tc.cpus, 0.15, tc.seed, 400, 1200)
			if !reflect.DeepEqual(sCol, pCol) {
				t.Errorf("collector statistics diverge:\nserial:   %+v\nparallel: %+v", sCol, pCol)
			}
		})
	}
}
