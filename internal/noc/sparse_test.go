package noc

import (
	"reflect"
	"testing"

	"nord/internal/stats"
	"nord/internal/traffic"
)

// goldenRun drives one sweep point to completion and returns everything
// observable about it: the aggregate collector, the per-router reports and
// the in-flight count.
func goldenRun(t *testing.T, p Params, rate float64, seed int64, warmup, measure int) (*stats.NoC, []RouterReport, int) {
	t.Helper()
	n := MustNew(p)
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, rate, seed)
	for c := 0; c < warmup; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	n.BeginMeasurement()
	for c := 0; c < measure; c++ {
		inj.Tick(n.Cycle())
		n.Tick()
	}
	n.FinishMeasurement()
	return n.Collector(), n.PerRouterReports(), n.InFlight()
}

// TestEventSparseMatchesFullScan is the determinism golden test of the
// event-sparse kernel: for every design, a mid-load sweep point run with
// the active-worklist kernel must produce statistics bit-identical to the
// same run with the full-scan kernel (Params.FullScanTick).
func TestEventSparseMatchesFullScan(t *testing.T) {
	cases := []struct {
		name   string
		rate   float64
		mutate func(*Params)
	}{
		{"NoPG", 0.10, func(p *Params) { p.Design = NoPG }},
		{"ConvPG", 0.10, func(p *Params) { p.Design = ConvPG }},
		{"ConvPGOpt", 0.10, func(p *Params) { p.Design = ConvPGOpt }},
		{"NoRD", 0.10, func(p *Params) { p.Design = NoRD }},
		{"NoRD_aggressive_dynamic", 0.10, func(p *Params) {
			p.Design = NoRD
			p.AggressiveBypass = true
			p.DynamicClassify = true
			p.ReclassifyPeriod = 512
		}},
		{"NoRD_forced_off", 0.05, func(p *Params) {
			p.Design = NoRD
			p.ForcedOff = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams(NoPG)
			p.Width, p.Height = 8, 8
			tc.mutate(&p)

			sparse := p
			sparse.FullScanTick = false
			full := p
			full.FullScanTick = true

			sCol, sPer, sInFlight := goldenRun(t, sparse, tc.rate, 7, 1000, 4000)
			fCol, fPer, fInFlight := goldenRun(t, full, tc.rate, 7, 1000, 4000)

			if sCol.PacketsDelivered == 0 {
				t.Fatal("sweep point delivered no packets; test is vacuous")
			}
			if !reflect.DeepEqual(sCol, fCol) {
				t.Errorf("collector statistics diverge:\nsparse: %+v\nfull:   %+v", sCol, fCol)
			}
			if !reflect.DeepEqual(sPer, fPer) {
				for i := range sPer {
					if !reflect.DeepEqual(sPer[i], fPer[i]) {
						t.Errorf("router %d report diverges:\nsparse: %+v\nfull:   %+v", i, sPer[i], fPer[i])
					}
				}
			}
			if sInFlight != fInFlight {
				t.Errorf("in-flight count diverges: sparse %d, full %d", sInFlight, fInFlight)
			}
		})
	}
}

// TestSparseDormancy sanity-checks that the worklist actually shrinks: an
// idle gated network must end up with (almost) no active nodes, otherwise
// the kernel is correct but pointless.
func TestSparseDormancy(t *testing.T) {
	p := DefaultParams(NoRD)
	p.Width, p.Height = 8, 8
	n := MustNew(p)
	n.Run(2000) // no traffic: everything gates off and goes dormant
	if got := len(n.collectActive()); got != 0 {
		t.Errorf("idle NoRD network keeps %d nodes active, want 0", got)
	}
	for id := 0; id < p.NumNodes(); id++ {
		if n.RouterPowerOn(id) {
			t.Fatalf("router %d still on in an idle gated network", id)
		}
	}
}
