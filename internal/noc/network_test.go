package noc

import (
	"testing"

	"nord/internal/flit"
)

// runUntilDelivered ticks the network until count packets are delivered or
// the cycle budget is exhausted.
func runUntilDelivered(t *testing.T, n *Network, count int, budget int) []deliveredPkt {
	t.Helper()
	var got []deliveredPkt
	n.SetDeliveryHandler(func(p *flit.Packet, cyc uint64) {
		got = append(got, deliveredPkt{p: p, at: cyc})
	})
	for i := 0; i < budget && len(got) < count; i++ {
		n.Tick()
	}
	if len(got) < count {
		t.Fatalf("only %d of %d packets delivered within %d cycles (in flight: %d)",
			len(got), count, budget, n.InFlight())
	}
	return got
}

type deliveredPkt struct {
	p  *flit.Packet
	at uint64
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(NoRD)
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Width = 1 },
		func(p *Params) { p.Classes = 0 },
		func(p *Params) { p.VCsPerClass = 2 }, // NoRD needs 3
		func(p *Params) { p.BufferDepth = 0 },
		func(p *Params) { p.WakeupLatency = 0 },
		func(p *Params) { p.WakeupWindow = 0 },
		func(p *Params) { p.ThresholdPerf = 0 },
		func(p *Params) { p.InjectQueueDepth = 0 },
		func(p *Params) { p.MaxIdlePeriod = 0 },
		func(p *Params) { p.MisrouteCap = -1 },
		func(p *Params) { p.PerfCentric = []int{99} },
	}
	for i, mutate := range bad {
		p := DefaultParams(NoRD)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	// Conventional designs accept 2 VCs per class.
	p := DefaultParams(ConvPG)
	p.VCsPerClass = 2
	if err := p.Validate(); err != nil {
		t.Errorf("ConvPG with 2 VCs should validate: %v", err)
	}
}

func TestDesignString(t *testing.T) {
	names := map[Design]string{NoPG: "No_PG", ConvPG: "Conv_PG", ConvPGOpt: "Conv_PG_OPT", NoRD: "NoRD"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d: got %q want %q", d, d.String(), want)
		}
	}
	if !ConvPG.PowerGated() || NoPG.PowerGated() {
		t.Error("PowerGated predicate wrong")
	}
}

// Zero-load single-flit latency on No_PG: injection (3 cycles to first RC)
// + 5 cycles per hop + ejection (4 cycles after last RC).
func TestNoPGZeroLoadLatency(t *testing.T) {
	n := MustNew(DefaultParams(NoPG))
	n.BeginMeasurement()
	pkt := n.NewPacket(0, 3, flit.ClassRequest, 1)
	if !n.Inject(pkt) {
		t.Fatal("inject failed")
	}
	got := runUntilDelivered(t, n, 1, 1000)
	lat := got[0].at - pkt.InjectTime
	const want = 3 + 5*3 + 4 // 22
	if lat != want {
		t.Errorf("zero-load latency = %d, want %d", lat, want)
	}
	if pkt.Hops != 3 {
		t.Errorf("hops = %d, want 3", pkt.Hops)
	}
}

// A 5-flit packet's tail trails the head by 4 cycles.
func TestNoPGMultiFlitLatency(t *testing.T) {
	n := MustNew(DefaultParams(NoPG))
	n.BeginMeasurement()
	pkt := n.NewPacket(0, 3, flit.ClassRequest, 5)
	if !n.Inject(pkt) {
		t.Fatal("inject failed")
	}
	got := runUntilDelivered(t, n, 1, 1000)
	lat := got[0].at - pkt.InjectTime
	const want = 22 + 4
	if lat != want {
		t.Errorf("5-flit latency = %d, want %d", lat, want)
	}
}

// With NoRD and every router forced off, packets ride the bypass ring end
// to end: injection takes 2 NI cycles + LT, each bypassed hop 3 cycles.
func TestNoRDForcedOffRingTraversal(t *testing.T) {
	p := DefaultParams(NoRD)
	p.ForcedOff = true
	n := MustNew(p)
	n.BeginMeasurement()
	// Ring: 0,1,2,3,7,6,5,9,10,11,15,14,13,12,8,4 -> 0.
	pkt := n.NewPacket(0, 4, flit.ClassRequest, 1)
	if !n.Inject(pkt) {
		t.Fatal("inject failed")
	}
	got := runUntilDelivered(t, n, 1, 1000)
	lat := got[0].at - pkt.InjectTime
	// Injection: NI alloc+stage2 at cycle 1, stage3 at 2, first arrival at
	// 4; then 14 more ring hops at 3 cycles each; sink on arrival.
	const want = 4 + 3*14
	if lat != uint64(want) {
		t.Errorf("ring traversal latency = %d, want %d", lat, want)
	}
	if n.Collector().BypassHops == 0 {
		t.Error("no bypass hops recorded")
	}
	if on := n.RouterPowerOn(0); on {
		t.Error("forced-off router reports on")
	}
}

// Short ring trip: 0 -> 1 is a single bypassed hop.
func TestNoRDForcedOffOneHop(t *testing.T) {
	p := DefaultParams(NoRD)
	p.ForcedOff = true
	n := MustNew(p)
	n.BeginMeasurement()
	pkt := n.NewPacket(0, 1, flit.ClassRequest, 1)
	n.Inject(pkt)
	got := runUntilDelivered(t, n, 1, 200)
	if lat := got[0].at - pkt.InjectTime; lat != 4 {
		t.Errorf("one-hop ring latency = %d, want 4", lat)
	}
	if n.Collector().BypassEjections == 0 {
		t.Error("destination sink not recorded as bypass ejection")
	}
}

// Conventional PG: an idle network gates off, and a packet then pays
// wakeup latency at every hop (cumulative wakeup, Section 3.3).
func TestConvPGCumulativeWakeup(t *testing.T) {
	n := MustNew(DefaultParams(ConvPG))
	n.BeginMeasurement()
	n.Run(50) // let routers gate off
	offCount := 0
	for id := 0; id < 16; id++ {
		if !n.RouterPowerOn(id) {
			offCount++
		}
	}
	if offCount != 16 {
		t.Fatalf("expected all 16 routers gated off after idle, got %d", offCount)
	}
	pkt := n.NewPacket(0, 3, flit.ClassRequest, 1)
	n.Inject(pkt)
	got := runUntilDelivered(t, n, 1, 2000)
	lat := got[0].at - pkt.InjectTime
	// Lower bound: base 22 + wakeup of the source router (12, fully
	// exposed) + substantially exposed wakeups downstream.
	if lat <= 22+12 {
		t.Errorf("Conv_PG latency %d suspiciously low; wakeups not charged?", lat)
	}
	if n.Collector().Wakeups < 4 {
		t.Errorf("expected at least 4 wakeups (src + 3 downstream), got %d", n.Collector().Wakeups)
	}
}

// Conv_PG_OPT hides part of the wakeup and so beats Conv_PG on the same
// scenario.
func TestConvPGOptFasterThanConvPG(t *testing.T) {
	lat := map[Design]uint64{}
	for _, d := range []Design{ConvPG, ConvPGOpt} {
		n := MustNew(DefaultParams(d))
		n.BeginMeasurement()
		n.Run(50)
		pkt := n.NewPacket(0, 15, flit.ClassRequest, 1)
		n.Inject(pkt)
		got := runUntilDelivered(t, n, 1, 5000)
		lat[d] = got[0].at - pkt.InjectTime
	}
	if lat[ConvPGOpt] >= lat[ConvPG] {
		t.Errorf("Conv_PG_OPT (%d) should beat Conv_PG (%d) on a cold path", lat[ConvPGOpt], lat[ConvPG])
	}
}

// NoRD delivers to a node whose router is off without waking anything
// when traffic is sparse (threshold > 1 on power-centric routers).
func TestNoRDNoWakeupForSparseTraffic(t *testing.T) {
	p := DefaultParams(NoRD)
	p.ThresholdPower = 30
	p.ThresholdPerf = 30 // make all routers reluctant to wake
	n := MustNew(p)
	n.BeginMeasurement()
	n.Run(50)
	for id := 0; id < 16; id++ {
		if n.RouterPowerOn(id) {
			t.Fatalf("router %d still on after idle", id)
		}
	}
	pkt := n.NewPacket(5, 10, flit.ClassRequest, 1)
	n.Inject(pkt)
	runUntilDelivered(t, n, 1, 2000)
	if n.Collector().Wakeups != 0 {
		t.Errorf("NoRD woke %d routers for a single sparse packet", n.Collector().Wakeups)
	}
}

// NoRD's wakeup metric does fire under sustained load on a
// performance-centric router (threshold 1).
func TestNoRDWakeupMetricFires(t *testing.T) {
	p := DefaultParams(NoRD)
	p.PerfCentric = []int{5}
	n := MustNew(p)
	n.BeginMeasurement()
	n.Run(50)
	// Locally inject at node 5 repeatedly: its NI VC requests must wake
	// router 5.
	for i := 0; i < 8; i++ {
		n.Inject(n.NewPacket(5, 10, flit.ClassRequest, 1))
	}
	n.Run(60)
	if n.Collector().Wakeups == 0 {
		t.Error("sustained injection did not wake the performance-centric router")
	}
}

// Packets between all pairs are delivered on every design (connectivity,
// no loss, no duplication).
func TestAllPairsDelivery(t *testing.T) {
	for _, d := range []Design{NoPG, ConvPG, ConvPGOpt, NoRD} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			n := MustNew(DefaultParams(d))
			n.BeginMeasurement()
			seen := map[uint64]bool{}
			n.SetDeliveryHandler(func(p *flit.Packet, _ uint64) {
				if seen[p.ID] {
					t.Errorf("packet %d delivered twice", p.ID)
				}
				seen[p.ID] = true
			})
			want := 0
			for s := 0; s < 16; s++ {
				for dst := 0; dst < 16; dst++ {
					if s == dst {
						continue
					}
					if n.Inject(n.NewPacket(s, dst, flit.ClassRequest, 1)) {
						want++
					}
					n.Tick() // stagger injections to respect queue depth
				}
			}
			if err := n.Drain(200_000); err != nil {
				t.Fatal(err)
			}
			if len(seen) != want {
				t.Errorf("delivered %d packets, want %d", len(seen), want)
			}
		})
	}
}

func TestInjectValidation(t *testing.T) {
	n := MustNew(DefaultParams(NoPG))
	if n.Inject(n.NewPacket(0, 0, flit.ClassRequest, 1)) {
		t.Error("self-addressed packet accepted")
	}
	if n.Inject(n.NewPacket(-1, 3, flit.ClassRequest, 1)) {
		t.Error("invalid source accepted")
	}
	if n.Inject(n.NewPacket(0, 99, flit.ClassRequest, 1)) {
		t.Error("invalid destination accepted")
	}
}

func TestInjectBackpressure(t *testing.T) {
	p := DefaultParams(NoPG)
	p.InjectQueueDepth = 2
	n := MustNew(p)
	ok := 0
	for i := 0; i < 5; i++ {
		if n.Inject(n.NewPacket(0, 3, flit.ClassRequest, 1)) {
			ok++
		}
	}
	if ok != 2 {
		t.Errorf("accepted %d packets into a depth-2 queue", ok)
	}
}
