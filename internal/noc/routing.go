package noc

import (
	"nord/internal/flit"
	"nord/internal/topology"
)

// routeAction classifies a routing decision.
type routeAction uint8

const (
	// actPort: try the ordered output (dir, vc) candidates.
	actPort routeAction = iota
	// actEject: the packet is at its destination.
	actEject
	// actWake: conventional designs only — no usable output exists, a
	// gated-off router must be awoken (the packet stalls, asserting WU).
	actWake
)

// cand is one output (port, VC) candidate, with the bookkeeping that must
// happen if it is granted.
type cand struct {
	dir          topology.Dir
	vc           int
	escape       bool
	misroute     bool
	escapeVCNext int
}

// decision is the result of route computation for a head packet.
type decision struct {
	action     routeAction
	cands      []cand
	wakeTarget int
	wuDelay    int
}

// routeTableMaxNodes bounds the grids for which the quadratic per-pair
// routing tables are precomputed (a 32x32 grid costs ~5 MB). Larger
// networks compute directions through the topology — still
// allocation-free (MinimalSet returns by value).
const routeTableMaxNodes = 1024

// buildRouteTables precomputes the per-(src,dst) minimal-direction sets
// and deterministic (XY/DOR) escape directions so route computation is a
// table lookup instead of coordinate arithmetic plus a fresh slice per
// decision.
func (n *Network) buildRouteTables() {
	if n.nn > routeTableMaxNodes {
		return
	}
	n.minDirs = make([]topology.DirSet, n.nn*n.nn)
	n.xyDirs = make([]topology.Dir, n.nn*n.nn)
	for s := 0; s < n.nn; s++ {
		for t := 0; t < n.nn; t++ {
			n.minDirs[s*n.nn+t] = n.topo.MinimalSet(s, t)
			n.xyDirs[s*n.nn+t] = n.topo.XYDir(s, t)
		}
	}
}

// minimalDirSet returns the minimal-progress directions from src to dst
// by value, so callers can slice a stack copy and reorder it in place
// without touching the shared table.
func (n *Network) minimalDirSet(src, dst int) topology.DirSet {
	if n.minDirs != nil {
		return n.minDirs[src*n.nn+dst]
	}
	return n.topo.MinimalSet(src, dst)
}

// xyDir returns the deterministic dimension-order direction from src
// toward dst (XY on a mesh, shortest-way-around DOR on a torus).
func (n *Network) xyDir(src, dst int) topology.Dir {
	if n.xyDirs != nil {
		return n.xyDirs[src*n.nn+dst]
	}
	return n.topo.XYDir(src, dst)
}

// escapeForceAfter is the number of failed VA attempts after which a
// conventional design escalates: if its escape path runs through a
// gated-off router, that router is awoken. This guarantees forward
// progress (the escape network must be reachable for Duato's protocol).
const escapeForceAfter = 16

// escapeAfterNoRD is the number of failed VA attempts after which a NoRD
// packet adds the escape ring to its candidates. Entering the ring is a
// committed long detour, so it is a last resort rather than an instant
// fallback; blocked packets still reach it (Duato's protocol needs escape
// reachability, not immediacy).
const escapeAfterNoRD = 16

// route computes the routing decision for pkt at router r, having arrived
// on input port inDir (topology.Local for locally injected packets).
// vaFails is the number of consecutive failed allocation attempts for
// this head, used to escalate to wakeups in conventional designs.
func (n *Network) route(r *Router, inDir topology.Dir, pkt *flit.Packet, vaFails int) decision {
	if pkt.Dst == r.id {
		return decision{action: actEject}
	}
	if n.p.Design == NoRD {
		return n.routeNoRD(r, inDir, pkt, vaFails)
	}
	return n.routeConv(r, pkt, vaFails)
}

// routeConv routes for No_PG, Conv_PG and Conv_PG_OPT: minimal adaptive
// routing on the adaptive VCs with XY routing on the escape VC (Duato's
// protocol). Gated-off routers are unusable; if no usable output exists
// the XY-preferred gated-off neighbor must be awoken. Conv_PG asserts WU
// at SA-request time; Conv_PG_OPT generates it EarlyWakeupCycles earlier
// (at RC time), hiding that much of the wakeup latency (Section 3.3).
func (n *Network) routeConv(r *Router, pkt *flit.Packet, vaFails int) decision {
	base := n.p.vcBase(int(pkt.Class))
	adaptiveLo := base + n.p.escapeVCs()
	adaptiveHi := base + n.p.VCsPerClass
	xy := n.xyDir(r.id, pkt.Dst)
	xyNb, _ := n.neighbor(r.id, xy)

	cands := r.sh.candScratch[:0]
	if !pkt.Escaped {
		// Adaptive candidates: minimal directions whose router is on,
		// best-credit first.
		ds := n.minimalDirSet(r.id, pkt.Dst)
		dirs := ds.Dirs[:ds.Cnt]
		n.orderByCredit(r, dirs, adaptiveLo, adaptiveHi)
		for _, d := range dirs {
			nb, ok := n.neighbor(r.id, d)
			if !ok || !n.routers[nb].on() {
				continue
			}
			for v := adaptiveLo; v < adaptiveHi; v++ {
				cands = append(cands, cand{dir: d, vc: v})
			}
		}
	}
	// Escape fallback: the deterministic (XY/DOR) output's escape VC,
	// usable only when that router is on. On a torus the escape class is
	// the dateline VC pair; on a mesh convEscapeVC is always 0.
	if n.routers[xyNb].on() {
		cands = append(cands, cand{
			dir:          xy,
			vc:           base + n.convEscapeVC(r.id, xy, pkt),
			escape:       true,
			escapeVCNext: n.convEscapeVCNext(r.id, xy, pkt),
		})
	}
	r.sh.candScratch = cands
	if len(cands) == 0 {
		// No usable output at all: stall and wake the XY-preferred
		// neighbor (node-router dependence, Section 3).
		return n.wakeDecision(xyNb)
	}
	if vaFails >= escapeForceAfter && !n.routers[xyNb].on() {
		// Adaptive outputs exist but have starved; the escape network
		// must become reachable for Duato's protocol to guarantee
		// progress, so wake the escape router.
		return n.wakeDecision(xyNb)
	}
	return decision{action: actPort, cands: cands}
}

// wakeDecision builds the stall-and-wake decision for conventional
// designs. Conv_PG's WU is generated at SA-request time, modelled as an
// assertion delay of EarlyWakeupCycles relative to Conv_PG_OPT's RC-time
// generation.
func (n *Network) wakeDecision(target int) decision {
	delay := 0
	if n.p.Design == ConvPG {
		delay = n.p.EarlyWakeupCycles
	}
	return decision{action: actWake, wakeTarget: target, wuDelay: delay}
}

// routeNoRD routes for NoRD (Section 4.2): packets on adaptive VCs use
// minimal adaptive routing over powered-on routers and the bypass of
// powered-off ones (reachable only through their Bypass Inport, i.e. via
// this router's Bypass Outport); when no minimal output is usable they
// must take the Bypass Outport, misrouted by one hop, until the misroute
// cap forces them onto the escape ring. Escape packets follow the ring on
// the dateline VC pair until the destination. No wakeups are ever needed.
func (n *Network) routeNoRD(r *Router, inDir topology.Dir, pkt *flit.Packet, vaFails int) decision {
	base := n.p.vcBase(int(pkt.Class))
	adaptiveLo := base + n.p.escapeVCs()
	adaptiveHi := base + n.p.VCsPerClass
	ringOut := n.ring.OutDir(r.id)

	escCand := cand{
		dir:          ringOut,
		vc:           base + n.ringEscapeVC(r.id, pkt),
		escape:       true,
		escapeVCNext: n.ringEscapeVCNext(r.id, pkt),
	}
	if pkt.Escaped {
		cands := append(r.sh.candScratch[:0], escCand)
		r.sh.candScratch = cands
		return decision{action: actPort, cands: cands}
	}

	var dec decision
	dec.cands = r.sh.candScratch[:0]
	ds := n.minimalDirSet(r.id, pkt.Dst)
	dirs := ds.Dirs[:ds.Cnt]
	n.orderByCredit(r, dirs, adaptiveLo, adaptiveHi)
	usable := 0
	for _, d := range dirs {
		if d == inDir {
			continue // no U-turns
		}
		nb, ok := n.neighbor(r.id, d)
		if !ok {
			continue
		}
		if !n.routers[nb].on() && d != ringOut {
			continue // gated-off routers accept flits only on the ring
		}
		usable++
		for v := adaptiveLo; v < adaptiveHi; v++ {
			dec.cands = append(dec.cands, cand{dir: d, vc: v})
		}
	}
	if usable == 0 {
		// Forced detour through the Bypass Outport; still on adaptive
		// resources if below the misroute cap.
		misroute := true
		for _, d := range dirs {
			if d == ringOut {
				misroute = false // the ring hop happens to be minimal
			}
		}
		if pkt.Misroutes < n.p.MisrouteCap || !misroute {
			for v := adaptiveLo; v < adaptiveHi; v++ {
				dec.cands = append(dec.cands, cand{dir: ringOut, vc: v, misroute: misroute})
			}
		}
	}
	// Escape-ring fallback: the ring link is usable whether its
	// downstream router is on or off, but it is offered only once the
	// packet has starved on adaptive resources (or has no other option).
	if len(dec.cands) == 0 || vaFails >= escapeAfterNoRD {
		dec.cands = append(dec.cands, escCand)
	}
	r.sh.candScratch = dec.cands
	return dec
}

// bypassCands returns the ordered output-VC candidates for a packet being
// forwarded (or locally injected) through a gated-off router's NI bypass.
// The output port is forced to the Bypass Outport; the packet stays on
// adaptive resources while below the misroute cap and always has the
// escape-ring fallback (Section 4.2: "powered-off routers have no VCs but
// still have the corresponding adaptive/escape latches").
func (n *Network) bypassCands(r *Router, pkt *flit.Packet, fails int) []cand {
	base := n.p.vcBase(int(pkt.Class))
	adaptiveLo := base + n.p.escapeVCs()
	adaptiveHi := base + n.p.VCsPerClass
	ringOut := n.ring.OutDir(r.id)
	escCand := cand{
		dir:          ringOut,
		vc:           base + n.ringEscapeVC(r.id, pkt),
		escape:       true,
		escapeVCNext: n.ringEscapeVCNext(r.id, pkt),
	}
	if pkt.Escaped {
		cands := append(r.sh.candScratch[:0], escCand)
		r.sh.candScratch = cands
		return cands
	}
	misroute := true
	ds := n.minimalDirSet(r.id, pkt.Dst)
	for _, d := range ds.Dirs[:ds.Cnt] {
		if d == ringOut {
			misroute = false
		}
	}
	cands := r.sh.candScratch[:0]
	if pkt.Misroutes < n.p.MisrouteCap || !misroute {
		for v := adaptiveLo; v < adaptiveHi; v++ {
			cands = append(cands, cand{dir: ringOut, vc: v, misroute: misroute})
		}
	}
	if len(cands) == 0 || fails >= escapeAfterNoRD {
		cands = append(cands, escCand)
	}
	r.sh.candScratch = cands
	return cands
}

// convEscapeVC returns the escape VC (within the class's escape set) a
// conventional-design packet must use on the deterministic escape link
// out of router id through dir. On a mesh (and cmesh) the escape class is
// a single XY VC: always 0. On a torus the escape class is a dateline
// pair per dimension ring: the wrap link always carries VC 1, links
// before the dateline VC 0 and links after it VC 1 (the packet's position
// is tracked in pkt.EscapeVC and reset at each dimension change), so the
// channel order within each directed ring is strictly increasing and no
// escape-channel cycle survives.
func (n *Network) convEscapeVC(id int, d topology.Dir, pkt *flit.Packet) int {
	if n.topo.WrapLink(id, d) {
		return 1
	}
	if pkt.Escaped {
		return pkt.EscapeVC
	}
	return 0
}

// convEscapeVCNext returns the escape VC the packet holds after
// traversing the escape link out of id through d: reset to 0 when the
// next hop starts a new dimension (dimension-ordered escape routing makes
// cross-dimension dependences acyclic, and minimal DOR crosses each
// dateline at most once), otherwise the VC used on this link (1 from the
// dateline crossing onward).
func (n *Network) convEscapeVCNext(id int, d topology.Dir, pkt *flit.Packet) int {
	nb, ok := n.neighbor(id, d)
	if !ok || nb == pkt.Dst {
		return 0
	}
	if dimOf(d) != dimOf(n.xyDir(nb, pkt.Dst)) {
		return 0
	}
	return n.convEscapeVC(id, d, pkt)
}

// dimOf returns the dimension (0 = X, 1 = Y) of a grid direction.
func dimOf(d topology.Dir) int {
	if d == topology.East || d == topology.West {
		return 0
	}
	return 1
}

// ringEscapeVC returns the escape VC (within the class's escape pair) a
// packet must use on the ring link out of router id: VC 0 before crossing
// the dateline, VC 1 after.
func (n *Network) ringEscapeVC(id int, pkt *flit.Packet) int {
	if pkt.Escaped {
		return pkt.EscapeVC
	}
	return 0
}

// ringEscapeVCNext returns the escape VC the packet will hold after
// traversing the ring link out of router id (the dateline switch).
func (n *Network) ringEscapeVCNext(id int, pkt *flit.Packet) int {
	cur := n.ringEscapeVC(id, pkt)
	if n.ring.CrossesDateline(id) {
		return 1
	}
	return cur
}

// orderByCredit sorts candidate directions by descending free credits in
// the adaptive VC range (a congestion-aware selection function); ties keep
// the deterministic minimal-dirs order. Insertion sort: the slice has at
// most two entries.
func (n *Network) orderByCredit(r *Router, dirs []topology.Dir, lo, hi int) {
	credit := func(d topology.Dir) int {
		sum := 0
		for v := lo; v < hi; v++ {
			if r.outOwner[d][v] == ownerFree {
				sum += r.outCredits[d][v]
			}
		}
		return sum
	}
	for i := 1; i < len(dirs); i++ {
		for j := i; j > 0 && credit(dirs[j]) > credit(dirs[j-1]); j-- {
			dirs[j], dirs[j-1] = dirs[j-1], dirs[j]
		}
	}
}
