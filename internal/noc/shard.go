package noc

// The sharded parallel tick kernel. Params.Parallelism partitions the
// mesh (and the NoRD bypass ring, which the comb-serpentine order keeps
// mostly shard-local) into contiguous spatial domains [lo,hi) of node
// IDs, each owned by one pinned worker goroutine. Every per-cycle phase
// of Network.Step runs shard-locally over the owner's slice of the
// active worklist; anything that would cross a shard boundary — link
// deliveries, tracer events, poisoned-packet drops, wake activations,
// credit returns — is recorded in per-shard buffers and committed at a
// serial merge point between phases, in a fixed order keyed by
// (source node, port, queue position), which is exactly the order the
// serial kernel would have produced. The serial kernel is the P=1
// special case of the same code path (one shard, inline sections, no
// deferral), so reports are bit-identical across parallelism levels.

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"nord/internal/flit"
	"nord/internal/obs"
	"nord/internal/stats"
	"nord/internal/topology"
)

// Section identifiers for the parallel phases of one cycle. Each maps to
// one fused group of the serial kernel's numbered phases.
const (
	secLinks  = iota // phase 1: link traversal completion
	secNode          // phases 2-4: NI wire deliveries, router ST, NI pipelines
	secRouter        // phases 5-7: router SA, VA, RC
	secStats         // phases 10-11: per-node accounting + deactivation sweep
)

// defEvent is a tracer event deferred inside a parallel section, replayed
// in key order at the next merge so the tracer (a single-goroutine sink
// with order-sensitive sampling state) sees the serial emission order.
type defEvent struct {
	key     uint64
	arg     uint64
	router  int32
	kind    obs.Kind
	cause   obs.Cause
	sampled bool
}

// xDeliver is a link delivery whose target lives in another shard,
// committed serially at the links merge. key encodes (source, port,
// queue position), the serial kernel's delivery order.
type xDeliver struct {
	key  uint64
	from int32
	dir  int8
	f    *flit.Flit
}

// pendingDrop is a poisoned packet that reached its destination inside a
// parallel section; the retransmit scheduling mutates injector-global
// state, so it replays serially in key order.
type pendingDrop struct {
	key uint64
	pkt *flit.Packet
}

// shard owns the contiguous node range [lo,hi) and everything a worker
// mutates without synchronisation: its slice of the active worklist, a
// private statistics collector and flit pool, the route-computation
// scratch, and the deferral buffers drained at merge points.
type shard struct {
	idx    int
	lo, hi int

	// ids is the reusable snapshot of this shard's active worklist.
	ids []int

	// col accumulates every statistic incremented inside a section;
	// foldStats merges it into the master collector at serial points.
	col *stats.NoC

	// pool recycles packets and flits created or ejected in this shard.
	// flit.Level rebalances the free-lists periodically, since packets
	// born in one shard are often recycled in another.
	pool flit.Pool

	// candScratch is the per-shard route-computation scratch (was global
	// when the kernel was single-threaded).
	candScratch []cand

	// Deferral buffers, committed at merge points.
	credits   []creditEvt
	activates []int32
	events    []defEvent
	drops     []pendingDrop
	xout      []xDeliver

	// Per-cycle accumulators folded into the network at the epilogue.
	inFlightDelta int
	progressed    bool

	// err latches the shard's first structured error, folded into the
	// network's latch at each merge (so the P=1 first-error is the
	// chronological one, exactly as before).
	err error

	// Fault-report deltas (the report struct itself is injector-global).
	repCorrupt   uint64
	repPoisoned  uint64
	repDelivered uint64

	// evBase/evSeq form the deferred-event key cursor: the per-node (or
	// per-delivery) base is set by the section loop, and evSeq numbers
	// the events emitted under that base in program order.
	evBase uint64
	evSeq  uint32
}

// nextEvKey returns the next deferred-event key under the current base.
func (sh *shard) nextEvKey() uint64 {
	k := sh.evBase | uint64(sh.evSeq)
	sh.evSeq++
	return k
}

// shardFor returns the shard owning node id.
func (n *Network) shardFor(id int) *shard { return n.shards[n.shardOf[id]] }

// failSh latches a structured error raised inside a section into the
// executing shard; merges fold it into the network's first-error latch.
func (n *Network) failSh(sh *shard, err error) {
	if sh.err == nil {
		sh.err = err
	}
}

// activateFrom activates node id from shard sh's context: directly when
// the node is shard-local (or the kernel is serial), deferred to the
// router merge otherwise. Activation is idempotent, so the merge applies
// duplicates harmlessly.
func (n *Network) activateFrom(sh *shard, id int) {
	if n.shardOf[id] == int32(sh.idx) {
		n.activate(id)
		return
	}
	sh.activates = append(sh.activates, int32(id))
}

// spinBarrier is a sense-reversing barrier for the per-phase rendezvous.
// Phases are microseconds long, so on a machine with a core per shard the
// waiters spin hot for a short budget before parking on the condvar; on an
// oversubscribed machine (fewer cores than shards — including the
// single-CPU degenerate case, where a spinning waiter would starve the
// very worker it waits for) they park immediately.
type spinBarrier struct {
	total int32
	count atomic.Int32
	gen   atomic.Uint32
	spin  int32
	mu    sync.Mutex
	cond  *sync.Cond
}

func (b *spinBarrier) init(total int) {
	b.total = int32(total)
	b.cond = sync.NewCond(&b.mu)
	if runtime.NumCPU() >= total {
		b.spin = 1 << 13
	}
}

func (b *spinBarrier) wait() {
	g := b.gen.Load()
	if b.count.Add(1) == b.total {
		b.count.Store(0)
		// The generation bump is published under the lock so a waiter
		// cannot check it, miss the change, and then sleep through the
		// broadcast.
		b.mu.Lock()
		b.gen.Add(1)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for i := int32(0); i < b.spin; i++ {
		if b.gen.Load() != g {
			return
		}
	}
	b.mu.Lock()
	for b.gen.Load() == g {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// parKernel is the running worker fleet: sec carries the section to run
// across the start barrier (written by the coordinator strictly between
// barrier generations; a negative value shuts the workers down).
type parKernel struct {
	bar spinBarrier
	sec int
}

// spawnWorkers starts one pinned worker per non-coordinator shard.
func (n *Network) spawnWorkers() {
	par := &parKernel{}
	par.bar.init(len(n.shards))
	n.par = par
	for i := 1; i < len(n.shards); i++ {
		go n.worker(par, n.shards[i])
	}
}

// worker is the per-shard goroutine: rendezvous, run the announced
// section over the owned shard, rendezvous again so the coordinator can
// merge. OS-thread pinning keeps the hot spin from migrating.
func (n *Network) worker(par *parKernel, sh *shard) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	for {
		par.bar.wait()
		sec := par.sec
		if sec < 0 {
			par.bar.wait()
			return
		}
		n.runSection(sec, sh)
		par.bar.wait()
	}
}

// Close stops the parallel worker goroutines. It is a no-op for serial
// networks (or when Step has not run yet) and is idempotent; a later
// Step respawns the fleet. Callers that create parallel networks should
// Close them when done — the workers pin OS threads and keep the network
// reachable until shut down.
func (n *Network) Close() {
	par := n.par
	if par == nil {
		return
	}
	n.par = nil
	par.sec = -1
	par.bar.wait()
	par.bar.wait()
}

// runPhase executes one section across all shards: through the worker
// fleet when it is running, inline (shard order, which is ascending node
// order) otherwise. A delivery handler executes user code on the eject
// path, so its presence degrades the phase to inline execution.
func (n *Network) runPhase(sec int) {
	if par := n.par; par != nil && n.ejectHandler == nil {
		par.sec = sec
		par.bar.wait()
		n.runSection(sec, n.shards[0])
		par.bar.wait()
		return
	}
	for _, sh := range n.shards {
		n.runSection(sec, sh)
	}
}

// shardActive snapshots shard sh's slice of the active worklist in
// ascending node order. Boundary words of the bitset are shared with
// neighboring shards, so loads are atomic and out-of-range bits masked.
func (n *Network) shardActive(sh *shard) []int {
	ids := sh.ids[:0]
	loW := sh.lo >> 6
	hiW := (sh.hi + 63) >> 6
	for w := loW; w < hiW; w++ {
		word := atomic.LoadUint64(&n.activeMask[w])
		base := w << 6
		if base < sh.lo {
			word &^= (uint64(1) << uint(sh.lo-base)) - 1
		}
		if hiBits := sh.hi - base; hiBits < 64 {
			word &= (uint64(1) << uint(hiBits)) - 1
		}
		for word != 0 {
			ids = append(ids, base+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	sh.ids = ids
	return ids
}

// runSection executes one fused phase group over shard sh. Within a
// section, every write lands in sh-owned state (node state of [lo,hi),
// the shard's collector, pool and deferral buffers); the only cross-node
// reads are power states, which change exclusively in the serial phases.
func (n *Network) runSection(sec int, sh *shard) {
	switch sec {
	case secLinks:
		for _, id := range n.shardActive(sh) {
			if n.linkCount[id] > 0 {
				n.deliverNodeLinks(sh, id)
			}
		}
	case secNode:
		for _, id := range n.shardActive(sh) {
			sh.evBase = uint64(id) << 32
			sh.evSeq = 0
			ni := n.nis[id]
			ni.tickDeliver()
			n.routers[id].tickST()
			ni.tick()
		}
	case secRouter:
		for _, id := range n.shardActive(sh) {
			sh.evBase = uint64(id) << 32
			sh.evSeq = 0
			r := n.routers[id]
			r.tickSA()
			r.tickVA()
			r.tickRC()
		}
	case secStats:
		for _, id := range n.shardActive(sh) {
			ni := n.nis[id]
			if ni.lastTick != n.cycle {
				// Activated after the NI phase: the NI tick it missed
				// would have pushed 0 into an all-zero demand window,
				// which reduces to the quiet-run increment.
				ni.quietRun++
			}
			n.lastTicked[id] = n.cycle
			if n.collecting {
				r := n.routers[id]
				n.idle[id].Record(r.busy())
				switch r.state {
				case powerOn:
					sh.col.RouterOnCycles++
				case powerOff:
					sh.col.RouterOffCycles++
					r.statOffCycles++
				case powerWaking:
					sh.col.RouterWakingCycles++
				}
			}
			// Deactivation sweep, fused into the stats walk: nodes with
			// no remaining work leave the worklist; activate() restores
			// them when an event touches them again.
			if n.sparse && !n.nodeNeedsTick(id) {
				atomic.AndUint64(&n.activeMask[id>>6], ^(uint64(1) << (uint(id) & 63)))
			}
		}
	}
}

// mergeLinks commits cross-shard link deliveries in (shard, source,
// port, queue position) order — the serial kernel's delivery order up to
// commutative reordering against in-shard deliveries (distinct target
// state) — then replays deferred events and drops.
func (n *Network) mergeLinks() {
	for _, sh := range n.shards {
		for i := range sh.xout {
			x := &sh.xout[i]
			to := n.nbrTab[int(x.from)*int(topology.NumDirs)+int(x.dir)]
			dst := n.shards[n.shardOf[to]]
			dst.evBase, dst.evSeq = x.key, 0
			n.deliverFlit(int(x.from), topology.Dir(x.dir), x.f)
			x.f = nil
		}
		sh.xout = sh.xout[:0]
	}
	n.replayDeferred()
}

// mergeNode runs after the NI/ST section: the ring-credit restore (which
// writes the ring predecessor's credit state, potentially cross-shard)
// and the deferred replays.
func (n *Network) mergeNode() {
	n.restoreRingCredits()
	n.replayDeferred()
}

// mergeRouter applies deferred cross-shard wake activations in shard
// order (activation is idempotent and its back-fill per-node, so order
// across distinct nodes is immaterial), then the deferred replays.
func (n *Network) mergeRouter() {
	for _, sh := range n.shards {
		for _, id := range sh.activates {
			n.activate(int(id))
		}
		sh.activates = sh.activates[:0]
	}
	n.replayDeferred()
}

// restoreRingCredits restores withheld ring credits for VCs whose
// mid-bypass packet has fully drained after a wakeup (Section 4.3). In
// the serial kernel this ran inside each NI's bypass tick; it is hoisted
// to this serial point because it writes the ring predecessor's credit
// state, which may live in another shard. Every input to the condition
// is frozen once the owner's NI section finishes, and the NI section
// activates no nodes, so walking the active worklist here in ascending
// order restores exactly the credits the serial kernel restored.
func (n *Network) restoreRingCredits() {
	if n.p.Design != NoRD {
		return
	}
	for _, id := range n.collectActive() {
		r := n.routers[id]
		if r.heldVCs == 0 || !r.on() {
			continue
		}
		ni := n.nis[id]
		for v := range r.creditsHeld {
			if r.creditsHeld[v] > 0 && r.bypassRemaining[v] == 0 && ni.latch[v] == nil {
				n.addRingUpstreamCredits(id, v, r.creditsHeld[v])
				r.creditsHeld[v] = 0
				r.heldVCs--
			}
		}
	}
}

// replayDeferred drains every shard's deferred tracer events and
// poisoned-packet drops in key order (the serial emission order) and
// folds shard errors into the network's first-error latch. Events and
// drops are only ever deferred when the kernel is sharded; the serial
// kernel emits inline.
func (n *Network) replayDeferred() {
	if n.sharded {
		if n.tracer != nil {
			n.replayEvents()
		}
		if n.faults != nil {
			n.replayDrops()
		}
	}
	for _, sh := range n.shards {
		if sh.err != nil {
			n.fail(sh.err)
			sh.err = nil
		}
	}
}

func (n *Network) replayEvents() {
	evs := n.evScratch[:0]
	for _, sh := range n.shards {
		evs = append(evs, sh.events...)
		sh.events = sh.events[:0]
	}
	if len(evs) > 1 {
		sort.Slice(evs, func(i, j int) bool { return evs[i].key < evs[j].key })
	}
	for i := range evs {
		e := &evs[i]
		if e.sampled {
			n.tracer.EmitSampled(n.cycle, e.router, e.kind, e.cause, e.arg)
		} else {
			n.tracer.Emit(n.cycle, e.router, e.kind, e.cause, e.arg)
		}
	}
	n.evScratch = evs[:0]
}

func (n *Network) replayDrops() {
	drops := n.dropScratch[:0]
	for _, sh := range n.shards {
		drops = append(drops, sh.drops...)
		sh.drops = sh.drops[:0]
	}
	if len(drops) > 1 {
		sort.Slice(drops, func(i, j int) bool { return drops[i].key < drops[j].key })
	}
	for i := range drops {
		n.faults.dropPoisoned(n, drops[i].pkt)
		drops[i].pkt = nil
	}
	n.dropScratch = drops[:0]
}

// traceEvent routes a tracer emission from shard sh's context: deferred
// (with the next key under the shard's cursor) when the kernel is
// sharded, inline otherwise. Callers check n.tracer != nil.
func (n *Network) traceEvent(sh *shard, router int32, kind obs.Kind, cause obs.Cause, arg uint64, sampled bool) {
	if n.sharded {
		sh.events = append(sh.events, defEvent{
			key: sh.nextEvKey(), arg: arg, router: router,
			kind: kind, cause: cause, sampled: sampled,
		})
		return
	}
	if sampled {
		n.tracer.EmitSampled(n.cycle, router, kind, cause, arg)
	} else {
		n.tracer.Emit(n.cycle, router, kind, cause, arg)
	}
}

// foldStats merges every shard collector into the master. Merging is
// exact (sums of integers, integer-valued samples), so the fold is
// bit-identical to serial accumulation regardless of shard count.
func (n *Network) foldStats() {
	for _, sh := range n.shards {
		n.col.Merge(sh.col)
		sh.col.Reset()
	}
}
