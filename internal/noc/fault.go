package noc

import (
	"nord/internal/fault"
	"nord/internal/flit"
	"nord/internal/obs"
	"nord/internal/topology"
)

// This file threads the fault-injection subsystem through the network:
// applying scheduled fault events (link corruption, dropped wakeups,
// stuck and hard-failed routers), the end-to-end retransmit machinery
// with capped exponential backoff, and hard-fail activation that pins a
// dead router to the NoRD bypass ring (it behaves as permanently
// power-gated, so its node stays connected while through-traffic routes
// around it).

// FaultOptions tunes the recovery machinery attached alongside a fault
// schedule. The zero value selects the defaults.
type FaultOptions struct {
	// RetryLimit is the maximum end-to-end retransmissions per payload
	// before it is declared unrecoverable (default 8).
	RetryLimit int
	// RetryBackoffBase is the first retransmit delay in cycles; retry k
	// waits RetryBackoffBase << k, capped at RetryBackoffCap (defaults 16
	// and 1024).
	RetryBackoffBase int
	RetryBackoffCap  int
	// WatchdogTimeout is how long demand must persist against a gated-off
	// router that refuses to wake before the power-gating watchdog forces
	// the wakeup through (default 8*WakeupLatency + 4*WakeupWindow, at
	// least 64 cycles).
	WatchdogTimeout int
}

func (o *FaultOptions) fill(p *Params) {
	if o.RetryLimit == 0 {
		o.RetryLimit = 8
	}
	if o.RetryBackoffBase == 0 {
		o.RetryBackoffBase = 16
	}
	if o.RetryBackoffCap == 0 {
		o.RetryBackoffCap = 1024
	}
	if o.WatchdogTimeout == 0 {
		o.WatchdogTimeout = max(8*p.WakeupLatency+4*p.WakeupWindow, 64)
	}
}

// retryEntry is one pending end-to-end retransmission.
type retryEntry struct {
	pkt *flit.Packet
	at  uint64
}

// faultInjector owns the attached schedule, the armed transient faults,
// the retransmit queue and the recovery accounting.
type faultInjector struct {
	events []fault.Event // cycle-ordered
	next   int
	opts   FaultOptions
	report fault.Report
	// armed counts pending link corruptions per unidirectional link,
	// indexed router*NumDirs+dir. A flat slice (not a map) so shard
	// workers can decrement their own routers' entries concurrently:
	// distinct links are distinct elements, and only the owning shard
	// touches a link's entry inside a parallel phase.
	armed  []int32
	retryQ []retryEntry
	failed []int // activated hard-fail router IDs
}

// AttachFaults arms a fault schedule on the network. It must be called
// before the first Tick/Step. Options zero-values select defaults.
func (n *Network) AttachFaults(s *fault.Schedule, opts FaultOptions) error {
	if n.cycle != 0 {
		return &fault.ProtocolError{Cycle: n.cycle, Router: -1, Msg: "fault schedule attached after simulation start"}
	}
	opts.fill(&n.p)
	fi := &faultInjector{
		events: append([]fault.Event(nil), s.Events...),
		opts:   opts,
		armed:  make([]int32, n.nn*int(topology.NumDirs)),
	}
	for _, e := range fi.events {
		if !n.topo.Valid(e.Router) {
			return &fault.ProtocolError{Cycle: 0, Router: e.Router, Msg: "fault event targets a router outside the grid"}
		}
		fi.report.Injected[e.Kind]++
	}
	n.faults = fi
	// The fault machinery pokes arbitrary routers (scheduled events,
	// hard-fail activation, retransmits) outside the event-sparse
	// activation discipline: faulted runs use the full-scan kernel.
	n.sparse = false
	n.setAllActive()
	return nil
}

// FaultReport returns the recovery accounting of the attached schedule
// (nil when no faults are armed). Valid once the run has finished.
func (n *Network) FaultReport() *fault.Report {
	if n.faults == nil {
		return nil
	}
	return &n.faults.report
}

// HardFailedRouters returns the routers that have hard-failed so far.
func (n *Network) HardFailedRouters() []int {
	if n.faults == nil {
		return nil
	}
	return append([]int(nil), n.faults.failed...)
}

// Quiescent reports whether no packet is in flight and no retransmission
// is pending — the drain-complete condition for faulted runs.
func (n *Network) Quiescent() bool {
	return n.inFlight == 0 && (n.faults == nil || len(n.faults.retryQ) == 0)
}

// tick runs the injector at the top of each network cycle: applying due
// events, activating pending hard-fails once the target has drained, and
// issuing due retransmissions.
func (fi *faultInjector) tick(n *Network) {
	for fi.next < len(fi.events) && fi.events[fi.next].Cycle <= n.cycle {
		fi.apply(n, fi.events[fi.next])
		fi.next++
	}
	fi.activateHardFails(n)
	fi.issueRetransmits(n)
}

// apply injects one fault event.
func (fi *faultInjector) apply(n *Network, e fault.Event) {
	r := n.routers[e.Router]
	switch e.Kind {
	case fault.CorruptLink:
		d := topology.Dir(e.Dir % int(topology.Local))
		if _, ok := n.topo.Neighbor(e.Router, d); !ok {
			// Edge router without that link (meshes only; a torus wires
			// every port, wrap links included): rotate to an existing one
			// so the armed fault can actually bite.
			for dd := topology.Dir(0); dd < topology.Local; dd++ {
				if _, ok := n.topo.Neighbor(e.Router, dd); ok {
					d = dd
					break
				}
			}
		}
		fi.armed[e.Router*int(topology.NumDirs)+int(d)]++
	case fault.DropWakeup:
		r.dropWakeups++
	case fault.StuckOff:
		if !r.wakeBlocked && !r.hardFailed {
			r.wakeBlocked = true
			r.stuckCounted = false
		}
	case fault.HardFail:
		if !r.hardFailed {
			r.failPending = true
		}
	}
}

// activateHardFails completes pending hard-fails whose routers have
// drained. A hard-failed router is pinned off: under NoRD its node keeps
// sending, receiving and forwarding over the non-gated bypass ring;
// under conventional designs the mesh loses the router for good.
func (fi *faultInjector) activateHardFails(n *Network) {
	for _, r := range n.routers {
		if !r.failPending {
			continue
		}
		switch r.state {
		case powerWaking:
			// Let the wake complete; the fail lands next quiet moment.
			continue
		case powerOn:
			if !r.safeToKill() {
				continue
			}
			r.gateOff()
		}
		r.failPending = false
		r.hardFailed = true
		r.wakeBlocked = false
		if n.tracer != nil {
			n.tracer.Emit(n.cycle, int32(r.id), obs.KindHardFail, obs.CauseNone, 0)
		}
		fi.report.Triggered[fault.HardFail]++
		fi.report.RoutersLost++
		fi.failed = append(fi.failed, r.id)
	}
}

// safeToKill reports whether the router can be disabled without breaking
// flow-control invariants: empty datapath, nothing incoming, and (NoRD)
// a drained bypass engine.
func (r *Router) safeToKill() bool {
	if r.busy() || r.incomingSoon() {
		return false
	}
	if r.net.p.Design == NoRD {
		ni := r.net.nis[r.id]
		if ni.injectOut != nil {
			return false
		}
		for v := range ni.latch {
			if ni.latch[v] != nil || ni.fwdOutVC[v] >= 0 || r.creditsHeld[v] > 0 {
				return false
			}
		}
	}
	return true
}

// faultBlocksWake applies the wake-path faults when a gated-off router's
// WU level is asserted: a stuck PG controller (StuckOff) or a swallowed
// handshake (DropWakeup) keeps the router off until the power-gating
// watchdog times out on the persistent demand and forces the wakeup
// through. It reports true while the wake must stay suppressed.
func (r *Router) faultBlocksWake() bool {
	n := r.net
	fi := n.faults
	if fi == nil {
		return false
	}
	if !r.wakeBlocked && !r.wakeSwallowed {
		if r.dropWakeups == 0 {
			return false
		}
		r.dropWakeups--
		r.wakeSwallowed = true
		fi.report.Triggered[fault.DropWakeup]++
		n.col.WakeupsDropped++
	}
	if r.wakeBlocked && !r.stuckCounted {
		r.stuckCounted = true
		fi.report.Triggered[fault.StuckOff]++
	}
	if r.wakeWantSince == 0 {
		r.wakeWantSince = n.cycle
		return true
	}
	if n.cycle-r.wakeWantSince < uint64(fi.opts.WatchdogTimeout) {
		return true
	}
	// Watchdog fired: re-issue the lost wakeup and reset the controller.
	r.wakeBlocked = false
	r.wakeSwallowed = false
	r.wakeWantSince = 0
	r.watchdogWoke = true
	fi.report.WatchdogWakeups++
	n.col.WatchdogWakeups++
	return false
}

// maybeCorrupt fires an armed link fault on a departing flit. It runs
// inside parallel phases, so it only touches the calling shard's
// accumulators and this link's own armed counter; the report totals are
// folded from the shard deltas at the end of the cycle.
func (fi *faultInjector) maybeCorrupt(sh *shard, id int, dir topology.Dir, f *flit.Flit) {
	k := id*int(topology.NumDirs) + int(dir)
	if fi.armed[k] == 0 {
		return
	}
	fi.armed[k]--
	f.Corrupt()
	sh.repCorrupt++
	sh.col.CorruptFlits++
}

// verify checks a delivered flit's checksum, poisoning the packet on
// mismatch. The poisoned packet keeps traversing so wormhole and credit
// state stay consistent; its destination NI drops it and the source
// retransmits (end-to-end recovery). Poison is a compare-and-swap so
// that when two corrupted flits of the same packet arrive the same cycle
// in different shards, exactly one shard counts the poisoning.
func (fi *faultInjector) verify(n *Network, sh *shard, f *flit.Flit) {
	if f.Packet.IsPoisoned() || f.ChecksumOK() {
		return
	}
	if !f.Packet.Poison() {
		return
	}
	sh.repPoisoned++
	sh.col.PoisonedPackets++
}

// dropPoisoned handles a poisoned packet reaching its destination:
// schedule the retransmission (capped exponential backoff) or declare the
// payload unrecoverable once the retry budget is spent.
func (fi *faultInjector) dropPoisoned(n *Network, p *flit.Packet) {
	if p.Retries >= fi.opts.RetryLimit {
		fi.report.PacketsLost++
		if len(fi.report.Unrecoverable) < 8 {
			fi.report.Unrecoverable = append(fi.report.Unrecoverable, &fault.UnrecoverableError{
				Cycle: n.cycle, PacketID: p.ID, Src: p.Src, Dst: p.Dst, Retries: p.Retries,
			})
		}
		return
	}
	delay := fi.opts.RetryBackoffBase << p.Retries
	if delay > fi.opts.RetryBackoffCap {
		delay = fi.opts.RetryBackoffCap
	}
	fi.retryQ = append(fi.retryQ, retryEntry{pkt: p, at: n.cycle + uint64(delay)})
}

// issueRetransmits re-injects due retransmissions at their source NI.
// Injection backpressure just defers to the next cycle.
func (fi *faultInjector) issueRetransmits(n *Network) {
	if len(fi.retryQ) == 0 {
		return
	}
	keep := fi.retryQ[:0]
	for _, e := range fi.retryQ {
		if e.at > n.cycle {
			keep = append(keep, e)
			continue
		}
		n.nextPktID++
		clone := flit.Retransmit(e.pkt, n.nextPktID)
		if !n.Inject(clone) {
			keep = append(keep, retryEntry{pkt: e.pkt, at: n.cycle + 1})
			continue
		}
		fi.report.Retransmits++
		n.col.Retransmits++
	}
	fi.retryQ = keep
}
