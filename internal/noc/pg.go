package noc

import (
	"nord/internal/fault"
	"nord/internal/obs"
	"nord/internal/topology"
)

// This file implements the power-gating controllers: the small non-gated
// monitor every gated design keeps per router (Section 3.1), the
// handshaking of Section 4.3 (PG/WU/IC signals, credit adjustment of the
// ring upstream, pipeline restarts at neighbors), and the per-design
// wakeup conditions.

// tickController advances the router's power state machine. It runs at
// the end of every network cycle.
func (r *Router) tickController() {
	n := r.net
	p := &n.p
	if r.busy() {
		r.emptyRun = 0
	} else if r.emptyRun <= p.GateIdleCycles {
		r.emptyRun++
	}
	if !p.Design.PowerGated() {
		return
	}
	switch r.state {
	case powerOn:
		if r.canGateOff() {
			r.gateOff()
		}
	case powerOff:
		if r.hardFailed {
			// A hard-failed router never wakes: it behaves as permanently
			// power-gated. Under NoRD its node stays reachable over the
			// bypass ring; under conventional designs neighbors stall.
			return
		}
		if !r.wakeRequested() {
			r.wakeWantSince = 0
			r.wakeSwallowed = false
			return
		}
		if r.faultBlocksWake() {
			return
		}
		if n.tracer != nil {
			n.tracer.Emit(n.cycle, int32(r.id), obs.KindWakeStart, r.wakeCause(), n.cycle-r.stateSince)
		}
		r.watchdogWoke = false
		r.stateSince = n.cycle
		r.state = powerWaking
		r.wakeCounter = p.WakeupLatency
		r.statWakeups++
		n.noteWakeup()
	case powerWaking:
		r.wakeCounter--
		if r.wakeCounter <= 0 {
			r.completeWake()
		}
	}
}

// wakeRequested evaluates the WU level for this router.
func (r *Router) wakeRequested() bool {
	n := r.net
	p := &n.p
	if p.ForcedOff {
		return false
	}
	if p.Design == NoRD {
		// The VC-request metric at the local NI (Section 4.3).
		return n.nis[r.id].wakeupMetricHigh()
	}
	// Conventional designs: the local node needs the router for any
	// injection (node-router dependence) ...
	if n.nis[r.id].wantsRouterOn() {
		return true
	}
	// ... and neighbors stalled in SA assert WU (after the assertion
	// delay that models SA-time vs RC-time generation).
	for d := topology.Dir(0); d < topology.Local; d++ {
		nb, ok := n.neighbor(r.id, d)
		if !ok {
			continue
		}
		nbr := n.routers[nb]
		if nbr.phaseCnt[vcWaitWake] == 0 {
			continue
		}
		for _, vc := range nbr.in {
			for _, st := range vc {
				if st.phase == vcWaitWake && st.target == r.id && n.cycle >= st.wuFrom {
					return true
				}
			}
		}
	}
	return false
}

// wakeCause attributes a granted wakeup to the signal that asserted WU,
// mirroring wakeRequested's evaluation order: under NoRD only the
// VC-request metric wakes a router; conventional designs check the local
// node's injection need before scanning neighbors stalled in SA. The
// fault watchdog overrides both (faultBlocksWake fired the wakeup).
func (r *Router) wakeCause() obs.Cause {
	if r.watchdogWoke {
		return obs.CauseWatchdog
	}
	if r.net.p.Design == NoRD {
		return obs.CauseVCThreshold
	}
	if r.net.nis[r.id].wantsRouterOn() {
		return obs.CauseLocalInject
	}
	return obs.CauseSARequest
}

// canGateOff checks the gate-off conditions: empty datapath for the IC
// horizon, no incoming flits, WU clear, and (Conv_PG_OPT) no early wakeup
// pending, which suppresses gating for idle periods shorter than the
// early-wakeup horizon (Section 5.1).
func (r *Router) canGateOff() bool {
	n := r.net
	p := &n.p
	if r.busy() || r.emptyRun < p.GateIdleCycles {
		return false
	}
	// The bypass datapath must have fully drained (latches, inject
	// register, withheld credits) before another transition.
	if p.Design == NoRD {
		ni := n.nis[r.id]
		if ni.injectOut != nil || ni.latchCount > 0 || ni.fwdCount > 0 || r.heldVCs > 0 {
			return false
		}
		// Hysteresis on the wakeup metric: wake when the windowed demand
		// reaches the (asymmetric) threshold, but gate off only after the
		// demand window has stayed completely quiet for quietNeed cycles,
		// so marginal demand does not thrash the router through state
		// transitions. Performance-centric routers sleep late (3x the
		// window), complementing their early wakeup (Section 4.4).
		if ni.window.Sum() > ni.gateSlack || ni.quietRun < ni.quietNeed {
			return false
		}
	}
	if r.incomingSoon() {
		return false
	}
	if r.wakeRequested() {
		return false
	}
	if p.Design == ConvPGOpt && r.earlyWakeupIncoming() {
		return false
	}
	return true
}

// earlyWakeupIncoming reports whether any neighbor has already computed a
// route toward this router (the RC-time WU of Conv_PG_OPT): gating now
// would create an idle period shorter than the wakeup pipeline can hide.
func (r *Router) earlyWakeupIncoming() bool {
	n := r.net
	for d := topology.Dir(0); d < topology.Local; d++ {
		nb, ok := n.neighbor(r.id, d)
		if !ok {
			continue
		}
		nbr := n.routers[nb]
		if nbr.phaseCnt[vcActive] == 0 {
			continue
		}
		toMe := d.Opposite()
		for _, vcs := range nbr.in {
			for _, st := range vcs {
				if st.phase == vcActive && st.route == toMe && !st.empty() {
					return true
				}
			}
		}
	}
	return false
}

// gateOff performs the on->off transition: assert PG, clamp the ring
// upstream's credits to the single bypass-latch slot (NoRD), restart
// neighbor pipelines whose allocated routes became unusable, and enable
// the NI bypass.
func (r *Router) gateOff() {
	n := r.net
	p := &n.p
	r.state = powerOff
	if n.collecting {
		r.statGateOffs++
	}
	if n.tracer != nil {
		n.tracer.Emit(n.cycle, int32(r.id), obs.KindGateOff, obs.CauseNone, n.cycle-r.stateSince)
	}
	r.stateSince = n.cycle
	n.noteGateOff()
	for d := topology.Dir(0); d < topology.Local; d++ {
		nb, ok := n.neighbor(r.id, d)
		if !ok {
			continue
		}
		nbr := n.routers[nb]
		toMe := d.Opposite() // nb's output port toward us
		usable := p.Design == NoRD && n.ring.OutDir(nb) == toMe
		if usable {
			// The ring upstream keeps the port but with a single credit
			// per VC: the one-flit bypass latch (Section 4.3).
			for v := range nbr.outCredits[toMe] {
				if nbr.outCredits[toMe][v] > 1 {
					nbr.outCredits[toMe][v] = 1
				}
			}
			continue
		}
		// Other neighbors tag the port unavailable and restart any head
		// packet that had allocated it (flits in VA/SA restart from RC).
		if nbr.phaseCnt[vcActive] == 0 {
			continue
		}
		for _, vcs := range nbr.in {
			for _, st := range vcs {
				if st.phase == vcActive && st.route == toMe {
					nbr.outOwner[toMe][st.outVC] = ownerFree
					nbr.setPhase(st, vcRouting)
					st.vaFails = 0
				}
			}
		}
	}
	n.nis[r.id].onRouterOff()
}

// postWakeHold keeps a freshly woken router from gating off again before
// the packet that requested the wakeup can reach it. In hardware the
// requester sits stalled in the SA stage with its WU level asserted until
// its flit traverses; this model restarts the requester from RC instead,
// so the hold covers the RC->VA->SA->ST->LT pipeline refill.
const postWakeHold = 10

// completeWake finishes the off->on transition: deassert PG, top the ring
// upstream's credits back up (deferring VCs still mid-bypass), and let
// stalled neighbors resume (they poll in tickRC).
func (r *Router) completeWake() {
	n := r.net
	p := &n.p
	r.state = powerOn
	r.emptyRun = -postWakeHold
	if n.tracer != nil {
		n.tracer.Emit(n.cycle, int32(r.id), obs.KindWakeDone, obs.CauseNone, n.cycle-r.stateSince)
	}
	r.stateSince = n.cycle
	if p.Design != NoRD {
		return
	}
	ni := n.nis[r.id]
	add := p.BufferDepth - 1
	for v := range r.bypassRemaining {
		if r.bypassRemaining[v] > 0 || ni.latch[v] != nil || ni.fwdOutVC[v] >= 0 {
			// A packet is mid-bypass on this VC: hold the extra credits
			// until it drains so the latch cannot overrun.
			if add > 0 && r.creditsHeld[v] == 0 {
				r.heldVCs++
			}
			r.creditsHeld[v] = add
			continue
		}
		n.addRingUpstreamCredits(r.id, v, add)
	}
}

// onRouterOff lets the NI react to its router gating off: a local packet
// whose injection had been set up through the Local port but has not sent
// any flit yet is requeued so it can take the bypass (NoRD) or wait for
// the wakeup (conventional designs re-assert WU through wantsRouterOn).
func (ni *NI) onRouterOff() {
	if ni.curMode != modeLocal {
		return
	}
	if len(ni.curFlits) == 0 || ni.curFlits[0].Seq != 0 {
		// Flits already entered the router: the router could not have
		// been empty, so this cannot happen.
		ni.net.fail(&fault.ProtocolError{Cycle: ni.net.cycle, Router: ni.id,
			Msg: "router gated off mid local injection"})
		return
	}
	pkt := ni.curFlits[0].Packet
	c := int(pkt.Class)
	// None of the flits were sent (Seq 0 is still at the front): recycle
	// the serialisation before requeueing the packet at the head.
	for _, f := range ni.curFlits {
		ni.sh.pool.PutFlit(f)
	}
	ni.injQ[c].pushFront(pkt)
	ni.queuedTotal++
	ni.curFlits = nil
	ni.curMode = modeNone
}
