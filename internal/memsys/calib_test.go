package memsys

import (
	"testing"

	"nord/internal/flit"
	"nord/internal/noc"
)

// TestProfileCalibration checks that the PARSEC-like profiles reproduce
// the paper's workload characteristics in shape: router idleness spans a
// wide band with blackscholes idlest and x264 busiest (Section 3.1
// reports 71.2% and 30.4%), and the majority of idle periods are at or
// below the 10-cycle breakeven time (Section 3.2 reports >61%).
func TestProfileCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	type point struct {
		load, idle, le10 float64
	}
	results := map[string]point{}
	for _, prof := range Profiles() {
		prof.InstrPerCore = 6000
		p := noc.DefaultParams(noc.NoPG)
		p.Classes = flit.NumClasses
		net := noc.MustNew(p)
		sys, err := NewSystem(net, prof, 42)
		if err != nil {
			t.Fatal(err)
		}
		net.BeginMeasurement()
		if _, err := sys.Run(8_000_000); err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		net.FinishMeasurement()
		col := net.Collector()
		results[prof.Name] = point{
			load: float64(col.FlitsDelivered) / float64(col.Cycles) / 16.0,
			idle: col.IdleFraction(),
			le10: col.IdlePeriods.FracLE(10),
		}
	}
	for name, r := range results {
		if r.load < 0.02 || r.load > 0.30 {
			t.Errorf("%s: load %.4f outside the paper's low-to-medium band", name, r.load)
		}
		if r.idle < 0.25 || r.idle > 0.90 {
			t.Errorf("%s: idle fraction %.3f outside the plausible band", name, r.idle)
		}
	}
	bs, x := results["blackscholes"], results["x264"]
	if bs.idle < 0.70 {
		t.Errorf("blackscholes idle %.3f, want the idlest (>0.70)", bs.idle)
	}
	if x.idle > 0.55 {
		t.Errorf("x264 idle %.3f, want the busiest (<0.55)", x.idle)
	}
	for name, r := range results {
		if r.idle > bs.idle+0.02 {
			t.Errorf("%s idler (%.3f) than blackscholes (%.3f)", name, r.idle, bs.idle)
		}
		if r.idle < x.idle-0.02 {
			t.Errorf("%s busier (%.3f) than x264 (%.3f)", name, r.idle, x.idle)
		}
	}
	// Average short-idle-period fraction near the paper's 61%.
	sum := 0.0
	for _, r := range results {
		sum += r.le10
	}
	if avg := sum / float64(len(results)); avg < 0.45 || avg > 0.85 {
		t.Errorf("average idle-periods-<=BET fraction %.3f, paper reports ~0.61", avg)
	}
}
