package memsys

import "math/rand"

// corePhase is the core's execution state.
type corePhase uint8

const (
	phaseRun corePhase = iota
	phaseWaitLoad
	phaseRetryOp
	phaseDone
)

// core is a simple in-order core model: it retires one instruction per
// cycle while running, issues a memory operation every ~1/MemOpFrac
// instructions, blocks on load misses, and buffers stores. Workloads
// alternate memory-intensive and compute phases to produce the bursty,
// fragmented router idleness the paper analyses (Section 3.2).
type core struct {
	sys  *System
	node int
	rng  *rand.Rand

	instrDone   uint64
	quota       uint64
	gap         int // non-memory instructions until the next memory op
	jitter      uint64
	phase       corePhase
	pendingBlk  uint64
	pendingSt   bool
	finishCycle uint64

	loads, stores, retries uint64
}

func newCore(sys *System, node int, seed int64) *core {
	c := &core{
		sys:   sys,
		node:  node,
		rng:   rand.New(rand.NewSource(seed)),
		quota: sys.prof.InstrPerCore,
	}
	// Threads reach phase boundaries (barriers) slightly apart.
	c.jitter = uint64(c.rng.Intn(40))
	c.gap = c.drawGap()
	return c
}

func (c *core) done() bool { return c.phase == phaseDone }

// inMemPhase reports whether this core currently executes the
// memory-intensive phase: the chip-global phase (multithreaded workloads
// alternate parallel memory phases and compute/serial phases together,
// separated by barriers) observed with a small per-core skew.
func (c *core) inMemPhase() bool {
	return c.sys.memPhaseAt(c.sys.now() - min64(c.jitter, c.sys.now()))
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func (c *core) drawGap() int {
	p := &c.sys.prof
	frac := p.MemOpFrac
	if !c.inMemPhase() {
		frac = p.MemOpFrac * p.ComputePhaseMemScale
	}
	if frac <= 0 {
		return 1 << 20
	}
	mean := 1/frac - 1
	if mean <= 0 {
		return 0
	}
	g := 0
	for c.rng.Float64() > 1.0/(mean+1) && g < 100_000 {
		g++
	}
	return g
}

// pickBlock draws the next memory address (as a block number) from the
// profile's working sets: a private region per core and a shared region,
// both with a hot subset to model temporal locality.
func (c *core) pickBlock() uint64 {
	p := &c.sys.prof
	if c.rng.Float64() < p.SharedFrac && p.SharedBlocks > 0 {
		hot := p.SharedBlocks / 8
		if hot < 1 {
			hot = 1
		}
		if c.rng.Float64() < 0.7 {
			return sharedBase + uint64(c.rng.Intn(hot))
		}
		return sharedBase + uint64(c.rng.Intn(p.SharedBlocks))
	}
	hot := p.PrivateBlocks / 8
	if hot < 1 {
		hot = 1
	}
	base := privateBase(c.node)
	if c.rng.Float64() < 0.8 {
		return base + uint64(c.rng.Intn(hot))
	}
	return base + uint64(c.rng.Intn(p.PrivateBlocks))
}

// Address-space layout: shared region at the bottom, per-node private
// regions spaced far apart.
const sharedBase = uint64(1) << 40

func privateBase(node int) uint64 {
	return uint64(node+1) << 24
}

// tick advances the core one cycle.
func (c *core) tick() {
	switch c.phase {
	case phaseDone, phaseWaitLoad:
		return
	case phaseRetryOp:
		c.issue(c.pendingBlk, c.pendingSt)
		return
	case phaseRun:
		if c.instrDone >= c.quota {
			c.phase = phaseDone
			c.finishCycle = c.sys.now()
			return
		}
		c.instrDone++
		if c.gap > 0 {
			c.gap--
			return
		}
		c.gap = c.drawGap()
		store := c.rng.Float64() < c.sys.prof.WriteFrac
		c.issue(c.pickBlock(), store)
	}
}

func (c *core) issue(block uint64, store bool) {
	if store {
		c.stores++
	} else {
		c.loads++
	}
	switch c.sys.l1s[c.node].access(block, store) {
	case accDone:
		c.phase = phaseRun
	case accStallLoad:
		c.phase = phaseWaitLoad
	case accRetry:
		c.retries++
		if store {
			c.stores--
		} else {
			c.loads--
		}
		c.phase = phaseRetryOp
		c.pendingBlk = block
		c.pendingSt = store
	}
}

// loadDone unblocks a core stalled on a load.
func (c *core) loadDone() {
	if c.phase == phaseWaitLoad {
		c.phase = phaseRun
	}
}

// storeDone is called when an outstanding store retires; retries are
// polled, so nothing to do.
func (c *core) storeDone() {}
