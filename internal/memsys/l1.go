package memsys

import "fmt"

// mshrEntry tracks one outstanding L1 miss.
type mshrEntry struct {
	isStore      bool
	dataArrived  bool
	ackCount     int // acks expected, learned from MsgData
	acksReceived int
	issued       uint64 // cycle the request left, for latency accounting
	// invalidated records an Inv processed while this (load) miss was
	// outstanding: the arriving data may be consumed once but must not
	// be cached (the IS_D race of standard MSI).
	invalidated bool
	// exclusive records a GetS answered with the E grant.
	exclusive bool
}

// l1ctrl is a private L1 cache controller implementing the MESI protocol's
// L1 side: hit/miss handling, MSHRs, a store buffer, invalidation and
// forward handling, and a writeback buffer that answers forwards racing
// with evictions.
type l1ctrl struct {
	sys  *System
	node int
	c    *cache
	// mshr maps block -> outstanding transaction.
	mshr map[uint64]*mshrEntry
	// wbBuf holds dirty evicted blocks until the home acks the PutM; a
	// forward arriving meanwhile is answered from here.
	wbBuf map[uint64]bool
	// inQ holds delivered messages awaiting the L1's access latency.
	inQ msgQueue
	// loadBlock is the block the core is stalled on (loads are blocking),
	// ^uint64(0) when none.
	loadBlock uint64

	missLatency sampleAcc
}

// sampleAcc is a tiny mean accumulator.
type sampleAcc struct {
	n   uint64
	sum float64
}

func (s *sampleAcc) add(v float64) { s.n++; s.sum += v }

func (s *sampleAcc) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

const noBlock = ^uint64(0)

func newL1(sys *System, node int) *l1ctrl {
	return &l1ctrl{
		sys:       sys,
		node:      node,
		c:         newCache(sys.prof.L1Sets, sys.prof.L1Ways),
		mshr:      make(map[uint64]*mshrEntry),
		wbBuf:     make(map[uint64]bool),
		loadBlock: noBlock,
	}
}

// storeBufFull reports whether another outstanding store fits.
func (l *l1ctrl) storeBufFull() bool {
	n := 0
	for _, e := range l.mshr {
		if e.isStore {
			n++
		}
	}
	return n >= l.sys.prof.StoreBufEntries
}

// accessResult tells the core how a memory operation went.
type accessResult uint8

const (
	// accDone: the op completed (hit) or was issued non-blocking (store
	// miss in the store buffer); the core proceeds.
	accDone accessResult = iota
	// accStallLoad: a load miss is outstanding; the core stalls until
	// loadDone.
	accStallLoad
	// accRetry: a structural hazard (store buffer full, or the block is
	// already in the MSHR for a store); retry next cycle.
	accRetry
)

// access performs a core memory operation against the L1.
func (l *l1ctrl) access(block uint64, store bool) accessResult {
	if l.wbBuf[block] {
		// The block's dirty copy is mid-writeback (state MI_A): issuing
		// a new request now could make the home forward back to us while
		// we are the stale owner. Wait for the WBAck.
		return accRetry
	}
	if _, busy := l.mshr[block]; busy {
		// A transaction for this block is already outstanding
		// (simplified: no coalescing).
		if store {
			return accRetry
		}
		l.loadBlock = block
		return accStallLoad
	}
	line := l.c.lookup(block)
	if line != nil {
		if !store || line.state == stateM {
			return accDone // read hit, or write hit in M
		}
		if line.state == stateE {
			// Silent E->M upgrade: the whole point of the Exclusive
			// state — private read-then-write data costs no coherence
			// traffic.
			line.state = stateM
			return accDone
		}
		// Write hit in S: upgrade, non-blocking via the store buffer.
		if l.storeBufFull() {
			return accRetry
		}
		l.startMiss(block, true)
		return accDone
	}
	if store {
		if l.storeBufFull() {
			return accRetry
		}
		l.startMiss(block, true)
		return accDone
	}
	l.startMiss(block, false)
	l.loadBlock = block
	return accStallLoad
}

func (l *l1ctrl) startMiss(block uint64, store bool) {
	l.mshr[block] = &mshrEntry{isStore: store, issued: l.sys.now()}
	t := MsgGetS
	if store {
		t = MsgGetM
	}
	l.sys.send(l.node, l.sys.homeOf(block), &Msg{Type: t, Block: block, Requester: l.node})
}

// deliver enqueues a network message for processing after the L1 access
// latency.
func (l *l1ctrl) deliver(m *Msg) {
	l.inQ.push(m, l.sys.now()+uint64(l.sys.prof.L1Latency))
}

// tick processes due messages (up to two per cycle: one fill, one probe).
func (l *l1ctrl) tick() {
	for i := 0; i < 2; i++ {
		m := l.inQ.pop(l.sys.now())
		if m == nil {
			return
		}
		l.handle(m)
	}
}

func (l *l1ctrl) handle(m *Msg) {
	// A forward can reach us before the data that makes us owner (the
	// home serialised our GetM first). Stall it until our transaction
	// completes; responses never wait on forwards, so this cannot cycle.
	if m.Type == MsgFwdGetS || m.Type == MsgFwdGetM {
		if _, pending := l.mshr[m.Block]; pending {
			l.inQ.push(m, l.sys.now()+1)
			return
		}
	}
	switch m.Type {
	case MsgData:
		e := l.mshr[m.Block]
		if e == nil {
			panic(fmt.Sprintf("memsys: L1 %d got %s without MSHR", l.node, m))
		}
		e.dataArrived = true
		e.ackCount = m.AckCount
		e.exclusive = m.Exclusive
		l.maybeComplete(m.Block, e)
	case MsgInvAck:
		e := l.mshr[m.Block]
		if e == nil {
			panic(fmt.Sprintf("memsys: L1 %d got %s without MSHR", l.node, m))
		}
		e.acksReceived++
		l.maybeComplete(m.Block, e)
	case MsgFwdGetS:
		// We own the block (cache E/M or writeback buffer): send data to
		// the requester and a copy back to the home; demote to S. The
		// Dirty flag tells the home whether its L2 copy went stale (a
		// silent E->M upgrade may have happened, so E-granted blocks
		// report their actual state).
		dirty := true
		if line := l.c.peek(m.Block); line != nil && line.state >= stateE {
			dirty = line.state == stateM
			line.state = stateS
		} else if !l.wbBuf[m.Block] {
			panic(fmt.Sprintf("memsys: L1 %d got %s but owns nothing", l.node, m))
		}
		l.sys.send(l.node, m.Requester, &Msg{Type: MsgData, Block: m.Block, Requester: m.Requester})
		l.sys.send(l.node, l.sys.homeOf(m.Block), &Msg{Type: MsgDataWB, Block: m.Block, Requester: m.Requester, Dirty: dirty})
	case MsgFwdGetM:
		if line := l.c.peek(m.Block); line != nil && line.state >= stateE {
			l.c.invalidate(m.Block)
		} else if !l.wbBuf[m.Block] {
			panic(fmt.Sprintf("memsys: L1 %d got %s but owns nothing", l.node, m))
		}
		l.sys.send(l.node, m.Requester, &Msg{Type: MsgData, Block: m.Block, Requester: m.Requester})
		l.sys.send(l.node, l.sys.homeOf(m.Block), &Msg{Type: MsgOwnerAck, Block: m.Block, Requester: m.Requester})
	case MsgInv:
		// Invalidate (the line may already be gone via silent eviction)
		// and ack the requester directly. An Inv overlapping our own
		// outstanding load miss kills the incoming copy too; an Inv
		// overlapping our GetM belongs to the previous write epoch and
		// does not affect the ownership our data will grant.
		l.c.invalidate(m.Block)
		if e := l.mshr[m.Block]; e != nil && !e.isStore {
			e.invalidated = true
		}
		l.sys.send(l.node, m.Requester, &Msg{Type: MsgInvAck, Block: m.Block, Requester: m.Requester})
	case MsgWBAck:
		delete(l.wbBuf, m.Block)
	default:
		panic(fmt.Sprintf("memsys: L1 %d got unexpected %s", l.node, m))
	}
}

// maybeComplete retires an MSHR whose data and acks have all arrived.
func (l *l1ctrl) maybeComplete(block uint64, e *mshrEntry) {
	if !e.dataArrived || e.acksReceived < e.ackCount {
		return
	}
	delete(l.mshr, block)
	l.missLatency.add(float64(l.sys.now() - e.issued))
	if e.invalidated {
		// The copy was invalidated in flight: the load consumes the
		// data once but nothing is cached.
		if l.loadBlock == block {
			l.loadBlock = noBlock
			l.sys.cores[l.node].loadDone()
		}
		return
	}
	st := stateS
	if e.isStore {
		st = stateM
	} else if e.exclusive {
		st = stateE
	}
	if line := l.c.peek(block); line != nil {
		// Upgrade completion: the line is already resident in S.
		line.state = st
	} else {
		victimBlock, victimState, evicted := l.c.insert(block, st)
		if evicted && victimState >= stateE {
			// Owned eviction: notify the home through the writeback
			// buffer — dirty data for M, a 1-flit clean notice for E
			// (the directory must stop considering us the owner).
			t := MsgPutM
			if victimState == stateE {
				t = MsgPutE
			}
			l.wbBuf[victimBlock] = true
			l.sys.send(l.node, l.sys.homeOf(victimBlock), &Msg{Type: t, Block: victimBlock, Requester: l.node})
		}
	}
	if l.loadBlock == block {
		// Any completion for this block leaves it resident, satisfying a
		// stalled load.
		l.loadBlock = noBlock
		l.sys.cores[l.node].loadDone()
	}
	if e.isStore {
		l.sys.cores[l.node].storeDone()
	}
}
