package memsys

import (
	"context"
	"fmt"
	"math/rand"

	"nord/internal/flit"
	"nord/internal/noc"
)

// msgQueue is a FIFO of messages that become processable at a given cycle.
type msgQueue struct {
	items []queuedMsg
}

type queuedMsg struct {
	m     *Msg
	ready uint64
}

func (q *msgQueue) push(m *Msg, ready uint64) {
	q.items = append(q.items, queuedMsg{m: m, ready: ready})
}

// pop returns the oldest message whose ready time has passed, or nil.
func (q *msgQueue) pop(now uint64) *Msg {
	for i := range q.items {
		if q.items[i].ready <= now {
			m := q.items[i].m
			q.items = append(q.items[:i], q.items[i+1:]...)
			return m
		}
	}
	return nil
}

func (q *msgQueue) len() int { return len(q.items) }

// System couples the memory hierarchy to a NoC: cores and L1s at every
// node, an L2/directory bank at every node (shared S-NUCA), and memory
// controllers at the four corners (Table 1).
type System struct {
	net  *noc.Network
	prof Profile

	cores []*core
	l1s   []*l1ctrl
	homes []*homectrl
	mems  map[int]*memctrl
	// memList is the controllers in deterministic (node id) order.
	memList []*memctrl
	// memHome[node] is the corner controller serving that home bank.
	memHome []int

	// outQ holds packets awaiting injection per node (the NI applies
	// backpressure; protocol queues are unbounded so the protocol never
	// deadlocks on the network interface).
	outQ [][]*flit.Packet
	// delayed holds DRAM responses waiting out the memory latency before
	// entering the network.
	delayed []delayedSend

	// Chip-global workload phase oscillator (see core.inMemPhase).
	phaseRng  *rand.Rand
	memPhase  bool
	nextFlip  uint64
	prevPhase bool
	flipAt    uint64

	msgsSent map[MsgType]uint64
}

// memPhaseAt returns the chip-global phase at the given (possibly
// slightly past) cycle: cores observing with a skew see the previous
// phase until their jitter elapses.
func (s *System) memPhaseAt(cycle uint64) bool {
	for s.net.Cycle() >= s.nextFlip {
		s.prevPhase = s.memPhase
		s.flipAt = s.nextFlip
		s.memPhase = !s.memPhase
		mean := s.prof.MemPhaseLen
		if !s.memPhase {
			mean = s.prof.ComputePhaseLen
		}
		if mean < 1 {
			mean = 1
		}
		draw := 1
		for s.phaseRng.Float64() > 1.0/float64(mean) && draw < 100*mean {
			draw++
		}
		s.nextFlip += uint64(draw)
	}
	if cycle < s.flipAt {
		return s.prevPhase
	}
	return s.memPhase
}

// NewSystem builds the memory system on top of an existing network. The
// network must have been built with Classes = flit.NumClasses.
func NewSystem(net *noc.Network, prof Profile, seed int64) (*System, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if net.Params().Classes != flit.NumClasses {
		return nil, fmt.Errorf("memsys: network must carry %d protocol classes, has %d",
			flit.NumClasses, net.Params().Classes)
	}
	n := net.Mesh().N()
	s := &System{
		net:      net,
		prof:     prof,
		cores:    make([]*core, n),
		l1s:      make([]*l1ctrl, n),
		homes:    make([]*homectrl, n),
		mems:     make(map[int]*memctrl),
		memHome:  make([]int, n),
		outQ:     make([][]*flit.Packet, n),
		msgsSent: make(map[MsgType]uint64),
		phaseRng: rand.New(rand.NewSource(seed ^ 0x5eed)),
		memPhase: true,
	}
	s.nextFlip = uint64(max(prof.MemPhaseLen, 1))
	mesh := net.Mesh()
	corners := []int{
		mesh.ID(0, 0),
		mesh.ID(mesh.W-1, 0),
		mesh.ID(0, mesh.H-1),
		mesh.ID(mesh.W-1, mesh.H-1),
	}
	for _, c := range corners {
		mc := newMemCtrl(s, c)
		s.mems[c] = mc
		s.memList = append(s.memList, mc)
	}
	for id := 0; id < n; id++ {
		s.cores[id] = newCore(s, id, seed+int64(id)*7919)
		s.l1s[id] = newL1(s, id)
		s.homes[id] = newHome(s, id)
		best, bestD := corners[0], 1<<30
		for _, c := range corners {
			if d := mesh.HopDist(id, c); d < bestD || (d == bestD && c < best) {
				best, bestD = c, d
			}
		}
		s.memHome[id] = best
	}
	net.SetDeliveryHandler(s.onDeliver)
	return s, nil
}

// Profile returns the workload profile in use.
func (s *System) Profile() Profile { return s.prof }

// now returns the current cycle (the network owns the clock).
func (s *System) now() uint64 { return s.net.Cycle() }

// homeOf maps a block to its home L2 bank (address interleaving).
func (s *System) homeOf(block uint64) int {
	return int(block % uint64(len(s.homes)))
}

// memCtrlOf returns the corner memory controller serving a home bank.
func (s *System) memCtrlOf(homeNode int) int { return s.memHome[homeNode] }

// send transmits a protocol message from src to dst, over the NoC when
// the nodes differ and through a short local path otherwise.
func (s *System) send(src, dst int, m *Msg) {
	s.sendDelayed(src, dst, m, 0)
}

// sendDelayed is send with an extra source-side delay (DRAM latency).
func (s *System) sendDelayed(src, dst int, m *Msg, delay uint64) {
	s.msgsSent[m.Type]++
	if src == dst {
		// Local: requester is its own home bank (or the bank hosts its
		// own memory controller). Bypass the NoC with a 1-cycle wire.
		s.dispatch(dst, m, s.now()+delay+1)
		return
	}
	if delay == 0 {
		p := s.net.NewPacket(src, dst, m.Type.Class(), m.Type.Flits())
		p.Payload = m
		s.outQ[src] = append(s.outQ[src], p)
		return
	}
	// Delayed remote send (memory data): hold locally, then enqueue.
	s.delayed = append(s.delayed, delayedSend{src: src, dst: dst, m: m, at: s.now() + delay})
}

type delayedSend struct {
	src, dst int
	m        *Msg
	at       uint64
}

// dispatch routes a message to the right component at a node, applying
// the component's input latency via its own queue.
func (s *System) dispatch(node int, m *Msg, ready uint64) {
	switch m.Type {
	case MsgGetS, MsgGetM, MsgPutM, MsgPutE, MsgDataWB, MsgOwnerAck, MsgMemData:
		s.homes[node].inQ.push(m, ready)
	case MsgFwdGetS, MsgFwdGetM, MsgInv, MsgData, MsgInvAck, MsgWBAck:
		s.l1s[node].inQ.push(m, ready)
	case MsgMemRead, MsgMemWrite:
		mc := s.mems[node]
		if mc == nil {
			panic(fmt.Sprintf("memsys: node %d has no memory controller", node))
		}
		mc.inQ.push(m, ready)
	default:
		panic(fmt.Sprintf("memsys: cannot dispatch %s", m))
	}
}

// onDeliver receives packets ejected by the NoC.
func (s *System) onDeliver(p *flit.Packet, cycle uint64) {
	m, ok := p.Payload.(*Msg)
	if !ok {
		panic("memsys: network delivered a packet without a protocol message")
	}
	lat := uint64(0)
	switch m.Type {
	case MsgGetS, MsgGetM, MsgPutM, MsgPutE, MsgDataWB, MsgOwnerAck, MsgMemData:
		lat = uint64(s.prof.L2Latency)
	case MsgFwdGetS, MsgFwdGetM, MsgInv, MsgData, MsgInvAck, MsgWBAck:
		lat = uint64(s.prof.L1Latency)
	}
	s.dispatch(p.Dst, m, cycle+lat)
}

// Tick advances the whole system one cycle: memory-side components, then
// cores, then injection, then the network.
func (s *System) Tick() {
	// Release matured DRAM sends.
	if len(s.delayed) > 0 {
		keep := s.delayed[:0]
		for _, d := range s.delayed {
			if d.at > s.now() {
				keep = append(keep, d)
				continue
			}
			p := s.net.NewPacket(d.src, d.dst, d.m.Type.Class(), d.m.Type.Flits())
			p.Payload = d.m
			s.outQ[d.src] = append(s.outQ[d.src], p)
		}
		s.delayed = keep
	}
	for _, h := range s.homes {
		h.tick()
	}
	for _, l := range s.l1s {
		l.tick()
	}
	for _, mc := range s.memList {
		mc.tick()
	}
	for _, c := range s.cores {
		c.tick()
	}
	// Flush outbound queues into the NIs (per-class backpressure).
	for node := range s.outQ {
		q := s.outQ[node]
		for len(q) > 0 {
			if !s.net.Inject(q[0]) {
				break
			}
			q = q[1:]
		}
		s.outQ[node] = q
	}
	s.net.Tick()
}

// Done reports whether every core has retired its instruction quota.
func (s *System) Done() bool {
	for _, c := range s.cores {
		if !c.done() {
			return false
		}
	}
	return true
}

// Run executes until completion or maxCycles, returning the execution
// time in cycles (the cycle the last core finished) and an error on
// timeout.
func (s *System) Run(maxCycles uint64) (uint64, error) {
	return s.RunCtx(context.Background(), maxCycles, 0, nil)
}

// RunCtx is Run with cooperative cancellation: every `every` cycles
// (0 selects 1024) it polls ctx — returning its error on cancellation, so
// aborted jobs stop burning CPU within a bounded number of cycles — and
// invokes the optional hook (the sim layer's progress snapshotter).
func (s *System) RunCtx(ctx context.Context, maxCycles, every uint64, hook func(cycle uint64)) (uint64, error) {
	if every == 0 {
		every = 1024
	}
	for s.now() < maxCycles {
		s.Tick()
		if s.Done() {
			return s.now(), nil
		}
		if s.now()%every == 0 {
			if ctx.Err() != nil {
				return 0, context.Cause(ctx)
			}
			if hook != nil {
				hook(s.now())
			}
		}
	}
	return 0, fmt.Errorf("memsys: workload %q did not finish within %d cycles", s.prof.Name, maxCycles)
}

// Drain ticks until all in-flight protocol traffic has settled (the cores
// may already be done). It returns an error on timeout.
func (s *System) Drain(maxCycles uint64) error {
	for i := uint64(0); i < maxCycles; i++ {
		if s.quiescent() {
			return nil
		}
		s.Tick()
	}
	return fmt.Errorf("memsys: protocol traffic did not drain within %d cycles", maxCycles)
}

func (s *System) quiescent() bool {
	if s.net.InFlight() != 0 || len(s.delayed) != 0 {
		return false
	}
	for node := range s.outQ {
		if len(s.outQ[node]) != 0 {
			return false
		}
	}
	for _, h := range s.homes {
		if h.inQ.len() != 0 || len(h.busy) != 0 {
			return false
		}
	}
	for _, l := range s.l1s {
		if l.inQ.len() != 0 {
			return false
		}
	}
	for _, mc := range s.memList {
		if mc.inQ.len() != 0 {
			return false
		}
	}
	return true
}

// RunWarmup executes the given number of cycles (for measurement warmup).
func (s *System) RunWarmup(cycles uint64) {
	for i := uint64(0); i < cycles && !s.Done(); i++ {
		s.Tick()
	}
}

// InstrDone returns total retired instructions (progress metric).
func (s *System) InstrDone() uint64 {
	var sum uint64
	for _, c := range s.cores {
		sum += c.instrDone
	}
	return sum
}

// L1HitRate returns the aggregate L1 hit rate.
func (s *System) L1HitRate() float64 {
	var hits, total uint64
	for _, l := range s.l1s {
		hits += l.c.hits
		total += l.c.hits + l.c.misses
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// MsgCounts returns how many messages of each type were sent.
func (s *System) MsgCounts() map[MsgType]uint64 { return s.msgsSent }

// MemAccesses returns total DRAM reads and writes.
func (s *System) MemAccesses() (reads, writes uint64) {
	for _, mc := range s.memList {
		reads += mc.reads
		writes += mc.writes
	}
	return reads, writes
}

// DebugDump renders the state of every stalled component, for diagnosing
// wedged simulations in development.
func (s *System) DebugDump() string {
	out := ""
	for id, c := range s.cores {
		if !c.done() {
			out += fmt.Sprintf("core %d: phase=%d instr=%d pendingBlk=%#x pendingSt=%v\n", id, c.phase, c.instrDone, c.pendingBlk, c.pendingSt)
		}
	}
	for id, l := range s.l1s {
		for blk, e := range l.mshr {
			out += fmt.Sprintf("l1 %d mshr blk=%#x store=%v data=%v acks=%d/%d inv=%v\n", id, blk, e.isStore, e.dataArrived, e.acksReceived, e.ackCount, e.invalidated)
		}
		if l.inQ.len() > 0 {
			for _, qm := range l.inQ.items {
				out += fmt.Sprintf("l1 %d inQ: %s ready=%d\n", id, qm.m, qm.ready)
			}
		}
		for blk := range l.wbBuf {
			out += fmt.Sprintf("l1 %d wbBuf blk=%#x\n", id, blk)
		}
		if l.loadBlock != noBlock {
			out += fmt.Sprintf("l1 %d loadBlock=%#x\n", id, l.loadBlock)
		}
	}
	for id, h := range s.homes {
		for blk, fl := range h.busy {
			out += fmt.Sprintf("home %d busy blk=%#x kind=%v req=%d waitMem=%v blockedQ=%d\n", id, blk, fl.kind, fl.req, fl.waitMem, len(h.blocked[blk]))
		}
		if h.inQ.len() > 0 {
			for _, qm := range h.inQ.items {
				out += fmt.Sprintf("home %d inQ: %s ready=%d\n", id, qm.m, qm.ready)
			}
		}
	}
	for _, mc := range s.memList {
		if mc.inQ.len() > 0 {
			out += fmt.Sprintf("memctrl %d inQ=%d\n", mc.node, mc.inQ.len())
		}
	}
	out += fmt.Sprintf("delayed=%d inflight=%d\n", len(s.delayed), s.net.InFlight())
	for node := range s.outQ {
		if len(s.outQ[node]) > 0 {
			out += fmt.Sprintf("outQ %d: %d packets\n", node, len(s.outQ[node]))
		}
	}
	return out
}
