package memsys

import (
	"strings"
	"testing"

	"nord/internal/flit"
	"nord/internal/noc"
)

// TestWritebackRaceMIA is the regression test for the MI_A deadlock: an
// L1 that re-writes a block whose PutM is still in flight must not issue
// a GetM that the home will forward back to itself. The scenario is
// driven organically: a tiny direct-mapped-ish working set with heavy
// writes forces frequent dirty evictions and immediate re-stores.
func TestWritebackRaceMIA(t *testing.T) {
	prof := baseline("mia-race")
	prof.InstrPerCore = 8000
	prof.MemOpFrac = 0.6
	prof.ComputePhaseMemScale = 1.0
	prof.MemPhaseLen = 1000
	prof.ComputePhaseLen = 1
	// Working set ~2x the L1 so dirty evictions are constant.
	prof.PrivateBlocks = 1200
	prof.SharedBlocks = 256
	prof.SharedFrac = 0.3
	prof.WriteFrac = 0.7
	p := noc.DefaultParams(noc.ConvPGOpt)
	p.Classes = flit.NumClasses
	net := noc.MustNew(p)
	sys, err := NewSystem(net, prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(30_000_000); err != nil {
		t.Fatalf("wedged: %v\n%s", err, sys.DebugDump())
	}
	if err := sys.Drain(200_000); err != nil {
		t.Fatal(err)
	}
	if sys.MsgCounts()[MsgPutM] == 0 {
		t.Fatal("scenario generated no writebacks; race not exercised")
	}
}

// TestDebugDumpReportsStalls sanity-checks the diagnostic dump.
func TestDebugDumpReportsStalls(t *testing.T) {
	sys := newSys(t, noc.NoPG, shortProfile("vips"), 2)
	// Mid-run: something should be outstanding.
	sys.RunWarmup(200)
	dump := sys.DebugDump()
	if !strings.Contains(dump, "core") {
		t.Errorf("dump misses unfinished cores:\n%s", dump)
	}
	if _, err := sys.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	dump = sys.DebugDump()
	if strings.Contains(dump, "mshr") || strings.Contains(dump, "busy") {
		t.Errorf("quiescent dump still shows transactions:\n%s", dump)
	}
}

// TestGlobalPhasesOscillate checks the chip-global workload phase
// oscillator actually alternates and that skewed observers lag.
func TestGlobalPhasesOscillate(t *testing.T) {
	sys := newSys(t, noc.NoPG, shortProfile("canneal"), 3)
	changes := 0
	last := sys.memPhaseAt(sys.now())
	for i := 0; i < 20_000 && !sys.Done(); i++ {
		sys.Tick()
		cur := sys.memPhaseAt(sys.now())
		if cur != last {
			changes++
			// Immediately after a flip, an observer with skew still sees
			// the previous phase.
			if sys.now() > 100 && sys.memPhaseAt(sys.now()-50) != last {
				t.Error("skewed observer did not lag the phase flip")
			}
		}
		last = cur
	}
	if changes < 2 {
		t.Errorf("phases flipped only %d times in 20k cycles", changes)
	}
}

// TestMemCtrlChannelSpacing: back-to-back DRAM accesses are spaced by
// MemBusyCycles.
func TestMemCtrlChannelSpacing(t *testing.T) {
	sys := newSys(t, noc.NoPG, shortProfile("x264"), 4)
	if _, err := sys.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	reads, writes := sys.MemAccesses()
	if reads == 0 {
		t.Fatal("no DRAM reads")
	}
	// The four channels can serve at most measured-cycles/MemBusyCycles
	// accesses each.
	maxPerChannel := sys.now() / uint64(sys.prof.MemBusyCycles)
	if reads+writes > 4*maxPerChannel {
		t.Errorf("%d DRAM accesses exceed channel capacity %d", reads+writes, 4*maxPerChannel)
	}
}

// TestHomeBlockingSerialises: while a block is busy at the home, later
// requests for it queue and are eventually served in order.
func TestHomeBlockingSerialises(t *testing.T) {
	sys := newSys(t, noc.NoPG, shortProfile("dedup"), 6)
	if _, err := sys.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	for id, h := range sys.homes {
		if len(h.busy) != 0 {
			t.Errorf("home %d still busy after drain", id)
		}
		for blk, q := range h.blocked {
			if len(q) != 0 {
				t.Errorf("home %d has %d stranded requests for %#x", id, len(q), blk)
			}
		}
	}
}

// TestExclusiveStateSavesUpgrades: MESI's point — a private
// read-then-write pattern costs one GetS (granted E) and zero GetMs,
// and clean evictions signal PutE rather than shipping data.
func TestExclusiveStateSavesUpgrades(t *testing.T) {
	prof := baseline("mesi-private")
	prof.InstrPerCore = 6000
	prof.MemOpFrac = 0.5
	prof.ComputePhaseMemScale = 1.0
	prof.MemPhaseLen = 1000
	prof.ComputePhaseLen = 1
	prof.PrivateBlocks = 1500 // exceeds L1 -> clean evictions happen
	prof.SharedBlocks = 0
	prof.SharedFrac = 0 // strictly private: every block single-owner
	prof.WriteFrac = 0.5
	p := noc.DefaultParams(noc.NoPG)
	p.Classes = flit.NumClasses
	net := noc.MustNew(p)
	sys, err := NewSystem(net, prof, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(30_000_000); err != nil {
		t.Fatal(err)
	}
	mc := sys.MsgCounts()
	// With fully private data, every first touch gets E; stores after
	// loads upgrade silently, and write-first misses use GetM. GetM must
	// be far below the store count's naive upgrade demand: no S->M
	// upgrades exist because nothing is ever in S.
	if mc[MsgInv] != 0 || mc[MsgFwdGetS] != 0 || mc[MsgFwdGetM] != 0 {
		t.Errorf("private-only run produced sharing traffic: %v", mc)
	}
	if mc[MsgPutE] == 0 {
		t.Error("no clean-exclusive evictions recorded")
	}
	if mc[MsgGetS] == 0 {
		t.Error("no read misses at all")
	}
}
