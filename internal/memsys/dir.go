package memsys

import (
	"fmt"
	"sort"
)

// dirState is the directory's view of a block.
type dirState uint8

const (
	dirI dirState = iota
	dirS
	dirM
)

// dirEntry is one directory record. The directory itself is unbounded
// (a standard idealisation); only the L2 *data array* has finite capacity,
// which affects whether fills come from the bank or from memory.
type dirEntry struct {
	state   dirState
	sharers map[int]bool
	owner   int
}

// inFlight describes why a block is busy at the home.
type inFlight struct {
	kind    MsgType // the original request being served
	req     int     // its requester
	waitMem bool    // a memory fetch is outstanding
}

// homectrl is one bank of the shared L2 with its directory slice. It is a
// blocking directory: while a transaction for a block is in flight,
// further requests for that block queue.
type homectrl struct {
	sys  *System
	node int
	dir  map[uint64]*dirEntry
	l2   *cache // data-presence/timing array; stateM marks dirty data
	busy map[uint64]*inFlight
	// blocked holds requests queued behind a busy block.
	blocked map[uint64][]*Msg
	inQ     msgQueue

	memFetches uint64
}

func newHome(sys *System, node int) *homectrl {
	return &homectrl{
		sys:     sys,
		node:    node,
		dir:     make(map[uint64]*dirEntry),
		l2:      newCache(sys.prof.L2Sets, sys.prof.L2Ways),
		busy:    make(map[uint64]*inFlight),
		blocked: make(map[uint64][]*Msg),
	}
}

func (h *homectrl) entry(block uint64) *dirEntry {
	e := h.dir[block]
	if e == nil {
		e = &dirEntry{state: dirI, sharers: make(map[int]bool)}
		h.dir[block] = e
	}
	return e
}

// deliver enqueues a message after the L2 access latency.
func (h *homectrl) deliver(m *Msg) {
	h.inQ.push(m, h.sys.now()+uint64(h.sys.prof.L2Latency))
}

// tick processes one due message per cycle (bank bandwidth).
func (h *homectrl) tick() {
	m := h.inQ.pop(h.sys.now())
	if m == nil {
		return
	}
	h.handle(m)
}

func (h *homectrl) handle(m *Msg) {
	switch m.Type {
	case MsgGetS, MsgGetM, MsgPutM, MsgPutE:
		if _, isBusy := h.busy[m.Block]; isBusy {
			h.blocked[m.Block] = append(h.blocked[m.Block], m)
			return
		}
		h.serve(m)
	case MsgDataWB:
		// Demoted owner's copy arrives: the 3-hop GetS completes.
		fl := h.busy[m.Block]
		if fl == nil || fl.kind != MsgGetS {
			panic(fmt.Sprintf("memsys: home %d got unexpected %s", h.node, m))
		}
		h.l2fill(m.Block, true)
		e := h.entry(m.Block)
		e.state = dirS
		// Sharers were set when the forward was sent.
		h.unblock(m.Block)
	case MsgOwnerAck:
		fl := h.busy[m.Block]
		if fl == nil || fl.kind != MsgGetM {
			panic(fmt.Sprintf("memsys: home %d got unexpected %s", h.node, m))
		}
		h.unblock(m.Block)
	case MsgMemData:
		fl := h.busy[m.Block]
		if fl == nil || !fl.waitMem {
			panic(fmt.Sprintf("memsys: home %d got unexpected %s", h.node, m))
		}
		fl.waitMem = false
		h.l2fill(m.Block, false)
		h.serveFromL2(m.Block, fl.kind, fl.req)
	default:
		panic(fmt.Sprintf("memsys: home %d got unexpected %s", h.node, m))
	}
}

// serve starts a fresh transaction for an idle block.
func (h *homectrl) serve(m *Msg) {
	e := h.entry(m.Block)
	switch m.Type {
	case MsgGetS:
		switch e.state {
		case dirI, dirS:
			h.dataToRequester(m.Block, MsgGetS, m.Requester)
		case dirM:
			// 3-hop: the owner sends data to the requester and a copy
			// back here; block until the copy lands.
			h.busy[m.Block] = &inFlight{kind: MsgGetS, req: m.Requester}
			h.sys.send(h.node, e.owner, &Msg{Type: MsgFwdGetS, Block: m.Block, Requester: m.Requester})
			e.sharers[e.owner] = true
			e.sharers[m.Requester] = true
			e.owner = -1
		}
	case MsgGetM:
		switch e.state {
		case dirI, dirS:
			h.dataToRequester(m.Block, MsgGetM, m.Requester)
		case dirM:
			h.busy[m.Block] = &inFlight{kind: MsgGetM, req: m.Requester}
			h.sys.send(h.node, e.owner, &Msg{Type: MsgFwdGetM, Block: m.Block, Requester: m.Requester})
			e.state = dirM
			e.owner = m.Requester
		}
	case MsgPutM, MsgPutE:
		if e.state == dirM && e.owner == m.Requester {
			// PutE carries no data: the L2/memory copy is still valid
			// (the E line was never written).
			h.l2fill(m.Block, m.Type == MsgPutM)
			e.state = dirI
			e.owner = -1
			clear(e.sharers)
		}
		// Otherwise the writeback is stale (the block moved on while it
		// was in flight): just ack so the L1 frees its buffer.
		h.sys.send(h.node, m.Requester, &Msg{Type: MsgWBAck, Block: m.Block, Requester: m.Requester})
	}
}

// dataToRequester supplies data for a GetS/GetM whose directory state is
// I or S, fetching from memory when the L2 data array misses.
func (h *homectrl) dataToRequester(block uint64, kind MsgType, req int) {
	if h.l2.lookup(block) == nil {
		h.busy[block] = &inFlight{kind: kind, req: req, waitMem: true}
		h.memFetches++
		h.sys.send(h.node, h.sys.memCtrlOf(h.node), &Msg{Type: MsgMemRead, Block: block, Requester: h.node})
		return
	}
	h.serveFromL2(block, kind, req)
}

// serveFromL2 completes a GetS/GetM with the data present in the bank.
func (h *homectrl) serveFromL2(block uint64, kind MsgType, req int) {
	e := h.entry(block)
	if kind == MsgGetS {
		if e.state == dirI && len(e.sharers) == 0 {
			// MESI: a solo reader receives the block Exclusive and is
			// tracked as its owner; it may silently upgrade to M.
			h.sys.send(h.node, req, &Msg{Type: MsgData, Block: block, Requester: req, Exclusive: true})
			e.state = dirM
			e.owner = req
			h.unblock(block)
			return
		}
		h.sys.send(h.node, req, &Msg{Type: MsgData, Block: block, Requester: req})
		e.state = dirS
		e.sharers[req] = true
		h.unblock(block)
		return
	}
	// GetM: invalidate all other sharers (in node order, for determinism);
	// their acks go to the requester.
	sharers := make([]int, 0, len(e.sharers))
	for s := range e.sharers {
		if s != req {
			sharers = append(sharers, s)
		}
	}
	sort.Ints(sharers)
	acks := len(sharers)
	for _, s := range sharers {
		h.sys.send(h.node, s, &Msg{Type: MsgInv, Block: block, Requester: req})
	}
	h.sys.send(h.node, req, &Msg{Type: MsgData, Block: block, Requester: req, AckCount: acks})
	e.state = dirM
	e.owner = req
	clear(e.sharers)
	h.unblock(block)
}

// unblock finishes a transaction and re-dispatches one queued request.
func (h *homectrl) unblock(block uint64) {
	delete(h.busy, block)
	q := h.blocked[block]
	if len(q) == 0 {
		delete(h.blocked, block)
		return
	}
	next := q[0]
	if len(q) == 1 {
		delete(h.blocked, block)
	} else {
		h.blocked[block] = q[1:]
	}
	h.serve(next)
}

// l2fill inserts data into the bank array, writing back a dirty victim.
func (h *homectrl) l2fill(block uint64, dirty bool) {
	st := stateS
	if dirty {
		st = stateM
	}
	if line := h.l2.peek(block); line != nil {
		if dirty {
			line.state = stateM
		}
		return
	}
	victim, vstate, evicted := h.l2.insert(block, st)
	if evicted && vstate == stateM {
		h.sys.send(h.node, h.sys.memCtrlOf(h.node), &Msg{Type: MsgMemWrite, Block: victim, Requester: h.node})
	}
}
