package memsys

import "fmt"

// Profile parameterises one PARSEC-like workload plus the memory-system
// geometry (Table 1). The ten named profiles substitute for the PARSEC
// 2.0 binaries the paper runs under Simics/GEMS: they are calibrated so
// that router idleness spans the 30-71% band the paper reports, with
// x264 the busiest and blackscholes the idlest (Section 3.1).
type Profile struct {
	Name string

	// Cache geometry (Table 1: 32KB 2-way L1, 256KB 16-way L2 banks,
	// 64-byte blocks).
	L1Sets        uint64
	L1Ways        int
	L2Sets        uint64
	L2Ways        int
	L1Latency     int
	L2Latency     int
	MemLatency    int
	MemBusyCycles int

	StoreBufEntries int

	// Workload shape.
	InstrPerCore         uint64
	MemOpFrac            float64 // memory ops per instruction in the memory phase
	ComputePhaseMemScale float64 // MemOpFrac multiplier during compute phases
	MemPhaseLen          int     // mean cycles per memory-intensive phase
	ComputePhaseLen      int     // mean cycles per compute phase
	PrivateBlocks        int     // per-core private working set (64B blocks)
	SharedBlocks         int     // chip-wide shared working set
	SharedFrac           float64 // fraction of accesses to the shared region
	WriteFrac            float64 // fraction of memory ops that are stores
}

// baseline returns the Table 1 memory-system geometry.
func baseline(name string) Profile {
	return Profile{
		Name:   name,
		L1Sets: 256, L1Ways: 2, // 32KB / 64B / 2-way
		L2Sets: 256, L2Ways: 16, // 256KB bank / 64B / 16-way
		L1Latency:       1,
		L2Latency:       6,
		MemLatency:      128,
		MemBusyCycles:   4,
		StoreBufEntries: 8,
		InstrPerCore:    60_000,
	}
}

// Validate checks profile consistency.
func (p *Profile) Validate() error {
	if p.L1Sets == 0 || p.L2Sets == 0 || p.L1Ways < 1 || p.L2Ways < 1 {
		return fmt.Errorf("memsys: bad cache geometry in profile %q", p.Name)
	}
	if p.MemOpFrac < 0 || p.MemOpFrac > 1 || p.SharedFrac < 0 || p.SharedFrac > 1 || p.WriteFrac < 0 || p.WriteFrac > 1 {
		return fmt.Errorf("memsys: fractions out of range in profile %q", p.Name)
	}
	if p.PrivateBlocks < 1 || p.SharedBlocks < 0 {
		return fmt.Errorf("memsys: working set sizes invalid in profile %q", p.Name)
	}
	if p.InstrPerCore == 0 {
		return fmt.Errorf("memsys: zero instruction quota in profile %q", p.Name)
	}
	if p.L1Latency < 0 || p.L2Latency < 0 || p.MemLatency < 0 || p.MemBusyCycles < 1 {
		return fmt.Errorf("memsys: bad latencies in profile %q", p.Name)
	}
	if p.StoreBufEntries < 1 {
		return fmt.Errorf("memsys: store buffer must hold at least one entry in profile %q", p.Name)
	}
	return nil
}

// shape fills the workload-shape fields of a profile.
func shape(p Profile, memOp float64, priv, shared int, sharedFrac, writeFrac float64, memPhase, computePhase int) Profile {
	p.MemOpFrac = memOp
	p.ComputePhaseMemScale = 0.15
	p.MemPhaseLen = memPhase
	p.ComputePhaseLen = computePhase
	p.PrivateBlocks = priv
	p.SharedBlocks = shared
	p.SharedFrac = sharedFrac
	p.WriteFrac = writeFrac
	return p
}

// Profiles returns the ten PARSEC-named workloads in the paper's order.
// The knobs are calibrated against this repository's cache models so that
// the NoC load (and hence router idleness) spans the paper's reported
// range; see TestProfileCalibration.
func Profiles() []Profile {
	return []Profile{
		// blackscholes: tiny working set, compute-bound -> idlest network
		// (paper: 71.2% router idle).
		shape(baseline("blackscholes"), 0.18, 350, 512, 0.04, 0.25, 400, 2400),
		// bodytrack: moderate, bursty.
		shape(baseline("bodytrack"), 0.25, 900, 2048, 0.10, 0.28, 500, 1500),
		// canneal: large irregular working set, high miss rate.
		shape(baseline("canneal"), 0.42, 6000, 8192, 0.22, 0.42, 1200, 400),
		// dedup: streaming with sharing.
		shape(baseline("dedup"), 0.36, 2500, 4096, 0.18, 0.45, 900, 500),
		// ferret: pipeline-parallel, moderate sharing.
		shape(baseline("ferret"), 0.30, 1800, 3072, 0.16, 0.36, 700, 800),
		// fluidanimate: neighbour sharing, medium load.
		shape(baseline("fluidanimate"), 0.30, 1400, 2560, 0.14, 0.38, 700, 800),
		// raytrace: big read-mostly scene data.
		shape(baseline("raytrace"), 0.24, 2200, 6144, 0.20, 0.12, 700, 1100),
		// swaptions: small hot set, compute-bound.
		shape(baseline("swaptions"), 0.20, 500, 768, 0.06, 0.22, 450, 2000),
		// vips: image pipeline, streaming writes.
		shape(baseline("vips"), 0.36, 2200, 3584, 0.15, 0.48, 900, 450),
		// x264: heavy streaming + sharing -> busiest network
		// (paper: 30.4% router idle).
		shape(baseline("x264"), 0.52, 8000, 10240, 0.26, 0.52, 2000, 150),
	}
}

// ProfileByName finds a profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("memsys: unknown profile %q", name)
}
