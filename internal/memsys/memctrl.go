package memsys

import "fmt"

// memctrl is a memory controller at one of the four mesh corners
// (Table 1). Reads are answered with the fixed DRAM latency after
// queueing behind earlier accesses on the same channel; writes are
// fire-and-forget.
type memctrl struct {
	sys  *System
	node int
	inQ  msgQueue
	// nextFree models the single channel: back-to-back accesses are
	// spaced by BusyCycles.
	nextFree uint64
	reads    uint64
	writes   uint64
}

func newMemCtrl(sys *System, node int) *memctrl {
	return &memctrl{sys: sys, node: node}
}

// deliver enqueues an access.
func (mc *memctrl) deliver(m *Msg) {
	mc.inQ.push(m, mc.sys.now())
}

// tick issues at most one access per cycle.
func (mc *memctrl) tick() {
	now := mc.sys.now()
	if now < mc.nextFree {
		return
	}
	m := mc.inQ.pop(now)
	if m == nil {
		return
	}
	mc.nextFree = now + uint64(mc.sys.prof.MemBusyCycles)
	switch m.Type {
	case MsgMemRead:
		mc.reads++
		// m.Requester is the home bank awaiting the data.
		mc.sys.sendDelayed(mc.node, m.Requester,
			&Msg{Type: MsgMemData, Block: m.Block, Requester: m.Requester},
			uint64(mc.sys.prof.MemLatency))
	case MsgMemWrite:
		mc.writes++
	default:
		panic(fmt.Sprintf("memsys: memctrl %d got unexpected %s", mc.node, m))
	}
}
