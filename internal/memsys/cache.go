package memsys

// cacheLine is one way of a set.
type cacheLine struct {
	valid bool
	tag   uint64
	state lineState
	lru   uint64 // last-touch stamp
}

// lineState is the MESI state of an L1 line (the L2 data array only uses
// valid/invalid).
type lineState uint8

const (
	stateI lineState = iota
	stateS
	stateE
	stateM
)

// String implements fmt.Stringer.
func (s lineState) String() string {
	switch s {
	case stateI:
		return "I"
	case stateS:
		return "S"
	case stateE:
		return "E"
	case stateM:
		return "M"
	default:
		return "?"
	}
}

// cache is a set-associative array with LRU replacement. Addresses are
// block numbers; the offset is already stripped.
type cache struct {
	sets    uint64
	ways    int
	lines   []cacheLine // sets * ways
	stamp   uint64
	hits    uint64
	misses  uint64
	evicted uint64
}

// newCache builds a cache of the given geometry. sets must be a power of
// two.
func newCache(sets uint64, ways int) *cache {
	if sets == 0 || sets&(sets-1) != 0 {
		panic("memsys: cache sets must be a power of two")
	}
	if ways < 1 {
		panic("memsys: cache needs at least one way")
	}
	return &cache{sets: sets, ways: ways, lines: make([]cacheLine, sets*uint64(ways))}
}

func (c *cache) set(block uint64) []cacheLine {
	s := block & (c.sets - 1)
	return c.lines[s*uint64(c.ways) : (s+1)*uint64(c.ways)]
}

// lookup returns the line holding block, or nil. It touches LRU on hit.
func (c *cache) lookup(block uint64) *cacheLine {
	tag := block / c.sets
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stamp++
			set[i].lru = c.stamp
			c.hits++
			return &set[i]
		}
	}
	c.misses++
	return nil
}

// peek is lookup without touching LRU or hit/miss counters.
func (c *cache) peek(block uint64) *cacheLine {
	tag := block / c.sets
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// insert fills block, returning the victim's block number and state if a
// valid line had to be evicted.
func (c *cache) insert(block uint64, st lineState) (victimBlock uint64, victimState lineState, evicted bool) {
	tag := block / c.sets
	set := c.set(block)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			evicted = false
			goto fill
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evicted = true
	victimBlock = set[victim].tag*c.sets + (block & (c.sets - 1))
	victimState = set[victim].state
	c.evicted++
fill:
	c.stamp++
	set[victim] = cacheLine{valid: true, tag: tag, state: st, lru: c.stamp}
	return victimBlock, victimState, evicted
}

// invalidate drops block if present.
func (c *cache) invalidate(block uint64) {
	if l := c.peek(block); l != nil {
		l.valid = false
	}
}

// hitRate returns the fraction of lookups that hit.
func (c *cache) hitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
