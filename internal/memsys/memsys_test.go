package memsys

import (
	"testing"

	"nord/internal/flit"
	"nord/internal/noc"
)

func TestCacheBasics(t *testing.T) {
	c := newCache(4, 2)
	if c.lookup(0) != nil {
		t.Error("empty cache hit")
	}
	c.insert(0, stateS)
	if l := c.lookup(0); l == nil || l.state != stateS {
		t.Error("lookup after insert failed")
	}
	// Fill set 0 beyond capacity: blocks 0, 4, 8 all map to set 0.
	c.insert(4, stateM)
	_, vs, ev := c.insert(8, stateS)
	if !ev {
		t.Fatal("expected an eviction")
	}
	if vs != stateS {
		t.Errorf("LRU victim state = %v, want S (block 0 was oldest)", vs)
	}
	if c.peek(0) != nil {
		t.Error("block 0 should have been evicted")
	}
	if c.peek(4) == nil || c.peek(8) == nil {
		t.Error("blocks 4 and 8 should be resident")
	}
	c.invalidate(4)
	if c.peek(4) != nil {
		t.Error("invalidate failed")
	}
	if c.hitRate() <= 0 {
		t.Error("hit rate should be positive")
	}
}

func TestCacheVictimBlockReconstruction(t *testing.T) {
	c := newCache(8, 1)
	c.insert(3, stateM)
	victim, vs, ev := c.insert(11, stateS) // same set (3 mod 8)
	if !ev || victim != 3 || vs != stateM {
		t.Errorf("victim = %d/%v/%v, want 3/M/true", victim, vs, ev)
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { newCache(3, 2) },
		func() { newCache(0, 2) },
		func() { newCache(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			f()
		}()
	}
}

func TestMsgTypeMappings(t *testing.T) {
	if MsgGetS.Class() != flit.ClassRequest || MsgFwdGetS.Class() != flit.ClassForward || MsgData.Class() != flit.ClassResponse {
		t.Error("class mapping wrong")
	}
	if MsgData.Flits() != 5 || MsgGetS.Flits() != 1 || MsgPutM.Flits() != 5 {
		t.Error("length mapping wrong")
	}
	if MsgGetS.String() != "GetS" || MsgType(99).String() == "" {
		t.Error("names wrong")
	}
}

func TestProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 10 {
		t.Fatalf("expected 10 PARSEC-like profiles, got %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
	if _, err := ProfileByName("x264"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("doom"); err == nil {
		t.Error("unknown profile should fail")
	}
	bad := ps[0]
	bad.MemOpFrac = 2
	if bad.Validate() == nil {
		t.Error("invalid fraction accepted")
	}
}

// newSys builds a memory system over a network of the given design.
func newSys(t *testing.T, design noc.Design, prof Profile, seed int64) *System {
	t.Helper()
	p := noc.DefaultParams(design)
	p.Classes = flit.NumClasses
	net := noc.MustNew(p)
	sys, err := NewSystem(net, prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func shortProfile(name string) Profile {
	p, _ := ProfileByName(name)
	p.InstrPerCore = 4000
	return p
}

func TestSystemRunsToCompletion(t *testing.T) {
	sys := newSys(t, noc.NoPG, shortProfile("bodytrack"), 1)
	exec, err := sys.Run(3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if exec == 0 {
		t.Fatal("zero execution time")
	}
	if sys.InstrDone() != 16*4000 {
		t.Errorf("instructions retired %d, want %d", sys.InstrDone(), 16*4000)
	}
	hr := sys.L1HitRate()
	if hr < 0.2 || hr >= 1.0 {
		t.Errorf("implausible L1 hit rate %.3f", hr)
	}
	reads, _ := sys.MemAccesses()
	if reads == 0 {
		t.Error("no memory reads at all (working set fits L2 suspiciously)")
	}
	if sys.MsgCounts()[MsgGetS] == 0 || sys.MsgCounts()[MsgData] == 0 {
		t.Error("no coherence traffic generated")
	}
}

func TestSystemCoherenceInvariant(t *testing.T) {
	// After completion, for every directory entry in M (owned) there is
	// exactly one L1 holding the block in E or M; for S/I no L1 holds it
	// exclusively (single-writer invariant).
	sys := newSys(t, noc.NoPG, shortProfile("dedup"), 3)
	if _, err := sys.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(200_000); err != nil {
		t.Fatal(err)
	}
	for home, h := range sys.homes {
		for block, e := range h.dir {
			owners := 0
			for _, l1 := range sys.l1s {
				if line := l1.c.peek(block); line != nil && line.state >= stateE {
					owners++
				}
			}
			switch e.state {
			case dirM:
				if owners != 1 {
					// The owner may have the data in its writeback
					// buffer mid-PutM/PutE; allow that.
					if owners == 0 && sys.l1s[e.owner].wbBuf[block] {
						continue
					}
					t.Errorf("home %d block %#x: dir M but %d E/M owners", home, block, owners)
				}
			case dirS, dirI:
				if owners != 0 {
					t.Errorf("home %d block %#x: dir %d but %d E/M owners", home, block, e.state, owners)
				}
			}
		}
	}
}

func TestSystemSharingGeneratesInvalidations(t *testing.T) {
	sys := newSys(t, noc.NoPG, shortProfile("x264"), 5)
	if _, err := sys.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	mc := sys.MsgCounts()
	if mc[MsgInv] == 0 || mc[MsgInvAck] == 0 {
		t.Errorf("shared writes should cause invalidations: %v", mc)
	}
	if mc[MsgFwdGetS] == 0 && mc[MsgFwdGetM] == 0 {
		t.Error("no 3-hop transfers at all")
	}
	if mc[MsgPutM] == 0 {
		t.Error("no writebacks at all")
	}
	if mc[MsgInv] != mc[MsgInvAck] {
		t.Errorf("every Inv must be acked: %d vs %d", mc[MsgInv], mc[MsgInvAck])
	}
}

func TestSystemOnAllDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-design run is slow")
	}
	prof := shortProfile("ferret")
	exec := map[noc.Design]uint64{}
	for _, d := range []noc.Design{noc.NoPG, noc.ConvPG, noc.ConvPGOpt, noc.NoRD} {
		sys := newSys(t, d, prof, 7)
		e, err := sys.Run(6_000_000)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		exec[d] = e
	}
	// Power gating may only slow execution down; No_PG is the lower
	// bound (Figure 12).
	for d, e := range exec {
		if d == noc.NoPG {
			continue
		}
		if e < exec[noc.NoPG] {
			t.Errorf("%v finished faster (%d) than No_PG (%d)", d, e, exec[noc.NoPG])
		}
	}
	// Conv_PG should be the slowest of the gated designs on average; we
	// only assert the weaker, robust property that NoRD beats Conv_PG.
	if exec[noc.NoRD] > exec[noc.ConvPG] {
		t.Errorf("NoRD exec time (%d) should not exceed Conv_PG (%d)", exec[noc.NoRD], exec[noc.ConvPG])
	}
}

func TestNewSystemValidation(t *testing.T) {
	p := noc.DefaultParams(noc.NoPG) // Classes = 1, not enough
	net := noc.MustNew(p)
	if _, err := NewSystem(net, shortProfile("vips"), 1); err == nil {
		t.Error("class mismatch should fail")
	}
	p2 := noc.DefaultParams(noc.NoPG)
	p2.Classes = flit.NumClasses
	net2 := noc.MustNew(p2)
	bad := shortProfile("vips")
	bad.InstrPerCore = 0
	if _, err := NewSystem(net2, bad, 1); err == nil {
		t.Error("invalid profile should fail")
	}
}

func TestMsgQueue(t *testing.T) {
	var q msgQueue
	q.push(&Msg{Type: MsgGetS, Block: 1}, 5)
	q.push(&Msg{Type: MsgGetS, Block: 2}, 3)
	if q.pop(2) != nil {
		t.Error("popped before ready")
	}
	if m := q.pop(3); m == nil || m.Block != 2 {
		t.Error("ready-time ordering broken")
	}
	if m := q.pop(10); m == nil || m.Block != 1 {
		t.Error("second pop broken")
	}
	if q.len() != 0 {
		t.Error("queue not empty")
	}
}
