// Package memsys is the full-system workload substrate standing in for
// the paper's Simics/GEMS stack (Section 5.1): per-node in-order cores
// issuing synthetic address streams, private L1 caches, a shared
// address-interleaved L2 with a blocking MSI directory (a faithful
// simplification of the MOESI traffic shapes: requests, data replies,
// 3-hop forwards, invalidations, acks and writebacks), and memory
// controllers at the four mesh corners. Its purpose is to generate the
// coherence traffic the NoC sees under multithreaded workloads and to
// measure execution time (Figure 12); it is not an ISA simulator.
package memsys

import (
	"fmt"

	"nord/internal/flit"
)

// MsgType enumerates the coherence protocol messages.
type MsgType uint8

const (
	// Requests (class Request, 1 flit except PutM which carries data).
	MsgGetS MsgType = iota // read miss
	MsgGetM                // write miss / upgrade
	MsgPutM                // dirty writeback (data)
	MsgPutE                // clean exclusive eviction notice (no data)
	// Forwards (class Forward, 1 flit).
	MsgFwdGetS // home -> owner: send data to requester, demote to S
	MsgFwdGetM // home -> owner: send data to requester, invalidate
	MsgInv     // home -> sharer: invalidate, ack the requester
	// Responses (class Response; data messages are 5 flits, acks 1).
	MsgData     // data to requester (carries ackCount for GetM)
	MsgDataWB   // demoted owner's data copy back to home
	MsgInvAck   // sharer -> requester invalidation ack
	MsgOwnerAck // old owner -> home: 3-hop transfer complete
	MsgWBAck    // home -> evicting L1: writeback accepted
	// Memory controller traffic (requests/responses between home banks
	// and the corner controllers).
	MsgMemRead  // home -> memctrl (1 flit, class Request)
	MsgMemWrite // home -> memctrl (data, class Request)
	MsgMemData  // memctrl -> home (data, class Response)
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	names := [...]string{
		"GetS", "GetM", "PutM", "PutE",
		"FwdGetS", "FwdGetM", "Inv",
		"Data", "DataWB", "InvAck", "OwnerAck", "WBAck",
		"MemRead", "MemWrite", "MemData",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Class returns the protocol class (virtual network) a message travels on.
func (t MsgType) Class() flit.Class {
	switch t {
	case MsgGetS, MsgGetM, MsgPutM, MsgPutE, MsgMemRead, MsgMemWrite:
		return flit.ClassRequest
	case MsgFwdGetS, MsgFwdGetM, MsgInv:
		return flit.ClassForward
	default:
		return flit.ClassResponse
	}
}

// Flits returns the packet length: data-bearing messages are 5 flits
// (64-byte block + header over 128-bit links), control messages 1 flit
// (the paper's bimodal lengths, Section 5.2).
func (t MsgType) Flits() int {
	switch t {
	case MsgData, MsgDataWB, MsgPutM, MsgMemWrite, MsgMemData:
		return 5
	default:
		return 1
	}
}

// Msg is one coherence message; it rides in flit.Packet.Payload.
type Msg struct {
	Type MsgType
	// Block is the cache-block address (block number, not bytes).
	Block uint64
	// Requester is the L1/node the transaction is for (may differ from
	// the packet source for forwards and 3-hop data).
	Requester int
	// AckCount rides on MsgData for GetM: invalidation acks to expect.
	AckCount int
	// Dirty marks data that must eventually be written back.
	Dirty bool
	// Exclusive marks a GetS data reply granting the E state (no other
	// sharer existed; the requester may silently upgrade to M).
	Exclusive bool
}

// String implements fmt.Stringer.
func (m *Msg) String() string {
	return fmt.Sprintf("%s blk=%#x req=%d acks=%d", m.Type, m.Block, m.Requester, m.AckCount)
}
