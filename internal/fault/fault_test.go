package fault

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Horizon: 10_000, HardFails: 3, StuckOff: 2, DropWakeups: 2, CorruptLinks: 5}
	a, err := Generate(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a.Events) != cfg.Total() {
		t.Fatalf("got %d events, want %d", len(a.Events), cfg.Total())
	}
	c, err := Generate(Config{Seed: 43, Horizon: 10_000, HardFails: 3, StuckOff: 2, DropWakeups: 2, CorruptLinks: 5}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateOrderedAndBounded(t *testing.T) {
	s, err := Generate(Config{Seed: 7, Horizon: 50_000, HardFails: 4, CorruptLinks: 10}, 16)
	if err != nil {
		t.Fatal(err)
	}
	lo := uint64(50_000 / 10)
	for i, e := range s.Events {
		if e.Cycle < lo || e.Cycle >= 50_000 {
			t.Errorf("event %d cycle %d outside [%d, 50000)", i, e.Cycle, lo)
		}
		if i > 0 && s.Events[i-1].Cycle > e.Cycle {
			t.Errorf("events out of order at %d", i)
		}
		if e.Router < 0 || e.Router >= 16 {
			t.Errorf("event %d targets router %d outside the mesh", i, e.Router)
		}
	}
}

func TestGenerateDistinctHardFails(t *testing.T) {
	s, err := Generate(Config{Seed: 1, Horizon: 1000, HardFails: 8}, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, e := range s.Events {
		if e.Kind != HardFail {
			t.Fatalf("unexpected kind %v", e.Kind)
		}
		if seen[e.Router] {
			t.Fatalf("router %d hard-failed twice", e.Router)
		}
		seen[e.Router] = true
	}
}

func TestGenerateExclude(t *testing.T) {
	s, err := Generate(Config{Seed: 3, Horizon: 1000, HardFails: 10, StuckOff: 10, Exclude: []int{0, 1, 2, 3}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Events {
		if e.Router < 4 {
			t.Fatalf("%v targeted an excluded router", e)
		}
	}
	if _, err := Generate(Config{Seed: 3, Horizon: 1000, HardFails: 13, Exclude: []int{0, 1, 2, 3}}, 16); err == nil {
		t.Fatal("hard-fails beyond the eligible set should error")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{HardFails: 1}, 16); err == nil {
		t.Fatal("zero horizon with events should error")
	}
	if _, err := Generate(Config{}, 0); err == nil {
		t.Fatal("zero nodes should error")
	}
	if s, err := Generate(Config{}, 16); err != nil || len(s.Events) != 0 {
		t.Fatalf("empty config should yield an empty schedule, got %v, %v", s, err)
	}
}

func TestFromEventsSortsAndCounts(t *testing.T) {
	s := FromEvents(
		Event{Cycle: 30, Kind: HardFail, Router: 2},
		Event{Cycle: 10, Kind: CorruptLink, Router: 1, Dir: 0},
		Event{Cycle: 20, Kind: StuckOff, Router: 3},
	)
	if s.Events[0].Cycle != 10 || s.Events[2].Cycle != 30 {
		t.Fatalf("events not sorted: %v", s.Events)
	}
	if s.Count(HardFail) != 1 || s.Count(CorruptLink) != 1 || s.Count(DropWakeup) != 0 {
		t.Fatal("bad kind counts")
	}
}

func TestDeadlockErrorFormat(t *testing.T) {
	err := &DeadlockError{
		Design: "No_PG", Cycle: 60_000, StallCycles: 50_000, InFlight: 40,
		Packets: []PacketDump{
			{ID: 7, Src: 1, Dst: 14, Class: "request", Length: 5, AgeCycle: 51_000, Where: "router 5 port W vc 2"},
		},
		FailedRouters: []int{5, 9},
	}
	msg := err.Error()
	for _, want := range []string{"No_PG", "50000 cycles", "40 packets", "pkt#7", "partition", "and 39 more"} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock error missing %q:\n%s", want, msg)
		}
	}
	var de *DeadlockError
	if !errors.As(error(err), &de) {
		t.Fatal("errors.As failed on *DeadlockError")
	}
}

func TestReportAccounting(t *testing.T) {
	var r Report
	r.Injected[CorruptLink] = 5
	r.Triggered[CorruptLink] = 4
	r.Injected[HardFail] = 2
	r.Triggered[HardFail] = 2
	r.PacketsInjected = 100
	r.PacketsDelivered = 100
	if r.InjectedTotal() != 7 || r.TriggeredTotal() != 6 {
		t.Fatal("bad totals")
	}
	if !r.Recovered() {
		t.Fatal("report with no losses should count as recovered")
	}
	if r.DeliveredFraction() != 1.0 {
		t.Fatalf("delivered fraction = %v, want 1", r.DeliveredFraction())
	}
	r.PacketsLost = 1
	r.PacketsDelivered = 99
	if r.Recovered() {
		t.Fatal("lost packet should break Recovered")
	}
	if got := r.DeliveredFraction(); got != 0.99 {
		t.Fatalf("delivered fraction = %v, want 0.99", got)
	}
	if !strings.Contains(r.String(), "lost 1") {
		t.Fatalf("summary missing loss: %s", r.String())
	}
}
