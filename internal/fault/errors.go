package fault

import (
	"fmt"
	"strings"
)

// PacketDump is one in-flight packet's snapshot included in a
// DeadlockError, small enough to log by the thousand.
type PacketDump struct {
	ID       uint64
	Src, Dst int
	Class    string
	Length   int
	AgeCycle uint64 // cycles since injection
	Where    string // location hint: "router 5 port W vc 2", "NI 3 queue", ...
}

// String implements fmt.Stringer.
func (p PacketDump) String() string {
	return fmt.Sprintf("pkt#%d %d->%d %s len=%d age=%d at %s",
		p.ID, p.Src, p.Dst, p.Class, p.Length, p.AgeCycle, p.Where)
}

// MaxDumpPackets bounds the in-flight dump carried by a DeadlockError.
const MaxDumpPackets = 16

// DeadlockError reports that the network made no forward progress for the
// watchdog horizon while packets were in flight: a routing deadlock, or a
// partition left by hard-failed routers under a design without the NoRD
// bypass ring. It carries a bounded dump of the stuck packets so a failed
// sweep cell is diagnosable offline.
type DeadlockError struct {
	// Design is the power-gating design's name.
	Design string
	// Cycle is the cycle the watchdog fired; StallCycles the no-progress
	// horizon that elapsed before it.
	Cycle       uint64
	StallCycles uint64
	// InFlight is the number of undelivered packets; Packets a bounded
	// sample of them (at most MaxDumpPackets).
	InFlight int
	Packets  []PacketDump
	// FailedRouters lists permanently failed routers, when fault injection
	// was active — a non-empty list usually means partition, not protocol
	// deadlock.
	FailedRouters []int
}

// Error implements error.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "noc: deadlock on %s: no progress for %d cycles with %d packets in flight at cycle %d",
		e.Design, e.StallCycles, e.InFlight, e.Cycle)
	if len(e.FailedRouters) > 0 {
		fmt.Fprintf(&b, " (hard-failed routers %v: likely partition)", e.FailedRouters)
	}
	for _, p := range e.Packets {
		fmt.Fprintf(&b, "\n  %s", p)
	}
	if e.InFlight > len(e.Packets) {
		fmt.Fprintf(&b, "\n  ... and %d more", e.InFlight-len(e.Packets))
	}
	return b.String()
}

// ProtocolError reports a flow-control or pipeline invariant violation
// (credit protocol breach, flit delivered to a gated-off router's mesh
// port, ...). These were panics; as structured errors a sweep records the
// failed run and keeps going.
type ProtocolError struct {
	Cycle  uint64
	Router int // -1 when not router-specific
	Msg    string
}

// Error implements error.
func (e *ProtocolError) Error() string {
	if e.Router >= 0 {
		return fmt.Sprintf("noc: protocol violation at router %d, cycle %d: %s", e.Router, e.Cycle, e.Msg)
	}
	return fmt.Sprintf("noc: protocol violation at cycle %d: %s", e.Cycle, e.Msg)
}

// UnrecoverableError reports a fault the recovery machinery gave up on:
// a packet that exhausted its retransmit budget.
type UnrecoverableError struct {
	Cycle    uint64
	PacketID uint64
	Src, Dst int
	Retries  int
}

// Error implements error.
func (e *UnrecoverableError) Error() string {
	return fmt.Sprintf("fault: packet #%d (%d->%d) unrecoverable after %d retransmits at cycle %d",
		e.PacketID, e.Src, e.Dst, e.Retries, e.Cycle)
}
