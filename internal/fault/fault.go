// Package fault provides the deterministic fault-injection subsystem:
// seeded schedules of fault events (transient link corruption, dropped
// wakeup handshakes, routers stuck gated-off, permanent router
// hard-fails), the structured error types the simulation surfaces instead
// of panicking, and the recovery accounting report.
//
// The package is deliberately free of simulator dependencies: the noc
// package consumes schedules and produces reports, so a thousand parallel
// sweeps can share one process and a bad run is a Result with an error
// column, never a crashed worker pool.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
)

// Kind classifies a fault event.
type Kind uint8

const (
	// CorruptLink arms a transient fault on one unidirectional mesh link:
	// the next flit placed on the link has its checksum corrupted. The
	// corruption is detected at the next hop's checksum verification; the
	// packet is poisoned, dropped at its destination NI and recovered by
	// the source's retransmit machinery (end-to-end recovery).
	CorruptLink Kind = iota
	// DropWakeup swallows the router's next off->waking transition (a lost
	// wakeup handshake). The power-gating watchdog re-issues the wakeup
	// after the demand has persisted past its timeout.
	DropWakeup
	// StuckOff blocks every wakeup of the router until the power-gating
	// watchdog forces one through (a stuck PG controller).
	StuckOff
	// HardFail permanently disables the router. The router drains its
	// in-flight traffic, gates off and never wakes again. Under NoRD the
	// node stays connected through the non-gated bypass ring (a hard-failed
	// router behaves exactly like a permanently power-gated one); under the
	// conventional designs the mesh partitions and the run reports a
	// DeadlockError.
	HardFail
	numKinds = 4
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CorruptLink:
		return "corrupt-link"
	case DropWakeup:
		return "drop-wakeup"
	case StuckOff:
		return "stuck-off"
	case HardFail:
		return "hard-fail"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// Cycle is the simulation cycle the fault is injected at.
	Cycle uint64
	// Kind selects the fault model.
	Kind Kind
	// Router is the target router (for CorruptLink, the link's source).
	Router int
	// Dir is the output direction of the corrupted link (0..3, mesh
	// directions only; meaningful for CorruptLink).
	Dir int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e.Kind == CorruptLink {
		return fmt.Sprintf("@%d %v router %d dir %d", e.Cycle, e.Kind, e.Router, e.Dir)
	}
	return fmt.Sprintf("@%d %v router %d", e.Cycle, e.Kind, e.Router)
}

// Config parameterises a generated schedule. The zero value injects
// nothing.
type Config struct {
	// Seed drives the deterministic event placement.
	Seed int64
	// Horizon is the cycle range events are spread over; events land in
	// [Horizon/10, Horizon) so warmup traffic is established first.
	Horizon uint64
	// HardFails is the number of distinct routers to permanently fail.
	HardFails int
	// StuckOff is the number of stuck-gated-off events.
	StuckOff int
	// DropWakeups is the number of dropped wakeup handshakes.
	DropWakeups int
	// CorruptLinks is the number of transient link-corruption events.
	CorruptLinks int
	// Exclude lists router IDs exempt from HardFail/StuckOff (e.g. nodes a
	// workload cannot lose).
	Exclude []int
}

// Total returns the number of events the config requests.
func (c Config) Total() int {
	return c.HardFails + c.StuckOff + c.DropWakeups + c.CorruptLinks
}

// Schedule is a deterministic, cycle-ordered list of fault events.
type Schedule struct {
	Events []Event
	Seed   int64
}

// Generate builds a seeded schedule for a mesh of the given node count.
// The same (config, nodes) pair always yields the same schedule. Hard-fail
// targets are distinct routers; other events may repeat targets.
func Generate(cfg Config, nodes int) (*Schedule, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("fault: schedule needs a positive node count, got %d", nodes)
	}
	if cfg.Horizon == 0 && cfg.Total() > 0 {
		return nil, fmt.Errorf("fault: schedule with %d events needs a positive horizon", cfg.Total())
	}
	excluded := make(map[int]bool, len(cfg.Exclude))
	for _, id := range cfg.Exclude {
		excluded[id] = true
	}
	eligible := make([]int, 0, nodes)
	for id := 0; id < nodes; id++ {
		if !excluded[id] {
			eligible = append(eligible, id)
		}
	}
	if cfg.HardFails > len(eligible) {
		return nil, fmt.Errorf("fault: %d hard-fails requested but only %d eligible routers", cfg.HardFails, len(eligible))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Schedule{Seed: cfg.Seed}
	cycle := func() uint64 {
		lo := cfg.Horizon / 10
		return lo + uint64(rng.Int63n(int64(cfg.Horizon-lo)))
	}
	// Hard-fails pick distinct routers via a partial shuffle.
	perm := rng.Perm(len(eligible))
	for i := 0; i < cfg.HardFails; i++ {
		s.Events = append(s.Events, Event{Cycle: cycle(), Kind: HardFail, Router: eligible[perm[i]]})
	}
	for i := 0; i < cfg.StuckOff; i++ {
		s.Events = append(s.Events, Event{Cycle: cycle(), Kind: StuckOff, Router: eligible[rng.Intn(len(eligible))]})
	}
	for i := 0; i < cfg.DropWakeups; i++ {
		s.Events = append(s.Events, Event{Cycle: cycle(), Kind: DropWakeup, Router: rng.Intn(nodes)})
	}
	for i := 0; i < cfg.CorruptLinks; i++ {
		s.Events = append(s.Events, Event{Cycle: cycle(), Kind: CorruptLink, Router: rng.Intn(nodes), Dir: rng.Intn(4)})
	}
	s.sort()
	return s, nil
}

// FromEvents builds a schedule from an explicit event list (tests,
// targeted experiments). Events are sorted by cycle.
func FromEvents(events ...Event) *Schedule {
	s := &Schedule{Events: append([]Event(nil), events...)}
	s.sort()
	return s
}

// sort orders events by cycle, with a stable tiebreak for determinism.
func (s *Schedule) sort() {
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].Cycle < s.Events[j].Cycle })
}

// Count returns the number of events of the given kind.
func (s *Schedule) Count(k Kind) int {
	n := 0
	for _, e := range s.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Report is the recovery accounting of one faulted run: what was injected,
// what actually triggered (a corruption armed on a link no flit ever used
// again, or a wakeup drop on a router that never tried to wake, is a
// miss), and what the recovery machinery did about it.
type Report struct {
	// Injected counts scheduled events per kind.
	Injected [numKinds]int
	// Triggered counts events that actually bit per kind: a corruption
	// that hit a flit, a wakeup that was really swallowed, a stuck/failed
	// router that actually entered the state.
	Triggered [numKinds]int

	// FlitsCorrupted is the number of flits whose checksum was damaged;
	// PacketsPoisoned the packets detected corrupt (and dropped at their
	// destination NI instead of delivered).
	FlitsCorrupted  uint64
	PacketsPoisoned uint64
	// Retransmits counts end-to-end retransmissions issued by source NIs.
	Retransmits uint64
	// WatchdogWakeups counts wakeups re-issued by the power-gating
	// watchdog after a drop/stuck fault swallowed the original handshake.
	WatchdogWakeups uint64
	// RoutersLost is the number of routers permanently hard-failed.
	RoutersLost int

	// PacketsInjected / PacketsDelivered / PacketsLost account for unique
	// payloads (retransmissions are not double-counted): every injected
	// payload is eventually delivered, lost (retry budget exhausted,
	// reported below) or still in flight when the run ends.
	PacketsInjected  uint64
	PacketsDelivered uint64
	PacketsLost      uint64

	// Unrecoverable holds the first few fault-recovery failures (retry
	// budget exhausted), bounded to keep reports small.
	Unrecoverable []error
}

// InjectedTotal returns the number of scheduled events.
func (r *Report) InjectedTotal() int {
	n := 0
	for _, v := range r.Injected {
		n += v
	}
	return n
}

// TriggeredTotal returns the number of events that actually bit.
func (r *Report) TriggeredTotal() int {
	n := 0
	for _, v := range r.Triggered {
		n += v
	}
	return n
}

// Recovered reports whether every triggered fault was absorbed: all
// poisoned packets were retransmitted and delivered (none lost) and no
// unrecoverable errors were recorded.
func (r *Report) Recovered() bool {
	return r.PacketsLost == 0 && len(r.Unrecoverable) == 0
}

// DeliveredFraction returns delivered/injected unique payloads (1 when
// nothing was injected).
func (r *Report) DeliveredFraction() float64 {
	if r.PacketsInjected == 0 {
		return 1
	}
	return float64(r.PacketsDelivered) / float64(r.PacketsInjected)
}

// String implements fmt.Stringer with a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("fault: injected=%d triggered=%d corrupted=%d poisoned=%d retx=%d watchdog=%d lost-routers=%d pkts=%d/%d (lost %d)",
		r.InjectedTotal(), r.TriggeredTotal(), r.FlitsCorrupted, r.PacketsPoisoned,
		r.Retransmits, r.WatchdogWakeups, r.RoutersLost,
		r.PacketsDelivered, r.PacketsInjected, r.PacketsLost)
}
