package flit

// Pool recycles Packet and Flit objects so the simulator's steady state
// allocates nothing: every ejected packet returns its flits (and, when the
// caller knows no one retains it, the packet itself) to per-network
// free-lists that the next injection draws from.
//
// Objects are reset when handed out, not when returned: tests and traffic
// generators legitimately read delivered packets (Hops, InjectTime, ...)
// after ejection, and the fault-recovery retry queue retains packet
// pointers past delivery. A recycled object's fields therefore stay valid
// until the pool reissues it.
type Pool struct {
	packets []*Packet
	flits   []*Flit
}

// Packet returns a zeroed packet, reusing a recycled one when available.
func (pl *Pool) Packet() *Packet {
	n := len(pl.packets)
	if n == 0 {
		return &Packet{pooled: true}
	}
	p := pl.packets[n-1]
	pl.packets[n-1] = nil
	pl.packets = pl.packets[:n-1]
	*p = Packet{}
	p.pooled = true
	return p
}

// PutPacket returns a packet to the free-list. Packets not issued by a
// pool (tests, retransmit clones) are ignored, never recycled. The caller
// must be sure no other component retains the pointer.
func (pl *Pool) PutPacket(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	pl.packets = append(pl.packets, p)
}

// PutFlit returns a flit to the free-list, dropping its packet reference
// so the packet's lifetime is not extended by the pool. Flits not issued
// by a pool are ignored and left untouched.
func (pl *Pool) PutFlit(f *Flit) {
	if f == nil || !f.pooled {
		return
	}
	f.Packet = nil
	pl.flits = append(pl.flits, f)
}

// getFlit returns a zeroed flit, reusing a recycled one when available.
func (pl *Pool) getFlit() *Flit {
	n := len(pl.flits)
	if n == 0 {
		return &Flit{pooled: true}
	}
	f := pl.flits[n-1]
	pl.flits[n-1] = nil
	pl.flits = pl.flits[:n-1]
	*f = Flit{pooled: true}
	return f
}

// Level evens out the free-lists of a group of pools. The sharded kernel
// gives each spatial domain its own pool; packets created in one shard
// can be ejected (and recycled) in another, so without occasional
// leveling a sink-heavy shard's free-list grows without bound while the
// source-heavy shard allocates fresh objects every cycle. Called at a
// serial point (no pool may be in use concurrently); a no-op for fewer
// than two pools, so the serial kernel's zero-allocation steady state is
// untouched.
func Level(pools []*Pool) {
	if len(pools) < 2 {
		return
	}
	totalP, totalF := 0, 0
	for _, pl := range pools {
		totalP += len(pl.packets)
		totalF += len(pl.flits)
	}
	targetP, targetF := totalP/len(pools), totalF/len(pools)
	dp, df := 0, 0 // donor cursors
	for _, pl := range pools {
		for len(pl.packets) < targetP {
			for len(pools[dp].packets) <= targetP {
				dp++
			}
			don := pools[dp]
			n := len(don.packets)
			pl.packets = append(pl.packets, don.packets[n-1])
			don.packets[n-1] = nil
			don.packets = don.packets[:n-1]
		}
		for len(pl.flits) < targetF {
			for len(pools[df].flits) <= targetF {
				df++
			}
			don := pools[df]
			n := len(don.flits)
			pl.flits = append(pl.flits, don.flits[n-1])
			don.flits[n-1] = nil
			don.flits = don.flits[:n-1]
		}
	}
}

// AppendFlits serialises p into dst exactly as Flits does, drawing the
// flit objects from the pool. dst is typically a persistent per-NI buffer
// passed as buf[:0].
func (pl *Pool) AppendFlits(dst []*Flit, p *Packet) []*Flit {
	if p.Length <= 0 {
		p.Length = 1
	}
	for i := 0; i < p.Length; i++ {
		k := Body
		switch {
		case p.Length == 1:
			k = HeadTail
		case i == 0:
			k = Head
		case i == p.Length-1:
			k = Tail
		}
		f := pl.getFlit()
		f.Packet = p
		f.Kind = k
		f.Seq = i
		f.Checksum = f.ComputeChecksum()
		dst = append(dst, f)
	}
	return dst
}
