package flit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Head:     "head",
		Body:     "body",
		Tail:     "tail",
		HeadTail: "head+tail",
		Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !Head.IsHead() || Head.IsTail() {
		t.Errorf("Head: IsHead=%v IsTail=%v", Head.IsHead(), Head.IsTail())
	}
	if Body.IsHead() || Body.IsTail() {
		t.Errorf("Body: IsHead=%v IsTail=%v", Body.IsHead(), Body.IsTail())
	}
	if Tail.IsHead() || !Tail.IsTail() {
		t.Errorf("Tail: IsHead=%v IsTail=%v", Tail.IsHead(), Tail.IsTail())
	}
	if !HeadTail.IsHead() || !HeadTail.IsTail() {
		t.Errorf("HeadTail: IsHead=%v IsTail=%v", HeadTail.IsHead(), HeadTail.IsTail())
	}
}

func TestClassString(t *testing.T) {
	if ClassRequest.String() != "request" || ClassResponse.String() != "response" {
		t.Errorf("unexpected class names %q, %q", ClassRequest, ClassResponse)
	}
	if Class(7).String() != "class(7)" {
		t.Errorf("unexpected unknown class name %q", Class(7))
	}
}

func TestFlitsSingle(t *testing.T) {
	p := &Packet{ID: 1, Src: 0, Dst: 3, Length: 1}
	fs := Flits(p)
	if len(fs) != 1 {
		t.Fatalf("got %d flits, want 1", len(fs))
	}
	if fs[0].Kind != HeadTail {
		t.Errorf("single-flit packet kind = %v, want HeadTail", fs[0].Kind)
	}
	if fs[0].Packet != p {
		t.Errorf("flit does not reference its packet")
	}
}

func TestFlitsMulti(t *testing.T) {
	p := &Packet{ID: 2, Length: 5}
	fs := Flits(p)
	if len(fs) != 5 {
		t.Fatalf("got %d flits, want 5", len(fs))
	}
	if fs[0].Kind != Head {
		t.Errorf("first flit kind = %v, want Head", fs[0].Kind)
	}
	for i := 1; i < 4; i++ {
		if fs[i].Kind != Body {
			t.Errorf("flit %d kind = %v, want Body", i, fs[i].Kind)
		}
	}
	if fs[4].Kind != Tail {
		t.Errorf("last flit kind = %v, want Tail", fs[4].Kind)
	}
	for i, f := range fs {
		if f.Seq != i {
			t.Errorf("flit %d has Seq %d", i, f.Seq)
		}
	}
}

func TestFlitsZeroLengthNormalised(t *testing.T) {
	p := &Packet{Length: 0}
	fs := Flits(p)
	if len(fs) != 1 || p.Length != 1 {
		t.Errorf("zero length: got %d flits, packet length %d; want 1 flit, length 1", len(fs), p.Length)
	}
}

// Property: for any length, Flits yields exactly one head, one tail, the
// rest body, in order, all referencing the packet.
func TestFlitsProperty(t *testing.T) {
	f := func(n uint8) bool {
		length := int(n%16) + 1
		p := &Packet{Length: length}
		fs := Flits(p)
		if len(fs) != length {
			return false
		}
		heads, tails := 0, 0
		for i, fl := range fs {
			if fl.Packet != p || fl.Seq != i {
				return false
			}
			if fl.Kind.IsHead() {
				heads++
				if i != 0 {
					return false
				}
			}
			if fl.Kind.IsTail() {
				tails++
				if i != length-1 {
					return false
				}
			}
		}
		return heads == 1 && tails == 1
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	p := &Packet{ID: 7, Src: 1, Dst: 2, Class: ClassResponse, Length: 5}
	if p.String() == "" {
		t.Error("empty packet string")
	}
	f := &Flit{Packet: p, Kind: Head, Seq: 0, VC: 3}
	if f.String() == "" {
		t.Error("empty flit string")
	}
}
