// Package flit defines the message units transported by the on-chip
// network: packets and the flow-control digits (flits) they are broken
// into, together with the virtual-channel classes used by the routing
// algorithms (adaptive vs escape resources, per Duato's protocol) and the
// protocol classes used by the coherence substrate (request vs response).
package flit

import (
	"fmt"
	"sync/atomic"
)

// Kind distinguishes the position of a flit inside its packet. Single-flit
// packets carry a HeadTail flit that is simultaneously head and tail.
type Kind uint8

const (
	// Head is the first flit of a multi-flit packet. It carries routing
	// information and triggers route computation and VC allocation.
	Head Kind = iota
	// Body is an intermediate flit of a multi-flit packet.
	Body
	// Tail is the final flit of a multi-flit packet; it deallocates the
	// virtual channel it travelled on.
	Tail
	// HeadTail marks a single-flit packet (head and tail at once).
	HeadTail
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeadTail:
		return "head+tail"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsHead reports whether the flit leads a packet (Head or HeadTail).
func (k Kind) IsHead() bool { return k == Head || k == HeadTail }

// IsTail reports whether the flit ends a packet (Tail or HeadTail).
func (k Kind) IsTail() bool { return k == Tail || k == HeadTail }

// Class is the protocol class of a packet. Wormhole networks supporting
// coherence protocols separate message classes onto disjoint virtual
// channel sets to avoid protocol-level (request-reply) deadlock. The paper
// configures "4 VCs per protocol class" (Table 1).
type Class uint8

const (
	// ClassRequest carries coherence requests (GetS/GetM/Upgrade) and
	// other control messages that may generate responses.
	ClassRequest Class = iota
	// ClassResponse carries data replies, acks and writebacks, which are
	// always sunk and never generate further network messages.
	ClassResponse
	// ClassForward carries directory-initiated forwards and invalidations
	// (FwdGetS/FwdGetM/Inv). Consuming a forward may generate responses
	// but never requests or forwards, so the ordering request < forward <
	// response keeps the protocol deadlock-free.
	ClassForward
	// NumClasses is the number of protocol classes modelled.
	NumClasses = 3
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassResponse:
		return "response"
	case ClassForward:
		return "forward"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Packet is a message injected by a node. A packet is serialised into
// len==Length flits at injection time.
type Packet struct {
	// ID uniquely identifies the packet within a simulation run.
	ID uint64
	// Src and Dst are node identifiers (router indices).
	Src, Dst int
	// Class is the protocol class, selecting the VC set used.
	Class Class
	// Length is the number of flits (the paper uses 1 for short packets
	// and 5 for long/data packets).
	Length int
	// InjectTime is the cycle the packet was created by the source node;
	// EnqueueTime is the cycle its head flit entered the network (left
	// the NI injection queue). Latency statistics use InjectTime so that
	// source queueing is included, as is standard.
	InjectTime  uint64
	EnqueueTime uint64
	// Misroutes counts non-minimal hops taken on adaptive resources
	// (NoRD caps this before forcing the packet onto escape resources).
	Misroutes int
	// Escaped records that the packet has been forced onto escape
	// resources; once escaped it must stay there until delivery.
	Escaped bool
	// EscapeVC is the escape virtual channel (within the escape set) the
	// packet currently uses. NoRD's ring escape switches from VC 0 to
	// VC 1 when crossing the dateline to break the ring's cyclic channel
	// dependence.
	EscapeVC int
	// Payload optionally carries a protocol-level message (e.g. a
	// coherence transaction from the memory-system substrate). The
	// network never inspects it.
	Payload any
	// Hops is incremented once per router traversed (normal pipeline or
	// bypass), for hop-count statistics.
	Hops int
	// Retries counts end-to-end retransmissions of this payload: 0 for an
	// original transmission, k for the k-th retransmit clone issued by the
	// fault-recovery machinery.
	Retries int
	// poisoned marks that a flit of this packet failed its checksum
	// verification. A poisoned packet keeps traversing the network so
	// flow-control state stays consistent, but is dropped at its
	// destination NI instead of delivered; the source retransmits.
	// Accessed through Poison/IsPoisoned: under the sharded kernel two
	// corrupted flits of the same packet can be verified in the same
	// cycle by different shard workers, so the flag is atomic (every
	// writer stores the same value, and the delivery-gating read is
	// never concurrent with a write because the tail flit — the only
	// flit whose verification a delivery can race with — is verified on
	// the delivering call chain itself).
	poisoned uint32

	// pooled marks packets issued by a Pool; only those may be recycled,
	// so externally constructed packets (tests, retransmit clones) are
	// never mutated behind their owner's back.
	pooled bool
}

// Poison marks the packet corrupt, reporting whether this call made the
// transition. Safe to call from concurrent shard workers verifying
// different flits of the same packet; exactly one caller observes true,
// so the poisoning is counted once.
func (p *Packet) Poison() bool { return atomic.CompareAndSwapUint32(&p.poisoned, 0, 1) }

// IsPoisoned reports whether any flit of the packet failed checksum
// verification.
func (p *Packet) IsPoisoned() bool { return atomic.LoadUint32(&p.poisoned) != 0 }

// String implements fmt.Stringer.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %d->%d %s len=%d", p.ID, p.Src, p.Dst, p.Class, p.Length)
}

// Flit is one flow-control digit of a packet. All flits of a packet share
// the *Packet pointer; only the head flit's fields are consulted for
// routing.
type Flit struct {
	Packet *Packet
	Kind   Kind
	// Seq is the flit's index within its packet (0-based).
	Seq int
	// VC is the virtual channel the flit currently occupies/was allocated
	// at the downstream input port. It is rewritten hop by hop.
	VC int
	// Checksum protects the flit's stable identity (packet ID, endpoints,
	// sequence) against transient link faults. It is set at serialisation
	// and verified at every hop; a mismatch poisons the packet for
	// end-to-end retransmission. The VC field is excluded: it is legally
	// rewritten hop by hop.
	Checksum uint32

	// pooled marks flits issued by a Pool; only those may be recycled.
	pooled bool
}

// Checksum computes the flit's reference checksum (FNV-1a over the
// packet ID, endpoints and flit sequence).
func (f *Flit) ComputeChecksum() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= uint32(v & 0xff)
			h *= prime32
			v >>= 8
		}
	}
	mix(f.Packet.ID)
	mix(uint64(uint32(f.Packet.Src))<<32 | uint64(uint32(f.Packet.Dst)))
	mix(uint64(f.Seq)<<8 | uint64(f.Kind))
	return h
}

// ChecksumOK reports whether the stored checksum matches the flit's
// contents.
func (f *Flit) ChecksumOK() bool { return f.Checksum == f.ComputeChecksum() }

// Corrupt damages the stored checksum, modelling a transient link fault.
func (f *Flit) Corrupt() { f.Checksum ^= 0xdeadbeef }

// String implements fmt.Stringer.
func (f *Flit) String() string {
	return fmt.Sprintf("%s[%d] of %s on vc%d", f.Kind, f.Seq, f.Packet, f.VC)
}

// Flits serialises a packet into its flit sequence.
func Flits(p *Packet) []*Flit {
	if p.Length <= 0 {
		p.Length = 1
	}
	out := make([]*Flit, p.Length)
	for i := 0; i < p.Length; i++ {
		k := Body
		switch {
		case p.Length == 1:
			k = HeadTail
		case i == 0:
			k = Head
		case i == p.Length-1:
			k = Tail
		}
		out[i] = &Flit{Packet: p, Kind: k, Seq: i}
		out[i].Checksum = out[i].ComputeChecksum()
	}
	return out
}

// Retransmit builds the next end-to-end retransmission of a poisoned
// packet: same endpoints, class and length under a fresh identity (the
// caller supplies the new unique ID), with the retry count advanced.
func Retransmit(p *Packet, id uint64) *Packet {
	return &Packet{
		ID:      id,
		Src:     p.Src,
		Dst:     p.Dst,
		Class:   p.Class,
		Length:  p.Length,
		Payload: p.Payload,
		Retries: p.Retries + 1,
	}
}
