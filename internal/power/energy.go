package power

// Counts aggregates the raw event counts a simulation produces; the model
// converts them into energy. All counts are totals across the whole NoC
// over the measured interval.
type Counts struct {
	// Cycles is the length of the measured interval.
	Cycles uint64
	// Routers and Links are the population sizes (links counted as
	// unidirectional channels).
	Routers, Links int

	// RouterOnCycles is the sum over routers of cycles spent powered on
	// (including waking cycles, which still burn full static power).
	RouterOnCycles uint64
	// RouterOffCycles is the sum over routers of cycles spent gated off.
	RouterOffCycles uint64

	// Wakeups is the number of off->on transitions (each carrying the
	// sleep-signal distribution + wakeup energy overhead).
	Wakeups uint64

	// Dynamic event counts.
	BufWrites, BufReads uint64
	XbarTraversals      uint64
	VAArbs, SAArbs      uint64
	ClockedFlitHops     uint64
	LinkTraversals      uint64
	BypassHops          uint64 // flits forwarded through a gated-off NI bypass
	BypassInjections    uint64 // local flits injected via the bypass outport
	BypassEjections     uint64 // flits sunk at the local node via the bypass latch
	LocalFlits          uint64 // flits crossing a concentrated router's NI-local path

	// LinkLengthFactor scales link energy (static and dynamic) for
	// topologies whose channels span more than one mesh tile pitch (2.0
	// for the folded torus and the concentrated mesh). The zero value is
	// treated as 1.0, the plain-mesh pitch.
	LinkLengthFactor float64

	// HasPGController / HasBypass select which always-on adders apply.
	HasPGController bool
	HasBypass       bool
}

// linkLength returns the effective link-length scale (zero value = 1.0).
func (c Counts) linkLength() float64 {
	if c.LinkLengthFactor == 0 {
		return 1.0
	}
	return c.LinkLengthFactor
}

// Breakdown is the NoC energy decomposition in joules, mirroring the bands
// of Figure 10 (router static, router dynamic, link static, link dynamic,
// power-gating overhead).
type Breakdown struct {
	RouterStatic  float64
	RouterDynamic float64
	LinkStatic    float64
	LinkDynamic   float64
	PGOverhead    float64
}

// Total returns the summed NoC energy.
func (b Breakdown) Total() float64 {
	return b.RouterStatic + b.RouterDynamic + b.LinkStatic + b.LinkDynamic + b.PGOverhead
}

// Energy converts event counts into the NoC energy breakdown.
func (m *Model) Energy(c Counts) Breakdown {
	cyc := m.CycleSeconds()
	var b Breakdown

	// Router static: full static while on (or waking); while gated off
	// only the non-gated controller (and NoRD's bypass datapath) leak.
	b.RouterStatic = float64(c.RouterOnCycles) * m.RouterStaticW() * cyc
	if c.HasPGController {
		b.RouterStatic += float64(c.RouterOffCycles) * m.ControllerStaticW() * cyc
	}
	if c.HasBypass {
		// The bypass datapath is never power-gated: it leaks for the
		// whole interval on every router.
		b.RouterStatic += float64(c.Cycles) * float64(c.Routers) * m.BypassStaticW() * cyc
	}

	// Router dynamic. Local-path flits of a concentrated router are
	// charged like bypass hops: a latch-to-latch hop that skips the full
	// buffered pipeline.
	b.RouterDynamic = float64(c.BufWrites)*m.EBufferWrite() +
		float64(c.BufReads)*m.EBufferRead() +
		float64(c.XbarTraversals)*m.EXbar() +
		float64(c.VAArbs)*m.EVAArb() +
		float64(c.SAArbs)*m.ESAArb() +
		float64(c.ClockedFlitHops)*m.EClockDyn() +
		float64(c.BypassHops+c.BypassInjections+c.BypassEjections+c.LocalFlits)*m.EBypassHop()

	// Links: wire capacitance and leakage scale with the physical span,
	// so longer channels (folded torus, concentrated mesh) cost
	// proportionally more per traversal and per idle cycle.
	ll := c.linkLength()
	b.LinkStatic = float64(c.Cycles) * float64(c.Links) * m.LinkStaticW() * cyc * ll
	b.LinkDynamic = float64(c.LinkTraversals) * m.ELink() * ll

	// Power-gating overhead.
	b.PGOverhead = float64(c.Wakeups) * m.WakeupEnergy()
	return b
}

// AvgPowerW converts a breakdown over the counted interval into average
// NoC power in watts.
func (m *Model) AvgPowerW(c Counts, b Breakdown) float64 {
	t := float64(c.Cycles) * m.CycleSeconds()
	if t == 0 {
		return 0
	}
	return b.Total() / t
}
