// Package power provides an Orion-2.0-like analytical power and area model
// for on-chip routers, links and the NoRD additions (NI bypass datapath).
// It is calibrated so that, under the paper's PARSEC-average load, the
// static/dynamic decomposition matches Figure 1:
//
//   - router static share of total router power: 17.9% at 65nm/1.2V,
//     35.4% at 45nm/1.1V, 47.7% at 32nm/1.0V (Figure 1a);
//   - at 45nm/1.0V the total router power decomposes as dynamic 62%,
//     buffer static 21%, VA static 7%, crossbar static 5%, clock static 4%,
//     SA static 2% (Figure 1b);
//
// and the power-gating breakeven time (BET) is Config-controlled, defaulting
// to the ~10 cycles reported for routers under current technology
// parameters (Section 2.2).
package power

import "fmt"

// Tech identifies a manufacturing technology point. The paper sweeps
// {65, 45, 32} nm and {1.2, 1.1, 1.0} V at 3 GHz.
type Tech struct {
	NodeNM  int     // feature size in nanometres: 65, 45 or 32
	Voltage float64 // supply voltage in volts
	FreqGHz float64 // clock frequency in GHz
}

// DefaultTech is the paper's primary evaluation point: an industrial 45nm
// process at 1.1V and 3GHz (Section 5.1).
func DefaultTech() Tech { return Tech{NodeNM: 45, Voltage: 1.1, FreqGHz: 3.0} }

// Reference calibration at 45nm / 1.0V / 3GHz under the PARSEC-average
// load implied by the paper's router-busy fractions (0.30 flits/node/cycle,
// ~2.67 average hops on a 4x4 mesh): the total router power is normalised
// to 1 W and split per Figure 1(b). The Figure 14 power curve constrains
// this point: saturation power is only ~2.75x the zero-load static floor,
// so the Figure 1(b) decomposition (dynamic 62%) must hold at a load a
// substantial fraction of saturation.
const (
	refRouterTotalW = 1.0
	// Static fractions of total router power at the reference point.
	refBufferStatic = 0.21
	refVAStatic     = 0.07
	refSAStatic     = 0.02
	refXbarStatic   = 0.05
	refClockStatic  = 0.04
	refDynamic      = 1.0 - refBufferStatic - refVAStatic - refSAStatic - refXbarStatic - refClockStatic // 0.61
	// Reference traffic used for dynamic-energy calibration.
	refLoadFlitsPerNodeCycle = 0.30
	refAvgHops               = 8.0 / 3.0
)

// Per-node scaling factors, solved so the static share hits the Figure 1(a)
// anchors exactly (see package comment). leak scales static power (beyond
// the linear voltage dependence); dyn scales switched capacitance.
var nodeFactors = map[int]struct{ leak, dyn float64 }{
	65: {leak: 0.5320, dyn: 1.3},
	45: {leak: 0.9428, dyn: 1.0},
	32: {leak: 1.1412, dyn: 0.8},
}

// StaticBreakdown is the per-component router static power in watts.
type StaticBreakdown struct {
	Buffer, VA, SA, Xbar, Clock float64
}

// Total returns the summed router static power.
func (s StaticBreakdown) Total() float64 {
	return s.Buffer + s.VA + s.SA + s.Xbar + s.Clock
}

// Model evaluates power and area at a technology point.
type Model struct {
	tech Tech
	// BreakevenCycles is the power-gating breakeven time in cycles
	// (Section 2.2; ~10 for routers). The wakeup energy overhead is
	// derived from it so that gating for exactly BreakevenCycles idle
	// cycles is energy-neutral.
	BreakevenCycles float64
	// ControllerFraction is the static power of the small non-power-gated
	// monitoring controller every PG design keeps on, as a fraction of
	// router static power (Section 3.1).
	ControllerFraction float64
	// BypassFraction is the extra always-on static power of NoRD's NI
	// bypass datapath (latch, mux/demux, forwarding control), lumped into
	// router static power for fair comparison (Section 5.1).
	BypassFraction float64

	leak, dyn float64 // resolved node factors
}

// New returns a model for the given technology point.
func New(t Tech) (*Model, error) {
	f, ok := nodeFactors[t.NodeNM]
	if !ok {
		return nil, fmt.Errorf("power: unsupported technology node %dnm (supported: 65, 45, 32)", t.NodeNM)
	}
	if t.Voltage <= 0 || t.FreqGHz <= 0 {
		return nil, fmt.Errorf("power: voltage and frequency must be positive, got %gV %gGHz", t.Voltage, t.FreqGHz)
	}
	return &Model{
		tech:               t,
		BreakevenCycles:    10,
		ControllerFraction: 0.03,
		BypassFraction:     0.02,
		leak:               f.leak,
		dyn:                f.dyn,
	}, nil
}

// MustNew is New that panics on error, for use with validated configuration.
func MustNew(t Tech) *Model {
	m, err := New(t)
	if err != nil {
		panic(err)
	}
	return m
}

// Tech returns the model's technology point.
func (m *Model) Tech() Tech { return m.tech }

// CycleSeconds returns the duration of one clock cycle.
func (m *Model) CycleSeconds() float64 { return 1e-9 / m.tech.FreqGHz }

// staticScale converts a reference static power into this technology
// point: leakage current scales with the node factor and (approximately
// linearly) with supply voltage.
func (m *Model) staticScale() float64 { return m.leak * m.tech.Voltage / 1.0 }

// dynScale converts a reference dynamic power/energy into this technology
// point: switched energy scales with capacitance (node factor) and V^2.
func (m *Model) dynScale() float64 { return m.dyn * m.tech.Voltage * m.tech.Voltage }

// RouterStatic returns the per-router static power decomposition in watts.
func (m *Model) RouterStatic() StaticBreakdown {
	s := m.staticScale()
	return StaticBreakdown{
		Buffer: refBufferStatic * refRouterTotalW * s,
		VA:     refVAStatic * refRouterTotalW * s,
		SA:     refSAStatic * refRouterTotalW * s,
		Xbar:   refXbarStatic * refRouterTotalW * s,
		Clock:  refClockStatic * refRouterTotalW * s,
	}
}

// RouterStaticW returns the total per-router static power in watts.
func (m *Model) RouterStaticW() float64 { return m.RouterStatic().Total() }

// ControllerStaticW is the always-on PG controller static power.
func (m *Model) ControllerStaticW() float64 {
	return m.RouterStaticW() * m.ControllerFraction
}

// BypassStaticW is the always-on NoRD NI-bypass static power.
func (m *Model) BypassStaticW() float64 {
	return m.RouterStaticW() * m.BypassFraction
}

// LinkStaticW returns the static power of one unidirectional mesh link
// (driver + repeaters for a 128-bit channel).
func (m *Model) LinkStaticW() float64 {
	// Calibrated so that the 48 unidirectional links of a 4x4 mesh add
	// roughly 25% of aggregate router static power, matching the modest
	// link-static band of Figure 10.
	const refLinkStatic = refRouterTotalW * (refBufferStatic + refVAStatic + refSAStatic + refXbarStatic + refClockStatic) * 0.25 * 16.0 / 48.0
	return refLinkStatic * m.staticScale()
}

// routerDynPerFlitHop is the reference energy of one flit traversing one
// powered-on router (buffer write + read, crossbar, arbitration shares).
func routerDynPerFlitHop(freqGHz float64) float64 {
	flow := refLoadFlitsPerNodeCycle * refAvgHops // flit-hops per router per cycle
	return refDynamic * refRouterTotalW / (flow * freqGHz * 1e9)
}

// Per-event dynamic energies (joules). The split of the per-hop bundle is
// buffer write 35%, buffer read 18%, crossbar 29%, VA 6%, SA 6%,
// clocking 6%.
const (
	fracBufWrite = 0.35
	fracBufRead  = 0.18
	fracXbar     = 0.29
	fracVA       = 0.06
	fracSA       = 0.06
	fracClockDyn = 0.06
)

// EBufferWrite returns the energy of writing one flit into an input buffer.
func (m *Model) EBufferWrite() float64 {
	return routerDynPerFlitHop(m.tech.FreqGHz) * fracBufWrite * m.dynScale()
}

// EBufferRead returns the energy of reading one flit from an input buffer.
func (m *Model) EBufferRead() float64 {
	return routerDynPerFlitHop(m.tech.FreqGHz) * fracBufRead * m.dynScale()
}

// EXbar returns the energy of one flit crossing the crossbar.
func (m *Model) EXbar() float64 {
	return routerDynPerFlitHop(m.tech.FreqGHz) * fracXbar * m.dynScale()
}

// EVAArb returns the energy of one VC-allocation arbitration.
func (m *Model) EVAArb() float64 {
	return routerDynPerFlitHop(m.tech.FreqGHz) * fracVA * m.dynScale()
}

// ESAArb returns the energy of one switch-allocation arbitration.
func (m *Model) ESAArb() float64 {
	return routerDynPerFlitHop(m.tech.FreqGHz) * fracSA * m.dynScale()
}

// EClockDyn returns the per-flit-hop clocking dynamic energy.
func (m *Model) EClockDyn() float64 {
	return routerDynPerFlitHop(m.tech.FreqGHz) * fracClockDyn * m.dynScale()
}

// ERouterHop returns the full per-flit router-traversal energy bundle.
func (m *Model) ERouterHop() float64 {
	return routerDynPerFlitHop(m.tech.FreqGHz) * m.dynScale()
}

// ELink returns the energy of one flit traversing one link.
func (m *Model) ELink() float64 {
	return 0.25 * m.ERouterHop()
}

// EBypassHop returns the energy of one flit being forwarded through a
// gated-off router's NI bypass (latch write, VC check, re-injection).
// The bypass datapath is a latch and two multiplexers instead of the full
// buffer-write/read, allocation and crossbar pipeline, modelled as 15% of
// a normal router hop.
func (m *Model) EBypassHop() float64 {
	return 0.15 * m.ERouterHop()
}

// WakeupEnergy returns the energy overhead of one power-gating cycle
// (sleep-signal distribution + wakeup, Figure 2b), defined so that the
// breakeven time is exactly BreakevenCycles: a router must stay off for
// BET cycles to save this much static energy.
func (m *Model) WakeupEnergy() float64 {
	return m.BreakevenCycles * m.RouterStaticW() * m.CycleSeconds()
}

// StaticShareAtReferenceLoad returns the fraction of total router power
// that is static at this technology point under the reference
// PARSEC-average load (Figure 1a).
func (m *Model) StaticShareAtReferenceLoad() float64 {
	static := m.RouterStaticW()
	flow := refLoadFlitsPerNodeCycle * refAvgHops
	dynamic := m.ERouterHop() * flow * m.tech.FreqGHz * 1e9
	return static / (static + dynamic)
}

// BreakdownAtReferenceLoad returns the Figure 1(b)-style decomposition of
// total router power at this point: per-component static fractions plus
// the dynamic fraction, all relative to total router power.
func (m *Model) BreakdownAtReferenceLoad() (frac map[string]float64) {
	s := m.RouterStatic()
	flow := refLoadFlitsPerNodeCycle * refAvgHops
	dynamic := m.ERouterHop() * flow * m.tech.FreqGHz * 1e9
	total := s.Total() + dynamic
	return map[string]float64{
		"buffer_static": s.Buffer / total,
		"va_static":     s.VA / total,
		"sa_static":     s.SA / total,
		"xbar_static":   s.Xbar / total,
		"clock_static":  s.Clock / total,
		"dynamic":       dynamic / total,
	}
}
