package power

// Area model (Section 6.8). Only relative areas matter for the paper's
// claims: a well-designed power-gating block costs 4-10% of the gated
// block; Conv_PG_OPT adds small early-wakeup monitoring; NoRD adds the
// bypass datapath (NI latch, mux/demux, forwarding control) for ~3.1%
// over Conv_PG_OPT.

// AreaBreakdown is the per-router area decomposition in mm^2.
type AreaBreakdown struct {
	Buffers    float64
	Crossbar   float64
	Allocators float64
	Other      float64 // pipeline latches, control, local wiring
	PGSwitch   float64 // sleep transistors + sleep-signal distribution
	EarlyWU    float64 // early-wakeup generation/monitoring (Conv_PG_OPT)
	Bypass     float64 // NoRD bypass datapath in router + NI
}

// Total returns the summed router area.
func (a AreaBreakdown) Total() float64 {
	return a.Buffers + a.Crossbar + a.Allocators + a.Other + a.PGSwitch + a.EarlyWU + a.Bypass
}

// Reference router area at 45nm for a 5-port, 128-bit, 4-VC, 5-flit-deep
// wormhole router (Orion-2.0-like magnitude).
const refRouterAreaMM2 = 0.38

// Design identifies the four compared designs for area purposes.
type Design int

const (
	DesignNoPG Design = iota
	DesignConvPG
	DesignConvPGOpt
	DesignNoRD
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case DesignNoPG:
		return "No_PG"
	case DesignConvPG:
		return "Conv_PG"
	case DesignConvPGOpt:
		return "Conv_PG_OPT"
	case DesignNoRD:
		return "NoRD"
	default:
		return "unknown"
	}
}

// RouterArea returns the per-router area for a design at this technology
// point. Area scales quadratically with feature size relative to 45nm.
func (m *Model) RouterArea(d Design) AreaBreakdown {
	scale := float64(m.tech.NodeNM) / 45.0
	base := refRouterAreaMM2 * scale * scale
	a := AreaBreakdown{
		Buffers:    0.40 * base,
		Crossbar:   0.30 * base,
		Allocators: 0.10 * base,
		Other:      0.20 * base,
	}
	switch d {
	case DesignNoPG:
	case DesignConvPG:
		a.PGSwitch = 0.060 * base
	case DesignConvPGOpt:
		a.PGSwitch = 0.060 * base
		a.EarlyWU = 0.006 * base
	case DesignNoRD:
		a.PGSwitch = 0.060 * base
		a.EarlyWU = 0.006 * base
		// Bypass datapath: NI latch + demultiplexer before the ejection
		// queue, multiplexer after the injection queue, the two router
		// datapaths and control; 3.1% of the Conv_PG_OPT router.
		a.Bypass = 0.031 * base * (1 + 0.060 + 0.006)
	}
	return a
}

// RouterAreaFor returns the per-router area for a non-reference
// microarchitecture: buffer area scales linearly with the total
// buffering per port (VCs x depth, reference 4 VCs x 5 flits), and
// allocator area with the number of VCs arbitrated per port; the
// crossbar, pipeline latches and control are port-bound and keep their
// reference size. The power-gating switch is resized proportionally to
// the gated block it powers, and the early-wakeup and bypass adders keep
// their fixed proportions. Non-positive arguments select the reference
// values, so RouterAreaFor(d, 0, 0) == RouterArea(d).
func (m *Model) RouterAreaFor(d Design, vcsPerPort, bufferDepth int) AreaBreakdown {
	a := m.RouterArea(d)
	refGated := a.Buffers + a.Crossbar + a.Allocators + a.Other
	vcs, depth := 4.0, 5.0
	if vcsPerPort > 0 {
		vcs = float64(vcsPerPort)
	}
	if bufferDepth > 0 {
		depth = float64(bufferDepth)
	}
	a.Buffers *= vcs * depth / (4 * 5)
	a.Allocators *= vcs / 4
	gated := a.Buffers + a.Crossbar + a.Allocators + a.Other
	a.PGSwitch *= gated / refGated
	return a
}

// AreaOverheadVsConvPGOpt returns NoRD's fractional router area overhead
// relative to Conv_PG_OPT (the paper reports 3.1%).
func (m *Model) AreaOverheadVsConvPGOpt() float64 {
	opt := m.RouterArea(DesignConvPGOpt).Total()
	nord := m.RouterArea(DesignNoRD).Total()
	return nord/opt - 1
}
