package power

import (
	"math"
	"testing"
)

func model(t *testing.T, node int, v float64) *Model {
	t.Helper()
	m, err := New(Tech{NodeNM: node, Voltage: v, FreqGHz: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Tech{NodeNM: 90, Voltage: 1.0, FreqGHz: 3}); err == nil {
		t.Error("unsupported node should fail")
	}
	if _, err := New(Tech{NodeNM: 45, Voltage: 0, FreqGHz: 3}); err == nil {
		t.Error("zero voltage should fail")
	}
	if _, err := New(Tech{NodeNM: 45, Voltage: 1.0, FreqGHz: 0}); err == nil {
		t.Error("zero frequency should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad tech should panic")
		}
	}()
	MustNew(Tech{NodeNM: 1, Voltage: 1, FreqGHz: 1})
}

// Figure 1(a) anchors: the static share of total router power at
// PARSEC-average load.
func TestStaticShareMatchesFigure1a(t *testing.T) {
	cases := []struct {
		node int
		v    float64
		want float64
	}{
		{65, 1.2, 0.179},
		{45, 1.1, 0.354},
		{32, 1.0, 0.477},
	}
	for _, c := range cases {
		m := model(t, c.node, c.v)
		got := m.StaticShareAtReferenceLoad()
		if math.Abs(got-c.want) > 0.005 {
			t.Errorf("%dnm/%.1fV static share = %.3f, want %.3f", c.node, c.v, got, c.want)
		}
	}
}

// Static share increases monotonically as voltage decreases at a fixed
// node and as the node shrinks at fixed voltage (the Figure 1a trend).
func TestStaticShareTrend(t *testing.T) {
	for _, node := range []int{65, 45, 32} {
		prev := -1.0
		for _, v := range []float64{1.2, 1.1, 1.0} {
			share := model(t, node, v).StaticShareAtReferenceLoad()
			if share <= prev {
				t.Errorf("%dnm: share not increasing as voltage drops (%.3f after %.3f)", node, share, prev)
			}
			prev = share
		}
	}
	for _, v := range []float64{1.2, 1.1, 1.0} {
		prev := -1.0
		for _, node := range []int{65, 45, 32} {
			share := model(t, node, v).StaticShareAtReferenceLoad()
			if share <= prev {
				t.Errorf("%.1fV: share not increasing as node shrinks", v)
			}
			prev = share
		}
	}
}

// Figure 1(b): decomposition at 45nm/1.0V.
func TestBreakdownMatchesFigure1b(t *testing.T) {
	m := model(t, 45, 1.0)
	got := m.BreakdownAtReferenceLoad()
	want := map[string]float64{
		"buffer_static": 0.21,
		"va_static":     0.07,
		"sa_static":     0.02,
		"xbar_static":   0.05,
		"clock_static":  0.04,
		"dynamic":       0.62,
	}
	sum := 0.0
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("missing component %q", k)
		}
		if math.Abs(g-w) > 0.02 {
			t.Errorf("%s = %.3f, want %.3f (±0.02)", k, g, w)
		}
		sum += g
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("breakdown sums to %v, want 1", sum)
	}
}

func TestBreakevenTimeSemantics(t *testing.T) {
	m := model(t, 45, 1.1)
	// Being off for exactly BET cycles saves WakeupEnergy.
	saved := m.BreakevenCycles * m.RouterStaticW() * m.CycleSeconds()
	if math.Abs(saved-m.WakeupEnergy())/saved > 1e-12 {
		t.Errorf("BET semantics broken: saved %v, overhead %v", saved, m.WakeupEnergy())
	}
}

func TestEnergyAccounting(t *testing.T) {
	m := model(t, 45, 1.1)
	c := Counts{
		Cycles:          1000,
		Routers:         16,
		Links:           48,
		RouterOnCycles:  16000, // all on the whole time
		RouterOffCycles: 0,
		BufWrites:       100,
		BufReads:        100,
		XbarTraversals:  100,
		VAArbs:          20,
		SAArbs:          100,
		ClockedFlitHops: 100,
		LinkTraversals:  100,
	}
	b := m.Energy(c)
	wantStatic := 16000.0 * m.RouterStaticW() * m.CycleSeconds()
	if math.Abs(b.RouterStatic-wantStatic)/wantStatic > 1e-12 {
		t.Errorf("router static = %v, want %v", b.RouterStatic, wantStatic)
	}
	if b.PGOverhead != 0 {
		t.Errorf("no wakeups but overhead %v", b.PGOverhead)
	}
	if b.Total() <= 0 {
		t.Error("non-positive total energy")
	}
	// A fully-dynamic count set decomposes additively.
	sum := b.RouterStatic + b.RouterDynamic + b.LinkStatic + b.LinkDynamic + b.PGOverhead
	if math.Abs(sum-b.Total()) > 1e-18 {
		t.Errorf("Total() mismatch: %v vs %v", b.Total(), sum)
	}
}

func TestEnergyGatedResiduals(t *testing.T) {
	m := model(t, 45, 1.1)
	base := Counts{Cycles: 1000, Routers: 16, Links: 48, RouterOffCycles: 16000}
	plain := m.Energy(base)
	if plain.RouterStatic != 0 {
		t.Errorf("no-controller design leaked %v while off", plain.RouterStatic)
	}
	withCtl := base
	withCtl.HasPGController = true
	e1 := m.Energy(withCtl)
	if e1.RouterStatic <= 0 {
		t.Error("controller residual missing")
	}
	withBoth := withCtl
	withBoth.HasBypass = true
	e2 := m.Energy(withBoth)
	if e2.RouterStatic <= e1.RouterStatic {
		t.Error("bypass residual missing")
	}
	// Residuals are small relative to full-on static.
	fullOn := Counts{Cycles: 1000, Routers: 16, Links: 48, RouterOnCycles: 16000}
	if e2.RouterStatic > 0.2*m.Energy(fullOn).RouterStatic {
		t.Errorf("residual static %v too large vs full-on %v", e2.RouterStatic, m.Energy(fullOn).RouterStatic)
	}
}

func TestWakeupOverheadCounted(t *testing.T) {
	m := model(t, 45, 1.1)
	c := Counts{Cycles: 100, Routers: 1, Links: 0, Wakeups: 7}
	b := m.Energy(c)
	want := 7 * m.WakeupEnergy()
	if math.Abs(b.PGOverhead-want)/want > 1e-12 {
		t.Errorf("overhead = %v, want %v", b.PGOverhead, want)
	}
}

func TestAvgPowerW(t *testing.T) {
	m := model(t, 45, 1.1)
	c := Counts{Cycles: 1000, Routers: 16, Links: 48, RouterOnCycles: 16000}
	b := m.Energy(c)
	p := m.AvgPowerW(c, b)
	if p <= 0 {
		t.Error("non-positive power")
	}
	if m.AvgPowerW(Counts{}, b) != 0 {
		t.Error("zero-cycle power should be 0")
	}
	// 16 routers always on: power must be at least 16x router static.
	if p < 16*m.RouterStaticW() {
		t.Errorf("power %v below router static floor %v", p, 16*m.RouterStaticW())
	}
}

func TestBypassHopCheaperThanRouterHop(t *testing.T) {
	m := model(t, 45, 1.1)
	if m.EBypassHop() >= m.ERouterHop() {
		t.Error("bypass hop should cost less than a full router hop")
	}
	split := m.EBufferWrite() + m.EBufferRead() + m.EXbar() + m.EVAArb() + m.ESAArb() + m.EClockDyn()
	if math.Abs(split-m.ERouterHop())/m.ERouterHop() > 1e-12 {
		t.Errorf("per-event split %v does not sum to bundle %v", split, m.ERouterHop())
	}
}

func TestAreaOverheadMatchesSection68(t *testing.T) {
	m := model(t, 45, 1.1)
	got := m.AreaOverheadVsConvPGOpt()
	if math.Abs(got-0.031) > 0.003 {
		t.Errorf("NoRD area overhead = %.4f, want ~0.031", got)
	}
	// Ordering: NoPG < ConvPG < ConvPGOpt < NoRD.
	prev := 0.0
	for _, d := range []Design{DesignNoPG, DesignConvPG, DesignConvPGOpt, DesignNoRD} {
		a := m.RouterArea(d).Total()
		if a <= prev {
			t.Errorf("area not increasing at %v: %v after %v", d, a, prev)
		}
		prev = a
	}
}

func TestAreaScalesWithNode(t *testing.T) {
	a65 := model(t, 65, 1.1).RouterArea(DesignNoPG).Total()
	a45 := model(t, 45, 1.1).RouterArea(DesignNoPG).Total()
	a32 := model(t, 32, 1.1).RouterArea(DesignNoPG).Total()
	if !(a65 > a45 && a45 > a32) {
		t.Errorf("area should shrink with node: %v, %v, %v", a65, a45, a32)
	}
	want := a45 * (65.0 / 45.0) * (65.0 / 45.0)
	if math.Abs(a65-want)/want > 1e-12 {
		t.Errorf("quadratic scaling broken: %v vs %v", a65, want)
	}
}

func TestDesignString(t *testing.T) {
	names := map[Design]string{
		DesignNoPG: "No_PG", DesignConvPG: "Conv_PG",
		DesignConvPGOpt: "Conv_PG_OPT", DesignNoRD: "NoRD", Design(9): "unknown",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("Design(%d).String() = %q, want %q", d, d.String(), want)
		}
	}
}
