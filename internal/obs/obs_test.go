package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingOverwriteKeepsNewest(t *testing.T) {
	tr := New(Config{Capacity: 4, ResidencyEvery: -1})
	for c := uint64(1); c <= 10; c++ {
		tr.Emit(c, 0, KindGateOff, CauseNone, 0)
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(7 + i); e.Cycle != want {
			t.Errorf("events[%d].Cycle = %d, want %d (chronological, newest kept)", i, e.Cycle, want)
		}
	}
	// Summaries survive overwrites.
	if got := tr.Summaries()[0].GateOffs; got != 10 {
		t.Errorf("summary gate_offs = %d, want 10", got)
	}
}

func TestSamplingRecordsOneInN(t *testing.T) {
	tr := New(Config{SampleEvery: 8, ResidencyEvery: -1})
	for c := uint64(0); c < 64; c++ {
		tr.EmitSampled(c, 3, KindBypassHop, CauseNone, 0)
	}
	if got := len(tr.Events()); got != 8 {
		t.Fatalf("recorded %d sampled events, want 8 (1-in-8 of 64)", got)
	}
	// The summary counts every offered event.
	if got := tr.Summaries()[3].BypassHops; got != 64 {
		t.Errorf("summary bypass_hops = %d, want 64", got)
	}

	all := New(Config{SampleEvery: 1, ResidencyEvery: -1})
	for c := uint64(0); c < 10; c++ {
		all.EmitSampled(c, 0, KindBypassHop, CauseNone, 0)
	}
	if got := len(all.Events()); got != 10 {
		t.Errorf("SampleEvery=1 recorded %d events, want 10", got)
	}
}

func TestSummaryTallies(t *testing.T) {
	tr := New(Config{ResidencyEvery: -1})
	tr.SetNodes(4)
	tr.Emit(100, 2, KindGateOff, CauseNone, 100)
	tr.Emit(150, 2, KindWakeStart, CauseSARequest, 50)
	tr.Emit(158, 2, KindWakeDone, CauseNone, 8)
	tr.Emit(200, 2, KindGateOff, CauseNone, 42)
	tr.Emit(260, 2, KindWakeStart, CauseVCThreshold, 60)
	tr.Emit(300, 2, KindDetour, CauseNone, 0)
	tr.Emit(301, 2, KindEscape, CauseNone, 0)
	tr.Emit(400, 1, KindHardFail, CauseNone, 0)

	s := tr.Summaries()[2]
	if s.GateOffs != 2 || s.Wakeups != 2 {
		t.Fatalf("gate_offs/wakeups = %d/%d, want 2/2", s.GateOffs, s.Wakeups)
	}
	if s.OffCycles != 110 {
		t.Errorf("off_cycles = %d, want 110", s.OffCycles)
	}
	if s.WakingCycles != 8 {
		t.Errorf("waking_cycles = %d, want 8", s.WakingCycles)
	}
	if s.WakeSA != 1 || s.WakeVC != 1 || s.WakeLocal != 0 || s.WakeWatchdog != 0 {
		t.Errorf("cause tallies = sa:%d vc:%d local:%d wd:%d, want 1/1/0/0",
			s.WakeSA, s.WakeVC, s.WakeLocal, s.WakeWatchdog)
	}
	if s.Detours != 1 || s.Escapes != 1 {
		t.Errorf("detours/escapes = %d/%d, want 1/1", s.Detours, s.Escapes)
	}
	if got := s.MeanOffInterval(); got != 55 {
		t.Errorf("mean off interval = %v, want 55", got)
	}
	if !tr.Summaries()[1].HardFailed {
		t.Errorf("router 1 not marked hard-failed")
	}
}

func TestResidencySampling(t *testing.T) {
	tr := New(Config{ResidencyEvery: 10})
	tr.SetNodes(2)
	var sampled []uint64
	for c := uint64(0); c < 35; c++ {
		if row := tr.ResidencyRow(c); row != nil {
			row[0] = StateOff
			row[1] = StateOn
			sampled = append(sampled, c)
		}
	}
	if want := []uint64{0, 10, 20, 30}; len(sampled) != len(want) {
		t.Fatalf("sampled at %v, want %v", sampled, want)
	}
	rows := tr.Residency()
	if rows[1].Cycle != 10 || rows[1].State[0] != StateOff || rows[1].State[1] != StateOn {
		t.Errorf("row 1 = %+v, want cycle 10 states [off on]", rows[1])
	}

	off := New(Config{ResidencyEvery: -1})
	off.SetNodes(2)
	if row := off.ResidencyRow(0); row != nil {
		t.Errorf("ResidencyEvery<0 still returned a row")
	}
}

func TestDrainEvents(t *testing.T) {
	tr := New(Config{ResidencyEvery: -1})
	tr.Emit(1, 0, KindGateOff, CauseNone, 0)
	tr.Emit(2, 0, KindWakeStart, CauseSARequest, 1)
	got := tr.DrainEvents(nil)
	if len(got) != 2 || got[0].Cycle != 1 || got[1].Cycle != 2 {
		t.Fatalf("drained %+v, want the 2 emitted events in order", got)
	}
	if len(tr.Events()) != 0 {
		t.Fatalf("ring not empty after drain")
	}
	tr.Emit(3, 0, KindWakeDone, CauseNone, 0)
	got = tr.DrainEvents(got)
	if len(got) != 3 || got[2].Cycle != 3 {
		t.Fatalf("incremental drain appended %+v", got)
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := []Event{
		{Cycle: 10, Router: 3, Kind: KindGateOff},
		{Cycle: 60, Router: 3, Kind: KindWakeStart, Cause: CauseLocalInject, Arg: 50},
		{Cycle: 70, Router: 5, Kind: KindBypassHop},
	}
	for _, e := range in {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal %+v: %v", e, err)
		}
		var back Event
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != e {
			t.Errorf("round trip %s: got %+v, want %+v", b, back, e)
		}
	}
	var bad Event
	if err := json.Unmarshal([]byte(`{"kind":"nope"}`), &bad); err == nil {
		t.Errorf("unknown kind accepted")
	}
}

func TestWriteNDJSON(t *testing.T) {
	tr := New(Config{ResidencyEvery: 10})
	tr.SetNodes(2)
	tr.Emit(5, 1, KindGateOff, CauseNone, 5)
	if row := tr.ResidencyRow(10); row != nil {
		row[1] = StateOff
	}
	tr.Emit(25, 1, KindWakeStart, CauseSARequest, 20)

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 2 events + 1 residency + 2 summaries + end.
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), buf.String())
	}
	var types []string
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q not valid JSON: %v", ln, err)
		}
		types = append(types, m["type"].(string))
	}
	want := []string{"event", "event", "residency", "summary", "summary", "end"}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("line types = %v, want %v", types, want)
		}
	}
	if !strings.Contains(lines[2], `"state":[0,1]`) {
		t.Errorf("residency line %q missing integer state array", lines[2])
	}
	if !strings.Contains(lines[5], `"events_total":2`) {
		t.Errorf("end line %q missing events_total", lines[5])
	}
}

// TestChromeTraceGolden pins the Chrome trace-event output byte-for-byte
// for a small hand-crafted run: router 0 gates off at 100, wakes (SA
// request) over cycles 400-410, and is still off again from 800 at the
// end; router 1 hard-fails at 500; a detour and a sampled bypass hop land
// on router 2. Load the file in ui.perfetto.dev to inspect changes before
// re-pinning.
func TestChromeTraceGolden(t *testing.T) {
	tr := New(Config{ResidencyEvery: 500})
	tr.SetNodes(3)
	if row := tr.ResidencyRow(0); row != nil {
		row[0], row[1], row[2] = StateOn, StateOn, StateOn
	}
	tr.Emit(100, 0, KindGateOff, CauseNone, 100)
	tr.Emit(400, 0, KindWakeStart, CauseSARequest, 300)
	tr.Emit(410, 0, KindWakeDone, CauseNone, 10)
	tr.Emit(450, 2, KindDetour, CauseNone, 0)
	tr.Emit(470, 2, KindEscape, CauseNone, 0)
	tr.EmitSampled(480, 2, KindBypassHop, CauseNone, 0)
	tr.Emit(500, 1, KindHardFail, CauseNone, 0)
	if row := tr.ResidencyRow(500); row != nil {
		row[0], row[1], row[2] = StateOn, StateFailed, StateOn
	}
	tr.Emit(800, 0, KindGateOff, CauseNone, 390)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, 1000); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	const want = `{"displayTimeUnit":"ms","traceEvents":[
{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"nord routers"}},
{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"router 0"}},
{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"router 1"}},
{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"router 2"}},
{"ph":"X","pid":1,"tid":0,"ts":100,"dur":300,"name":"off"},
{"ph":"i","pid":1,"tid":0,"ts":400,"s":"t","name":"wake:sa_request"},
{"ph":"X","pid":1,"tid":0,"ts":400,"dur":10,"name":"waking"},
{"ph":"i","pid":1,"tid":2,"ts":450,"s":"t","name":"detour"},
{"ph":"i","pid":1,"tid":2,"ts":470,"s":"t","name":"escape"},
{"ph":"i","pid":1,"tid":2,"ts":480,"s":"t","name":"bypass_hop"},
{"ph":"i","pid":1,"tid":1,"ts":500,"s":"t","name":"hard_fail"},
{"ph":"X","pid":1,"tid":0,"ts":800,"dur":200,"name":"off"},
{"ph":"X","pid":1,"tid":1,"ts":500,"dur":500,"name":"failed"},
{"ph":"C","pid":1,"ts":0,"name":"routers_off","args":{"off":0}},
{"ph":"C","pid":1,"ts":0,"name":"routers_waking","args":{"waking":0}},
{"ph":"C","pid":1,"ts":500,"name":"routers_off","args":{"off":1}},
{"ph":"C","pid":1,"ts":500,"name":"routers_waking","args":{"waking":0}}
]}
`
	if got := buf.String(); got != want {
		t.Errorf("chrome trace drifted from golden output.\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The document must stay parseable JSON.
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 17 {
		t.Errorf("traceEvents count = %d, want 17", len(doc.TraceEvents))
	}
}

// TestChromeTraceReconstructsLostGateOff: when the ring overwrote the
// GateOff event, the off-slice is reconstructed from WakeStart's residency
// argument.
func TestChromeTraceReconstructsLostGateOff(t *testing.T) {
	tr := New(Config{Capacity: 2, ResidencyEvery: -1})
	tr.Emit(100, 0, KindGateOff, CauseNone, 100) // will be overwritten
	tr.Emit(400, 0, KindWakeStart, CauseSARequest, 300)
	tr.Emit(410, 0, KindWakeDone, CauseNone, 10)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, 1000); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !strings.Contains(buf.String(), `"ts":100,"dur":300,"name":"off"`) {
		t.Errorf("off interval not reconstructed from WakeStart arg:\n%s", buf.String())
	}
}
