// Package obs is the cycle-level observability layer: a sampling
// ring-buffer event sink that records power-gating FSM transitions,
// wakeup causes, bypass-ring detours and escape-VC entries, plus a
// per-router PG-state residency time-series sampled at a coarse period.
//
// The tracer is designed around the simulator's zero-allocation steady
// state: when no tracer is attached the entire cost on the tick path is
// one nil pointer check, and with a tracer attached the control events
// (FSM transitions) are rare enough that the ring buffer writes are the
// only cost. High-frequency events (bypass hops) are sampled 1-in-N so
// congested NoRD runs cannot flood the ring.
//
// The tracer is single-goroutine: the simulation goroutine emits, and
// consumers either read after the run or drain from a progress callback
// (which the sim layer invokes on the simulation goroutine).
package obs

// Kind classifies a trace event.
type Kind uint8

const (
	// KindGateOff is the on->off transition (PG asserted). Arg carries
	// the cycles the router had spent powered on.
	KindGateOff Kind = iota
	// KindWakeStart is the off->waking transition (WU granted). Cause
	// says what asserted the wakeup; Arg carries the cycles spent off.
	KindWakeStart
	// KindWakeDone is the waking->on transition (pipeline restored).
	// Arg carries the wakeup latency in cycles.
	KindWakeDone
	// KindHardFail marks a router permanently lost to fault injection.
	KindHardFail
	// KindDetour is one misrouted hop: a flit taking the bypass ring (or
	// an adaptive non-minimal turn) instead of a minimal path.
	KindDetour
	// KindEscape is a packet entering the escape (dateline) VC class.
	KindEscape
	// KindBypassHop is a flit forwarded through a gated-off router's NI
	// bypass. High-frequency: recorded 1-in-SampleEvery.
	KindBypassHop

	numKinds
)

var kindNames = [numKinds]string{
	"gate_off", "wake_start", "wake_done", "hard_fail",
	"detour", "escape", "bypass_hop",
}

// String returns the stable snake_case name used in exports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Cause attributes a KindWakeStart event to the signal that woke the
// router.
type Cause uint8

const (
	// CauseNone is used by every kind other than KindWakeStart.
	CauseNone Cause = iota
	// CauseSARequest: a neighbor stalled in switch allocation asserted
	// the WU level (conventional power gating).
	CauseSARequest
	// CauseLocalInject: the local node needs its router for injection
	// (node-router dependence of the conventional designs).
	CauseLocalInject
	// CauseVCThreshold: NoRD's windowed VC-request metric reached the
	// router's asymmetric wakeup threshold.
	CauseVCThreshold
	// CauseWatchdog: the power-gating watchdog forced a wakeup through a
	// faulty controller (stuck-off or dropped-handshake faults).
	CauseWatchdog

	numCauses
)

var causeNames = [numCauses]string{
	"", "sa_request", "local_inject", "vc_threshold", "watchdog",
}

// String returns the stable snake_case name used in exports ("" for
// CauseNone).
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "unknown"
}

// Event is one recorded occurrence. Arg is kind-specific: the residency
// of the state being left for FSM transitions, unused otherwise.
type Event struct {
	Cycle  uint64
	Arg    uint64
	Router int32
	Kind   Kind
	Cause  Cause
}

// Config tunes a Tracer. The zero value selects the defaults.
type Config struct {
	// Capacity is the event ring size; once full the oldest events are
	// overwritten (default 65536). Summaries keep counting regardless.
	Capacity int
	// SampleEvery records every Nth high-frequency event — bypass hops —
	// while control events are always recorded (default 64; 1 records
	// everything).
	SampleEvery int
	// ResidencyEvery is the cycle period of the per-router power-state
	// residency samples (default 1024; negative disables the series).
	ResidencyEvery int
}

func (c *Config) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 1 << 16
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.ResidencyEvery == 0 {
		c.ResidencyEvery = 1024
	}
}

// Residency state codes, one byte per router per sample row.
const (
	StateOn     uint8 = 0
	StateOff    uint8 = 1
	StateWaking uint8 = 2
	StateFailed uint8 = 3
)

// ResidencyRow is one sample of the per-router PG-state time-series:
// State[i] is router i's state code at Cycle.
type ResidencyRow struct {
	Cycle uint64  `json:"cycle"`
	State []uint8 `json:"state"`
}

// RouterSummary is the per-router running tally, updated on every Emit —
// including events the ring has since overwritten and sampled-out bypass
// hops — so it is exact regardless of ring capacity.
type RouterSummary struct {
	Router       int    `json:"router"`
	GateOffs     uint64 `json:"gate_offs"`
	Wakeups      uint64 `json:"wakeups"`
	WakeSA       uint64 `json:"wake_sa_request,omitempty"`
	WakeLocal    uint64 `json:"wake_local_inject,omitempty"`
	WakeVC       uint64 `json:"wake_vc_threshold,omitempty"`
	WakeWatchdog uint64 `json:"wake_watchdog,omitempty"`
	OffCycles    uint64 `json:"off_cycles"`
	WakingCycles uint64 `json:"waking_cycles"`
	Detours      uint64 `json:"detours"`
	Escapes      uint64 `json:"escapes"`
	BypassHops   uint64 `json:"bypass_hops"`
	HardFailed   bool   `json:"hard_failed,omitempty"`
}

// MeanOffInterval returns the mean length of this router's completed
// gated-off intervals in cycles (0 when it never gated off).
func (s RouterSummary) MeanOffInterval() float64 {
	switch {
	case s.Wakeups > 0:
		return float64(s.OffCycles) / float64(s.Wakeups)
	case s.GateOffs > 0:
		return float64(s.OffCycles) / float64(s.GateOffs)
	}
	return 0
}

// Tracer is the event sink. Not safe for concurrent use: emit from the
// simulation goroutine only (see the package comment).
type Tracer struct {
	cfg Config

	buf   []Event
	start int // index of the oldest event
	count int

	total   uint64 // events recorded into the ring (before overwrites)
	dropped uint64 // events overwritten by ring wraparound
	hfSeen  uint64 // high-frequency events offered (sampled and not)
	last    uint64 // highest cycle seen by any emit or residency sample

	sums []RouterSummary

	res     []ResidencyRow
	resNext uint64
}

// New builds a tracer; zero-value cfg fields select the defaults.
func New(cfg Config) *Tracer {
	cfg.fill()
	return &Tracer{cfg: cfg, buf: make([]Event, cfg.Capacity)}
}

// SetNodes sizes the per-router summaries (the network calls this when
// the tracer is attached).
func (t *Tracer) SetNodes(n int) {
	if n > len(t.sums) {
		sums := make([]RouterSummary, n)
		copy(sums, t.sums)
		for i := range sums {
			sums[i].Router = i
		}
		t.sums = sums
	}
}

func (t *Tracer) sum(router int32) *RouterSummary {
	if int(router) >= len(t.sums) {
		t.SetNodes(int(router) + 1)
	}
	return &t.sums[router]
}

// Emit records a control event (always kept, ring-overwriting the oldest
// when full) and updates the per-router summary.
func (t *Tracer) Emit(cycle uint64, router int32, kind Kind, cause Cause, arg uint64) {
	s := t.sum(router)
	switch kind {
	case KindGateOff:
		s.GateOffs++
	case KindWakeStart:
		s.Wakeups++
		s.OffCycles += arg
		switch cause {
		case CauseSARequest:
			s.WakeSA++
		case CauseLocalInject:
			s.WakeLocal++
		case CauseVCThreshold:
			s.WakeVC++
		case CauseWatchdog:
			s.WakeWatchdog++
		}
	case KindWakeDone:
		s.WakingCycles += arg
	case KindHardFail:
		s.HardFailed = true
	case KindDetour:
		s.Detours++
	case KindEscape:
		s.Escapes++
	case KindBypassHop:
		s.BypassHops++
	}
	t.push(Event{Cycle: cycle, Arg: arg, Router: router, Kind: kind, Cause: cause})
}

// EmitSampled records a high-frequency event 1-in-SampleEvery; the
// summary counts every offered event regardless.
func (t *Tracer) EmitSampled(cycle uint64, router int32, kind Kind, cause Cause, arg uint64) {
	if kind == KindBypassHop {
		t.sum(router).BypassHops++
	}
	t.hfSeen++
	if t.hfSeen%uint64(t.cfg.SampleEvery) != 1 && t.cfg.SampleEvery > 1 {
		return
	}
	t.push(Event{Cycle: cycle, Arg: arg, Router: router, Kind: kind, Cause: cause})
}

func (t *Tracer) push(e Event) {
	t.total++
	if e.Cycle > t.last {
		t.last = e.Cycle
	}
	if t.count == len(t.buf) {
		t.buf[t.start] = e
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
		return
	}
	t.buf[(t.start+t.count)%len(t.buf)] = e
	t.count++
}

// ResidencyRow returns the row to fill for this cycle's residency sample
// (the caller writes one state code per router), or nil when no sample
// is due. The row's length is the node count from SetNodes.
func (t *Tracer) ResidencyRow(cycle uint64) []uint8 {
	if t.cfg.ResidencyEvery < 0 || cycle < t.resNext || len(t.sums) == 0 {
		return nil
	}
	t.resNext = cycle + uint64(t.cfg.ResidencyEvery)
	if cycle > t.last {
		t.last = cycle
	}
	row := ResidencyRow{Cycle: cycle, State: make([]uint8, len(t.sums))}
	t.res = append(t.res, row)
	return row.State
}

// Events returns the buffered events in chronological order (a copy).
func (t *Tracer) Events() []Event {
	out := make([]Event, t.count)
	for i := 0; i < t.count; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// DrainEvents appends the buffered events to dst in chronological order
// and empties the ring, for incremental streaming.
func (t *Tracer) DrainEvents(dst []Event) []Event {
	for i := 0; i < t.count; i++ {
		dst = append(dst, t.buf[(t.start+i)%len(t.buf)])
	}
	t.start, t.count = 0, 0
	return dst
}

// Summaries returns a copy of the per-router running tallies.
func (t *Tracer) Summaries() []RouterSummary {
	return append([]RouterSummary(nil), t.sums...)
}

// Residency returns the sampled per-router state time-series.
func (t *Tracer) Residency() []ResidencyRow { return t.res }

// Total returns the number of events recorded (including those since
// overwritten); Dropped the number lost to ring wraparound.
func (t *Tracer) Total() uint64   { return t.total }
func (t *Tracer) Dropped() uint64 { return t.dropped }

// LastCycle returns the highest cycle any event or residency sample
// carried — the natural end-of-trace timestamp.
func (t *Tracer) LastCycle() uint64 { return t.last }
