package obs

import (
	"bufio"
	"fmt"
	"io"
)

// This file renders a tracer's contents in the Chrome trace-event JSON
// format, loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
// One timestamp tick is one simulated cycle (the viewer displays it as
// a microsecond). Each router gets its own track (pid 1, tid = router
// id): gated-off and waking periods are duration ("X") slices, wakeups
// with their cause and detour/escape/bypass events are instants ("i"),
// and the residency samples become "routers_off"/"routers_waking"
// counter tracks. Powered-on time is the empty background, keeping the
// timeline legible — the paper's per-router disconnected-time pictures
// fall straight out of the off-slices.
//
// The writer emits objects with fixed field order and no floating-point
// values, so the output is byte-deterministic and golden-testable.

// WriteChromeTrace writes the Chrome trace-event JSON document. endCycle
// closes the still-open gated-off/failed intervals (pass the final
// simulation cycle; it is clamped up to the last recorded cycle so stale
// values cannot truncate the timeline).
func (t *Tracer) WriteChromeTrace(w io.Writer, endCycle uint64) error {
	if t.last > endCycle {
		endCycle = t.last
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	emit(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"nord routers"}}`)
	for id := range t.sums {
		emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"router %d"}}`, id, id)
	}

	// offSince tracks routers known to be gated off (or hard-failed) so
	// the still-open intervals can be closed at endCycle. A WakeStart
	// whose GateOff was overwritten by the ring (or never emitted,
	// ForcedOff starts) reconstructs the interval from its Arg residency.
	offSince := make(map[int32]uint64)
	failedAt := make(map[int32]uint64)
	for _, e := range t.Events() {
		switch e.Kind {
		case KindGateOff:
			offSince[e.Router] = e.Cycle
		case KindWakeStart:
			start := e.Cycle - e.Arg
			if s, ok := offSince[e.Router]; ok {
				start = s
				delete(offSince, e.Router)
			}
			if e.Cycle > start {
				emit(`{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"name":"off"}`,
					e.Router, start, e.Cycle-start)
			}
			emit(`{"ph":"i","pid":1,"tid":%d,"ts":%d,"s":"t","name":"wake:%s"}`,
				e.Router, e.Cycle, e.Cause)
		case KindWakeDone:
			if e.Arg > 0 {
				emit(`{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"name":"waking"}`,
					e.Router, e.Cycle-e.Arg, e.Arg)
			}
		case KindHardFail:
			failedAt[e.Router] = e.Cycle
			emit(`{"ph":"i","pid":1,"tid":%d,"ts":%d,"s":"t","name":"hard_fail"}`,
				e.Router, e.Cycle)
		case KindDetour, KindEscape, KindBypassHop:
			emit(`{"ph":"i","pid":1,"tid":%d,"ts":%d,"s":"t","name":"%s"}`,
				e.Router, e.Cycle, e.Kind)
		}
	}
	// Close intervals still open at the end of the run, in router order
	// for determinism.
	for id := range t.sums {
		r := int32(id)
		if at, ok := failedAt[r]; ok {
			if s, ok := offSince[r]; ok && s < at {
				at = s
			}
			if endCycle > at {
				emit(`{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"name":"failed"}`, r, at, endCycle-at)
			}
			delete(offSince, r)
			continue
		}
		if s, ok := offSince[r]; ok && endCycle > s {
			emit(`{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"name":"off"}`, r, s, endCycle-s)
		}
	}
	for _, row := range t.res {
		off, waking := 0, 0
		for _, st := range row.State {
			switch st {
			case StateOff, StateFailed:
				off++
			case StateWaking:
				waking++
			}
		}
		emit(`{"ph":"C","pid":1,"ts":%d,"name":"routers_off","args":{"off":%d}}`, row.Cycle, off)
		emit(`{"ph":"C","pid":1,"ts":%d,"name":"routers_waking","args":{"waking":%d}}`, row.Cycle, waking)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
