package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// eventJSON is the wire form of an Event: kinds and causes as their
// stable snake_case names.
type eventJSON struct {
	Cycle  uint64 `json:"cycle"`
	Router int32  `json:"router"`
	Kind   string `json:"kind"`
	Cause  string `json:"cause,omitempty"`
	Arg    uint64 `json:"arg,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Cycle: e.Cycle, Router: e.Router,
		Kind: e.Kind.String(), Cause: e.Cause.String(), Arg: e.Arg,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(b []byte) error {
	var w eventJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	k, err := kindByName(w.Kind)
	if err != nil {
		return err
	}
	c, err := causeByName(w.Cause)
	if err != nil {
		return err
	}
	*e = Event{Cycle: w.Cycle, Arg: w.Arg, Router: w.Router, Kind: k, Cause: c}
	return nil
}

func kindByName(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

func causeByName(s string) (Cause, error) {
	for c, name := range causeNames {
		if name == s {
			return Cause(c), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown wake cause %q", s)
}

// MarshalJSON renders the state row as an integer array (Go would
// otherwise base64 the byte slice, which is useless to shell tooling).
func (r ResidencyRow) MarshalJSON() ([]byte, error) {
	states := make([]int, len(r.State))
	for i, s := range r.State {
		states[i] = int(s)
	}
	return json.Marshal(struct {
		Cycle uint64 `json:"cycle"`
		State []int  `json:"state"`
	}{Cycle: r.Cycle, State: states})
}

// WriteNDJSON dumps the tracer's contents as newline-delimited JSON:
// one line per event ("type":"event"), residency sample
// ("type":"residency") and per-router summary ("type":"summary"),
// closed by a "type":"end" line with the recording totals.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		// Splice the discriminator ahead of the event's own fields.
		b, err := e.MarshalJSON()
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "{\"type\":\"event\",%s\n", b[1:]); err != nil {
			return err
		}
	}
	for _, row := range t.res {
		b, err := row.MarshalJSON()
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "{\"type\":\"residency\",%s\n", b[1:]); err != nil {
			return err
		}
	}
	for _, s := range t.sums {
		if err := enc.Encode(struct {
			Type string `json:"type"`
			RouterSummary
			MeanOffInterval float64 `json:"mean_off_interval"`
		}{Type: "summary", RouterSummary: s, MeanOffInterval: s.MeanOffInterval()}); err != nil {
			return err
		}
	}
	return enc.Encode(struct {
		Type    string `json:"type"`
		Total   uint64 `json:"events_total"`
		Dropped uint64 `json:"events_dropped"`
	}{Type: "end", Total: t.total, Dropped: t.dropped})
}
