package stats

import (
	"reflect"
	"testing"
)

// fillNoC stamps every field of a collector with a distinct non-zero
// value via reflection, failing the test on any field kind it does not
// know how to populate — which is exactly what happens when a new field
// is added to NoC without teaching Merge about it.
func fillNoC(t *testing.T, n *NoC) {
	t.Helper()
	v := reflect.ValueOf(n).Elem()
	for i := 0; i < v.NumField(); i++ {
		name := v.Type().Field(i).Name
		switch f := v.Field(i).Addr().Interface().(type) {
		case *uint64:
			*f = uint64(i + 1)
		case *Sample:
			f.Add(float64(i + 1))
			f.Add(float64(2 * (i + 1)))
		case **Histogram:
			(*f).Add(uint64(i + 1))
			(*f).Add(uint64(i + 100)) // land one in the overflow bucket too
		default:
			t.Fatalf("NoC field %s has kind %T the merge test cannot populate; teach fillNoC (and NoC.Merge) about it", name, f)
		}
	}
}

// TestNoCMergeCoversAllFields is the guard referenced by NoC.Merge's doc
// comment: merging a fully-populated collector into a zero one must
// reproduce it exactly, field for field. A field added to the struct but
// forgotten in Merge shows up here as a diverging field (or as an
// unknown kind in fillNoC) — the sharded kernel's per-shard accumulators
// rely on Merge being lossless.
func TestNoCMergeCoversAllFields(t *testing.T) {
	src := NewNoC(64)
	fillNoC(t, src)

	dst := NewNoC(64)
	dst.Merge(src)

	sv := reflect.ValueOf(src).Elem()
	dv := reflect.ValueOf(dst).Elem()
	for i := 0; i < sv.NumField(); i++ {
		name := sv.Type().Field(i).Name
		if !reflect.DeepEqual(sv.Field(i).Interface(), dv.Field(i).Interface()) {
			t.Errorf("field %s not carried over by Merge: src %+v, merged %+v",
				name, sv.Field(i).Interface(), dv.Field(i).Interface())
		}
	}

	// Merging twice must double every counter (sums, not overwrites):
	// catches a Merge clause written as assignment.
	dst.Merge(src)
	if dst.Cycles != 2*src.Cycles || dst.PacketLatency.N != 2*src.PacketLatency.N ||
		dst.IdlePeriods.Count() != 2*src.IdlePeriods.Count() {
		t.Errorf("second merge did not accumulate: %+v", dst)
	}
}
