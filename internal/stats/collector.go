package stats

import (
	"nord/internal/power"
)

// NoC aggregates everything a network simulation measures. The noc
// package increments it; the sim package converts it into reports.
type NoC struct {
	// Cycles measured (after warmup).
	Cycles uint64

	// Packet-level statistics. Latency is measured from injection at the
	// source node (including source queueing) to ejection of the tail
	// flit at the destination.
	PacketsInjected  uint64
	PacketsDelivered uint64
	FlitsDelivered   uint64
	PacketLatency    Sample
	LatencyHist      *Histogram // per-packet latency distribution
	NetworkLatency   Sample     // from head entering the network to tail ejection
	Hops             Sample
	MisroutedHops    uint64
	EscapedPackets   uint64

	// Power-gating behaviour.
	Wakeups     uint64 // off->on transitions
	GateOffs    uint64 // on->off transitions
	WakeupStall Sample // cycles packets spent stalled waiting for wakeups

	// Per-router idle/power state accounting, summed over routers.
	RouterOnCycles     uint64
	RouterOffCycles    uint64
	RouterWakingCycles uint64

	// Dynamic event counts feeding the power model.
	BufWrites, BufReads uint64
	XbarTraversals      uint64
	VAArbs, SAArbs      uint64
	ClockedFlitHops     uint64
	LinkTraversals      uint64
	BypassHops          uint64
	BypassInjections    uint64
	BypassEjections     uint64
	// LocalFlits counts flits delivered over the NI-local path of a
	// concentrated router (terminal-to-terminal traffic that never
	// entered the network); 0 on concentration-1 topologies.
	LocalFlits uint64

	// NIVCRequests sums the per-cycle VC requests seen at every NI (the
	// raw signal of NoRD's wakeup metric, used to regenerate Figure 7).
	NIVCRequests uint64

	// Fault-injection and recovery events (counted whenever a fault
	// schedule is armed, independent of the measurement window, since
	// faults land during warmup and drain too).
	CorruptFlits    uint64 // flits whose checksum a link fault damaged
	PoisonedPackets uint64 // packets detected corrupt by verification
	Retransmits     uint64 // end-to-end retransmissions issued
	WakeupsDropped  uint64 // wakeup handshakes swallowed by faults
	WatchdogWakeups uint64 // wakeups re-issued by the PG watchdog

	// Idle-period distribution across all routers (datapath emptiness,
	// independent of whether the design actually gated them off).
	IdlePeriods *Histogram
	IdleCycles  uint64
	BusyCycles  uint64
}

// Merge folds another collector into this one. The sharded parallel
// kernel gives each spatial domain a private collector for everything
// incremented inside a parallel phase, and folds them into the master at
// serial points (measurement boundaries and report reads). Every counter
// is a sum and every Sample holds integer-valued observations (exactly
// representable in float64), so merging is exact and order-independent:
// the folded totals are bit-identical to serial accumulation.
// TestNoCMergeCoversAllFields keeps this in sync with the struct.
func (n *NoC) Merge(o *NoC) {
	n.Cycles += o.Cycles

	n.PacketsInjected += o.PacketsInjected
	n.PacketsDelivered += o.PacketsDelivered
	n.FlitsDelivered += o.FlitsDelivered
	n.PacketLatency.Merge(o.PacketLatency)
	n.LatencyHist.Merge(o.LatencyHist)
	n.NetworkLatency.Merge(o.NetworkLatency)
	n.Hops.Merge(o.Hops)
	n.MisroutedHops += o.MisroutedHops
	n.EscapedPackets += o.EscapedPackets

	n.Wakeups += o.Wakeups
	n.GateOffs += o.GateOffs
	n.WakeupStall.Merge(o.WakeupStall)

	n.RouterOnCycles += o.RouterOnCycles
	n.RouterOffCycles += o.RouterOffCycles
	n.RouterWakingCycles += o.RouterWakingCycles

	n.BufWrites += o.BufWrites
	n.BufReads += o.BufReads
	n.XbarTraversals += o.XbarTraversals
	n.VAArbs += o.VAArbs
	n.SAArbs += o.SAArbs
	n.ClockedFlitHops += o.ClockedFlitHops
	n.LinkTraversals += o.LinkTraversals
	n.BypassHops += o.BypassHops
	n.BypassInjections += o.BypassInjections
	n.BypassEjections += o.BypassEjections
	n.LocalFlits += o.LocalFlits

	n.NIVCRequests += o.NIVCRequests

	n.CorruptFlits += o.CorruptFlits
	n.PoisonedPackets += o.PoisonedPackets
	n.Retransmits += o.Retransmits
	n.WakeupsDropped += o.WakeupsDropped
	n.WatchdogWakeups += o.WatchdogWakeups

	n.IdlePeriods.Merge(o.IdlePeriods)
	n.IdleCycles += o.IdleCycles
	n.BusyCycles += o.BusyCycles
}

// Reset zeroes the collector for reuse, keeping histogram allocations.
func (n *NoC) Reset() {
	lat, idle := n.LatencyHist, n.IdlePeriods
	lat.Reset()
	idle.Reset()
	*n = NoC{LatencyHist: lat, IdlePeriods: idle}
}

// AvgVCRequestsPerWindow returns the mean windowed VC-request count per
// node for the given window length (NoRD's wakeup metric, Section 4.3).
func (n *NoC) AvgVCRequestsPerWindow(nodes, window int) float64 {
	if n.Cycles == 0 || nodes == 0 {
		return 0
	}
	perCyclePerNode := float64(n.NIVCRequests) / float64(n.Cycles) / float64(nodes)
	return perCyclePerNode * float64(window)
}

// NewNoC returns a collector with an idle-period histogram sized for
// periods up to maxIdlePeriod cycles.
func NewNoC(maxIdlePeriod int) *NoC {
	return &NoC{
		IdlePeriods: NewHistogram(maxIdlePeriod),
		LatencyHist: NewHistogram(4096),
	}
}

// LatencyPercentile returns the p-quantile (0..1) of per-packet latency.
func (n *NoC) LatencyPercentile(p float64) uint64 {
	return n.LatencyHist.Percentile(p)
}

// PowerCounts converts the collected event counts into the power model's
// input, for a NoC with the given population and design properties.
func (n *NoC) PowerCounts(routers, links int, hasPGController, hasBypass bool) power.Counts {
	return power.Counts{
		Cycles:           n.Cycles,
		Routers:          routers,
		Links:            links,
		RouterOnCycles:   n.RouterOnCycles + n.RouterWakingCycles,
		RouterOffCycles:  n.RouterOffCycles,
		Wakeups:          n.Wakeups,
		BufWrites:        n.BufWrites,
		BufReads:         n.BufReads,
		XbarTraversals:   n.XbarTraversals,
		VAArbs:           n.VAArbs,
		SAArbs:           n.SAArbs,
		ClockedFlitHops:  n.ClockedFlitHops,
		LinkTraversals:   n.LinkTraversals,
		BypassHops:       n.BypassHops,
		BypassInjections: n.BypassInjections,
		BypassEjections:  n.BypassEjections,
		LocalFlits:       n.LocalFlits,
		HasPGController:  hasPGController,
		HasBypass:        hasBypass,
	}
}

// AvgPacketLatency returns the mean end-to-end packet latency in cycles.
func (n *NoC) AvgPacketLatency() float64 { return n.PacketLatency.Mean() }

// Throughput returns delivered flits per node per cycle.
func (n *NoC) Throughput(nodes int) float64 {
	if n.Cycles == 0 || nodes == 0 {
		return 0
	}
	return float64(n.FlitsDelivered) / float64(n.Cycles) / float64(nodes)
}

// IdleFraction returns the aggregate router idle fraction.
func (n *NoC) IdleFraction() float64 {
	total := n.IdleCycles + n.BusyCycles
	if total == 0 {
		return 0
	}
	return float64(n.IdleCycles) / float64(total)
}

// OffFraction returns the fraction of router-cycles spent gated off.
func (n *NoC) OffFraction() float64 {
	total := n.RouterOnCycles + n.RouterOffCycles + n.RouterWakingCycles
	if total == 0 {
		return 0
	}
	return float64(n.RouterOffCycles) / float64(total)
}
