package stats

// Progress is a periodic snapshot of a running simulation, emitted by the
// sim runners' progress hooks and streamed as NDJSON by the serve job
// API's /events endpoint.
type Progress struct {
	// Cycle is the absolute simulation cycle of the snapshot.
	Cycle uint64 `json:"cycle"`
	// TotalCycles is the planned run length in cycles, 0 when unknown
	// (open-ended runs such as workloads and trace replays).
	TotalCycles uint64 `json:"total_cycles,omitempty"`
	// Phase names the run phase: "warmup", "measure" or "drain".
	Phase string `json:"phase"`
	// PacketsInjected / PacketsDelivered are the measured-interval packet
	// counters at the snapshot cycle.
	PacketsInjected  uint64 `json:"packets_injected"`
	PacketsDelivered uint64 `json:"packets_delivered"`
	// InFlight is the number of packets injected but not yet delivered.
	InFlight int `json:"in_flight"`

	// Design-space search jobs (POST /v1/search) reuse the same stream
	// with Phase "generation" and per-generation counters below; Cycle
	// stays 0 so the server's cumulative simulated-cycle accounting only
	// counts the underlying evaluation jobs.
	Generation  int `json:"generation,omitempty"`
	Generations int `json:"generations,omitempty"`
	// Evaluations / CacheHits are cumulative candidate evaluations so far
	// and how many of them were served from the content-addressed cache
	// (or coalesced onto an in-flight job).
	Evaluations int `json:"evaluations,omitempty"`
	CacheHits   int `json:"cache_hits,omitempty"`
	// FrontSize is the size of the current non-dominated front.
	FrontSize int `json:"front_size,omitempty"`
}
