package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 {
		t.Error("empty sample mean should be 0")
	}
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.N != 3 || s.Sum != 6 || s.Min != 1 || s.Max != 3 {
		t.Errorf("sample = %+v", s)
	}
	if s.Mean() != 2 {
		t.Errorf("mean = %v, want 2", s.Mean())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSampleMerge(t *testing.T) {
	var a, b Sample
	a.Add(1)
	a.Add(5)
	b.Add(3)
	b.Add(-2)
	a.Merge(b)
	if a.N != 4 || a.Min != -2 || a.Max != 5 || a.Sum != 7 {
		t.Errorf("merged = %+v", a)
	}
	var empty Sample
	a.Merge(empty)
	if a.N != 4 {
		t.Error("merging empty changed sample")
	}
	var c Sample
	c.Merge(a)
	if c != a {
		t.Error("merging into empty should copy")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []uint64{0, 1, 1, 5, 20} {
		h.Add(v)
	}
	if h.Count() != 5 || h.Sum() != 27 || h.Max() != 20 {
		t.Errorf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	if h.Bucket(1) != 2 || h.Bucket(0) != 1 || h.Bucket(20) != 0 {
		t.Error("bucket counts wrong")
	}
	if h.Overflow() != 1 {
		t.Errorf("overflow = %d, want 1", h.Overflow())
	}
	if h.Mean() != 27.0/5.0 {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.CountLE(1) != 3 {
		t.Errorf("CountLE(1) = %d, want 3", h.CountLE(1))
	}
	if h.CountLE(5) != 4 {
		t.Errorf("CountLE(5) = %d, want 4", h.CountLE(5))
	}
	if h.CountLE(19) != 4 {
		t.Errorf("CountLE(19) = %d, want 4 (overflow value is 20)", h.CountLE(19))
	}
	if h.CountLE(20) != 5 {
		t.Errorf("CountLE(20) = %d, want 5", h.CountLE(20))
	}
	if h.FracLE(1) != 0.6 {
		t.Errorf("FracLE(1) = %v, want 0.6", h.FracLE(1))
	}
}

func TestHistogramEmptyAndTiny(t *testing.T) {
	h := NewHistogram(0) // normalised to 1 bucket
	if h.FracLE(5) != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Add(0)
	if h.Count() != 1 || h.Bucket(0) != 1 {
		t.Error("tiny histogram broken")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(100)
	for v := uint64(1); v <= 100; v++ {
		h.Add(v % 100)
	}
	if p := h.Percentile(0.5); p != 49 && p != 50 {
		t.Errorf("median = %d, want ~50", p)
	}
	if p := h.Percentile(1.0); p != 99 {
		t.Errorf("p100 = %d, want 99", p)
	}
	if p := h.Percentile(0); p != 0 {
		t.Errorf("p0 = %d, want 0", p)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10)
	b := NewHistogram(20)
	a.Add(1)
	a.Add(15) // overflow in a
	b.Add(15)
	b.Add(3)
	a.Merge(b)
	if a.Count() != 4 || a.Sum() != 34 {
		t.Errorf("merged count=%d sum=%d", a.Count(), a.Sum())
	}
	// b's 15 is out of a's range -> overflow; a already had one overflow.
	if a.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", a.Overflow())
	}
	if a.Max() != 15 {
		t.Errorf("max = %d, want 15", a.Max())
	}
}

// Property: histogram count/sum match direct accumulation, and CountLE is
// monotone in x.
func TestHistogramProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(64)
		var sum, count uint64
		for _, v := range vals {
			h.Add(uint64(v % 128))
			sum += uint64(v % 128)
			count++
		}
		if h.Count() != count || h.Sum() != sum {
			return false
		}
		prev := uint64(0)
		for x := uint64(0); x < 130; x += 7 {
			c := h.CountLE(x)
			if c < prev || c > count {
				return false
			}
			prev = c
		}
		return h.CountLE(200) == count
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(5)), MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWindow(t *testing.T) {
	w := NewWindow(3)
	w.Push(1)
	w.Push(2)
	w.Push(3)
	if w.Sum() != 6 {
		t.Errorf("sum = %d, want 6", w.Sum())
	}
	w.Push(10) // evicts 1
	if w.Sum() != 15 {
		t.Errorf("sum = %d, want 15", w.Sum())
	}
	w.Reset()
	if w.Sum() != 0 {
		t.Error("reset did not clear")
	}
	// Window of zero size normalised to 1.
	w1 := NewWindow(0)
	w1.Push(5)
	if w1.Sum() != 5 {
		t.Error("size-1 window broken")
	}
	w1.Push(7)
	if w1.Sum() != 7 {
		t.Error("size-1 window should only hold latest")
	}
}

// Property: window sum always equals the sum of the last N pushes.
func TestWindowProperty(t *testing.T) {
	f := func(n8 uint8, vals []uint8) bool {
		n := int(n8%10) + 1
		w := NewWindow(n)
		hist := []uint32{}
		for _, v := range vals {
			w.Push(uint32(v))
			hist = append(hist, uint32(v))
			var want uint64
			start := len(hist) - n
			if start < 0 {
				start = 0
			}
			for _, x := range hist[start:] {
				want += uint64(x)
			}
			if w.Sum() != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(6)), MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIdleTracker(t *testing.T) {
	it := NewIdleTracker(100)
	// busy, idle x3, busy, idle x2 (trailing)
	it.Record(true)
	it.Record(false)
	it.Record(false)
	it.Record(false)
	it.Record(true)
	it.Record(false)
	it.Record(false)
	it.Flush()
	h := it.Periods()
	if h.Count() != 2 {
		t.Fatalf("periods = %d, want 2", h.Count())
	}
	if h.Bucket(3) != 1 || h.Bucket(2) != 1 {
		t.Error("period lengths wrong")
	}
	if it.IdleCycles() != 5 || it.BusyCycles() != 2 {
		t.Errorf("idle=%d busy=%d", it.IdleCycles(), it.BusyCycles())
	}
	if f := it.IdleFraction(); f != 5.0/7.0 {
		t.Errorf("idle fraction = %v", f)
	}
	// Double flush is harmless.
	it.Flush()
	if h.Count() != 2 {
		t.Error("double flush added a period")
	}
}

func TestIdleTrackerEmpty(t *testing.T) {
	it := NewIdleTracker(10)
	if it.IdleFraction() != 0 {
		t.Error("empty tracker idle fraction should be 0")
	}
}

func TestNoCCollector(t *testing.T) {
	n := NewNoC(512)
	n.Cycles = 1000
	n.RouterOnCycles = 9000
	n.RouterOffCycles = 6000
	n.RouterWakingCycles = 1000
	n.Wakeups = 42
	n.FlitsDelivered = 3200
	n.PacketLatency.Add(10)
	n.PacketLatency.Add(20)
	n.IdleCycles = 7000
	n.BusyCycles = 3000

	if n.AvgPacketLatency() != 15 {
		t.Errorf("latency = %v", n.AvgPacketLatency())
	}
	if n.Throughput(16) != 0.2 {
		t.Errorf("throughput = %v", n.Throughput(16))
	}
	if n.Throughput(0) != 0 {
		t.Error("zero-node throughput should be 0")
	}
	if n.IdleFraction() != 0.7 {
		t.Errorf("idle fraction = %v", n.IdleFraction())
	}
	if n.OffFraction() != 6000.0/16000.0 {
		t.Errorf("off fraction = %v", n.OffFraction())
	}

	pc := n.PowerCounts(16, 48, true, true)
	if pc.RouterOnCycles != 10000 {
		t.Errorf("waking cycles should count as on: %d", pc.RouterOnCycles)
	}
	if pc.Wakeups != 42 || !pc.HasBypass || !pc.HasPGController {
		t.Error("power counts not propagated")
	}
}

func TestNoCCollectorEmpty(t *testing.T) {
	n := NewNoC(10)
	if n.IdleFraction() != 0 || n.OffFraction() != 0 || n.Throughput(16) != 0 {
		t.Error("empty collector should report zeros")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Errorf("keys = %v", keys)
	}
}
