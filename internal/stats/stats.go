// Package stats provides the measurement machinery of the simulator:
// scalar samples, integer histograms (idle-period distributions vs the
// breakeven time, Section 3.2), sliding windows (the NoRD VC-request
// wakeup metric, Section 4.3), per-router idle trackers, and the
// aggregated NoC collector the experiments consume.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates a scalar statistic.
type Sample struct {
	N        uint64
	Sum      float64
	Min, Max float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.N == 0 || v < s.Min {
		s.Min = v
	}
	if s.N == 0 || v > s.Max {
		s.Max = v
	}
	s.N++
	s.Sum += v
}

// Mean returns the average of the recorded observations (0 when empty).
func (s *Sample) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Merge folds another sample into this one.
func (s *Sample) Merge(o Sample) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.N += o.N
	s.Sum += o.Sum
}

// Reset clears the sample for reuse.
func (s *Sample) Reset() { *s = Sample{} }

// String implements fmt.Stringer.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.0f max=%.0f", s.N, s.Mean(), s.Min, s.Max)
}

// Histogram counts non-negative integer observations. Values at or above
// the bucket count land in an overflow bucket but still contribute
// exactly to Count and Sum.
type Histogram struct {
	buckets  []uint64
	overflow uint64
	count    uint64
	sum      uint64
	max      uint64
}

// NewHistogram returns a histogram with the given number of unit-width
// buckets [0,1), [1,2), ...
func NewHistogram(buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	return &Histogram{buckets: make([]uint64, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(v uint64) {
	if v < uint64(len(h.buckets)) {
		h.buckets[v]++
	} else {
		h.overflow++
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the average observation.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// CountLE returns how many observations were <= x. Observations in the
// overflow bucket are assumed > x whenever x is below the bucket range,
// which is exact for the idle-vs-BET use (BET << bucket count).
func (h *Histogram) CountLE(x uint64) uint64 {
	var n uint64
	limit := x
	if limit >= uint64(len(h.buckets)) {
		limit = uint64(len(h.buckets)) - 1
	}
	for v := uint64(0); v <= limit; v++ {
		n += h.buckets[v]
	}
	if x >= uint64(len(h.buckets)) {
		// All overflow observations might exceed x; they are counted
		// only if x covers the recorded maximum.
		if x >= h.max {
			n += h.overflow
		}
	}
	return n
}

// FracLE returns the fraction of observations <= x (0 when empty).
func (h *Histogram) FracLE(x uint64) float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.CountLE(x)) / float64(h.count)
}

// Bucket returns the count of observations with value v (0 if v is in the
// overflow range).
func (h *Histogram) Bucket(v uint64) uint64 {
	if v < uint64(len(h.buckets)) {
		return h.buckets[v]
	}
	return 0
}

// Overflow returns the count of observations beyond the bucket range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Merge folds another histogram into this one. The receiving histogram
// keeps its bucket count; out-of-range buckets fold into overflow.
func (h *Histogram) Merge(o *Histogram) {
	for v, n := range o.buckets {
		if n == 0 {
			continue
		}
		if v < len(h.buckets) {
			h.buckets[v] += n
		} else {
			h.overflow += n
		}
	}
	h.overflow += o.overflow
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears the histogram for reuse, keeping its bucket allocation.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.overflow = 0
	h.count = 0
	h.sum = 0
	h.max = 0
}

// Percentile returns the smallest value v such that at least p (0..1) of
// the observations are <= v. Overflow observations report the maximum.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for v, n := range h.buckets {
		cum += n
		if cum >= target {
			return uint64(v)
		}
	}
	return h.max
}

// Window is a fixed-length sliding window over per-cycle integer counts,
// used for the NoRD wakeup metric: "the number of VC requests at the
// local NI over a period of time (10 cycles)".
type Window struct {
	slots []uint32
	head  int
	sum   uint64
}

// NewWindow returns a window of the given length in cycles.
func NewWindow(n int) *Window {
	if n < 1 {
		n = 1
	}
	return &Window{slots: make([]uint32, n)}
}

// Push appends the current cycle's count, evicting the oldest.
func (w *Window) Push(v uint32) {
	if v == 0 && w.sum == 0 {
		// The sum equals the slot total, so every slot is already zero:
		// pushing another zero leaves the window unchanged and the head
		// position is unobservable.
		return
	}
	w.sum -= uint64(w.slots[w.head])
	w.slots[w.head] = v
	w.sum += uint64(v)
	w.head++
	if w.head == len(w.slots) {
		w.head = 0
	}
}

// Sum returns the windowed total.
func (w *Window) Sum() uint64 { return w.sum }

// Reset clears the window.
func (w *Window) Reset() {
	for i := range w.slots {
		w.slots[i] = 0
	}
	w.sum = 0
	w.head = 0
}

// IdleTracker builds the idle-period length distribution of one router.
// A period is a maximal run of consecutive idle cycles; the paper's BET
// analysis (Section 3.2) reports the fraction of periods at or below the
// breakeven time.
type IdleTracker struct {
	hist      *Histogram
	idleRun   uint64
	idleTotal uint64
	busyTotal uint64
}

// NewIdleTracker returns a tracker with periods binned up to maxPeriod.
func NewIdleTracker(maxPeriod int) *IdleTracker {
	return &IdleTracker{hist: NewHistogram(maxPeriod)}
}

// Record notes one cycle's state.
func (it *IdleTracker) Record(busy bool) {
	if busy {
		if it.idleRun > 0 {
			it.hist.Add(it.idleRun)
			it.idleRun = 0
		}
		it.busyTotal++
	} else {
		it.idleRun++
		it.idleTotal++
	}
}

// RecordRun notes n consecutive cycles of the same state in one step,
// exactly equivalent to n successive Record(busy) calls. The event-sparse
// kernel uses it to account a whole dormant stretch when a sleeping
// router is re-activated.
func (it *IdleTracker) RecordRun(busy bool, n uint64) {
	if n == 0 {
		return
	}
	if busy {
		if it.idleRun > 0 {
			it.hist.Add(it.idleRun)
			it.idleRun = 0
		}
		it.busyTotal += n
	} else {
		it.idleRun += n
		it.idleTotal += n
	}
}

// Flush closes a trailing idle period at the end of simulation.
func (it *IdleTracker) Flush() {
	if it.idleRun > 0 {
		it.hist.Add(it.idleRun)
		it.idleRun = 0
	}
}

// Periods returns the idle-period histogram (call Flush first).
func (it *IdleTracker) Periods() *Histogram { return it.hist }

// IdleFraction returns the fraction of recorded cycles that were idle.
func (it *IdleTracker) IdleFraction() float64 {
	total := it.idleTotal + it.busyTotal
	if total == 0 {
		return 0
	}
	return float64(it.idleTotal) / float64(total)
}

// IdleCycles and BusyCycles return the raw totals.
func (it *IdleTracker) IdleCycles() uint64 { return it.idleTotal }

// BusyCycles returns the number of busy cycles recorded.
func (it *IdleTracker) BusyCycles() uint64 { return it.busyTotal }

// SortedKeys returns map keys in sorted order, for deterministic report
// printing.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
