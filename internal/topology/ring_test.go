package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRing4x4MatchesPaperSerpentine(t *testing.T) {
	m := MustMesh(4, 4)
	r, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 7, 6, 5, 9, 10, 11, 15, 14, 13, 12, 8, 4}
	got := r.Order()
	if len(got) != len(want) {
		t.Fatalf("ring length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ring order %v, want %v", got, want)
		}
	}
	// The paper's detour example traverses 13 -> 12 -> 8 on the ring.
	if r.Succ(13) != 12 || r.Succ(12) != 8 {
		t.Errorf("expected ring path 13->12->8, got 13->%d, 12->%d", r.Succ(13), r.Succ(12))
	}
}

func checkHamiltonian(t *testing.T, m Mesh, r *Ring) {
	t.Helper()
	n := m.N()
	seen := make(map[int]bool, n)
	cur := r.Order()[0]
	for i := 0; i < n; i++ {
		if seen[cur] {
			t.Fatalf("ring revisits node %d", cur)
		}
		seen[cur] = true
		next := r.Succ(cur)
		if _, err := m.DirTo(cur, next); err != nil {
			t.Fatalf("ring uses non-mesh link %d->%d", cur, next)
		}
		if r.Pred(next) != cur {
			t.Fatalf("pred/succ mismatch at %d->%d", cur, next)
		}
		cur = next
	}
	if cur != r.Order()[0] {
		t.Fatalf("ring does not close: ended at %d", cur)
	}
	if len(seen) != n {
		t.Fatalf("ring visits %d of %d nodes", len(seen), n)
	}
}

func TestRingIsHamiltonianCycle(t *testing.T) {
	sizes := [][2]int{{2, 2}, {4, 4}, {8, 8}, {3, 4}, {4, 3}, {5, 4}, {4, 5}, {6, 2}, {2, 6}, {7, 2}}
	for _, wh := range sizes {
		m := MustMesh(wh[0], wh[1])
		r, err := NewRing(m)
		if err != nil {
			t.Errorf("%dx%d: %v", wh[0], wh[1], err)
			continue
		}
		checkHamiltonian(t, m, r)
	}
}

func TestRingOddOddImpossible(t *testing.T) {
	for _, wh := range [][2]int{{3, 3}, {5, 5}, {3, 5}} {
		if _, err := NewRing(MustMesh(wh[0], wh[1])); err == nil {
			t.Errorf("NewRing(%dx%d) should fail (odd x odd grid has no Hamiltonian cycle)", wh[0], wh[1])
		}
	}
}

// Property: for random even-dimension meshes the comb ring is a valid
// Hamiltonian cycle with consistent port directions.
func TestRingProperty(t *testing.T) {
	f := func(w8, h8 uint8) bool {
		w := int(w8%6) + 2
		h := int(h8%6) + 2
		if w%2 == 1 && h%2 == 1 {
			h++ // make feasible
		}
		m := MustMesh(w, h)
		r, err := NewRing(m)
		if err != nil {
			return false
		}
		for v := 0; v < m.N(); v++ {
			s := r.Succ(v)
			d, err := m.DirTo(v, s)
			if err != nil || r.OutDir(v) != d || r.InDir(s) != d.Opposite() {
				return false
			}
			if r.RingDist(v, s) != 1 {
				return false
			}
			if r.RingDist(v, v) != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(4)), MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRingDateline(t *testing.T) {
	m := MustMesh(4, 4)
	r, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	crossings := 0
	for v := 0; v < m.N(); v++ {
		if r.CrossesDateline(v) {
			crossings++
			if r.Succ(v) != r.Order()[0] {
				t.Errorf("dateline crossing at %d does not lead to ring origin", v)
			}
		}
	}
	if crossings != 1 {
		t.Errorf("found %d dateline crossings, want exactly 1", crossings)
	}
}

func TestRingFromOrderValidation(t *testing.T) {
	m := MustMesh(2, 2)
	if _, err := RingFromOrder(m, []int{0, 1, 3}); err == nil {
		t.Error("short order should fail")
	}
	if _, err := RingFromOrder(m, []int{0, 1, 1, 2}); err == nil {
		t.Error("duplicate node should fail")
	}
	if _, err := RingFromOrder(m, []int{0, 3, 1, 2}); err == nil {
		t.Error("non-adjacent step should fail")
	}
	if _, err := RingFromOrder(m, []int{0, 1, 3, 99}); err == nil {
		t.Error("invalid node should fail")
	}
	r, err := RingFromOrder(m, []int{0, 1, 3, 2})
	if err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
	checkHamiltonian(t, m, r)
}

func TestRingDist(t *testing.T) {
	m := MustMesh(4, 4)
	r, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	// Full loop distance from a node back to itself is 0; to predecessor
	// is N-1.
	for v := 0; v < m.N(); v++ {
		if d := r.RingDist(v, r.Pred(v)); d != m.N()-1 {
			t.Errorf("RingDist(%d, pred) = %d, want %d", v, d, m.N()-1)
		}
	}
}
