// Package topology models the 2D mesh used by the paper, the chip-wide
// unidirectional bypass ring that NoRD threads through every router
// (Section 4.2, Figure 4a), and the offline Floyd-Warshall planner used to
// select performance-centric routers (Section 4.4, Figure 6).
package topology

import "fmt"

// Dir identifies a router port direction in the mesh. Local is the port
// connecting the router to its node's network interface.
type Dir uint8

const (
	East Dir = iota
	West
	North
	South
	Local
	// NumDirs is the number of router ports (4 mesh + 1 local).
	NumDirs = 5
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	switch d {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	case Local:
		return "L"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// Opposite returns the facing direction (the input port a flit sent on
// output d arrives at). Only the four grid directions have an opposite;
// anything else — Local or a corrupted value — panics, so a bad port
// table surfaces immediately instead of silently mis-delivering flits to
// a node's local port.
func (d Dir) Opposite() Dir {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	default:
		panic(fmt.Sprintf("topology: direction %v has no opposite", d))
	}
}

// Mesh is a W x H 2D mesh. Node IDs are assigned row-major: node
// row*W + col, with row 0 at the top (North) edge, matching Figure 4(a).
type Mesh struct {
	W, H int
}

// NewMesh returns a mesh of the given dimensions. Width and height must be
// at least 2 (the bypass ring needs a Hamiltonian cycle, and the paper
// evaluates 4x4 and 8x8).
func NewMesh(w, h int) (Mesh, error) {
	if w < 2 || h < 2 {
		return Mesh{}, fmt.Errorf("topology: mesh must be at least 2x2, got %dx%d", w, h)
	}
	return Mesh{W: w, H: h}, nil
}

// MustMesh is NewMesh that panics on invalid dimensions; for tests and
// internal construction from validated configuration.
func MustMesh(w, h int) Mesh {
	m, err := NewMesh(w, h)
	if err != nil {
		panic(err)
	}
	return m
}

// N returns the number of nodes.
func (m Mesh) N() int { return m.W * m.H }

// Coord returns the (col, row) coordinate of node id.
func (m Mesh) Coord(id int) (x, y int) { return id % m.W, id / m.W }

// ID returns the node id at (col, row).
func (m Mesh) ID(x, y int) int { return y*m.W + x }

// Valid reports whether id names a node of the mesh.
func (m Mesh) Valid(id int) bool { return id >= 0 && id < m.N() }

// Neighbor returns the node adjacent to id in direction d, and whether it
// exists (edge routers lack some neighbors). Direction Local has no
// neighbor.
func (m Mesh) Neighbor(id int, d Dir) (int, bool) {
	x, y := m.Coord(id)
	switch d {
	case East:
		x++
	case West:
		x--
	case North:
		y--
	case South:
		y++
	default:
		return -1, false
	}
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		return -1, false
	}
	return m.ID(x, y), true
}

// DirTo returns the direction of the mesh link from a to b, which must be
// adjacent.
func (m Mesh) DirTo(a, b int) (Dir, error) {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	switch {
	case bx == ax+1 && by == ay:
		return East, nil
	case bx == ax-1 && by == ay:
		return West, nil
	case bx == ax && by == ay-1:
		return North, nil
	case bx == ax && by == ay+1:
		return South, nil
	}
	return Local, fmt.Errorf("topology: nodes %d and %d are not adjacent", a, b)
}

// HopDist returns the Manhattan distance between two nodes.
func (m Mesh) HopDist(a, b int) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// MinimalDirs returns the mesh directions that make progress from src
// toward dst (0, 1 or 2 directions; empty when src == dst).
func (m Mesh) MinimalDirs(src, dst int) []Dir {
	var out []Dir
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)
	if dx > sx {
		out = append(out, East)
	} else if dx < sx {
		out = append(out, West)
	}
	if dy > sy {
		out = append(out, South)
	} else if dy < sy {
		out = append(out, North)
	}
	return out
}

// XYDir returns the next direction under dimension-order (XY) routing from
// src to dst, or Local if src == dst. XY routing resolves the X dimension
// completely before Y and is deadlock-free on a mesh, so conventional
// designs use it on their escape virtual channel.
func (m Mesh) XYDir(src, dst int) Dir {
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)
	switch {
	case dx > sx:
		return East
	case dx < sx:
		return West
	case dy > sy:
		return South
	case dy < sy:
		return North
	default:
		return Local
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ---------------------------------------------------------------------
// Topology interface methods. Mesh is the reference implementation: no
// wrap links, one escape VC, one terminal per router.

var _ Topology = Mesh{}

// Kind identifies the topology family.
func (m Mesh) Kind() Kind { return KindMesh }

// Grid returns the router-grid dimensions.
func (m Mesh) Grid() (w, h int) { return m.W, m.H }

// MinimalSet is MinimalDirs without the allocation.
func (m Mesh) MinimalSet(src, dst int) DirSet {
	var out DirSet
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)
	if dx > sx {
		out.Add(East)
	} else if dx < sx {
		out.Add(West)
	}
	if dy > sy {
		out.Add(South)
	} else if dy < sy {
		out.Add(North)
	}
	return out
}

// WrapLink reports whether (id, d) is a wraparound link; a mesh has none.
func (m Mesh) WrapLink(id int, d Dir) bool { return false }

// EscapeVCs returns the escape VCs XY routing needs on a mesh: one.
func (m Mesh) EscapeVCs() int { return 1 }

// NumLinks returns the number of directed router-to-router links.
func (m Mesh) NumLinks() int { return 2 * (m.W*(m.H-1) + m.H*(m.W-1)) }

// LinkLengthFactor returns the link length relative to a mesh link: 1.
func (m Mesh) LinkLengthFactor() float64 { return 1.0 }

// Concentration returns the terminals per router: one.
func (m Mesh) Concentration() int { return 1 }

// Terminals returns the terminal grid: the router grid itself.
func (m Mesh) Terminals() Mesh { return m }

// TerminalRouter maps a terminal to its router: the identity.
func (m Mesh) TerminalRouter(t int) int { return t }
