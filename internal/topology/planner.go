package topology

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Planner implements the offline program of Section 4.4: given a topology, its
// bypass ring, and a candidate set of powered-on routers, it evaluates the
// best achievable average node-to-node distance (hops) and average per-hop
// latency (cycles) using Floyd-Warshall all-pairs shortest paths
// (Figure 6), and searches for the performance-centric router set.
//
// Edge admissibility mirrors NoRD connectivity: a link u->v is usable iff
//   - v is powered on (flit enters v's normal pipeline), or
//   - v is powered off and u is v's ring predecessor (flit enters v's
//     Bypass Inport and is forwarded through v's NI).
//
// Additionally a powered-off u can only emit flits on its Bypass Outport.
// Traversing a powered-on router costs PipeOnCycles per hop; bypassing a
// powered-off router costs PipeBypassCycles (2-cycle bypass + 1 LT versus
// the 4-stage pipeline + 1 LT, Section 6.8).
type Planner struct {
	Topo Topology
	Ring *Ring
	// PipeOnCycles is the per-hop latency through a powered-on router
	// (default 5: 4 pipeline stages + link traversal).
	PipeOnCycles int
	// PipeBypassCycles is the per-hop latency through a gated-off
	// router's NI bypass (default 3: 2 bypass stages + link traversal).
	PipeBypassCycles int
}

// NewPlanner returns a planner with the paper's default per-hop costs.
func NewPlanner(t Topology, r *Ring) *Planner {
	return &Planner{Topo: t, Ring: r, PipeOnCycles: 5, PipeBypassCycles: 3}
}

// Eval computes the average node-to-node distance in hops and the average
// per-hop latency in cycles over all ordered node pairs, given the set of
// powered-on routers. It returns an error only if some pair is unreachable,
// which cannot happen for a valid ring (the ring connects everything).
func (p *Planner) Eval(on []bool) (avgHops, perHopCycles float64, err error) {
	n := p.Topo.N()
	if len(on) != n {
		return 0, 0, fmt.Errorf("topology: on-set has %d entries, topology has %d nodes", len(on), n)
	}
	const inf = math.MaxInt32
	// cost[u][v]: cycles; hop[u][v]: hops along the min-cycle path.
	cost := make([][]int32, n)
	hops := make([][]int32, n)
	for u := 0; u < n; u++ {
		cost[u] = make([]int32, n)
		hops[u] = make([]int32, n)
		for v := 0; v < n; v++ {
			if u != v {
				cost[u][v] = inf
			}
		}
	}
	edge := func(u, v int) {
		var c int32
		if on[v] {
			c = int32(p.PipeOnCycles)
		} else {
			if p.Ring.Pred(v) != u {
				return // off router accepts flits only on its Bypass Inport
			}
			c = int32(p.PipeBypassCycles)
		}
		if c < cost[u][v] {
			cost[u][v] = c
			hops[u][v] = 1
		}
	}
	for u := 0; u < n; u++ {
		if on[u] {
			for d := East; d < Local; d++ {
				if v, ok := p.Topo.Neighbor(u, d); ok {
					edge(u, v)
				}
			}
		} else {
			// A gated-off router can only emit on its Bypass Outport.
			edge(u, p.Ring.Succ(u))
		}
	}
	for k := 0; k < n; k++ {
		ck := cost[k]
		hk := hops[k]
		for u := 0; u < n; u++ {
			cuk := cost[u][k]
			if cuk == inf {
				continue
			}
			cu := cost[u]
			hu := hops[u]
			huk := hu[k]
			for v := 0; v < n; v++ {
				if ck[v] == inf {
					continue
				}
				if nc := cuk + ck[v]; nc < cu[v] {
					cu[v] = nc
					hu[v] = huk + hk[v]
				}
			}
		}
	}
	var totalHops, totalCycles int64
	pairs := 0
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if cost[u][v] == inf {
				return 0, 0, fmt.Errorf("topology: node %d unreachable from %d", v, u)
			}
			totalCycles += int64(cost[u][v])
			totalHops += int64(hops[u][v])
			pairs++
		}
	}
	avgHops = float64(totalHops) / float64(pairs)
	perHopCycles = float64(totalCycles) / float64(totalHops)
	return avgHops, perHopCycles, nil
}

// TradeoffPoint is one point of the Figure 6 curve: with K routers
// powered on, the best achievable average distance and the per-hop latency
// of that configuration.
type TradeoffPoint struct {
	K            int
	OnSet        []int
	AvgHops      float64
	PerHopCycles float64
}

// Tradeoff computes the Figure 6 curve for K = 0..N powered-on routers.
// For networks up to 16 nodes the best on-set per K is found exhaustively
// (as the paper's offline program can); for larger networks a greedy
// forward-selection is used. The returned points are ordered by K.
func (p *Planner) Tradeoff() ([]TradeoffPoint, error) {
	n := p.Topo.N()
	if n <= 16 {
		return p.tradeoffExhaustive()
	}
	return p.tradeoffGreedy()
}

func (p *Planner) tradeoffExhaustive() ([]TradeoffPoint, error) {
	n := p.Topo.N()
	best := make([]TradeoffPoint, n+1)
	for k := range best {
		best[k] = TradeoffPoint{K: k, AvgHops: math.Inf(1)}
	}
	on := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		k := bits.OnesCount(uint(mask))
		for v := 0; v < n; v++ {
			on[v] = mask&(1<<v) != 0
		}
		h, c, err := p.Eval(on)
		if err != nil {
			return nil, err
		}
		if h < best[k].AvgHops || (h == best[k].AvgHops && c < best[k].PerHopCycles) {
			best[k] = TradeoffPoint{K: k, OnSet: maskToSet(mask), AvgHops: h, PerHopCycles: c}
		}
	}
	return best, nil
}

func (p *Planner) tradeoffGreedy() ([]TradeoffPoint, error) {
	n := p.Topo.N()
	on := make([]bool, n)
	h, c, err := p.Eval(on)
	if err != nil {
		return nil, err
	}
	points := []TradeoffPoint{{K: 0, AvgHops: h, PerHopCycles: c}}
	chosen := make([]int, 0, n)
	for k := 1; k <= n; k++ {
		bestV, bestH, bestC := -1, math.Inf(1), math.Inf(1)
		for v := 0; v < n; v++ {
			if on[v] {
				continue
			}
			on[v] = true
			h, c, err := p.Eval(on)
			on[v] = false
			if err != nil {
				return nil, err
			}
			if h < bestH || (h == bestH && c < bestC) {
				bestV, bestH, bestC = v, h, c
			}
		}
		on[bestV] = true
		chosen = append(chosen, bestV)
		set := append([]int(nil), chosen...)
		sort.Ints(set)
		points = append(points, TradeoffPoint{K: k, OnSet: set, AvgHops: bestH, PerHopCycles: bestC})
	}
	return points, nil
}

// GreedySet grows a performance-centric set of exactly k routers by
// greedy forward-selection (adding whichever router most reduces the
// average distance), without evaluating the full trade-off curve. For
// networks beyond the exhaustive planner's reach this is the practical way
// to pick the Section 4.4 class.
func (p *Planner) GreedySet(k int) ([]int, error) {
	n := p.Topo.N()
	if k < 0 || k > n {
		return nil, fmt.Errorf("topology: greedy set size %d out of range [0,%d]", k, n)
	}
	on := make([]bool, n)
	chosen := make([]int, 0, k)
	for len(chosen) < k {
		bestV, bestH, bestC := -1, math.Inf(1), math.Inf(1)
		for v := 0; v < n; v++ {
			if on[v] {
				continue
			}
			on[v] = true
			h, c, err := p.Eval(on)
			on[v] = false
			if err != nil {
				return nil, err
			}
			if h < bestH || (h == bestH && c < bestC) {
				bestV, bestH, bestC = v, h, c
			}
		}
		on[bestV] = true
		chosen = append(chosen, bestV)
	}
	sort.Ints(chosen)
	return chosen, nil
}

// PerformanceCentric selects the K-router performance-centric class for
// asymmetric wakeup thresholds (Section 4.4). For the paper's 4x4 example
// K=6 is the knee of the Figure 6 curve.
func (p *Planner) PerformanceCentric(k int) ([]int, error) {
	n := p.Topo.N()
	if k < 0 || k > n {
		return nil, fmt.Errorf("topology: performance-centric set size %d out of range [0,%d]", k, n)
	}
	pts, err := p.Tradeoff()
	if err != nil {
		return nil, err
	}
	set := append([]int(nil), pts[k].OnSet...)
	sort.Ints(set)
	return set, nil
}

// Knee picks the K whose point maximises the distance-reduction per
// latency-increase trade-off: the largest K such that adding routers past
// it improves average distance by less than minGain hops. It is a simple
// automated stand-in for the paper's visual selection of 6 routers.
func Knee(points []TradeoffPoint, minGain float64) int {
	for k := 1; k < len(points); k++ {
		if points[k-1].AvgHops-points[k].AvgHops < minGain {
			return k - 1
		}
	}
	return len(points) - 1
}

func maskToSet(mask int) []int {
	var out []int
	for v := 0; mask != 0; v, mask = v+1, mask>>1 {
		if mask&1 != 0 {
			out = append(out, v)
		}
	}
	return out
}
