package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// allTopos builds one instance of every topology kind over a grid.
func allTopos(t *testing.T, w, h int) []Topology {
	t.Helper()
	out := []Topology{MustMesh(w, h), MustTorus(w, h)}
	c, err := NewCMesh(w, h)
	if err == nil {
		out = append(out, c)
	}
	return out
}

func TestKindByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Kind
	}{{"", KindMesh}, {"mesh", KindMesh}, {"torus", KindTorus}, {"cmesh", KindCMesh}, {"concentrated_mesh", KindCMesh}} {
		got, err := KindByName(tc.name)
		if err != nil || got != tc.want {
			t.Errorf("KindByName(%q) = %v, %v; want %v", tc.name, got, err, tc.want)
		}
	}
	if _, err := KindByName("hypercube"); err == nil {
		t.Error("KindByName(hypercube) should fail")
	}
	for _, name := range KindNames() {
		k, err := KindByName(name)
		if err != nil || k.String() != name {
			t.Errorf("KindNames entry %q does not round-trip (%v, %v)", name, k, err)
		}
	}
}

// TestLinkSymmetry is the satellite property test: for every topology and
// every wired (node, dir) link — torus wrap links included — the link is
// symmetric: Neighbor(Neighbor(n,d), Opposite(d)) == n, and DirTo agrees
// with the port map in both directions.
func TestLinkSymmetry(t *testing.T) {
	f := func(w8, h8 uint16) bool {
		w := int(w8%6) + 2
		h := int(h8%6) + 2
		for _, topo := range allTopos(t, w, h) {
			for id := 0; id < topo.N(); id++ {
				for d := East; d < Local; d++ {
					nb, ok := topo.Neighbor(id, d)
					if !ok {
						if topo.Kind() == KindTorus {
							t.Errorf("%v %dx%d: torus node %d lacks %v", topo.Kind(), w, h, id, d)
							return false
						}
						continue
					}
					back, ok2 := topo.Neighbor(nb, d.Opposite())
					if !ok2 || back != id {
						t.Errorf("%v %dx%d: Neighbor(Neighbor(%d,%v)=%d, %v) = %d,%v; want %d",
							topo.Kind(), w, h, id, d, nb, d.Opposite(), back, ok2, id)
						return false
					}
					if _, err := topo.DirTo(id, nb); err != nil {
						t.Errorf("%v %dx%d: DirTo(%d,%d) failed for wired link: %v", topo.Kind(), w, h, id, nb, err)
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(11)), MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMinimalProgress: on every topology, each minimal direction reduces
// HopDist by exactly one, XY routing terminates in exactly HopDist steps,
// and MinimalSet agrees with MinimalDirs.
func TestMinimalProgress(t *testing.T) {
	f := func(w8, h8, s16, d16 uint16) bool {
		w := int(w8%6) + 2
		h := int(h8%6) + 2
		for _, topo := range allTopos(t, w, h) {
			src := int(s16) % topo.N()
			dst := int(d16) % topo.N()
			set := topo.MinimalSet(src, dst)
			dirs := topo.MinimalDirs(src, dst)
			if int(set.Cnt) != len(dirs) {
				t.Errorf("%v: MinimalSet count %d != MinimalDirs %v", topo.Kind(), set.Cnt, dirs)
				return false
			}
			for i := uint8(0); i < set.Cnt; i++ {
				d := set.Dirs[i]
				if dirs[i] != d {
					t.Errorf("%v: MinimalSet[%d]=%v != MinimalDirs %v", topo.Kind(), i, d, dirs)
					return false
				}
				nb, ok := topo.Neighbor(src, d)
				if !ok || topo.HopDist(nb, dst) != topo.HopDist(src, dst)-1 {
					t.Errorf("%v %dx%d: minimal dir %v from %d to %d does not reduce distance", topo.Kind(), w, h, d, src, dst)
					return false
				}
			}
			cur, steps := src, 0
			for cur != dst {
				d := topo.XYDir(cur, dst)
				nb, ok := topo.Neighbor(cur, d)
				if !ok {
					t.Errorf("%v: XYDir(%d,%d)=%v is not wired", topo.Kind(), cur, dst, d)
					return false
				}
				cur = nb
				steps++
				if steps > topo.N() {
					t.Errorf("%v %dx%d: XY routing %d->%d did not terminate", topo.Kind(), w, h, src, dst)
					return false
				}
			}
			if steps != topo.HopDist(src, dst) {
				t.Errorf("%v %dx%d: XY %d->%d took %d steps, HopDist %d", topo.Kind(), w, h, src, dst, steps, topo.HopDist(src, dst))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(12)), MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTorusWrapLinks: wrap links sit exactly on the grid boundary, and a
// minimally-routed packet crosses each dimension's dateline at most once —
// the invariant that lets the 2-VC dateline discipline stay deadlock-free
// (a packet that crossed can never need the pre-dateline VC class again
// within the dimension).
func TestTorusWrapLinks(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 3}, {4, 4}, {5, 3}, {4, 7}} {
		tor := MustTorus(dims[0], dims[1])
		wraps := 0
		for id := 0; id < tor.N(); id++ {
			x, y := tor.Coord(id)
			for d := East; d < Local; d++ {
				isWrap := tor.WrapLink(id, d)
				wantWrap := (d == East && x == tor.W-1) || (d == West && x == 0) ||
					(d == North && y == 0) || (d == South && y == tor.H-1)
				if isWrap != wantWrap {
					t.Errorf("%dx%d torus: WrapLink(%d,%v) = %v, want %v", tor.W, tor.H, id, d, isWrap, wantWrap)
				}
				if isWrap {
					wraps++
				}
			}
		}
		if want := 2*tor.W + 2*tor.H; wraps != want {
			t.Errorf("%dx%d torus has %d wrap links, want %d", tor.W, tor.H, wraps, want)
		}
		// Dateline-crossing bound along XY paths.
		for src := 0; src < tor.N(); src++ {
			for dst := 0; dst < tor.N(); dst++ {
				crossX, crossY := 0, 0
				cur := src
				for cur != dst {
					d := tor.XYDir(cur, dst)
					if tor.WrapLink(cur, d) {
						if d == East || d == West {
							crossX++
						} else {
							crossY++
						}
					}
					cur, _ = tor.Neighbor(cur, d)
				}
				if crossX > 1 || crossY > 1 {
					t.Fatalf("%dx%d torus: XY %d->%d crosses datelines X=%d Y=%d (max 1 each)",
						tor.W, tor.H, src, dst, crossX, crossY)
				}
			}
		}
	}
}

// TestTorusMeshDisagree: sanity that the torus actually uses its wrap
// links — corner-to-corner distance collapses to 2 hops.
func TestTorusMeshDisagree(t *testing.T) {
	tor := MustTorus(4, 4)
	m := MustMesh(4, 4)
	if got, want := tor.HopDist(0, 15), 2; got != want {
		t.Errorf("torus HopDist(0,15) = %d, want %d", got, want)
	}
	if got, want := m.HopDist(0, 15), 6; got != want {
		t.Errorf("mesh HopDist(0,15) = %d, want %d", got, want)
	}
	// Neighbor wraps: node 0 West -> node 3, North -> node 12.
	if nb, ok := tor.Neighbor(0, West); !ok || nb != 3 {
		t.Errorf("torus Neighbor(0,W) = %d,%v; want 3", nb, ok)
	}
	if nb, ok := tor.Neighbor(0, North); !ok || nb != 12 {
		t.Errorf("torus Neighbor(0,N) = %d,%v; want 12", nb, ok)
	}
	if tor.NumLinks() != 64 {
		t.Errorf("4x4 torus NumLinks = %d, want 64", tor.NumLinks())
	}
	if tor.EscapeVCs() != 2 || m.EscapeVCs() != 1 {
		t.Error("escape VC counts: torus wants 2, mesh wants 1")
	}
}

// TestRingOnTorus: even grids reuse the comb cycle byte-for-byte (NoRD's
// ring is topology-stable there); odd x odd grids — impossible on a mesh —
// close a Hamiltonian cycle through the wrap links.
func TestRingOnTorus(t *testing.T) {
	meshRing, err := NewRing(MustMesh(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	torusRing, err := NewRing(MustTorus(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range meshRing.Order() {
		if torusRing.Order()[i] != v {
			t.Fatalf("even-grid torus ring diverges from mesh comb at %d: %v vs %v", i, torusRing.Order(), meshRing.Order())
		}
	}
	for _, dims := range [][2]int{{3, 3}, {3, 5}, {5, 3}, {5, 7}, {7, 5}, {9, 9}} {
		tor := MustTorus(dims[0], dims[1])
		r, err := NewRing(tor)
		if err != nil {
			t.Fatalf("%dx%d torus ring: %v", dims[0], dims[1], err)
		}
		// ringFromOrder already validates Hamiltonicity; double-check the
		// succ/pred/port tables are mutually consistent.
		for v := 0; v < tor.N(); v++ {
			s := r.Succ(v)
			if r.Pred(s) != v {
				t.Errorf("%dx%d: pred(succ(%d)) = %d", dims[0], dims[1], v, r.Pred(s))
			}
			nb, ok := tor.Neighbor(v, r.OutDir(v))
			if !ok || nb != s {
				t.Errorf("%dx%d: outDir(%d)=%v does not reach succ %d", dims[0], dims[1], v, r.OutDir(v), s)
			}
			if r.InDir(s) != r.OutDir(v).Opposite() {
				t.Errorf("%dx%d: inDir(%d) inconsistent", dims[0], dims[1], s)
			}
		}
	}
	if _, err := NewRing(MustMesh(3, 3)); err == nil {
		t.Error("odd x odd mesh ring should remain impossible")
	}
	if _, err := NewRing(MustCMesh(3, 3)); err == nil {
		t.Error("odd x odd cmesh ring should remain impossible")
	}
}

// TestCMeshTerminals: the terminal grid is 2W x 2H, every router serves
// exactly C terminals, and the mapping respects 2x2 tiling.
func TestCMeshTerminals(t *testing.T) {
	c := MustCMesh(4, 3)
	if c.Concentration() != 4 {
		t.Fatalf("concentration = %d, want 4", c.Concentration())
	}
	term := c.Terminals()
	if term.W != 8 || term.H != 6 {
		t.Fatalf("terminal grid = %dx%d, want 8x6", term.W, term.H)
	}
	perRouter := make([]int, c.N())
	for tm := 0; tm < term.N(); tm++ {
		r := c.TerminalRouter(tm)
		if !c.Valid(r) {
			t.Fatalf("terminal %d maps to invalid router %d", tm, r)
		}
		perRouter[r]++
		tx, ty := term.Coord(tm)
		rx, ry := c.Coord(r)
		if tx/2 != rx || ty/2 != ry {
			t.Errorf("terminal (%d,%d) maps to router (%d,%d), want (%d,%d)", tx, ty, rx, ry, tx/2, ty/2)
		}
	}
	for r, n := range perRouter {
		if n != 4 {
			t.Errorf("router %d serves %d terminals, want 4", r, n)
		}
	}
	// Mesh and torus terminals are the identity.
	for _, topo := range []Topology{MustMesh(4, 4), MustTorus(4, 4)} {
		if topo.Concentration() != 1 || topo.Terminals().N() != topo.N() {
			t.Errorf("%v: concentration-1 topology must have identity terminals", topo.Kind())
		}
		for i := 0; i < topo.N(); i++ {
			if topo.TerminalRouter(i) != i {
				t.Errorf("%v: TerminalRouter(%d) != %d", topo.Kind(), i, i)
			}
		}
	}
}

// TestPlannerOnTorus: the planner's reachability argument holds on the
// torus too (the ring connects everything even with all routers off).
func TestPlannerOnTorus(t *testing.T) {
	tor := MustTorus(3, 3)
	r, err := NewRing(tor)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(tor, r)
	h, c, err := pl.Eval(make([]bool, tor.N()))
	if err != nil {
		t.Fatalf("all-off eval: %v", err)
	}
	if h <= 0 || c <= 0 {
		t.Errorf("implausible all-off eval: hops %v cycles %v", h, c)
	}
	on := make([]bool, tor.N())
	for i := range on {
		on[i] = true
	}
	hOn, _, err := pl.Eval(on)
	if err != nil {
		t.Fatalf("all-on eval: %v", err)
	}
	if hOn >= h {
		t.Errorf("all-on avg hops %v should beat all-off %v", hOn, h)
	}
}
