package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(1, 4); err == nil {
		t.Error("NewMesh(1,4) should fail")
	}
	if _, err := NewMesh(4, 1); err == nil {
		t.Error("NewMesh(4,1) should fail")
	}
	m, err := NewMesh(4, 4)
	if err != nil {
		t.Fatalf("NewMesh(4,4): %v", err)
	}
	if m.N() != 16 {
		t.Errorf("N() = %d, want 16", m.N())
	}
}

func TestMustMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMesh(0,0) did not panic")
		}
	}()
	MustMesh(0, 0)
}

func TestCoordIDRoundTrip(t *testing.T) {
	m := MustMesh(5, 3)
	for id := 0; id < m.N(); id++ {
		x, y := m.Coord(id)
		if m.ID(x, y) != id {
			t.Errorf("round trip failed for id %d -> (%d,%d)", id, x, y)
		}
	}
}

func TestNeighbor(t *testing.T) {
	m := MustMesh(4, 4)
	// Node 5 = (1,1) has all four neighbors.
	cases := []struct {
		d    Dir
		want int
	}{{East, 6}, {West, 4}, {North, 1}, {South, 9}}
	for _, c := range cases {
		got, ok := m.Neighbor(5, c.d)
		if !ok || got != c.want {
			t.Errorf("Neighbor(5,%v) = %d,%v; want %d,true", c.d, got, ok, c.want)
		}
	}
	// Corner node 0 lacks West and North.
	if _, ok := m.Neighbor(0, West); ok {
		t.Error("node 0 should have no West neighbor")
	}
	if _, ok := m.Neighbor(0, North); ok {
		t.Error("node 0 should have no North neighbor")
	}
	if _, ok := m.Neighbor(0, Local); ok {
		t.Error("Local direction should have no neighbor")
	}
}

func TestDirToAndOpposite(t *testing.T) {
	m := MustMesh(4, 4)
	for id := 0; id < m.N(); id++ {
		for d := East; d < Local; d++ {
			nb, ok := m.Neighbor(id, d)
			if !ok {
				continue
			}
			got, err := m.DirTo(id, nb)
			if err != nil || got != d {
				t.Errorf("DirTo(%d,%d) = %v,%v; want %v", id, nb, got, err, d)
			}
			back, err := m.DirTo(nb, id)
			if err != nil || back != d.Opposite() {
				t.Errorf("DirTo(%d,%d) = %v,%v; want %v", nb, id, back, err, d.Opposite())
			}
		}
	}
	if _, err := m.DirTo(0, 5); err == nil {
		t.Error("DirTo(0,5) on non-adjacent nodes should fail")
	}
}

func TestDirStrings(t *testing.T) {
	names := map[Dir]string{East: "E", West: "W", North: "N", South: "S", Local: "L", Dir(9): "dir(9)"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("Dir(%d).String() = %q, want %q", d, d.String(), want)
		}
	}
}

// TestOppositePanicsOnNonGridDir pins the hardened behavior: Opposite on
// Local (or garbage) must fail loudly, not silently alias the local port.
func TestOppositePanicsOnNonGridDir(t *testing.T) {
	for _, d := range []Dir{Local, Dir(9)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v.Opposite() did not panic", d)
				}
			}()
			_ = d.Opposite()
		}()
	}
	for _, d := range []Dir{East, West, North, South} {
		if d.Opposite().Opposite() != d {
			t.Errorf("%v.Opposite().Opposite() != %v", d, d)
		}
	}
}

func TestHopDist(t *testing.T) {
	m := MustMesh(4, 4)
	if d := m.HopDist(0, 15); d != 6 {
		t.Errorf("HopDist(0,15) = %d, want 6", d)
	}
	if d := m.HopDist(5, 5); d != 0 {
		t.Errorf("HopDist(5,5) = %d, want 0", d)
	}
}

func TestMinimalDirs(t *testing.T) {
	m := MustMesh(4, 4)
	dirs := m.MinimalDirs(0, 15)
	if len(dirs) != 2 {
		t.Fatalf("MinimalDirs(0,15) = %v, want 2 dirs", dirs)
	}
	has := map[Dir]bool{}
	for _, d := range dirs {
		has[d] = true
	}
	if !has[East] || !has[South] {
		t.Errorf("MinimalDirs(0,15) = %v, want {E,S}", dirs)
	}
	if len(m.MinimalDirs(7, 7)) != 0 {
		t.Error("MinimalDirs(7,7) should be empty")
	}
	if ds := m.MinimalDirs(15, 0); len(ds) != 2 || !(ds[0] == West || ds[1] == West) {
		t.Errorf("MinimalDirs(15,0) = %v, want W and N", ds)
	}
}

func TestXYDir(t *testing.T) {
	m := MustMesh(4, 4)
	// XY resolves X before Y.
	if d := m.XYDir(0, 15); d != East {
		t.Errorf("XYDir(0,15) = %v, want East", d)
	}
	if d := m.XYDir(3, 15); d != South {
		t.Errorf("XYDir(3,15) = %v, want South", d)
	}
	if d := m.XYDir(15, 0); d != West {
		t.Errorf("XYDir(15,0) = %v, want West", d)
	}
	if d := m.XYDir(6, 6); d != Local {
		t.Errorf("XYDir(6,6) = %v, want Local", d)
	}
}

// Property: XY routing always reaches the destination in exactly the
// Manhattan distance for random meshes and node pairs.
func TestXYReachesDestination(t *testing.T) {
	f := func(w8, h8, s16, d16 uint16) bool {
		w := int(w8%7) + 2
		h := int(h8%7) + 2
		m := MustMesh(w, h)
		src := int(s16) % m.N()
		dst := int(d16) % m.N()
		cur := src
		steps := 0
		for cur != dst {
			d := m.XYDir(cur, dst)
			nb, ok := m.Neighbor(cur, d)
			if !ok {
				return false
			}
			cur = nb
			steps++
			if steps > m.N() {
				return false
			}
		}
		return steps == m.HopDist(src, dst)
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(2)), MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: minimal directions always reduce the hop distance by one.
func TestMinimalDirsProperty(t *testing.T) {
	f := func(w8, h8, s16, d16 uint16) bool {
		w := int(w8%7) + 2
		h := int(h8%7) + 2
		m := MustMesh(w, h)
		src := int(s16) % m.N()
		dst := int(d16) % m.N()
		for _, d := range m.MinimalDirs(src, dst) {
			nb, ok := m.Neighbor(src, d)
			if !ok {
				return false
			}
			if m.HopDist(nb, dst) != m.HopDist(src, dst)-1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(3)), MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
