package topology

import "fmt"

// Kind enumerates the supported network topologies. The zero value is the
// paper's 2D mesh, so existing configurations keep their meaning.
type Kind uint8

const (
	// KindMesh is the paper's W x H 2D mesh (Table 1).
	KindMesh Kind = iota
	// KindTorus is a W x H 2D torus: the mesh plus wraparound links on
	// every row and column, routed dimension-ordered with a dateline VC
	// discipline on the escape class.
	KindTorus
	// KindCMesh is a concentrated mesh: a W x H router grid where each
	// router serves a 2x2 tile of C=4 terminals through a widened local
	// port (the terminal grid is 2W x 2H).
	KindCMesh
)

// String implements fmt.Stringer with the names used in configs and CLIs.
func (k Kind) String() string {
	switch k {
	case KindMesh:
		return "mesh"
	case KindTorus:
		return "torus"
	case KindCMesh:
		return "cmesh"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindByName parses a topology name as used in specs and CLI flags.
func KindByName(name string) (Kind, error) {
	switch name {
	case "", "mesh":
		return KindMesh, nil
	case "torus":
		return KindTorus, nil
	case "cmesh", "concentrated", "concentrated_mesh":
		return KindCMesh, nil
	}
	return KindMesh, fmt.Errorf("topology: unknown topology %q (mesh, torus, cmesh)", name)
}

// KindNames returns the accepted canonical topology names.
func KindNames() []string { return []string{"mesh", "torus", "cmesh"} }

// DirSet is an allocation-free set of minimal-progress directions (0, 1 or
// 2 entries). The routing hot path keeps per-pair tables of these and falls
// back to computing them on the fly for very large networks.
type DirSet struct {
	Dirs [2]Dir
	Cnt  uint8
}

// Add appends a direction to the set.
func (s *DirSet) Add(d Dir) {
	s.Dirs[s.Cnt] = d
	s.Cnt++
}

// Topology is a routed network graph over a W x H router grid: node
// population and coordinates, the per-port neighbor map, deterministic
// minimal routing, and the link metadata the power and fault layers need.
// All implementations are immutable after construction and safe for
// concurrent use.
type Topology interface {
	// Kind identifies the concrete topology family.
	Kind() Kind
	// Grid returns the router-grid dimensions.
	Grid() (w, h int)
	// N returns the number of routers.
	N() int
	// Coord returns the (col, row) coordinate of router id.
	Coord(id int) (x, y int)
	// ID returns the router id at (col, row).
	ID(x, y int) int
	// Valid reports whether id names a router.
	Valid(id int) bool
	// Neighbor returns the router adjacent to id in direction d and
	// whether that port is wired (mesh edge routers lack some).
	Neighbor(id int, d Dir) (int, bool)
	// DirTo returns the direction of the link from a to b, which must be
	// adjacent (wrap links count as adjacency on a torus).
	DirTo(a, b int) (Dir, error)
	// HopDist returns the minimal hop count between two routers.
	HopDist(a, b int) int
	// MinimalDirs returns the directions that make minimal progress from
	// src toward dst (allocates; prefer MinimalSet on hot paths).
	MinimalDirs(src, dst int) []Dir
	// MinimalSet is MinimalDirs without the allocation.
	MinimalSet(src, dst int) DirSet
	// XYDir returns the next hop under deterministic dimension-ordered
	// routing from src to dst, or Local when src == dst. This is the
	// escape path of the conventional designs; it must be deadlock-free
	// under the topology's escape-VC discipline (EscapeVCs).
	XYDir(src, dst int) Dir
	// WrapLink reports whether the output link of id in direction d is a
	// wraparound (dateline-crossing) link. Always false on a mesh.
	WrapLink(id int, d Dir) bool
	// EscapeVCs returns how many escape VCs per class deterministic
	// routing needs to stay deadlock-free: 1 on a mesh, 2 on a torus
	// (the dateline pair).
	EscapeVCs() int
	// NumLinks returns the number of directed router-to-router links,
	// the population the link static-power model charges.
	NumLinks() int
	// LinkLengthFactor scales link length (and so link energy) relative
	// to a mesh link of the same grid: 1.0 for the mesh, 2.0 for the
	// folded torus and the concentrated mesh's doubled tile pitch.
	LinkLengthFactor() float64
	// Concentration returns the number of terminals per router (1 except
	// for the concentrated mesh).
	Concentration() int
	// Terminals returns the terminal grid traffic patterns address. For
	// concentration 1 it is the router grid itself.
	Terminals() Mesh
	// TerminalRouter maps a terminal id onto the router serving it (the
	// identity for concentration 1).
	TerminalRouter(t int) int
}

// New constructs a topology of the given kind over a w x h router grid.
func New(kind Kind, w, h int) (Topology, error) {
	switch kind {
	case KindMesh:
		m, err := NewMesh(w, h)
		if err != nil {
			return nil, err
		}
		return m, nil
	case KindTorus:
		t, err := NewTorus(w, h)
		if err != nil {
			return nil, err
		}
		return t, nil
	case KindCMesh:
		c, err := NewCMesh(w, h)
		if err != nil {
			return nil, err
		}
		return c, nil
	}
	return nil, fmt.Errorf("topology: unknown topology kind %d", kind)
}

// MustNew is New that panics on invalid arguments; for tests and internal
// construction from validated configuration.
func MustNew(kind Kind, w, h int) Topology {
	t, err := New(kind, w, h)
	if err != nil {
		panic(err)
	}
	return t
}
