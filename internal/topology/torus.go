package topology

import "fmt"

// Torus is a W x H 2D torus: the mesh of the same grid plus wraparound
// links closing every row and column, so every router has all four grid
// ports wired. Node IDs and coordinates match the mesh (row-major, row 0
// at the North edge).
//
// Deterministic routing is dimension-ordered with per-dimension shortest
// direction; deadlock freedom on the escape class uses the standard
// dateline discipline: the wrap link of each row/column is the dateline,
// packets start a dimension on escape VC 0 and switch to escape VC 1 when
// they traverse the dateline, which breaks the ring's cyclic channel
// dependence (EscapeVCs reports 2). Ties at even dimensions (dist W/2)
// resolve East/South, so minimal routing stays deterministic.
type Torus struct {
	W, H int
}

// NewTorus returns a torus of the given dimensions (at least 2x2).
func NewTorus(w, h int) (Torus, error) {
	if w < 2 || h < 2 {
		return Torus{}, fmt.Errorf("topology: torus must be at least 2x2, got %dx%d", w, h)
	}
	return Torus{W: w, H: h}, nil
}

// MustTorus is NewTorus that panics on invalid dimensions.
func MustTorus(w, h int) Torus {
	t, err := NewTorus(w, h)
	if err != nil {
		panic(err)
	}
	return t
}

var _ Topology = Torus{}

// Kind identifies the topology family.
func (t Torus) Kind() Kind { return KindTorus }

// Grid returns the router-grid dimensions.
func (t Torus) Grid() (w, h int) { return t.W, t.H }

// N returns the number of routers.
func (t Torus) N() int { return t.W * t.H }

// Coord returns the (col, row) coordinate of router id.
func (t Torus) Coord(id int) (x, y int) { return id % t.W, id / t.W }

// ID returns the router id at (col, row).
func (t Torus) ID(x, y int) int { return y*t.W + x }

// Valid reports whether id names a router.
func (t Torus) Valid(id int) bool { return id >= 0 && id < t.N() }

// Neighbor returns the router adjacent to id in direction d. On a torus
// every grid port is wired, so it only fails for Local. A 2-wide dimension
// has two distinct links between the same router pair (East and West both
// reach the other column); they are separate physical channels.
func (t Torus) Neighbor(id int, d Dir) (int, bool) {
	x, y := t.Coord(id)
	switch d {
	case East:
		x = (x + 1) % t.W
	case West:
		x = (x - 1 + t.W) % t.W
	case North:
		y = (y - 1 + t.H) % t.H
	case South:
		y = (y + 1) % t.H
	default:
		return -1, false
	}
	return t.ID(x, y), true
}

// DirTo returns the direction of the link from a to b, which must be
// adjacent (including across a wrap link). On a 2-wide dimension both
// directions connect the pair; the East/South channel is reported.
func (t Torus) DirTo(a, b int) (Dir, error) {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx := (bx - ax + t.W) % t.W
	dy := (by - ay + t.H) % t.H
	switch {
	case dy == 0 && dx == 1:
		return East, nil
	case dy == 0 && dx == t.W-1:
		return West, nil
	case dx == 0 && dy == 1:
		return South, nil
	case dx == 0 && dy == t.H-1:
		return North, nil
	}
	return Local, fmt.Errorf("topology: torus nodes %d and %d are not adjacent", a, b)
}

// HopDist returns the minimal hop count, per-dimension modular distance.
func (t Torus) HopDist(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx := abs(ax - bx)
	if t.W-dx < dx {
		dx = t.W - dx
	}
	dy := abs(ay - by)
	if t.H-dy < dy {
		dy = t.H - dy
	}
	return dx + dy
}

// minimalX returns the shortest-direction move in X from sx toward dx, or
// Local when already aligned. Ties (exactly half way around an even ring)
// resolve East.
func (t Torus) minimalX(sx, dx int) Dir {
	if sx == dx {
		return Local
	}
	fwd := (dx - sx + t.W) % t.W // hops going East
	if fwd <= t.W-fwd {
		return East
	}
	return West
}

// minimalY is minimalX for the Y dimension; ties resolve South.
func (t Torus) minimalY(sy, dy int) Dir {
	if sy == dy {
		return Local
	}
	fwd := (dy - sy + t.H) % t.H // hops going South
	if fwd <= t.H-fwd {
		return South
	}
	return North
}

// MinimalSet returns the minimal-progress directions (at most one per
// dimension; ties resolve East/South so routing stays deterministic).
func (t Torus) MinimalSet(src, dst int) DirSet {
	var out DirSet
	sx, sy := t.Coord(src)
	dx, dy := t.Coord(dst)
	if d := t.minimalX(sx, dx); d != Local {
		out.Add(d)
	}
	if d := t.minimalY(sy, dy); d != Local {
		out.Add(d)
	}
	return out
}

// MinimalDirs is MinimalSet with an allocated slice, for callers off the
// hot path.
func (t Torus) MinimalDirs(src, dst int) []Dir {
	s := t.MinimalSet(src, dst)
	out := make([]Dir, 0, s.Cnt)
	for i := uint8(0); i < s.Cnt; i++ {
		out = append(out, s.Dirs[i])
	}
	return out
}

// XYDir returns the next hop under dimension-ordered routing: resolve X
// completely (shortest way around), then Y, or Local at the destination.
func (t Torus) XYDir(src, dst int) Dir {
	sx, sy := t.Coord(src)
	dx, dy := t.Coord(dst)
	if d := t.minimalX(sx, dx); d != Local {
		return d
	}
	return t.minimalY(sy, dy)
}

// WrapLink reports whether the output link of id in direction d is the
// wraparound link of its row or column — the dateline of the escape-VC
// discipline.
func (t Torus) WrapLink(id int, d Dir) bool {
	x, y := t.Coord(id)
	switch d {
	case East:
		return x == t.W-1
	case West:
		return x == 0
	case North:
		return y == 0
	case South:
		return y == t.H-1
	}
	return false
}

// EscapeVCs returns the escape VCs the dateline discipline needs: two.
func (t Torus) EscapeVCs() int { return 2 }

// NumLinks returns the directed link count: every router drives all four
// grid ports.
func (t Torus) NumLinks() int { return 4 * t.W * t.H }

// LinkLengthFactor returns the link length relative to a mesh link of the
// same grid: 2.0 for the standard folded-torus layout, whose links span
// two tile pitches to avoid the long wrap-around wire.
func (t Torus) LinkLengthFactor() float64 { return 2.0 }

// Concentration returns the terminals per router: one.
func (t Torus) Concentration() int { return 1 }

// Terminals returns the terminal grid: the router grid itself. (The
// returned Mesh is only a coordinate frame for traffic patterns; torus
// adjacency is not implied.)
func (t Torus) Terminals() Mesh { return Mesh{W: t.W, H: t.H} }

// TerminalRouter maps a terminal to its router: the identity.
func (t Torus) TerminalRouter(tm int) int { return tm }
