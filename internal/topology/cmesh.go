package topology

import "fmt"

// CMesh is a concentrated 2D mesh: a W x H router grid with mesh
// adjacency where each router serves a 2x2 tile of C=4 terminals through
// a widened local port. The terminal grid is therefore 2W x 2H; terminal
// (tx, ty) maps onto router (tx/2, ty/2). Router IDs, coordinates and
// inter-router routing are exactly the mesh's — concentration only
// changes the local port and the terminal address space.
type CMesh struct {
	Mesh
}

// CMeshConcentration is the concentration degree: terminals per router.
const CMeshConcentration = 4

// NewCMesh returns a concentrated mesh over a w x h router grid (at
// least 2x2, i.e. at least a 4x4 terminal grid).
func NewCMesh(w, h int) (CMesh, error) {
	m, err := NewMesh(w, h)
	if err != nil {
		return CMesh{}, fmt.Errorf("topology: cmesh router grid: %w", err)
	}
	return CMesh{Mesh: m}, nil
}

// MustCMesh is NewCMesh that panics on invalid dimensions.
func MustCMesh(w, h int) CMesh {
	c, err := NewCMesh(w, h)
	if err != nil {
		panic(err)
	}
	return c
}

var _ Topology = CMesh{}

// Kind identifies the topology family.
func (c CMesh) Kind() Kind { return KindCMesh }

// LinkLengthFactor returns the link length relative to a mesh link of the
// same terminal population: concentrating 4 terminals doubles the tile
// pitch, so inter-router links span 2.0 mesh pitches.
func (c CMesh) LinkLengthFactor() float64 { return 2.0 }

// Concentration returns the terminals per router: four.
func (c CMesh) Concentration() int { return CMeshConcentration }

// Terminals returns the 2W x 2H terminal grid.
func (c CMesh) Terminals() Mesh { return Mesh{W: 2 * c.W, H: 2 * c.H} }

// TerminalRouter maps a terminal id (in the 2W x 2H terminal grid) onto
// the router serving its 2x2 tile.
func (c CMesh) TerminalRouter(t int) int {
	tw := 2 * c.W
	tx, ty := t%tw, t/tw
	return c.ID(tx/2, ty/2)
}
