package topology

import (
	"math"
	"testing"
)

func newPlanner4x4(t *testing.T) *Planner {
	t.Helper()
	m := MustMesh(4, 4)
	r, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	return NewPlanner(m, r)
}

func TestEvalAllOn(t *testing.T) {
	p := newPlanner4x4(t)
	on := make([]bool, 16)
	for i := range on {
		on[i] = true
	}
	hops, perHop, err := p.Eval(on)
	if err != nil {
		t.Fatal(err)
	}
	// All routers on: shortest paths are Manhattan distances; average
	// pairwise distance on 4x4 mesh is 2.5 hops.
	if math.Abs(hops-8.0/3.0) > 1e-9 {
		t.Errorf("avg hops = %v, want 8/3", hops)
	}
	if math.Abs(perHop-5.0) > 1e-9 {
		t.Errorf("per-hop latency = %v, want 5 (all normal pipelines)", perHop)
	}
}

func TestEvalAllOff(t *testing.T) {
	p := newPlanner4x4(t)
	on := make([]bool, 16)
	hops, perHop, err := p.Eval(on)
	if err != nil {
		t.Fatal(err)
	}
	// All routers off: only the ring is usable. Average ordered-pair ring
	// distance on a 16-node ring is (1+2+...+15)/15 = 8.
	if math.Abs(hops-8.0) > 1e-9 {
		t.Errorf("avg hops = %v, want 8 (pure ring)", hops)
	}
	if math.Abs(perHop-3.0) > 1e-9 {
		t.Errorf("per-hop latency = %v, want 3 (all bypass)", perHop)
	}
}

func TestEvalSizeMismatch(t *testing.T) {
	p := newPlanner4x4(t)
	if _, _, err := p.Eval(make([]bool, 5)); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestEvalMonotonicTrend(t *testing.T) {
	// Turning on more routers never increases the optimal average
	// distance (Figure 6's left axis decreases monotonically).
	p := newPlanner4x4(t)
	pts, err := p.Tradeoff()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 17 {
		t.Fatalf("got %d tradeoff points, want 17", len(pts))
	}
	for k := 1; k < len(pts); k++ {
		if pts[k].AvgHops > pts[k-1].AvgHops+1e-9 {
			t.Errorf("avg hops increased from K=%d (%v) to K=%d (%v)",
				k-1, pts[k-1].AvgHops, k, pts[k].AvgHops)
		}
	}
	// Endpoints match the closed forms above.
	if math.Abs(pts[0].AvgHops-8.0) > 1e-9 || math.Abs(pts[16].AvgHops-8.0/3.0) > 1e-9 {
		t.Errorf("endpoint avg hops = %v / %v, want 8 / 8/3", pts[0].AvgHops, pts[16].AvgHops)
	}
	// Per-hop latency rises from 3 (pure bypass) to 5 (pure pipeline),
	// the Figure 6 right axis.
	if math.Abs(pts[0].PerHopCycles-3.0) > 1e-9 || math.Abs(pts[16].PerHopCycles-5.0) > 1e-9 {
		t.Errorf("endpoint per-hop = %v / %v, want 3 / 5", pts[0].PerHopCycles, pts[16].PerHopCycles)
	}
}

func TestPerformanceCentricSix(t *testing.T) {
	// With 6 routers on, average distance should be close to the all-on
	// 2.5 hops (the paper reports a large reduction at K=6).
	p := newPlanner4x4(t)
	set, err := p.PerformanceCentric(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 6 {
		t.Fatalf("set size %d, want 6", len(set))
	}
	on := make([]bool, 16)
	for _, v := range set {
		on[v] = true
	}
	hops, _, err := p.Eval(on)
	if err != nil {
		t.Fatal(err)
	}
	if hops > 4.0 {
		t.Errorf("best 6-router avg distance %v, expected < 4 hops", hops)
	}
}

func TestPerformanceCentricValidation(t *testing.T) {
	p := newPlanner4x4(t)
	if _, err := p.PerformanceCentric(-1); err == nil {
		t.Error("negative K should fail")
	}
	if _, err := p.PerformanceCentric(17); err == nil {
		t.Error("K > N should fail")
	}
}

func TestGreedyTradeoffLargeMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("greedy planner on 8x8 is slow in -short mode")
	}
	m := MustMesh(8, 8)
	r, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(m, r)
	pts, err := p.Tradeoff()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 65 {
		t.Fatalf("got %d points, want 65", len(pts))
	}
	for k := 1; k < len(pts); k++ {
		if pts[k].AvgHops > pts[k-1].AvgHops+1e-9 {
			t.Errorf("greedy avg hops increased at K=%d", k)
		}
	}
	if math.Abs(pts[64].AvgHops-16.0/3.0) > 1e-6 {
		t.Errorf("all-on 8x8 avg hops = %v, want 16/3", pts[64].AvgHops)
	}
}

func TestKnee(t *testing.T) {
	pts := []TradeoffPoint{
		{K: 0, AvgHops: 8},
		{K: 1, AvgHops: 6},
		{K: 2, AvgHops: 5},
		{K: 3, AvgHops: 4.9},
		{K: 4, AvgHops: 4.85},
	}
	if k := Knee(pts, 0.5); k != 2 {
		t.Errorf("Knee = %d, want 2", k)
	}
	if k := Knee(pts, 0.01); k != 4 {
		t.Errorf("Knee with tiny gain = %d, want 4", k)
	}
}

func TestGreedySet(t *testing.T) {
	p := newPlanner4x4(t)
	set, err := p.GreedySet(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 6 {
		t.Fatalf("set size %d", len(set))
	}
	seen := map[int]bool{}
	for _, v := range set {
		if seen[v] || v < 0 || v > 15 {
			t.Fatalf("bad set %v", set)
		}
		seen[v] = true
	}
	// Greedy should get close to the exhaustive optimum on 4x4.
	on := make([]bool, 16)
	for _, v := range set {
		on[v] = true
	}
	gh, _, err := p.Eval(on)
	if err != nil {
		t.Fatal(err)
	}
	best, err := p.PerformanceCentric(6)
	if err != nil {
		t.Fatal(err)
	}
	on2 := make([]bool, 16)
	for _, v := range best {
		on2[v] = true
	}
	bh, _, err := p.Eval(on2)
	if err != nil {
		t.Fatal(err)
	}
	if gh > bh*1.15 {
		t.Errorf("greedy distance %.3f too far from optimal %.3f", gh, bh)
	}
	if _, err := p.GreedySet(-1); err == nil {
		t.Error("negative K should fail")
	}
	if _, err := p.GreedySet(99); err == nil {
		t.Error("oversized K should fail")
	}
}
