package topology

import "fmt"

// Ring is the chip-wide unidirectional bypass ring of NoRD (Section 4.2).
// It is a Hamiltonian cycle over the mesh: each router contributes exactly
// one Bypass Inport (the mesh input port fed by its ring predecessor) and
// one Bypass Outport (the mesh output port feeding its ring successor).
// Packets traversing a powered-off router enter on the Bypass Inport, pass
// through the node's network interface, and leave on the Bypass Outport,
// so even with every router gated off the ring keeps all nodes connected.
type Ring struct {
	mesh Mesh
	// order is the ring as a node sequence; order[i+1] succeeds order[i]
	// and order[0] succeeds order[len-1].
	order []int
	// succ[v] / pred[v] are v's ring neighbors.
	succ, pred []int
	// outDir[v] is v's Bypass Outport direction (link to succ[v]);
	// inDir[v] is v's Bypass Inport direction (link from pred[v]).
	outDir, inDir []Dir
	// pos[v] is v's index within order, used for the escape-VC dateline.
	pos []int
}

// NewRing constructs the bypass ring for a mesh using a boustrophedon
// ("comb") Hamiltonian cycle: row 0 is walked left to right, columns
// 1..W-1 are snaked downward through the remaining rows, and column 0 is
// the return path. This requires an even number of rows; if H is odd but W
// is even the construction is applied to the transposed mesh. A mesh with
// both dimensions odd has no Hamiltonian cycle (odd node count on a
// bipartite graph), and an error is returned.
//
// For the paper's 4x4 example this yields
// 0,1,2,3,7,6,5,9,10,11,15,14,13,12,8,4 -> 0, the serpentine of
// Figure 4(a).
func NewRing(m Mesh) (*Ring, error) {
	var order []int
	switch {
	case m.H%2 == 0:
		order = combOrder(m.W, m.H, func(x, y int) int { return m.ID(x, y) })
	case m.W%2 == 0:
		// Transpose: walk the comb over (y, x).
		order = combOrder(m.H, m.W, func(x, y int) int { return m.ID(y, x) })
	default:
		return nil, fmt.Errorf("topology: no Hamiltonian bypass ring exists for odd %dx%d mesh", m.W, m.H)
	}
	return ringFromOrder(m, order)
}

// combOrder emits the comb Hamiltonian cycle over a w x h grid (h even)
// as a node sequence, using id to translate grid coordinates to node ids.
func combOrder(w, h int, id func(x, y int) int) []int {
	order := make([]int, 0, w*h)
	// Row 0, left to right.
	for x := 0; x < w; x++ {
		order = append(order, id(x, 0))
	}
	// Rows 1..h-1 over columns 1..w-1, boustrophedon starting rightward
	// edge (row 1 walks right->left so it connects to id(w-1, 0)).
	for y := 1; y < h; y++ {
		if y%2 == 1 {
			for x := w - 1; x >= 1; x-- {
				order = append(order, id(x, y))
			}
		} else {
			for x := 1; x < w; x++ {
				order = append(order, id(x, y))
			}
		}
	}
	// Return up column 0 from the bottom row to row 1 (row 0 col 0 was
	// emitted first and closes the cycle).
	for y := h - 1; y >= 1; y-- {
		order = append(order, id(0, y))
	}
	return order
}

// RingFromOrder builds a Ring from an explicit node sequence, validating
// that it is a Hamiltonian cycle over mesh links. It allows callers to
// experiment with alternative bypass placements (Section 4.4 notes the
// classification/placement space is open).
func RingFromOrder(m Mesh, order []int) (*Ring, error) {
	return ringFromOrder(m, append([]int(nil), order...))
}

func ringFromOrder(m Mesh, order []int) (*Ring, error) {
	n := m.N()
	if len(order) != n {
		return nil, fmt.Errorf("topology: ring order has %d nodes, mesh has %d", len(order), n)
	}
	r := &Ring{
		mesh:   m,
		order:  order,
		succ:   make([]int, n),
		pred:   make([]int, n),
		outDir: make([]Dir, n),
		inDir:  make([]Dir, n),
		pos:    make([]int, n),
	}
	seen := make([]bool, n)
	for i, v := range order {
		if !m.Valid(v) {
			return nil, fmt.Errorf("topology: ring order contains invalid node %d", v)
		}
		if seen[v] {
			return nil, fmt.Errorf("topology: ring order visits node %d twice", v)
		}
		seen[v] = true
		r.pos[v] = i
	}
	for i, v := range order {
		next := order[(i+1)%n]
		d, err := m.DirTo(v, next)
		if err != nil {
			return nil, fmt.Errorf("topology: ring step %d->%d is not a mesh link: %w", v, next, err)
		}
		r.succ[v] = next
		r.pred[next] = v
		r.outDir[v] = d
		r.inDir[next] = d.Opposite()
	}
	return r, nil
}

// Mesh returns the underlying mesh.
func (r *Ring) Mesh() Mesh { return r.mesh }

// Order returns the ring as a node sequence (do not modify).
func (r *Ring) Order() []int { return r.order }

// Succ returns the ring successor of v (the router reached through v's
// Bypass Outport).
func (r *Ring) Succ(v int) int { return r.succ[v] }

// Pred returns the ring predecessor of v (the router feeding v's Bypass
// Inport).
func (r *Ring) Pred(v int) int { return r.pred[v] }

// OutDir returns the mesh direction of v's Bypass Outport.
func (r *Ring) OutDir(v int) Dir { return r.outDir[v] }

// InDir returns the mesh direction of v's Bypass Inport.
func (r *Ring) InDir(v int) Dir { return r.inDir[v] }

// Pos returns v's index along the ring; node at position 0 starts the
// cycle and the link into it is the escape-VC dateline.
func (r *Ring) Pos(v int) int { return r.pos[v] }

// CrossesDateline reports whether the ring link out of v wraps past the
// ring origin. Escape packets switch from escape VC 0 to escape VC 1 when
// crossing the dateline, breaking the ring's cyclic channel dependence
// (the "two VCs to break cyclic dependence" of Section 4.2).
func (r *Ring) CrossesDateline(v int) bool {
	return r.pos[r.succ[v]] == 0
}

// RingDist returns the number of ring hops from a to b travelling in ring
// direction.
func (r *Ring) RingDist(a, b int) int {
	n := len(r.order)
	d := r.pos[b] - r.pos[a]
	if d < 0 {
		d += n
	}
	return d
}
