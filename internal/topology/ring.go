package topology

import "fmt"

// Ring is the chip-wide unidirectional bypass ring of NoRD (Section 4.2).
// It is a Hamiltonian cycle over the topology's links: each router
// contributes exactly one Bypass Inport (the input port fed by its ring
// predecessor) and one Bypass Outport (the output port feeding its ring
// successor). Packets traversing a powered-off router enter on the Bypass
// Inport, pass through the node's network interface, and leave on the
// Bypass Outport, so even with every router gated off the ring keeps all
// nodes connected.
type Ring struct {
	topo Topology
	// order is the ring as a node sequence; order[i+1] succeeds order[i]
	// and order[0] succeeds order[len-1].
	order []int
	// succ[v] / pred[v] are v's ring neighbors.
	succ, pred []int
	// outDir[v] is v's Bypass Outport direction (link to succ[v]);
	// inDir[v] is v's Bypass Inport direction (link from pred[v]).
	outDir, inDir []Dir
	// pos[v] is v's index within order, used for the escape-VC dateline.
	pos []int
}

// NewRing constructs the bypass ring for a topology. Grids with an even
// dimension use the boustrophedon ("comb") Hamiltonian cycle: row 0 is
// walked left to right, columns 1..W-1 are snaked downward through the
// remaining rows, and column 0 is the return path (applied to the
// transposed grid when only W is even) — identical on mesh, cmesh and
// torus, so even-grid NoRD behaves the same across them. An odd x odd
// grid has no Hamiltonian cycle over mesh links (odd node count on a
// bipartite graph), but a torus closes one through its wrap links
// (torusOddOrder); for mesh and cmesh it remains an error.
//
// For the paper's 4x4 example this yields
// 0,1,2,3,7,6,5,9,10,11,15,14,13,12,8,4 -> 0, the serpentine of
// Figure 4(a).
func NewRing(t Topology) (*Ring, error) {
	w, h := t.Grid()
	var order []int
	switch {
	case h%2 == 0:
		order = combOrder(w, h, func(x, y int) int { return t.ID(x, y) })
	case w%2 == 0:
		// Transpose: walk the comb over (y, x).
		order = combOrder(h, w, func(x, y int) int { return t.ID(y, x) })
	case t.Kind() == KindTorus:
		order = torusOddOrder(w, h, func(x, y int) int { return t.ID(x, y) })
	default:
		return nil, fmt.Errorf("topology: no Hamiltonian bypass ring exists for odd %dx%d %v", w, h, t.Kind())
	}
	return ringFromOrder(t, order)
}

// combOrder emits the comb Hamiltonian cycle over a w x h grid (h even)
// as a node sequence, using id to translate grid coordinates to node ids.
func combOrder(w, h int, id func(x, y int) int) []int {
	order := make([]int, 0, w*h)
	// Row 0, left to right.
	for x := 0; x < w; x++ {
		order = append(order, id(x, 0))
	}
	// Rows 1..h-1 over columns 1..w-1, boustrophedon starting rightward
	// edge (row 1 walks right->left so it connects to id(w-1, 0)).
	for y := 1; y < h; y++ {
		if y%2 == 1 {
			for x := w - 1; x >= 1; x-- {
				order = append(order, id(x, y))
			}
		} else {
			for x := 1; x < w; x++ {
				order = append(order, id(x, y))
			}
		}
	}
	// Return up column 0 from the bottom row to row 1 (row 0 col 0 was
	// emitted first and closes the cycle).
	for y := h - 1; y >= 1; y-- {
		order = append(order, id(0, y))
	}
	return order
}

// torusOddOrder emits a Hamiltonian cycle over an odd x odd torus (both
// dimensions odd, w <= h after the caller's orientation; this function
// transposes internally when w > h). Each row is traversed fully in one
// direction — an Eastward row uses the row's wrap link and shifts the
// entry column of the next row by -1, a Westward row by +1 — and rows are
// chained by South links, the last one wrapping back to row 0. Closure
// needs the total shift to vanish mod w: with e Eastward and (h-e)
// Westward rows that is 2e ≡ h (mod w), solved by e = (h+w)/2 (both odd,
// so integral; w <= h keeps 0 <= e <= h).
func torusOddOrder(w, h int, id func(x, y int) int) []int {
	if w > h {
		return torusOddOrder(h, w, func(x, y int) int { return id(y, x) })
	}
	east := (h + w) / 2
	order := make([]int, 0, w*h)
	col := 0
	for y := 0; y < h; y++ {
		if y < east {
			for i := 0; i < w; i++ {
				order = append(order, id((col+i)%w, y))
			}
			col = (col - 1 + w) % w
		} else {
			for i := 0; i < w; i++ {
				order = append(order, id((col-i+w)%w, y))
			}
			col = (col + 1) % w
		}
	}
	return order
}

// RingFromOrder builds a Ring from an explicit node sequence, validating
// that it is a Hamiltonian cycle over topology links. It allows callers to
// experiment with alternative bypass placements (Section 4.4 notes the
// classification/placement space is open).
func RingFromOrder(t Topology, order []int) (*Ring, error) {
	return ringFromOrder(t, append([]int(nil), order...))
}

func ringFromOrder(t Topology, order []int) (*Ring, error) {
	n := t.N()
	if len(order) != n {
		return nil, fmt.Errorf("topology: ring order has %d nodes, topology has %d", len(order), n)
	}
	r := &Ring{
		topo:   t,
		order:  order,
		succ:   make([]int, n),
		pred:   make([]int, n),
		outDir: make([]Dir, n),
		inDir:  make([]Dir, n),
		pos:    make([]int, n),
	}
	seen := make([]bool, n)
	for i, v := range order {
		if !t.Valid(v) {
			return nil, fmt.Errorf("topology: ring order contains invalid node %d", v)
		}
		if seen[v] {
			return nil, fmt.Errorf("topology: ring order visits node %d twice", v)
		}
		seen[v] = true
		r.pos[v] = i
	}
	for i, v := range order {
		next := order[(i+1)%n]
		d, err := t.DirTo(v, next)
		if err != nil {
			return nil, fmt.Errorf("topology: ring step %d->%d is not a link: %w", v, next, err)
		}
		r.succ[v] = next
		r.pred[next] = v
		r.outDir[v] = d
		r.inDir[next] = d.Opposite()
	}
	return r, nil
}

// Topo returns the underlying topology.
func (r *Ring) Topo() Topology { return r.topo }

// Order returns the ring as a node sequence (do not modify).
func (r *Ring) Order() []int { return r.order }

// Succ returns the ring successor of v (the router reached through v's
// Bypass Outport).
func (r *Ring) Succ(v int) int { return r.succ[v] }

// Pred returns the ring predecessor of v (the router feeding v's Bypass
// Inport).
func (r *Ring) Pred(v int) int { return r.pred[v] }

// OutDir returns the direction of v's Bypass Outport.
func (r *Ring) OutDir(v int) Dir { return r.outDir[v] }

// InDir returns the direction of v's Bypass Inport.
func (r *Ring) InDir(v int) Dir { return r.inDir[v] }

// Pos returns v's index along the ring; node at position 0 starts the
// cycle and the link into it is the escape-VC dateline.
func (r *Ring) Pos(v int) int { return r.pos[v] }

// CrossesDateline reports whether the ring link out of v wraps past the
// ring origin. Escape packets switch from escape VC 0 to escape VC 1 when
// crossing the dateline, breaking the ring's cyclic channel dependence
// (the "two VCs to break cyclic dependence" of Section 4.2).
func (r *Ring) CrossesDateline(v int) bool {
	return r.pos[r.succ[v]] == 0
}

// RingDist returns the number of ring hops from a to b travelling in ring
// direction.
func (r *Ring) RingDist(a, b int) int {
	n := len(r.order)
	d := r.pos[b] - r.pos[a]
	if d < 0 {
		d += n
	}
	return d
}
