package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func tierPut(t *testing.T, ts *httptest.Server, key string, payload []byte, sum string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/cache/"+key, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(SumHeader, sum)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestCacheTierEndpoints proves the remote tier wire contract: a miss is
// a 404 (counted), a digest-validated PUT lands (204), the payload reads
// back byte-identical with its digest in the response header, and a PUT
// whose body does not match its claimed digest is rejected without
// touching the cache.
func TestCacheTierEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	payload := []byte(`{"result":42}`)
	sum := sha256.Sum256(payload)
	key := strings.Repeat("ab", 32) // 64 hex chars

	resp, err := http.Get(ts.URL + "/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT: %d, want 404", resp.StatusCode)
	}
	if got := s.Metrics().CacheRemoteMisses.Load(); got != 1 {
		t.Fatalf("remote misses = %d, want 1", got)
	}

	// Digest mismatch rejected and counted.
	if resp := tierPut(t, ts, key, payload, strings.Repeat("00", 32)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT with wrong digest: %d, want 400", resp.StatusCode)
	}
	// Missing digest rejected too.
	if resp := tierPut(t, ts, key, payload, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT with no digest: %d, want 400", resp.StatusCode)
	}
	if got := s.Metrics().CacheRemotePutRejected.Load(); got != 2 {
		t.Fatalf("put rejected = %d, want 2", got)
	}
	if _, ok := s.cache.Get(key); ok {
		t.Fatal("rejected PUT still poisoned the cache")
	}

	// Valid PUT, then read back.
	if resp := tierPut(t, ts, key, payload, hex.EncodeToString(sum[:])); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid PUT: %d, want 204", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, payload) {
		t.Fatalf("GET after PUT: %d %q", resp.StatusCode, body)
	}
	if got := resp.Header.Get(SumHeader); got != hex.EncodeToString(sum[:]) {
		t.Fatalf("GET digest header = %q", got)
	}

	// Malformed keys never reach the cache namespace.
	for _, bad := range []string{"short", strings.Repeat("g", 64), strings.Repeat("AB", 32)} {
		resp, err := http.Get(ts.URL + "/v1/cache/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %q: %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestRestoreJobAndTerminal exercises the crash-recovery server APIs the
// fleet coordinator drives: restoring an open job re-queues it under its
// original ID (and future IDs never collide), restoring a done job
// serves the cached payload, and a done job whose cached result is gone
// reports ErrNoCachedResult so the caller recomputes.
func TestRestoreJobAndTerminal(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	reqJSON := []byte(`{"kind":"synthetic","synthetic":{"design":"NoRD","pattern":"uniform","width":4,"height":4,"rate":0.05,"measure":2000,"seed":7}}`)

	// Open-job restore: the job runs to done through the normal pipeline.
	j, err := s.RestoreJob("j000041", reqJSON)
	if err != nil {
		t.Fatalf("RestoreJob: %v", err)
	}
	if err := s.disp.Submit(j); err != nil {
		t.Fatalf("submit restored job: %v", err)
	}
	<-j.Done()
	if j.State() != JobDone {
		t.Fatalf("restored job state %s: %s", j.State(), j.status(false).Error)
	}
	st := getStatus(t, ts, "j000041")
	if st.State != JobDone || len(st.Result) == 0 {
		t.Fatalf("GET restored job: %+v", st)
	}

	// Terminal restore of the same config under a different ID: payload
	// comes from the cache, byte-identical.
	if err := s.RestoreTerminal("j000040", reqJSON, JobDone, ""); err != nil {
		t.Fatalf("RestoreTerminal: %v", err)
	}
	st2 := getStatus(t, ts, "j000040")
	if st2.State != JobDone || !st2.Cached || !bytes.Equal(st2.Result, st.Result) {
		t.Fatalf("terminal restore mismatch: state=%s cached=%v", st2.State, st2.Cached)
	}

	// Failed restore keeps the error and does not poison dedup.
	if err := s.RestoreTerminal("j000039", []byte(`{"kind":"synthetic","synthetic":{"design":"NoRD","pattern":"uniform","width":4,"height":4,"rate":0.07,"measure":2000,"seed":9}}`), JobFailed, "boom"); err != nil {
		t.Fatalf("RestoreTerminal failed-state: %v", err)
	}
	if st := getStatus(t, ts, "j000039"); st.State != JobFailed || st.Error != "boom" {
		t.Fatalf("failed restore: %+v", st)
	}

	// Done restore with no cached payload anywhere: recompute signal.
	missing := []byte(`{"kind":"synthetic","synthetic":{"design":"NoRD","pattern":"uniform","width":4,"height":4,"rate":0.09,"measure":2000,"seed":11}}`)
	if err := s.RestoreTerminal("j000038", missing, JobDone, ""); err != ErrNoCachedResult {
		t.Fatalf("RestoreTerminal without cache = %v, want ErrNoCachedResult", err)
	}

	// The sequence advanced past the restored IDs: a fresh submission
	// must not collide with j000041.
	code, sr, _ := postJob(t, ts, `{"kind":"synthetic","synthetic":{"design":"NoRD","pattern":"uniform","width":4,"height":4,"rate":0.06,"measure":2000,"seed":8}}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("fresh submit: %d", code)
	}
	if sr.ID <= "j000041" {
		t.Fatalf("fresh job ID %s did not advance past restored j000041", sr.ID)
	}
}
