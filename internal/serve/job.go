package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"nord/internal/obs"
	"nord/internal/stats"
)

// JobState is a job's lifecycle state.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// maxProgressHistory bounds the per-job snapshot history replayed to new
// /events subscribers; when exceeded, the oldest half is dropped.
const maxProgressHistory = 4096

// maxTraceHistory bounds the per-job trace-event history replayed to new
// /trace subscribers; like the progress history, the oldest half is
// dropped on overflow (the end-of-stream line reports the true totals).
const maxTraceHistory = 1 << 16

// Job is one submitted simulation: its identity (ID for clients, Key for
// the content-addressed cache), its lifecycle state, the marshalled
// result once done, and the progress-snapshot fan-out for /events
// streams.
type Job struct {
	ID      string
	Key     string
	Kind    string
	Created time.Time

	task *task

	ctx    context.Context
	cancel context.CancelFunc
	// done closes when the job reaches a terminal state, so search
	// evaluations (and other in-process waiters) can select on completion
	// without polling.
	done chan struct{}

	mu    sync.Mutex
	state JobState
	// ephemeral marks a job created on behalf of a search evaluation and
	// not (yet) claimed by any direct submission; waiters counts the
	// search evaluations currently waiting on it. When the last waiter
	// abandons a still-ephemeral job (its search was canceled), the job
	// itself is canceled — nobody wants the result anymore.
	ephemeral bool
	waiters   int
	cacheHit  bool
	result    []byte
	errMsg    string
	lastCycle uint64
	progress  []stats.Progress
	subs      map[chan stats.Progress]struct{}

	// Cycle-level trace fan-out, populated only for traced jobs
	// (task.traced): batches of events drained from the run's tracer,
	// plus the recording totals stamped when the run finishes.
	traceLog     []obs.Event
	traceSubs    map[chan []obs.Event]struct{}
	traceTotal   uint64
	traceDropped uint64
}

func newJob(id string, t *task) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	return &Job{
		ID:        id,
		Key:       t.key,
		Kind:      t.kind,
		Created:   time.Now(),
		task:      t,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     JobQueued,
		subs:      map[chan stats.Progress]struct{}{},
		traceSubs: map[chan []obs.Event]struct{}{},
	}
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// markRunning transitions queued→running; it reports false when the job
// was canceled while still queued (the worker must skip it).
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	return true
}

// MarkRunning is markRunning for external dispatchers (a fleet
// coordinator granting a lease).
func (j *Job) MarkRunning() bool { return j.markRunning() }

// MarkQueued returns a running job to the queue — the lease-expiry
// requeue path. It is a no-op on terminal jobs.
func (j *Job) MarkQueued() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobRunning {
		j.state = JobQueued
	}
}

// Context exposes the job's cancellation context so external dispatchers
// can observe client cancellation (DELETE /v1/jobs/{id}) and propagate it
// to remote workers.
func (j *Job) Context() context.Context { return j.ctx }

// Traced reports whether the job records a cycle-level event trace.
// Traced jobs must execute in-process: their event stream cannot ride the
// fleet result wire.
func (j *Job) Traced() bool { return j.task.traced }

// RequestJSON returns the job's original submission body, the unit that
// ships to a fleet worker for remote execution.
func (j *Job) RequestJSON() []byte { return j.task.req }

// FinalError returns the terminal error message — empty while the job is
// still open and for jobs that finished done. External dispatchers use it
// to journal the terminal transition they just drove through FinishRemote.
func (j *Job) FinalError() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// finish records the terminal state and closes every subscriber stream.
// It reports whether this call performed the transition: a job reaches a
// terminal state exactly once, and only the transitioning caller may
// account it (metrics, cache fill).
func (j *Job) finish(state JobState, result []byte, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	for ch := range j.subs {
		close(ch)
	}
	j.subs = map[chan stats.Progress]struct{}{}
	for ch := range j.traceSubs {
		close(ch)
	}
	j.traceSubs = map[chan []obs.Event]struct{}{}
	close(j.done)
	return true
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// retain registers a search evaluation as a waiter on this job.
func (j *Job) retain() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.waiters++
}

// release drops one waiter. When the last waiter leaves a job that is
// still ephemeral (created for searches only, never claimed by a direct
// submission) and not yet terminal, the job is canceled: a canceled
// search must not leave its child evaluations burning workers.
func (j *Job) release() {
	j.mu.Lock()
	j.waiters--
	abandon := j.waiters == 0 && j.ephemeral && !j.state.Terminal()
	j.mu.Unlock()
	if abandon {
		j.Cancel()
	}
}

// claimShared clears the ephemeral flag: a direct client submission
// coalesced onto this job, so it must outlive any search that spawned it.
func (j *Job) claimShared() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ephemeral = false
}

// completeFromCache marks the job done with a memoized result.
func (j *Job) completeFromCache(result []byte) {
	j.mu.Lock()
	j.cacheHit = true
	j.mu.Unlock()
	j.finish(JobDone, result, "")
}

// Cancel requests cancellation: a queued job transitions to canceled
// immediately; a running job's context is canceled and the worker
// finalises it within the sim layer's poll bound.
func (j *Job) Cancel() {
	j.mu.Lock()
	queued := j.state == JobQueued
	j.mu.Unlock()
	if queued {
		j.finish(JobCanceled, nil, "canceled while queued")
	}
	j.cancel()
}

// publish appends a progress snapshot and fans it out to subscribers
// (dropping snapshots for subscribers whose buffer is full — streams are
// best-effort, the history is authoritative). It returns the number of
// simulated cycles advanced since the previous snapshot, the delta the
// server folds into its cumulative cycle counter; snapshots arriving out
// of order (a stale worker's heartbeat racing a retry) contribute zero.
func (j *Job) publish(p stats.Progress) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	var delta uint64
	if p.Cycle > j.lastCycle {
		delta = p.Cycle - j.lastCycle
		j.lastCycle = p.Cycle
	}
	if len(j.progress) >= maxProgressHistory {
		j.progress = append(j.progress[:0], j.progress[len(j.progress)/2:]...)
	}
	j.progress = append(j.progress, p)
	for ch := range j.subs {
		select {
		case ch <- p:
		default:
		}
	}
	return delta
}

// publishTrace appends a drained batch of trace events to the history and
// fans it out to /trace subscribers. The batch is copied once (the caller
// reuses its buffer); subscribers receive the shared read-only copy, and
// a subscriber whose channel is full misses the batch (streams are
// best-effort, the end line carries the true totals).
func (j *Job) publishTrace(batch []obs.Event) {
	if len(batch) == 0 {
		return
	}
	cp := append([]obs.Event(nil), batch...)
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.traceLog)+len(cp) > maxTraceHistory {
		j.traceLog = append(j.traceLog[:0], j.traceLog[len(j.traceLog)/2:]...)
	}
	j.traceLog = append(j.traceLog, cp...)
	for ch := range j.traceSubs {
		select {
		case ch <- cp:
		default:
		}
	}
}

// setTraceTotals stamps the tracer's recording totals once the run has
// finished (the tracer itself is confined to the worker goroutine).
func (j *Job) setTraceTotals(total, dropped uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.traceTotal = total
	j.traceDropped = dropped
}

// traceTotals returns the stamped recording totals.
func (j *Job) traceTotals() (total, dropped uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceTotal, j.traceDropped
}

// subscribeTrace mirrors subscribe for the cycle-level event stream:
// it returns the event history so far and a channel of future batches,
// closed when the job reaches a terminal state.
func (j *Job) subscribeTrace() ([]obs.Event, chan []obs.Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history := append([]obs.Event(nil), j.traceLog...)
	ch := make(chan []obs.Event, 64)
	if j.state.Terminal() {
		close(ch)
		return history, ch, func() {}
	}
	j.traceSubs[ch] = struct{}{}
	return history, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.traceSubs[ch]; ok {
			delete(j.traceSubs, ch)
			close(ch)
		}
	}
}

// subscribe returns the snapshot history so far and a channel of future
// snapshots; the channel is closed when the job reaches a terminal state.
// Call the returned cancel function when done reading.
func (j *Job) subscribe() ([]stats.Progress, chan stats.Progress, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history := append([]stats.Progress(nil), j.progress...)
	ch := make(chan stats.Progress, 64)
	if j.state.Terminal() {
		close(ch)
		return history, ch, func() {}
	}
	j.subs[ch] = struct{}{}
	return history, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// JobStatus is the GET /v1/jobs/{id} response body.
type JobStatus struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Key      string          `json:"key"`
	State    JobState        `json:"state"`
	Cached   bool            `json:"cached"`
	Traced   bool            `json:"traced,omitempty"`
	Error    string          `json:"error,omitempty"`
	Progress *stats.Progress `json:"progress,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// status snapshots the job for the API.
func (j *Job) status(includeResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:     j.ID,
		Kind:   j.Kind,
		Key:    j.Key,
		State:  j.state,
		Cached: j.cacheHit,
		Traced: j.task.traced,
		Error:  j.errMsg,
	}
	if n := len(j.progress); n > 0 {
		p := j.progress[n-1]
		st.Progress = &p
	}
	if includeResult && j.state == JobDone {
		st.Result = json.RawMessage(j.result)
	}
	return st
}
