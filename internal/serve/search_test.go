package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"nord/internal/search"
)

// smallSearch is a search spec cheap enough for tests: a 4x4 mesh, two
// designs, 1000 measured cycles per candidate — yet rich enough that the
// latency/energy/area trade-off produces a multi-point front.
func smallSearch(seed int) string {
	return `{
		"algorithm": "nsga2",
		"seed": ` + itoa(seed) + `,
		"generations": 2,
		"population": 6,
		"measure": 1000,
		"space": {
			"designs": ["NoRD", "Conv_PG"],
			"widths": [4],
			"vcs": [3, 4],
			"buffer_depths": [2, 5],
			"gate_idle": [2],
			"wake_thresholds": [6],
			"rates": [0.05, 0.15]
		}
	}`
}

func itoa(n int) string { return strconv.Itoa(n) }

func postSearch(t *testing.T, ts *httptest.Server, body string) (int, submitResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	return resp.StatusCode, sr
}

// searchOutcome decodes a done search job's result, keeping the front
// bytes raw (they are the determinism unit).
func searchOutcome(t *testing.T, ts *httptest.Server, id string) (front json.RawMessage, res search.Result) {
	t.Helper()
	st := waitState(t, ts, id, JobDone, 120*time.Second)
	var raw struct {
		Front json.RawMessage `json:"front"`
	}
	if err := json.Unmarshal(st.Result, &raw); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return raw.Front, res
}

// TestSearchDeterministicAndCached is the acceptance path: a fixed-seed
// search completes with a provenance-rich front containing a
// non-dominated NoRD point; resubmitting the identical spec (searches
// are never memoized) re-runs the loop against warm caches, serving at
// least 90% of evaluations without fresh simulation and reproducing the
// front byte for byte.
func TestSearchDeterministicAndCached(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16})

	code, sr := postSearch(t, ts, smallSearch(3))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	front1, res1 := searchOutcome(t, ts, sr.ID)
	if len(res1.Front) == 0 {
		t.Fatal("empty front")
	}
	var nord bool
	for _, p := range res1.Front {
		if p.CacheKey == "" || len(p.Request) == 0 || p.Config.Width != 4 {
			t.Fatalf("front point missing provenance: %+v", p)
		}
		if p.Config.Design == "NoRD" {
			nord = true
		}
		for _, q := range res1.Front {
			if p.CacheKey != q.CacheKey && search.Dominates(q.Objectives, p.Objectives) {
				t.Fatalf("front point %s dominated by %s", p.CacheKey, q.CacheKey)
			}
		}
	}
	if !nord {
		t.Fatalf("no NoRD point on the front: %s", front1)
	}

	body := scrape(t, ts)
	evals1 := promValue(t, body, "nord_search_evaluations_total")
	hits1 := promValue(t, body, "nord_search_cache_hits_total")
	gens1 := promValue(t, body, "nord_search_generations_total")
	if evals1 == 0 || gens1 == 0 {
		t.Fatalf("search metrics not recorded: evals %v gens %v", evals1, gens1)
	}
	if fs := promValue(t, body, "nord_search_front_size"); fs != float64(len(res1.Front)) {
		t.Fatalf("front-size gauge %v, want %d", fs, len(res1.Front))
	}

	// The identical spec resubmits as a fresh job (completed searches drop
	// their dedup entry) and must reproduce the front from cache.
	code, sr2 := postSearch(t, ts, smallSearch(3))
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d", code)
	}
	if sr2.ID == sr.ID {
		t.Fatal("completed search was memoized; searches must re-run")
	}
	front2, _ := searchOutcome(t, ts, sr2.ID)
	if string(front1) != string(front2) {
		t.Fatalf("front not byte-identical across runs:\n%s\n%s", front1, front2)
	}
	body = scrape(t, ts)
	dEvals := promValue(t, body, "nord_search_evaluations_total") - evals1
	dHits := promValue(t, body, "nord_search_cache_hits_total") - hits1
	if dEvals == 0 {
		t.Fatal("second search made no evaluations")
	}
	if ratio := dHits / dEvals; ratio < 0.9 {
		t.Fatalf("second identical search hit the cache on %.0f%% of %v evaluations, want >= 90%%",
			ratio*100, dEvals)
	}
}

// TestSearchCoalescesWhileLive: a concurrent identical search coalesces
// onto the live job instead of racing a second loop over the frontier.
func TestSearchCoalescesWhileLive(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	long := `{"seed": 9, "generations": 8, "population": 8, "measure": 40000000}`
	code, sr := postSearch(t, ts, long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	code, sr2 := postSearch(t, ts, long)
	if code != http.StatusOK || sr2.ID != sr.ID || !sr2.Cached {
		t.Fatalf("live duplicate not coalesced: %d %+v", code, sr2)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sr.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, sr.ID).State != JobCanceled {
		if time.Now().After(deadline) {
			t.Fatal("search did not cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSearchLimit: concurrent searches beyond MaxSearches receive 429 +
// Retry-After, and a slot freed by cancellation is reusable.
func TestSearchLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, MaxSearches: 1})
	long := func(seed int) string {
		return `{"seed": ` + itoa(seed) + `, "generations": 8, "population": 8, "measure": 40000000}`
	}
	code, sr := postSearch(t, ts, long(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(long(2)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit search got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sr.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if getStatus(t, ts, sr.ID).State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("search did not cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The released slot admits a new search.
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, sr3 := postSearch(t, ts, smallSearch(4))
		if code == http.StatusAccepted {
			searchOutcome(t, ts, sr3.ID)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot not released: still %d", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSearchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	for name, body := range map[string]string{
		"malformed":     `{`,
		"unknown field": `{"seed": 1, "bogus": true}`,
		"bad algorithm": `{"algorithm": "annealing"}`,
		"bad design":    `{"space": {"designs": ["Maglev"]}}`,
		"bad topology":  `{"space": {"topologies": ["hypercube"]}}`,
		"tiny measure":  `{"measure": 10}`,
	} {
		code, _ := postSearch(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", name, code)
		}
	}
}

// TestSearchCancelNoLeak mirrors the stream-disconnect leak test for the
// search path: cancel a running search mid-generation and verify the
// driver, its evaluation goroutines and its ephemeral child jobs all
// unwind.
func TestSearchCancelNoLeak(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	baseline := runtime.NumGoroutine()

	// Children measure 40M cycles: the search cannot finish generation 0
	// before the cancel lands, so cancellation must tear down in-flight
	// child evaluations rather than wait them out.
	code, sr := postSearch(t, ts, `{"seed": 5, "generations": 8, "population": 8, "measure": 40000000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitState(t, ts, sr.ID, JobRunning, 10*time.Second)
	time.Sleep(100 * time.Millisecond) // let child evaluations start

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sr.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, sr.ID).State != JobCanceled {
		if time.Now().After(deadline) {
			t.Fatal("search did not cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
	http.DefaultClient.CloseIdleConnections()
	goroutinesSettleTo(t, baseline)
}
