package serve

import (
	"context"
	"encoding/json"
	"fmt"

	"nord/internal/memsys"
	"nord/internal/noc"
	"nord/internal/sim"
	"nord/internal/trace"
	"nord/internal/traffic"
)

// JobRequest is the POST /v1/jobs body: a kind plus the matching spec.
type JobRequest struct {
	Kind      string         `json:"kind"`
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
	Workload  *WorkloadSpec  `json:"workload,omitempty"`
	Trace     *TraceSpec     `json:"trace,omitempty"`
	Sweep     *SweepSpec     `json:"sweep,omitempty"`
}

// SyntheticSpec requests one synthetic-traffic run (sim.RunSynthetic).
type SyntheticSpec struct {
	Design        string  `json:"design"`
	Width         int     `json:"width"`
	Height        int     `json:"height"`
	Pattern       string  `json:"pattern"`
	Rate          float64 `json:"rate"`
	Warmup        int     `json:"warmup"`
	Measure       int     `json:"measure"`
	Seed          int64   `json:"seed"`
	WakeupLatency int     `json:"wakeup_latency"`
	NoPerfCentric bool    `json:"no_perf_centric"`
	ForcedOff     bool    `json:"forced_off"`
}

// WorkloadSpec requests one PARSEC-like full-system run (sim.RunWorkload).
type WorkloadSpec struct {
	Design    string  `json:"design"`
	Benchmark string  `json:"benchmark"`
	Scale     float64 `json:"scale"`
	Warmup    int     `json:"warmup"`
	Seed      int64   `json:"seed"`
	MaxCycles uint64  `json:"max_cycles"`
}

// TraceSpec requests a trace replay (sim.ReplayTrace) of a server-local
// trace file.
type TraceSpec struct {
	Design    string `json:"design"`
	Path      string `json:"path"`
	Warmup    int    `json:"warmup"`
	Seed      int64  `json:"seed"`
	MaxCycles uint64 `json:"max_cycles"`
}

// SweepSpec requests a parallel load sweep over all four designs
// (sim.ParallelLoadSweep).
type SweepSpec struct {
	Width   int       `json:"width"`
	Height  int       `json:"height"`
	Pattern string    `json:"pattern"`
	Rates   []float64 `json:"rates"`
	Measure int       `json:"measure"`
	Seed    int64     `json:"seed"`
}

// task is a resolved, runnable job body: the content-address key of the
// fully-filled config plus the closure that executes it and marshals the
// result.
type task struct {
	kind string
	key  string
	run  func(ctx context.Context, opt sim.RunOptions) ([]byte, error)
}

// resolveTask validates a request and resolves it into a task. Errors are
// client errors (HTTP 400).
func resolveTask(req *JobRequest) (*task, error) {
	switch req.Kind {
	case "synthetic":
		if req.Synthetic == nil {
			return nil, fmt.Errorf("kind %q needs a \"synthetic\" spec", req.Kind)
		}
		return req.Synthetic.resolve()
	case "workload":
		if req.Workload == nil {
			return nil, fmt.Errorf("kind %q needs a \"workload\" spec", req.Kind)
		}
		return req.Workload.resolve()
	case "trace":
		if req.Trace == nil {
			return nil, fmt.Errorf("kind %q needs a \"trace\" spec", req.Kind)
		}
		return req.Trace.resolve()
	case "sweep":
		if req.Sweep == nil {
			return nil, fmt.Errorf("kind %q needs a \"sweep\" spec", req.Kind)
		}
		return req.Sweep.resolve()
	case "":
		return nil, fmt.Errorf("missing job kind (synthetic, workload, trace, sweep)")
	default:
		return nil, fmt.Errorf("unknown job kind %q (synthetic, workload, trace, sweep)", req.Kind)
	}
}

func (sp *SyntheticSpec) resolve() (*task, error) {
	design, err := noc.DesignByName(sp.Design)
	if err != nil {
		return nil, err
	}
	if sp.Rate < 0 || sp.Rate > 1 {
		return nil, fmt.Errorf("rate %g outside [0, 1] flits/node/cycle", sp.Rate)
	}
	if sp.Width < 0 || sp.Height < 0 || sp.Warmup < 0 || sp.Measure < 0 {
		return nil, fmt.Errorf("negative dimension or cycle count")
	}
	if sp.Pattern != "" {
		if _, err := traffic.PatternByName(sp.Pattern); err != nil {
			return nil, err
		}
	}
	cfg := sim.SynthConfig{
		Design:        design,
		Width:         sp.Width,
		Height:        sp.Height,
		Pattern:       sp.Pattern,
		Rate:          sp.Rate,
		Warmup:        sp.Warmup,
		Measure:       sp.Measure,
		Seed:          sp.Seed,
		WakeupLatency: sp.WakeupLatency,
		NoPerfCentric: sp.NoPerfCentric,
		ForcedOff:     sp.ForcedOff,
	}.Filled()
	key, err := CacheKey("synthetic", cfg)
	if err != nil {
		return nil, err
	}
	return &task{kind: "synthetic", key: key, run: func(ctx context.Context, opt sim.RunOptions) ([]byte, error) {
		r, err := sim.RunSyntheticOpts(ctx, cfg, opt)
		if err != nil {
			return nil, err
		}
		return json.Marshal(r)
	}}, nil
}

func (sp *WorkloadSpec) resolve() (*task, error) {
	design, err := noc.DesignByName(sp.Design)
	if err != nil {
		return nil, err
	}
	if _, err := memsys.ProfileByName(sp.Benchmark); err != nil {
		return nil, err
	}
	if sp.Scale < 0 {
		return nil, fmt.Errorf("negative scale %g", sp.Scale)
	}
	cfg := sim.WorkloadConfig{
		Design:    design,
		Benchmark: sp.Benchmark,
		Scale:     sp.Scale,
		Warmup:    sp.Warmup,
		Seed:      sp.Seed,
		MaxCycles: sp.MaxCycles,
	}.Filled()
	key, err := CacheKey("workload", cfg)
	if err != nil {
		return nil, err
	}
	return &task{kind: "workload", key: key, run: func(ctx context.Context, opt sim.RunOptions) ([]byte, error) {
		r, err := sim.RunWorkloadOpts(ctx, cfg, opt)
		if err != nil {
			return nil, err
		}
		return json.Marshal(r)
	}}, nil
}

func (sp *TraceSpec) resolve() (*task, error) {
	design, err := noc.DesignByName(sp.Design)
	if err != nil {
		return nil, err
	}
	if sp.Path == "" {
		return nil, fmt.Errorf("trace path required")
	}
	cfg := sim.TraceConfig{
		Design:    design,
		Path:      sp.Path,
		Warmup:    sp.Warmup,
		Seed:      sp.Seed,
		MaxCycles: sp.MaxCycles,
	}.Filled()
	key, err := CacheKey("trace", cfg)
	if err != nil {
		return nil, err
	}
	return &task{kind: "trace", key: key, run: func(ctx context.Context, opt sim.RunOptions) ([]byte, error) {
		tr, err := trace.Load(cfg.Path)
		if err != nil {
			return nil, err
		}
		r, err := sim.ReplayTraceOpts(ctx, cfg, tr, opt)
		if err != nil {
			return nil, err
		}
		return json.Marshal(r)
	}}, nil
}

func (sp *SweepSpec) resolve() (*task, error) {
	if len(sp.Rates) == 0 {
		return nil, fmt.Errorf("sweep needs at least one rate")
	}
	for _, r := range sp.Rates {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("rate %g outside [0, 1] flits/node/cycle", r)
		}
	}
	// Normalise defaults explicitly so the cache key is independent of the
	// defaulting path.
	norm := *sp
	if norm.Width == 0 {
		norm.Width = 4
	}
	if norm.Height == 0 {
		norm.Height = 4
	}
	if norm.Pattern == "" {
		norm.Pattern = "uniform"
	}
	if norm.Measure == 0 {
		norm.Measure = 100_000
	}
	if _, err := traffic.PatternByName(norm.Pattern); err != nil {
		return nil, err
	}
	key, err := CacheKey("sweep", norm)
	if err != nil {
		return nil, err
	}
	return &task{kind: "sweep", key: key, run: func(ctx context.Context, opt sim.RunOptions) ([]byte, error) {
		pts, err := sim.ParallelLoadSweepCtx(ctx, norm.Width, norm.Height, norm.Pattern, norm.Rates, norm.Measure, norm.Seed)
		if err != nil {
			return nil, err
		}
		return json.Marshal(pts)
	}}, nil
}
