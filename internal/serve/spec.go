package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"

	"nord/internal/memsys"
	"nord/internal/noc"
	"nord/internal/sim"
	"nord/internal/topology"
	"nord/internal/trace"
	"nord/internal/traffic"
)

// JobRequest is the POST /v1/jobs body: a kind plus the matching spec.
type JobRequest struct {
	Kind      string         `json:"kind"`
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
	Workload  *WorkloadSpec  `json:"workload,omitempty"`
	Trace     *TraceSpec     `json:"trace,omitempty"`
	Sweep     *SweepSpec     `json:"sweep,omitempty"`
}

// SyntheticSpec requests one synthetic-traffic run (sim.RunSynthetic).
// Warmup is a pointer so an explicit 0 ("no warmup") is distinguishable
// from the field being omitted (the paper's default); TraceEvents asks
// the server to record a cycle-level event trace for this job, streamed
// at GET /v1/jobs/{id}/trace. Parallelism selects the tick kernel's
// shard count (0 = serial); results are bit-identical across values, so
// it is an execution hint excluded from the job's cache key — jobs that
// differ only in parallelism coalesce.
type SyntheticSpec struct {
	Design string `json:"design"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	// Topology selects the interconnect: "mesh" (default), "torus" or
	// "cmesh". Width/Height size the router grid in every case.
	Topology      string  `json:"topology,omitempty"`
	Pattern       string  `json:"pattern"`
	Rate          float64 `json:"rate"`
	Warmup        *int    `json:"warmup,omitempty"`
	Measure       int     `json:"measure"`
	Seed          int64   `json:"seed"`
	WakeupLatency int     `json:"wakeup_latency"`
	NoPerfCentric bool    `json:"no_perf_centric"`
	ForcedOff     bool    `json:"forced_off"`
	TraceEvents   bool    `json:"trace_events,omitempty"`
	Parallelism   int     `json:"parallelism,omitempty"`
	// Microarchitecture and power-gating knobs, exposed for the
	// design-space search (POST /v1/search); 0 selects the Table 1
	// defaults (4 VCs, 5-flit buffers, gate after 2 idle cycles, wakeup
	// thresholds 1/6).
	VCs            int `json:"vcs,omitempty"`
	BufferDepth    int `json:"buffer_depth,omitempty"`
	GateIdle       int `json:"gate_idle,omitempty"`
	ThresholdPerf  int `json:"threshold_perf,omitempty"`
	ThresholdPower int `json:"threshold_power,omitempty"`
}

// WorkloadSpec requests one PARSEC-like full-system run (sim.RunWorkload).
type WorkloadSpec struct {
	Design      string  `json:"design"`
	Benchmark   string  `json:"benchmark"`
	Scale       float64 `json:"scale"`
	Warmup      *int    `json:"warmup,omitempty"`
	Seed        int64   `json:"seed"`
	MaxCycles   uint64  `json:"max_cycles"`
	TraceEvents bool    `json:"trace_events,omitempty"`
}

// TraceSpec requests a trace replay (sim.ReplayTrace) of a server-local
// trace file.
type TraceSpec struct {
	Design      string `json:"design"`
	Path        string `json:"path"`
	Warmup      *int   `json:"warmup,omitempty"`
	Seed        int64  `json:"seed"`
	MaxCycles   uint64 `json:"max_cycles"`
	TraceEvents bool   `json:"trace_events,omitempty"`
}

// maxGridDim caps router-grid dimensions accepted over the wire: a
// typo'd 10000x10000 request would otherwise try to materialise ~10^8
// routers before any simulation work reveals the mistake.
const maxGridDim = 256

// maxSweepRates caps the rate list of one sweep job; each rate fans out
// into a full simulation per design.
const maxSweepRates = 128

// checkGridDims rejects out-of-range router grid dimensions (0 means
// "use the default" and is allowed).
func checkGridDims(w, h int) error {
	if w < 0 || h < 0 {
		return fmt.Errorf("negative dimension %dx%d", w, h)
	}
	if w > maxGridDim || h > maxGridDim {
		return fmt.Errorf("grid %dx%d exceeds the %dx%d limit", w, h, maxGridDim, maxGridDim)
	}
	return nil
}

// warmupValue maps a spec's optional warmup onto the sim layer's
// convention: omitted means "use the design default" (encoded as 0),
// an explicit 0 means "no warmup" (the sim.ZeroWarmup sentinel), and
// negatives are client errors.
func warmupValue(w *int) (int, error) {
	switch {
	case w == nil:
		return 0, nil
	case *w < 0:
		return 0, fmt.Errorf("negative warmup %d", *w)
	case *w == 0:
		return sim.ZeroWarmup, nil
	}
	return *w, nil
}

// SweepSpec requests a parallel load sweep over all four designs
// (sim.ParallelLoadSweep).
type SweepSpec struct {
	Width   int       `json:"width"`
	Height  int       `json:"height"`
	Pattern string    `json:"pattern"`
	Rates   []float64 `json:"rates"`
	Measure int       `json:"measure"`
	Seed    int64     `json:"seed"`
}

// runInfo carries a completed run's headline counters back to the server
// for the per-design Prometheus series (nil for sweeps, whose cells span
// designs).
type runInfo struct {
	design  noc.Design
	wakeups uint64
	detours uint64
}

func resultInfo(r sim.Result) *runInfo {
	return &runInfo{design: r.Design, wakeups: r.Wakeups, detours: r.Misroutes}
}

// RunMeta is runInfo in wire form: the headline counters a fleet worker
// reports alongside its payload so the coordinator's per-design metrics
// match what a local run would have recorded.
type RunMeta struct {
	Design  string `json:"design,omitempty"`
	Wakeups uint64 `json:"wakeups,omitempty"`
	Detours uint64 `json:"detours,omitempty"`
}

// ExecuteRequest resolves req and runs it on the calling goroutine — the
// fleet worker's execution path. The returned payload is byte-identical
// to what a local run of the same request would produce and cache
// (results are deterministic and the marshalling is canonical), which is
// what makes fleet-side retries and duplicate executions harmless.
func ExecuteRequest(ctx context.Context, req *JobRequest, opt sim.RunOptions) ([]byte, *RunMeta, error) {
	t, err := resolveSpec(req)
	if err != nil {
		return nil, nil, err
	}
	payload, info, err := t.run(ctx, opt)
	var meta *RunMeta
	if info != nil {
		meta = &RunMeta{Design: info.design.String(), Wakeups: info.wakeups, Detours: info.detours}
	}
	return payload, meta, err
}

// task is a resolved, runnable job body: the content-address key of the
// fully-filled config plus the closure that executes it and marshals the
// result. traced marks jobs recording a cycle-level event trace: their
// key carries a "+trace" kind suffix so they never coalesce with (or get
// served from the cache of) untraced runs, which would have no events to
// stream.
type task struct {
	kind   string
	key    string
	traced bool
	req    []byte // original JobRequest, re-marshalled: the fleet shipping unit
	run    func(ctx context.Context, opt sim.RunOptions) ([]byte, *runInfo, error)
}

// taskKey derives the content-address key, isolating traced jobs in their
// own key space.
func taskKey(kind string, traced bool, cfg any) (string, error) {
	if traced {
		kind += "+trace"
	}
	return CacheKey(kind, cfg)
}

// resolveTask validates a request and resolves it into a task. Errors are
// client errors (HTTP 400).
func resolveTask(req *JobRequest) (*task, error) {
	t, err := resolveSpec(req)
	if err != nil {
		return nil, err
	}
	// Keep the original request on the task: a fleet coordinator ships it
	// verbatim to workers, which re-resolve it locally. (The marshal
	// cannot fail: JobRequest is plain data that just decoded.)
	t.req, err = json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func resolveSpec(req *JobRequest) (*task, error) {
	switch req.Kind {
	case "synthetic":
		if req.Synthetic == nil {
			return nil, fmt.Errorf("kind %q needs a \"synthetic\" spec", req.Kind)
		}
		return req.Synthetic.resolve()
	case "workload":
		if req.Workload == nil {
			return nil, fmt.Errorf("kind %q needs a \"workload\" spec", req.Kind)
		}
		return req.Workload.resolve()
	case "trace":
		if req.Trace == nil {
			return nil, fmt.Errorf("kind %q needs a \"trace\" spec", req.Kind)
		}
		return req.Trace.resolve()
	case "sweep":
		if req.Sweep == nil {
			return nil, fmt.Errorf("kind %q needs a \"sweep\" spec", req.Kind)
		}
		return req.Sweep.resolve()
	case "":
		return nil, fmt.Errorf("missing job kind (synthetic, workload, trace, sweep)")
	default:
		return nil, fmt.Errorf("unknown job kind %q (synthetic, workload, trace, sweep)", req.Kind)
	}
}

func (sp *SyntheticSpec) resolve() (*task, error) {
	design, err := noc.DesignByName(sp.Design)
	if err != nil {
		return nil, err
	}
	kind, err := topology.KindByName(sp.Topology)
	if err != nil {
		return nil, err
	}
	if sp.Rate < 0 || sp.Rate > 1 {
		return nil, fmt.Errorf("rate %g outside [0, 1] flits/node/cycle", sp.Rate)
	}
	if err := checkGridDims(sp.Width, sp.Height); err != nil {
		return nil, err
	}
	if sp.Measure < 0 {
		return nil, fmt.Errorf("negative cycle count")
	}
	warmup, err := warmupValue(sp.Warmup)
	if err != nil {
		return nil, err
	}
	if sp.Pattern != "" {
		if _, err := traffic.PatternByName(sp.Pattern); err != nil {
			return nil, err
		}
	}
	if sp.Parallelism < 0 {
		return nil, fmt.Errorf("negative parallelism %d (0 = serial)", sp.Parallelism)
	}
	if sp.VCs < 0 || sp.BufferDepth < 0 || sp.GateIdle < 0 ||
		sp.ThresholdPerf < 0 || sp.ThresholdPower < 0 {
		return nil, fmt.Errorf("negative microarchitecture knob (vcs, buffer_depth, gate_idle, threshold_perf, threshold_power must be >= 0)")
	}
	if minVCs := 2; sp.VCs > 0 {
		if design == noc.NoRD || kind == topology.KindTorus {
			// NoRD's ring escape pair and the torus dateline pair both
			// need 2 escape VCs + 1 adaptive.
			minVCs = 3
		}
		if sp.VCs < minVCs {
			return nil, fmt.Errorf("design %v on %v needs at least %d VCs per class, got %d", design, kind, minVCs, sp.VCs)
		}
	}
	cfg := sim.SynthConfig{
		Design:         design,
		Width:          sp.Width,
		Height:         sp.Height,
		Topology:       sp.Topology,
		Pattern:        sp.Pattern,
		Rate:           sp.Rate,
		Warmup:         warmup,
		Measure:        sp.Measure,
		Seed:           sp.Seed,
		WakeupLatency:  sp.WakeupLatency,
		NoPerfCentric:  sp.NoPerfCentric,
		ForcedOff:      sp.ForcedOff,
		VCsPerClass:    sp.VCs,
		BufferDepth:    sp.BufferDepth,
		GateIdleCycles: sp.GateIdle,
		ThresholdPerf:  sp.ThresholdPerf,
		ThresholdPower: sp.ThresholdPower,
	}.Filled()
	key, err := taskKey("synthetic", sp.TraceEvents, cfg)
	if err != nil {
		return nil, err
	}
	// Clamp (rather than reject) parallelism above the local core count:
	// the same spec is shipped verbatim to fleet workers with
	// heterogeneous core counts, and results are bit-identical at any P.
	parallelism := sp.Parallelism
	if max := runtime.NumCPU(); parallelism > max {
		parallelism = max
	}
	return &task{kind: "synthetic", key: key, traced: sp.TraceEvents, run: func(ctx context.Context, opt sim.RunOptions) ([]byte, *runInfo, error) {
		opt.Parallelism = parallelism
		r, err := sim.RunSyntheticOpts(ctx, cfg, opt)
		if err != nil {
			return nil, nil, err
		}
		b, err := json.Marshal(r)
		return b, resultInfo(r), err
	}}, nil
}

// syntheticSpecFor converts a filled SynthConfig back into its wire
// spec — the search layer's bridge from genome-decoded candidates to
// ordinary job submissions. Re-resolving the returned spec reproduces
// the same filled config (and therefore the same cache key), because
// fill() is idempotent and the search decoder only sets fields the wire
// spec can express.
func syntheticSpecFor(cfg sim.SynthConfig) *SyntheticSpec {
	warmup := cfg.Warmup
	if warmup < 0 {
		warmup = 0
	}
	return &SyntheticSpec{
		Design:         cfg.Design.String(),
		Width:          cfg.Width,
		Height:         cfg.Height,
		Topology:       cfg.Topology,
		Pattern:        cfg.Pattern,
		Rate:           cfg.Rate,
		Warmup:         &warmup,
		Measure:        cfg.Measure,
		Seed:           cfg.Seed,
		WakeupLatency:  cfg.WakeupLatency,
		NoPerfCentric:  cfg.NoPerfCentric,
		ForcedOff:      cfg.ForcedOff,
		VCs:            cfg.VCsPerClass,
		BufferDepth:    cfg.BufferDepth,
		GateIdle:       cfg.GateIdleCycles,
		ThresholdPerf:  cfg.ThresholdPerf,
		ThresholdPower: cfg.ThresholdPower,
	}
}

func (sp *WorkloadSpec) resolve() (*task, error) {
	design, err := noc.DesignByName(sp.Design)
	if err != nil {
		return nil, err
	}
	if _, err := memsys.ProfileByName(sp.Benchmark); err != nil {
		return nil, err
	}
	if sp.Scale < 0 {
		return nil, fmt.Errorf("negative scale %g", sp.Scale)
	}
	warmup, err := warmupValue(sp.Warmup)
	if err != nil {
		return nil, err
	}
	cfg := sim.WorkloadConfig{
		Design:    design,
		Benchmark: sp.Benchmark,
		Scale:     sp.Scale,
		Warmup:    warmup,
		Seed:      sp.Seed,
		MaxCycles: sp.MaxCycles,
	}.Filled()
	key, err := taskKey("workload", sp.TraceEvents, cfg)
	if err != nil {
		return nil, err
	}
	return &task{kind: "workload", key: key, traced: sp.TraceEvents, run: func(ctx context.Context, opt sim.RunOptions) ([]byte, *runInfo, error) {
		r, err := sim.RunWorkloadOpts(ctx, cfg, opt)
		if err != nil {
			return nil, nil, err
		}
		b, err := json.Marshal(r)
		return b, resultInfo(r), err
	}}, nil
}

func (sp *TraceSpec) resolve() (*task, error) {
	design, err := noc.DesignByName(sp.Design)
	if err != nil {
		return nil, err
	}
	if sp.Path == "" {
		return nil, fmt.Errorf("trace path required")
	}
	warmup, err := warmupValue(sp.Warmup)
	if err != nil {
		return nil, err
	}
	cfg := sim.TraceConfig{
		Design:    design,
		Path:      sp.Path,
		Warmup:    warmup,
		Seed:      sp.Seed,
		MaxCycles: sp.MaxCycles,
	}.Filled()
	key, err := taskKey("trace", sp.TraceEvents, cfg)
	if err != nil {
		return nil, err
	}
	return &task{kind: "trace", key: key, traced: sp.TraceEvents, run: func(ctx context.Context, opt sim.RunOptions) ([]byte, *runInfo, error) {
		tr, err := trace.Load(cfg.Path)
		if err != nil {
			return nil, nil, err
		}
		r, err := sim.ReplayTraceOpts(ctx, cfg, tr, opt)
		if err != nil {
			return nil, nil, err
		}
		b, err := json.Marshal(r)
		return b, resultInfo(r), err
	}}, nil
}

func (sp *SweepSpec) resolve() (*task, error) {
	if len(sp.Rates) == 0 {
		return nil, fmt.Errorf("sweep needs at least one rate")
	}
	if len(sp.Rates) > maxSweepRates {
		return nil, fmt.Errorf("sweep has %d rates, limit %d", len(sp.Rates), maxSweepRates)
	}
	if err := checkGridDims(sp.Width, sp.Height); err != nil {
		return nil, err
	}
	for _, r := range sp.Rates {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("rate %g outside [0, 1] flits/node/cycle", r)
		}
	}
	// Normalise defaults explicitly so the cache key is independent of the
	// defaulting path.
	norm := *sp
	if norm.Width == 0 {
		norm.Width = 4
	}
	if norm.Height == 0 {
		norm.Height = 4
	}
	if norm.Pattern == "" {
		norm.Pattern = "uniform"
	}
	if norm.Measure == 0 {
		norm.Measure = 100_000
	}
	if _, err := traffic.PatternByName(norm.Pattern); err != nil {
		return nil, err
	}
	key, err := CacheKey("sweep", norm)
	if err != nil {
		return nil, err
	}
	return &task{kind: "sweep", key: key, run: func(ctx context.Context, opt sim.RunOptions) ([]byte, *runInfo, error) {
		pts, err := sim.ParallelLoadSweepCtx(ctx, norm.Width, norm.Height, norm.Pattern, norm.Rates, norm.Measure, norm.Seed)
		if err != nil {
			return nil, nil, err
		}
		b, err := json.Marshal(pts)
		return b, nil, err
	}}, nil
}
