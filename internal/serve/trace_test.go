package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// tracedSynthJob is smallSynthJob with trace_events set: a NoRD run busy
// enough to gate routers off and wake them during the measured window.
const tracedSynthJob = `{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":100,"measure":2000,"seed":42,"trace_events":true}}`

// traceLine is the union of the /trace NDJSON line shapes.
type traceLine struct {
	Type    string   `json:"type"`
	Cycle   uint64   `json:"cycle"`
	Router  int32    `json:"router"`
	Kind    string   `json:"kind"`
	Cause   string   `json:"cause"`
	Done    bool     `json:"done"`
	State   JobState `json:"state"`
	Total   uint64   `json:"events_total"`
	Dropped uint64   `json:"events_dropped"`
}

func readTraceStream(t *testing.T, ts *httptest.Server, id string) []traceLine {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("trace stream: %d %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type=%q", ct)
	}
	var lines []traceLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ln traceLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			t.Fatalf("bad trace NDJSON line %q: %v", raw, err)
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestServerTraceStream submits a traced job and checks the /trace NDJSON
// stream end to end: event lines with power-gating kinds, then exactly one
// end line whose totals match the tracer's recording counters.
func TestServerTraceStream(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	code, sr, _ := postJob(t, ts, tracedSynthJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	// The stream is opened before completion, so it exercises the
	// subscribe-then-replay path as well as live batches.
	lines := readTraceStream(t, ts, sr.ID)

	var events, ends int
	kinds := map[string]int{}
	var end traceLine
	for _, ln := range lines {
		switch ln.Type {
		case "event":
			events++
			kinds[ln.Kind]++
		case "end":
			ends++
			end = ln
		default:
			t.Fatalf("unexpected line type %q", ln.Type)
		}
	}
	if events == 0 {
		t.Fatal("no trace events streamed")
	}
	if ends != 1 {
		t.Fatalf("want exactly one end line, got %d", ends)
	}
	if !end.Done || end.State != JobDone {
		t.Fatalf("end line done=%v state=%s", end.Done, end.State)
	}
	if end.Total == 0 || uint64(events) > end.Total {
		t.Fatalf("end totals: total=%d dropped=%d, streamed %d", end.Total, end.Dropped, events)
	}
	if kinds["gate_off"] == 0 || kinds["wake_start"] == 0 {
		t.Fatalf("missing power-gating kinds in stream: %v", kinds)
	}

	st := waitState(t, ts, sr.ID, JobDone, 30*time.Second)
	if !st.Traced {
		t.Fatal("job status does not mark the job as traced")
	}
	// A second read replays the retained history with a fresh end line.
	again := readTraceStream(t, ts, sr.ID)
	if len(again) == 0 || again[len(again)-1].Type != "end" {
		t.Fatal("replay after completion did not terminate with an end line")
	}
	// Traced runs bypass the result cache entirely.
	if got := s.Metrics().CacheHits.Load(); got != 0 {
		t.Fatalf("traced run recorded %d cache hits", got)
	}
}

// TestServerTraceRequiresTracedJob checks the guidance error for jobs
// submitted without trace_events.
func TestServerTraceRequiresTracedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	code, sr, _ := postJob(t, ts, smallSynthJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitState(t, ts, sr.ID, JobDone, 30*time.Second)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("untraced job trace: %d, want 409", resp.StatusCode)
	}
	if !strings.Contains(string(data), "trace_events") {
		t.Fatalf("error body does not point at trace_events: %s", data)
	}
}

// TestServerTraceKeyIsolation checks that a traced submission never
// coalesces with (or is served from the cache of) an identical untraced
// run — they differ only in trace_events, so their cache keys must differ.
func TestServerTraceKeyIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	code, plain, _ := postJob(t, ts, smallSynthJob)
	if code != http.StatusAccepted {
		t.Fatalf("plain submit: %d", code)
	}
	waitState(t, ts, plain.ID, JobDone, 30*time.Second)

	code, traced, _ := postJob(t, ts, tracedSynthJob)
	if code != http.StatusAccepted || traced.Cached {
		t.Fatalf("traced submit after identical untraced run: code=%d cached=%v", code, traced.Cached)
	}
	if traced.ID == plain.ID {
		t.Fatal("traced job coalesced onto the untraced job")
	}
	waitState(t, ts, traced.ID, JobDone, 30*time.Second)
	if got := s.Metrics().SimsExecuted.Load(); got != 2 {
		t.Fatalf("executed %d simulations, want 2 (traced run must not hit the cache)", got)
	}
}

// TestRetryAfterSeconds pins the clamp: the header must never render as
// "Retry-After: 0", which clients treat as "retry immediately".
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5 * time.Second, 1},
		{0, 1},
		{300 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%s)=%d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestServerRetryAfterClamped overflows a server whose RetryAfter was
// configured sub-second and checks the 429 carries "Retry-After: 1".
func TestServerRetryAfterClamped(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 50 * time.Millisecond})
	code, first, _ := postJob(t, ts, slowSynthJob(11))
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	waitState(t, ts, first.ID, JobRunning, 10*time.Second)
	code, second, _ := postJob(t, ts, slowSynthJob(12))
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	code, _, hdr := postJob(t, ts, slowSynthJob(13))
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After=%q, want \"1\" (sub-second hint must clamp up, never 0)", ra)
	}
	for _, id := range []string{first.ID, second.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerPerDesignMetrics checks the per-design wakeup/detour series:
// all four design labels are present from the first scrape, and a
// completed NoRD run moves only the NoRD counters.
func TestServerPerDesignMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	body := scrape(t, ts)
	for _, d := range []string{"No_PG", "Conv_PG", "Conv_PG_OPT", "NoRD"} {
		for _, m := range []string{"nord_sim_wakeups_total", "nord_sim_detours_total"} {
			series := fmt.Sprintf("%s{design=%q}", m, d)
			if v := promValue(t, body, series); v != 0 {
				t.Fatalf("%s=%v before any run", series, v)
			}
		}
	}
	code, sr, _ := postJob(t, ts, smallSynthJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitState(t, ts, sr.ID, JobDone, 30*time.Second)
	body = scrape(t, ts)
	if v := promValue(t, body, `nord_sim_wakeups_total{design="NoRD"}`); v <= 0 {
		t.Fatalf(`nord_sim_wakeups_total{design="NoRD"}=%v after a NoRD run`, v)
	}
	if v := promValue(t, body, `nord_sim_wakeups_total{design="No_PG"}`); v != 0 {
		t.Fatalf(`nord_sim_wakeups_total{design="No_PG"}=%v, want 0`, v)
	}
}

// goroutinesSettleTo polls until the goroutine count drops back to the
// baseline (plus slack for runtime/test-harness goroutines), failing after
// the deadline with a dump of what leaked.
func goroutinesSettleTo(t *testing.T, baseline int) {
	t.Helper()
	const slack = 4
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// slowTracedJob runs long enough for subscribers to attach and disconnect
// mid-run; a NoRD design at low load keeps trace batches flowing.
func slowTracedJob(seed int) string {
	return fmt.Sprintf(`{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":100,"measure":80000000,"seed":%d,"trace_events":true}}`, seed)
}

// TestServerStreamDisconnectNoLeak attaches /events and /trace streams to
// a running job, disconnects them mid-run, cancels the job, and checks no
// handler or subscriber goroutine is left behind.
func TestServerStreamDisconnectNoLeak(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, ProgressEvery: 500})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	code, sr, _ := postJob(t, ts, slowTracedJob(21))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitState(t, ts, sr.ID, JobRunning, 10*time.Second)

	// Open both stream kinds, read a little, then drop each connection
	// mid-stream by canceling its request context.
	for _, path := range []string{"/events", "/trace", "/events", "/trace"} {
		ctx, cancel := context.WithCancel(context.Background())
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+sr.ID+path, nil)
		resp, err := client.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		buf := make([]byte, 256)
		_, _ = resp.Body.Read(buf) // ensure the handler is streaming
		cancel()
		resp.Body.Close()
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sr.ID, nil)
	if _, err := client.Do(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, sr.ID).State != JobCanceled {
		if time.Now().After(deadline) {
			t.Fatal("job did not cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	goroutinesSettleTo(t, baseline)
}

// TestServerConcurrentScrapes hammers /metrics while jobs are being
// submitted and completing — run with -race, this is the regression net
// for the counter wiring added for the per-design series.
func TestServerConcurrentScrapes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body := scrape(t, ts)
				if !strings.Contains(body, "nord_sim_wakeups_total") {
					t.Error("scrape missing per-design series")
					return
				}
			}
		}()
	}
	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":100,"measure":2000,"seed":%d,"trace_events":%v}}`, 100+i, i%2 == 0)
		code, sr, _ := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids = append(ids, sr.ID)
	}
	for _, id := range ids {
		waitState(t, ts, id, JobDone, 60*time.Second)
	}
	close(stop)
	wg.Wait()
}
