package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"nord/internal/search"
	"nord/internal/sim"
	"nord/internal/stats"
)

// Design-space search jobs (POST /v1/search). A search is an ordinary
// job to clients — it has an ID, /events progress, DELETE cancellation
// and a JSON result — but it executes on a dedicated goroutine instead
// of the worker pool: a search spends its life waiting on child
// evaluations, and parking it in the pool could deadlock the pool
// against itself. Its children are plain synthetic jobs submitted
// through the Dispatcher seam, so they coalesce in-flight, memoize in
// the content-addressed cache across generations and users, and fan out
// to fleet workers when a coordinator has them.
//
// Search jobs themselves are never memoized: a completed search drops
// its dedup-index entry, so resubmitting an identical spec re-runs the
// loop (cheaply — its children hit the cache). Only concurrent identical
// searches coalesce.

// resolveSearch canonicalizes and validates a search spec; errors are
// client errors.
func resolveSearch(spec *search.Spec) (search.Spec, *task, error) {
	filled := spec.Filled()
	if err := filled.Validate(); err != nil {
		return filled, nil, err
	}
	key, err := CacheKey("search", filled)
	if err != nil {
		return filled, nil, err
	}
	req, err := json.Marshal(filled)
	if err != nil {
		return filled, nil, err
	}
	// task.run stays nil: search jobs never enter a Dispatcher.
	return filled, &task{kind: "search", key: key, req: req}, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	var spec search.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	filled, t, err := resolveSearch(&spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	// A live identical search: coalesce onto it rather than racing two
	// loops over the same frontier.
	if j, ok := s.byKey[t.key]; ok {
		s.metrics.JobsSubmitted.Add(1)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, submitResponse{ID: j.ID, Key: j.Key, State: j.State(), Cached: true})
		return
	}
	if !s.searches.tryAcquire(s.cfg.MaxSearches) {
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		s.rngMu.Lock()
		hint := retryAfterHint(s.cfg.RetryAfter, s.rng.Float64())
		s.rngMu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(hint)))
		writeError(w, http.StatusTooManyRequests, "search limit reached")
		return
	}
	j := s.newJobLocked(t)
	s.metrics.JobsSubmitted.Add(1)
	s.searchWG.Add(1)
	s.mu.Unlock()
	go s.runSearch(j, filled)
	writeJSON(w, http.StatusAccepted, submitResponse{ID: j.ID, Key: j.Key, State: JobQueued, Cached: false})
}

// runSearch drives one search to completion on its own goroutine.
func (s *Server) runSearch(j *Job, spec search.Spec) {
	defer s.searchWG.Done()
	defer s.searches.release()
	// Searches are never memoized (see the package comment above); only
	// their children are.
	defer s.dropKey(j)
	if !j.markRunning() {
		s.DropCanceled(j)
		return
	}
	ctx := j.ctx
	if s.cfg.JobDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, s.cfg.JobDeadline, ErrJobDeadline)
		defer cancel()
	}
	d := &search.Driver{
		Spec:        spec,
		Eval:        s.searchEval(),
		Concurrency: s.cfg.SearchConcurrency,
		Progress: func(u search.Update) {
			s.metrics.SearchGenerations.Add(1)
			// Cycle stays 0: the child evaluation jobs already account
			// their simulated cycles.
			s.PublishProgress(j, stats.Progress{
				Phase:       "generation",
				Generation:  u.Generation,
				Generations: u.Generations,
				Evaluations: u.Evaluations,
				CacheHits:   u.CacheHits,
				FrontSize:   u.FrontSize,
			})
		},
	}
	res, err := d.Run(ctx)
	switch {
	case err == nil:
		payload, merr := json.Marshal(res)
		if merr != nil {
			if j.finish(JobFailed, nil, merr.Error()) {
				s.metrics.JobsFailed.Add(1)
			}
			return
		}
		if j.finish(JobDone, payload, "") {
			s.metrics.JobsDone.Add(1)
			s.metrics.SearchFrontSize.Store(uint64(len(res.Front)))
		}
	case errors.Is(err, ErrJobDeadline):
		if j.finish(JobFailed, nil, err.Error()) {
			s.metrics.JobsFailed.Add(1)
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if j.finish(JobCanceled, nil, err.Error()) {
			s.metrics.JobsCanceled.Add(1)
		}
	default:
		if j.finish(JobFailed, nil, err.Error()) {
			s.metrics.JobsFailed.Add(1)
		}
	}
}

// searchEval builds the EvalFunc wiring a search's candidate
// evaluations into the job machinery: each candidate becomes an ordinary
// synthetic job (content-addressed, coalesced, cached, fleet-eligible),
// retained while this evaluation waits on it and canceled if every
// waiting search abandons it.
func (s *Server) searchEval() search.EvalFunc {
	return func(ctx context.Context, cand search.Candidate) (search.Evaluation, error) {
		req := &JobRequest{Kind: "synthetic", Synthetic: syntheticSpecFor(cand.Sim)}
		t, err := resolveTask(req)
		if err != nil {
			return search.Evaluation{}, fmt.Errorf("serve: resolve candidate: %w", err)
		}
		var (
			child  *Job
			served bool
		)
		for {
			child, served, err = s.submitTask(t, true)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				return search.Evaluation{}, err
			}
			// The queue drains as workers finish; retry instead of failing
			// the whole search on transient backpressure.
			select {
			case <-ctx.Done():
				return search.Evaluation{}, context.Cause(ctx)
			case <-time.After(5 * time.Millisecond):
			}
		}
		s.metrics.SearchEvaluations.Add(1)
		if served {
			s.metrics.SearchCacheHits.Add(1)
		}
		child.retain()
		defer child.release()
		select {
		case <-child.Done():
		case <-ctx.Done():
			return search.Evaluation{}, context.Cause(ctx)
		}
		ev := search.Evaluation{CacheKey: child.Key, Request: t.req, Cached: served}
		st := child.status(true)
		switch st.State {
		case JobDone:
			var res sim.Result
			if err := json.Unmarshal(st.Result, &res); err != nil {
				return search.Evaluation{}, fmt.Errorf("serve: decode candidate result: %w", err)
			}
			obj, ok := search.Extract(cand.Sim, res)
			ev.Objectives = obj
			ev.Infeasible = !ok
		case JobFailed:
			// Saturated or deadlocked configurations are constraint-
			// dominated points, not search failures.
			ev.Infeasible = true
		default:
			// Canceled out from under us (client DELETE on the child).
			return search.Evaluation{}, fmt.Errorf("serve: candidate evaluation %s canceled", child.ID)
		}
		return ev, nil
	}
}
