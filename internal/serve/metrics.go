package serve

import (
	"fmt"
	"io"
	"sync/atomic"

	"nord/internal/noc"
)

// metricDesigns is the label set for the per-design counters, in the
// paper's presentation order; every series is emitted (zeros included) so
// dashboards see a stable set from the first scrape.
var metricDesigns = []noc.Design{noc.NoPG, noc.ConvPG, noc.ConvPGOpt, noc.NoRD}

// Metrics is the serve layer's counter set, rendered in Prometheus text
// exposition format at /metrics. Counters are cumulative since process
// start; gauges are sampled at scrape time by the server.
type Metrics struct {
	JobsSubmitted atomic.Uint64 // accepted submissions, including cache hits
	JobsRejected  atomic.Uint64 // 429 queue-full rejections
	JobsDone      atomic.Uint64
	JobsFailed    atomic.Uint64
	JobsCanceled  atomic.Uint64
	SimsExecuted  atomic.Uint64 // simulations actually run (not served from cache)
	CacheHits     atomic.Uint64 // coalesced onto an in-flight job or served from cache
	CacheMisses   atomic.Uint64
	SimCycles     atomic.Uint64 // cumulative simulated cycles across all jobs

	// Design-space search (POST /v1/search) counters: candidate
	// evaluations submitted by search drivers, how many of those were
	// served from the content-addressed cache (in-flight coalescing
	// included), and completed search generations. SearchFrontSize is a
	// gauge holding the Pareto-front size of the most recently completed
	// search.
	SearchEvaluations atomic.Uint64
	SearchCacheHits   atomic.Uint64
	SearchGenerations atomic.Uint64
	SearchFrontSize   atomic.Uint64

	// Remote cache tier (GET/PUT /v1/cache/{key}) counters: hits and
	// misses served to fleet workers, payloads written back by workers,
	// PUTs rejected for a digest mismatch, and the cumulative PUT retries
	// workers reported while the tier was flaky (folded in from result
	// reports by the fleet coordinator).
	CacheRemoteHits        atomic.Uint64
	CacheRemoteMisses      atomic.Uint64
	CacheRemotePuts        atomic.Uint64
	CacheRemotePutRejected atomic.Uint64
	CacheRemotePutRetries  atomic.Uint64

	// Per-design counters, indexed by noc.Design: router wakeups and
	// misrouted (detoured) hops measured by completed single-run jobs.
	// Sweeps do not contribute (their cells span designs).
	SimWakeups [4]atomic.Uint64
	SimDetours [4]atomic.Uint64
}

// AddRun folds one completed run's headline counters into the per-design
// series.
func (m *Metrics) AddRun(d noc.Design, wakeups, detours uint64) {
	if int(d) < 0 || int(d) >= len(m.SimWakeups) {
		return
	}
	m.SimWakeups[d].Add(wakeups)
	m.SimDetours[d].Add(detours)
}

// Gauges are the point-in-time values the server samples at scrape time.
type Gauges struct {
	QueueDepth   int
	Workers      int
	BusyWorkers  int
	CacheEntries int
	JobsQueued   int
	JobsRunning  int
}

// WriteProm renders the metrics in Prometheus text exposition format.
func (m *Metrics) WriteProm(w io.Writer, g Gauges) {
	fmt.Fprintf(w, "# HELP nord_jobs_total Jobs that reached a terminal state, by state.\n")
	fmt.Fprintf(w, "# TYPE nord_jobs_total counter\n")
	fmt.Fprintf(w, "nord_jobs_total{state=\"done\"} %d\n", m.JobsDone.Load())
	fmt.Fprintf(w, "nord_jobs_total{state=\"failed\"} %d\n", m.JobsFailed.Load())
	fmt.Fprintf(w, "nord_jobs_total{state=\"canceled\"} %d\n", m.JobsCanceled.Load())
	fmt.Fprintf(w, "# HELP nord_jobs_submitted_total Accepted job submissions (including cache hits).\n")
	fmt.Fprintf(w, "# TYPE nord_jobs_submitted_total counter\n")
	fmt.Fprintf(w, "nord_jobs_submitted_total %d\n", m.JobsSubmitted.Load())
	fmt.Fprintf(w, "# HELP nord_jobs_rejected_total Submissions rejected with 429 (queue full).\n")
	fmt.Fprintf(w, "# TYPE nord_jobs_rejected_total counter\n")
	fmt.Fprintf(w, "nord_jobs_rejected_total %d\n", m.JobsRejected.Load())
	fmt.Fprintf(w, "# HELP nord_sims_executed_total Simulations actually executed (cache misses that ran).\n")
	fmt.Fprintf(w, "# TYPE nord_sims_executed_total counter\n")
	fmt.Fprintf(w, "nord_sims_executed_total %d\n", m.SimsExecuted.Load())
	fmt.Fprintf(w, "# HELP nord_cache_hits_total Content-addressed cache hits (in-flight coalescing included).\n")
	fmt.Fprintf(w, "# TYPE nord_cache_hits_total counter\n")
	fmt.Fprintf(w, "nord_cache_hits_total %d\n", m.CacheHits.Load())
	fmt.Fprintf(w, "# HELP nord_cache_misses_total Content-addressed cache misses.\n")
	fmt.Fprintf(w, "# TYPE nord_cache_misses_total counter\n")
	fmt.Fprintf(w, "nord_cache_misses_total %d\n", m.CacheMisses.Load())
	fmt.Fprintf(w, "# HELP nord_cache_remote_hits_total Remote cache tier hits served over GET /v1/cache/{key}.\n")
	fmt.Fprintf(w, "# TYPE nord_cache_remote_hits_total counter\n")
	fmt.Fprintf(w, "nord_cache_remote_hits_total %d\n", m.CacheRemoteHits.Load())
	fmt.Fprintf(w, "# HELP nord_cache_remote_misses_total Remote cache tier misses (GET /v1/cache/{key} 404s).\n")
	fmt.Fprintf(w, "# TYPE nord_cache_remote_misses_total counter\n")
	fmt.Fprintf(w, "nord_cache_remote_misses_total %d\n", m.CacheRemoteMisses.Load())
	fmt.Fprintf(w, "# HELP nord_cache_remote_puts_total Payloads written back over PUT /v1/cache/{key}.\n")
	fmt.Fprintf(w, "# TYPE nord_cache_remote_puts_total counter\n")
	fmt.Fprintf(w, "nord_cache_remote_puts_total %d\n", m.CacheRemotePuts.Load())
	fmt.Fprintf(w, "# HELP nord_cache_remote_put_rejected_total Cache tier PUTs rejected for a payload digest mismatch.\n")
	fmt.Fprintf(w, "# TYPE nord_cache_remote_put_rejected_total counter\n")
	fmt.Fprintf(w, "nord_cache_remote_put_rejected_total %d\n", m.CacheRemotePutRejected.Load())
	fmt.Fprintf(w, "# HELP nord_cache_remote_put_retries_total Worker-reported cache tier PUT retries (tier flaky or unreachable).\n")
	fmt.Fprintf(w, "# TYPE nord_cache_remote_put_retries_total counter\n")
	fmt.Fprintf(w, "nord_cache_remote_put_retries_total %d\n", m.CacheRemotePutRetries.Load())
	fmt.Fprintf(w, "# HELP nord_sim_cycles_total Cumulative simulated cycles across all jobs.\n")
	fmt.Fprintf(w, "# TYPE nord_sim_cycles_total counter\n")
	fmt.Fprintf(w, "nord_sim_cycles_total %d\n", m.SimCycles.Load())
	fmt.Fprintf(w, "# HELP nord_search_evaluations_total Candidate evaluations submitted by design-space searches.\n")
	fmt.Fprintf(w, "# TYPE nord_search_evaluations_total counter\n")
	fmt.Fprintf(w, "nord_search_evaluations_total %d\n", m.SearchEvaluations.Load())
	fmt.Fprintf(w, "# HELP nord_search_cache_hits_total Search candidate evaluations served from the content-addressed cache or coalesced onto in-flight jobs.\n")
	fmt.Fprintf(w, "# TYPE nord_search_cache_hits_total counter\n")
	fmt.Fprintf(w, "nord_search_cache_hits_total %d\n", m.SearchCacheHits.Load())
	fmt.Fprintf(w, "# HELP nord_search_generations_total Completed search generations.\n")
	fmt.Fprintf(w, "# TYPE nord_search_generations_total counter\n")
	fmt.Fprintf(w, "nord_search_generations_total %d\n", m.SearchGenerations.Load())
	fmt.Fprintf(w, "# HELP nord_search_front_size Pareto-front size of the most recently completed search.\n")
	fmt.Fprintf(w, "# TYPE nord_search_front_size gauge\n")
	fmt.Fprintf(w, "nord_search_front_size %d\n", m.SearchFrontSize.Load())
	fmt.Fprintf(w, "# HELP nord_sim_wakeups_total Router wakeups measured by completed runs, by design.\n")
	fmt.Fprintf(w, "# TYPE nord_sim_wakeups_total counter\n")
	for _, d := range metricDesigns {
		fmt.Fprintf(w, "nord_sim_wakeups_total{design=%q} %d\n", d.String(), m.SimWakeups[d].Load())
	}
	fmt.Fprintf(w, "# HELP nord_sim_detours_total Misrouted (detoured) hops measured by completed runs, by design.\n")
	fmt.Fprintf(w, "# TYPE nord_sim_detours_total counter\n")
	for _, d := range metricDesigns {
		fmt.Fprintf(w, "nord_sim_detours_total{design=%q} %d\n", d.String(), m.SimDetours[d].Load())
	}
	fmt.Fprintf(w, "# HELP nord_queue_depth Jobs waiting in the scheduler queue.\n")
	fmt.Fprintf(w, "# TYPE nord_queue_depth gauge\n")
	fmt.Fprintf(w, "nord_queue_depth %d\n", g.QueueDepth)
	fmt.Fprintf(w, "# HELP nord_workers Worker pool size.\n")
	fmt.Fprintf(w, "# TYPE nord_workers gauge\n")
	fmt.Fprintf(w, "nord_workers %d\n", g.Workers)
	fmt.Fprintf(w, "# HELP nord_workers_busy Workers currently executing a job.\n")
	fmt.Fprintf(w, "# TYPE nord_workers_busy gauge\n")
	fmt.Fprintf(w, "nord_workers_busy %d\n", g.BusyWorkers)
	fmt.Fprintf(w, "# HELP nord_cache_entries In-memory cache entries.\n")
	fmt.Fprintf(w, "# TYPE nord_cache_entries gauge\n")
	fmt.Fprintf(w, "nord_cache_entries %d\n", g.CacheEntries)
	fmt.Fprintf(w, "# HELP nord_jobs_queued Jobs in queued state.\n")
	fmt.Fprintf(w, "# TYPE nord_jobs_queued gauge\n")
	fmt.Fprintf(w, "nord_jobs_queued %d\n", g.JobsQueued)
	fmt.Fprintf(w, "# HELP nord_jobs_running Jobs in running state.\n")
	fmt.Fprintf(w, "# TYPE nord_jobs_running gauge\n")
	fmt.Fprintf(w, "nord_jobs_running %d\n", g.JobsRunning)
}
