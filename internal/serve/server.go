package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nord/internal/noc"
	"nord/internal/obs"
	"nord/internal/sim"
	"nord/internal/stats"
)

// ErrJobDeadline is the cancellation cause attached to a job's context
// when its wall-clock execution deadline expires. It lets the finaliser
// distinguish "the client gave up" (canceled) from "the run blew its
// budget" (failed) — both arrive as context cancellation through the sim
// layer's polling.
var ErrJobDeadline = errors.New("serve: job execution deadline exceeded")

// retryAfterSeconds renders a backoff hint as whole seconds for the
// Retry-After header, clamped to >= 1: a sub-second, zero or negative
// duration must never emit the meaningless "Retry-After: 0", which many
// clients treat as "retry immediately" and turn into a tight loop.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		return 1
	}
	return secs
}

// retryAfterHint spreads the configured 429 backoff over [base, 1.5*base)
// using random from [0, 1): a fixed hint herds every rejected client into
// retrying at the same instant, reproducing the overload that caused the
// rejection. Jitter decorrelates them.
func retryAfterHint(base time.Duration, random float64) time.Duration {
	if base <= 0 {
		return base
	}
	return base + time.Duration(random*float64(base)/2)
}

// Config tunes a Server. The zero value selects sensible defaults.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS). Each worker
	// runs one single-threaded simulation at a time.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it receive 429 + Retry-After (default 64).
	QueueDepth int
	// CacheEntries bounds the in-memory result cache (default 512).
	CacheEntries int
	// CacheDir, when non-empty, enables the on-disk cache spill.
	CacheDir string
	// RetryAfter is the backoff hint attached to 429 responses
	// (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
	// CheckEvery is the sim-layer context poll interval in cycles — the
	// bound on how long a canceled job keeps ticking (default 2048).
	CheckEvery int
	// ProgressEvery is the cycles between progress snapshots streamed at
	// /v1/jobs/{id}/events (default 10000).
	ProgressEvery int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxCacheBodyBytes bounds PUT /v1/cache/{key} payloads — marshalled
	// results, which can be much larger than submissions (default 16 MiB).
	MaxCacheBodyBytes int64
	// JobDeadline bounds one job's wall-clock execution (0 = unbounded).
	// A run that exceeds it is failed — not canceled — so a runaway
	// simulation cannot pin a worker forever.
	JobDeadline time.Duration
	// MaxSearches bounds concurrently running design-space searches
	// (default 4). Searches run on dedicated goroutines — not in the
	// worker pool — so their candidate evaluations always have pool
	// capacity to land on; this cap is the backpressure that replaces the
	// queue bound for them.
	MaxSearches int
	// SearchConcurrency bounds in-flight candidate evaluations per search
	// (default: the worker count). More concurrency than workers only
	// deepens the queue.
	SearchConcurrency int
	// Dispatcher, when non-nil, builds the job dispatcher from the
	// constructed server (e.g. a fleet coordinator wiring its execution
	// callbacks); nil selects the in-process Scheduler.
	Dispatcher func(*Server) Dispatcher
}

func (c *Config) fill() {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 2048
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = 10_000
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxCacheBodyBytes == 0 {
		c.MaxCacheBodyBytes = 16 << 20
	}
	if c.MaxSearches == 0 {
		c.MaxSearches = 4
	}
	if c.SearchConcurrency == 0 {
		c.SearchConcurrency = c.Workers
	}
}

// Server is the simulation job service: dispatcher, cache, metrics and
// the HTTP API glue.
type Server struct {
	cfg     Config
	metrics Metrics
	cache   *Cache
	disp    Dispatcher

	mu    sync.Mutex
	jobs  map[string]*Job // by client-facing ID
	byKey map[string]*Job // live dedup index: queued/running/done jobs per cache key
	seq   uint64

	rngMu sync.Mutex
	rng   *rand.Rand // Retry-After jitter

	// Running design-space searches: counted against Config.MaxSearches
	// and waited for on shutdown (their goroutines live outside the
	// dispatcher's pool).
	searches searchCount
	searchWG sync.WaitGroup

	draining atomic.Bool
}

// searchCount is an admission-bounded counter for running searches.
type searchCount struct {
	n atomic.Int64
}

// tryAcquire admits one search unless the cap is already reached.
func (c *searchCount) tryAcquire(max int) bool {
	for {
		n := c.n.Load()
		if n >= int64(max) {
			return false
		}
		if c.n.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (c *searchCount) release() { c.n.Add(-1) }

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	cache, err := NewCache(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		cache: cache,
		jobs:  map[string]*Job{},
		byKey: map[string]*Job{},
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if cfg.Dispatcher != nil {
		s.disp = cfg.Dispatcher(s)
	} else {
		s.disp = NewScheduler(cfg.Workers, cfg.QueueDepth, s.Exec)
	}
	return s, nil
}

// Metrics exposes the counter set (tests and embedders).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Handler returns the HTTP API:
//
//	POST   /v1/jobs             submit a job (202; 200 on cache hit; 429 when full)
//	POST   /v1/search           submit a design-space search (202; 429 at MaxSearches)
//	GET    /v1/jobs             list job summaries
//	GET    /v1/jobs/{id}        job status + result when done
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events NDJSON progress stream
//	GET    /v1/jobs/{id}/trace  NDJSON cycle-level event stream (jobs submitted with trace_events)
//	GET    /v1/cache/{key}      remote cache tier read (sha256-validated payload)
//	PUT    /v1/cache/{key}      remote cache tier write-back (payload digest enforced)
//	GET    /metrics             Prometheus text metrics
//	GET    /healthz             readiness (503 while draining; "degraded" + notes while limping)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// BeginDrain stops accepting new jobs; /healthz flips to 503 so load
// balancers stop routing here.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Shutdown drains gracefully: intake stops, running searches are
// canceled first (they feed the dispatcher, so they must stop producing
// before it closes), then queued and running jobs get until ctx's
// deadline to finish, then stragglers are canceled and given a short
// grace period to unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.Kind == "search" {
			j.Cancel()
		}
	}
	s.mu.Unlock()
	s.searchWG.Wait()
	s.disp.Close()
	if err := s.disp.Wait(ctx); err == nil {
		return nil
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		j.Cancel()
	}
	s.mu.Unlock()
	grace, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.disp.Wait(grace)
}

// submitResponse is the POST /v1/jobs body: flat so shell tooling can
// scrape it without a JSON parser.
type submitResponse struct {
	ID     string   `json:"id"`
	Key    string   `json:"key"`
	State  JobState `json:"state"`
	Cached bool     `json:"cached"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	t, err := resolveTask(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	j, served, err := s.submitTask(t, false)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.metrics.JobsRejected.Add(1)
			s.rngMu.Lock()
			hint := retryAfterHint(s.cfg.RetryAfter, s.rng.Float64())
			s.rngMu.Unlock()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(hint)))
			writeError(w, http.StatusTooManyRequests, "job queue full")
			return
		}
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	if served {
		writeJSON(w, http.StatusOK, submitResponse{ID: j.ID, Key: j.Key, State: j.State(), Cached: true})
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{ID: j.ID, Key: j.Key, State: JobQueued, Cached: false})
}

// submitTask indexes and dispatches a resolved task: singleflight
// coalescing onto a live job for the same content address, then the
// memoized-result cache, then a fresh dispatch. served reports whether
// the request was satisfied without a new execution (coalesced or served
// from cache). ephemeral marks jobs created on behalf of a search
// evaluation: they are canceled if every waiting search abandons them,
// but are upgraded to ordinary jobs the moment a direct submission
// coalesces onto them.
func (s *Server) submitTask(t *task, ephemeral bool) (j *Job, served bool, err error) {
	s.mu.Lock()
	// In-flight or completed job for the same content address: coalesce.
	if j, ok := s.byKey[t.key]; ok {
		if !ephemeral {
			j.claimShared()
		}
		s.metrics.CacheHits.Add(1)
		s.metrics.JobsSubmitted.Add(1)
		s.mu.Unlock()
		return j, true, nil
	}
	// Memoized result (possibly spilled to disk by an earlier eviction).
	// Traced jobs always execute: a cached Result has no event stream.
	if val, ok := s.cache.Get(t.key); ok && !t.traced {
		j := s.newJobLocked(t)
		j.completeFromCache(val)
		s.metrics.CacheHits.Add(1)
		s.metrics.JobsSubmitted.Add(1)
		s.metrics.JobsDone.Add(1)
		s.mu.Unlock()
		return j, true, nil
	}
	j = s.newJobLocked(t)
	j.ephemeral = ephemeral
	if err := s.disp.Submit(j); err != nil {
		delete(s.jobs, j.ID)
		delete(s.byKey, j.Key)
		s.mu.Unlock()
		return nil, false, err
	}
	s.metrics.CacheMisses.Add(1)
	s.metrics.JobsSubmitted.Add(1)
	s.mu.Unlock()
	return j, false, nil
}

// newJobLocked allocates a job ID and indexes the job; s.mu must be held.
func (s *Server) newJobLocked(t *task) *Job {
	s.seq++
	j := newJob(fmt.Sprintf("j%06d", s.seq), t)
	s.jobs[j.ID] = j
	s.byKey[j.Key] = j
	return j
}

// dropKey removes the job's dedup-index entry (failed or canceled jobs
// must not satisfy future submissions), leaving the job itself queryable.
func (s *Server) dropKey(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKey[j.Key] == j {
		delete(s.byKey, j.Key)
	}
}

// Exec runs one job in-process on the calling goroutine — the local
// execution path used by the Scheduler's workers and by a fleet
// coordinator's zero-worker fallback.
func (s *Server) Exec(j *Job) {
	if !j.markRunning() {
		// Canceled while queued.
		if j.finish(JobCanceled, nil, "canceled while queued") || j.State() == JobCanceled {
			s.metrics.JobsCanceled.Add(1)
		}
		s.dropKey(j)
		return
	}
	s.metrics.SimsExecuted.Add(1)
	var (
		tracer   *obs.Tracer
		traceBuf []obs.Event
	)
	opt := sim.RunOptions{
		CheckEvery:    s.cfg.CheckEvery,
		ProgressEvery: s.cfg.ProgressEvery,
		Progress: func(p stats.Progress) {
			// The progress callback runs on the simulation goroutine, so
			// draining the (single-goroutine) tracer here is race-free.
			if tracer != nil {
				traceBuf = tracer.DrainEvents(traceBuf[:0])
				j.publishTrace(traceBuf)
			}
			s.PublishProgress(j, p)
		},
	}
	if j.task.traced {
		tracer = obs.New(obs.Config{})
		opt.Tracer = tracer
	}
	ctx := j.ctx
	if s.cfg.JobDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, s.cfg.JobDeadline, ErrJobDeadline)
		defer cancel()
	}
	payload, info, err := j.task.run(ctx, opt)
	if tracer != nil {
		traceBuf = tracer.DrainEvents(traceBuf[:0])
		j.publishTrace(traceBuf)
		j.setTraceTotals(tracer.Total(), tracer.Dropped())
	}
	switch {
	case err == nil:
		if j.finish(JobDone, payload, "") {
			if !j.task.traced {
				s.cache.Put(j.Key, payload)
			}
			s.metrics.JobsDone.Add(1)
			if info != nil {
				s.metrics.AddRun(info.design, info.wakeups, info.detours)
			}
		}
	case errors.Is(err, ErrJobDeadline):
		if j.finish(JobFailed, nil, err.Error()) {
			s.metrics.JobsFailed.Add(1)
		}
		s.dropKey(j)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if j.finish(JobCanceled, nil, err.Error()) {
			s.metrics.JobsCanceled.Add(1)
		}
		s.dropKey(j)
	default:
		if j.finish(JobFailed, nil, err.Error()) {
			s.metrics.JobsFailed.Add(1)
		}
		s.dropKey(j)
	}
}

// RemoteOutcome is a worker-reported job result crossing the fleet wire.
type RemoteOutcome struct {
	// Payload is the marshalled sim result (nil unless the run succeeded).
	Payload json.RawMessage `json:"payload,omitempty"`
	// Error is the failure message for failed or canceled runs.
	Error string `json:"error,omitempty"`
	// Canceled marks client-requested cancellation (propagated through a
	// heartbeat) as opposed to a run failure.
	Canceled bool `json:"canceled,omitempty"`
	// Meta carries the run's headline counters for the per-design metrics.
	Meta *RunMeta `json:"meta,omitempty"`
	// FromCache marks a payload the worker fetched from the remote cache
	// tier instead of simulating: the coordinator skips the redundant
	// write-back and no per-design sim counters apply.
	FromCache bool `json:"from_cache,omitempty"`
}

// FinishRemote finalises a job with a worker-produced outcome: terminal
// state, cache fill and metrics, mirroring the local Exec path. The
// finish is exactly-once — a duplicate or late report of an
// already-terminal job accounts nothing.
func (s *Server) FinishRemote(j *Job, out RemoteOutcome) {
	switch {
	case out.Canceled:
		if j.finish(JobCanceled, nil, out.Error) {
			s.metrics.JobsCanceled.Add(1)
		}
		s.dropKey(j)
	case out.Error != "":
		if j.finish(JobFailed, nil, out.Error) {
			s.metrics.JobsFailed.Add(1)
		}
		s.dropKey(j)
	default:
		if j.finish(JobDone, out.Payload, "") {
			if !j.task.traced && !out.FromCache {
				s.cache.Put(j.Key, out.Payload)
			}
			s.metrics.JobsDone.Add(1)
			if out.Meta != nil {
				if d, err := noc.DesignByName(out.Meta.Design); err == nil {
					s.metrics.AddRun(d, out.Meta.Wakeups, out.Meta.Detours)
				}
			}
		}
	}
}

// PublishProgress forwards a job's progress snapshot to its /events
// subscribers and folds the cycle delta into the cumulative counter.
// Local runs call it from the sim goroutine; fleet coordinators call it
// with snapshots carried on worker heartbeats.
func (s *Server) PublishProgress(j *Job, p stats.Progress) {
	if d := j.publish(p); d > 0 {
		s.metrics.SimCycles.Add(d)
	}
}

// CountExecution records one execution attempt (the fleet coordinator's
// lease-grant counterpart of Exec's local accounting).
func (s *Server) CountExecution() { s.metrics.SimsExecuted.Add(1) }

// DropCanceled finalises a job the dispatcher discarded before execution
// (canceled while queued in a fleet).
func (s *Server) DropCanceled(j *Job) {
	if j.finish(JobCanceled, nil, "canceled while queued") || j.State() == JobCanceled {
		s.metrics.JobsCanceled.Add(1)
	}
	s.dropKey(j)
}

// ErrNoCachedResult reports that a journaled done job's payload is no
// longer recoverable from the content-addressed cache (evicted with no
// spill, or the spill was corrupt and quarantined). The coordinator
// requeues such a job: the run is deterministic, so recomputing yields
// the same bytes the dead process served.
var ErrNoCachedResult = errors.New("serve: no cached result for restored job")

// RestoreJob re-creates a queued job from its journaled submission body —
// the coordinator's crash-recovery path for jobs that were open when the
// previous process died. The job keeps its original client-facing ID, so
// a client polling GET /v1/jobs/{id} across the restart never notices.
func (s *Server) RestoreJob(id string, reqJSON []byte) (*Job, error) {
	t, err := restoreTask(reqJSON)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; ok {
		return nil, fmt.Errorf("serve: job %s already exists", id)
	}
	j := newJob(id, t)
	s.jobs[id] = j
	if _, ok := s.byKey[j.Key]; !ok {
		s.byKey[j.Key] = j
	}
	s.bumpSeqLocked(id)
	return j, nil
}

// RestoreTerminal re-creates an already-terminal job from the journal.
// Done jobs are rehydrated with their payload from the content-addressed
// cache (the byte-identical result the dead process served); if the cache
// no longer holds it, ErrNoCachedResult tells the caller to requeue and
// recompute instead. Failed and canceled jobs restore with their recorded
// error and are not indexed for dedup (they must not satisfy future
// submissions, mirroring dropKey).
func (s *Server) RestoreTerminal(id string, reqJSON []byte, state JobState, errMsg string) error {
	if !state.Terminal() {
		return fmt.Errorf("serve: RestoreTerminal with non-terminal state %q", state)
	}
	t, err := restoreTask(reqJSON)
	if err != nil {
		return err
	}
	var payload []byte
	if state == JobDone {
		val, ok := s.cache.Get(t.key)
		if !ok {
			return ErrNoCachedResult
		}
		payload = val
	}
	s.mu.Lock()
	if _, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: job %s already exists", id)
	}
	j := newJob(id, t)
	s.jobs[id] = j
	if state == JobDone {
		if _, ok := s.byKey[j.Key]; !ok {
			s.byKey[j.Key] = j
		}
	}
	s.bumpSeqLocked(id)
	s.mu.Unlock()
	if state == JobDone {
		j.completeFromCache(payload)
	} else {
		j.finish(state, nil, errMsg)
	}
	return nil
}

// restoreTask re-resolves a journaled submission body into a runnable
// task, exactly as handleSubmit would have.
func restoreTask(reqJSON []byte) (*task, error) {
	var req JobRequest
	if err := json.Unmarshal(reqJSON, &req); err != nil {
		return nil, fmt.Errorf("serve: journaled request does not parse: %w", err)
	}
	t, err := resolveTask(&req)
	if err != nil {
		return nil, fmt.Errorf("serve: journaled request does not resolve: %w", err)
	}
	return t, nil
}

// bumpSeqLocked advances the job-ID sequence past a restored ID so fresh
// submissions never collide with recovered jobs; s.mu must be held.
func (s *Server) bumpSeqLocked(id string) {
	var n uint64
	if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > s.seq {
		s.seq = n
	}
}

func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status(false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.Cancel()
	s.dropKey(j)
	writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "state": j.State()})
}

// eventEnd is the last line of an /events stream.
type eventEnd struct {
	Done  bool     `json:"done"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, canFlush := w.(http.Flusher)
	history, ch, unsub := j.subscribe()
	defer unsub()
	enc := json.NewEncoder(w)
	for _, p := range history {
		_ = enc.Encode(p)
	}
	if canFlush {
		flusher.Flush()
	}
	for {
		select {
		case p, open := <-ch:
			if !open {
				st := j.status(false)
				_ = enc.Encode(eventEnd{Done: true, State: st.State, Error: st.Error})
				if canFlush {
					flusher.Flush()
				}
				return
			}
			_ = enc.Encode(p)
			if canFlush {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// traceEnd is the last line of a /trace stream.
type traceEnd struct {
	Type    string   `json:"type"`
	Done    bool     `json:"done"`
	State   JobState `json:"state"`
	Total   uint64   `json:"events_total"`
	Dropped uint64   `json:"events_dropped"`
	Error   string   `json:"error,omitempty"`
}

// writeTraceEvents renders a batch as NDJSON lines with the "event"
// discriminator spliced ahead of each event's own fields.
func writeTraceEvents(w io.Writer, batch []obs.Event) error {
	for _, e := range batch {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "{\"type\":\"event\",%s\n", b[1:]); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !j.task.traced {
		writeError(w, http.StatusConflict, "job was not submitted with trace_events; resubmit the spec with \"trace_events\": true")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, canFlush := w.(http.Flusher)
	history, ch, unsub := j.subscribeTrace()
	defer unsub()
	if err := writeTraceEvents(w, history); err != nil {
		return
	}
	if canFlush {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case batch, open := <-ch:
			if !open {
				st := j.status(false)
				total, dropped := j.traceTotals()
				_ = enc.Encode(traceEnd{Type: "end", Done: true, State: st.State,
					Total: total, Dropped: dropped, Error: st.Error})
				if canFlush {
					flusher.Flush()
				}
				return
			}
			if err := writeTraceEvents(w, batch); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// SumHeader carries the hex sha256 of a cache payload on both directions
// of the /v1/cache wire, so a corrupted transfer (or a buggy writer) is
// detected at the boundary instead of poisoning the tier.
const SumHeader = "X-Nord-Sum"

// validCacheKey accepts exactly the keys CacheKey mints: 64 lowercase hex
// characters. Anything else is rejected before it can touch the spill
// directory namespace.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleCacheGet serves the remote cache tier: fleet workers check here
// before simulating, so a configuration any process ever paid for is
// never simulated twice fleet-wide. The response carries the payload's
// sha256 for end-to-end validation.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeError(w, http.StatusBadRequest, "malformed cache key")
		return
	}
	val, ok := s.cache.Get(key)
	if !ok {
		s.metrics.CacheRemoteMisses.Add(1)
		writeError(w, http.StatusNotFound, "no cached result")
		return
	}
	s.metrics.CacheRemoteHits.Add(1)
	sum := sha256.Sum256(val)
	w.Header().Set(SumHeader, hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(val)))
	_, _ = w.Write(val)
}

// handleCachePut accepts a worker's result write-back. The X-Nord-Sum
// digest is mandatory and enforced against the body — a mismatch means
// the payload was damaged in flight (or the writer is wrong) and is
// rejected rather than cached. PUTs are allowed while draining: a worker
// finishing its last job during shutdown should still persist the result.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeError(w, http.StatusBadRequest, "malformed cache key")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxCacheBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading payload: "+err.Error())
		return
	}
	sum := sha256.Sum256(body)
	if want := r.Header.Get(SumHeader); want != hex.EncodeToString(sum[:]) {
		s.metrics.CacheRemotePutRejected.Add(1)
		writeError(w, http.StatusBadRequest, "payload digest mismatch (or missing "+SumHeader+" header)")
		return
	}
	if len(body) == 0 || !json.Valid(body) {
		s.metrics.CacheRemotePutRejected.Add(1)
		writeError(w, http.StatusBadRequest, "payload is not valid JSON")
		return
	}
	s.cache.Put(key, body)
	s.metrics.CacheRemotePuts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var queued, running int
	s.mu.Lock()
	for _, j := range s.jobs {
		switch j.State() {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteProm(w, Gauges{
		QueueDepth:   s.disp.QueueDepth(),
		Workers:      s.disp.Workers(),
		BusyWorkers:  s.disp.Busy(),
		CacheEntries: s.cache.Len(),
		JobsQueued:   queued,
		JobsRunning:  running,
	})
	fmt.Fprintf(w, "# HELP nord_cache_corrupt_quarantined_total Spill files quarantined (*.corrupt) on digest mismatch.\n")
	fmt.Fprintf(w, "# TYPE nord_cache_corrupt_quarantined_total counter\n")
	fmt.Fprintf(w, "nord_cache_corrupt_quarantined_total %d\n", s.cache.CorruptQuarantined())
	if pw, ok := s.disp.(PromWriter); ok {
		pw.WritePromTo(w)
	}
}

// handleHealthz distinguishes three states: 503 "draining" (stop routing
// here), 200 "degraded" with the dispatcher's notes (alive but limping —
// zero live workers, unreachable cache tier, wedged journal), and plain
// 200 "ok".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	resp := map[string]any{
		"status":  "ok",
		"workers": s.disp.Workers(),
	}
	if hn, ok := s.disp.(HealthNoter); ok {
		if notes := hn.HealthNotes(); len(notes) > 0 {
			resp["status"] = "degraded"
			resp["degraded"] = notes
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
