package serve

import (
	"context"
	"io"
)

// Dispatcher abstracts where submitted jobs execute. The in-process
// Scheduler is the local implementation; a fleet coordinator
// (internal/fleet) implements the same contract by leasing jobs to
// remote workers, falling back to local execution when none are
// registered. The Server is agnostic: it validates, indexes and
// finalises jobs; the dispatcher decides who runs them.
type Dispatcher interface {
	// Submit enqueues a job for execution without blocking. ErrQueueFull
	// reports backpressure (HTTP 429), ErrDraining a closed dispatcher
	// (HTTP 503).
	Submit(j *Job) error
	// QueueDepth returns the number of jobs waiting to execute.
	QueueDepth() int
	// Workers returns the current execution capacity (pool size locally,
	// live registered workers for a fleet).
	Workers() int
	// Busy returns the number of jobs currently executing.
	Busy() int
	// Close stops intake; already-accepted jobs still run. Idempotent.
	Close()
	// Wait blocks until every accepted job has reached a terminal state
	// (Close must have been called) or ctx expires.
	Wait(ctx context.Context) error
}

// PromWriter is implemented by dispatchers that export their own metric
// series; the server appends them to the /metrics exposition.
type PromWriter interface {
	WritePromTo(w io.Writer)
}

// HealthNoter is implemented by dispatchers that can report degraded-but-
// alive conditions (a fleet with zero live workers running on its local
// fallback, a flaky remote cache tier, a wedged journal). /healthz
// surfaces the notes with status "degraded" while keeping HTTP 200: the
// process is serving, just limping — distinct from 503 draining, which
// tells load balancers to stop routing here.
type HealthNoter interface {
	HealthNotes() []string
}
