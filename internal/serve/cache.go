package serve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// spillMagic heads every spill file, followed by the hex sha256 of the
// payload and a newline. Validating the digest on read means a torn
// write (crash mid-spill on a filesystem that reorders data and rename),
// truncation, or bit rot is detected and quarantined instead of being
// served as a result.
const spillMagic = "nordspill1 "

// Cache is the content-addressed result cache: an in-memory LRU over
// canonical cache keys holding marshalled job results, with an optional
// on-disk spill directory. With a spill directory configured, every Put
// writes through to disk — the disk copy is the durable tier a restarted
// coordinator recovers terminal results from — and in-memory eviction is
// then free (the evicted entry is already on disk). Disk entries are
// transparently reloaded (and re-promoted) on a later miss, so a small
// memory budget still serves a large working set.
//
// Disk I/O never happens under the cache lock: spill reads and writes
// run on the caller's goroutine against a quiescent file (writes are
// temp-file + rename, so readers only ever see complete files), keeping
// a slow disk from stalling every concurrent lookup.
type Cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
	dir string // "" disables the disk spill

	// corrupt counts spill files quarantined on digest mismatch; exposed
	// as nord_cache_corrupt_quarantined_total.
	corrupt atomic.Uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache builds a cache holding up to capacity in-memory entries, with
// an optional spill directory (created if missing; "" disables spilling).
func NewCache(capacity int, spillDir string) (*Cache, error) {
	if capacity < 1 {
		capacity = 1
	}
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating cache spill dir: %w", err)
		}
	}
	return &Cache{cap: capacity, ll: list.New(), m: map[string]*list.Element{}, dir: spillDir}, nil
}

// Get returns the cached result for key, consulting memory first and the
// spill directory second (promoting a disk hit back into memory). The
// disk read happens outside the critical section.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true
	}
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return nil, false
	}
	val, ok := c.readSpill(c.spillPath(key))
	if !ok {
		return nil, false
	}
	// Promote into memory only: the value just came off disk, so no
	// write-through is needed. Another goroutine may have raced the same
	// disk read (or a Put); insert refreshes idempotently either way.
	c.insert(key, val)
	return val, true
}

// Put inserts (or refreshes) a result. With a spill directory configured
// the value is written through to disk immediately — durability at Put
// time, not eviction time — on the caller's goroutine, outside the cache
// lock. Re-putting identical bytes (a fleet retry's duplicate result)
// skips the redundant disk write.
func (c *Cache) Put(key string, val []byte) {
	if c.insert(key, val) && c.dir != "" {
		// A failed spill write only costs a future recompute.
		_ = writeSpill(c.dir, c.spillPath(key), val)
	}
}

// insert adds the entry under the lock, evicting over-capacity LRU
// entries from memory (their disk copies, if any, were written at their
// own Put). It reports whether the value is new or changed — the
// caller's write-through trigger.
func (c *Cache) insert(key string, val []byte) (fresh bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		fresh = !bytes.Equal(ent.val, val)
		ent.val = val
		c.ll.MoveToFront(el)
		return fresh
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.m, ent.key)
	}
	return true
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CorruptQuarantined returns the number of spill files quarantined on
// digest mismatch since process start.
func (c *Cache) CorruptQuarantined() uint64 { return c.corrupt.Load() }

// spillPath maps a key to its spill file; keys are hex digests, so they
// are filesystem-safe by construction.
func (c *Cache) spillPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// writeSpill persists one entry crash-safely: the header + payload go to
// a temp file in the same directory, fsync, then an atomic rename onto
// the final name. A crash at any point leaves either the old file, no
// file, or a stray temp file — never a half-written spill under the
// final name.
func writeSpill(dir, path string, val []byte) error {
	sum := sha256.Sum256(val)
	f, err := os.CreateTemp(dir, ".spill-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(append(append([]byte(spillMagic+hex.EncodeToString(sum[:])), '\n'), val...))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
	}
	return err
}

// readSpill loads and validates one spill file. A malformed header or a
// digest mismatch (truncated or corrupt payload) quarantines the file —
// renamed to "<name>.corrupt" so an operator can inspect what rotted
// instead of the evidence vanishing — counts it, and reports a miss:
// recomputing a result is always safe, serving a corrupt one never is.
// Quarantining also makes the miss permanent-cheap: the bad bytes are no
// longer re-read and re-hashed on every subsequent lookup of that key.
func (c *Cache) readSpill(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	headerLen := len(spillMagic) + sha256.Size*2 + 1
	valid := len(data) >= headerLen &&
		bytes.HasPrefix(data, []byte(spillMagic)) &&
		data[headerLen-1] == '\n'
	if valid {
		val := data[headerLen:]
		sum := sha256.Sum256(val)
		if hex.EncodeToString(sum[:]) == string(data[len(spillMagic):headerLen-1]) {
			return val, true
		}
	}
	if err := os.Rename(path, path+".corrupt"); err != nil {
		_ = os.Remove(path) // quarantine failed; removal still unblocks the key
	}
	c.corrupt.Add(1)
	return nil, false
}
