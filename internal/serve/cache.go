package serve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// spillMagic heads every spill file, followed by the hex sha256 of the
// payload and a newline. Validating the digest on read means a torn
// write (crash mid-spill on a filesystem that reorders data and rename),
// truncation, or bit rot is detected and discarded instead of being
// served as a result.
const spillMagic = "nordspill1 "

// Cache is the content-addressed result cache: an in-memory LRU over
// canonical cache keys holding marshalled job results, with an optional
// on-disk spill directory. Evicted entries are written to the spill
// directory and transparently reloaded (and re-promoted) on a later miss,
// so a small memory budget still serves a large working set.
//
// Disk I/O never happens under the cache lock: spill reads and writes
// run on the caller's goroutine against a quiescent file (writes are
// temp-file + rename, so readers only ever see complete files), keeping
// a slow disk from stalling every concurrent lookup.
type Cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
	dir string // "" disables the disk spill
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache builds a cache holding up to capacity in-memory entries, with
// an optional spill directory (created if missing; "" disables spilling).
func NewCache(capacity int, spillDir string) (*Cache, error) {
	if capacity < 1 {
		capacity = 1
	}
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating cache spill dir: %w", err)
		}
	}
	return &Cache{cap: capacity, ll: list.New(), m: map[string]*list.Element{}, dir: spillDir}, nil
}

// Get returns the cached result for key, consulting memory first and the
// spill directory second (promoting a disk hit back into memory). The
// disk read happens outside the critical section.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true
	}
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return nil, false
	}
	val, ok := readSpill(c.spillPath(key))
	if !ok {
		return nil, false
	}
	// Promote. Another goroutine may have raced the same disk read (or a
	// Put); insertLocked refreshes idempotently either way.
	evicted := c.insert(key, val)
	c.writeSpills(evicted)
	return val, true
}

// Put inserts (or refreshes) a result, evicting the least recently used
// entries to the spill directory when over capacity. Spill writes happen
// on the caller's goroutine, outside the cache lock.
func (c *Cache) Put(key string, val []byte) {
	c.writeSpills(c.insert(key, val))
}

// insert adds the entry under the lock and returns any evicted entries
// for the caller to spill outside it.
func (c *Cache) insert(key string, val []byte) []*cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return nil
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	var evicted []*cacheEntry
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		ent := back.Value.(*cacheEntry)
		if c.dir != "" {
			evicted = append(evicted, ent)
		}
		c.ll.Remove(back)
		delete(c.m, ent.key)
	}
	return evicted
}

func (c *Cache) writeSpills(ents []*cacheEntry) {
	for _, ent := range ents {
		// A failed spill write only costs a future recompute.
		_ = writeSpill(c.dir, c.spillPath(ent.key), ent.val)
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// spillPath maps a key to its spill file; keys are hex digests, so they
// are filesystem-safe by construction.
func (c *Cache) spillPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// writeSpill persists one entry crash-safely: the header + payload go to
// a temp file in the same directory, fsync, then an atomic rename onto
// the final name. A crash at any point leaves either the old file, no
// file, or a stray temp file — never a half-written spill under the
// final name.
func writeSpill(dir, path string, val []byte) error {
	sum := sha256.Sum256(val)
	f, err := os.CreateTemp(dir, ".spill-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(append(append([]byte(spillMagic+hex.EncodeToString(sum[:])), '\n'), val...))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
	}
	return err
}

// readSpill loads and validates one spill file. A malformed header or a
// digest mismatch (truncated or corrupt payload) removes the file and
// reports a miss: recomputing a result is always safe, serving a corrupt
// one never is.
func readSpill(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	headerLen := len(spillMagic) + sha256.Size*2 + 1
	valid := len(data) >= headerLen &&
		bytes.HasPrefix(data, []byte(spillMagic)) &&
		data[headerLen-1] == '\n'
	if valid {
		val := data[headerLen:]
		sum := sha256.Sum256(val)
		if hex.EncodeToString(sum[:]) == string(data[len(spillMagic):headerLen-1]) {
			return val, true
		}
	}
	_ = os.Remove(path)
	return nil, false
}
