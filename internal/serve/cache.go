package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is the content-addressed result cache: an in-memory LRU over
// canonical cache keys holding marshalled job results, with an optional
// on-disk spill directory. Evicted entries are written to the spill
// directory and transparently reloaded (and re-promoted) on a later miss,
// so a small memory budget still serves a large working set.
type Cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
	dir string // "" disables the disk spill
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache builds a cache holding up to capacity in-memory entries, with
// an optional spill directory (created if missing; "" disables spilling).
func NewCache(capacity int, spillDir string) (*Cache, error) {
	if capacity < 1 {
		capacity = 1
	}
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating cache spill dir: %w", err)
		}
	}
	return &Cache{cap: capacity, ll: list.New(), m: map[string]*list.Element{}, dir: spillDir}, nil
}

// Get returns the cached result for key, consulting memory first and the
// spill directory second (promoting a disk hit back into memory).
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).val, true
	}
	if c.dir == "" {
		return nil, false
	}
	val, err := os.ReadFile(c.spillPath(key))
	if err != nil {
		return nil, false
	}
	c.insertLocked(key, val)
	return val, true
}

// Put inserts (or refreshes) a result, evicting the least recently used
// entries to the spill directory when over capacity.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, val)
}

func (c *Cache) insertLocked(key string, val []byte) {
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		ent := back.Value.(*cacheEntry)
		if c.dir != "" {
			// A failed spill write only costs a future recompute.
			_ = os.WriteFile(c.spillPath(ent.key), ent.val, 0o644)
		}
		c.ll.Remove(back)
		delete(c.m, ent.key)
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// spillPath maps a key to its spill file; keys are hex digests, so they
// are filesystem-safe by construction.
func (c *Cache) spillPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}
