package serve

import (
	"strings"
	"testing"

	"nord/internal/noc"
	"nord/internal/sim"
)

// Golden cache keys. These constants pin the canonical encoding: if a
// refactor (field reordering, map iteration, default-filling changes that
// keep the same filled values) alters them, every previously cached
// result would be orphaned — so a change here must be deliberate.
// (Deliberately rotated when SynthConfig gained VCsPerClass/BufferDepth/
// GateIdleCycles, and again when it gained Topology: filled configs now
// carry those fields, so every earlier cached synthetic result is
// orphaned on purpose — the old keys couldn't distinguish topologies.)
const (
	goldenSynthKey    = "ab93837597088efef0604b843f946abe70fbb740cd61807207fe946f418e13fc"
	goldenWorkloadKey = "0360f9816fae68ea13f7043a30a09d8e0cc179272b6fb1c4bdbb375bf3be8a5a"
)

func goldenSynthConfig() sim.SynthConfig {
	return sim.SynthConfig{
		Design: noc.NoRD, Width: 4, Height: 4,
		Pattern: "uniform", Rate: 0.05,
		Warmup: 10_000, Measure: 100_000, Seed: 1,
	}.Filled()
}

func TestCacheKeyGolden(t *testing.T) {
	k, err := CacheKey("synthetic", goldenSynthConfig())
	if err != nil {
		t.Fatal(err)
	}
	if k != goldenSynthKey {
		t.Fatalf("synthetic key drifted:\n got %s\nwant %s", k, goldenSynthKey)
	}
	w := sim.WorkloadConfig{Design: noc.ConvPG, Benchmark: "x264", Scale: 0.5, Seed: 7}.Filled()
	k2, err := CacheKey("workload", w)
	if err != nil {
		t.Fatal(err)
	}
	if k2 != goldenWorkloadKey {
		t.Fatalf("workload key drifted:\n got %s\nwant %s", k2, goldenWorkloadKey)
	}
}

// TestCacheKeyDefaultFillEquivalence: a config with defaults spelled out
// explicitly must key identically to one that relied on Filled() to
// supply them.
func TestCacheKeyDefaultFillEquivalence(t *testing.T) {
	implicit := sim.SynthConfig{
		Design: noc.NoRD, Width: 4, Height: 4,
		Pattern: "uniform", Rate: 0.05,
		Warmup: 10_000, Measure: 100_000, Seed: 1,
	}.Filled()
	explicit := implicit // already filled: re-filling must be a fixpoint
	k1, err := CacheKey("synthetic", implicit)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CacheKey("synthetic", explicit.Filled())
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("Filled() is not a fixpoint for keying: %s vs %s", k1, k2)
	}
}

// TestCanonicalJSONFieldOrder: two struct types with the same fields
// declared in different orders must encode identically.
func TestCanonicalJSONFieldOrder(t *testing.T) {
	type A struct {
		X int
		Y string
		Z float64
	}
	type B struct {
		Z float64
		Y string
		X int
	}
	a, err := CanonicalJSON(A{X: 1, Y: "hi", Z: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalJSON(B{X: 1, Y: "hi", Z: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("field order leaked into encoding:\n%s\n%s", a, b)
	}
	want := `{"X":1,"Y":"hi","Z":2.5}`
	if string(a) != want {
		t.Fatalf("got %s want %s", a, want)
	}
}

// TestCanonicalJSONMapOrder: map iteration order must not leak.
func TestCanonicalJSONMapOrder(t *testing.T) {
	m := map[string]int{"zebra": 1, "apple": 2, "mango": 3}
	want := `{"apple":2,"mango":3,"zebra":1}`
	for i := 0; i < 32; i++ { // many rounds to catch randomized iteration
		got, err := CanonicalJSON(m)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("round %d: got %s want %s", i, got, want)
		}
	}
}

// TestCanonicalJSONNilAndPointers: nil pointers encode as null, nil
// slices as [], and pointers are transparent.
func TestCanonicalJSONNilAndPointers(t *testing.T) {
	type Inner struct{ N int }
	type Outer struct {
		P *Inner
		S []int
	}
	got, err := CanonicalJSON(Outer{})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"P":null,"S":[]}` {
		t.Fatalf("got %s", got)
	}
	got, err = CanonicalJSON(Outer{P: &Inner{N: 4}, S: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"P":{"N":4},"S":[1,2]}` {
		t.Fatalf("got %s", got)
	}
}

// TestCanonicalJSONRejectsNaN: non-finite floats cannot be canonically
// addressed and must error rather than silently corrupt a key.
func TestCanonicalJSONRejectsNaN(t *testing.T) {
	type F struct{ V float64 }
	nan := 0.0
	nan = nan / nan
	if _, err := CanonicalJSON(F{V: nan}); err == nil {
		t.Fatal("NaN accepted")
	}
}

// TestCacheKeyKindSeparation: the kind prefix partitions the key space.
func TestCacheKeyKindSeparation(t *testing.T) {
	cfg := goldenSynthConfig()
	k1, err := CacheKey("synthetic", cfg)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CacheKey("other", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("kind does not partition the key space")
	}
	if len(k1) != 64 || strings.ToLower(k1) != k1 {
		t.Fatalf("key %q is not lowercase hex sha-256", k1)
	}
}
