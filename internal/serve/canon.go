// Package serve is the simulation-as-a-service layer: an HTTP/JSON job
// API over the sim runners with a content-addressed result cache, a
// bounded worker-pool scheduler with queue-depth backpressure, NDJSON
// progress streaming, Prometheus-text metrics and graceful drain.
//
// Identical design points are deduplicated twice over: concurrent
// submissions of the same canonical config coalesce onto one in-flight
// job, and completed runs are memoized under a canonical hash of the
// fully-filled config, so repeated sweeps and design comparisons cost one
// simulation each.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
)

// CanonicalJSON serialises v deterministically for content addressing:
// struct fields and map keys are emitted sorted by name, floats in
// shortest round-trip form, nil pointers as null, and nil slices as [] —
// so a semantically identical config always yields the same bytes,
// independent of Go struct field order, map iteration order, or whether
// defaults were filled explicitly or implicitly.
func CanonicalJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := writeCanonical(&buf, reflect.ValueOf(v)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeCanonical(buf *bytes.Buffer, v reflect.Value) error {
	if !v.IsValid() {
		buf.WriteString("null")
		return nil
	}
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			buf.WriteString("null")
			return nil
		}
		return writeCanonical(buf, v.Elem())
	case reflect.Struct:
		t := v.Type()
		type field struct {
			name string
			val  reflect.Value
		}
		fields := make([]field, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			fields = append(fields, field{f.Name, v.Field(i)})
		}
		sort.Slice(fields, func(i, j int) bool { return fields[i].name < fields[j].name })
		buf.WriteByte('{')
		for i, f := range fields {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeJSONString(buf, f.name)
			buf.WriteByte(':')
			if err := writeCanonical(buf, f.val); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
		return nil
	case reflect.Map:
		type pair struct {
			key string
			val reflect.Value
		}
		pairs := make([]pair, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			k := iter.Key()
			var ks string
			if k.Kind() == reflect.String {
				ks = k.String()
			} else {
				ks = fmt.Sprint(k.Interface())
			}
			pairs = append(pairs, pair{ks, iter.Value()})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
		buf.WriteByte('{')
		for i, p := range pairs {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeJSONString(buf, p.key)
			buf.WriteByte(':')
			if err := writeCanonical(buf, p.val); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
		return nil
	case reflect.Slice, reflect.Array:
		buf.WriteByte('[')
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, v.Index(i)); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
		return nil
	case reflect.Bool:
		buf.WriteString(strconv.FormatBool(v.Bool()))
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		buf.WriteString(strconv.FormatInt(v.Int(), 10))
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		buf.WriteString(strconv.FormatUint(v.Uint(), 10))
		return nil
	case reflect.Float32, reflect.Float64:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("serve: cannot canonicalise non-finite float %v", f)
		}
		bits := 64
		if v.Kind() == reflect.Float32 {
			bits = 32
		}
		buf.WriteString(strconv.FormatFloat(f, 'g', -1, bits))
		return nil
	case reflect.String:
		writeJSONString(buf, v.String())
		return nil
	default:
		return fmt.Errorf("serve: cannot canonicalise kind %v", v.Kind())
	}
}

func writeJSONString(buf *bytes.Buffer, s string) {
	b, _ := json.Marshal(s) // marshalling a string cannot fail
	buf.Write(b)
}

// CacheKey returns the content address of a job: the hex SHA-256 over the
// job kind and the canonical encoding of its fully-filled config. Two
// requests that resolve to the same simulation share a key, whatever the
// JSON field order or defaulting path that produced them.
func CacheKey(kind string, cfg any) (string, error) {
	b, err := CanonicalJSON(cfg)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}
