package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (no spill dir)")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatal("a lost")
	}
	if v, ok := c.Get("c"); !ok || string(v) != "C" {
		t.Fatal("c lost")
	}
	if c.Len() != 2 {
		t.Fatalf("Len=%d", c.Len())
	}
}

func TestCacheDiskSpillAndPromote(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k1", []byte("one"))
	c.Put("k2", []byte("two")) // spills k1 to disk
	if _, err := os.Stat(filepath.Join(dir, "k1.json")); err != nil {
		t.Fatalf("k1 not spilled: %v", err)
	}
	// Disk hit reloads and promotes k1, spilling k2.
	v, ok := c.Get("k1")
	if !ok || string(v) != "one" {
		t.Fatalf("disk hit failed: %q %v", v, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, "k2.json")); err != nil {
		t.Fatalf("k2 not spilled on promote: %v", err)
	}
	if v, ok := c.Get("k2"); !ok || string(v) != "two" {
		t.Fatalf("k2 lost after spill: %q %v", v, ok)
	}
}

func TestCacheSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ { // overflow so half the keys spill
		c1.Put(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i)))
	}
	// A fresh cache over the same directory serves the spilled keys.
	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := fmt.Sprintf("val%d", i)
		if v, ok := c2.Get(fmt.Sprintf("key%d", i)); !ok || string(v) != want {
			t.Fatalf("key%d not recovered from spill: %q %v", i, v, ok)
		}
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("old"))
	c.Put("a", []byte("new"))
	if v, _ := c.Get("a"); string(v) != "new" {
		t.Fatalf("got %q", v)
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate insert: Len=%d", c.Len())
	}
}
