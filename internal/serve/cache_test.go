package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (no spill dir)")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatal("a lost")
	}
	if v, ok := c.Get("c"); !ok || string(v) != "C" {
		t.Fatal("c lost")
	}
	if c.Len() != 2 {
		t.Fatalf("Len=%d", c.Len())
	}
}

func TestCacheDiskSpillAndPromote(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k1", []byte("one"))
	c.Put("k2", []byte("two")) // evicts k1 from memory; both written through at Put
	if _, err := os.Stat(filepath.Join(dir, "k1.json")); err != nil {
		t.Fatalf("k1 not on disk: %v", err)
	}
	// Disk hit reloads and promotes k1, evicting k2 from memory; k2's
	// disk copy (written at its Put) still serves it.
	v, ok := c.Get("k1")
	if !ok || string(v) != "one" {
		t.Fatalf("disk hit failed: %q %v", v, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, "k2.json")); err != nil {
		t.Fatalf("k2 not on disk: %v", err)
	}
	if v, ok := c.Get("k2"); !ok || string(v) != "two" {
		t.Fatalf("k2 lost after eviction: %q %v", v, ok)
	}
}

// TestCacheWriteThroughDurableAtPut: with a spill directory, a Put is on
// disk immediately — not at some later eviction — so a process killed
// right after finishing a job can always recover that job's result.
func TestCacheWriteThroughDurableAtPut(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(64, dir) // far under capacity: nothing ever evicts
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k1", []byte("payload"))
	if _, err := os.Stat(filepath.Join(dir, "k1.json")); err != nil {
		t.Fatalf("Put did not write through: %v", err)
	}
	// A fresh cache over the same directory (the restarted process)
	// serves it without k1 ever having been evicted.
	c2, err := NewCache(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c2.Get("k1"); !ok || string(v) != "payload" {
		t.Fatalf("restart lost an un-evicted entry: %q %v", v, ok)
	}
}

func TestCacheSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ { // overflow so half the keys spill
		c1.Put(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i)))
	}
	// A fresh cache over the same directory serves the spilled keys.
	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := fmt.Sprintf("val%d", i)
		if v, ok := c2.Get(fmt.Sprintf("key%d", i)); !ok || string(v) != want {
			t.Fatalf("key%d not recovered from spill: %q %v", i, v, ok)
		}
	}
}

// TestCacheSpillRejectsCorruption covers the crash-safety contract: a
// truncated or bit-flipped spill file must read as a miss and be
// quarantined (renamed to *.corrupt and counted, so the evidence survives
// for inspection and the key stops re-reading bad bytes), never served as
// a result.
func TestCacheSpillRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k1", []byte(`{"ok":true}`))
	c.Put("k2", []byte("evictor")) // evicts k1 from memory; its disk copy remains

	path := filepath.Join(dir, "k1.json")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string][]byte{
		"truncated payload": good[:len(good)-4],
		"truncated header":  good[:10],
		"flipped bit":       append(append([]byte{}, good[:len(good)-1]...), good[len(good)-1]^1),
		"empty":             {},
		"legacy raw json":   []byte(`{"ok":true}`), // pre-header format: unverifiable, must not be served
	}
	var quarantined uint64
	for name, data := range corruptions {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if v, ok := c.Get("k1"); ok {
			t.Fatalf("%s: corrupt spill served as a hit: %q", name, v)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupt spill left in place (err=%v)", name, err)
		}
		qdata, err := os.ReadFile(path + ".corrupt")
		if err != nil {
			t.Fatalf("%s: corrupt spill not quarantined: %v", name, err)
		}
		if string(qdata) != string(data) {
			t.Fatalf("%s: quarantine mangled the evidence", name)
		}
		quarantined++
		if got := c.CorruptQuarantined(); got != quarantined {
			t.Fatalf("%s: CorruptQuarantined=%d, want %d", name, got, quarantined)
		}
	}

	// An intact file still round-trips after all that.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get("k1"); !ok || string(v) != `{"ok":true}` {
		t.Fatalf("valid spill lost: %q %v", v, ok)
	}
}

// TestCacheSpillWriteIsAtomic checks the temp-file + rename protocol:
// after a Put that spills, no temp files linger and the spill validates.
func TestCacheSpillWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		c.Put(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i)))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".spill-") {
			t.Fatalf("stray temp file %s left behind", e.Name())
		}
	}
	if v, ok := c.Get("key3"); !ok || string(v) != "val3" {
		t.Fatalf("spilled key3: %q %v", v, ok)
	}
}

// TestCacheConcurrentDiskGets hammers the disk-hit path from many
// goroutines: the read happens outside the cache lock, every caller
// must still see the value, and -race must stay quiet.
func TestCacheConcurrentDiskGets(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	const spilled = 8
	for i := 0; i < spilled+2; i++ { // capacity 2: the first 8 keys spill
		c.Put(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i)))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g + i) % spilled
				want := fmt.Sprintf("val%d", k)
				if v, ok := c.Get(fmt.Sprintf("key%d", k)); !ok || string(v) != want {
					errs <- fmt.Errorf("key%d: got %q ok=%v", k, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("old"))
	c.Put("a", []byte("new"))
	if v, _ := c.Get("a"); string(v) != "new" {
		t.Fatalf("got %q", v)
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate insert: Len=%d", c.Len())
	}
}
