package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrQueueFull is Submit's backpressure signal: the bounded queue is at
// capacity and the client should retry later (HTTP 429 + Retry-After).
var ErrQueueFull = errors.New("serve: job queue full")

// ErrDraining means the scheduler has stopped accepting work (SIGTERM
// drain); surfaced to clients as HTTP 503.
var ErrDraining = errors.New("serve: scheduler draining")

// Scheduler is the bounded worker pool: a fixed number of workers drain a
// bounded FIFO queue. Submit never blocks — a full queue is backpressure,
// not an invitation to buffer unboundedly.
type Scheduler struct {
	mu      sync.Mutex
	queue   chan *Job
	closed  bool
	workers int
	busy    atomic.Int64
	wg      sync.WaitGroup
	exec    func(*Job)
}

// NewScheduler starts a pool of `workers` goroutines over a queue of
// `depth` slots; exec runs each job.
func NewScheduler(workers, depth int, exec func(*Job)) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	s := &Scheduler{queue: make(chan *Job, depth), workers: workers, exec: exec}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.busy.Add(1)
		s.exec(j)
		s.busy.Add(-1)
	}
}

// Submit enqueues a job without blocking; ErrQueueFull reports a full
// queue, ErrDraining a closed scheduler.
func (s *Scheduler) Submit(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrDraining
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// QueueDepth returns the number of jobs waiting in the queue.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return s.workers }

// Busy returns the number of workers currently executing a job.
func (s *Scheduler) Busy() int { return int(s.busy.Load()) }

// Close stops intake; queued jobs still run. Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
}

// Wait blocks until every worker has exited (Close must have been
// called) or ctx expires.
func (s *Scheduler) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
