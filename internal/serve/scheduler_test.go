package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedulerDrainUnderLoad closes the scheduler while submitters are
// still racing it and checks the drain contract: every job accepted
// before Close runs to completion exactly once, every submission that
// loses the race gets ErrDraining (never a lost job, never a panic on a
// closed channel), and submissions after drain keep failing. Run with
// -race to check the Submit/Close interleaving.
func TestSchedulerDrainUnderLoad(t *testing.T) {
	var executed atomic.Int64
	s := NewScheduler(3, 64, func(j *Job) {
		time.Sleep(time.Millisecond) // keep jobs queued at Close time
		executed.Add(1)
	})

	var (
		wg       sync.WaitGroup
		accepted atomic.Int64
		draining atomic.Int64
	)
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 40; i++ {
				err := s.Submit(&Job{ID: "x"})
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrDraining):
					draining.Add(1)
				case errors.Is(err, ErrQueueFull):
					// Backpressure, not drain; retry after a beat.
					time.Sleep(time.Millisecond)
				default:
					t.Errorf("unexpected Submit error: %v", err)
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let jobs pile up in the queue
	s.Close()
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Fatalf("Wait after Close: %v", err)
	}
	if got, want := executed.Load(), accepted.Load(); got != want {
		t.Fatalf("executed %d of %d accepted jobs (jobs lost or duplicated in drain)", got, want)
	}
	if draining.Load() == 0 {
		t.Fatal("no submitter observed ErrDraining while racing Close")
	}
	// Post-drain submissions must keep failing with ErrDraining.
	if err := s.Submit(&Job{ID: "late"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain: %v, want ErrDraining", err)
	}
	// Close is idempotent.
	s.Close()
}

// TestRetryAfterHintBounds pins the 429 backoff jitter: hints land in
// [base, 1.5*base), never below the base, and actually vary — a fixed
// hint would march every rejected client back in lockstep.
func TestRetryAfterHintBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := 4 * time.Second
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		d := retryAfterHint(base, rng.Float64())
		if d < base || d >= base+base/2 {
			t.Fatalf("hint %s outside [%s, %s)", d, base, base+base/2)
		}
		secs := retryAfterSeconds(d)
		if secs < 4 || secs > 6 {
			t.Fatalf("rounded hint %d outside [4, 6]", secs)
		}
		seen[secs] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitter produced a single value %v; hints must vary", seen)
	}
	// Degenerate bases stay safe: never below 1 second on the wire.
	if secs := retryAfterSeconds(retryAfterHint(0, 0.99)); secs != 1 {
		t.Fatalf("zero base rendered %d, want clamp to 1", secs)
	}
	if secs := retryAfterSeconds(retryAfterHint(10*time.Millisecond, 0.5)); secs != 1 {
		t.Fatalf("sub-second base rendered %d, want clamp to 1", secs)
	}
}
