package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = 256
	}
	if cfg.ProgressEvery == 0 {
		cfg.ProgressEvery = 1000
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, submitResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &sr)
	return resp.StatusCode, sr, resp.Header
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, want JobState, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q) while waiting for %s", id, st.State, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %s within %s", id, want, timeout)
	return JobStatus{}
}

// promValue extracts a sample from Prometheus text exposition output.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(data)
}

const smallSynthJob = `{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":100,"measure":2000,"seed":42}}`

// slowSynthJob runs long enough to still be in flight when the test acts
// on it (tens of millions of cycles), but cancels within CheckEvery.
func slowSynthJob(seed int) string {
	return fmt.Sprintf(`{"kind":"synthetic","synthetic":{"design":"no_pg","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":100,"measure":80000000,"seed":%d}}`, seed)
}

// TestServerDedup64 is the headline acceptance test: 64 concurrent
// identical submissions against a 2-worker server must execute exactly
// one simulation, with at least 63 cache hits, all visible in /metrics.
func TestServerDedup64(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 64})
	const n = 64
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		ids     = map[string]struct{}{}
		cached  int
		codes   = map[int]int{}
		firstID string
	)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			code, sr, _ := postJob(t, ts, smallSynthJob)
			mu.Lock()
			defer mu.Unlock()
			codes[code]++
			ids[sr.ID] = struct{}{}
			if sr.Cached {
				cached++
			} else {
				firstID = sr.ID
			}
		}()
	}
	close(start)
	wg.Wait()

	if codes[http.StatusAccepted] != 1 || codes[http.StatusOK] != n-1 {
		t.Fatalf("want 1x202 + %dx200, got %v", n-1, codes)
	}
	if cached != n-1 {
		t.Fatalf("want %d cached responses, got %d", n-1, cached)
	}
	if len(ids) != 1 {
		t.Fatalf("coalescing produced %d distinct job ids: %v", len(ids), ids)
	}
	st := waitState(t, ts, firstID, JobDone, 30*time.Second)
	if len(st.Result) == 0 {
		t.Fatal("done job has no result")
	}
	if got := s.Metrics().SimsExecuted.Load(); got != 1 {
		t.Fatalf("executed %d simulations, want exactly 1", got)
	}

	// A post-completion resubmission also hits (byKey retains done jobs).
	code, sr, _ := postJob(t, ts, smallSynthJob)
	if code != http.StatusOK || !sr.Cached {
		t.Fatalf("resubmit after done: code=%d cached=%v", code, sr.Cached)
	}

	body := scrape(t, ts)
	if v := promValue(t, body, "nord_sims_executed_total"); v != 1 {
		t.Fatalf("nord_sims_executed_total=%v", v)
	}
	if v := promValue(t, body, "nord_cache_hits_total"); v < n-1 {
		t.Fatalf("nord_cache_hits_total=%v, want >= %d", v, n-1)
	}
	if v := promValue(t, body, "nord_cache_misses_total"); v != 1 {
		t.Fatalf("nord_cache_misses_total=%v", v)
	}
	if v := promValue(t, body, "nord_sim_cycles_total"); v <= 0 {
		t.Fatalf("nord_sim_cycles_total=%v, want > 0", v)
	}
}

// TestServerQueueOverflow fills a 1-worker, 1-slot server and checks the
// backpressure contract: 429 plus a Retry-After hint, counted in metrics.
func TestServerQueueOverflow(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})

	// Occupy the worker with a long run.
	code, first, _ := postJob(t, ts, slowSynthJob(1))
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	waitState(t, ts, first.ID, JobRunning, 10*time.Second)

	// Fill the single queue slot.
	if code, _, _ := postJob(t, ts, slowSynthJob(2)); code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	// Overflow.
	code, _, hdr := postJob(t, ts, slowSynthJob(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", code)
	}
	// The hint is jittered over [base, 1.5*base) and rounded up to whole
	// seconds: base 2s → 2 or 3.
	if ra := hdr.Get("Retry-After"); ra != "2" && ra != "3" {
		t.Fatalf("Retry-After=%q, want \"2\" or \"3\" (jittered 2s base)", ra)
	}
	body := scrape(t, ts)
	if v := promValue(t, body, "nord_jobs_rejected_total"); v != 1 {
		t.Fatalf("nord_jobs_rejected_total=%v", v)
	}
	if v := promValue(t, body, "nord_queue_depth"); v != 1 {
		t.Fatalf("nord_queue_depth=%v", v)
	}
	if v := promValue(t, body, "nord_workers_busy"); v != 1 {
		t.Fatalf("nord_workers_busy=%v", v)
	}
	// Cleanup: cancel both jobs so Shutdown is fast.
	for _, id := range []string{first.ID, "j000002"} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerCancelMidRun cancels a running job and checks it terminates
// promptly (bounded by the sim layer's context polling), and that the
// canceled key is dropped so a resubmission re-executes.
func TestServerCancelMidRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	code, sr, _ := postJob(t, ts, slowSynthJob(7))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitState(t, ts, sr.ID, JobRunning, 10*time.Second)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStatus(t, ts, sr.ID)
		if st.State == JobCanceled {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job ended %s, want canceled", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s long after cancel — tick loop not honouring ctx", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.Metrics().JobsCanceled.Load(); got != 1 {
		t.Fatalf("JobsCanceled=%d", got)
	}
	// The canceled run must not satisfy future submissions.
	code, sr2, _ := postJob(t, ts, slowSynthJob(7))
	if code != http.StatusAccepted || sr2.Cached {
		t.Fatalf("resubmit after cancel: code=%d cached=%v", code, sr2.Cached)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sr2.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
}

// TestServerEvents streams NDJSON progress and checks snapshots plus the
// terminal marker arrive.
func TestServerEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, ProgressEvery: 500})
	code, sr, _ := postJob(t, ts, smallSynthJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type=%q", ct)
	}
	var snapshots, terminal int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Done  bool     `json:"done"`
			State JobState `json:"state"`
			Cycle uint64   `json:"cycle"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Done {
			terminal++
			if probe.State != JobDone {
				t.Fatalf("terminal state %s", probe.State)
			}
		} else {
			snapshots++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if snapshots == 0 {
		t.Fatal("no progress snapshots streamed")
	}
	if terminal != 1 {
		t.Fatalf("want exactly one terminal line, got %d", terminal)
	}
}

// TestServerValidation covers the client-error surface.
func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	cases := []struct {
		name, body string
	}{
		{"not json", `{{{`},
		{"missing kind", `{}`},
		{"unknown kind", `{"kind":"quantum"}`},
		{"kind without spec", `{"kind":"synthetic"}`},
		{"unknown design", `{"kind":"synthetic","synthetic":{"design":"mystery"}}`},
		{"rate out of range", `{"kind":"synthetic","synthetic":{"design":"nord","rate":2.0}}`},
		{"unknown pattern", `{"kind":"synthetic","synthetic":{"design":"nord","pattern":"spiral"}}`},
		{"unknown benchmark", `{"kind":"workload","workload":{"design":"nord","benchmark":"doom"}}`},
		{"sweep without rates", `{"kind":"sweep","sweep":{}}`},
		{"unknown field", `{"kind":"synthetic","synthetic":{"design":"nord"},"bogus":1}`},
		{"unknown topology", `{"kind":"synthetic","synthetic":{"design":"nord","topology":"hypercube"}}`},
		{"oversized width", `{"kind":"synthetic","synthetic":{"design":"nord","width":257,"height":4}}`},
		{"oversized height", `{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":100000}}`},
		{"torus needs 3 vcs", `{"kind":"synthetic","synthetic":{"design":"no_pg","topology":"torus","vcs":2}}`},
		{"oversized sweep grid", `{"kind":"sweep","sweep":{"width":300,"height":4,"rates":[0.05]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, _ := postJob(t, ts, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("code=%d, want 400", code)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// TestSweepRatesCap: the per-sweep rate list is bounded — each entry
// fans out into a simulation per design, so an unbounded list is a
// resource-exhaustion footgun.
func TestSweepRatesCap(t *testing.T) {
	over := make([]float64, maxSweepRates+1)
	if _, err := (&SweepSpec{Rates: over}).resolve(); err == nil {
		t.Fatalf("%d rates accepted, cap is %d", len(over), maxSweepRates)
	}
	if _, err := (&SweepSpec{Rates: over[:maxSweepRates]}).resolve(); err != nil {
		t.Fatalf("at-cap rate list rejected: %v", err)
	}
}

// TestTopologySpecRoundTrip: a topology-bearing spec must survive the
// resolve -> filled config -> syntheticSpecFor round trip with the same
// cache key, and distinct topologies must key differently (the cache
// must never serve a mesh result for a torus request).
func TestTopologySpecRoundTrip(t *testing.T) {
	keys := map[string]string{}
	for _, topo := range []string{"mesh", "torus", "cmesh"} {
		sp := &SyntheticSpec{Design: "nord", Topology: topo, Width: 4, Height: 4, Rate: 0.05, Measure: 1000}
		tk, err := sp.resolve()
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		keys[topo] = tk.key

		cfg := goldenSynthConfig()
		cfg.Topology = topo
		rt, err := syntheticSpecFor(cfg.Filled()).resolve()
		if err != nil {
			t.Fatalf("%s round trip: %v", topo, err)
		}
		direct, err := taskKey("synthetic", false, cfg.Filled())
		if err != nil {
			t.Fatal(err)
		}
		if rt.key != direct {
			t.Errorf("%s: round-tripped key %s != direct key %s", topo, rt.key, direct)
		}
	}
	if keys["mesh"] == keys["torus"] || keys["mesh"] == keys["cmesh"] || keys["torus"] == keys["cmesh"] {
		t.Errorf("topologies share a cache key: %v", keys)
	}
}

// TestServerDrain checks BeginDrain flips intake and readiness to 503
// while existing jobs remain queryable.
func TestServerDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	code, sr, _ := postJob(t, ts, smallSynthJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitState(t, ts, sr.ID, JobDone, 30*time.Second)

	s.BeginDrain()
	if code, _, _ := postJob(t, ts, slowSynthJob(99)); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	// Completed work stays readable during the drain.
	if st := getStatus(t, ts, sr.ID); st.State != JobDone {
		t.Fatalf("job state %s after drain", st.State)
	}
}

// TestServerSweepJob exercises the sweep kind end to end (it fans out
// internally via ParallelLoadSweepCtx).
func TestServerSweepJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	body := `{"kind":"sweep","sweep":{"width":4,"height":4,"pattern":"uniform","rates":[0.02],"measure":2000,"seed":3}}`
	code, sr, _ := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	st := waitState(t, ts, sr.ID, JobDone, 60*time.Second)
	var pts []map[string]any
	if err := json.Unmarshal(st.Result, &pts); err != nil {
		t.Fatalf("sweep result not a point list: %v", err)
	}
	if len(pts) == 0 {
		t.Fatal("sweep produced no points")
	}
}
