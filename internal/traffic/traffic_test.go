package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nord/internal/flit"
	"nord/internal/topology"
)

// fakeNet implements Network without simulating anything.
type fakeNet struct {
	mesh     topology.Mesh
	accepted []*flit.Packet
	reject   bool
	nextID   uint64
}

func (f *fakeNet) Mesh() topology.Mesh { return f.mesh }
func (f *fakeNet) NewPacket(src, dst int, class flit.Class, length int) *flit.Packet {
	f.nextID++
	return &flit.Packet{ID: f.nextID, Src: src, Dst: dst, Class: class, Length: length}
}
func (f *fakeNet) Inject(p *flit.Packet) bool {
	if f.reject {
		return false
	}
	f.accepted = append(f.accepted, p)
	return true
}

func TestPatternsStayOnMesh(t *testing.T) {
	m := topology.MustMesh(4, 4)
	rng := rand.New(rand.NewSource(1))
	pats := map[string]Pattern{
		"uniform":   UniformRandom,
		"bitcomp":   BitComplement,
		"transpose": Transpose,
		"tornado":   Tornado,
		"hotspot":   Hotspot([]int{5}, 0.5),
	}
	for name, p := range pats {
		for src := 0; src < m.N(); src++ {
			for i := 0; i < 20; i++ {
				d := p(m, src, rng)
				if !m.Valid(d) {
					t.Errorf("%s: invalid destination %d from %d", name, d, src)
				}
			}
		}
	}
}

func TestUniformNeverSelf(t *testing.T) {
	m := topology.MustMesh(4, 4)
	rng := rand.New(rand.NewSource(2))
	for src := 0; src < m.N(); src++ {
		for i := 0; i < 200; i++ {
			if UniformRandom(m, src, rng) == src {
				t.Fatalf("uniform returned self for %d", src)
			}
		}
	}
}

func TestBitComplement(t *testing.T) {
	m := topology.MustMesh(4, 4)
	if d := BitComplement(m, 0, nil); d != 15 {
		t.Errorf("bitcomp(0) = %d, want 15", d)
	}
	if d := BitComplement(m, 5, nil); d != 10 {
		t.Errorf("bitcomp(5) = %d, want 10", d)
	}
}

func TestTranspose(t *testing.T) {
	m := topology.MustMesh(4, 4)
	if d := Transpose(m, m.ID(1, 2), nil); d != m.ID(2, 1) {
		t.Errorf("transpose(1,2) = %d, want %d", d, m.ID(2, 1))
	}
}

func TestTornado(t *testing.T) {
	m := topology.MustMesh(4, 4)
	// (0,0) -> (0+2-1 mod 4, 0) = (1,0)
	if d := Tornado(m, 0, nil); d != 1 {
		t.Errorf("tornado(0) = %d, want 1", d)
	}
}

func TestPatternByName(t *testing.T) {
	for _, name := range []string{"uniform", "bitcomp", "transpose", "tornado"} {
		if _, err := PatternByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := PatternByName("nope"); err == nil {
		t.Error("unknown pattern should error")
	}
}

func TestSyntheticRate(t *testing.T) {
	f := &fakeNet{mesh: topology.MustMesh(4, 4)}
	s := NewSynthetic(f, UniformRandom, 0.3, 42)
	cycles := 20000
	for c := 0; c < cycles; c++ {
		s.Tick(uint64(c))
	}
	var flits uint64
	for _, p := range f.accepted {
		flits += uint64(p.Length)
	}
	got := float64(flits) / float64(cycles) / 16.0
	if got < 0.27 || got > 0.33 {
		t.Errorf("offered load = %.3f flits/node/cycle, want ~0.30", got)
	}
	if s.Dropped() != 0 {
		t.Errorf("unexpected drops: %d", s.Dropped())
	}
	// Packet length mix is bimodal 1 / 5.
	short, long := 0, 0
	for _, p := range f.accepted {
		switch p.Length {
		case ShortFlits:
			short++
		case LongFlits:
			long++
		default:
			t.Fatalf("unexpected packet length %d", p.Length)
		}
	}
	ratio := float64(short) / float64(short+long)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("short fraction %.3f, want ~0.5", ratio)
	}
}

func TestSyntheticBackpressureDrops(t *testing.T) {
	f := &fakeNet{mesh: topology.MustMesh(4, 4), reject: true}
	s := NewSynthetic(f, UniformRandom, 1.0, 7)
	for c := 0; c < 5000; c++ {
		s.Tick(uint64(c))
	}
	if s.Dropped() == 0 {
		t.Error("expected drops when the network rejects everything")
	}
	if s.Offered() == 0 {
		t.Error("no packets offered")
	}
}

func TestBurstyAverageRate(t *testing.T) {
	f := &fakeNet{mesh: topology.MustMesh(4, 4)}
	b := NewBursty(f, UniformRandom, 0.4, 50, 150, 11)
	want := b.AvgRate() // 0.4 * 50/200 = 0.1
	if want != 0.1 {
		t.Fatalf("AvgRate = %v, want 0.1", want)
	}
	cycles := 40000
	for c := 0; c < cycles; c++ {
		b.Tick(uint64(c))
	}
	var flits uint64
	for _, p := range f.accepted {
		flits += uint64(p.Length)
	}
	got := float64(flits) / float64(cycles) / 16.0
	if got < 0.07 || got > 0.13 {
		t.Errorf("bursty load = %.3f, want ~%.2f", got, want)
	}
}

func TestBurstyRejectsCounted(t *testing.T) {
	f := &fakeNet{mesh: topology.MustMesh(4, 4), reject: true}
	b := NewBursty(f, UniformRandom, 1.0, 100, 1, 3)
	for c := 0; c < 5000; c++ {
		b.Tick(uint64(c))
	}
	if b.Dropped() == 0 {
		t.Error("expected bursty drops under full rejection")
	}
	if b.Offered() == 0 {
		t.Error("no packets offered")
	}
}

// Property: all generated packets have valid src/dst and src != dst.
func TestSyntheticPacketsValid(t *testing.T) {
	f := func(seed int64, w8, h8 uint8) bool {
		w := int(w8%5) + 2
		h := int(h8%5) + 2
		fn := &fakeNet{mesh: topology.MustMesh(w, h)}
		s := NewSynthetic(fn, UniformRandom, 0.5, seed)
		for c := 0; c < 500; c++ {
			s.Tick(uint64(c))
		}
		for _, p := range fn.accepted {
			if !fn.mesh.Valid(p.Src) || !fn.mesh.Valid(p.Dst) || p.Src == p.Dst {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(8)), MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
