// Package traffic provides the synthetic workloads of the evaluation:
// uniform random and bit complement (Section 5.2), further classic
// patterns for testing, a Bernoulli open-loop injector with the paper's
// bimodal packet lengths (1-flit short / 5-flit long), and a two-state
// bursty source useful for idle-period studies.
package traffic

import (
	"fmt"
	"math/rand"

	"nord/internal/flit"
	"nord/internal/topology"
)

// Pattern maps a source node to a destination node.
type Pattern func(m topology.Mesh, src int, rng *rand.Rand) int

// UniformRandom picks any node other than the source uniformly.
func UniformRandom(m topology.Mesh, src int, rng *rand.Rand) int {
	d := rng.Intn(m.N() - 1)
	if d >= src {
		d++
	}
	return d
}

// BitComplement sends to the bit-complement of the node index (the
// diagonally opposite node): node (x,y) -> (W-1-x, H-1-y).
func BitComplement(m topology.Mesh, src int, _ *rand.Rand) int {
	x, y := m.Coord(src)
	return m.ID(m.W-1-x, m.H-1-y)
}

// Transpose sends (x, y) -> (y, x); meaningful on square meshes.
func Transpose(m topology.Mesh, src int, _ *rand.Rand) int {
	x, y := m.Coord(src)
	if x >= m.H || y >= m.W {
		return BitComplement(m, src, nil)
	}
	return m.ID(y, x)
}

// Tornado sends halfway around each row: (x, y) -> (x + W/2 - 1 mod W, y).
func Tornado(m topology.Mesh, src int, _ *rand.Rand) int {
	x, y := m.Coord(src)
	return m.ID((x+m.W/2-1+m.W)%m.W, y)
}

// Hotspot returns a pattern sending the given fraction of traffic to the
// hotspot nodes and the rest uniformly.
func Hotspot(spots []int, frac float64) Pattern {
	return func(m topology.Mesh, src int, rng *rand.Rand) int {
		if len(spots) > 0 && rng.Float64() < frac {
			d := spots[rng.Intn(len(spots))]
			if d != src {
				return d
			}
		}
		return UniformRandom(m, src, rng)
	}
}

// PatternByName resolves the patterns used by the CLI tools.
func PatternByName(name string) (Pattern, error) {
	switch name {
	case "uniform":
		return UniformRandom, nil
	case "bitcomp", "bit-complement":
		return BitComplement, nil
	case "transpose":
		return Transpose, nil
	case "tornado":
		return Tornado, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q (uniform, bitcomp, transpose, tornado)", name)
	}
}

// Injector is the interface traffic sources expose to the simulation
// harness.
type Injector interface {
	// Tick is called once per cycle before the network tick; the source
	// creates packets and offers them to inject. inject reports false on
	// backpressure.
	Tick(cycle uint64)
	// Offered returns the number of packets generated so far (whether or
	// not accepted yet).
	Offered() uint64
	// Dropped returns packets abandoned because the source queue
	// overflowed (only meaningful beyond saturation).
	Dropped() uint64
	// Pending returns packets generated but not yet accepted by the
	// network (sitting in per-node source queues).
	Pending() int
}

// Network is the slice of the noc API the injectors need; *noc.Network
// satisfies it.
type Network interface {
	Mesh() topology.Mesh
	NewPacket(src, dst int, class flit.Class, length int) *flit.Packet
	Inject(p *flit.Packet) bool
}

// Bimodal packet lengths (Section 5.2): "packets are uniformly assigned
// two lengths. Short packets are single-flit while long packets have 5
// flits."
const (
	ShortFlits = 1
	LongFlits  = 5
	// avgFlits is the expected packet length with the 50/50 mix.
	avgFlits = (ShortFlits + LongFlits) / 2.0
)

// Synthetic is an open-loop Bernoulli injector: each node independently
// generates packets so that the offered load equals Rate flits/node/cycle.
type Synthetic struct {
	Net     Network
	Pattern Pattern
	// Rate is the offered load in flits per node per cycle.
	Rate float64
	// ShortFrac is the probability a packet is short (default 0.5).
	ShortFrac float64
	// Class is the protocol class to inject on.
	Class flit.Class
	// MaxPending bounds each node's source queue; beyond it packets are
	// dropped (the network is saturated anyway). Default 64.
	MaxPending int

	rng     *rand.Rand
	pending [][]*flit.Packet
	offered uint64
	dropped uint64
}

// NewSynthetic builds an injector with the paper's defaults.
func NewSynthetic(net Network, pattern Pattern, rate float64, seed int64) *Synthetic {
	return &Synthetic{
		Net:        net,
		Pattern:    pattern,
		Rate:       rate,
		ShortFrac:  0.5,
		MaxPending: 64,
		rng:        rand.New(rand.NewSource(seed)),
		pending:    make([][]*flit.Packet, net.Mesh().N()),
	}
}

// Tick generates this cycle's packets and drains per-node source queues.
func (s *Synthetic) Tick(cycle uint64) {
	m := s.Net.Mesh()
	pPkt := s.Rate / avgFlits
	for src := 0; src < m.N(); src++ {
		if s.rng.Float64() < pPkt {
			dst := s.Pattern(m, src, s.rng)
			if dst == src {
				continue
			}
			length := LongFlits
			if s.rng.Float64() < s.ShortFrac {
				length = ShortFlits
			}
			s.offered++
			if len(s.pending[src]) < s.MaxPending {
				s.pending[src] = append(s.pending[src], s.Net.NewPacket(src, dst, s.Class, length))
			} else {
				s.dropped++
			}
		}
		// Drain the source queue into the NI. Dequeue by copying down so
		// the slice keeps its capacity (reslicing would leak it and force
		// a reallocation per MaxPending packets).
		for len(s.pending[src]) > 0 {
			if !s.Net.Inject(s.pending[src][0]) {
				break
			}
			q := s.pending[src]
			copy(q, q[1:])
			q[len(q)-1] = nil
			s.pending[src] = q[:len(q)-1]
		}
	}
}

// Offered implements Injector.
func (s *Synthetic) Offered() uint64 { return s.offered }

// Dropped implements Injector.
func (s *Synthetic) Dropped() uint64 { return s.dropped }

// Pending implements Injector.
func (s *Synthetic) Pending() int {
	n := 0
	for _, q := range s.pending {
		n += len(q)
	}
	return n
}

// Bursty is a two-state Markov-modulated injector: each node alternates
// between an "on" state injecting at OnRate and a silent "off" state.
// Mean burst and gap lengths control how fragmented router idle periods
// are (the Section 3.2 phenomenon).
type Bursty struct {
	Net       Network
	Pattern   Pattern
	OnRate    float64 // flits/node/cycle while bursting
	MeanBurst float64 // mean cycles per on-period
	MeanGap   float64 // mean cycles per off-period
	ShortFrac float64
	Class     flit.Class

	rng     *rand.Rand
	on      []bool
	pending [][]*flit.Packet
	offered uint64
	dropped uint64
}

// NewBursty builds a bursty injector. The long-run average load is
// OnRate * MeanBurst / (MeanBurst + MeanGap).
func NewBursty(net Network, pattern Pattern, onRate, meanBurst, meanGap float64, seed int64) *Bursty {
	n := net.Mesh().N()
	return &Bursty{
		Net: net, Pattern: pattern,
		OnRate: onRate, MeanBurst: meanBurst, MeanGap: meanGap,
		ShortFrac: 0.5,
		rng:       rand.New(rand.NewSource(seed)),
		on:        make([]bool, n),
		pending:   make([][]*flit.Packet, n),
	}
}

// AvgRate returns the long-run offered load in flits/node/cycle.
func (b *Bursty) AvgRate() float64 {
	return b.OnRate * b.MeanBurst / (b.MeanBurst + b.MeanGap)
}

// Tick implements Injector.
func (b *Bursty) Tick(cycle uint64) {
	m := b.Net.Mesh()
	for src := 0; src < m.N(); src++ {
		// Geometric state flips give the configured mean durations.
		if b.on[src] {
			if b.rng.Float64() < 1.0/b.MeanBurst {
				b.on[src] = false
			}
		} else if b.rng.Float64() < 1.0/b.MeanGap {
			b.on[src] = true
		}
		if b.on[src] && b.rng.Float64() < b.OnRate/avgFlits {
			dst := b.Pattern(m, src, b.rng)
			if dst == src {
				continue
			}
			length := LongFlits
			if b.rng.Float64() < b.ShortFrac {
				length = ShortFlits
			}
			b.offered++
			if len(b.pending[src]) < 64 {
				b.pending[src] = append(b.pending[src], b.Net.NewPacket(src, dst, b.Class, length))
			} else {
				b.dropped++
			}
		}
		for len(b.pending[src]) > 0 {
			if !b.Net.Inject(b.pending[src][0]) {
				break
			}
			q := b.pending[src]
			copy(q, q[1:])
			q[len(q)-1] = nil
			b.pending[src] = q[:len(q)-1]
		}
	}
}

// Offered implements Injector.
func (b *Bursty) Offered() uint64 { return b.offered }

// Dropped implements Injector.
func (b *Bursty) Dropped() uint64 { return b.dropped }

// Pending implements Injector.
func (b *Bursty) Pending() int {
	n := 0
	for _, q := range b.pending {
		n += len(q)
	}
	return n
}
