// Package trace records and replays network traffic. A trace captures
// the packets a workload injects (cycle, source, destination, protocol
// class, length), so an expensive full-system run can be performed once
// and replayed cheaply across power-gating designs and parameter sweeps
// — the standard trace-driven methodology of NoC studies.
//
// The on-disk format is line-oriented text, one event per line:
//
//	# nord-trace v1 nodes=16
//	<cycle> <src> <dst> <class> <flits>
//
// Files ending in .gz are transparently (de)compressed.
package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"nord/internal/flit"
)

// Event is one recorded packet injection.
type Event struct {
	Cycle uint64
	Src   int
	Dst   int
	Class flit.Class
	Flits int
}

// header identifies the format.
const headerPrefix = "# nord-trace v1 nodes="

// Trace is an in-memory trace.
type Trace struct {
	Nodes  int
	Events []Event
}

// Validate checks internal consistency.
func (t *Trace) Validate() error {
	if t.Nodes < 2 {
		return fmt.Errorf("trace: node count %d invalid", t.Nodes)
	}
	var last uint64
	for i, e := range t.Events {
		if e.Src < 0 || e.Src >= t.Nodes || e.Dst < 0 || e.Dst >= t.Nodes {
			return fmt.Errorf("trace: event %d endpoints (%d->%d) outside %d nodes", i, e.Src, e.Dst, t.Nodes)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("trace: event %d is self-addressed", i)
		}
		if e.Flits < 1 {
			return fmt.Errorf("trace: event %d has %d flits", i, e.Flits)
		}
		if e.Cycle < last {
			return fmt.Errorf("trace: event %d out of cycle order", i)
		}
		last = e.Cycle
	}
	return nil
}

// Sort orders events by cycle (stable), normalising traces assembled out
// of order.
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].Cycle < t.Events[j].Cycle })
}

// Write serialises the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s%d\n", headerPrefix, t.Nodes); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d\n", e.Cycle, e.Src, e.Dst, e.Class, e.Flits); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<20), 1<<20)
	if !br.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	head := br.Text()
	if !strings.HasPrefix(head, headerPrefix) {
		return nil, fmt.Errorf("trace: bad header %q", head)
	}
	t := &Trace{}
	if _, err := fmt.Sscanf(head[len(headerPrefix):], "%d", &t.Nodes); err != nil {
		return nil, fmt.Errorf("trace: bad node count: %w", err)
	}
	line := 1
	for br.Scan() {
		line++
		text := strings.TrimSpace(br.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var e Event
		var class int
		if _, err := fmt.Sscanf(text, "%d %d %d %d %d", &e.Cycle, &e.Src, &e.Dst, &class, &e.Flits); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		e.Class = flit.Class(class)
		t.Events = append(t.Events, e)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Save writes the trace to a file, gzip-compressed for .gz names.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := t.Write(w); err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

// Load reads a trace from a file, gunzipping .gz names.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		r = gz
	}
	return Read(r)
}

// Recorder accumulates injected packets from a live network. Attach it
// with net.SetInjectHook(rec.Hook) before running.
type Recorder struct {
	t *Trace
}

// NewRecorder returns a recorder for a network of the given size.
func NewRecorder(nodes int) *Recorder {
	return &Recorder{t: &Trace{Nodes: nodes}}
}

// Hook is the inject-hook callback.
func (r *Recorder) Hook(p *flit.Packet, cycle uint64) {
	r.t.Events = append(r.t.Events, Event{
		Cycle: cycle,
		Src:   p.Src,
		Dst:   p.Dst,
		Class: p.Class,
		Flits: p.Length,
	})
}

// Trace returns the recorded trace (sorted, ready to save).
func (r *Recorder) Trace() *Trace {
	r.t.Sort()
	return r.t
}

// Network is the injection surface a replayer needs; *noc.Network
// satisfies it.
type Network interface {
	NewPacket(src, dst int, class flit.Class, length int) *flit.Packet
	Inject(p *flit.Packet) bool
	Cycle() uint64
}

// Replayer injects a trace's events into a network at their recorded
// cycles (open loop); events that hit NI backpressure are retried on
// subsequent cycles.
type Replayer struct {
	net     Network
	events  []Event
	next    int
	pending []Event
	// Injected counts events handed to the network so far.
	Injected uint64
}

// NewReplayer builds a replayer. The network must have at least as many
// nodes as the trace.
func NewReplayer(net Network, t *Trace) *Replayer {
	return &Replayer{net: net, events: t.Events}
}

// Tick injects every event due at the current cycle (call once per cycle
// before the network tick).
func (r *Replayer) Tick(cycle uint64) {
	keep := r.pending[:0]
	for _, e := range r.pending {
		if r.inject(e) {
			continue
		}
		keep = append(keep, e)
	}
	r.pending = keep
	for r.next < len(r.events) && r.events[r.next].Cycle <= cycle {
		e := r.events[r.next]
		r.next++
		if !r.inject(e) {
			r.pending = append(r.pending, e)
		}
	}
}

func (r *Replayer) inject(e Event) bool {
	p := r.net.NewPacket(e.Src, e.Dst, e.Class, e.Flits)
	if !r.net.Inject(p) {
		return false
	}
	r.Injected++
	return true
}

// Done reports whether every event has been handed to the network.
func (r *Replayer) Done() bool {
	return r.next >= len(r.events) && len(r.pending) == 0
}

// Offered implements the traffic.Injector surface loosely (events total).
func (r *Replayer) Offered() uint64 { return uint64(len(r.events)) }

// Pending returns events still awaiting injection.
func (r *Replayer) Pending() int { return len(r.events) - r.next + len(r.pending) }

// Dropped always returns 0: a replayer never abandons events.
func (r *Replayer) Dropped() uint64 { return 0 }
