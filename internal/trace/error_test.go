package trace

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadErrorPaths covers the parser's rejection of malformed input.
func TestReadErrorPaths(t *testing.T) {
	cases := []struct {
		name, input, want string
	}{
		{"empty", "", "empty input"},
		{"truncated header", "# nord-trace v1 nod", "bad header"},
		{"wrong magic", "nord-trace v1 nodes=16\n", "bad header"},
		{"missing node count", "# nord-trace v1 nodes=\n", "bad node count"},
		{"garbage node count", "# nord-trace v1 nodes=banana\n", "bad node count"},
		{"node count too small", "# nord-trace v1 nodes=1\n", "node count 1 invalid"},
		{"short event line", "# nord-trace v1 nodes=16\n10 0 5 0\n", "line 2"},
		{"non-numeric event", "# nord-trace v1 nodes=16\n10 0 five 0 1\n", "line 2"},
		{"src out of range", "# nord-trace v1 nodes=16\n10 16 5 0 1\n", "outside 16 nodes"},
		{"dst out of range", "# nord-trace v1 nodes=16\n10 0 99 0 1\n", "outside 16 nodes"},
		{"negative src", "# nord-trace v1 nodes=16\n10 -1 5 0 1\n", "outside 16 nodes"},
		{"self-addressed", "# nord-trace v1 nodes=16\n10 5 5 0 1\n", "self-addressed"},
		{"zero flits", "# nord-trace v1 nodes=16\n10 0 5 0 0\n", "has 0 flits"},
		{"non-monotonic cycles", "# nord-trace v1 nodes=16\n20 0 5 0 1\n10 1 6 0 1\n", "out of cycle order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("Read accepted %q", tc.input)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadSkipsCommentsAndBlanks checks tolerated noise is not an error.
func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# nord-trace v1 nodes=16\n\n# a comment\n10 0 5 0 1\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 || tr.Nodes != 16 {
		t.Fatalf("got %d events, %d nodes", len(tr.Events), tr.Nodes)
	}
}

// TestLoadCorruptGzip verifies a .gz file with invalid contents fails
// cleanly instead of feeding garbage to the parser.
func TestLoadCorruptGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.trace.gz")
	if err := os.WriteFile(path, []byte("this is not gzip data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a corrupt gzip file")
	}
}

// TestLoadTruncatedGzip verifies a gzip stream cut off mid-body errors.
func TestLoadTruncatedGzip(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.trace.gz")
	tr := &Trace{Nodes: 16}
	for i := 0; i < 2000; i++ {
		tr.Events = append(tr.Events, Event{Cycle: uint64(i), Src: i % 16, Dst: (i + 1) % 16, Flits: 1})
	}
	if err := tr.Save(full); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.trace.gz")
	if err := os.WriteFile(cut, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(cut); err == nil {
		t.Fatal("Load accepted a truncated gzip stream")
	}
}

// TestLoadRoundTrip sanity-checks Save/Load including gzip framing so the
// corrupt-input tests above are meaningful.
func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.trace.gz")
	want := &Trace{Nodes: 16, Events: []Event{
		{Cycle: 5, Src: 0, Dst: 3, Flits: 1},
		{Cycle: 9, Src: 2, Dst: 7, Class: 1, Flits: 5},
	}}
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	// The file really is gzip: a raw reader must see the magic bytes.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := gzip.NewReader(f); err != nil {
		t.Fatalf("saved .gz is not gzip: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != want.Nodes || len(got.Events) != len(want.Events) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], want.Events[i])
		}
	}
}
