package trace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"nord/internal/flit"
	"nord/internal/noc"
	"nord/internal/traffic"
)

func sampleTrace() *Trace {
	return &Trace{
		Nodes: 16,
		Events: []Event{
			{Cycle: 1, Src: 0, Dst: 5, Class: flit.ClassRequest, Flits: 1},
			{Cycle: 3, Src: 5, Dst: 0, Class: flit.ClassResponse, Flits: 5},
			{Cycle: 3, Src: 2, Dst: 9, Class: flit.ClassRequest, Flits: 1},
			{Cycle: 10, Src: 15, Dst: 1, Class: flit.ClassForward, Flits: 1},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != tr.Nodes || len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestSaveLoadGzip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"t.trace", "t.trace.gz"} {
		path := filepath.Join(dir, name)
		tr := sampleTrace()
		if err := tr.Save(path); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Events) != 4 {
			t.Errorf("%s: %d events", name, len(got.Events))
		}
	}
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"# nord-trace v1 nodes=16\n1 2\n",
		"# nord-trace v1 nodes=16\n1 0 0 0 1\n",  // self-addressed
		"# nord-trace v1 nodes=16\n1 0 99 0 1\n", // out of range
		"# nord-trace v1 nodes=16\n5 0 1 0 1\n1 1 2 0 1\n", // out of order
		"# nord-trace v1 nodes=16\n1 0 1 0 0\n",            // zero flits
		"# nord-trace v1 nodes=1\n",                        // bad node count
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Comments and blank lines are fine.
	ok := "# nord-trace v1 nodes=16\n\n# comment\n1 0 1 0 1\n"
	if _, err := Read(strings.NewReader(ok)); err != nil {
		t.Errorf("comments rejected: %v", err)
	}
}

// Property: write/read round-trips arbitrary valid traces.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		tr := &Trace{Nodes: 16}
		cyc := uint64(0)
		for _, v := range raw {
			cyc += uint64(v % 7)
			src := int(v % 16)
			dst := int((v / 16) % 16)
			if src == dst {
				dst = (dst + 1) % 16
			}
			length := 1
			if v%2 == 0 {
				length = 5
			}
			tr.Events = append(tr.Events, Event{Cycle: cyc, Src: src, Dst: dst, Class: flit.Class(v % 3), Flits: length})
		}
		var buf bytes.Buffer
		if tr.Write(&buf) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(9)), MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRecordReplay: record a synthetic run, replay it onto a fresh
// network of a different design, and check every event is delivered.
func TestRecordReplay(t *testing.T) {
	// Record on No_PG.
	rec := NewRecorder(16)
	n1 := noc.MustNew(noc.DefaultParams(noc.NoPG))
	n1.SetInjectHook(rec.Hook)
	inj := traffic.NewSynthetic(n1, traffic.UniformRandom, 0.05, 3)
	for c := 0; c < 4000; c++ {
		inj.Tick(n1.Cycle())
		n1.Tick()
	}
	tr := rec.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) < 100 {
		t.Fatalf("recorded only %d events", len(tr.Events))
	}

	// Replay onto NoRD.
	n2 := noc.MustNew(noc.DefaultParams(noc.NoRD))
	rep := NewReplayer(n2, tr)
	delivered := 0
	n2.SetDeliveryHandler(func(p *flit.Packet, _ uint64) { delivered++ })
	n2.BeginMeasurement()
	for c := 0; c < 4000 || !rep.Done(); c++ {
		rep.Tick(n2.Cycle())
		n2.Tick()
		if c > 500_000 {
			t.Fatal("replay never completed")
		}
	}
	if err := n2.Drain(200_000); err != nil {
		t.Fatal(err)
	}
	if uint64(delivered) != rep.Injected || rep.Injected != uint64(len(tr.Events)) {
		t.Errorf("delivered %d of %d replayed (injected %d)", delivered, len(tr.Events), rep.Injected)
	}
	if rep.Dropped() != 0 || rep.Pending() != 0 {
		t.Error("replayer left events behind")
	}
	if rep.Offered() != uint64(len(tr.Events)) {
		t.Error("offered count wrong")
	}
}

// TestReplayBackpressure: a tiny injection queue forces retries; nothing
// is lost.
func TestReplayBackpressure(t *testing.T) {
	p := noc.DefaultParams(noc.NoPG)
	p.InjectQueueDepth = 1
	n := noc.MustNew(p)
	tr := &Trace{Nodes: 16}
	for i := 0; i < 50; i++ {
		tr.Events = append(tr.Events, Event{Cycle: 1, Src: 0, Dst: 15, Class: 0, Flits: 5})
	}
	rep := NewReplayer(n, tr)
	delivered := 0
	n.SetDeliveryHandler(func(pk *flit.Packet, _ uint64) { delivered++ })
	for c := 0; c < 100_000 && (!rep.Done() || n.InFlight() > 0); c++ {
		rep.Tick(n.Cycle())
		n.Tick()
	}
	if delivered != 50 {
		t.Errorf("delivered %d of 50 under backpressure", delivered)
	}
}
