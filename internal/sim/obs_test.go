package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"testing"

	"nord/internal/noc"
	"nord/internal/obs"
)

func TestWarmupZeroValueVsSentinel(t *testing.T) {
	if got := (SynthConfig{}).Filled().Warmup; got != 10_000 {
		t.Errorf("synth zero-value Warmup filled to %d, want the 10000 default", got)
	}
	if got := (SynthConfig{Warmup: ZeroWarmup}).Filled().Warmup; got != 0 {
		t.Errorf("synth Warmup: ZeroWarmup filled to %d, want 0", got)
	}
	if got := (SynthConfig{Warmup: 123}).Filled().Warmup; got != 123 {
		t.Errorf("synth explicit Warmup filled to %d, want 123", got)
	}
	if got := (WorkloadConfig{}).Filled().Warmup; got != 5_000 {
		t.Errorf("workload zero-value Warmup filled to %d, want the 5000 default", got)
	}
	if got := (WorkloadConfig{Warmup: ZeroWarmup}).Filled().Warmup; got != 0 {
		t.Errorf("workload Warmup: ZeroWarmup filled to %d, want 0", got)
	}
	if got := (TraceConfig{Warmup: ZeroWarmup}).Filled().Warmup; got != 0 {
		t.Errorf("trace Warmup: ZeroWarmup filled to %d, want 0", got)
	}
}

// TestZeroWarmupRuns: an explicit zero-cycle warmup must actually start
// measurement at cycle 0 instead of silently running the default warmup.
func TestZeroWarmupRuns(t *testing.T) {
	r, err := RunSynthetic(SynthConfig{
		Design: noc.NoPG, Pattern: "uniform", Rate: 0.05,
		Warmup: ZeroWarmup, Measure: 2_000, Seed: 1,
	})
	if err != nil {
		t.Fatalf("RunSynthetic: %v", err)
	}
	if r.Cycles != 2_000 {
		t.Fatalf("measured %d cycles, want exactly 2000 (no warmup)", r.Cycles)
	}
}

// TestCSVPrecisionRoundTrips pins the fix for the 'g'/8-significant-digit
// formatting that corrupted counts above 1e8.
func TestCSVPrecisionRoundTrips(t *testing.T) {
	const big = 123_456_789.0 // 9 significant digits
	r := Result{Design: noc.NoRD, Label: "x", Nodes: 16, AvgPacketLatency: big}
	rec := ResultCSVRecord(r)
	// Field 5 is avg_latency_cycles (see ResultCSVHeader).
	got, err := strconv.ParseFloat(rec[5], 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", rec[5], err)
	}
	if got != big {
		t.Fatalf("avg_latency_cycles round-tripped to %v, want %v", got, big)
	}

	sr := &SuiteResult{Benchmarks: []string{"b"}, Results: map[string]map[noc.Design]Result{
		"b": {
			noc.NoPG:      {AvgPowerW: 3.00000004e8},
			noc.ConvPG:    {},
			noc.ConvPGOpt: {},
			noc.NoRD:      {},
		},
	}}
	var buf bytes.Buffer
	if err := WriteSuiteCSV(&buf, sr); err != nil {
		t.Fatalf("WriteSuiteCSV: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("3.00000004e+08")) {
		t.Fatalf("suite CSV lost precision on 3.00000004e8:\n%s", buf.String())
	}
}

// TestTracedSyntheticRun wires a tracer through RunSyntheticOpts and
// checks the recorded events are consistent with the run's aggregate
// stats, that both exporters produce valid output, and that the trace is
// deterministic for a fixed seed.
func TestTracedSyntheticRun(t *testing.T) {
	cfg := SynthConfig{
		Design: noc.NoRD, Pattern: "uniform", Rate: 0.02,
		Warmup: 1_000, Measure: 10_000, Seed: 7,
	}
	runOnce := func() (*obs.Tracer, Result) {
		tr := obs.New(obs.Config{ResidencyEvery: 512})
		r, err := RunSyntheticOpts(context.Background(), cfg, RunOptions{Tracer: tr})
		if err != nil {
			t.Fatalf("RunSyntheticOpts: %v", err)
		}
		return tr, r
	}
	tr, res := runOnce()
	if tr.Total() == 0 {
		t.Fatalf("tracer recorded no events over a gated run")
	}
	var wakeups, gateOffs uint64
	for _, s := range tr.Summaries() {
		wakeups += s.Wakeups
		gateOffs += s.GateOffs
	}
	if wakeups == 0 || gateOffs == 0 {
		t.Fatalf("summaries show %d wakeups / %d gate-offs, want both > 0", wakeups, gateOffs)
	}
	// The tracer covers warmup too, so it must see at least the measured
	// aggregate count.
	if wakeups < res.Wakeups {
		t.Errorf("tracer wakeups %d < measured aggregate %d", wakeups, res.Wakeups)
	}
	// NoRD wakeups are all VC-threshold (no faults armed).
	for _, s := range tr.Summaries() {
		if s.WakeSA != 0 || s.WakeLocal != 0 || s.WakeWatchdog != 0 {
			t.Errorf("router %d: non-NoRD wake causes on a NoRD run: %+v", s.Router, s)
		}
	}
	if len(tr.Residency()) == 0 {
		t.Errorf("no residency samples collected")
	}

	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome, res.Cycles); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	var nd bytes.Buffer
	if err := tr.WriteNDJSON(&nd); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}

	tr2, _ := runOnce()
	var chrome2 bytes.Buffer
	if err := tr2.WriteChromeTrace(&chrome2, res.Cycles); err != nil {
		t.Fatalf("WriteChromeTrace (2nd run): %v", err)
	}
	if !bytes.Equal(chrome.Bytes(), chrome2.Bytes()) {
		t.Errorf("identical seeded runs produced different chrome traces")
	}
}

func TestWriteRouterCSV(t *testing.T) {
	r, err := RunSynthetic(SynthConfig{
		Design: noc.ConvPG, Pattern: "uniform", Rate: 0.02,
		Warmup: 500, Measure: 5_000, Seed: 3,
	})
	if err != nil {
		t.Fatalf("RunSynthetic: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteRouterCSV(&buf, r); err != nil {
		t.Fatalf("WriteRouterCSV: %v", err)
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	if lines != r.Nodes+1 {
		t.Fatalf("router CSV has %d lines, want %d (header + one per router)", lines, r.Nodes+1)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("router,x,y,idle_fraction,off_fraction,wakeups,gate_offs,mean_off_interval_cycles")) {
		t.Fatalf("unexpected header:\n%s", buf.String())
	}
}
