package sim

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"nord/internal/noc"
	"nord/internal/trace"
)

func TestParallelLoadSweepMatchesSerial(t *testing.T) {
	rates := []float64{0.05, 0.20}
	serial, err := LoadSweep(4, 4, "uniform", rates, 8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelLoadSweep(4, 4, "uniform", rates, 8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("point counts differ: %d vs %d", len(par), len(serial))
	}
	for i := range serial {
		if par[i] != serial[i] {
			t.Errorf("point %d differs: %+v vs %+v (parallelism broke determinism)", i, par[i], serial[i])
		}
	}
}

func TestParallelLoadSweepError(t *testing.T) {
	if _, err := ParallelLoadSweep(4, 4, "bogus", []float64{0.01}, 100, 1); err == nil {
		t.Error("bad pattern should propagate")
	}
}

func TestParallelSuiteSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run is slow")
	}
	sr, err := ParallelSuite(0.02, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sr.Benchmarks {
		for _, d := range FullDesigns() {
			if sr.Results[b][d].ExecTime == 0 {
				t.Errorf("%s/%v: missing result", b, d)
			}
		}
	}
	// Derived views work on parallel results too.
	_, avg := sr.Fig8StaticEnergy()
	if avg[noc.NoPG] != 1.0 {
		t.Errorf("No_PG static should normalise to 1, got %f", avg[noc.NoPG])
	}
}

func TestCSVWriters(t *testing.T) {
	pts := []SweepPoint{{Design: noc.NoRD, Rate: 0.05, AvgLatency: 40.1, PowerW: 10.5, Throughput: 0.05}}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "design,rate") || !strings.Contains(out, "NoRD,0.05,40.100") {
		t.Errorf("sweep CSV wrong:\n%s", out)
	}

	buf.Reset()
	f7 := []Fig7Point{{Rate: 0.01, AvgLatency: 33.1, Throughput: 0.0099, VCReqWindow: 0.4}}
	if err := WriteFig7CSV(&buf, f7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.01,33.100") {
		t.Errorf("fig7 CSV wrong:\n%s", buf.String())
	}

	buf.Reset()
	f13 := []Fig13Point{{Design: noc.ConvPG, WakeupLatency: 9, AvgLatency: 42.0}}
	if err := WriteFig13CSV(&buf, f13); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Conv_PG,9,42.000") {
		t.Errorf("fig13 CSV wrong:\n%s", buf.String())
	}

	buf.Reset()
	sr := &SuiteResult{
		Benchmarks: []string{"a"},
		Results: map[string]map[noc.Design]Result{
			"a": {
				noc.NoPG:      {Design: noc.NoPG, ExecTime: 100},
				noc.ConvPG:    {Design: noc.ConvPG, ExecTime: 120},
				noc.ConvPGOpt: {Design: noc.ConvPGOpt, ExecTime: 115},
				noc.NoRD:      {Design: noc.NoRD, ExecTime: 105},
			},
		},
	}
	if err := WriteSuiteCSV(&buf, sr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a,NoRD,105") {
		t.Errorf("suite CSV wrong:\n%s", buf.String())
	}

	rec := ResultCSVRecord(Result{Design: noc.NoRD, Label: "x", Nodes: 16})
	if len(rec) != len(ResultCSVHeader()) {
		t.Error("result CSV record/header mismatch")
	}
}

func TestTraceRecordReplayRoundTrip(t *testing.T) {
	tr, res, err := RecordWorkloadTrace(WorkloadConfig{Design: noc.NoPG, Benchmark: "swaptions", Scale: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 || res.ExecTime == 0 {
		t.Fatal("recording produced nothing")
	}
	path := filepath.Join(t.TempDir(), "swaptions.trace.gz")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	for _, d := range []noc.Design{noc.NoPG, noc.NoRD} {
		r, err := RunTrace(TraceConfig{Design: d, Path: path})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if r.PacketsDelivered == 0 {
			t.Errorf("%v: replay delivered nothing", d)
		}
		if r.AvgPacketLatency <= 0 {
			t.Errorf("%v: no latency measured", d)
		}
	}
	if _, err := RunTrace(TraceConfig{Design: noc.NoRD, Path: "/definitely/missing"}); err == nil {
		t.Error("missing trace file should fail")
	}
}

func TestReplayTraceRejectsNonSquare(t *testing.T) {
	tr := &trace.Trace{Nodes: 12, Events: []trace.Event{{Cycle: 1, Src: 0, Dst: 1, Flits: 1}}}
	if _, err := ReplayTrace(TraceConfig{Design: noc.NoPG}, tr); err == nil {
		t.Error("non-square node count should fail")
	}
}

func TestSection68Configs(t *testing.T) {
	// The Section 6.8 variants run through the public harness.
	r, err := RunSynthetic(SynthConfig{
		Design: noc.NoRD, Rate: 0.04, Measure: 8000,
		TwoStageRouter: true, AggressiveBypass: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunSynthetic(SynthConfig{Design: noc.NoRD, Rate: 0.04, Measure: 8000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgPacketLatency >= base.AvgPacketLatency {
		t.Errorf("2-stage + aggressive NoRD (%.1f) should beat the canonical pipeline (%.1f)",
			r.AvgPacketLatency, base.AvgPacketLatency)
	}
}

func TestPerRouterReports(t *testing.T) {
	r, err := RunSynthetic(SynthConfig{Design: noc.NoRD, Rate: 0.08, Measure: 10_000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Routers) != 16 {
		t.Fatalf("got %d router reports", len(r.Routers))
	}
	perf, totalFlits := 0, uint64(0)
	for _, rr := range r.Routers {
		if rr.PerfCentric {
			perf++
		}
		totalFlits += rr.FlitsRouted
		if rr.IdleFraction < 0 || rr.IdleFraction > 1 || rr.OffFraction < 0 || rr.OffFraction > 1 {
			t.Errorf("router %d fractions out of range: %+v", rr.ID, rr)
		}
	}
	if perf != 6 {
		t.Errorf("%d performance-centric routers, want 6", perf)
	}
	if totalFlits == 0 {
		t.Error("no flits recorded per router")
	}
	out := FormatPerRouter(r)
	if !strings.Contains(out, "bypassed") || !strings.Contains(out, "*") {
		t.Errorf("per-router table wrong:\n%s", out)
	}
}

func TestLatencyPercentilesOrdered(t *testing.T) {
	r, err := RunSynthetic(SynthConfig{Design: noc.ConvPG, Rate: 0.05, Measure: 15_000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !(r.LatencyP50 <= r.LatencyP95 && r.LatencyP95 <= r.LatencyP99) {
		t.Errorf("percentiles out of order: %d/%d/%d", r.LatencyP50, r.LatencyP95, r.LatencyP99)
	}
	if r.LatencyP50 == 0 {
		t.Error("median latency missing")
	}
	// The mean sits between the median and the tail for this skewed
	// distribution.
	if float64(r.LatencyP99) < r.AvgPacketLatency {
		t.Errorf("p99 (%d) below the mean (%.1f)?", r.LatencyP99, r.AvgPacketLatency)
	}
}

func TestPowerTimeSeries(t *testing.T) {
	samples, err := PowerTimeSeries(SynthConfig{
		Design: noc.NoRD, Rate: 0.06, Warmup: 2000, Measure: 10_000, Seed: 9,
	}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Fatalf("got %d samples, want 10", len(samples))
	}
	for i, s := range samples {
		if s.PowerW <= 0 {
			t.Errorf("sample %d: power %f", i, s.PowerW)
		}
		if s.OffFraction < 0 || s.OffFraction > 1 {
			t.Errorf("sample %d: off fraction %f", i, s.OffFraction)
		}
	}
	// Average of window throughputs approximates the offered rate.
	sum := 0.0
	for _, s := range samples {
		sum += s.Throughput
	}
	if avg := sum / float64(len(samples)); avg < 0.04 || avg > 0.08 {
		t.Errorf("window throughput average %f, want ~0.06", avg)
	}
	var buf bytes.Buffer
	if err := WritePowerSeriesCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cycle_start,noc_power_w") {
		t.Error("power series CSV header missing")
	}
	if _, err := PowerTimeSeries(SynthConfig{Design: noc.NoRD, Rate: 0.01, Measure: 100}, 0); err == nil {
		t.Error("zero period should fail")
	}
}

func TestThresholdSensitivity(t *testing.T) {
	pts, err := ThresholdSensitivity([]int{1, 8}, []float64{0.05}, 12_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	// A higher threshold wakes less (more bypass detours, fewer wakeups).
	if pts[1].Wakeups >= pts[0].Wakeups {
		t.Errorf("threshold 8 wakeups (%d) should be below threshold 1 (%d)",
			pts[1].Wakeups, pts[0].Wakeups)
	}
	// And costs latency (the Section 6.1 trade-off).
	if pts[1].AvgLatency <= pts[0].AvgLatency {
		t.Errorf("threshold 8 latency (%.1f) should exceed threshold 1 (%.1f)",
			pts[1].AvgLatency, pts[0].AvgLatency)
	}
}

func TestWatchStates(t *testing.T) {
	var buf bytes.Buffer
	err := WatchStates(SynthConfig{Design: noc.NoRD, Rate: 0.03, Warmup: 100, Seed: 3}, 800, 2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cycle 800") || !strings.Contains(out, "cycle 1600") {
		t.Errorf("missing frames:\n%s", out)
	}
	if !strings.ContainsAny(out, ".#O~") {
		t.Errorf("no state glyphs:\n%s", out)
	}
	if err := WatchStates(SynthConfig{Design: noc.NoRD, Rate: 0.01}, 0, 1, &buf); err == nil {
		t.Error("zero period should fail")
	}
}

func TestFig3IdlePeriodsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("suite-wide run")
	}
	rows, err := Fig3IdlePeriods(0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.IdleFrac <= 0 || r.IdleFrac >= 1 {
			t.Errorf("%s: idle fraction %f", r.Benchmark, r.IdleFrac)
		}
		if r.LEBETFrac <= 0 || r.LEBETFrac > 1 {
			t.Errorf("%s: <=BET fraction %f", r.Benchmark, r.LEBETFrac)
		}
	}
}

func TestFormatResultCoversSections(t *testing.T) {
	r, err := RunWorkload(WorkloadConfig{Design: noc.NoRD, Benchmark: "blackscholes", Scale: 0.02, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResult(r)
	for _, want := range []string{"design", "execution time", "wakeups", "misrouted hops", "L1 hit rate", "PG overhead", "p50/p95/p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// No_PG report omits gating lines.
	r2, err := RunSynthetic(SynthConfig{Design: noc.NoPG, Rate: 0.02, Measure: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	out2 := FormatResult(r2)
	if strings.Contains(out2, "wakeups") {
		t.Error("No_PG report should omit gating lines")
	}
}

func TestRunWorkloadTimeout(t *testing.T) {
	_, err := RunWorkload(WorkloadConfig{Design: noc.NoPG, Benchmark: "x264", Scale: 1, MaxCycles: 100, Seed: 1})
	if err == nil {
		t.Error("a 100-cycle budget must time out")
	}
}
