// Package sim is the experiment harness: it configures and runs single
// simulations (synthetic or full-system PARSEC-like workloads), converts
// the raw collectors into per-run Results, and provides one driver per
// table and figure of the paper's evaluation (Figures 1, 3, 6-15 and the
// Section 6.8 area comparison).
package sim

import (
	"context"
	"fmt"
	"sync"

	"nord/internal/fault"
	"nord/internal/flit"
	"nord/internal/memsys"
	"nord/internal/noc"
	"nord/internal/power"
	"nord/internal/topology"
	"nord/internal/trace"
	"nord/internal/traffic"
)

// Result is the outcome of one simulation run.
type Result struct {
	Design noc.Design
	Label  string // workload or sweep-point label
	Nodes  int
	Cycles uint64

	AvgPacketLatency  float64
	LatencyP50        uint64
	LatencyP95        uint64
	LatencyP99        uint64
	AvgNetworkLatency float64
	AvgHops           float64
	Throughput        float64 // delivered flits/node/cycle
	PacketsDelivered  uint64

	IdleFraction float64
	IdleLEBET    float64 // fraction of idle periods <= breakeven time
	OffFraction  float64
	Wakeups      uint64
	GateOffs     uint64
	Misroutes    uint64
	Escapes      uint64
	VCReqWindow  float64 // mean VC requests per wakeup window per node

	Energy    power.Breakdown
	AvgPowerW float64

	// Full-system runs only.
	ExecTime  uint64
	L1HitRate float64

	// Routers holds per-router spatial statistics (utilisation, gating,
	// bypass usage per mesh position).
	Routers []noc.RouterReport

	// Fault is the fault-injection recovery accounting, nil when no
	// schedule was armed.
	Fault *fault.Report
	// Err records the structured failure of a faulted or deadlocked run
	// (empty on success), so sweeps can keep going past failed cells.
	Err string
}

// StaticEnergy returns the router static energy (the Figure 8 metric).
func (r Result) StaticEnergy() float64 { return r.Energy.RouterStatic }

// ZeroWarmup is the sentinel for an explicit zero-cycle warmup. The
// config Warmup fields keep "0 means the paper's default" for backward
// compatibility (and stable cache keys), so a literal 0 cannot express
// "no warmup"; pass ZeroWarmup instead and fill() resolves it to 0.
const ZeroWarmup = -1

// SynthConfig configures a synthetic-traffic run.
type SynthConfig struct {
	Design        noc.Design
	Width, Height int
	// Topology selects the interconnect: "mesh" (default), "torus" (wrap
	// links with dateline escape VCs) or "cmesh" (concentrated mesh, 4
	// terminals per router). Width/Height always size the ROUTER grid;
	// cmesh exposes a 2Wx2H terminal grid on top of it.
	Topology      string
	Pattern       string  // uniform, bitcomp, transpose, tornado
	Rate          float64 // flits/node/cycle
	Warmup        int     // cycles before measurement (paper: 10,000)
	Measure       int     // measured cycles (paper: 100,000)
	Seed          int64
	WakeupLatency int  // 0 selects the paper's 12 cycles
	ForcedOff     bool // Figure 7 mode
	Tech          power.Tech
	// VCsPerClass / BufferDepth size the router microarchitecture when
	// positive (Table 1 defaults: 4 VCs per class, 5-flit buffers; NoRD
	// needs >= 3 VCs for its ring escape pair).
	VCsPerClass int
	BufferDepth int
	// GateIdleCycles overrides the consecutive-idle-cycle count a router
	// requires before gating off when positive (Section 4.3: 2).
	GateIdleCycles int
	// NoPerfCentric disables the asymmetric-threshold planner (ablation).
	NoPerfCentric bool
	// ThresholdPerf/ThresholdPower override the wakeup thresholds when
	// positive (ablation; defaults 1 and 3).
	ThresholdPerf, ThresholdPower int
	// MisrouteCap overrides the NoRD misroute cap when non-negative.
	MisrouteCap int
	// TwoStageRouter shortens the router pipeline to 2 stages
	// (Section 6.8's look-ahead + speculative-SA baseline).
	TwoStageRouter bool
	// AggressiveBypass enables NoRD's 1-cycle combinational bypass
	// (Section 6.8).
	AggressiveBypass bool
	// DynamicClassify replaces the fixed planner class with demand-ranked
	// reclassification (the Section 4.4 future-work extension).
	DynamicClassify bool
	// Faults optionally arms a generated fault schedule. A zero Horizon
	// defaults to Warmup+Measure so events spread over the whole run.
	Faults *fault.Config
	// FaultSchedule arms an explicit schedule instead (overrides Faults).
	FaultSchedule *fault.Schedule
	// FaultOptions tunes the recovery machinery (zero = defaults).
	FaultOptions noc.FaultOptions
	// WatchdogLimit overrides the deadlock-watchdog horizon in cycles
	// (0 = the 50k default); fault tests lower it to fail fast.
	WatchdogLimit int
	// DrainCycles bounds the post-measurement drain of faulted runs
	// (default 50,000), which lets pending retransmissions resolve so the
	// recovery accounting is complete.
	DrainCycles int
}

func (c *SynthConfig) fill() {
	if c.Width == 0 {
		c.Width = 4
	}
	if c.Height == 0 {
		c.Height = 4
	}
	if c.Topology == "" {
		c.Topology = "mesh"
	}
	if c.Pattern == "" {
		c.Pattern = "uniform"
	}
	if c.Warmup == 0 {
		c.Warmup = 10_000
	} else if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Measure == 0 {
		c.Measure = 100_000
	}
	if c.Tech == (power.Tech{}) {
		c.Tech = power.DefaultTech()
	}
	if c.VCsPerClass == 0 {
		c.VCsPerClass = 4
	}
	if c.BufferDepth == 0 {
		c.BufferDepth = 5
	}
	if c.GateIdleCycles == 0 {
		c.GateIdleCycles = 2
	}
	if c.MisrouteCap == 0 {
		c.MisrouteCap = -1
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 50_000
	}
}

// Filled returns the config with every defaulted field resolved — the
// canonical form the serve layer encodes and hashes for its
// content-addressed result cache.
func (c SynthConfig) Filled() SynthConfig {
	c.fill()
	return c
}

// perfCache memoises performance-centric router sets per topology+size.
var perfCache sync.Map // perfKey -> []int

type perfKey struct {
	kind topology.Kind
	w, h int
}

// PerfCentricSet returns the performance-centric routers for a WxH mesh
// (see PerfCentricSetOn).
func PerfCentricSet(w, h int) ([]int, error) {
	return PerfCentricSetOn(topology.KindMesh, w, h)
}

// PerfCentricSetOn returns the performance-centric routers for a WxH
// router grid of the given topology: the exhaustively optimal 6-router
// set for the paper's 4x4 example, and a greedy 3N/8-router set for
// larger grids (Section 4.4). The planner evaluates bypass-ring detour
// cost on the actual topology, so torus wrap links shorten the detours
// it optimises against.
func PerfCentricSetOn(kind topology.Kind, w, h int) ([]int, error) {
	key := perfKey{kind, w, h}
	if v, ok := perfCache.Load(key); ok {
		return v.([]int), nil
	}
	topo, err := topology.New(kind, w, h)
	if err != nil {
		return nil, err
	}
	ring, err := topology.NewRing(topo)
	if err != nil {
		return nil, err
	}
	pl := topology.NewPlanner(topo, ring)
	var set []int
	if topo.N() <= 16 {
		set, err = pl.PerformanceCentric(6 * topo.N() / 16)
	} else {
		set, err = pl.GreedySet(3 * topo.N() / 8)
	}
	if err != nil {
		return nil, err
	}
	perfCache.Store(key, set)
	return set, nil
}

// buildParams assembles noc parameters from a synthetic config.
func (c *SynthConfig) buildParams(classes int) (noc.Params, error) {
	p := noc.DefaultParams(c.Design)
	p.Width, p.Height = c.Width, c.Height
	p.Classes = classes
	kind, err := topology.KindByName(c.Topology)
	if err != nil {
		return p, err
	}
	p.Topology = kind
	if c.WakeupLatency > 0 {
		p.WakeupLatency = c.WakeupLatency
	}
	if c.VCsPerClass > 0 {
		p.VCsPerClass = c.VCsPerClass
	}
	if c.BufferDepth > 0 {
		p.BufferDepth = c.BufferDepth
	}
	if c.GateIdleCycles > 0 {
		p.GateIdleCycles = c.GateIdleCycles
	}
	p.ForcedOff = c.ForcedOff
	if c.ThresholdPerf > 0 {
		p.ThresholdPerf = c.ThresholdPerf
	}
	if c.ThresholdPower > 0 {
		p.ThresholdPower = c.ThresholdPower
	}
	if c.MisrouteCap >= 0 {
		p.MisrouteCap = c.MisrouteCap
	}
	p.TwoStageRouter = c.TwoStageRouter
	p.AggressiveBypass = c.AggressiveBypass
	p.DynamicClassify = c.DynamicClassify
	p.WatchdogLimit = c.WatchdogLimit
	if c.TwoStageRouter && p.EarlyWakeupCycles > 1 {
		// A shorter pipeline hides fewer wakeup cycles (Section 6.8).
		p.EarlyWakeupCycles = 1
	}
	if c.Design == noc.NoRD && !c.NoPerfCentric && !c.ForcedOff {
		set, err := PerfCentricSetOn(kind, c.Width, c.Height)
		if err != nil {
			return p, err
		}
		p.PerfCentric = set
	}
	return p, nil
}

// RunSynthetic executes one synthetic-traffic simulation. With a fault
// schedule armed (Faults or FaultSchedule), the run drains in-flight
// traffic and pending retransmissions after the measurement window so the
// recovery accounting in Result.Fault is complete; a structured failure
// (deadlock, partition, protocol violation) is returned as the error AND
// recorded in Result.Err alongside whatever statistics were gathered, so
// sweeps can tabulate failed cells instead of dying.
func RunSynthetic(c SynthConfig) (Result, error) {
	return RunSyntheticOpts(context.Background(), c, RunOptions{})
}

// RunSyntheticCtx is RunSynthetic with cooperative cancellation: the
// context is polled every ~kilocycle and a canceled or deadline-exceeded
// run stops promptly, returning the partial Result (Err set) alongside an
// error wrapping the context's.
func RunSyntheticCtx(ctx context.Context, c SynthConfig) (Result, error) {
	return RunSyntheticOpts(ctx, c, RunOptions{})
}

// RunSyntheticOpts is RunSyntheticCtx with progress reporting and tunable
// poll intervals (see RunOptions).
func RunSyntheticOpts(ctx context.Context, c SynthConfig, opt RunOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.fill()
	params, err := c.buildParams(1)
	if err != nil {
		return Result{}, err
	}
	params.Parallelism = opt.Parallelism
	net, err := noc.New(params)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	net.SetTracer(opt.Tracer)
	sched := c.FaultSchedule
	if sched == nil && c.Faults != nil {
		fc := *c.Faults
		if fc.Horizon == 0 {
			fc.Horizon = uint64(c.Warmup + c.Measure)
		}
		sched, err = fault.Generate(fc, params.NumNodes())
		if err != nil {
			return Result{}, err
		}
	}
	if sched != nil {
		if err := net.AttachFaults(sched, c.FaultOptions); err != nil {
			return Result{}, err
		}
	}
	pattern, err := traffic.PatternByName(c.Pattern)
	if err != nil {
		return Result{}, err
	}
	inj := traffic.NewSynthetic(net, pattern, c.Rate, c.Seed)
	obs := newRunObserver(ctx, opt, net, uint64(c.Warmup+c.Measure))
	runErr := func() error {
		for i := 0; i < c.Warmup; i++ {
			inj.Tick(net.Cycle())
			if err := net.Step(); err != nil {
				return err
			}
			if err := obs.observe("warmup"); err != nil {
				return err
			}
		}
		net.BeginMeasurement()
		for i := 0; i < c.Measure; i++ {
			inj.Tick(net.Cycle())
			if err := net.Step(); err != nil {
				return err
			}
			if err := obs.observe("measure"); err != nil {
				return err
			}
		}
		if sched != nil {
			// Let retransmissions and in-flight traffic resolve so every
			// injected payload is accounted delivered or lost.
			return net.DrainCtx(ctx, c.DrainCycles, opt.checkEvery())
		}
		return nil
	}()
	net.FinishMeasurement()
	obs.finish("measure")
	model, err := power.New(c.Tech)
	if err != nil {
		return Result{}, err
	}
	res := collect(net, model)
	res.Label = fmt.Sprintf("%s@%.3f", c.Pattern, c.Rate)
	res.Fault = net.FaultReport()
	if runErr != nil {
		res.Err = runErr.Error()
		return res, runErr
	}
	return res, nil
}

// WorkloadConfig configures a full-system PARSEC-like run.
type WorkloadConfig struct {
	Design    noc.Design
	Benchmark string
	// Scale multiplies the per-core instruction quota (1.0 = the
	// default 60k instructions; tests and benches use smaller values).
	Scale         float64
	Warmup        int // warmup cycles before measurement
	Seed          int64
	WakeupLatency int
	MaxCycles     uint64
	Tech          power.Tech
	NoPerfCentric bool
}

func (c *WorkloadConfig) fill() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 5_000
	} else if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 200_000_000
	}
	if c.Tech == (power.Tech{}) {
		c.Tech = power.DefaultTech()
	}
}

// Filled returns the config with every defaulted field resolved (see
// SynthConfig.Filled).
func (c WorkloadConfig) Filled() WorkloadConfig {
	c.fill()
	return c
}

// RunWorkload executes one PARSEC-like full-system simulation to
// completion and returns its Result (including execution time).
func RunWorkload(c WorkloadConfig) (Result, error) {
	return RunWorkloadOpts(context.Background(), c, RunOptions{})
}

// RunWorkloadCtx is RunWorkload with cooperative cancellation (see
// RunSyntheticCtx).
func RunWorkloadCtx(ctx context.Context, c WorkloadConfig) (Result, error) {
	return RunWorkloadOpts(ctx, c, RunOptions{})
}

// RunWorkloadOpts is RunWorkloadCtx with progress reporting and tunable
// poll intervals.
func RunWorkloadOpts(ctx context.Context, c WorkloadConfig, opt RunOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.fill()
	prof, err := memsys.ProfileByName(c.Benchmark)
	if err != nil {
		return Result{}, err
	}
	prof.InstrPerCore = uint64(float64(prof.InstrPerCore) * c.Scale)
	if prof.InstrPerCore == 0 {
		prof.InstrPerCore = 1
	}
	sc := SynthConfig{
		Design:        c.Design,
		WakeupLatency: c.WakeupLatency,
		NoPerfCentric: c.NoPerfCentric,
		Tech:          c.Tech,
	}
	sc.fill()
	params, err := sc.buildParams(flit.NumClasses)
	if err != nil {
		return Result{}, err
	}
	params.Parallelism = opt.Parallelism
	net, err := noc.New(params)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	net.SetTracer(opt.Tracer)
	sys, err := memsys.NewSystem(net, prof, c.Seed)
	if err != nil {
		return Result{}, err
	}
	sys.RunWarmup(uint64(c.Warmup))
	net.BeginMeasurement()
	obs := newRunObserver(ctx, opt, net, 0)
	exec, runErr := sys.RunCtx(ctx, c.MaxCycles, uint64(opt.checkEvery()),
		func(uint64) { obs.maybeEmit("measure") })
	net.FinishMeasurement()
	obs.finish("measure")
	model, err := power.New(c.Tech)
	if err != nil {
		return Result{}, err
	}
	res := collect(net, model)
	res.Label = c.Benchmark
	res.ExecTime = exec
	res.L1HitRate = sys.L1HitRate()
	if runErr != nil {
		if ctx.Err() != nil {
			runErr = fmt.Errorf("sim: workload %q canceled at cycle %d: %w", c.Benchmark, net.Cycle(), context.Cause(ctx))
		}
		res.Err = runErr.Error()
		return res, runErr
	}
	return res, nil
}

// TraceConfig configures a trace-replay run: the recorded injections of
// some workload are replayed open-loop onto a (possibly different)
// design — the standard trace-driven methodology for comparing designs
// on identical traffic.
type TraceConfig struct {
	Design        noc.Design
	Path          string // trace file (.gz supported)
	Warmup        int    // cycles of the trace treated as warmup
	Seed          int64
	WakeupLatency int
	Tech          power.Tech
	NoPerfCentric bool
	MaxCycles     uint64
}

func (c *TraceConfig) fill() {
	if c.Warmup < 0 {
		// TraceConfig.Warmup has no implicit default, so the ZeroWarmup
		// sentinel simply normalises to 0.
		c.Warmup = 0
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 100_000_000
	}
	if c.Tech == (power.Tech{}) {
		c.Tech = power.DefaultTech()
	}
}

// Filled returns the config with every defaulted field resolved (see
// SynthConfig.Filled).
func (c TraceConfig) Filled() TraceConfig {
	c.fill()
	return c
}

// RunTrace replays a recorded trace to completion and returns the run's
// measurements.
func RunTrace(c TraceConfig) (Result, error) {
	tr, err := trace.Load(c.Path)
	if err != nil {
		return Result{}, err
	}
	return ReplayTrace(c, tr)
}

// RunTraceCtx is RunTrace with cooperative cancellation.
func RunTraceCtx(ctx context.Context, c TraceConfig) (Result, error) {
	tr, err := trace.Load(c.Path)
	if err != nil {
		return Result{}, err
	}
	return ReplayTraceOpts(ctx, c, tr, RunOptions{})
}

// ReplayTrace is RunTrace with an already-loaded trace.
func ReplayTrace(c TraceConfig, tr *trace.Trace) (Result, error) {
	return ReplayTraceOpts(context.Background(), c, tr, RunOptions{})
}

// ReplayTraceCtx is ReplayTrace with cooperative cancellation.
func ReplayTraceCtx(ctx context.Context, c TraceConfig, tr *trace.Trace) (Result, error) {
	return ReplayTraceOpts(ctx, c, tr, RunOptions{})
}

// ReplayTraceOpts is ReplayTraceCtx with progress reporting and tunable
// poll intervals. A structured runtime failure (deadlock, protocol
// violation, replay timeout, cancellation) is recorded in Result.Err
// alongside whatever statistics were gathered, and returned as the error.
func ReplayTraceOpts(ctx context.Context, c TraceConfig, tr *trace.Trace, opt RunOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.fill()
	sc := SynthConfig{
		Design:        c.Design,
		WakeupLatency: c.WakeupLatency,
		NoPerfCentric: c.NoPerfCentric,
		Tech:          c.Tech,
	}
	// Mesh dimensions must cover the trace's nodes: assume square.
	side := 2
	for side*side < tr.Nodes {
		side++
	}
	if side*side != tr.Nodes {
		return Result{}, fmt.Errorf("sim: trace has %d nodes; only square meshes are supported", tr.Nodes)
	}
	sc.Width, sc.Height = side, side
	sc.fill()
	params, err := sc.buildParams(flit.NumClasses)
	if err != nil {
		return Result{}, err
	}
	params.Parallelism = opt.Parallelism
	net, err := noc.New(params)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	net.SetTracer(opt.Tracer)
	rep := trace.NewReplayer(net, tr)
	obs := newRunObserver(ctx, opt, net, 0)
	warm := uint64(c.Warmup)
	runErr := func() error {
		for net.Cycle() < warm {
			rep.Tick(net.Cycle())
			if err := net.Step(); err != nil {
				return err
			}
			if err := obs.observe("warmup"); err != nil {
				return err
			}
		}
		net.BeginMeasurement()
		for (!rep.Done() || net.InFlight() > 0) && net.Cycle() < c.MaxCycles {
			rep.Tick(net.Cycle())
			if err := net.Step(); err != nil {
				return err
			}
			if err := obs.observe("measure"); err != nil {
				return err
			}
		}
		if !rep.Done() {
			return fmt.Errorf("sim: trace replay did not finish within %d cycles", c.MaxCycles)
		}
		return nil
	}()
	net.FinishMeasurement()
	obs.finish("measure")
	model, err := power.New(c.Tech)
	if err != nil {
		return Result{}, err
	}
	res := collect(net, model)
	res.Label = "trace:" + c.Path
	if runErr != nil {
		res.Err = runErr.Error()
		return res, runErr
	}
	return res, nil
}

// RecordWorkloadTrace runs a full-system workload once and returns the
// trace of every packet it injected, for later replay.
func RecordWorkloadTrace(c WorkloadConfig) (*trace.Trace, Result, error) {
	c.fill()
	prof, err := memsys.ProfileByName(c.Benchmark)
	if err != nil {
		return nil, Result{}, err
	}
	prof.InstrPerCore = uint64(float64(prof.InstrPerCore) * c.Scale)
	if prof.InstrPerCore == 0 {
		prof.InstrPerCore = 1
	}
	sc := SynthConfig{Design: c.Design, WakeupLatency: c.WakeupLatency, NoPerfCentric: c.NoPerfCentric, Tech: c.Tech}
	sc.fill()
	params, err := sc.buildParams(flit.NumClasses)
	if err != nil {
		return nil, Result{}, err
	}
	net, err := noc.New(params)
	if err != nil {
		return nil, Result{}, err
	}
	rec := trace.NewRecorder(params.NumNodes())
	net.SetInjectHook(rec.Hook)
	sys, err := memsys.NewSystem(net, prof, c.Seed)
	if err != nil {
		return nil, Result{}, err
	}
	net.BeginMeasurement()
	exec, err := sys.Run(c.MaxCycles)
	if err != nil {
		return nil, Result{}, err
	}
	net.FinishMeasurement()
	model, err := power.New(c.Tech)
	if err != nil {
		return nil, Result{}, err
	}
	res := collect(net, model)
	res.Label = c.Benchmark
	res.ExecTime = exec
	res.L1HitRate = sys.L1HitRate()
	return rec.Trace(), res, nil
}

// collect converts a finished network's statistics into a Result.
func collect(net *noc.Network, model *power.Model) Result {
	col := net.Collector()
	p := net.Params()
	routers := p.NumNodes()
	// Injection endpoints: equals the router count except on the
	// concentrated mesh, where each router serves 4 terminals. Per-node
	// rates (throughput) are per terminal; the power model and the NI
	// wakeup metric stay per router.
	nodes := net.Mesh().N()
	counts := col.PowerCounts(routers, net.NumLinks(), net.HasPGController(), net.HasBypass())
	counts.LinkLengthFactor = net.Topo().LinkLengthFactor()
	energy := model.Energy(counts)
	return Result{
		Design:            p.Design,
		Nodes:             nodes,
		Cycles:            col.Cycles,
		AvgPacketLatency:  col.AvgPacketLatency(),
		LatencyP50:        col.LatencyPercentile(0.50),
		LatencyP95:        col.LatencyPercentile(0.95),
		LatencyP99:        col.LatencyPercentile(0.99),
		AvgNetworkLatency: col.NetworkLatency.Mean(),
		AvgHops:           col.Hops.Mean(),
		Throughput:        col.Throughput(nodes),
		PacketsDelivered:  col.PacketsDelivered,
		IdleFraction:      col.IdleFraction(),
		IdleLEBET:         col.IdlePeriods.FracLE(uint64(model.BreakevenCycles)),
		OffFraction:       col.OffFraction(),
		Wakeups:           col.Wakeups,
		GateOffs:          col.GateOffs,
		Misroutes:         col.MisroutedHops,
		Escapes:           col.EscapedPackets,
		VCReqWindow:       col.AvgVCRequestsPerWindow(routers, p.WakeupWindow),
		Energy:            energy,
		AvgPowerW:         model.AvgPowerW(counts, energy),
		Routers:           net.PerRouterReports(),
	}
}
