package sim

import (
	"encoding/csv"
	"io"
	"strconv"
	"strings"
)

// firstLine flattens a (possibly multi-line) error message to its first
// line so CSV rows stay one physical line per record.
func firstLine(s string) string {
	return strings.SplitN(s, "\n", 2)[0]
}

// WriteSweepCSV emits load-sweep points as CSV (design, rate, latency,
// power, throughput, saturated) for external plotting.
func WriteSweepCSV(w io.Writer, pts []SweepPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"design", "rate", "avg_latency_cycles", "noc_power_w", "throughput_fpc", "saturated"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			p.Design.String(),
			strconv.FormatFloat(p.Rate, 'f', -1, 64),
			strconv.FormatFloat(p.AvgLatency, 'f', 3, 64),
			strconv.FormatFloat(p.PowerW, 'f', 4, 64),
			strconv.FormatFloat(p.Throughput, 'f', 5, 64),
			strconv.FormatBool(p.Saturated),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSuiteCSV emits every (benchmark, design) Result of a suite run as
// CSV, one row per cell with the headline metrics.
func WriteSuiteCSV(w io.Writer, sr *SuiteResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"benchmark", "design", "exec_cycles", "avg_latency_cycles",
		"wakeups", "gate_offs", "off_fraction", "idle_fraction",
		"router_static_j", "router_dynamic_j", "link_static_j", "link_dynamic_j", "pg_overhead_j",
		"noc_energy_j", "avg_power_w", "misroutes", "escapes",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	// Round-trip precision: a fixed 8 significant digits corrupts
	// cycle/energy counts above 1e8.
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, b := range sr.Benchmarks {
		for _, d := range FullDesigns() {
			r := sr.Results[b][d]
			rec := []string{
				b, d.String(), u(r.ExecTime), f(r.AvgPacketLatency),
				u(r.Wakeups), u(r.GateOffs), f(r.OffFraction), f(r.IdleFraction),
				f(r.Energy.RouterStatic), f(r.Energy.RouterDynamic),
				f(r.Energy.LinkStatic), f(r.Energy.LinkDynamic), f(r.Energy.PGOverhead),
				f(r.Energy.Total()), f(r.AvgPowerW), u(r.Misroutes), u(r.Escapes),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig7CSV emits the Figure 7 threshold-determination series.
func WriteFig7CSV(w io.Writer, pts []Fig7Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rate", "avg_latency_cycles", "throughput_fpc", "vc_requests_per_window"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			strconv.FormatFloat(p.Rate, 'f', -1, 64),
			strconv.FormatFloat(p.AvgLatency, 'f', 3, 64),
			strconv.FormatFloat(p.Throughput, 'f', 5, 64),
			strconv.FormatFloat(p.VCReqWindow, 'f', 3, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig13CSV emits the Figure 13 wakeup-latency series.
func WriteFig13CSV(w io.Writer, pts []Fig13Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"design", "wakeup_latency_cycles", "avg_latency_cycles"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			p.Design.String(),
			strconv.Itoa(p.WakeupLatency),
			strconv.FormatFloat(p.AvgLatency, 'f', 3, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ResultCSVHeader and ResultCSVRecord serialise single Results, used by
// nordsim's -csv mode.
func ResultCSVHeader() []string {
	return []string{
		"design", "label", "nodes", "cycles", "exec_cycles",
		"avg_latency_cycles", "avg_hops", "throughput_fpc",
		"idle_fraction", "off_fraction", "wakeups",
		"noc_energy_j", "avg_power_w",
		"faults_triggered", "retransmits", "packets_lost", "routers_lost", "error",
	}
}

// ResultCSVRecord renders one result as a CSV record aligned with
// ResultCSVHeader.
func ResultCSVRecord(r Result) []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	triggered, retx, lost, routersLost := 0, uint64(0), uint64(0), 0
	if r.Fault != nil {
		triggered = r.Fault.TriggeredTotal()
		retx = r.Fault.Retransmits
		lost = r.Fault.PacketsLost
		routersLost = r.Fault.RoutersLost
	}
	return []string{
		r.Design.String(), r.Label,
		strconv.Itoa(r.Nodes), strconv.FormatUint(r.Cycles, 10), strconv.FormatUint(r.ExecTime, 10),
		f(r.AvgPacketLatency), f(r.AvgHops), f(r.Throughput),
		f(r.IdleFraction), f(r.OffFraction), strconv.FormatUint(r.Wakeups, 10),
		f(r.Energy.Total()), f(r.AvgPowerW),
		strconv.Itoa(triggered), strconv.FormatUint(retx, 10),
		strconv.FormatUint(lost, 10), strconv.Itoa(routersLost), firstLine(r.Err),
	}
}

// WriteRouterCSV emits a Result's per-router spatial statistics as CSV:
// one row per mesh position with residency fractions, gating activity and
// bypass usage, for heat maps and the Fig. 12-14-style per-router
// timeline analyses.
func WriteRouterCSV(w io.Writer, r Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"router", "x", "y", "idle_fraction", "off_fraction",
		"wakeups", "gate_offs", "mean_off_interval_cycles",
		"flits_routed", "bypass_flits", "perf_centric", "hard_failed",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 5, 64) }
	for _, rr := range r.Routers {
		if err := cw.Write([]string{
			strconv.Itoa(rr.ID), strconv.Itoa(rr.X), strconv.Itoa(rr.Y),
			f(rr.IdleFraction), f(rr.OffFraction),
			strconv.FormatUint(rr.Wakeups, 10), strconv.FormatUint(rr.GateOffs, 10),
			strconv.FormatFloat(rr.MeanOffInterval, 'f', 1, 64),
			strconv.FormatUint(rr.FlitsRouted, 10), strconv.FormatUint(rr.BypassFlits, 10),
			strconv.FormatBool(rr.PerfCentric), strconv.FormatBool(rr.HardFailed),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDegradationCSV emits the graceful-degradation sweep as CSV.
func WriteDegradationCSV(w io.Writer, pts []DegradationPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"design", "hard_fails", "delivered_fraction", "avg_latency_cycles",
		"retransmits", "watchdog_wakeups", "packets_lost", "error",
	}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			p.Design.String(),
			strconv.Itoa(p.HardFails),
			strconv.FormatFloat(p.Delivered, 'f', 5, 64),
			strconv.FormatFloat(p.AvgLatency, 'f', 3, 64),
			strconv.FormatUint(p.Retransmits, 10),
			strconv.FormatUint(p.Watchdog, 10),
			strconv.FormatUint(p.PacketsLost, 10),
			firstLine(p.Err),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
