package sim

import (
	"fmt"
	"strings"
)

// FormatResult renders one run's measurements as a human-readable report.
func FormatResult(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design           %v\n", r.Design)
	if r.Label != "" {
		fmt.Fprintf(&b, "workload         %s\n", r.Label)
	}
	fmt.Fprintf(&b, "nodes            %d\n", r.Nodes)
	fmt.Fprintf(&b, "measured cycles  %d\n", r.Cycles)
	if r.ExecTime > 0 {
		fmt.Fprintf(&b, "execution time   %d cycles\n", r.ExecTime)
	}
	fmt.Fprintf(&b, "packets          %d delivered\n", r.PacketsDelivered)
	fmt.Fprintf(&b, "avg latency      %.2f cycles (network %.2f; p50/p95/p99 %d/%d/%d)\n",
		r.AvgPacketLatency, r.AvgNetworkLatency, r.LatencyP50, r.LatencyP95, r.LatencyP99)
	fmt.Fprintf(&b, "avg hops         %.2f\n", r.AvgHops)
	fmt.Fprintf(&b, "throughput       %.4f flits/node/cycle\n", r.Throughput)
	fmt.Fprintf(&b, "router idle      %.1f%% of cycles (%.1f%% of idle periods <= BET)\n",
		100*r.IdleFraction, 100*r.IdleLEBET)
	if r.Design.PowerGated() {
		fmt.Fprintf(&b, "gated off        %.1f%% of router-cycles\n", 100*r.OffFraction)
		fmt.Fprintf(&b, "wakeups          %d (gate-offs %d)\n", r.Wakeups, r.GateOffs)
	}
	if r.Misroutes > 0 || r.Escapes > 0 {
		fmt.Fprintf(&b, "misrouted hops   %d (escape-ring packets %d)\n", r.Misroutes, r.Escapes)
	}
	if r.L1HitRate > 0 {
		fmt.Fprintf(&b, "L1 hit rate      %.1f%%\n", 100*r.L1HitRate)
	}
	if fr := r.Fault; fr != nil {
		fmt.Fprintf(&b, "faults           %d injected, %d triggered (%d routers lost)\n",
			fr.InjectedTotal(), fr.TriggeredTotal(), fr.RoutersLost)
		fmt.Fprintf(&b, "fault recovery   %.2f%% delivered; %d retransmits, %d poisoned, %d watchdog wakeups, %d lost\n",
			100*fr.DeliveredFraction(), fr.Retransmits, fr.PacketsPoisoned, fr.WatchdogWakeups, fr.PacketsLost)
	}
	if r.Err != "" {
		fmt.Fprintf(&b, "run error        %s\n", strings.SplitN(r.Err, "\n", 2)[0])
	}
	e := r.Energy
	fmt.Fprintf(&b, "NoC energy       %.3e J (avg %.2f W)\n", e.Total(), r.AvgPowerW)
	fmt.Fprintf(&b, "  router static  %.3e J\n", e.RouterStatic)
	fmt.Fprintf(&b, "  router dynamic %.3e J\n", e.RouterDynamic)
	fmt.Fprintf(&b, "  link static    %.3e J\n", e.LinkStatic)
	fmt.Fprintf(&b, "  link dynamic   %.3e J\n", e.LinkDynamic)
	fmt.Fprintf(&b, "  PG overhead    %.3e J\n", e.PGOverhead)
	return b.String()
}

// FormatPerRouter renders the spatial per-router statistics as a table
// ordered by mesh position; performance-centric routers are starred.
func FormatPerRouter(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-5s %8s %8s %8s %8s %9s %10s %10s\n",
		"id", "(x,y)", "idle%", "off%", "wakeups", "gateoffs", "meanoff", "flits", "bypassed")
	for _, rr := range r.Routers {
		star := " "
		if rr.PerfCentric {
			star = "*"
		}
		failed := ""
		if rr.HardFailed {
			failed = "  FAILED"
		}
		fmt.Fprintf(&b, "%-3d%s (%d,%d) %7.1f%% %7.1f%% %8d %8d %9.1f %10d %10d%s\n",
			rr.ID, star, rr.X, rr.Y, 100*rr.IdleFraction, 100*rr.OffFraction,
			rr.Wakeups, rr.GateOffs, rr.MeanOffInterval, rr.FlitsRouted, rr.BypassFlits, failed)
	}
	return b.String()
}
