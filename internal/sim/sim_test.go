package sim

import (
	"math"
	"strings"
	"testing"

	"nord/internal/noc"
	"nord/internal/power"
)

func TestPerfCentricSet4x4(t *testing.T) {
	set, err := PerfCentricSet(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 6 {
		t.Fatalf("set size %d, want 6 (the paper's 4x4 class size)", len(set))
	}
	// Cached second call returns the same slice contents.
	set2, err := PerfCentricSet(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range set {
		if set[i] != set2[i] {
			t.Error("cache returned a different set")
		}
	}
	if _, err := PerfCentricSet(1, 1); err == nil {
		t.Error("invalid mesh should fail")
	}
}

func TestRunSyntheticBasics(t *testing.T) {
	r, err := RunSynthetic(SynthConfig{Design: noc.NoPG, Rate: 0.05, Warmup: 2000, Measure: 8000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Design != noc.NoPG || r.Nodes != 16 || r.Cycles != 8000 {
		t.Errorf("result metadata wrong: %+v", r)
	}
	if r.AvgPacketLatency < 15 || r.AvgPacketLatency > 40 {
		t.Errorf("No_PG latency %f out of zero-load band", r.AvgPacketLatency)
	}
	if math.Abs(r.Throughput-0.05) > 0.01 {
		t.Errorf("throughput %f, want ~0.05 (delivered == offered below saturation)", r.Throughput)
	}
	if r.Energy.Total() <= 0 || r.AvgPowerW <= 0 {
		t.Error("energy accounting empty")
	}
	if r.Wakeups != 0 || r.OffFraction != 0 {
		t.Error("No_PG must not gate")
	}
}

func TestRunSyntheticValidation(t *testing.T) {
	if _, err := RunSynthetic(SynthConfig{Design: noc.NoPG, Pattern: "bogus", Rate: 0.01, Measure: 10}); err == nil {
		t.Error("bad pattern should fail")
	}
	if _, err := RunSynthetic(SynthConfig{Design: noc.NoPG, Rate: 0.01, Measure: 10, Tech: power.Tech{NodeNM: 7, Voltage: 1, FreqGHz: 1}}); err == nil {
		t.Error("bad tech should fail")
	}
}

// The paper's latency ordering at low load: No_PG < NoRD < Conv_PG_OPT <
// Conv_PG (Figure 11's shape).
func TestLatencyOrdering(t *testing.T) {
	lat := map[noc.Design]float64{}
	for _, d := range FullDesigns() {
		r, err := RunSynthetic(SynthConfig{Design: d, Rate: 0.05, Warmup: 4000, Measure: 30_000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		lat[d] = r.AvgPacketLatency
	}
	if !(lat[noc.NoPG] < lat[noc.NoRD] && lat[noc.NoRD] < lat[noc.ConvPGOpt] && lat[noc.ConvPGOpt] < lat[noc.ConvPG]) {
		t.Errorf("latency ordering broken: %v", lat)
	}
}

// NoRD cuts wakeups dramatically versus both conventional designs
// (Figure 9b's shape).
func TestWakeupReduction(t *testing.T) {
	wk := map[noc.Design]uint64{}
	for _, d := range []noc.Design{noc.ConvPG, noc.ConvPGOpt, noc.NoRD} {
		r, err := RunSynthetic(SynthConfig{Design: d, Rate: 0.05, Warmup: 4000, Measure: 30_000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		wk[d] = r.Wakeups
	}
	if wk[noc.NoRD]*2 > wk[noc.ConvPG] {
		t.Errorf("NoRD wakeups %d not well below Conv_PG %d", wk[noc.NoRD], wk[noc.ConvPG])
	}
	if wk[noc.NoRD]*2 > wk[noc.ConvPGOpt] {
		t.Errorf("NoRD wakeups %d not well below Conv_PG_OPT %d", wk[noc.NoRD], wk[noc.ConvPGOpt])
	}
}

func TestRunWorkloadBasics(t *testing.T) {
	r, err := RunWorkload(WorkloadConfig{Design: noc.NoRD, Benchmark: "swaptions", Scale: 0.03, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if r.ExecTime == 0 || r.Label != "swaptions" {
		t.Errorf("workload result incomplete: %+v", r)
	}
	if r.L1HitRate <= 0 {
		t.Error("hit rate missing")
	}
	if _, err := RunWorkload(WorkloadConfig{Design: noc.NoRD, Benchmark: "nope"}); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestFig1a(t *testing.T) {
	pts, err := Fig1aStaticShare()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("want 9 tech points, got %d", len(pts))
	}
	anchor := map[[2]int]float64{
		{65, 12}: 0.179,
		{45, 11}: 0.354,
		{32, 10}: 0.477,
	}
	for _, p := range pts {
		key := [2]int{p.NodeNM, int(p.Voltage*10 + 0.5)}
		if want, ok := anchor[key]; ok && math.Abs(p.StaticShare-want) > 0.005 {
			t.Errorf("%dnm/%.1fV share %.3f, want %.3f", p.NodeNM, p.Voltage, p.StaticShare, want)
		}
	}
}

func TestFig1b(t *testing.T) {
	keys, vals, err := Fig1bBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 6 || len(vals) != 6 {
		t.Fatal("expected 6 components")
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("fractions sum to %f", sum)
	}
	if keys[0] != "dynamic" || math.Abs(vals[0]-0.62) > 0.02 {
		t.Errorf("dynamic fraction %f, want ~0.62", vals[0])
	}
}

func TestFig6(t *testing.T) {
	pts, set, err := Fig6Tradeoff()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 17 || len(set) != 6 {
		t.Fatalf("got %d points, %d-router set", len(pts), len(set))
	}
	if pts[0].AvgHops <= pts[16].AvgHops {
		t.Error("distance should fall as routers power on")
	}
	if pts[0].PerHopCycles >= pts[16].PerHopCycles {
		t.Error("per-hop latency should rise as routers power on")
	}
}

// The pure bypass ring saturates at a small fraction of full-network
// throughput (Figure 7 reports ~14%).
func TestFig7RingSaturation(t *testing.T) {
	pts, err := Fig7WakeupThreshold([]float64{0.01, 0.08}, 20_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("want 2 points")
	}
	if pts[1].AvgLatency < 2*pts[0].AvgLatency {
		t.Errorf("ring not saturating: %.1f -> %.1f", pts[0].AvgLatency, pts[1].AvgLatency)
	}
	if pts[1].VCReqWindow <= pts[0].VCReqWindow {
		t.Error("VC-request metric should grow with load")
	}
	if pts[1].Throughput > 0.07 {
		t.Errorf("ring throughput %.3f should cap well below offered 0.08", pts[1].Throughput)
	}
}

// NoRD's latency is insensitive to the wakeup latency; Conv_PG's grows
// (Figure 13's shape).
func TestFig13Shape(t *testing.T) {
	pts, err := Fig13WakeupLatency([]int{9, 18}, 0.05, 25_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	get := func(d noc.Design, wl int) float64 {
		for _, p := range pts {
			if p.Design == d && p.WakeupLatency == wl {
				return p.AvgLatency
			}
		}
		t.Fatalf("missing point %v/%d", d, wl)
		return 0
	}
	convGrowth := get(noc.ConvPG, 18) - get(noc.ConvPG, 9)
	nordGrowth := get(noc.NoRD, 18) - get(noc.NoRD, 9)
	if convGrowth <= 0 {
		t.Errorf("Conv_PG latency should grow with wakeup latency (delta %.1f)", convGrowth)
	}
	if nordGrowth > convGrowth/2 {
		t.Errorf("NoRD should hide wakeup latency: NoRD delta %.1f vs Conv_PG delta %.1f", nordGrowth, convGrowth)
	}
}

func TestLoadSweepSmall(t *testing.T) {
	pts, err := LoadSweep(4, 4, "uniform", []float64{0.05, 0.30}, 12_000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("want 3 designs x 2 rates = 6 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.PowerW <= 0 {
			t.Errorf("%v@%.2f: power %f", p.Design, p.Rate, p.PowerW)
		}
	}
	// Power increases with load for every design.
	byDesign := map[noc.Design][]SweepPoint{}
	for _, p := range pts {
		byDesign[p.Design] = append(byDesign[p.Design], p)
	}
	for d, ps := range byDesign {
		if ps[1].PowerW <= ps[0].PowerW {
			t.Errorf("%v: power did not grow with load (%.2f -> %.2f)", d, ps[0].PowerW, ps[1].PowerW)
		}
	}
	// Gated designs burn less power than No_PG at low load.
	var noPG, nord SweepPoint
	for _, p := range pts {
		if p.Rate == 0.05 {
			switch p.Design {
			case noc.NoPG:
				noPG = p
			case noc.NoRD:
				nord = p
			}
		}
	}
	if nord.PowerW >= noPG.PowerW {
		t.Errorf("NoRD power %.2f should undercut No_PG %.2f at low load", nord.PowerW, noPG.PowerW)
	}
}

func TestAreaTable(t *testing.T) {
	rows, err := AreaTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	last := rows[3]
	if last.Design != noc.NoRD {
		t.Fatal("last row should be NoRD")
	}
	if math.Abs(last.VsOpt-0.031) > 0.004 {
		t.Errorf("NoRD area overhead vs Conv_PG_OPT = %.4f, want ~0.031", last.VsOpt)
	}
}

func TestFormatMatrix(t *testing.T) {
	rows := map[string]map[noc.Design]float64{
		"a": {noc.NoPG: 1, noc.ConvPG: 0.5, noc.ConvPGOpt: 0.6, noc.NoRD: 0.4},
	}
	avg := map[noc.Design]float64{noc.NoPG: 1, noc.ConvPG: 0.5, noc.ConvPGOpt: 0.6, noc.NoRD: 0.4}
	out := FormatMatrix("title", rows, []string{"a"}, avg)
	if !strings.Contains(out, "title") || !strings.Contains(out, "AVG") || !strings.Contains(out, "0.400") {
		t.Errorf("format output wrong:\n%s", out)
	}
	// Without explicit order or averages.
	out2 := FormatMatrix("t2", rows, nil, nil)
	if !strings.Contains(out2, "a") || strings.Contains(out2, "AVG") {
		t.Errorf("format without avg wrong:\n%s", out2)
	}
}

func TestBenchmarksAndDesigns(t *testing.T) {
	if len(Benchmarks()) != 10 {
		t.Error("want 10 benchmarks")
	}
	if len(FullDesigns()) != 4 || len(SweepDesigns()) != 3 {
		t.Error("design sets wrong")
	}
}
