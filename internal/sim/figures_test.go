package sim

import (
	"math"
	"testing"

	"nord/internal/noc"
)

// TestNormalisedZeroReference: a benchmark whose reference design
// measured zero (e.g. a degenerate run that delivered no flits) must
// surface as NaN, not as a silent 0 — and must not drag the per-design
// averages down.
func TestNormalisedZeroReference(t *testing.T) {
	sr := &SuiteResult{
		Benchmarks: []string{"good", "degenerate"},
		Results: map[string]map[noc.Design]Result{
			"good": {
				noc.NoPG: {Design: noc.NoPG, ExecTime: 100},
				noc.NoRD: {Design: noc.NoRD, ExecTime: 50},
			},
			"degenerate": {
				noc.NoPG: {Design: noc.NoPG, ExecTime: 0},
				noc.NoRD: {Design: noc.NoRD, ExecTime: 50},
			},
		},
	}
	rows, avg := sr.normalised(func(r Result) float64 { return float64(r.ExecTime) }, noc.NoPG)

	if got := rows["good"][noc.NoRD]; got != 0.5 {
		t.Errorf("good row normalises to %v, want 0.5", got)
	}
	for _, d := range []noc.Design{noc.NoPG, noc.NoRD} {
		if got := rows["degenerate"][d]; !math.IsNaN(got) {
			t.Errorf("degenerate row %v = %v, want NaN marker", d, got)
		}
	}
	// Averages use only the valid row.
	if got := avg[noc.NoRD]; got != 0.5 {
		t.Errorf("NoRD average = %v, want 0.5 (degenerate row excluded)", got)
	}
	if got := avg[noc.NoPG]; got != 1.0 {
		t.Errorf("NoPG average = %v, want 1.0", got)
	}

	// All references zero: averages themselves carry the marker.
	sr.Benchmarks = []string{"degenerate"}
	_, avg = sr.normalised(func(r Result) float64 { return float64(r.ExecTime) }, noc.NoPG)
	if !math.IsNaN(avg[noc.NoRD]) {
		t.Errorf("all-degenerate average = %v, want NaN", avg[noc.NoRD])
	}
}
