package sim

import (
	"context"
	"errors"
	"testing"

	"nord/internal/noc"
	"nord/internal/stats"
)

// TestRunSyntheticCancelBounded proves cooperative cancellation is
// bounded: after ctx is canceled, the tick loop stops within CheckEvery
// cycles (the context poll interval), not at the end of the run.
func TestRunSyntheticCancelBounded(t *testing.T) {
	const (
		warmup     = 500
		measure    = 2_000_000 // far more than the test should ever simulate
		checkEvery = 128
		progEvery  = 512
		cancelAt   = 2048 // network cycle at which the callback cancels
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var canceledAt uint64
	res, err := RunSyntheticOpts(ctx, SynthConfig{
		Design: noc.NoRD, Width: 4, Height: 4,
		Pattern: "uniform", Rate: 0.05,
		Warmup: warmup, Measure: measure, Seed: 1,
	}, RunOptions{
		CheckEvery:    checkEvery,
		ProgressEvery: progEvery,
		Progress: func(p stats.Progress) {
			if canceledAt == 0 && p.Cycle >= cancelAt {
				canceledAt = p.Cycle
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if canceledAt == 0 {
		t.Fatal("progress callback never fired")
	}
	if res.Err == "" {
		t.Fatal("partial result did not record the cancellation in Err")
	}
	// res.Cycles counts measured cycles; the loop may tick at most
	// checkEvery more cycles past the cancel point before the next poll.
	limit := canceledAt - warmup + checkEvery
	if res.Cycles > limit {
		t.Fatalf("loop ran %d measured cycles after cancel at %d; bound is %d",
			res.Cycles, canceledAt, limit)
	}
	if res.Cycles == 0 {
		t.Fatal("expected partial statistics from the canceled run")
	}
}

// TestRunSyntheticPreCanceled checks an already-canceled context stops
// the run almost immediately.
func TestRunSyntheticPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunSyntheticCtx(ctx, SynthConfig{
		Design: noc.NoPG, Width: 4, Height: 4,
		Pattern: "uniform", Rate: 0.05,
		Warmup: 10_000, Measure: 1_000_000, Seed: 1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Cycles > 0 {
		t.Fatalf("pre-canceled run measured %d cycles", res.Cycles)
	}
}

// TestRunWorkloadCancel checks the full-system runner honours ctx too.
func TestRunWorkloadCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	canceled := false
	_, err := RunWorkloadOpts(ctx, WorkloadConfig{
		Design: noc.NoRD, Benchmark: "x264", Scale: 0.5, Seed: 1,
	}, RunOptions{
		CheckEvery:    256,
		ProgressEvery: 1024,
		Progress: func(p stats.Progress) {
			if !canceled && p.Cycle >= 4096 {
				canceled = true
				cancel()
			}
		},
	})
	if !canceled {
		// Workload finished before the cancel point; nothing to assert.
		t.Skip("workload too short to cancel mid-run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestParallelLoadSweepCanceled checks the sweep propagates cancellation.
func TestParallelLoadSweepCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ParallelLoadSweepCtx(ctx, 4, 4, "uniform", []float64{0.02, 0.05}, 20_000, 1)
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
}
