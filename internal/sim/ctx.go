package sim

import (
	"context"
	"fmt"

	"nord/internal/noc"
	"nord/internal/obs"
	"nord/internal/stats"
)

// RunOptions tunes the cooperative-cancellation and progress machinery of
// the *Opts runners. The zero value is ready to use: the context is
// polled every 1024 cycles and no progress is reported.
type RunOptions struct {
	// Progress, when non-nil, receives a stats.Progress snapshot every
	// ProgressEvery cycles and once more when the run finishes. It is
	// called from the simulation goroutine; keep it fast.
	Progress func(stats.Progress)
	// ProgressEvery is the number of cycles between snapshots
	// (default 5000).
	ProgressEvery int
	// CheckEvery is the number of cycles between context polls
	// (default 1024) — the bound on how many extra cycles a canceled run
	// keeps ticking.
	CheckEvery int
	// Tracer, when non-nil, is attached to the network as the cycle-level
	// event sink (power-gating FSM transitions, wakeup causes, detours;
	// see internal/obs). Like Progress it is driven on the simulation
	// goroutine: drain it from the Progress callback or after the run.
	Tracer *obs.Tracer
	// Parallelism selects the tick kernel's shard count (noc
	// Params.Parallelism): 0 or 1 runs serial, P > 1 partitions the mesh
	// into P worker-owned spatial domains. Reports are bit-identical
	// across values — it is an execution option, not part of the
	// experiment configuration, and is therefore excluded from the serve
	// layer's cache keys.
	Parallelism int
}

func (o RunOptions) checkEvery() int {
	if o.CheckEvery > 0 {
		return o.CheckEvery
	}
	return 1024
}

func (o RunOptions) progressEvery() uint64 {
	if o.ProgressEvery > 0 {
		return uint64(o.ProgressEvery)
	}
	return 5000
}

// runObserver drives the periodic context polls and progress snapshots of
// a simulation loop: observe is called once per simulated cycle, finish
// once when the run ends (on any path) to flush a final snapshot.
type runObserver struct {
	ctx      context.Context
	opt      RunOptions
	net      *noc.Network
	total    uint64 // planned cycles, 0 when open-ended
	lastEmit uint64
}

func newRunObserver(ctx context.Context, opt RunOptions, net *noc.Network, total uint64) *runObserver {
	return &runObserver{ctx: ctx, opt: opt, net: net, total: total}
}

// observe polls the context every CheckEvery cycles and emits a progress
// snapshot every ProgressEvery cycles. A cancellation is returned as an
// error wrapping the context's cause (context.Cause falls back to
// ctx.Err, so errors.Is still sees context.Canceled / DeadlineExceeded;
// callers that cancel with a cause — e.g. a per-job execution deadline —
// can distinguish it from a plain client cancel).
func (o *runObserver) observe(phase string) error {
	cyc := o.net.Cycle()
	if cyc%uint64(o.opt.checkEvery()) == 0 {
		if o.ctx.Err() != nil {
			return fmt.Errorf("sim: run canceled at cycle %d: %w", cyc, context.Cause(o.ctx))
		}
	}
	o.maybeEmit(phase)
	return nil
}

// maybeEmit emits a snapshot when one is due (also used directly as the
// memsys RunCtx hook, which performs its own context polling).
func (o *runObserver) maybeEmit(phase string) {
	if o.opt.Progress == nil {
		return
	}
	if cyc := o.net.Cycle(); cyc-o.lastEmit >= o.opt.progressEvery() {
		o.emit(phase)
	}
}

func (o *runObserver) emit(phase string) {
	col := o.net.Collector()
	o.lastEmit = o.net.Cycle()
	o.opt.Progress(stats.Progress{
		Cycle:            o.net.Cycle(),
		TotalCycles:      o.total,
		Phase:            phase,
		PacketsInjected:  col.PacketsInjected,
		PacketsDelivered: col.PacketsDelivered,
		InFlight:         o.net.InFlight(),
	})
}

// finish flushes a final snapshot so consumers see the terminal cycle.
func (o *runObserver) finish(phase string) {
	if o.opt.Progress != nil {
		o.emit(phase)
	}
}
