package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"nord/internal/fault"
	"nord/internal/noc"
)

func TestRunSyntheticWithFaults(t *testing.T) {
	r, err := RunSynthetic(SynthConfig{
		Design: noc.NoRD, Width: 4, Height: 4,
		Rate: 0.05, Warmup: 1_000, Measure: 4_000, Seed: 2,
		Faults: &fault.Config{Seed: 5, CorruptLinks: 8, DropWakeups: 2},
	})
	if err != nil {
		t.Fatalf("transient faults must be survivable: %v", err)
	}
	if r.Err != "" {
		t.Fatalf("unexpected run error %q", r.Err)
	}
	fr := r.Fault
	if fr == nil {
		t.Fatal("faulted run must carry a fault report")
	}
	if fr.InjectedTotal() != 10 {
		t.Fatalf("injected %d events, want 10", fr.InjectedTotal())
	}
	if fr.PacketsDelivered+fr.PacketsLost != fr.PacketsInjected {
		t.Fatalf("conservation broken: %d + %d != %d",
			fr.PacketsDelivered, fr.PacketsLost, fr.PacketsInjected)
	}
}

func TestRunSyntheticHardFailConvReportsDeadlock(t *testing.T) {
	r, err := RunSynthetic(SynthConfig{
		Design: noc.ConvPG, Width: 4, Height: 4,
		Rate: 0.05, Warmup: 500, Measure: 10_000, Seed: 2,
		WatchdogLimit: 2_000, DrainCycles: 10_000,
		Faults: &fault.Config{Seed: 3, HardFails: 2},
	})
	if err == nil {
		t.Fatal("hard-failed routers must wedge a conventional design")
	}
	var de *fault.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %T: %v", err, err)
	}
	if r.Err == "" || !strings.Contains(r.Err, "deadlock") {
		t.Fatalf("result should record the failure, got %q", r.Err)
	}
	if r.Fault == nil || r.Fault.RoutersLost == 0 {
		t.Fatal("result should still carry the fault report of the partial run")
	}
}

func TestDegradationSweepSmall(t *testing.T) {
	c := DegradationConfig{
		Width: 4, Height: 4, Measure: 4_000, Seed: 3,
		MaxFails: 2, CorruptLinks: 4,
		Designs:       []noc.Design{noc.NoPG, noc.NoRD},
		WatchdogLimit: 2_000,
	}
	pts, err := DegradationSweep(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("want 2 designs x 3 fail counts = 6 points, got %d", len(pts))
	}
	for _, p := range pts {
		switch {
		case p.Design == noc.NoRD:
			if p.Err != "" {
				t.Fatalf("NoRD cell (%d fails) failed: %s", p.HardFails, p.Err)
			}
			if p.Delivered < 0.99 {
				t.Fatalf("NoRD delivered %.4f with %d fails, want >= 0.99", p.Delivered, p.HardFails)
			}
		case p.HardFails == 0:
			if p.Err != "" {
				t.Fatalf("fault-free %v cell failed: %s", p.Design, p.Err)
			}
		default:
			// Conventional designs partition; the cell must record a
			// structured error rather than abort the sweep.
			if p.Err == "" {
				t.Fatalf("%v with %d hard-fails should report a failure", p.Design, p.HardFails)
			}
			if !strings.Contains(p.Err, "deadlock") {
				t.Fatalf("expected a deadlock report, got %q", p.Err)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteDegradationCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(pts)+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, len(pts)+1)
	}
	table := FormatDegradation(pts)
	if !strings.Contains(table, "NoRD") || !strings.Contains(table, "delivered") {
		t.Fatalf("table missing expected columns:\n%s", table)
	}
}

func TestDegradationSweepConfigErrors(t *testing.T) {
	if _, err := DegradationSweep(DegradationConfig{Pattern: "bogus"}); err == nil {
		t.Error("bad pattern should abort the sweep")
	}
	if _, err := DegradationSweep(DegradationConfig{MaxFails: -1}); err == nil {
		t.Error("negative MaxFails should abort the sweep")
	}
}

// TestParallelSweepSurvivesFaultedRuns drives the resilient parallel
// path directly: one run panics (legacy Tick crash), the others finish.
func TestParallelSweepSurvivesFaultedRuns(t *testing.T) {
	res, err := runGuarded(func() (Result, error) {
		panic(errors.New("synthetic crash"))
	})
	if err == nil || res.Err == "" {
		t.Fatal("panic must surface as an error and be recorded on the result")
	}
	if !runtimeFailure(err) {
		t.Fatal("recovered panics must classify as runtime failures")
	}
	if runtimeFailure(errors.New("flag: bad pattern")) {
		t.Fatal("plain config errors must not classify as runtime failures")
	}
	for _, mk := range []error{
		&fault.DeadlockError{Design: "x"},
		&fault.ProtocolError{Cycle: 1, Router: -1, Msg: "m"},
		&fault.UnrecoverableError{Cycle: 1},
	} {
		if !runtimeFailure(mk) {
			t.Fatalf("%T must classify as a runtime failure", mk)
		}
	}
}
