package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"nord/internal/fault"
	"nord/internal/noc"
)

// panicFailure wraps a recovered panic so sweeps can classify it as a
// runtime failure (recorded per-point) rather than a setup error.
type panicFailure struct{ cause error }

func (p *panicFailure) Error() string { return "sim: run panicked: " + p.cause.Error() }
func (p *panicFailure) Unwrap() error { return p.cause }

// runGuarded executes one simulation, converting a panic (a legacy
// Tick-path crash) into an error so a single bad run cannot take down a
// whole worker pool mid-sweep.
func runGuarded(run func() (Result, error)) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			cause, ok := r.(error)
			if !ok {
				cause = fmt.Errorf("%v", r)
			}
			err = &panicFailure{cause: cause}
			res.Err = err.Error()
		}
	}()
	return run()
}

// runtimeFailure reports whether err is a structured simulation failure
// (deadlock, protocol violation, unrecoverable fault, or a recovered
// panic) as opposed to a configuration error. Resilient sweeps record
// runtime failures in the affected cell and keep going; configuration
// errors abort the whole sweep, since every cell would fail identically.
func runtimeFailure(err error) bool {
	var de *fault.DeadlockError
	var pe *fault.ProtocolError
	var ue *fault.UnrecoverableError
	var pf *panicFailure
	return errors.As(err, &de) || errors.As(err, &pe) || errors.As(err, &ue) || errors.As(err, &pf)
}

// IsRuntimeFailure reports whether err is a structured simulation failure
// (deadlock, protocol violation, unrecoverable fault, recovered panic) as
// opposed to a configuration error or a cancellation. CLIs and the serve
// layer use it to distinguish "this design point failed" from "this
// request was invalid".
func IsRuntimeFailure(err error) bool { return runtimeFailure(err) }

// workerCount returns the number of pool workers for n jobs: one per
// available CPU, never more than there are jobs.
func workerCount(n int) int {
	w := max(1, runtime.GOMAXPROCS(0))
	if w > n {
		w = n
	}
	return w
}

// ParallelLoadSweep is LoadSweep with the (design, rate) points executed
// concurrently across CPU cores. Each simulation is single-threaded and
// fully independent, so the sweep parallelises embarrassingly; results
// are returned in the same deterministic order as LoadSweep. A failed
// point (deadlock, protocol violation, panic) is recorded in its
// SweepPoint's Err field and the sweep keeps going. A fixed pool of
// GOMAXPROCS workers drains a job channel, so the goroutine count is
// bounded by the core count rather than the sweep size.
func ParallelLoadSweep(w, h int, pattern string, rates []float64, measure int, seed int64) ([]SweepPoint, error) {
	return ParallelLoadSweepCtx(context.Background(), w, h, pattern, rates, measure, seed)
}

// ParallelLoadSweepCtx is ParallelLoadSweep with cooperative cancellation:
// a canceled context aborts in-flight simulations within ~a kilocycle,
// skips the remaining points and returns the context's error.
func ParallelLoadSweepCtx(ctx context.Context, w, h int, pattern string, rates []float64, measure int, seed int64) ([]SweepPoint, error) {
	type job struct {
		idx    int
		design noc.Design
		rate   float64
	}
	var jobs []job
	for _, d := range SweepDesigns() {
		for _, r := range rates {
			jobs = append(jobs, job{idx: len(jobs), design: d, rate: r})
		}
	}
	out := make([]SweepPoint, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for wk := 0; wk < workerCount(len(jobs)); wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if err := ctx.Err(); err != nil {
					errs[j.idx] = err
					continue
				}
				r, err := runGuarded(func() (Result, error) {
					return RunSyntheticCtx(ctx, SynthConfig{
						Design: j.design, Width: w, Height: h, Pattern: pattern,
						Rate: j.rate, Measure: measure, Seed: seed,
					})
				})
				pt := SweepPoint{Design: j.design, Rate: j.rate}
				switch {
				case err != nil && runtimeFailure(err):
					pt.Err = err.Error()
				case err != nil:
					errs[j.idx] = err
				default:
					pt.AvgLatency = r.AvgPacketLatency
					pt.PowerW = r.AvgPowerW
					pt.Throughput = r.Throughput
					pt.Saturated = r.AvgPacketLatency > satLatency
				}
				out[j.idx] = pt
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ParallelSuite is RunSuite with the (benchmark, design) cells executed
// concurrently.
func ParallelSuite(scale float64, seed int64, progress func(string)) (*SuiteResult, error) {
	return ParallelSuiteCtx(context.Background(), scale, seed, progress)
}

// ParallelSuiteCtx is ParallelSuite with cooperative cancellation (see
// ParallelLoadSweepCtx).
func ParallelSuiteCtx(ctx context.Context, scale float64, seed int64, progress func(string)) (*SuiteResult, error) {
	sr := &SuiteResult{Benchmarks: Benchmarks(), Results: map[string]map[noc.Design]Result{}}
	type cell struct {
		bench  string
		design noc.Design
	}
	var cells []cell
	for _, b := range sr.Benchmarks {
		sr.Results[b] = map[noc.Design]Result{}
		for _, d := range FullDesigns() {
			cells = append(cells, cell{bench: b, design: d})
		}
	}
	results := make([]Result, len(cells))
	errs := make([]error, len(cells))
	if len(cells) == 0 {
		return sr, nil
	}
	type idxCell struct {
		idx int
		c   cell
	}
	ch := make(chan idxCell)
	var wg sync.WaitGroup
	for wk := 0; wk < workerCount(len(cells)); wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ic := range ch {
				i, c := ic.idx, ic.c
				if ctx.Err() != nil {
					errs[i] = context.Cause(ctx)
					continue
				}
				if progress != nil {
					progress(fmt.Sprintf("%s / %s", c.bench, c.design))
				}
				r, err := runGuarded(func() (Result, error) {
					return RunWorkloadCtx(ctx, WorkloadConfig{Design: c.design, Benchmark: c.bench, Scale: scale, Seed: seed})
				})
				if err != nil && runtimeFailure(err) {
					// Record the failed cell and keep the rest of the suite
					// alive; callers see the failure in Result.Err.
					r.Design = c.design
					r.Label = c.bench
					r.Err = fmt.Errorf("sim: %s on %v: %w", c.bench, c.design, err).Error()
					err = nil
				}
				if err != nil {
					errs[i] = fmt.Errorf("sim: %s on %v: %w", c.bench, c.design, err)
					continue
				}
				results[i] = r
			}
		}()
	}
	for i, c := range cells {
		ch <- idxCell{idx: i, c: c}
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, c := range cells {
		sr.Results[c.bench][c.design] = results[i]
	}
	return sr, nil
}
