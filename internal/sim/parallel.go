package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"nord/internal/fault"
	"nord/internal/noc"
)

// panicFailure wraps a recovered panic so sweeps can classify it as a
// runtime failure (recorded per-point) rather than a setup error.
type panicFailure struct{ cause error }

func (p *panicFailure) Error() string { return "sim: run panicked: " + p.cause.Error() }
func (p *panicFailure) Unwrap() error { return p.cause }

// runGuarded executes one simulation, converting a panic (a legacy
// Tick-path crash) into an error so a single bad run cannot take down a
// whole worker pool mid-sweep.
func runGuarded(run func() (Result, error)) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			cause, ok := r.(error)
			if !ok {
				cause = fmt.Errorf("%v", r)
			}
			err = &panicFailure{cause: cause}
			res.Err = err.Error()
		}
	}()
	return run()
}

// runtimeFailure reports whether err is a structured simulation failure
// (deadlock, protocol violation, unrecoverable fault, or a recovered
// panic) as opposed to a configuration error. Resilient sweeps record
// runtime failures in the affected cell and keep going; configuration
// errors abort the whole sweep, since every cell would fail identically.
func runtimeFailure(err error) bool {
	var de *fault.DeadlockError
	var pe *fault.ProtocolError
	var ue *fault.UnrecoverableError
	var pf *panicFailure
	return errors.As(err, &de) || errors.As(err, &pe) || errors.As(err, &ue) || errors.As(err, &pf)
}

// ParallelLoadSweep is LoadSweep with the (design, rate) points executed
// concurrently across CPU cores. Each simulation is single-threaded and
// fully independent, so the sweep parallelises embarrassingly; results
// are returned in the same deterministic order as LoadSweep. A failed
// point (deadlock, protocol violation, panic) is recorded in its
// SweepPoint's Err field and the sweep keeps going.
func ParallelLoadSweep(w, h int, pattern string, rates []float64, measure int, seed int64) ([]SweepPoint, error) {
	type job struct {
		idx    int
		design noc.Design
		rate   float64
	}
	var jobs []job
	for _, d := range SweepDesigns() {
		for _, r := range rates {
			jobs = append(jobs, job{idx: len(jobs), design: d, rate: r})
		}
	}
	out := make([]SweepPoint, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := runGuarded(func() (Result, error) {
				return RunSynthetic(SynthConfig{
					Design: j.design, Width: w, Height: h, Pattern: pattern,
					Rate: j.rate, Measure: measure, Seed: seed,
				})
			})
			pt := SweepPoint{Design: j.design, Rate: j.rate}
			switch {
			case err != nil && runtimeFailure(err):
				pt.Err = err.Error()
			case err != nil:
				errs[j.idx] = err
			default:
				pt.AvgLatency = r.AvgPacketLatency
				pt.PowerW = r.AvgPowerW
				pt.Throughput = r.Throughput
				pt.Saturated = r.AvgPacketLatency > satLatency
			}
			out[j.idx] = pt
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ParallelSuite is RunSuite with the (benchmark, design) cells executed
// concurrently.
func ParallelSuite(scale float64, seed int64, progress func(string)) (*SuiteResult, error) {
	sr := &SuiteResult{Benchmarks: Benchmarks(), Results: map[string]map[noc.Design]Result{}}
	type cell struct {
		bench  string
		design noc.Design
	}
	var cells []cell
	for _, b := range sr.Benchmarks {
		sr.Results[b] = map[noc.Design]Result{}
		for _, d := range FullDesigns() {
			cells = append(cells, cell{bench: b, design: d})
		}
	}
	results := make([]Result, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if progress != nil {
				progress(fmt.Sprintf("%s / %s", c.bench, c.design))
			}
			r, err := runGuarded(func() (Result, error) {
				return RunWorkload(WorkloadConfig{Design: c.design, Benchmark: c.bench, Scale: scale, Seed: seed})
			})
			if err != nil && runtimeFailure(err) {
				// Record the failed cell and keep the rest of the suite
				// alive; callers see the failure in Result.Err.
				r.Design = c.design
				r.Label = c.bench
				r.Err = fmt.Errorf("sim: %s on %v: %w", c.bench, c.design, err).Error()
				err = nil
			}
			if err != nil {
				errs[i] = fmt.Errorf("sim: %s on %v: %w", c.bench, c.design, err)
				return
			}
			results[i] = r
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, c := range cells {
		sr.Results[c.bench][c.design] = results[i]
	}
	return sr, nil
}
