package sim

import (
	"fmt"
	"runtime"
	"sync"

	"nord/internal/noc"
)

// ParallelLoadSweep is LoadSweep with the (design, rate) points executed
// concurrently across CPU cores. Each simulation is single-threaded and
// fully independent, so the sweep parallelises embarrassingly; results
// are returned in the same deterministic order as LoadSweep.
func ParallelLoadSweep(w, h int, pattern string, rates []float64, measure int, seed int64) ([]SweepPoint, error) {
	type job struct {
		idx    int
		design noc.Design
		rate   float64
	}
	var jobs []job
	for _, d := range SweepDesigns() {
		for _, r := range rates {
			jobs = append(jobs, job{idx: len(jobs), design: d, rate: r})
		}
	}
	out := make([]SweepPoint, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := RunSynthetic(SynthConfig{
				Design: j.design, Width: w, Height: h, Pattern: pattern,
				Rate: j.rate, Measure: measure, Seed: seed,
			})
			if err != nil {
				errs[j.idx] = err
				return
			}
			out[j.idx] = SweepPoint{
				Design:     j.design,
				Rate:       j.rate,
				AvgLatency: r.AvgPacketLatency,
				PowerW:     r.AvgPowerW,
				Throughput: r.Throughput,
				Saturated:  r.AvgPacketLatency > satLatency,
			}
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ParallelSuite is RunSuite with the (benchmark, design) cells executed
// concurrently.
func ParallelSuite(scale float64, seed int64, progress func(string)) (*SuiteResult, error) {
	sr := &SuiteResult{Benchmarks: Benchmarks(), Results: map[string]map[noc.Design]Result{}}
	type cell struct {
		bench  string
		design noc.Design
	}
	var cells []cell
	for _, b := range sr.Benchmarks {
		sr.Results[b] = map[noc.Design]Result{}
		for _, d := range FullDesigns() {
			cells = append(cells, cell{bench: b, design: d})
		}
	}
	results := make([]Result, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if progress != nil {
				progress(fmt.Sprintf("%s / %s", c.bench, c.design))
			}
			r, err := RunWorkload(WorkloadConfig{Design: c.design, Benchmark: c.bench, Scale: scale, Seed: seed})
			if err != nil {
				errs[i] = fmt.Errorf("sim: %s on %v: %w", c.bench, c.design, err)
				return
			}
			results[i] = r
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, c := range cells {
		sr.Results[c.bench][c.design] = results[i]
	}
	return sr, nil
}
