package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"nord/internal/noc"
	"nord/internal/traffic"
)

// This file implements the tick-kernel benchmark harness behind
// `nordbench -kernel`: the same 8x8 x 4-designs x 3-loads matrix as the
// BenchmarkKernel Go benchmark, but self-contained so CI can emit a
// machine-readable BENCH_kernel.json and gate on allocation regressions
// without parsing `go test -bench` output.

// KernelRates is the load matrix of the benchmark-regression harness:
// low (most routers gated or idle), mid, and near-saturation load, in
// flits/node/cycle under uniform-random traffic.
var KernelRates = []float64{0.02, 0.10, 0.30}

// KernelWarmup is the cycle count run before measurement starts; it fills
// the flit pools, settles power-gating and reaches the steady state the
// zero-allocation claim is about.
const KernelWarmup = 2000

// KernelAllocBudget is the allocation budget per simulated cycle at low
// and mid load, where the kernel has a zero-allocation steady state: the
// only tolerated allocations are rare amortised slice growths (a link
// queue or the credit buffer stretching once), which stay far below this
// threshold. The saturation point is reported but not gated (Budget 0):
// past saturation the backlog — and therefore slice capacity — grows for
// the whole run by design, so its allocs/cycle depends on the run length
// rather than on the hot path.
const KernelAllocBudget = 0.01

// KernelScalingMeshes are the square meshes of the parallel-scaling
// matrix appended to the legacy 8x8 design sweep, each run at every
// shard count in KernelParallelisms. The load drops with mesh size
// because uniform-random saturation scales as ~1/width (bisection
// bound): a fixed 0.10 would put the 32x32 and 64x64 points past
// saturation, where the backlog — and allocations — grow for the whole
// run and ns/cycle measures queue growth rather than kernel speed.
var KernelScalingMeshes = []struct {
	Width int
	Rate  float64
}{
	{16, 0.10},
	{32, 0.05},
	{64, 0.02},
}

// KernelParallelisms is the shard-count axis of the scaling matrix.
// P=1 runs the identical code path single-shard and is the denominator
// of SpeedupVsSerial.
var KernelParallelisms = []int{1, 2, 4, 8}

// KernelPoint is one measured cell of the kernel benchmark matrix.
// Width/Height and Parallelism are 0 in baselines written before the
// sharded kernel existed; readers normalise 0 to 8x8 serial.
type KernelPoint struct {
	Design          string  `json:"design"`
	Rate            float64 `json:"rate"`
	Width           int     `json:"width,omitempty"`
	Height          int     `json:"height,omitempty"`
	Parallelism     int     `json:"parallelism,omitempty"`
	Cycles          int     `json:"cycles"`
	NsPerCycle      float64 `json:"ns_per_cycle"`
	CyclesPerSec    float64 `json:"cycles_per_sec"`
	AllocsPerCycle  float64 `json:"allocs_per_cycle"`
	BytesPerCycle   float64 `json:"bytes_per_cycle"`
	Budget          float64 `json:"alloc_budget"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// norm returns the point's matrix key fields with pre-sharding baselines
// normalised: width 0 means the legacy 8x8 mesh, parallelism 0 means
// serial.
func (p KernelPoint) norm() (width, parallelism int) {
	width, parallelism = p.Width, p.Parallelism
	if width == 0 {
		width = 8
	}
	if parallelism == 0 {
		parallelism = 1
	}
	return width, parallelism
}

// Regressed reports whether the point blows its per-cycle allocation
// budget. A zero budget means the point is not gated.
func (p KernelPoint) Regressed() bool {
	return p.Budget > 0 && p.AllocsPerCycle > p.Budget
}

// KernelReport is the BENCH_kernel.json document.
type KernelReport struct {
	Width     int    `json:"width"`
	Height    int    `json:"height"`
	Warmup    int    `json:"warmup_cycles"`
	Measured  int    `json:"measured_cycles"`
	Seed      int64  `json:"seed"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// HostCPUs records runtime.NumCPU() at capture time: parallel-point
	// timings are only comparable between machines that can actually run
	// that many shards concurrently. 0 means a baseline written before
	// the field existed (unknown host).
	HostCPUs int           `json:"host_cpus,omitempty"`
	Points   []KernelPoint `json:"points"`
}

// Regressions returns the points that exceed the allocation budget.
func (r *KernelReport) Regressions() []KernelPoint {
	var bad []KernelPoint
	for _, p := range r.Points {
		if p.Regressed() {
			bad = append(bad, p)
		}
	}
	return bad
}

// WriteJSON writes the report as indented JSON.
func (r *KernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadKernelReport reads a report previously written by WriteJSON.
func LoadKernelReport(r io.Reader) (*KernelReport, error) {
	var rep KernelReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("sim: bad kernel baseline: %w", err)
	}
	if len(rep.Points) == 0 {
		return nil, fmt.Errorf("sim: kernel baseline has no points")
	}
	return &rep, nil
}

// CompareBaseline matches this report's points against a committed
// baseline by (design, rate, width, parallelism) and returns one
// complaint per regression: a point whose ns/cycle exceeds the baseline
// by more than tol (fractional — 0.75 tolerates a +75% slowdown,
// absorbing CI-runner noise while still catching order-of-magnitude
// regressions), or a baseline point missing from this report (a
// silently dropped matrix cell would otherwise read as a pass). The
// missing-cell check is scoped to (width, parallelism) groups this run
// actually covers, so a short run that skips the scaling matrix — or an
// old baseline compared against a run on a machine with fewer CPUs —
// doesn't fail spuriously. Pre-sharding baseline points (no width /
// parallelism fields) are normalised to 8x8 serial. Faster-than-baseline
// points and points new in this report are fine.
//
// Parallel-point (P>1) timings are only compared when both reports were
// captured on hosts with at least P CPUs: a baseline captured on a
// 1-CPU container records honest speedups <= 1, and comparing a
// multi-core run against it (or vice versa) asserts nothing about the
// kernel. Skipped comparisons are returned as notices — logged, never a
// silent pass — with an unknown host CPU count (a pre-field baseline)
// treated as insufficient.
func (r *KernelReport) CompareBaseline(base *KernelReport, tol float64) (bad, notices []string) {
	type cell struct {
		design      string
		rate        float64
		width       int
		parallelism int
	}
	type group struct{ width, parallelism int }
	cur := make(map[cell]KernelPoint, len(r.Points))
	covered := make(map[group]bool, len(r.Points))
	for _, p := range r.Points {
		w, par := p.norm()
		cur[cell{p.Design, p.Rate, w, par}] = p
		covered[group{w, par}] = true
	}
	cpuStr := func(n int) string {
		if n <= 0 {
			return "unknown CPUs"
		}
		return fmt.Sprintf("%d CPUs", n)
	}
	for _, bp := range base.Points {
		w, par := bp.norm()
		p, ok := cur[cell{bp.Design, bp.Rate, w, par}]
		if !ok {
			if covered[group{w, par}] {
				bad = append(bad, fmt.Sprintf("%s rate %.2f %dx%d P=%d: present in baseline, missing from this run",
					bp.Design, bp.Rate, w, w, par))
			}
			continue
		}
		if bp.NsPerCycle <= 0 {
			continue
		}
		if par > 1 && (base.HostCPUs < par || r.HostCPUs < par) {
			notices = append(notices, fmt.Sprintf("%s rate %.2f %dx%d P=%d: speedup_vs_serial not compared (baseline host has %s, this host %s; need >= %d)",
				p.Design, p.Rate, w, w, par, cpuStr(base.HostCPUs), cpuStr(r.HostCPUs), par))
			continue
		}
		if ratio := p.NsPerCycle / bp.NsPerCycle; ratio > 1+tol {
			bad = append(bad, fmt.Sprintf("%s rate %.2f %dx%d P=%d: %.1f ns/cycle vs baseline %.1f (%.2fx, tolerance %.2fx)",
				p.Design, p.Rate, w, w, par, p.NsPerCycle, bp.NsPerCycle, ratio, 1+tol))
		}
	}
	return bad, notices
}

// KernelBench runs the kernel benchmark matrix in two parts: the legacy
// 8x8 x designs x loads serial sweep, then the parallel-scaling matrix —
// NoRD on the KernelScalingMeshes (per-mesh sub-saturation loads), each
// at every shard count in KernelParallelisms, with the measured cycle
// count scaled down by node count (floor 500) so the big meshes stay
// affordable. Every
// network is warmed up for KernelWarmup cycles, then ticked under the
// wall clock and the allocator counters (runtime.MemStats deltas).
// Scaling points record SpeedupVsSerial against the P=1 point of the
// same (design, rate, mesh). progress may be nil.
func KernelBench(measure int, seed int64, progress func(string)) (*KernelReport, error) {
	return KernelBenchP(measure, seed, 0, progress)
}

// KernelBenchP is KernelBench with the scaling matrix's parallelism
// axis
// capped at maxP: 0 runs the full KernelParallelisms axis, 1 keeps only
// the serial scaling points (small CI runners), and a negative cap skips
// the scaling matrix entirely. The 8x8 design sweep always runs.
func KernelBenchP(measure int, seed int64, maxP int, progress func(string)) (*KernelReport, error) {
	if measure < 1 {
		return nil, fmt.Errorf("sim: kernel benchmark needs a positive cycle count, got %d", measure)
	}
	rep := &KernelReport{
		Width: 8, Height: 8,
		Warmup: KernelWarmup, Measured: measure, Seed: seed,
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		HostCPUs: runtime.NumCPU(),
	}
	for _, d := range FullDesigns() {
		for _, rate := range KernelRates {
			if progress != nil {
				progress(fmt.Sprintf("%s / rate %.2f", d, rate))
			}
			pt, err := kernelPoint(d, rate, 8, 1, measure, seed)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	if maxP < 0 {
		return rep, nil
	}
	for _, m := range KernelScalingMeshes {
		w := m.Width
		cycles := measure * 64 / (w * w)
		if cycles < 500 {
			cycles = 500
		}
		var serialNs float64
		for _, par := range KernelParallelisms {
			if maxP > 0 && par > maxP {
				continue
			}
			if progress != nil {
				progress(fmt.Sprintf("NoRD / rate %.2f / %dx%d / P=%d", m.Rate, w, w, par))
			}
			pt, err := kernelPoint(noc.NoRD, m.Rate, w, par, cycles, seed)
			if err != nil {
				return nil, err
			}
			if par == 1 {
				serialNs = pt.NsPerCycle
			}
			if serialNs > 0 && pt.NsPerCycle > 0 {
				pt.SpeedupVsSerial = serialNs / pt.NsPerCycle
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

func kernelPoint(d noc.Design, rate float64, width, parallelism, measure int, seed int64) (KernelPoint, error) {
	p := noc.DefaultParams(d)
	p.Width, p.Height = width, width
	p.Parallelism = parallelism
	n, err := noc.New(p)
	if err != nil {
		return KernelPoint{}, err
	}
	defer n.Close()
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, rate, seed)
	for c := 0; c < KernelWarmup; c++ {
		inj.Tick(n.Cycle())
		if err := n.Step(); err != nil {
			return KernelPoint{}, err
		}
	}
	// Settle the allocator so the measured Mallocs delta reflects the tick
	// path, not garbage left over from construction and warmup.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for c := 0; c < measure; c++ {
		inj.Tick(n.Cycle())
		if err := n.Step(); err != nil {
			return KernelPoint{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	budget := KernelAllocBudget
	if rate >= 0.3 {
		budget = 0 // saturation: reported, not gated
	}
	if parallelism > 1 || width != 8 {
		// Only the legacy 8x8 serial sweep carries the alloc gate (along
		// with TestSteadyStateZeroAllocs). Scaling points measure time:
		// their short, node-scaled windows cannot amortise the one-time
		// slice growths a 50k-cycle run absorbs, and sharded runs can be
		// charged stray runtime allocations by goroutine scheduling.
		budget = 0
	}
	pt := KernelPoint{
		Design: d.String(), Rate: rate, Cycles: measure, Budget: budget,
		Width: width, Height: width, Parallelism: parallelism,
		NsPerCycle:     float64(elapsed.Nanoseconds()) / float64(measure),
		AllocsPerCycle: float64(after.Mallocs-before.Mallocs) / float64(measure),
		BytesPerCycle:  float64(after.TotalAlloc-before.TotalAlloc) / float64(measure),
	}
	if s := elapsed.Seconds(); s > 0 {
		pt.CyclesPerSec = float64(measure) / s
	}
	return pt, nil
}
