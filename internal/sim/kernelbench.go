package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"nord/internal/noc"
	"nord/internal/traffic"
)

// This file implements the tick-kernel benchmark harness behind
// `nordbench -kernel`: the same 8x8 x 4-designs x 3-loads matrix as the
// BenchmarkKernel Go benchmark, but self-contained so CI can emit a
// machine-readable BENCH_kernel.json and gate on allocation regressions
// without parsing `go test -bench` output.

// KernelRates is the load matrix of the benchmark-regression harness:
// low (most routers gated or idle), mid, and near-saturation load, in
// flits/node/cycle under uniform-random traffic.
var KernelRates = []float64{0.02, 0.10, 0.30}

// KernelWarmup is the cycle count run before measurement starts; it fills
// the flit pools, settles power-gating and reaches the steady state the
// zero-allocation claim is about.
const KernelWarmup = 2000

// KernelAllocBudget is the allocation budget per simulated cycle at low
// and mid load, where the kernel has a zero-allocation steady state: the
// only tolerated allocations are rare amortised slice growths (a link
// queue or the credit buffer stretching once), which stay far below this
// threshold. The saturation point is reported but not gated (Budget 0):
// past saturation the backlog — and therefore slice capacity — grows for
// the whole run by design, so its allocs/cycle depends on the run length
// rather than on the hot path.
const KernelAllocBudget = 0.01

// KernelPoint is one measured cell of the kernel benchmark matrix.
type KernelPoint struct {
	Design         string  `json:"design"`
	Rate           float64 `json:"rate"`
	Cycles         int     `json:"cycles"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	Budget         float64 `json:"alloc_budget"`
}

// Regressed reports whether the point blows its per-cycle allocation
// budget. A zero budget means the point is not gated.
func (p KernelPoint) Regressed() bool {
	return p.Budget > 0 && p.AllocsPerCycle > p.Budget
}

// KernelReport is the BENCH_kernel.json document.
type KernelReport struct {
	Width     int           `json:"width"`
	Height    int           `json:"height"`
	Warmup    int           `json:"warmup_cycles"`
	Measured  int           `json:"measured_cycles"`
	Seed      int64         `json:"seed"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Points    []KernelPoint `json:"points"`
}

// Regressions returns the points that exceed the allocation budget.
func (r *KernelReport) Regressions() []KernelPoint {
	var bad []KernelPoint
	for _, p := range r.Points {
		if p.Regressed() {
			bad = append(bad, p)
		}
	}
	return bad
}

// WriteJSON writes the report as indented JSON.
func (r *KernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadKernelReport reads a report previously written by WriteJSON.
func LoadKernelReport(r io.Reader) (*KernelReport, error) {
	var rep KernelReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("sim: bad kernel baseline: %w", err)
	}
	if len(rep.Points) == 0 {
		return nil, fmt.Errorf("sim: kernel baseline has no points")
	}
	return &rep, nil
}

// CompareBaseline matches this report's points against a committed
// baseline by (design, rate) and returns one complaint per regression:
// a point whose ns/cycle exceeds the baseline by more than tol
// (fractional — 0.75 tolerates a +75% slowdown, absorbing CI-runner
// noise while still catching order-of-magnitude regressions), or a
// baseline point missing from this report (a silently dropped matrix
// cell would otherwise read as a pass). Faster-than-baseline points and
// points new in this report are fine.
func (r *KernelReport) CompareBaseline(base *KernelReport, tol float64) []string {
	type cell struct {
		design string
		rate   float64
	}
	cur := make(map[cell]KernelPoint, len(r.Points))
	for _, p := range r.Points {
		cur[cell{p.Design, p.Rate}] = p
	}
	var bad []string
	for _, bp := range base.Points {
		p, ok := cur[cell{bp.Design, bp.Rate}]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s rate %.2f: present in baseline, missing from this run", bp.Design, bp.Rate))
			continue
		}
		if bp.NsPerCycle <= 0 {
			continue
		}
		if ratio := p.NsPerCycle / bp.NsPerCycle; ratio > 1+tol {
			bad = append(bad, fmt.Sprintf("%s rate %.2f: %.1f ns/cycle vs baseline %.1f (%.2fx, tolerance %.2fx)",
				p.Design, p.Rate, p.NsPerCycle, bp.NsPerCycle, ratio, 1+tol))
		}
	}
	return bad
}

// KernelBench runs the kernel benchmark matrix: for each design and load,
// an 8x8 network is warmed up for KernelWarmup cycles and then ticked
// `measure` times under the wall clock and the allocator counters
// (runtime.MemStats deltas). progress may be nil.
func KernelBench(measure int, seed int64, progress func(string)) (*KernelReport, error) {
	if measure < 1 {
		return nil, fmt.Errorf("sim: kernel benchmark needs a positive cycle count, got %d", measure)
	}
	rep := &KernelReport{
		Width: 8, Height: 8,
		Warmup: KernelWarmup, Measured: measure, Seed: seed,
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
	}
	for _, d := range FullDesigns() {
		for _, rate := range KernelRates {
			if progress != nil {
				progress(fmt.Sprintf("%s / rate %.2f", d, rate))
			}
			pt, err := kernelPoint(d, rate, measure, seed)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

func kernelPoint(d noc.Design, rate float64, measure int, seed int64) (KernelPoint, error) {
	p := noc.DefaultParams(d)
	p.Width, p.Height = 8, 8
	n, err := noc.New(p)
	if err != nil {
		return KernelPoint{}, err
	}
	inj := traffic.NewSynthetic(n, traffic.UniformRandom, rate, seed)
	for c := 0; c < KernelWarmup; c++ {
		inj.Tick(n.Cycle())
		if err := n.Step(); err != nil {
			return KernelPoint{}, err
		}
	}
	// Settle the allocator so the measured Mallocs delta reflects the tick
	// path, not garbage left over from construction and warmup.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for c := 0; c < measure; c++ {
		inj.Tick(n.Cycle())
		if err := n.Step(); err != nil {
			return KernelPoint{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	budget := KernelAllocBudget
	if rate >= 0.3 {
		budget = 0 // saturation: reported, not gated
	}
	pt := KernelPoint{
		Design: d.String(), Rate: rate, Cycles: measure, Budget: budget,
		NsPerCycle:     float64(elapsed.Nanoseconds()) / float64(measure),
		AllocsPerCycle: float64(after.Mallocs-before.Mallocs) / float64(measure),
		BytesPerCycle:  float64(after.TotalAlloc-before.TotalAlloc) / float64(measure),
	}
	if s := elapsed.Seconds(); s > 0 {
		pt.CyclesPerSec = float64(measure) / s
	}
	return pt, nil
}
