package sim

import (
	"fmt"
	"testing"

	"nord/internal/noc"
)

// TestSyntheticTopologies runs every design on the torus and the
// concentrated mesh end-to-end through the experiment harness: traffic
// must be delivered, latency finite, and the link-energy scale of the
// longer channels must show up in the power breakdown.
func TestSyntheticTopologies(t *testing.T) {
	for _, topo := range []string{"torus", "cmesh"} {
		for _, d := range []noc.Design{noc.NoPG, noc.ConvPG, noc.ConvPGOpt, noc.NoRD} {
			t.Run(fmt.Sprintf("%s/%s", topo, d), func(t *testing.T) {
				r, err := RunSynthetic(SynthConfig{
					Design: d, Topology: topo, Width: 4, Height: 4,
					Rate: 0.05, Warmup: 500, Measure: 3000, Seed: 9,
				})
				if err != nil {
					t.Fatal(err)
				}
				if r.PacketsDelivered == 0 {
					t.Fatal("no packets delivered")
				}
				if r.AvgPacketLatency <= 0 {
					t.Errorf("non-positive latency %v", r.AvgPacketLatency)
				}
				if r.Energy.LinkStatic <= 0 || r.Energy.LinkDynamic <= 0 {
					t.Errorf("link energy bands empty: %+v", r.Energy)
				}
				wantNodes := 16
				if topo == "cmesh" {
					wantNodes = 64
				}
				if r.Nodes != wantNodes {
					t.Errorf("Nodes = %d, want %d terminals", r.Nodes, wantNodes)
				}
			})
		}
	}

	// The unknown-topology path must error loudly, not fall back to mesh.
	if _, err := RunSynthetic(SynthConfig{Design: noc.NoPG, Topology: "hypercube", Measure: 10}); err == nil {
		t.Error("unknown topology silently accepted")
	}
}

// TestTorusLinkEnergyScale: identical traffic on mesh vs torus — the
// torus has more links (wrap channels) and each costs 2x (folded-torus
// pitch), so its link static energy must exceed the mesh's by more than
// the raw link-count ratio alone.
func TestTorusLinkEnergyScale(t *testing.T) {
	base := SynthConfig{Design: noc.NoPG, Width: 4, Height: 4, Rate: 0.05, Warmup: 500, Measure: 2000, Seed: 3}
	mesh, err := RunSynthetic(base)
	if err != nil {
		t.Fatal(err)
	}
	tc := base
	tc.Topology = "torus"
	torus, err := RunSynthetic(tc)
	if err != nil {
		t.Fatal(err)
	}
	// Mesh 4x4: 48 links at 1.0x. Torus 4x4: 64 links at 2.0x.
	wantRatio := (64.0 * 2.0) / 48.0
	gotRatio := torus.Energy.LinkStatic / mesh.Energy.LinkStatic
	if diff := gotRatio/wantRatio - 1; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("torus/mesh link static ratio = %v, want %v", gotRatio, wantRatio)
	}
}
