package sim

import (
	"fmt"
	"io"
	"strconv"

	"nord/internal/noc"
	"nord/internal/power"
	"nord/internal/traffic"
)

// PowerSample is one window of a power time series.
type PowerSample struct {
	CycleStart  uint64
	PowerW      float64
	OffFraction float64
	Throughput  float64 // delivered flits/node/cycle in the window
}

// PowerTimeSeries runs a synthetic simulation and samples NoC power,
// gated-off fraction and delivered throughput every period cycles,
// exposing the temporal dynamics of power gating (bursts waking routers,
// quiet stretches powering them down).
func PowerTimeSeries(c SynthConfig, period int) ([]PowerSample, error) {
	c.fill()
	if period < 1 {
		return nil, fmt.Errorf("sim: sample period must be positive, got %d", period)
	}
	params, err := c.buildParams(1)
	if err != nil {
		return nil, err
	}
	net, err := noc.New(params)
	if err != nil {
		return nil, err
	}
	pattern, err := traffic.PatternByName(c.Pattern)
	if err != nil {
		return nil, err
	}
	model, err := power.New(c.Tech)
	if err != nil {
		return nil, err
	}
	inj := traffic.NewSynthetic(net, pattern, c.Rate, c.Seed)
	for i := 0; i < c.Warmup; i++ {
		inj.Tick(net.Cycle())
		net.Tick()
	}
	net.BeginMeasurement()

	routers := params.NumNodes()
	nodes := net.Mesh().N() // terminals: == routers except on cmesh
	links := net.NumLinks()
	llf := net.Topo().LinkLengthFactor()
	var samples []PowerSample
	prev := net.Collector().PowerCounts(routers, links, net.HasPGController(), net.HasBypass())
	prevFlits := net.Collector().FlitsDelivered
	start := net.Cycle()
	for i := 0; i < c.Measure; i++ {
		inj.Tick(net.Cycle())
		net.Tick()
		if (i+1)%period == 0 {
			cur := net.Collector().PowerCounts(routers, links, net.HasPGController(), net.HasBypass())
			cur.LinkLengthFactor = llf
			delta := diffCounts(cur, prev)
			e := model.Energy(delta)
			flits := net.Collector().FlitsDelivered
			samples = append(samples, PowerSample{
				CycleStart:  start,
				PowerW:      model.AvgPowerW(delta, e),
				OffFraction: offFrac(delta),
				Throughput:  float64(flits-prevFlits) / float64(period) / float64(nodes),
			})
			prev = cur
			prevFlits = flits
			start = net.Cycle()
		}
	}
	net.FinishMeasurement()
	return samples, nil
}

// diffCounts subtracts two cumulative count snapshots into a window.
func diffCounts(cur, prev power.Counts) power.Counts {
	d := cur
	d.Cycles = cur.Cycles - prev.Cycles
	d.RouterOnCycles = cur.RouterOnCycles - prev.RouterOnCycles
	d.RouterOffCycles = cur.RouterOffCycles - prev.RouterOffCycles
	d.Wakeups = cur.Wakeups - prev.Wakeups
	d.BufWrites = cur.BufWrites - prev.BufWrites
	d.BufReads = cur.BufReads - prev.BufReads
	d.XbarTraversals = cur.XbarTraversals - prev.XbarTraversals
	d.VAArbs = cur.VAArbs - prev.VAArbs
	d.SAArbs = cur.SAArbs - prev.SAArbs
	d.ClockedFlitHops = cur.ClockedFlitHops - prev.ClockedFlitHops
	d.LinkTraversals = cur.LinkTraversals - prev.LinkTraversals
	d.BypassHops = cur.BypassHops - prev.BypassHops
	d.BypassInjections = cur.BypassInjections - prev.BypassInjections
	d.BypassEjections = cur.BypassEjections - prev.BypassEjections
	d.LocalFlits = cur.LocalFlits - prev.LocalFlits
	return d
}

func offFrac(c power.Counts) float64 {
	total := c.RouterOnCycles + c.RouterOffCycles
	if total == 0 {
		return 0
	}
	return float64(c.RouterOffCycles) / float64(total)
}

// WritePowerSeriesCSV emits a power time series as CSV.
func WritePowerSeriesCSV(w io.Writer, samples []PowerSample) error {
	if _, err := fmt.Fprintln(w, "cycle_start,noc_power_w,off_fraction,throughput_fpc"); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s\n",
			s.CycleStart,
			strconv.FormatFloat(s.PowerW, 'f', 4, 64),
			strconv.FormatFloat(s.OffFraction, 'f', 4, 64),
			strconv.FormatFloat(s.Throughput, 'f', 5, 64)); err != nil {
			return err
		}
	}
	return nil
}

// WatchStates runs a synthetic simulation and renders the mesh's router
// power states every period cycles as ASCII frames ('#' on, '.' off,
// '~' waking; performance-centric routers are uppercase O when on),
// visualising how traffic wakes regions of the chip and quiet stretches
// power them down.
func WatchStates(c SynthConfig, period, frames int, w io.Writer) error {
	c.fill()
	if period < 1 || frames < 1 {
		return fmt.Errorf("sim: watch needs positive period and frame count")
	}
	params, err := c.buildParams(1)
	if err != nil {
		return err
	}
	net, err := noc.New(params)
	if err != nil {
		return err
	}
	pattern, err := traffic.PatternByName(c.Pattern)
	if err != nil {
		return err
	}
	inj := traffic.NewSynthetic(net, pattern, c.Rate, c.Seed)
	perf := map[int]bool{}
	for _, id := range net.PerfCentricNow() {
		perf[id] = true
	}
	for f := 0; f < frames; f++ {
		for i := 0; i < period; i++ {
			inj.Tick(net.Cycle())
			net.Tick()
		}
		fmt.Fprintf(w, "cycle %d (in flight %d)\n", net.Cycle(), net.InFlight())
		for y := 0; y < c.Height; y++ {
			for x := 0; x < c.Width; x++ {
				id := y*c.Width + x
				glyph := "#"
				switch net.RouterStateName(id) {
				case "off":
					glyph = "."
				case "waking":
					glyph = "~"
				default:
					if perf[id] {
						glyph = "O"
					}
				}
				fmt.Fprintf(w, " %s", glyph)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ThresholdPoint is one (threshold, rate) measurement of the wakeup
// threshold sensitivity study (the companion to Figure 7: the paper notes
// "a threshold value of 4 VC requests can lead to nearly 60% increase in
// packet latency", Section 6.1).
type ThresholdPoint struct {
	Threshold  int
	Rate       float64
	AvgLatency float64
	Wakeups    uint64
	PowerW     float64
}

// ThresholdSensitivity sweeps SYMMETRIC wakeup thresholds (every router
// power-centric with the given value) across load rates, quantifying the
// latency/power trade-off the asymmetric dual-threshold scheme navigates.
func ThresholdSensitivity(thresholds []int, rates []float64, measure int, seed int64) ([]ThresholdPoint, error) {
	var out []ThresholdPoint
	for _, th := range thresholds {
		for _, rate := range rates {
			r, err := RunSynthetic(SynthConfig{
				Design: noc.NoRD, Rate: rate, Measure: measure, Seed: seed,
				NoPerfCentric: true,
				ThresholdPerf: th, ThresholdPower: th,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, ThresholdPoint{
				Threshold:  th,
				Rate:       rate,
				AvgLatency: r.AvgPacketLatency,
				Wakeups:    r.Wakeups,
				PowerW:     r.AvgPowerW,
			})
		}
	}
	return out, nil
}
