package sim

import (
	"testing"

	"nord/internal/noc"
)

// TestDeterminism pins the simulator's reproducibility: identical
// configurations and seeds produce bit-identical results, for synthetic
// and full-system runs alike. (Any map-iteration or scheduling
// nondeterminism that creeps in breaks this loudly.)
func TestDeterminism(t *testing.T) {
	synth := SynthConfig{Design: noc.NoRD, Rate: 0.07, Warmup: 2000, Measure: 10_000, Seed: 1234}
	a, err := RunSynthetic(synth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSynthetic(synth)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgPacketLatency != b.AvgPacketLatency || a.Wakeups != b.Wakeups ||
		a.Energy != b.Energy || a.PacketsDelivered != b.PacketsDelivered {
		t.Errorf("synthetic runs diverged:\n%+v\n%+v", a, b)
	}

	wl := WorkloadConfig{Design: noc.ConvPGOpt, Benchmark: "bodytrack", Scale: 0.03, Seed: 99}
	c, err := RunWorkload(wl)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunWorkload(wl)
	if err != nil {
		t.Fatal(err)
	}
	if c.ExecTime != d.ExecTime || c.Wakeups != d.Wakeups || c.Energy != d.Energy {
		t.Errorf("workload runs diverged: exec %d vs %d, wakeups %d vs %d",
			c.ExecTime, d.ExecTime, c.Wakeups, d.Wakeups)
	}
}
