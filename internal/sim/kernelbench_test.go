package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestKernelBench runs a miniature kernel benchmark and checks the report
// shape: one point per (design, load) cell, sane metrics, and a JSON
// round-trip (the BENCH_kernel.json CI artifact).
func TestKernelBench(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel benchmark matrix is slow under -short")
	}
	const cycles = 300
	rep, err := KernelBench(cycles, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(FullDesigns()) * len(KernelRates)
	if len(rep.Points) != want {
		t.Fatalf("got %d points, want %d", len(rep.Points), want)
	}
	for _, p := range rep.Points {
		if p.Cycles != cycles {
			t.Errorf("%s rate %.2f: measured %d cycles, want %d", p.Design, p.Rate, p.Cycles, cycles)
		}
		if p.NsPerCycle <= 0 || p.CyclesPerSec <= 0 {
			t.Errorf("%s rate %.2f: non-positive timing (%f ns/cycle, %f cycles/sec)",
				p.Design, p.Rate, p.NsPerCycle, p.CyclesPerSec)
		}
		if p.AllocsPerCycle < 0 || p.Budget < 0 {
			t.Errorf("%s rate %.2f: bad allocation accounting (%f/cycle, budget %f)",
				p.Design, p.Rate, p.AllocsPerCycle, p.Budget)
		}
		if p.Rate < 0.3 && p.Budget == 0 {
			t.Errorf("%s rate %.2f: low/mid-load point must be gated", p.Design, p.Rate)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back KernelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Points) != len(rep.Points) || back.Width != 8 || back.Height != 8 {
		t.Errorf("round-tripped report lost fields: %+v", back)
	}
}

func TestKernelBenchRejectsBadCycleCount(t *testing.T) {
	if _, err := KernelBench(0, 1, nil); err == nil {
		t.Fatal("expected an error for a zero cycle count")
	}
}
