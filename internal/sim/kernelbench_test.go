package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestKernelBench runs a miniature kernel benchmark and checks the report
// shape: one point per (design, load) cell, sane metrics, and a JSON
// round-trip (the BENCH_kernel.json CI artifact).
func TestKernelBench(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel benchmark matrix is slow under -short")
	}
	const cycles = 300
	// maxP=1 keeps the scaling meshes serial so the test stays affordable;
	// the full parallelism axis is exercised by `nordbench -kernel` in CI.
	rep, err := KernelBenchP(cycles, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(FullDesigns())*len(KernelRates) + len(KernelScalingMeshes)
	if len(rep.Points) != want {
		t.Fatalf("got %d points, want %d", len(rep.Points), want)
	}
	for _, p := range rep.Points {
		if p.Width == 8 && p.Cycles != cycles {
			t.Errorf("%s rate %.2f: measured %d cycles, want %d", p.Design, p.Rate, p.Cycles, cycles)
		}
		if p.Width != 8 {
			if p.Parallelism != 1 {
				t.Errorf("%s %dx%d: maxP=1 run produced P=%d point", p.Design, p.Width, p.Width, p.Parallelism)
			}
			if p.SpeedupVsSerial != 1 {
				t.Errorf("%s %dx%d: serial scaling point has speedup %f, want 1",
					p.Design, p.Width, p.Width, p.SpeedupVsSerial)
			}
		}
		if p.NsPerCycle <= 0 || p.CyclesPerSec <= 0 {
			t.Errorf("%s rate %.2f: non-positive timing (%f ns/cycle, %f cycles/sec)",
				p.Design, p.Rate, p.NsPerCycle, p.CyclesPerSec)
		}
		if p.AllocsPerCycle < 0 || p.Budget < 0 {
			t.Errorf("%s rate %.2f: bad allocation accounting (%f/cycle, budget %f)",
				p.Design, p.Rate, p.AllocsPerCycle, p.Budget)
		}
		if p.Width == 8 && p.Rate < 0.3 && p.Budget == 0 {
			t.Errorf("%s rate %.2f: low/mid-load 8x8 point must be gated", p.Design, p.Rate)
		}
		if p.Width != 8 && p.Budget != 0 {
			t.Errorf("%s %dx%d: scaling point must not carry the alloc gate", p.Design, p.Width, p.Width)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back KernelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Points) != len(rep.Points) || back.Width != 8 || back.Height != 8 {
		t.Errorf("round-tripped report lost fields: %+v", back)
	}
}

func TestKernelBenchRejectsBadCycleCount(t *testing.T) {
	if _, err := KernelBench(0, 1, nil); err == nil {
		t.Fatal("expected an error for a zero cycle count")
	}
}

// TestCompareBaseline covers the baseline comparison used by
// `nordbench -kernel -baseline BENCH_kernel.json`: slowdowns beyond the
// tolerance and dropped matrix cells are flagged; speedups, new cells and
// within-tolerance drift are not.
func TestCompareBaseline(t *testing.T) {
	pt := func(design string, rate, ns float64) KernelPoint {
		return KernelPoint{Design: design, Rate: rate, NsPerCycle: ns}
	}
	base := &KernelReport{Points: []KernelPoint{
		pt("NoRD", 0.02, 100),
		pt("NoRD", 0.10, 200),
		pt("No_PG", 0.02, 100),
	}}

	cur := &KernelReport{Points: []KernelPoint{
		pt("NoRD", 0.02, 170),  // +70%: within a 0.75 tolerance
		pt("NoRD", 0.10, 500),  // 2.5x: regression
		pt("Conv_PG", 0.02, 1), // new cell: fine
		// No_PG 0.02 dropped: flagged
	}}
	bad, _ := cur.CompareBaseline(base, 0.75)
	if len(bad) != 2 {
		t.Fatalf("got %d complaints, want 2: %v", len(bad), bad)
	}
	var slow, missing bool
	for _, msg := range bad {
		if strings.Contains(msg, "NoRD rate 0.10") {
			slow = true
		}
		if strings.Contains(msg, "No_PG rate 0.02") && strings.Contains(msg, "missing") {
			missing = true
		}
	}
	if !slow || !missing {
		t.Fatalf("complaints do not cover the slowdown and the dropped cell: %v", bad)
	}

	if bad, _ := base.CompareBaseline(base, 0); len(bad) != 0 {
		t.Fatalf("self-comparison flagged %v", bad)
	}

	// A zero-timing baseline point (hand-edited or truncated file) must
	// not divide by zero or flag spuriously.
	zero := &KernelReport{Points: []KernelPoint{pt("NoRD", 0.02, 0)}}
	if bad, _ := cur.CompareBaseline(zero, 0.75); len(bad) != 0 {
		t.Fatalf("zero-baseline point flagged %v", bad)
	}

	// Scaling-matrix cells are matched by (width, parallelism) too, and
	// the missing-cell check is scoped to groups the current run covers: a
	// run that skipped the 16x16 P=4 group (e.g. `-cpus 1` on a small
	// machine) is not penalised for the baseline having it, but a dropped
	// cell inside a covered group still is.
	scaled := func(design string, w, par int, ns float64) KernelPoint {
		return KernelPoint{Design: design, Rate: 0.10, Width: w, Height: w, Parallelism: par, NsPerCycle: ns}
	}
	sbase := &KernelReport{Points: []KernelPoint{
		scaled("NoRD", 16, 1, 100),
		scaled("NoRD", 16, 4, 30),
		scaled("No_PG", 16, 4, 30),
	}}
	scur := &KernelReport{Points: []KernelPoint{
		scaled("NoRD", 16, 1, 110), // fine
		// whole (16, 4) group absent: not flagged
	}}
	if bad, _ := scur.CompareBaseline(sbase, 0.75); len(bad) != 0 {
		t.Fatalf("uncovered (width, parallelism) group flagged %v", bad)
	}
	scur.Points = append(scur.Points, scaled("NoRD", 16, 4, 31))
	sbase.HostCPUs, scur.HostCPUs = 8, 8
	bad, _ = scur.CompareBaseline(sbase, 0.75)
	if len(bad) != 1 || !strings.Contains(bad[0], "No_PG") || !strings.Contains(bad[0], "missing") {
		t.Fatalf("dropped cell in covered group not flagged: %v", bad)
	}
}

// TestCompareBaselineHostCPUs covers the baseline blind spot: a P>1
// timing is only compared when both the baseline and this run were
// captured on hosts with at least P CPUs — a 1-CPU container's "speedup"
// is honest serialization, not a kernel regression. The skip emits a
// notice (logged, never a silent pass); an unknown host count (baseline
// written before the field existed) also skips.
func TestCompareBaselineHostCPUs(t *testing.T) {
	scaled := func(design string, w, par int, ns float64) KernelPoint {
		return KernelPoint{Design: design, Rate: 0.10, Width: w, Height: w, Parallelism: par, NsPerCycle: ns}
	}
	base := &KernelReport{HostCPUs: 1, Points: []KernelPoint{
		scaled("NoRD", 16, 1, 100),
		scaled("NoRD", 16, 4, 400), // serialized on the 1-CPU capture host
	}}
	cur := &KernelReport{HostCPUs: 8, Points: []KernelPoint{
		scaled("NoRD", 16, 1, 100),
		scaled("NoRD", 16, 4, 9000), // would be a 22x "regression" if compared
	}}
	bad, notices := cur.CompareBaseline(base, 0.75)
	if len(bad) != 0 {
		t.Fatalf("P=4 timing compared against a 1-CPU baseline: %v", bad)
	}
	if len(notices) != 1 || !strings.Contains(notices[0], "P=4") || !strings.Contains(notices[0], "not compared") {
		t.Fatalf("skip did not produce a notice: %v", notices)
	}

	// Unknown baseline host (pre-field file): same skip, noticed.
	base.HostCPUs = 0
	if bad, notices := cur.CompareBaseline(base, 0.75); len(bad) != 0 || len(notices) != 1 {
		t.Fatalf("unknown-host baseline: bad=%v notices=%v", bad, notices)
	}

	// Both hosts capable: the comparison bites again, no notice.
	base.HostCPUs = 8
	bad, notices = cur.CompareBaseline(base, 0.75)
	if len(bad) != 1 || !strings.Contains(bad[0], "P=4") {
		t.Fatalf("capable hosts must compare P>1 timings: bad=%v", bad)
	}
	if len(notices) != 0 {
		t.Fatalf("unexpected notices: %v", notices)
	}

	// The serial point is always compared regardless of CPU counts.
	cur.Points[0].NsPerCycle = 1000
	base.HostCPUs = 1
	if bad, _ := cur.CompareBaseline(base, 0.75); len(bad) != 1 || !strings.Contains(bad[0], "P=1") {
		t.Fatalf("serial regression must be flagged on any host: %v", bad)
	}
}

func TestLoadKernelReportRejectsEmpty(t *testing.T) {
	if _, err := LoadKernelReport(strings.NewReader(`{"points":[]}`)); err == nil {
		t.Fatal("expected an error for a baseline with no points")
	}
	if _, err := LoadKernelReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("expected an error for malformed JSON")
	}
}
