package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"nord/internal/fault"
	"nord/internal/noc"
	"nord/internal/topology"
	"nord/internal/traffic"
)

// DegradationConfig parameterises the graceful-degradation sweep: the
// same seeded traffic is run with 0..MaxFails permanently failed routers
// (plus optional transient faults) for each design, tabulating how
// delivery rate and latency degrade. NoRD keeps every node reachable over
// the bypass ring; conventional designs partition and their cells record
// a structured DeadlockError instead of crashing the sweep.
type DegradationConfig struct {
	Width, Height int
	// Topology selects the interconnect ("" = mesh, "torus", "cmesh");
	// Width and Height always size the router grid.
	Topology string
	Pattern  string
	Rate     float64
	Measure  int
	Seed     int64
	// MaxFails is the largest number of hard-failed routers (cells run
	// 0..MaxFails inclusive).
	MaxFails int
	// StuckOff / DropWakeups / CorruptLinks add that many transient
	// events to every non-zero-fault cell.
	StuckOff     int
	DropWakeups  int
	CorruptLinks int
	// Designs defaults to the full comparison set.
	Designs []noc.Design
	// WatchdogLimit lowers the deadlock horizon so partitioned cells fail
	// fast (0 = 5000 cycles; partitions stall completely, so a short
	// horizon is safe).
	WatchdogLimit int
}

func (c *DegradationConfig) fill() {
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Height == 0 {
		c.Height = 8
	}
	if c.Pattern == "" {
		c.Pattern = "uniform"
	}
	if c.Rate == 0 {
		c.Rate = 0.05
	}
	if c.Measure == 0 {
		c.Measure = 30_000
	}
	if c.MaxFails == 0 {
		c.MaxFails = 6
	}
	if len(c.Designs) == 0 {
		c.Designs = FullDesigns()
	}
	if c.WatchdogLimit == 0 {
		c.WatchdogLimit = 5_000
	}
}

// DegradationPoint is one (design, hard-fail count) cell of the sweep.
type DegradationPoint struct {
	Design    noc.Design
	HardFails int
	// Delivered is the fraction of unique injected payloads delivered
	// (retransmissions folded in).
	Delivered   float64
	AvgLatency  float64
	Retransmits uint64
	Watchdog    uint64 // PG-watchdog forced wakeups
	RoutersLost int
	PacketsLost uint64
	// Err is the structured failure of cells that could not complete
	// (e.g. conventional designs partitioned by the failed routers).
	Err string
}

// DegradationSweep runs the graceful-degradation experiment. Cells run
// concurrently; a cell that fails at runtime (partition, deadlock)
// records its error and the sweep continues, while configuration errors
// — which would fail every cell identically — abort the sweep upfront.
// The same Seed produces the same fault schedules, so designs are
// compared under identical fault sequences.
func DegradationSweep(c DegradationConfig) ([]DegradationPoint, error) {
	c.fill()
	if _, err := traffic.PatternByName(c.Pattern); err != nil {
		return nil, err
	}
	// An unknown topology would fail every cell identically; reject upfront.
	if _, err := topology.KindByName(c.Topology); err != nil {
		return nil, err
	}
	if c.MaxFails < 0 {
		return nil, fmt.Errorf("sim: negative MaxFails %d", c.MaxFails)
	}
	type job struct {
		idx    int
		design noc.Design
		fails  int
	}
	var jobs []job
	for _, d := range c.Designs {
		for k := 0; k <= c.MaxFails; k++ {
			jobs = append(jobs, job{idx: len(jobs), design: d, fails: k})
		}
	}
	out := make([]DegradationPoint, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fc := &fault.Config{
				Seed:      c.Seed,
				HardFails: j.fails,
			}
			if j.fails > 0 {
				fc.StuckOff = c.StuckOff
				fc.DropWakeups = c.DropWakeups
				fc.CorruptLinks = c.CorruptLinks
			}
			r, err := runGuarded(func() (Result, error) {
				return RunSynthetic(SynthConfig{
					Design: j.design, Width: c.Width, Height: c.Height,
					Topology: c.Topology,
					Pattern:  c.Pattern, Rate: c.Rate, Measure: c.Measure,
					Seed: c.Seed, Faults: fc, WatchdogLimit: c.WatchdogLimit,
				})
			})
			pt := DegradationPoint{Design: j.design, HardFails: j.fails}
			if fr := r.Fault; fr != nil {
				pt.Delivered = fr.DeliveredFraction()
				pt.Retransmits = fr.Retransmits
				pt.Watchdog = fr.WatchdogWakeups
				pt.RoutersLost = fr.RoutersLost
				pt.PacketsLost = fr.PacketsLost
			}
			pt.AvgLatency = r.AvgPacketLatency
			if err != nil {
				pt.Err = err.Error()
			}
			out[j.idx] = pt
		}(j)
	}
	wg.Wait()
	return out, nil
}

// FormatDegradation renders the sweep as a text table: one block per
// design, delivery rate and latency against the number of failed routers.
func FormatDegradation(pts []DegradationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %10s %10s %8s %9s %6s  %s\n",
		"design", "fails", "delivered", "latency", "retx", "watchdog", "lost", "status")
	for _, p := range pts {
		status := "ok"
		if p.Err != "" {
			// First line of the (possibly multi-line) deadlock report.
			status = strings.SplitN(p.Err, "\n", 2)[0]
		}
		fmt.Fprintf(&b, "%-12s %6d %9.2f%% %10.2f %8d %9d %6d  %s\n",
			p.Design, p.HardFails, 100*p.Delivered, p.AvgLatency,
			p.Retransmits, p.Watchdog, p.PacketsLost, status)
	}
	return b.String()
}
