package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nord/internal/memsys"
	"nord/internal/noc"
	"nord/internal/power"
	"nord/internal/topology"
)

// FullDesigns is the paper's comparison set in presentation order.
func FullDesigns() []noc.Design {
	return []noc.Design{noc.NoPG, noc.ConvPG, noc.ConvPGOpt, noc.NoRD}
}

// SweepDesigns is the subset plotted in the load sweeps (Figures 14, 15).
func SweepDesigns() []noc.Design {
	return []noc.Design{noc.NoPG, noc.ConvPGOpt, noc.NoRD}
}

// Benchmarks returns the PARSEC-like workload names in the paper's order.
func Benchmarks() []string {
	names := make([]string, 0, 10)
	for _, p := range memsys.Profiles() {
		names = append(names, p.Name)
	}
	return names
}

// ---------------------------------------------------------------------
// Figure 1: static power share and router power decomposition.

// TechPoint is one bar of Figure 1(a).
type TechPoint struct {
	NodeNM      int
	Voltage     float64
	StaticShare float64
}

// Fig1aStaticShare computes the static-power share of total router power
// for the paper's nine technology points (Figure 1a).
func Fig1aStaticShare() ([]TechPoint, error) {
	var out []TechPoint
	for _, node := range []int{65, 45, 32} {
		for _, v := range []float64{1.2, 1.1, 1.0} {
			m, err := power.New(power.Tech{NodeNM: node, Voltage: v, FreqGHz: 3.0})
			if err != nil {
				return nil, err
			}
			out = append(out, TechPoint{NodeNM: node, Voltage: v, StaticShare: m.StaticShareAtReferenceLoad()})
		}
	}
	return out, nil
}

// Fig1bBreakdown returns the router power decomposition at 45nm/1.0V
// (Figure 1b) as ordered (component, fraction) pairs.
func Fig1bBreakdown() ([]string, []float64, error) {
	m, err := power.New(power.Tech{NodeNM: 45, Voltage: 1.0, FreqGHz: 3.0})
	if err != nil {
		return nil, nil, err
	}
	frac := m.BreakdownAtReferenceLoad()
	keys := []string{"dynamic", "buffer_static", "va_static", "xbar_static", "clock_static", "sa_static"}
	vals := make([]float64, len(keys))
	for i, k := range keys {
		vals[i] = frac[k]
	}
	return keys, vals, nil
}

// ---------------------------------------------------------------------
// Figure 3 / Section 3.2: idle-period fragmentation.

// IdleRow summarises one benchmark's router idleness under No_PG.
type IdleRow struct {
	Benchmark string
	IdleFrac  float64 // fraction of router-cycles idle (30-70% band)
	LEBETFrac float64 // fraction of idle periods <= BET (paper: >61% avg)
	MeanIdle  float64 // mean idle-period length in cycles
}

// Fig3IdlePeriods measures idle-period fragmentation across the
// PARSEC-like suite on the No_PG baseline.
func Fig3IdlePeriods(scale float64, seed int64) ([]IdleRow, error) {
	var rows []IdleRow
	for _, b := range Benchmarks() {
		r, err := RunWorkload(WorkloadConfig{Design: noc.NoPG, Benchmark: b, Scale: scale, Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, IdleRow{
			Benchmark: b,
			IdleFrac:  r.IdleFraction,
			LEBETFrac: r.IdleLEBET,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Figure 6: planner trade-off.

// Fig6Tradeoff returns the Figure 6 curve for the paper's 4x4 mesh and
// the selected performance-centric router set.
func Fig6Tradeoff() ([]topology.TradeoffPoint, []int, error) {
	mesh, err := topology.NewMesh(4, 4)
	if err != nil {
		return nil, nil, err
	}
	ring, err := topology.NewRing(mesh)
	if err != nil {
		return nil, nil, err
	}
	pl := topology.NewPlanner(mesh, ring)
	pts, err := pl.Tradeoff()
	if err != nil {
		return nil, nil, err
	}
	set, err := PerfCentricSet(4, 4)
	if err != nil {
		return nil, nil, err
	}
	return pts, set, nil
}

// ---------------------------------------------------------------------
// Figure 7: wakeup-threshold determination on the pure bypass ring.

// Fig7Point is one measurement with every router forced asleep.
type Fig7Point struct {
	Rate        float64
	AvgLatency  float64
	Throughput  float64
	VCReqWindow float64 // mean VC requests per 10-cycle window
}

// Fig7WakeupThreshold sweeps injection rate with all routers forced off
// (traffic concentrated on the Bypass Ring) and records latency and the
// windowed VC-request metric, reproducing the Section 6.1 methodology.
func Fig7WakeupThreshold(rates []float64, measure int, seed int64) ([]Fig7Point, error) {
	var out []Fig7Point
	for _, rate := range rates {
		r, err := RunSynthetic(SynthConfig{
			Design: noc.NoRD, ForcedOff: true, Rate: rate,
			Measure: measure, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig7Point{
			Rate:        rate,
			AvgLatency:  r.AvgPacketLatency,
			Throughput:  r.Throughput,
			VCReqWindow: r.VCReqWindow,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figures 8-12: the PARSEC-like suite across the four designs.

// SuiteResult holds one Result per (benchmark, design).
type SuiteResult struct {
	Benchmarks []string
	Results    map[string]map[noc.Design]Result
}

// RunSuite executes the full PARSEC-like suite across all four designs.
func RunSuite(scale float64, seed int64, progress func(string)) (*SuiteResult, error) {
	sr := &SuiteResult{Benchmarks: Benchmarks(), Results: map[string]map[noc.Design]Result{}}
	for _, b := range sr.Benchmarks {
		sr.Results[b] = map[noc.Design]Result{}
		for _, d := range FullDesigns() {
			if progress != nil {
				progress(fmt.Sprintf("%s / %s", b, d))
			}
			r, err := RunWorkload(WorkloadConfig{Design: d, Benchmark: b, Scale: scale, Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("sim: %s on %v: %w", b, d, err)
			}
			sr.Results[b][d] = r
		}
	}
	return sr, nil
}

// Fig8StaticEnergy returns router static energy normalised to No_PG per
// benchmark per design, plus the per-design average (Figure 8: the paper
// reports Conv_PG ~48.8%, Conv_PG_OPT ~53.0%, NoRD ~37.1% of No_PG).
func (sr *SuiteResult) Fig8StaticEnergy() (map[string]map[noc.Design]float64, map[noc.Design]float64) {
	return sr.normalised(func(r Result) float64 { return r.StaticEnergy() }, noc.NoPG)
}

// Fig9aOverheadEnergy returns power-gating overhead energy normalised to
// Conv_PG (Figure 9a: NoRD reduces it by ~80.7%).
func (sr *SuiteResult) Fig9aOverheadEnergy() (map[string]map[noc.Design]float64, map[noc.Design]float64) {
	return sr.normalised(func(r Result) float64 { return r.Energy.PGOverhead }, noc.ConvPG)
}

// Fig9bWakeups returns wakeup counts normalised to Conv_PG (Figure 9b:
// NoRD cuts wakeups by ~81%).
func (sr *SuiteResult) Fig9bWakeups() (map[string]map[noc.Design]float64, map[noc.Design]float64) {
	return sr.normalised(func(r Result) float64 { return float64(r.Wakeups) }, noc.ConvPG)
}

// Fig10Breakdown returns the five Figure 10 energy bands per benchmark
// per design, normalised to the No_PG total of the same benchmark.
func (sr *SuiteResult) Fig10Breakdown() map[string]map[noc.Design]power.Breakdown {
	out := map[string]map[noc.Design]power.Breakdown{}
	for _, b := range sr.Benchmarks {
		base := sr.Results[b][noc.NoPG].Energy.Total()
		out[b] = map[noc.Design]power.Breakdown{}
		for d, r := range sr.Results[b] {
			e := r.Energy
			if base > 0 {
				e.RouterStatic /= base
				e.RouterDynamic /= base
				e.LinkStatic /= base
				e.LinkDynamic /= base
				e.PGOverhead /= base
			}
			out[b][d] = e
		}
	}
	return out
}

// Fig11Latency returns average packet latency per benchmark per design
// (Figure 11: Conv_PG +63.8%, OPT +41.5%, NoRD +15.2% over No_PG).
func (sr *SuiteResult) Fig11Latency() map[string]map[noc.Design]float64 {
	out := map[string]map[noc.Design]float64{}
	for _, b := range sr.Benchmarks {
		out[b] = map[noc.Design]float64{}
		for d, r := range sr.Results[b] {
			out[b][d] = r.AvgPacketLatency
		}
	}
	return out
}

// LatencyIncreaseAvg returns the average latency increase of each design
// over No_PG across the suite.
func (sr *SuiteResult) LatencyIncreaseAvg() map[noc.Design]float64 {
	sum := map[noc.Design]float64{}
	for _, b := range sr.Benchmarks {
		base := sr.Results[b][noc.NoPG].AvgPacketLatency
		for d, r := range sr.Results[b] {
			if base > 0 {
				sum[d] += r.AvgPacketLatency/base - 1
			}
		}
	}
	for d := range sum {
		sum[d] /= float64(len(sr.Benchmarks))
	}
	return sum
}

// Fig12ExecTime returns execution time normalised to No_PG (Figure 12:
// Conv_PG +11.7%, OPT +8.1%, NoRD +3.9%).
func (sr *SuiteResult) Fig12ExecTime() (map[string]map[noc.Design]float64, map[noc.Design]float64) {
	return sr.normalised(func(r Result) float64 { return float64(r.ExecTime) }, noc.NoPG)
}

// normalised divides a metric by the reference design's value per
// benchmark and returns per-benchmark maps plus per-design averages.
// A non-positive reference (e.g. a degenerate run that delivered zero
// flits) marks the whole benchmark row NaN instead of silently
// reporting 0 — a 0 reads as "this design eliminated the metric", which
// is a very different claim from "the baseline measured nothing". NaN
// rows are excluded from the per-design averages; a design with no
// valid rows averages to NaN.
func (sr *SuiteResult) normalised(metric func(Result) float64, ref noc.Design) (map[string]map[noc.Design]float64, map[noc.Design]float64) {
	rows := map[string]map[noc.Design]float64{}
	sum := map[noc.Design]float64{}
	cnt := map[noc.Design]int{}
	seen := map[noc.Design]bool{}
	for _, b := range sr.Benchmarks {
		base := metric(sr.Results[b][ref])
		rows[b] = map[noc.Design]float64{}
		for d, r := range sr.Results[b] {
			seen[d] = true
			if base <= 0 {
				rows[b][d] = math.NaN()
				continue
			}
			v := metric(r) / base
			rows[b][d] = v
			sum[d] += v
			cnt[d]++
		}
	}
	avg := map[noc.Design]float64{}
	for d := range seen {
		if cnt[d] == 0 {
			avg[d] = math.NaN()
			continue
		}
		avg[d] = sum[d] / float64(cnt[d])
	}
	return rows, avg
}

// ---------------------------------------------------------------------
// Figure 13: impact of wakeup latency.

// Fig13Point is average latency at one wakeup latency for one design.
type Fig13Point struct {
	Design        noc.Design
	WakeupLatency int
	AvgLatency    float64
}

// Fig13WakeupLatency sweeps the wakeup latency (paper: 9..18 cycles) at
// the PARSEC-average load under uniform random traffic. NoRD's curve
// stays flat; the conventional designs degrade (Figure 13).
func Fig13WakeupLatency(lats []int, rate float64, measure int, seed int64) ([]Fig13Point, error) {
	var out []Fig13Point
	for _, d := range []noc.Design{noc.ConvPG, noc.ConvPGOpt, noc.NoRD} {
		for _, wl := range lats {
			r, err := RunSynthetic(SynthConfig{
				Design: d, Rate: rate, WakeupLatency: wl,
				Measure: measure, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig13Point{Design: d, WakeupLatency: wl, AvgLatency: r.AvgPacketLatency})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figures 14 and 15: full load-range sweeps.

// SweepPoint is one (design, rate) measurement of a load sweep.
type SweepPoint struct {
	Design     noc.Design
	Rate       float64
	AvgLatency float64
	PowerW     float64
	Throughput float64
	Saturated  bool // latency beyond the saturation criterion
	// Err records a failed point (deadlock, protocol violation, panic) in
	// a resilient parallel sweep; the other fields are zero when set.
	Err string
}

// satLatency is the latency at which a sweep point is labelled saturated.
const satLatency = 300

// LoadSweep measures latency and NoC power across the load range for the
// sweep designs (Figures 14 and 15).
func LoadSweep(w, h int, pattern string, rates []float64, measure int, seed int64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, d := range SweepDesigns() {
		for _, rate := range rates {
			r, err := RunSynthetic(SynthConfig{
				Design: d, Width: w, Height: h, Pattern: pattern,
				Rate: rate, Measure: measure, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, SweepPoint{
				Design:     d,
				Rate:       rate,
				AvgLatency: r.AvgPacketLatency,
				PowerW:     r.AvgPowerW,
				Throughput: r.Throughput,
				Saturated:  r.AvgPacketLatency > satLatency,
			})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Section 6.8: area.

// AreaRow is one design's router area.
type AreaRow struct {
	Design  noc.Design
	AreaMM2 float64
	VsNoPG  float64
	VsOpt   float64
}

// AreaTable computes the Section 6.8 area comparison at 45nm.
func AreaTable() ([]AreaRow, error) {
	m, err := power.New(power.DefaultTech())
	if err != nil {
		return nil, err
	}
	base := m.RouterArea(power.DesignNoPG).Total()
	opt := m.RouterArea(power.DesignConvPGOpt).Total()
	var rows []AreaRow
	for i, d := range []power.Design{power.DesignNoPG, power.DesignConvPG, power.DesignConvPGOpt, power.DesignNoRD} {
		a := m.RouterArea(d).Total()
		rows = append(rows, AreaRow{
			Design:  FullDesigns()[i],
			AreaMM2: a,
			VsNoPG:  a/base - 1,
			VsOpt:   a/opt - 1,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Formatting helpers shared by the CLI tools.

// FormatMatrix renders per-benchmark × per-design values as a text table.
func FormatMatrix(title string, rows map[string]map[noc.Design]float64, order []string, avg map[noc.Design]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s", "benchmark")
	for _, d := range FullDesigns() {
		fmt.Fprintf(&b, "%14s", d)
	}
	b.WriteString("\n")
	names := order
	if names == nil {
		names = make([]string, 0, len(rows))
		for k := range rows {
			names = append(names, k)
		}
		sort.Strings(names)
	}
	for _, name := range names {
		fmt.Fprintf(&b, "%-14s", name)
		for _, d := range FullDesigns() {
			fmt.Fprintf(&b, "%14.3f", rows[name][d])
		}
		b.WriteString("\n")
	}
	if avg != nil {
		fmt.Fprintf(&b, "%-14s", "AVG")
		for _, d := range FullDesigns() {
			fmt.Fprintf(&b, "%14.3f", avg[d])
		}
		b.WriteString("\n")
	}
	return b.String()
}
