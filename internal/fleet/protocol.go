package fleet

import (
	"encoding/json"

	"nord/internal/serve"
	"nord/internal/stats"
)

// The fleet wire protocol: four POST endpoints under /fleet/v1/, JSON
// bodies both ways. Workers are clients only — the coordinator never
// dials a worker, so workers behind NAT or ephemeral containers work
// unchanged.

// RegisterRequest announces a worker (idempotent; re-registration after
// a coordinator restart is the expected recovery path).
type RegisterRequest struct {
	WorkerID string `json:"worker_id"`
	Slots    int    `json:"slots,omitempty"`
}

// RegisterResponse hands the worker the fleet timings it must honor.
type RegisterResponse struct {
	LeaseTTLMs  int64 `json:"lease_ttl_ms"`
	HeartbeatMs int64 `json:"heartbeat_ms"`
	PollWaitMs  int64 `json:"poll_wait_ms"`
}

// LeaseRequest asks for one job, parking up to WaitMs when the queue is
// empty (bounded server-side by Options.PollWait).
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	WaitMs   int64  `json:"wait_ms,omitempty"`
}

// LeaseGrant is a leased job: the original submission body plus the
// lease identity the worker must present on every heartbeat and on the
// result report.
type LeaseGrant struct {
	JobID string `json:"job_id"`
	Lease string `json:"lease"`
	// Key is the job's content-addressed cache key: the worker probes the
	// shared cache tier (GET /v1/cache/{key}) before simulating and writes
	// its result back after.
	Key string `json:"key,omitempty"`
	// Attempt is 1 for the first execution of this job.
	Attempt int `json:"attempt"`
	// DeadlineMs is the per-execution wall-clock budget (0 = unbounded).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Request is the job's original POST /v1/jobs body.
	Request json.RawMessage `json:"request"`
}

// HeartbeatRequest extends a lease and optionally carries the latest
// progress snapshot for the job's /events subscribers.
type HeartbeatRequest struct {
	WorkerID string          `json:"worker_id"`
	JobID    string          `json:"job_id"`
	Lease    string          `json:"lease"`
	Progress *stats.Progress `json:"progress,omitempty"`
}

// Heartbeat and result statuses.
const (
	// StatusOK: lease extended, keep going.
	StatusOK = "ok"
	// StatusLost: the lease is no longer current (expired and requeued,
	// or the job is gone). The worker must abandon the run and must not
	// report a result.
	StatusLost = "lost"
	// StatusCanceled: the client canceled the job. The worker cancels
	// the run's context and reports a canceled outcome.
	StatusCanceled = "canceled"
	// StatusAccepted: the result was recorded.
	StatusAccepted = "accepted"
	// StatusStale: the result arrived under a superseded lease and was
	// discarded.
	StatusStale = "stale"
	// StatusUnknown: the job is not (or no longer) tracked.
	StatusUnknown = "unknown"
	// StatusRequeued: the worker's give-back was accepted and the job
	// returned to the queue.
	StatusRequeued = "requeued"
)

// HeartbeatResponse reports the lease's standing.
type HeartbeatResponse struct {
	Status string `json:"status"`
}

// ResultRequest reports a finished (or given-back) execution.
type ResultRequest struct {
	WorkerID string `json:"worker_id"`
	JobID    string `json:"job_id"`
	Lease    string `json:"lease"`
	// Requeue gives the job back unfinished (graceful worker shutdown
	// mid-run): the coordinator requeues it instead of finalising.
	Requeue bool                `json:"requeue,omitempty"`
	Outcome serve.RemoteOutcome `json:"outcome"`
	// CachePutRetries and CacheTierErrors report this execution's cache
	// tier friction: write-back attempts that had to be retried, and tier
	// requests that errored outright. The coordinator folds them into its
	// metrics and uses recent tier errors to report a degraded /healthz —
	// a flaky tier never fails a job, but it must not stay invisible.
	CachePutRetries int `json:"cache_put_retries,omitempty"`
	CacheTierErrors int `json:"cache_tier_errors,omitempty"`
}

// ResultResponse acknowledges a result report.
type ResultResponse struct {
	Status string `json:"status"`
}
