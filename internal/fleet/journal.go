package fleet

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// The job journal is the coordinator's write-ahead log: every submission,
// lease grant, requeue and terminal transition is appended as one
// checksummed NDJSON record before the in-memory state machine moves on.
// A SIGKILLed coordinator replays the journal on the next start, restores
// already-terminal jobs (serving their results straight from the
// content-addressed cache) and requeues everything that was open when the
// process died — the fleet analogue of NoRD's claim that the network
// survives the loss of any single router.
//
// On-disk layout under the journal directory:
//
//	journal.log   append-only records: "%08x %s\n" — CRC32(IEEE) of the
//	              JSON payload, a space, the payload. A torn final line
//	              (crash mid-append) fails its checksum and replay stops
//	              there: everything before the tear is intact by
//	              construction.
//	snapshot      materialized state: "nordsnap1 <hex sha256 of body>\n"
//	              followed by the JSON body. Written to a temp file,
//	              fsynced, then atomically renamed; the log is truncated
//	              only after the rename lands, so a crash at any point
//	              leaves a recoverable (snapshot, log-suffix) pair.
//
// Replay = load snapshot (if any) + fold the log over it. The journal
// compacts on open and on clean close, so the log never grows across
// crash loops.

// journal record types.
const (
	recSubmit  = "submit"
	recLease   = "lease"
	recRequeue = "requeue"
	recTerm    = "term"
)

// snapMagic heads the snapshot file, followed by the hex sha256 of the
// JSON body and a newline (same shape as the cache spill header).
const snapMagic = "nordsnap1 "

// journalRecord is one WAL line.
type journalRecord struct {
	T       string          `json:"t"`
	Job     string          `json:"job,omitempty"`
	Key     string          `json:"key,omitempty"`
	Req     json.RawMessage `json:"req,omitempty"`
	Epoch   uint64          `json:"epoch,omitempty"`
	Worker  string          `json:"worker,omitempty"`
	Attempt int             `json:"attempt,omitempty"`
	State   string          `json:"state,omitempty"`
	Err     string          `json:"err,omitempty"`
}

// RecoveredJob is one job's materialized journal state, handed to the
// coordinator on startup. State is "open" for jobs that must requeue, or
// a terminal serve.JobState string ("done", "failed", "canceled").
type RecoveredJob struct {
	ID      string          `json:"id"`
	Key     string          `json:"key"`
	Req     json.RawMessage `json:"req"`
	Attempt int             `json:"attempt,omitempty"`
	State   string          `json:"state"`
	Err     string          `json:"err,omitempty"`
	// Seq orders jobs by first submission, so recovery requeues in the
	// original arrival order.
	Seq uint64 `json:"seq"`
}

// JobStateOpen marks a journaled job that has not reached a terminal
// state: recovery must requeue it.
const JobStateOpen = "open"

// journalState is the snapshot body.
type journalState struct {
	Epoch uint64          `json:"epoch"`
	Seq   uint64          `json:"seq"`
	Jobs  []*RecoveredJob `json:"jobs"`
}

// Journal is the coordinator's crash-durability log. All methods are
// nil-receiver safe so an undurable coordinator (no journal configured)
// costs one nil check per call site.
type Journal struct {
	mu        sync.Mutex
	dir       string
	f         *os.File
	w         *bufio.Writer
	snapEvery int
	retain    int
	sinceSnap int
	broken    bool // first append/snapshot error wedges durability (never correctness)

	epoch uint64
	seq   uint64
	jobs  map[string]*RecoveredJob

	recovered []RecoveredJob // state observed at Open, before new appends

	// Counters exposed through the coordinator's /metrics series.
	appends         atomic.Uint64
	appendErrors    atomic.Uint64
	snapshots       atomic.Uint64
	replayedRecords atomic.Uint64
	tornTails       atomic.Uint64
	dupTerms        atomic.Uint64
}

// JournalOptions tunes a Journal.
type JournalOptions struct {
	// SnapEvery is the number of appended records between snapshot
	// compactions (default 256).
	SnapEvery int
	// RetainTerminal bounds how many terminal jobs the materialized state
	// keeps (oldest evicted first; default 4096). Open jobs are never
	// evicted.
	RetainTerminal int
}

// OpenJournal opens (or creates) the journal under dir, replays the
// snapshot + log into the materialized state, and compacts immediately so
// repeated crash/restart cycles never grow the log without bound.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	if opts.SnapEvery <= 0 {
		opts.SnapEvery = 256
	}
	if opts.RetainTerminal <= 0 {
		opts.RetainTerminal = 4096
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: creating journal dir: %w", err)
	}
	jl := &Journal{
		dir:       dir,
		snapEvery: opts.SnapEvery,
		retain:    opts.RetainTerminal,
		jobs:      map[string]*RecoveredJob{},
	}
	jl.loadSnapshot()
	jl.replayLog()
	jl.recovered = jl.stateLocked()
	// Compact: fold everything replayed into a fresh snapshot and start
	// with an empty log. A failure here degrades durability, not startup.
	if err := jl.compactLocked(); err != nil {
		jl.broken = true
	}
	f, err := os.OpenFile(jl.logPath(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: opening journal log: %w", err)
	}
	jl.f = f
	jl.w = bufio.NewWriter(f)
	return jl, nil
}

func (jl *Journal) logPath() string  { return filepath.Join(jl.dir, "journal.log") }
func (jl *Journal) snapPath() string { return filepath.Join(jl.dir, "snapshot") }

// loadSnapshot restores the materialized state from the snapshot file.
// A missing, truncated or corrupt snapshot is treated as empty: the
// snapshot is only ever written atomically, so this is bit rot, not a
// crash artifact.
func (jl *Journal) loadSnapshot() {
	data, err := os.ReadFile(jl.snapPath())
	if err != nil {
		return
	}
	headerLen := len(snapMagic) + sha256.Size*2 + 1
	if len(data) < headerLen || !bytes.HasPrefix(data, []byte(snapMagic)) || data[headerLen-1] != '\n' {
		return
	}
	body := data[headerLen:]
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != string(data[len(snapMagic):headerLen-1]) {
		return
	}
	var st journalState
	if err := json.Unmarshal(body, &st); err != nil {
		return
	}
	jl.epoch = st.Epoch
	jl.seq = st.Seq
	for _, j := range st.Jobs {
		jl.jobs[j.ID] = j
	}
}

// replayLog folds the log's records over the snapshot state, stopping
// silently at the first record that fails its checksum or does not parse
// — the torn tail of a crash mid-append.
func (jl *Journal) replayLog() {
	data, err := os.ReadFile(jl.logPath())
	if err != nil {
		return
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			jl.tornTails.Add(1) // crash mid-line: no trailing newline
			return
		}
		line := data[:nl]
		data = data[nl+1:]
		rec, ok := parseRecord(line)
		if !ok {
			jl.tornTails.Add(1)
			return
		}
		jl.foldLocked(rec)
		jl.replayedRecords.Add(1)
	}
}

// parseRecord decodes one "%08x %s" journal line, validating the CRC.
func parseRecord(line []byte) (*journalRecord, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return nil, false
	}
	var rec journalRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, false
	}
	return &rec, true
}

// foldLocked applies one record to the materialized state; jl.mu must be
// held (or the journal not yet shared).
func (jl *Journal) foldLocked(rec *journalRecord) {
	switch rec.T {
	case recSubmit:
		if _, ok := jl.jobs[rec.Job]; ok {
			return // duplicate submission record
		}
		jl.seq++
		jl.jobs[rec.Job] = &RecoveredJob{
			ID: rec.Job, Key: rec.Key, Req: rec.Req, State: JobStateOpen, Seq: jl.seq,
		}
	case recLease:
		if rec.Epoch > jl.epoch {
			jl.epoch = rec.Epoch
		}
		if j, ok := jl.jobs[rec.Job]; ok && j.State == JobStateOpen {
			j.Attempt = rec.Attempt
		}
	case recRequeue:
		// Informative only: the attempt count rides the lease records.
	case recTerm:
		j, ok := jl.jobs[rec.Job]
		if !ok {
			return // terminal for an evicted (or never-submitted) job
		}
		if j.State != JobStateOpen {
			jl.dupTerms.Add(1) // exactly-once: first terminal wins
			return
		}
		j.State = rec.State
		j.Err = rec.Err
		jl.evictTerminalLocked()
	}
}

// evictTerminalLocked drops the oldest terminal jobs beyond the retention
// bound; jl.mu must be held.
func (jl *Journal) evictTerminalLocked() {
	var term []*RecoveredJob
	for _, j := range jl.jobs {
		if j.State != JobStateOpen {
			term = append(term, j)
		}
	}
	if len(term) <= jl.retain {
		return
	}
	sort.Slice(term, func(i, k int) bool { return term[i].Seq < term[k].Seq })
	for _, j := range term[:len(term)-jl.retain] {
		delete(jl.jobs, j.ID)
	}
}

// stateLocked snapshots the materialized state sorted by submission
// order; jl.mu must be held (or the journal not yet shared).
func (jl *Journal) stateLocked() []RecoveredJob {
	out := make([]RecoveredJob, 0, len(jl.jobs))
	for _, j := range jl.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	return out
}

// Recovered returns the jobs materialized from the journal at Open time,
// in submission order — the coordinator's recovery worklist.
func (jl *Journal) Recovered() []RecoveredJob {
	if jl == nil {
		return nil
	}
	return jl.recovered
}

// Epoch returns the highest lease epoch ever journaled. The restarted
// coordinator resumes numbering above it so stale pre-crash leases can
// never collide with fresh grants.
func (jl *Journal) Epoch() uint64 {
	if jl == nil {
		return 0
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.epoch
}

// append folds rec into the state and writes it to the log (fsynced: the
// record must be durable before the state machine acts on it). A write
// error marks the journal broken — the coordinator keeps serving, only
// durability is lost — and is surfaced through the metrics.
func (jl *Journal) append(rec *journalRecord) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.foldLocked(rec)
	if jl.broken {
		jl.appendErrors.Add(1)
		return
	}
	payload, err := json.Marshal(rec)
	if err == nil {
		_, err = fmt.Fprintf(jl.w, "%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	}
	if err == nil {
		err = jl.w.Flush()
	}
	if err == nil {
		err = jl.f.Sync()
	}
	if err != nil {
		jl.appendErrors.Add(1)
		jl.broken = true
		return
	}
	jl.appends.Add(1)
	jl.sinceSnap++
	if jl.sinceSnap >= jl.snapEvery {
		if err := jl.compactLocked(); err != nil {
			jl.broken = true
		}
	}
}

// Submit journals a job's arrival in the fleet queue.
func (jl *Journal) Submit(jobID, key string, req []byte) {
	jl.append(&journalRecord{T: recSubmit, Job: jobID, Key: key, Req: json.RawMessage(req)})
}

// Lease journals a lease grant (epoch is the coordinator-unique lease
// number; attempt the per-job grant count).
func (jl *Journal) Lease(jobID string, epoch uint64, worker string, attempt int) {
	jl.append(&journalRecord{T: recLease, Job: jobID, Epoch: epoch, Worker: worker, Attempt: attempt})
}

// Requeue journals a lease expiry or give-back returning the job to the
// queue.
func (jl *Journal) Requeue(jobID string, attempt int) {
	jl.append(&journalRecord{T: recRequeue, Job: jobID, Attempt: attempt})
}

// Terminal journals a job's terminal transition. Duplicate terminals for
// the same job are tolerated on replay (first wins) — the late report of
// a stale lease may race a local retry's own terminal.
func (jl *Journal) Terminal(jobID, state, errMsg string) {
	jl.append(&journalRecord{T: recTerm, Job: jobID, State: state, Err: errMsg})
}

// compactLocked writes the materialized state as a fresh snapshot
// (temp + fsync + rename) and truncates the log; jl.mu must be held (or
// the journal not yet shared). Record ordering makes this safe: the
// snapshot strictly dominates every record it absorbed.
func (jl *Journal) compactLocked() error {
	st := journalState{Epoch: jl.epoch, Seq: jl.seq, Jobs: make([]*RecoveredJob, 0, len(jl.jobs))}
	for _, j := range jl.jobs {
		st.Jobs = append(st.Jobs, j)
	}
	sort.Slice(st.Jobs, func(i, k int) bool { return st.Jobs[i].Seq < st.Jobs[k].Seq })
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(body)
	f, err := os.CreateTemp(jl.dir, ".snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(append(append([]byte(snapMagic+hex.EncodeToString(sum[:])), '\n'), body...))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, jl.snapPath())
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	// The snapshot is durable; drop the absorbed log records.
	if jl.f != nil {
		jl.w.Flush()
		if err := jl.f.Truncate(0); err != nil {
			return err
		}
		if _, err := jl.f.Seek(0, 0); err != nil {
			return err
		}
	} else if err := os.WriteFile(jl.logPath(), nil, 0o644); err != nil {
		return err
	}
	jl.sinceSnap = 0
	jl.snapshots.Add(1)
	return nil
}

// Close compacts one final time and releases the log file. Safe on nil.
func (jl *Journal) Close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	var err error
	if !jl.broken {
		err = jl.compactLocked()
	}
	if jl.f != nil {
		jl.w.Flush()
		if cerr := jl.f.Close(); err == nil {
			err = cerr
		}
		jl.f = nil
	}
	return err
}

// disable wedges the journal (test seam emulating the instant of a
// SIGKILL: the dying process must stop appending while the restarted one
// owns the files).
func (jl *Journal) disable() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	jl.broken = true
	jl.mu.Unlock()
}

// Broken reports whether a journal write has failed since open; the
// coordinator surfaces it as a degraded (but alive) health state.
func (jl *Journal) Broken() bool {
	if jl == nil {
		return false
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.broken
}

// journalStats is the counter snapshot for /metrics.
type journalStats struct {
	appends, appendErrors, snapshots, replayed, tornTails, dupTerms uint64
}

func (jl *Journal) stats() journalStats {
	if jl == nil {
		return journalStats{}
	}
	return journalStats{
		appends:      jl.appends.Load(),
		appendErrors: jl.appendErrors.Load(),
		snapshots:    jl.snapshots.Load(),
		replayed:     jl.replayedRecords.Load(),
		tornTails:    jl.tornTails.Load(),
		dupTerms:     jl.dupTerms.Load(),
	}
}
