package fleet

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"nord/internal/serve"
)

// chaosEvent is one scheduled fault injection.
type chaosEvent struct {
	at     time.Duration // since schedule start
	kind   string        // "kill", "stall", "partition"
	target int           // worker index
	dur    time.Duration // outage length (stall/partition)
}

// chaosSchedule derives a deterministic fault schedule from seed: kills
// (process death: canceled run + permanently blackholed transport),
// stalls (short network outage, shorter than the lease TTL) and
// partitions (long outage, guaranteed to expire any held lease). Worker
// 0 is never killed so the fleet always retains capacity; each other
// worker dies at most once.
func chaosSchedule(seed int64, workers int, leaseTTL time.Duration) []chaosEvent {
	rng := rand.New(rand.NewSource(seed))
	kinds := []string{"stall", "partition", "kill", "stall", "kill", "partition"}
	var (
		events []chaosEvent
		at     time.Duration
		killed = map[int]bool{}
	)
	for _, kind := range kinds {
		at += leaseTTL/2 + time.Duration(rng.Int63n(int64(leaseTTL)))
		ev := chaosEvent{at: at, kind: kind}
		switch kind {
		case "kill":
			ev.target = 1 + rng.Intn(workers-1)
			if killed[ev.target] { // each worker dies once; retarget or skip
				ev.target = 1 + (ev.target % (workers - 1))
			}
			if killed[ev.target] {
				continue
			}
			killed[ev.target] = true
		case "stall":
			ev.target = rng.Intn(workers)
			ev.dur = leaseTTL/4 + time.Duration(rng.Int63n(int64(leaseTTL/2)))
		case "partition":
			ev.target = rng.Intn(workers)
			ev.dur = 2*leaseTTL + time.Duration(rng.Int63n(int64(leaseTTL)))
		}
		events = append(events, ev)
	}
	return events
}

// TestFleetChaosExactlyOnce is the ISSUE's chaos harness: a seeded
// kill/stall/partition schedule against a three-worker fleet, asserting
// that every submitted job reaches a terminal state exactly once and
// that every result is byte-identical to a single-process run. Run it
// under -race (the CI soak job does).
func TestFleetChaosExactlyOnce(t *testing.T) {
	const (
		seed     = 7
		nWorkers = 3
	)
	// LeaseTTL is generous relative to the heartbeat period (TTL/3) so
	// that CPU contention on small CI hosts cannot expire a healthy
	// worker's lease; only injected faults do.
	opts := Options{
		LeaseTTL:     1200 * time.Millisecond,
		PollWait:     200 * time.Millisecond,
		JanitorEvery: 50 * time.Millisecond,
		MaxAttempts:  12, // generous: chaos must delay jobs, never fail them
		RetryBase:    20 * time.Millisecond,
		RetryMax:     200 * time.Millisecond,
		LocalWorkers: 2,
		Seed:         seed,
	}
	tf := newTestFleet(t, opts, serve.Config{})
	workers := make([]*testWorker, nWorkers)
	for i := range workers {
		workers[i] = startWorker(t, tf, []string{"w0", "w1", "w2"}[i], int64(70+i))
	}
	waitWorkers(t, tf, nWorkers)

	// The job mix: mostly short runs plus two long ones that straddle
	// several chaos events regardless of host speed.
	var bodies []string
	for s := int64(1); s <= 6; s++ {
		bodies = append(bodies, synthJob(s, 80_000))
	}
	bodies = append(bodies, synthJob(9, 400_000), synthJob(10, 400_000))

	ids := make([]string, len(bodies))
	for i, body := range bodies {
		ids[i] = mustSubmit(t, tf, body)
	}

	// Run the fault schedule.
	start := time.Now()
	for _, ev := range chaosSchedule(seed, nWorkers, opts.LeaseTTL) {
		if d := ev.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		w := workers[ev.target]
		t.Logf("chaos +%s: %s %s (dur %s)", ev.at.Round(time.Millisecond), ev.kind, w.id, ev.dur)
		switch ev.kind {
		case "kill":
			w.chaos.kill()
			w.cancel()
		default:
			w.chaos.blockFor(ev.dur)
		}
	}

	// Every job must land in done — chaos may only slow them down.
	for _, id := range ids {
		waitJobState(t, tf, id, serve.JobDone, 180*time.Second)
	}
	// Reference results, computed in-process after the fleet phase (they
	// are deterministic, so ordering is irrelevant; running them later
	// keeps the CPU free for worker heartbeats during the chaos window).
	for i, id := range ids {
		st := getJob(t, tf, id)
		if !bytes.Equal(st.Result, localPayload(t, bodies[i])) {
			t.Errorf("job %s (%s): result diverged from single-process run", id, bodies[i])
		}
	}

	// Exactly-once terminal accounting: the counters only move on the
	// one finish() call that performs the transition, so any duplicate
	// or lost terminal state shows up as a count mismatch.
	m := tf.srv.Metrics()
	done, failed, canceled := m.JobsDone.Load(), m.JobsFailed.Load(), m.JobsCanceled.Load()
	if int(done) != len(bodies) || failed != 0 || canceled != 0 {
		t.Errorf("terminal accounting done=%d failed=%d canceled=%d, want %d/0/0",
			done, failed, canceled, len(bodies))
	}

	// The coordinator must end quiescent: no tracked jobs, no leases.
	tf.coord.mu.Lock()
	tracked, queued := len(tf.coord.jobs), len(tf.coord.queue)
	tf.coord.mu.Unlock()
	if tracked != 0 || queued != 0 {
		t.Errorf("coordinator not quiescent: %d tracked, %d queued", tracked, queued)
	}
	t.Logf("chaos run: %d leases, %d expiries, %d requeues, %d stale (%d accepted), %d local",
		tf.coord.leasesGranted.Load(), tf.coord.leaseExpiries.Load(), tf.coord.requeues.Load(),
		tf.coord.staleResults.Load(), tf.coord.staleAccepted.Load(), tf.coord.localJobs.Load())
}
