package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nord/internal/serve"
)

// chaosEvent is one scheduled fault injection.
type chaosEvent struct {
	at     time.Duration // since schedule start
	kind   string        // "kill", "stall", "partition"
	target int           // worker index
	dur    time.Duration // outage length (stall/partition)
}

// chaosSchedule derives a deterministic fault schedule from seed: kills
// (process death: canceled run + permanently blackholed transport),
// stalls (short network outage, shorter than the lease TTL) and
// partitions (long outage, guaranteed to expire any held lease). Worker
// 0 is never killed so the fleet always retains capacity; each other
// worker dies at most once.
func chaosSchedule(seed int64, workers int, leaseTTL time.Duration) []chaosEvent {
	rng := rand.New(rand.NewSource(seed))
	kinds := []string{"stall", "partition", "kill", "stall", "kill", "partition"}
	var (
		events []chaosEvent
		at     time.Duration
		killed = map[int]bool{}
	)
	for _, kind := range kinds {
		at += leaseTTL/2 + time.Duration(rng.Int63n(int64(leaseTTL)))
		ev := chaosEvent{at: at, kind: kind}
		switch kind {
		case "kill":
			ev.target = 1 + rng.Intn(workers-1)
			if killed[ev.target] { // each worker dies once; retarget or skip
				ev.target = 1 + (ev.target % (workers - 1))
			}
			if killed[ev.target] {
				continue
			}
			killed[ev.target] = true
		case "stall":
			ev.target = rng.Intn(workers)
			ev.dur = leaseTTL/4 + time.Duration(rng.Int63n(int64(leaseTTL/2)))
		case "partition":
			ev.target = rng.Intn(workers)
			ev.dur = 2*leaseTTL + time.Duration(rng.Int63n(int64(leaseTTL)))
		}
		events = append(events, ev)
	}
	return events
}

// TestFleetChaosExactlyOnce is the ISSUE's chaos harness: a seeded
// kill/stall/partition schedule against a three-worker fleet, asserting
// that every submitted job reaches a terminal state exactly once and
// that every result is byte-identical to a single-process run. Run it
// under -race (the CI soak job does).
func TestFleetChaosExactlyOnce(t *testing.T) {
	const (
		seed     = 7
		nWorkers = 3
	)
	// LeaseTTL is generous relative to the heartbeat period (TTL/3) so
	// that CPU contention on small CI hosts cannot expire a healthy
	// worker's lease; only injected faults do.
	opts := Options{
		LeaseTTL:     1200 * time.Millisecond,
		PollWait:     200 * time.Millisecond,
		JanitorEvery: 50 * time.Millisecond,
		MaxAttempts:  12, // generous: chaos must delay jobs, never fail them
		RetryBase:    20 * time.Millisecond,
		RetryMax:     200 * time.Millisecond,
		LocalWorkers: 2,
		Seed:         seed,
	}
	tf := newTestFleet(t, opts, serve.Config{})
	workers := make([]*testWorker, nWorkers)
	for i := range workers {
		workers[i] = startWorker(t, tf, []string{"w0", "w1", "w2"}[i], int64(70+i))
	}
	waitWorkers(t, tf, nWorkers)

	// The job mix: mostly short runs plus two long ones that straddle
	// several chaos events regardless of host speed.
	var bodies []string
	for s := int64(1); s <= 6; s++ {
		bodies = append(bodies, synthJob(s, 80_000))
	}
	bodies = append(bodies, synthJob(9, 400_000), synthJob(10, 400_000))

	ids := make([]string, len(bodies))
	for i, body := range bodies {
		ids[i] = mustSubmit(t, tf, body)
	}

	// Run the fault schedule.
	start := time.Now()
	for _, ev := range chaosSchedule(seed, nWorkers, opts.LeaseTTL) {
		if d := ev.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		w := workers[ev.target]
		t.Logf("chaos +%s: %s %s (dur %s)", ev.at.Round(time.Millisecond), ev.kind, w.id, ev.dur)
		switch ev.kind {
		case "kill":
			w.chaos.kill()
			w.cancel()
		default:
			w.chaos.blockFor(ev.dur)
		}
	}

	// Every job must land in done — chaos may only slow them down.
	for _, id := range ids {
		waitJobState(t, tf, id, serve.JobDone, 180*time.Second)
	}
	// Reference results, computed in-process after the fleet phase (they
	// are deterministic, so ordering is irrelevant; running them later
	// keeps the CPU free for worker heartbeats during the chaos window).
	for i, id := range ids {
		st := getJob(t, tf, id)
		if !bytes.Equal(st.Result, localPayload(t, bodies[i])) {
			t.Errorf("job %s (%s): result diverged from single-process run", id, bodies[i])
		}
	}

	// Exactly-once terminal accounting: the counters only move on the
	// one finish() call that performs the transition, so any duplicate
	// or lost terminal state shows up as a count mismatch.
	m := tf.srv.Metrics()
	done, failed, canceled := m.JobsDone.Load(), m.JobsFailed.Load(), m.JobsCanceled.Load()
	if int(done) != len(bodies) || failed != 0 || canceled != 0 {
		t.Errorf("terminal accounting done=%d failed=%d canceled=%d, want %d/0/0",
			done, failed, canceled, len(bodies))
	}

	// The coordinator must end quiescent: no tracked jobs, no leases.
	tf.coord.mu.Lock()
	tracked, queued := len(tf.coord.jobs), len(tf.coord.queue)
	tf.coord.mu.Unlock()
	if tracked != 0 || queued != 0 {
		t.Errorf("coordinator not quiescent: %d tracked, %d queued", tracked, queued)
	}
	t.Logf("chaos run: %d leases, %d expiries, %d requeues, %d stale (%d accepted), %d local",
		tf.coord.leasesGranted.Load(), tf.coord.leaseExpiries.Load(), tf.coord.requeues.Load(),
		tf.coord.staleResults.Load(), tf.coord.staleAccepted.Load(), tf.coord.localJobs.Load())
}

// ---- crash-durable coordinator harness ----

// durableFleet is the restartable counterpart of testFleet: a coordinator
// with a journal and a cache spill directory, listening on a real (fixed)
// address so a restarted incarnation can come back where its workers and
// clients expect it. crash() emulates SIGKILL; boot() after crash() is the
// recovery path under test.
type durableFleet struct {
	t          *testing.T
	opts       Options
	cfg        serve.Config
	addr       string // pinned after the first boot
	cacheDir   string
	journalDir string

	srv     *serve.Server
	coord   *Coordinator
	journal *Journal
	hsrv    *http.Server
	url     string
	crashed bool
}

func startDurableFleet(t *testing.T, opts Options, cfg serve.Config) *durableFleet {
	t.Helper()
	df := &durableFleet{
		t: t, opts: opts, cfg: cfg,
		cacheDir:   t.TempDir(),
		journalDir: t.TempDir(),
	}
	df.boot()
	t.Cleanup(df.shutdown)
	return df
}

// boot starts a fresh incarnation over the shared journal and cache
// directories (the first call picks the address, later calls rebind it).
func (df *durableFleet) boot() {
	t := df.t
	t.Helper()
	jl, err := OpenJournal(df.journalDir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := df.cfg
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = 64
	}
	if cfg.ProgressEvery == 0 {
		cfg.ProgressEvery = 2000
	}
	cfg.CacheDir = df.cacheDir
	opts := df.opts
	opts.Journal = jl
	var coord *Coordinator
	cfg.Dispatcher = func(s *serve.Server) serve.Dispatcher {
		coord = NewCoordinator(s, opts)
		return coord
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/fleet/", coord.Handler())
	mux.Handle("/", srv.Handler())
	addr := df.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 200 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	df.addr = ln.Addr().String()
	df.url = "http://" + df.addr
	df.srv, df.coord, df.journal = srv, coord, jl
	df.hsrv = &http.Server{Handler: mux}
	go func() { _ = df.hsrv.Serve(ln) }()
	df.crashed = false
	// Drop pooled keep-alive connections to the dead incarnation: Go's
	// transport does not retry non-idempotent requests on stale conns.
	http.DefaultClient.CloseIdleConnections()
}

// crash emulates SIGKILL as closely as one process can: the listener dies
// mid-connection, the janitor stops, and the journal is wedged so the
// dying incarnation can never append after the next one owns the files.
// Worker processes are untouched — they survive real coordinator crashes
// too, and their heartbeats against the restarted incarnation come back
// StatusLost, exactly like production.
func (df *durableFleet) crash() {
	df.hsrv.Close()
	df.coord.stopOnce.Do(func() { close(df.coord.stopJanitor) })
	df.journal.disable()
	df.crashed = true
}

// restart is crash-then-boot; callers that crashed already just boot().
func (df *durableFleet) restart() {
	df.t.Helper()
	if !df.crashed {
		df.crash()
	}
	df.boot()
}

func (df *durableFleet) shutdown() {
	df.hsrv.Close()
	if df.crashed {
		return // nothing graceful left in a crashed incarnation
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := df.srv.Shutdown(ctx); err != nil {
		df.t.Errorf("shutdown: %v", err)
	}
}

// tierPutURL writes payload into the remote cache tier with its digest.
func tierPutURL(t *testing.T, url, key string, payload []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url+"/v1/cache/"+key, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(payload)
	req.Header.Set(serve.SumHeader, hex.EncodeToString(sum[:]))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// healthzURL fetches /healthz and returns the HTTP code, the status field
// and the degraded notes.
func healthzURL(t *testing.T, url string) (int, string, []string) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status   string   `json:"status"`
		Degraded []string `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body.Status, body.Degraded
}

// hasNote reports whether any degraded note carries the given token.
func hasNote(notes []string, token string) bool {
	for _, n := range notes {
		if strings.HasPrefix(n, token) {
			return true
		}
	}
	return false
}

// TestCoordinatorCrashRestartMidJob is the tentpole's headline scenario:
// a journaled coordinator is killed while jobs are mid-flight on live
// workers, restarts on the same address over the same journal and cache
// directories, and every job — finished or not at the instant of death —
// reaches done exactly once with bytes identical to a single-process run.
// Clients keep polling their original job IDs across the crash and never
// learn it happened.
func TestCoordinatorCrashRestartMidJob(t *testing.T) {
	opts := Options{
		LeaseTTL:     1200 * time.Millisecond,
		PollWait:     200 * time.Millisecond,
		JanitorEvery: 50 * time.Millisecond,
		MaxAttempts:  12,
		RetryBase:    20 * time.Millisecond,
		RetryMax:     200 * time.Millisecond,
		LocalWorkers: 2,
		Seed:         11,
	}
	df := startDurableFleet(t, opts, serve.Config{})
	startWorkerURL(t, df.url, "w1", 111, "")
	startWorkerURL(t, df.url, "w2", 112, "")
	waitFor(t, 10*time.Second, "2 live workers", func() bool { return df.coord.Workers() >= 2 })

	// Three short jobs that finish before the crash, two long ones that
	// are mid-flight when it hits.
	bodies := []string{synthJob(41, 60_000), synthJob(42, 60_000), synthJob(43, 60_000),
		synthJob(44, 600_000), synthJob(45, 600_000)}
	ids := make([]string, len(bodies))
	for i, b := range bodies {
		ids[i] = mustSubmitURL(t, df.url, b)
	}
	for _, id := range ids[:3] {
		waitJobStateURL(t, df.url, id, serve.JobDone, 120*time.Second)
	}
	waitFor(t, 60*time.Second, "a long job running at the crash instant", func() bool {
		return getJobURL(t, df.url, ids[3]).State == serve.JobRunning ||
			getJobURL(t, df.url, ids[4]).State == serve.JobRunning
	})

	df.crash()
	df.boot()

	// Every job lands done on the restarted incarnation, byte-identical.
	for i, id := range ids {
		st := waitJobStateURL(t, df.url, id, serve.JobDone, 180*time.Second)
		if !bytes.Equal(st.Result, localPayload(t, bodies[i])) {
			t.Errorf("job %s: result diverged from single-process run after crash recovery", id)
		}
	}

	// Recovery accounting: everything journaled was either replayed
	// terminal or requeued — nothing lost, nothing invented — and at least
	// one job (a long one) was genuinely requeued and re-executed.
	replayed, requeued := df.coord.journalReplayed.Load(), df.coord.journalRequeued.Load()
	if replayed+requeued != uint64(len(bodies)) {
		t.Errorf("recovery split replayed=%d requeued=%d, want %d total", replayed, requeued, len(bodies))
	}
	if requeued == 0 {
		t.Error("no job was requeued on recovery despite crashing mid-flight")
	}
	if v := metricURL(t, df.url, "nord_fleet_journal_requeues_on_recovery_total"); uint64(v) != requeued {
		t.Errorf("nord_fleet_journal_requeues_on_recovery_total=%v, want %d", v, requeued)
	}

	// Exactly-once across the process boundary: the restarted incarnation
	// finished only the requeued jobs; replayed ones kept the dead
	// process's terminal transition (rehydrated, not re-run).
	m := df.srv.Metrics()
	if done, failed, canceled := m.JobsDone.Load(), m.JobsFailed.Load(), m.JobsCanceled.Load(); done != requeued || failed != 0 || canceled != 0 {
		t.Errorf("post-restart accounting done=%d failed=%d canceled=%d, want %d/0/0", done, failed, canceled, requeued)
	}
	t.Logf("crash recovery: %d replayed terminal, %d requeued, %d stale accepted",
		replayed, requeued, df.coord.staleAccepted.Load())
}

// TestCacheCorruptionQuarantinedAndRecomputed corrupts a done job's spill
// file between crash and restart: recovery must quarantine the bad bytes
// (renamed *.corrupt, counted, never served), then requeue and recompute
// the job to the identical payload. It also pins the workerless /healthz
// degraded note along the way.
func TestCacheCorruptionQuarantinedAndRecomputed(t *testing.T) {
	opts := Options{
		LeaseTTL:     600 * time.Millisecond,
		JanitorEvery: 20 * time.Millisecond,
		LocalWorkers: 2,
		Seed:         12,
	}
	df := startDurableFleet(t, opts, serve.Config{})

	// Workerless: /healthz must say alive-but-degraded, not ok.
	if code, status, notes := healthzURL(t, df.url); code != http.StatusOK || status != "degraded" || !hasNote(notes, "no_live_workers") {
		t.Errorf("workerless healthz = %d %q %v, want 200 degraded + no_live_workers", code, status, notes)
	}

	body := synthJob(51, 60_000)
	id := mustSubmitURL(t, df.url, body)
	st := waitJobStateURL(t, df.url, id, serve.JobDone, 60*time.Second)
	want := append([]byte(nil), st.Result...)

	// Write-through made the result durable at Put time.
	spill := filepath.Join(df.cacheDir, st.Key+".json")
	if _, err := os.Stat(spill); err != nil {
		t.Fatalf("done job's spill missing: %v", err)
	}

	df.crash()
	good, err := os.ReadFile(spill)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 1
	if err := os.WriteFile(spill, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	df.boot()

	// Recovery found the corruption, quarantined it, and recomputed.
	st2 := waitJobStateURL(t, df.url, id, serve.JobDone, 60*time.Second)
	if !bytes.Equal(st2.Result, want) {
		t.Error("recomputed result differs from the pre-crash payload")
	}
	qdata, err := os.ReadFile(spill + ".corrupt")
	if err != nil {
		t.Fatalf("corrupt spill not quarantined: %v", err)
	}
	if !bytes.Equal(qdata, bad) {
		t.Error("quarantine mangled the evidence bytes")
	}
	if v := metricURL(t, df.url, "nord_cache_corrupt_quarantined_total"); v < 1 {
		t.Errorf("nord_cache_corrupt_quarantined_total=%v, want >=1", v)
	}
	if requeued := df.coord.journalRequeued.Load(); requeued != 1 {
		t.Errorf("journalRequeued=%d, want 1 (the corrupted done job)", requeued)
	}
	if replayed := df.coord.journalReplayed.Load(); replayed != 0 {
		t.Errorf("journalReplayed=%d, want 0 (its payload was unrecoverable)", replayed)
	}
	// The recomputation refilled the spill with valid bytes.
	if _, err := os.Stat(spill); err != nil {
		t.Errorf("recomputed spill not rewritten: %v", err)
	}
}

// TestCoordinatorRestartStaleLeaseResultAccepted pins epoch continuity: a
// lease granted by the dead incarnation is reported against the restarted
// one. The restarted coordinator has never issued that lease — epochs
// resume above everything journaled, so it cannot collide with a fresh
// grant — and the stale-success reconciliation path accepts the
// deterministic payload instead of wasting the completed work.
func TestCoordinatorRestartStaleLeaseResultAccepted(t *testing.T) {
	opts := Options{
		LeaseTTL:     5 * time.Second,
		PollWait:     100 * time.Millisecond,
		JanitorEvery: 500 * time.Millisecond, // slow sweeps: the ghost must beat the local steal
		MaxAttempts:  4,
		Seed:         13,
	}
	df := startDurableFleet(t, opts, serve.Config{})

	post := func(path string, body, out any) error {
		b, _ := json.Marshal(body)
		resp, err := http.Post(df.url+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
		}
		return nil
	}

	// The ghost worker leases the job over the raw protocol and then the
	// coordinator dies under it.
	if err := post("/fleet/v1/register", RegisterRequest{WorkerID: "ghost"}, nil); err != nil {
		t.Fatal(err)
	}
	body := synthJob(61, 40_000)
	id := mustSubmitURL(t, df.url, body)
	var grant LeaseGrant
	waitFor(t, 10*time.Second, "ghost lease grant", func() bool {
		var g LeaseGrant
		if err := post("/fleet/v1/lease", LeaseRequest{WorkerID: "ghost", WaitMs: 500}, &g); err == nil && g.JobID == id {
			grant = g
			return true
		}
		return false
	})
	preEpoch := df.coord.epochSnapshot()

	df.crash()
	df.boot()

	// Epochs resumed above the journaled high-water mark.
	if got := df.coord.epochSnapshot(); got < preEpoch {
		t.Errorf("post-restart epoch %d below pre-crash %d: stale leases could collide", got, preEpoch)
	}
	// Re-register so the janitor does not steal the recovered job locally
	// before the ghost's report lands.
	if err := post("/fleet/v1/register", RegisterRequest{WorkerID: "ghost"}, nil); err != nil {
		t.Fatal(err)
	}

	// The ghost finished the run it started under the dead incarnation and
	// reports with its pre-crash lease: stale, successful, deterministic —
	// accepted.
	payload := localPayload(t, body)
	var rr ResultResponse
	if err := post("/fleet/v1/result", ResultRequest{
		WorkerID: "ghost", JobID: id, Lease: grant.Lease,
		Outcome: serve.RemoteOutcome{Payload: payload},
	}, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != StatusAccepted {
		t.Fatalf("stale pre-crash result: status %q, want %q", rr.Status, StatusAccepted)
	}
	st := getJobURL(t, df.url, id)
	if st.State != serve.JobDone || !bytes.Equal(st.Result, payload) {
		t.Errorf("job after stale accept: state=%s, payload match=%v", st.State, bytes.Equal(st.Result, payload))
	}
	if got := df.coord.staleAccepted.Load(); got != 1 {
		t.Errorf("staleAccepted=%d, want 1", got)
	}
	if done := df.srv.Metrics().JobsDone.Load(); done != 1 {
		t.Errorf("JobsDone=%d, want exactly 1", done)
	}
}

// TestFleetRemoteCacheHitZeroSimWork seeds the shared tier with a
// payload, then hands the matching job to a fresh worker: the worker must
// serve the tier's bytes without running the simulator at all.
func TestFleetRemoteCacheHitZeroSimWork(t *testing.T) {
	opts := Options{
		LeaseTTL: 2 * time.Second,
		// The placeholder below registers once and never heartbeats; a
		// generous liveness window keeps the fleet "live" while the (slow
		// under -race) reference payload is computed and seeded.
		WorkerTTL:    120 * time.Second,
		PollWait:     100 * time.Millisecond,
		JanitorEvery: 50 * time.Millisecond,
		Seed:         14,
	}
	tf := newTestFleet(t, opts, serve.Config{})

	// A register-only placeholder keeps the fleet "live" so the submission
	// queues for a lease instead of degrading to local execution, but it
	// never leases — the job waits for the real worker.
	resp, err := http.Post(tf.ts.URL+"/fleet/v1/register", "application/json",
		strings.NewReader(`{"worker_id":"placeholder"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	body := synthJob(71, 200_000)
	id := mustSubmit(t, tf, body)
	key := getJob(t, tf, id).Key
	payload := localPayload(t, body)
	if code := tierPutURL(t, tf.ts.URL, key, payload); code != http.StatusNoContent {
		t.Fatalf("seeding the tier: HTTP %d", code)
	}

	tw := startWorker(t, tf, "w1", 141)
	st := waitJobState(t, tf, id, serve.JobDone, 60*time.Second)
	if !bytes.Equal(st.Result, payload) {
		t.Error("tier-served result differs from the seeded payload")
	}
	hits, misses, _, _, _, sims := tw.w.RemoteCacheStats()
	if hits != 1 || sims != 0 {
		t.Errorf("worker stats hits=%d misses=%d sims=%d, want 1 hit and ZERO simulations", hits, misses, sims)
	}
	if v := fleetMetric(t, tf, "nord_cache_remote_hits_total"); v < 1 {
		t.Errorf("nord_cache_remote_hits_total=%v, want >=1", v)
	}
}

// TestFleetCacheTierOutageDegradesGracefully points a worker's cache tier
// at a server that fails every request: the job must still complete
// byte-identically (the tier is an optimisation, never a dependency), the
// write-back retries must be counted, and /healthz must advertise the
// degraded tier while staying HTTP 200.
func TestFleetCacheTierOutageDegradesGracefully(t *testing.T) {
	opts := Options{
		LeaseTTL:     2 * time.Second,
		PollWait:     100 * time.Millisecond,
		JanitorEvery: 50 * time.Millisecond,
		Seed:         15,
	}
	tf := newTestFleet(t, opts, serve.Config{})
	downTier := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "tier down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(downTier.Close)

	tw := startWorkerURL(t, tf.ts.URL, "w1", 151, downTier.URL)
	waitWorkers(t, tf, 1)

	body := synthJob(81, 60_000)
	id := mustSubmit(t, tf, body)
	st := waitJobState(t, tf, id, serve.JobDone, 60*time.Second)
	if !bytes.Equal(st.Result, localPayload(t, body)) {
		t.Error("result computed under tier outage differs from local run")
	}

	_, _, puts, retries, errs, sims := tw.w.RemoteCacheStats()
	if puts != 0 || retries == 0 || errs == 0 || sims != 1 {
		t.Errorf("worker stats puts=%d retries=%d errs=%d sims=%d, want 0 puts, >0 retries/errs, 1 sim",
			puts, retries, errs, sims)
	}
	if v := fleetMetric(t, tf, "nord_cache_remote_put_retries_total"); v < 1 {
		t.Errorf("nord_cache_remote_put_retries_total=%v, want >=1", v)
	}
	if v := fleetMetric(t, tf, "nord_fleet_cache_tier_errors_total"); v < 1 {
		t.Errorf("nord_fleet_cache_tier_errors_total=%v, want >=1", v)
	}
	code, status, notes := healthzURL(t, tf.ts.URL)
	if code != http.StatusOK || status != "degraded" || !hasNote(notes, "cache_tier_degraded") {
		t.Errorf("healthz under tier outage = %d %q %v, want 200 degraded + cache_tier_degraded", code, status, notes)
	}
	if hasNote(notes, "no_live_workers") {
		t.Error("healthz claims no_live_workers with a live worker registered")
	}
}
