package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nord/internal/serve"
	"nord/internal/sim"
	"nord/internal/stats"
)

// errLeaseLost is the cancellation cause when the coordinator reports
// the worker's lease superseded: the run is abandoned and no result is
// reported (another worker owns the job now).
var errLeaseLost = errors.New("fleet: lease lost")

// errClientCanceled is the cancellation cause when a heartbeat reports
// client-requested cancellation: the run stops and a canceled outcome is
// reported.
var errClientCanceled = errors.New("fleet: job canceled by client")

// WorkerOptions configures a fleet worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names the worker in leases and logs; required.
	ID string
	// Slots is the number of jobs executed in parallel (default 1).
	Slots int
	// Client overrides the HTTP client — the chaos harness injects
	// failing transports here. The default is a dedicated transport with
	// explicit dial, TLS-handshake and response-header timeouts (see
	// newFleetTransport); there is no client-level global timeout because
	// lease long-polls and result reports carry their own context
	// deadlines.
	Client *http.Client
	// CacheTier is the base URL of the shared result cache
	// (GET/PUT /v1/cache/{key}). Empty defaults to the Coordinator URL —
	// the coordinator fronts its own content-addressed cache — and "none"
	// disables the tier entirely. The tier is an optimisation, never a
	// dependency: any tier error falls back to local computation and a
	// job is never failed because the cache was unreachable.
	CacheTier string
	// CachePutAttempts bounds write-back attempts per result, retried
	// with capped exponential backoff + jitter (default 4).
	CachePutAttempts int
	// ReconnectBase and ReconnectMax shape the jittered backoff used
	// when the coordinator is unreachable (defaults 200ms and 10s).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// CheckEvery and ProgressEvery tune the sim layer (defaults as in
	// serve.Config).
	CheckEvery    int
	ProgressEvery int
	// Seed drives the reconnect jitter; 0 seeds from the clock.
	Seed int64
	// Logf, when non-nil, receives worker lifecycle lines.
	Logf func(format string, args ...any)
}

// Worker executes leased jobs against a coordinator. It is resilient by
// construction: coordinator restarts are survived with jittered
// reconnect + re-registration, lost leases abandon the run promptly, and
// a graceful stop gives unfinished jobs back to the queue.
type Worker struct {
	o      WorkerOptions
	client *http.Client
	rng    *lockedRand

	mu  sync.Mutex
	reg RegisterResponse // fleet timings from the last successful registration

	// Cache tier telemetry (tests read these; per-execution deltas ride
	// result reports to the coordinator's metrics).
	remoteHits    atomic.Uint64
	remoteMisses  atomic.Uint64
	remotePuts    atomic.Uint64
	putRetries    atomic.Uint64
	tierErrors    atomic.Uint64
	simsPerformed atomic.Uint64 // executions that actually ran the simulator
}

// RemoteCacheStats reports the worker's cumulative cache tier telemetry:
// payloads served without simulating (hits), probes that missed, results
// written back, write-back retries, tier errors survived, and the number
// of leased executions that actually ran the simulator.
func (w *Worker) RemoteCacheStats() (hits, misses, puts, retries, errs, sims uint64) {
	return w.remoteHits.Load(), w.remoteMisses.Load(), w.remotePuts.Load(),
		w.putRetries.Load(), w.tierErrors.Load(), w.simsPerformed.Load()
}

// newFleetTransport builds the worker's default HTTP transport. Unlike a
// bare &http.Client{} (which shares http.DefaultTransport and hangs
// forever on a TCP-accepting-but-dead coordinator), every phase of a
// request is bounded: dialing, the TLS handshake, and the wait for
// response headers. Lease long-polls park server-side for PollWait, so
// the response-header timeout stays comfortably above it.
func newFleetTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   5 * time.Second,
		ResponseHeaderTimeout: 60 * time.Second,
		ExpectContinueTimeout: 1 * time.Second,
		MaxIdleConnsPerHost:   4,
		IdleConnTimeout:       90 * time.Second,
	}
}

// NewWorker validates opts and builds a Worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Coordinator == "" {
		return nil, fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if opts.ID == "" {
		return nil, fmt.Errorf("fleet: worker needs an ID")
	}
	opts.Coordinator = strings.TrimRight(opts.Coordinator, "/")
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.ReconnectBase <= 0 {
		opts.ReconnectBase = 200 * time.Millisecond
	}
	if opts.ReconnectMax <= 0 {
		opts.ReconnectMax = 10 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = time.Now().UnixNano()
	}
	switch opts.CacheTier {
	case "":
		opts.CacheTier = opts.Coordinator
	case "none":
		opts.CacheTier = ""
	default:
		opts.CacheTier = strings.TrimRight(opts.CacheTier, "/")
	}
	if opts.CachePutAttempts <= 0 {
		opts.CachePutAttempts = 4
	}
	w := &Worker{o: opts, client: opts.Client, rng: newLockedRand(opts.Seed)}
	if w.client == nil {
		w.client = &http.Client{Transport: newFleetTransport()}
	}
	return w, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.o.Logf != nil {
		w.o.Logf(format, args...)
	}
}

// Run registers and executes jobs until ctx is canceled. On shutdown,
// in-flight jobs are given back to the coordinator (best effort) so they
// requeue immediately instead of waiting out their lease TTL.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.registerLoop(ctx); err != nil {
		return err
	}
	var wg sync.WaitGroup
	for i := 0; i < w.o.Slots; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.slotLoop(ctx, slot)
		}(i)
	}
	wg.Wait()
	w.unregister()
	return ctx.Err()
}

// registerLoop registers with jittered backoff until success or ctx
// cancellation.
func (w *Worker) registerLoop(ctx context.Context) error {
	for attempt := 1; ; attempt++ {
		if err := w.register(ctx); err == nil {
			w.logf("worker %s: registered with %s", w.o.ID, w.o.Coordinator)
			return nil
		} else if ctx.Err() != nil {
			return ctx.Err()
		} else {
			d := Backoff(w.o.ReconnectBase, w.o.ReconnectMax, attempt, w.rng.Float64())
			w.logf("worker %s: register failed (%v), retrying in %s", w.o.ID, err, d)
			if !sleepCtx(ctx, d) {
				return ctx.Err()
			}
		}
	}
}

func (w *Worker) register(ctx context.Context) error {
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var resp RegisterResponse
	if err := w.post(rctx, "/fleet/v1/register", RegisterRequest{WorkerID: w.o.ID, Slots: w.o.Slots}, &resp); err != nil {
		return err
	}
	w.mu.Lock()
	w.reg = resp
	w.mu.Unlock()
	return nil
}

// unregister tells the coordinator this worker is gone (best effort,
// detached context: the worker's own context is already canceled).
func (w *Worker) unregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = w.post(ctx, "/fleet/v1/unregister", RegisterRequest{WorkerID: w.o.ID}, nil)
}

func (w *Worker) timings() RegisterResponse {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reg
}

// slotLoop leases and executes jobs until ctx is canceled. Transport
// failures back off with jitter and re-register (a restarted coordinator
// has lost the registration table).
func (w *Worker) slotLoop(ctx context.Context, slot int) {
	fails := 0
	for ctx.Err() == nil {
		grant, ok, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fails++
			d := Backoff(w.o.ReconnectBase, w.o.ReconnectMax, fails, w.rng.Float64())
			w.logf("worker %s[%d]: lease failed (%v), backing off %s", w.o.ID, slot, err, d)
			if !sleepCtx(ctx, d) {
				return
			}
			// Best effort; the next lease call re-proves liveness anyway.
			_ = w.register(ctx)
			continue
		}
		fails = 0
		if !ok {
			continue // empty poll
		}
		w.execute(ctx, grant)
	}
}

func (w *Worker) lease(ctx context.Context) (*LeaseGrant, bool, error) {
	t := w.timings()
	wait := time.Duration(t.PollWaitMs) * time.Millisecond
	if wait <= 0 {
		wait = 2 * time.Second
	}
	rctx, cancel := context.WithTimeout(ctx, wait+5*time.Second)
	defer cancel()
	req, err := w.newRequest(rctx, "/fleet/v1/lease", LeaseRequest{WorkerID: w.o.ID, WaitMs: wait.Milliseconds()})
	if err != nil {
		return nil, false, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	case http.StatusOK:
		var grant LeaseGrant
		if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
			return nil, false, err
		}
		return &grant, true, nil
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, false, fmt.Errorf("lease: HTTP %d", resp.StatusCode)
	}
}

// execute runs one leased job: a shared-cache probe first (a hit reports
// the payload with zero sim work), then heartbeats in the background, the
// sim on this goroutine, a cache write-back, and a result report (or
// give-back) at the end.
func (w *Worker) execute(ctx context.Context, grant *LeaseGrant) {
	var req serve.JobRequest
	if err := json.Unmarshal(grant.Request, &req); err != nil {
		w.report(grant, &serve.RemoteOutcome{Error: "worker could not decode job request: " + err.Error()}, false, 0, 0)
		return
	}

	// Some other process may already have paid for this configuration:
	// check the shared tier before burning cycles. Any tier failure is a
	// miss — compute locally, never fail the job over its cache.
	var tierErrs int
	if w.o.CacheTier != "" && grant.Key != "" {
		payload, ok, errs := w.cacheGet(ctx, grant.Key)
		tierErrs += errs
		if ok {
			w.report(grant, &serve.RemoteOutcome{Payload: payload, FromCache: true}, false, 0, tierErrs)
			return
		}
	}

	runCtx, cancelCause := context.WithCancelCause(ctx)
	defer cancelCause(nil)
	if grant.DeadlineMs > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeoutCause(runCtx,
			time.Duration(grant.DeadlineMs)*time.Millisecond, serve.ErrJobDeadline)
		defer cancel()
	}

	// Latest progress snapshot, shipped on heartbeats; guarded because
	// the sim goroutine writes it and the heartbeat goroutine reads it.
	var (
		progMu   sync.Mutex
		latest   *stats.Progress
		sentCyc  uint64
		hbDone   = make(chan struct{})
		hbExited = make(chan struct{})
	)
	t := w.timings()
	hbEvery := time.Duration(t.HeartbeatMs) * time.Millisecond
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	go func() {
		defer close(hbExited)
		tick := time.NewTicker(hbEvery)
		defer tick.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-runCtx.Done():
				return
			case <-tick.C:
			}
			hb := HeartbeatRequest{WorkerID: w.o.ID, JobID: grant.JobID, Lease: grant.Lease}
			progMu.Lock()
			if latest != nil && latest.Cycle > sentCyc {
				p := *latest
				hb.Progress = &p
				sentCyc = latest.Cycle
			}
			progMu.Unlock()
			hctx, cancel := context.WithTimeout(context.Background(), hbEvery+2*time.Second)
			var resp HeartbeatResponse
			err := w.post(hctx, "/fleet/v1/heartbeat", hb, &resp)
			cancel()
			if err != nil {
				// Unreachable coordinator: keep simulating — the lease
				// may expire server-side, in which case the result
				// report will come back stale and be reconciled there.
				continue
			}
			switch resp.Status {
			case StatusLost:
				cancelCause(errLeaseLost)
				return
			case StatusCanceled:
				cancelCause(errClientCanceled)
				return
			}
		}
	}()

	w.simsPerformed.Add(1)
	payload, meta, err := serve.ExecuteRequest(runCtx, &req, sim.RunOptions{
		CheckEvery:    w.o.CheckEvery,
		ProgressEvery: w.o.ProgressEvery,
		Progress: func(p stats.Progress) {
			progMu.Lock()
			latest = &p
			progMu.Unlock()
		},
	})
	// Write the result back to the shared tier before stopping heartbeats:
	// the retries' backoff can outlast the lease TTL, and an un-heartbeated
	// lease would expire mid-write-back.
	var putRetries int
	if err == nil && w.o.CacheTier != "" && grant.Key != "" {
		r, errs := w.cachePut(grant.Key, payload)
		putRetries = r
		tierErrs += errs
	}
	close(hbDone)
	<-hbExited

	switch {
	case err == nil:
		var m *serve.RunMeta
		if meta != nil {
			m = meta
		}
		w.report(grant, &serve.RemoteOutcome{Payload: payload, Meta: m}, false, putRetries, tierErrs)
	case errors.Is(err, errLeaseLost):
		// Another attempt owns the job; drop the run silently.
		w.logf("worker %s: lease %s lost, abandoning %s", w.o.ID, grant.Lease, grant.JobID)
	case errors.Is(err, errClientCanceled):
		w.report(grant, &serve.RemoteOutcome{Canceled: true, Error: err.Error()}, false, 0, tierErrs)
	case errors.Is(err, serve.ErrJobDeadline):
		w.report(grant, &serve.RemoteOutcome{Error: err.Error()}, false, 0, tierErrs)
	case ctx.Err() != nil:
		// Worker shutting down mid-run: give the job back so it requeues
		// without waiting out the lease TTL.
		w.report(grant, &serve.RemoteOutcome{}, true, 0, tierErrs)
	default:
		w.report(grant, &serve.RemoteOutcome{Error: err.Error()}, false, 0, tierErrs)
	}
}

// cacheGet probes the shared cache tier for key. The payload's digest
// (carried in the response header) is validated end to end: a corrupted
// transfer reads as a miss, never as a result. Tier errors are counted
// and swallowed — the caller simulates locally.
func (w *Worker) cacheGet(ctx context.Context, key string) (payload []byte, ok bool, errs int) {
	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, w.o.CacheTier+"/v1/cache/"+key, nil)
	if err != nil {
		w.tierErrors.Add(1)
		return nil, false, 1
	}
	resp, err := w.client.Do(req)
	if err != nil {
		w.tierErrors.Add(1)
		return nil, false, 1
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		w.remoteMisses.Add(1)
		return nil, false, 0
	default:
		io.Copy(io.Discard, resp.Body)
		w.tierErrors.Add(1)
		return nil, false, 1
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		w.tierErrors.Add(1)
		return nil, false, 1
	}
	if want := resp.Header.Get(serve.SumHeader); want != "" {
		sum := sha256.Sum256(body)
		if hex.EncodeToString(sum[:]) != want {
			w.tierErrors.Add(1)
			return nil, false, 1
		}
	}
	w.remoteHits.Add(1)
	return body, true, 0
}

// cachePut writes a computed result back to the shared tier with up to
// CachePutAttempts tries under capped exponential backoff + jitter. It
// runs on a detached context (the result exists and should be shared even
// while the worker shuts down) and never propagates failure: a job is
// never failed because its cache write-back was. 4xx rejections are not
// retried — the tier told us the payload itself is unacceptable, and
// resending the same bytes cannot change its mind.
func (w *Worker) cachePut(key string, payload []byte) (retries, errs int) {
	sum := sha256.Sum256(payload)
	digest := hex.EncodeToString(sum[:])
	for attempt := 1; ; attempt++ {
		rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		status, err := w.doPut(rctx, key, payload, digest)
		cancel()
		switch {
		case err == nil && status < 300:
			w.remotePuts.Add(1)
			return retries, errs
		case err == nil && status >= 400 && status < 500:
			w.tierErrors.Add(1)
			return retries, errs + 1
		}
		w.tierErrors.Add(1)
		errs++
		if attempt >= w.o.CachePutAttempts {
			w.logf("worker %s: cache write-back for %s abandoned after %d attempts", w.o.ID, key, attempt)
			return retries, errs
		}
		retries++
		w.putRetries.Add(1)
		time.Sleep(Backoff(w.o.ReconnectBase, w.o.ReconnectMax, attempt, w.rng.Float64()))
	}
}

func (w *Worker) doPut(ctx context.Context, key string, payload []byte, digest string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, w.o.CacheTier+"/v1/cache/"+key, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set(serve.SumHeader, digest)
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// report posts the result with bounded retries; a detached context keeps
// the give-back path working after the worker's own context is canceled.
// putRetries and tierErrs carry this execution's cache tier friction for
// the coordinator's metrics and health reporting.
func (w *Worker) report(grant *LeaseGrant, out *serve.RemoteOutcome, requeue bool, putRetries, tierErrs int) {
	req := ResultRequest{
		WorkerID: w.o.ID, JobID: grant.JobID, Lease: grant.Lease, Requeue: requeue, Outcome: *out,
		CachePutRetries: putRetries, CacheTierErrors: tierErrs,
	}
	for attempt := 1; attempt <= 3; attempt++ {
		rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		var resp ResultResponse
		err := w.post(rctx, "/fleet/v1/result", req, &resp)
		cancel()
		if err == nil {
			if resp.Status == StatusStale || resp.Status == StatusUnknown {
				w.logf("worker %s: result for %s %s (lease %s)", w.o.ID, grant.JobID, resp.Status, grant.Lease)
			}
			return
		}
		time.Sleep(Backoff(w.o.ReconnectBase, w.o.ReconnectMax, attempt, w.rng.Float64()))
	}
	w.logf("worker %s: could not report result for %s; lease will expire", w.o.ID, grant.JobID)
}

func (w *Worker) newRequest(ctx context.Context, path string, body any) (*http.Request, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.o.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return req, nil
}

// post sends a JSON request and decodes a JSON response into out (when
// non-nil). Non-2xx statuses are errors.
func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	req, err := w.newRequest(ctx, path, body)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps d or until ctx cancellation; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
