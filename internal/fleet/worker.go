package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"nord/internal/serve"
	"nord/internal/sim"
	"nord/internal/stats"
)

// errLeaseLost is the cancellation cause when the coordinator reports
// the worker's lease superseded: the run is abandoned and no result is
// reported (another worker owns the job now).
var errLeaseLost = errors.New("fleet: lease lost")

// errClientCanceled is the cancellation cause when a heartbeat reports
// client-requested cancellation: the run stops and a canceled outcome is
// reported.
var errClientCanceled = errors.New("fleet: job canceled by client")

// WorkerOptions configures a fleet worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names the worker in leases and logs; required.
	ID string
	// Slots is the number of jobs executed in parallel (default 1).
	Slots int
	// Client overrides the HTTP client — the chaos harness injects
	// failing transports here (default http.DefaultTransport, no global
	// timeout; every request carries its own context deadline).
	Client *http.Client
	// ReconnectBase and ReconnectMax shape the jittered backoff used
	// when the coordinator is unreachable (defaults 200ms and 10s).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// CheckEvery and ProgressEvery tune the sim layer (defaults as in
	// serve.Config).
	CheckEvery    int
	ProgressEvery int
	// Seed drives the reconnect jitter; 0 seeds from the clock.
	Seed int64
	// Logf, when non-nil, receives worker lifecycle lines.
	Logf func(format string, args ...any)
}

// Worker executes leased jobs against a coordinator. It is resilient by
// construction: coordinator restarts are survived with jittered
// reconnect + re-registration, lost leases abandon the run promptly, and
// a graceful stop gives unfinished jobs back to the queue.
type Worker struct {
	o      WorkerOptions
	client *http.Client
	rng    *lockedRand

	mu  sync.Mutex
	reg RegisterResponse // fleet timings from the last successful registration
}

// NewWorker validates opts and builds a Worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Coordinator == "" {
		return nil, fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if opts.ID == "" {
		return nil, fmt.Errorf("fleet: worker needs an ID")
	}
	opts.Coordinator = strings.TrimRight(opts.Coordinator, "/")
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.ReconnectBase <= 0 {
		opts.ReconnectBase = 200 * time.Millisecond
	}
	if opts.ReconnectMax <= 0 {
		opts.ReconnectMax = 10 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = time.Now().UnixNano()
	}
	w := &Worker{o: opts, client: opts.Client, rng: newLockedRand(opts.Seed)}
	if w.client == nil {
		w.client = &http.Client{}
	}
	return w, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.o.Logf != nil {
		w.o.Logf(format, args...)
	}
}

// Run registers and executes jobs until ctx is canceled. On shutdown,
// in-flight jobs are given back to the coordinator (best effort) so they
// requeue immediately instead of waiting out their lease TTL.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.registerLoop(ctx); err != nil {
		return err
	}
	var wg sync.WaitGroup
	for i := 0; i < w.o.Slots; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.slotLoop(ctx, slot)
		}(i)
	}
	wg.Wait()
	w.unregister()
	return ctx.Err()
}

// registerLoop registers with jittered backoff until success or ctx
// cancellation.
func (w *Worker) registerLoop(ctx context.Context) error {
	for attempt := 1; ; attempt++ {
		if err := w.register(ctx); err == nil {
			w.logf("worker %s: registered with %s", w.o.ID, w.o.Coordinator)
			return nil
		} else if ctx.Err() != nil {
			return ctx.Err()
		} else {
			d := Backoff(w.o.ReconnectBase, w.o.ReconnectMax, attempt, w.rng.Float64())
			w.logf("worker %s: register failed (%v), retrying in %s", w.o.ID, err, d)
			if !sleepCtx(ctx, d) {
				return ctx.Err()
			}
		}
	}
}

func (w *Worker) register(ctx context.Context) error {
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var resp RegisterResponse
	if err := w.post(rctx, "/fleet/v1/register", RegisterRequest{WorkerID: w.o.ID, Slots: w.o.Slots}, &resp); err != nil {
		return err
	}
	w.mu.Lock()
	w.reg = resp
	w.mu.Unlock()
	return nil
}

// unregister tells the coordinator this worker is gone (best effort,
// detached context: the worker's own context is already canceled).
func (w *Worker) unregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = w.post(ctx, "/fleet/v1/unregister", RegisterRequest{WorkerID: w.o.ID}, nil)
}

func (w *Worker) timings() RegisterResponse {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reg
}

// slotLoop leases and executes jobs until ctx is canceled. Transport
// failures back off with jitter and re-register (a restarted coordinator
// has lost the registration table).
func (w *Worker) slotLoop(ctx context.Context, slot int) {
	fails := 0
	for ctx.Err() == nil {
		grant, ok, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fails++
			d := Backoff(w.o.ReconnectBase, w.o.ReconnectMax, fails, w.rng.Float64())
			w.logf("worker %s[%d]: lease failed (%v), backing off %s", w.o.ID, slot, err, d)
			if !sleepCtx(ctx, d) {
				return
			}
			// Best effort; the next lease call re-proves liveness anyway.
			_ = w.register(ctx)
			continue
		}
		fails = 0
		if !ok {
			continue // empty poll
		}
		w.execute(ctx, grant)
	}
}

func (w *Worker) lease(ctx context.Context) (*LeaseGrant, bool, error) {
	t := w.timings()
	wait := time.Duration(t.PollWaitMs) * time.Millisecond
	if wait <= 0 {
		wait = 2 * time.Second
	}
	rctx, cancel := context.WithTimeout(ctx, wait+5*time.Second)
	defer cancel()
	req, err := w.newRequest(rctx, "/fleet/v1/lease", LeaseRequest{WorkerID: w.o.ID, WaitMs: wait.Milliseconds()})
	if err != nil {
		return nil, false, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	case http.StatusOK:
		var grant LeaseGrant
		if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
			return nil, false, err
		}
		return &grant, true, nil
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, false, fmt.Errorf("lease: HTTP %d", resp.StatusCode)
	}
}

// execute runs one leased job: heartbeats in the background, the sim on
// this goroutine, and a result report (or give-back) at the end.
func (w *Worker) execute(ctx context.Context, grant *LeaseGrant) {
	var req serve.JobRequest
	if err := json.Unmarshal(grant.Request, &req); err != nil {
		w.report(grant, &serve.RemoteOutcome{Error: "worker could not decode job request: " + err.Error()}, false)
		return
	}

	runCtx, cancelCause := context.WithCancelCause(ctx)
	defer cancelCause(nil)
	if grant.DeadlineMs > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeoutCause(runCtx,
			time.Duration(grant.DeadlineMs)*time.Millisecond, serve.ErrJobDeadline)
		defer cancel()
	}

	// Latest progress snapshot, shipped on heartbeats; guarded because
	// the sim goroutine writes it and the heartbeat goroutine reads it.
	var (
		progMu   sync.Mutex
		latest   *stats.Progress
		sentCyc  uint64
		hbDone   = make(chan struct{})
		hbExited = make(chan struct{})
	)
	t := w.timings()
	hbEvery := time.Duration(t.HeartbeatMs) * time.Millisecond
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	go func() {
		defer close(hbExited)
		tick := time.NewTicker(hbEvery)
		defer tick.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-runCtx.Done():
				return
			case <-tick.C:
			}
			hb := HeartbeatRequest{WorkerID: w.o.ID, JobID: grant.JobID, Lease: grant.Lease}
			progMu.Lock()
			if latest != nil && latest.Cycle > sentCyc {
				p := *latest
				hb.Progress = &p
				sentCyc = latest.Cycle
			}
			progMu.Unlock()
			hctx, cancel := context.WithTimeout(context.Background(), hbEvery+2*time.Second)
			var resp HeartbeatResponse
			err := w.post(hctx, "/fleet/v1/heartbeat", hb, &resp)
			cancel()
			if err != nil {
				// Unreachable coordinator: keep simulating — the lease
				// may expire server-side, in which case the result
				// report will come back stale and be reconciled there.
				continue
			}
			switch resp.Status {
			case StatusLost:
				cancelCause(errLeaseLost)
				return
			case StatusCanceled:
				cancelCause(errClientCanceled)
				return
			}
		}
	}()

	payload, meta, err := serve.ExecuteRequest(runCtx, &req, sim.RunOptions{
		CheckEvery:    w.o.CheckEvery,
		ProgressEvery: w.o.ProgressEvery,
		Progress: func(p stats.Progress) {
			progMu.Lock()
			latest = &p
			progMu.Unlock()
		},
	})
	close(hbDone)
	<-hbExited

	switch {
	case err == nil:
		var m *serve.RunMeta
		if meta != nil {
			m = meta
		}
		w.report(grant, &serve.RemoteOutcome{Payload: payload, Meta: m}, false)
	case errors.Is(err, errLeaseLost):
		// Another attempt owns the job; drop the run silently.
		w.logf("worker %s: lease %s lost, abandoning %s", w.o.ID, grant.Lease, grant.JobID)
	case errors.Is(err, errClientCanceled):
		w.report(grant, &serve.RemoteOutcome{Canceled: true, Error: err.Error()}, false)
	case errors.Is(err, serve.ErrJobDeadline):
		w.report(grant, &serve.RemoteOutcome{Error: err.Error()}, false)
	case ctx.Err() != nil:
		// Worker shutting down mid-run: give the job back so it requeues
		// without waiting out the lease TTL.
		w.report(grant, &serve.RemoteOutcome{}, true)
	default:
		w.report(grant, &serve.RemoteOutcome{Error: err.Error()}, false)
	}
}

// report posts the result with bounded retries; a detached context keeps
// the give-back path working after the worker's own context is canceled.
func (w *Worker) report(grant *LeaseGrant, out *serve.RemoteOutcome, requeue bool) {
	req := ResultRequest{WorkerID: w.o.ID, JobID: grant.JobID, Lease: grant.Lease, Requeue: requeue, Outcome: *out}
	for attempt := 1; attempt <= 3; attempt++ {
		rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		var resp ResultResponse
		err := w.post(rctx, "/fleet/v1/result", req, &resp)
		cancel()
		if err == nil {
			if resp.Status == StatusStale || resp.Status == StatusUnknown {
				w.logf("worker %s: result for %s %s (lease %s)", w.o.ID, grant.JobID, resp.Status, grant.Lease)
			}
			return
		}
		time.Sleep(Backoff(w.o.ReconnectBase, w.o.ReconnectMax, attempt, w.rng.Float64()))
	}
	w.logf("worker %s: could not report result for %s; lease will expire", w.o.ID, grant.JobID)
}

func (w *Worker) newRequest(ctx context.Context, path string, body any) (*http.Request, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.o.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return req, nil
}

// post sends a JSON request and decodes a JSON response into out (when
// non-nil). Non-2xx statuses are errors.
func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	req, err := w.newRequest(ctx, path, body)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps d or until ctx cancellation; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
