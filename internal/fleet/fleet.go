// Package fleet promotes the single-process simulation service into a
// coordinator/worker fleet, carrying NoRD's decoupling insight up the
// stack: the paper's bypass ring keeps packets flowing while routers
// power off or fail, and the fleet keeps jobs flowing while workers die,
// wedge or partition.
//
// The coordinator owns the job queue and the content-addressed result
// cache (both live in internal/serve; the coordinator plugs in as the
// serve.Dispatcher). Workers register over HTTP, lease jobs with a TTL,
// heartbeat while executing, and report results; every wire payload is
// the same JSON the public API speaks.
//
// Robustness invariants:
//
//   - A lease that is not heartbeated within its TTL expires and the job
//     is requeued with exponential backoff + jitter; after MaxAttempts
//     grants the job is failed, never silently lost.
//   - A job reaches a terminal state exactly once. Late or duplicate
//     reports (a stale lease racing a retry) account nothing: results
//     are deterministic and content-addressed, so a stale *success* is
//     accepted if the job is still open, while stale failures are
//     discarded — the active attempt decides.
//   - Client cancellation and per-job execution deadlines propagate to
//     workers through heartbeat responses and lease grants, riding the
//     sim layer's context-cancellation polling.
//   - With zero live workers the coordinator degrades to local
//     in-process execution, so a fleet of one is exactly the old
//     single-process service.
package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Options tunes a Coordinator. The zero value selects production-shaped
// defaults; tests shrink the timings.
type Options struct {
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// before the job is presumed abandoned and requeued (default 10s).
	LeaseTTL time.Duration
	// PollWait is how long a worker's lease request parks waiting for
	// work before returning empty (default 2s, clamped below LeaseTTL).
	PollWait time.Duration
	// WorkerTTL is the registration liveness window: a worker not heard
	// from for this long no longer counts toward fleet capacity
	// (default 2*LeaseTTL).
	WorkerTTL time.Duration
	// JanitorEvery is the lease-expiry sweep interval (default
	// LeaseTTL/4) — the bound on how long past its TTL a dead worker's
	// lease can linger.
	JanitorEvery time.Duration
	// MaxAttempts bounds lease grants per job before it is failed
	// (default 4).
	MaxAttempts int
	// RetryBase and RetryMax shape the requeue backoff:
	// RetryBase·2^(attempt-1) capped at RetryMax, plus up to 50% jitter
	// (defaults 250ms and 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// QueueDepth bounds fleet-queued plus leased jobs; beyond it Submit
	// reports backpressure (default 256).
	QueueDepth int
	// LocalWorkers sizes the in-process fallback pool used when no
	// workers are live and for jobs that cannot ship (traced jobs, trace
	// replays of coordinator-local files). Default 1.
	LocalWorkers int
	// LocalQueueDepth bounds the fallback pool's queue (default
	// QueueDepth).
	LocalQueueDepth int
	// JobDeadline is the per-execution wall-clock budget handed to
	// workers in lease grants (0 = unbounded).
	JobDeadline time.Duration
	// Journal, when non-nil, makes the coordinator crash-durable: job
	// submissions, lease grants, requeues and terminal transitions are
	// appended to it, and NewCoordinator replays its recovered state —
	// terminal jobs are rehydrated (done payloads from the result cache),
	// open jobs requeued. Open it with OpenJournal over the same directory
	// across restarts; the coordinator owns it from here and closes it in
	// Wait. Traced jobs and trace replays are not journaled: their value
	// is the live event stream, which cannot outlive the process.
	Journal *Journal
	// Seed drives the requeue jitter; 0 seeds from the clock.
	Seed int64
}

func (o *Options) fill() {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.PollWait <= 0 {
		o.PollWait = 2 * time.Second
	}
	if o.PollWait > o.LeaseTTL {
		o.PollWait = o.LeaseTTL
	}
	if o.WorkerTTL <= 0 {
		o.WorkerTTL = 2 * o.LeaseTTL
	}
	if o.JanitorEvery <= 0 {
		o.JanitorEvery = o.LeaseTTL / 4
		if o.JanitorEvery < 10*time.Millisecond {
			o.JanitorEvery = 10 * time.Millisecond
		}
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 250 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 5 * time.Second
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.LocalWorkers <= 0 {
		o.LocalWorkers = 1
	}
	if o.LocalQueueDepth <= 0 {
		o.LocalQueueDepth = o.QueueDepth
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
}

// Backoff returns the attempt-indexed retry delay: base·2^(attempt-1)
// capped at max, plus up to 50% uniform jitter drawn from random (in
// [0, 1)). Jitter decorrelates retries — dead-worker requeues and
// worker reconnects that would otherwise thunder back in lockstep.
func Backoff(base, max time.Duration, attempt int, random float64) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	if attempt < 1 {
		attempt = 1
	}
	shift := uint(attempt - 1)
	if shift > 30 {
		shift = 30
	}
	d := base << shift
	if d <= 0 || d > max {
		d = max
	}
	return d + time.Duration(random*float64(d)/2)
}

// lockedRand is a mutex-guarded rand.Rand: jitter draws come from
// multiple goroutines (janitor, handlers, worker slots).
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

// leaseID renders a lease identity; epochs are coordinator-unique.
func leaseID(epoch uint64) string { return fmt.Sprintf("L%06d", epoch) }
