package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func openTestJournal(t *testing.T, dir string, opts JournalOptions) *Journal {
	t.Helper()
	jl, err := OpenJournal(dir, opts)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return jl
}

// TestJournalRoundTrip proves the basic replay contract: submissions,
// leases and terminals fold to the same state after a reopen, the epoch
// survives, and terminal jobs carry their state and error.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir, JournalOptions{})
	jl.Submit("j1", "key1", []byte(`{"kind":"synthetic"}`))
	jl.Submit("j2", "key2", []byte(`{"kind":"workload"}`))
	jl.Lease("j1", 1, "w1", 1)
	jl.Lease("j2", 2, "w1", 1)
	jl.Requeue("j2", 1)
	jl.Lease("j2", 3, "w2", 2)
	jl.Terminal("j1", "done", "")
	jl.Terminal("j2", "failed", "boom")
	// No Close: emulate a crash. The log alone must reconstruct the state.
	jl2 := openTestJournal(t, dir, JournalOptions{})
	if got := jl2.Epoch(); got != 3 {
		t.Fatalf("recovered epoch = %d, want 3", got)
	}
	jobs := jl2.Recovered()
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2: %+v", len(jobs), jobs)
	}
	if jobs[0].ID != "j1" || jobs[0].State != "done" || jobs[0].Key != "key1" {
		t.Fatalf("j1 recovered wrong: %+v", jobs[0])
	}
	if jobs[1].ID != "j2" || jobs[1].State != "failed" || jobs[1].Err != "boom" || jobs[1].Attempt != 2 {
		t.Fatalf("j2 recovered wrong: %+v", jobs[1])
	}
	if string(jobs[1].Req) != `{"kind":"workload"}` {
		t.Fatalf("j2 request not preserved: %s", jobs[1].Req)
	}
}

// TestJournalTornTailTolerated crashes mid-append three ways — a line
// with no newline, a line whose checksum fails, and a truncated JSON
// payload under a stale checksum — and requires replay to keep every
// record before the tear and stop silently at it.
func TestJournalTornTailTolerated(t *testing.T) {
	for _, tear := range []struct {
		name string
		tail string
	}{
		{"no-newline", "00000000 {\"t\":\"term\",\"job\":\"j2\""},
		{"bad-crc", "deadbeef {\"t\":\"term\",\"job\":\"j2\",\"state\":\"done\"}\n"},
		{"garbage", "not a journal line at all\n"},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			jl := openTestJournal(t, dir, JournalOptions{})
			jl.Submit("j1", "key1", []byte(`{}`))
			jl.Submit("j2", "key2", []byte(`{}`))
			jl.Terminal("j1", "done", "")
			// Crash: append the torn tail directly to the live log.
			f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatalf("open log: %v", err)
			}
			if _, err := f.WriteString(tear.tail); err != nil {
				t.Fatalf("write tear: %v", err)
			}
			f.Close()
			jl2 := openTestJournal(t, dir, JournalOptions{})
			if got := jl2.stats().tornTails; got != 1 {
				t.Fatalf("tornTails = %d, want 1", got)
			}
			jobs := jl2.Recovered()
			if len(jobs) != 2 {
				t.Fatalf("recovered %d jobs, want 2", len(jobs))
			}
			if jobs[0].State != "done" {
				t.Fatalf("j1 state = %q, want done (record before the tear)", jobs[0].State)
			}
			if jobs[1].State != JobStateOpen {
				t.Fatalf("j2 state = %q, want open (its terminal tore)", jobs[1].State)
			}
		})
	}
}

// TestJournalDuplicateTerminalIgnored replays a log where a stale lease's
// late report raced the active attempt: two terminal records for one job.
// The first must win and the duplicate must be counted, not applied.
func TestJournalDuplicateTerminalIgnored(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir, JournalOptions{})
	jl.Submit("j1", "key1", []byte(`{}`))
	jl.Terminal("j1", "done", "")
	jl.Terminal("j1", "failed", "late stale report")
	if got := jl.stats().dupTerms; got != 1 {
		t.Fatalf("live dupTerms = %d, want 1", got)
	}
	jl2 := openTestJournal(t, dir, JournalOptions{})
	rec := jl2.Recovered()
	if len(rec) != 1 || rec[0].State != "done" || rec[0].Err != "" {
		t.Fatalf("recovered = %+v, want single done job with no error", rec)
	}
}

// TestJournalSnapshotLogEquivalence runs the same operation sequence
// through a journal that compacts every 3 records and one that never
// compacts, and requires both replays to materialize identical state —
// the snapshot is exactly the log's fold.
func TestJournalSnapshotLogEquivalence(t *testing.T) {
	ops := func(jl *Journal) {
		for i := 0; i < 10; i++ {
			id := fmt.Sprintf("j%d", i)
			jl.Submit(id, "key"+id, []byte(`{"kind":"synthetic"}`))
			jl.Lease(id, uint64(i+1), "w1", 1)
			if i%3 == 0 {
				jl.Requeue(id, 1)
				jl.Lease(id, uint64(100+i), "w2", 2)
			}
			if i%2 == 0 {
				jl.Terminal(id, "done", "")
			}
		}
	}
	snapDir, logDir := t.TempDir(), t.TempDir()
	jlSnap := openTestJournal(t, snapDir, JournalOptions{SnapEvery: 3})
	jlLog := openTestJournal(t, logDir, JournalOptions{SnapEvery: 1 << 20})
	ops(jlSnap)
	ops(jlLog)
	if jlSnap.stats().snapshots < 2 {
		t.Fatalf("snapshotting journal compacted %d times, want >= 2", jlSnap.stats().snapshots)
	}
	// Crash both (no Close) and reopen: one replays snapshot+log, the
	// other a pure log.
	a := openTestJournal(t, snapDir, JournalOptions{})
	b := openTestJournal(t, logDir, JournalOptions{})
	ra, rb := a.Recovered(), b.Recovered()
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("snapshot+log replay diverged from pure log replay:\n%+v\nvs\n%+v", ra, rb)
	}
	if a.Epoch() != b.Epoch() {
		t.Fatalf("epochs diverged: %d vs %d", a.Epoch(), b.Epoch())
	}
}

// TestJournalTerminalRetention bounds the materialized state: terminal
// jobs beyond the retention cap are evicted oldest-first, open jobs are
// never evicted.
func TestJournalTerminalRetention(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir, JournalOptions{RetainTerminal: 3})
	jl.Submit("open1", "k", []byte(`{}`))
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("t%d", i)
		jl.Submit(id, "k"+id, []byte(`{}`))
		jl.Terminal(id, "done", "")
	}
	jl2 := openTestJournal(t, dir, JournalOptions{RetainTerminal: 3})
	rec := jl2.Recovered()
	var open, term int
	for _, j := range rec {
		if j.State == JobStateOpen {
			open++
		} else {
			term++
		}
	}
	if open != 1 || term != 3 {
		t.Fatalf("recovered open=%d term=%d, want open=1 term=3: %+v", open, term, rec)
	}
	for _, j := range rec {
		if j.ID == "t0" || j.ID == "t1" || j.ID == "t2" {
			t.Fatalf("oldest terminal %s should have been evicted", j.ID)
		}
	}
}

// TestJournalCompactsOnOpen: repeated crash/reopen cycles must not grow
// the log — open folds it into the snapshot and truncates.
func TestJournalCompactsOnOpen(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir, JournalOptions{})
	for i := 0; i < 20; i++ {
		jl.Submit(fmt.Sprintf("j%d", i), "k", []byte(`{}`))
	}
	for i := 0; i < 5; i++ {
		openTestJournal(t, dir, JournalOptions{})
		fi, err := os.Stat(filepath.Join(dir, "journal.log"))
		if err != nil {
			t.Fatalf("stat log: %v", err)
		}
		if fi.Size() != 0 {
			t.Fatalf("reopen %d left %d log bytes, want 0 (compacted)", i, fi.Size())
		}
	}
	final := openTestJournal(t, dir, JournalOptions{})
	if got := len(final.Recovered()); got != 20 {
		t.Fatalf("recovered %d jobs after crash loop, want 20", got)
	}
}
