package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nord/internal/serve"
)

// lease is one worker's exclusive claim on a job.
type lease struct {
	id      string
	worker  string
	expires time.Time
}

// fleetJob is the coordinator's per-job lease state machine:
//
//	queued --grant--> leased --result--> terminal
//	  ^                  |
//	  +--expiry/giveback-+   (attempt++, backoff; MaxAttempts → failed)
type fleetJob struct {
	j       *serve.Job
	attempt int       // lease grants so far
	readyAt time.Time // earliest next grant (requeue backoff)
	lease   *lease    // nil while queued
}

// workerState tracks registration liveness.
type workerState struct {
	id       string
	lastSeen time.Time
}

// Coordinator implements serve.Dispatcher by leasing jobs to registered
// workers over HTTP, falling back to an in-process pool when none are
// live. Construct it through serve.Config.Dispatcher so its execution
// callbacks bind to the owning server:
//
//	var coord *fleet.Coordinator
//	srv, err := serve.New(serve.Config{
//		Dispatcher: func(s *serve.Server) serve.Dispatcher {
//			coord = fleet.NewCoordinator(s, opts)
//			return coord
//		},
//	})
//	mux.Handle("/fleet/", coord.Handler())
type Coordinator struct {
	opts    Options
	srv     *serve.Server
	local   *serve.Scheduler
	rng     *lockedRand
	journal *Journal // nil when the coordinator is not crash-durable

	mu      sync.Mutex
	closed  bool
	epoch   uint64
	jobs    map[string]*fleetJob // active fleet jobs by serve job ID
	queue   []*fleetJob          // grant order; holds queued (unleased) jobs
	workers map[string]*workerState
	wake    chan struct{} // closed+replaced to rouse parked lease polls

	stopJanitor     chan struct{}
	stopOnce        sync.Once
	localCloseOne   sync.Once
	journalCloseOne sync.Once

	// Counters exposed at /metrics (nord_fleet_*).
	leaseExpiries    atomic.Uint64
	requeues         atomic.Uint64
	staleResults     atomic.Uint64
	staleAccepted    atomic.Uint64
	localJobs        atomic.Uint64
	retriesExhausted atomic.Uint64
	leasesGranted    atomic.Uint64

	// Recovery accounting: jobs restored already-terminal from the journal,
	// jobs requeued for re-execution, and journaled jobs whose records no
	// longer restore (request schema drift — skipped, never crash the boot).
	journalReplayed atomic.Uint64
	journalRequeued atomic.Uint64
	journalSkipped  atomic.Uint64

	// Cache tier friction reported by workers on result reports: the
	// cumulative error count and the time of the last one, which drives the
	// cache_tier_degraded health note while errors are recent.
	tierErrors    atomic.Uint64
	lastTierErrNS atomic.Int64
}

// NewCoordinator builds a coordinator dispatching for srv. When
// opts.Journal is set it first replays the journal's recovered state —
// terminal jobs are rehydrated (done payloads out of the result cache),
// open jobs requeued in their original arrival order — so a coordinator
// killed mid-fleet restarts with every accepted job still reaching a
// terminal state exactly once. It starts the lease-expiry janitor once
// recovery is complete.
func NewCoordinator(srv *serve.Server, opts Options) *Coordinator {
	opts.fill()
	c := &Coordinator{
		opts:        opts,
		srv:         srv,
		rng:         newLockedRand(opts.Seed),
		journal:     opts.Journal,
		jobs:        map[string]*fleetJob{},
		workers:     map[string]*workerState{},
		wake:        make(chan struct{}),
		stopJanitor: make(chan struct{}),
	}
	// The local fallback pool journals the terminal transitions it drives:
	// fleet jobs stolen onto it during a zero-worker window must not replay
	// as open after a crash that already answered them.
	c.local = serve.NewScheduler(opts.LocalWorkers, opts.LocalQueueDepth, func(j *serve.Job) {
		srv.Exec(j)
		c.journalTerm(j)
	})
	// Lease epochs resume above everything ever journaled, so a stale
	// pre-crash lease ID can never collide with a fresh post-restart grant
	// (the stale-result reconciliation path depends on the distinction).
	c.epoch = c.journal.Epoch()
	c.recover()
	go c.janitor()
	return c
}

// epochSnapshot reads the current lease epoch; tests use it to pin the
// continuity guarantee across restarts.
func (c *Coordinator) epochSnapshot() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// recover replays the journal's materialized state into the fleet queue
// and the serve layer. Records that no longer restore (request schema
// drift across versions) are counted and skipped — recovery must never
// prevent the coordinator from booting.
func (c *Coordinator) recover() {
	for i := range c.journal.Recovered() {
		rec := &c.journal.Recovered()[i]
		if rec.State != JobStateOpen {
			err := c.srv.RestoreTerminal(rec.ID, rec.Req, serve.JobState(rec.State), rec.Err)
			switch {
			case err == nil:
				c.journalReplayed.Add(1)
				continue
			case !errors.Is(err, serve.ErrNoCachedResult):
				c.journalSkipped.Add(1)
				continue
			}
			// Done, but the payload is gone (cache evicted with no spill, or
			// the spill was corrupt and quarantined). The run is
			// deterministic: requeue and recompute the identical bytes.
		}
		j, err := c.srv.RestoreJob(rec.ID, rec.Req)
		if err != nil {
			c.journalSkipped.Add(1)
			continue
		}
		c.journalRequeued.Add(1)
		fj := &fleetJob{j: j, attempt: rec.Attempt}
		c.jobs[j.ID] = fj
		c.queue = append(c.queue, fj)
	}
}

// Submit implements serve.Dispatcher. Traced jobs and trace replays
// (which reference coordinator-local files and event streams that cannot
// ride the result wire) always execute in-process; everything else joins
// the fleet queue unless no worker is live, in which case it degrades
// directly to local execution.
func (c *Coordinator) Submit(j *serve.Job) error {
	if j.Traced() || j.Kind == "trace" {
		return c.submitLocal(j)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return serve.ErrDraining
	}
	if c.liveWorkersLocked(time.Now()) == 0 {
		c.mu.Unlock()
		return c.submitLocal(j)
	}
	if len(c.jobs) >= c.opts.QueueDepth {
		c.mu.Unlock()
		return serve.ErrQueueFull
	}
	// Journal before the job becomes grantable: a crash after this line
	// replays the job as open and requeues it, never loses it.
	c.journalSubmit(j)
	fj := &fleetJob{j: j}
	c.jobs[j.ID] = fj
	c.queue = append(c.queue, fj)
	c.wakeLocked()
	c.mu.Unlock()
	return nil
}

func (c *Coordinator) submitLocal(j *serve.Job) error {
	c.journalSubmit(j)
	if err := c.local.Submit(j); err != nil {
		// The client sees this rejection (429/503); close out the journal
		// entry so a restart does not resurrect a job that never ran.
		if c.journal != nil && !j.Traced() && j.Kind != "trace" {
			c.journal.Terminal(j.ID, string(serve.JobCanceled), "rejected at submit: "+err.Error())
		}
		return err
	}
	c.localJobs.Add(1)
	return nil
}

// journalSubmit records a job's acceptance. Traced jobs and trace replays
// are not journaled: their value is the live event stream, which cannot
// be reconstructed after the process dies (the deterministic payload
// could be, but nobody is left listening).
func (c *Coordinator) journalSubmit(j *serve.Job) {
	if j.Traced() || j.Kind == "trace" {
		return
	}
	c.journal.Submit(j.ID, j.Key, j.RequestJSON())
}

// journalTerm records the terminal transition the caller just drove
// through FinishRemote/DropCanceled/Exec. It reads the state off the job
// rather than trusting the caller: the exactly-once finish may have been
// won by a different path (a stale success racing a retry), and the
// journal must record what the client will actually see.
func (c *Coordinator) journalTerm(j *serve.Job) {
	if c.journal == nil || j.Traced() || j.Kind == "trace" {
		return
	}
	st := j.State()
	if !st.Terminal() {
		return
	}
	c.journal.Terminal(j.ID, string(st), j.FinalError())
}

// wakeLocked rouses every parked lease poll; c.mu must be held.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.opts.WorkerTTL {
			n++
		}
	}
	return n
}

func (c *Coordinator) touchWorkerLocked(id string, now time.Time) {
	if w, ok := c.workers[id]; ok {
		w.lastSeen = now
	} else {
		c.workers[id] = &workerState{id: id, lastSeen: now}
	}
}

// QueueDepth implements serve.Dispatcher: fleet-queued plus local-queued.
func (c *Coordinator) QueueDepth() int {
	c.mu.Lock()
	n := len(c.queue)
	c.mu.Unlock()
	return n + c.local.QueueDepth()
}

// Workers implements serve.Dispatcher: live registered workers.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked(time.Now())
}

// Busy implements serve.Dispatcher: active leases plus busy local
// fallback workers.
func (c *Coordinator) Busy() int {
	c.mu.Lock()
	leased := len(c.jobs) - len(c.queue)
	c.mu.Unlock()
	return leased + c.local.Busy()
}

// Close implements serve.Dispatcher: stop accepting new jobs. Leased and
// queued jobs still run to a terminal state (Wait drains them).
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// Wait implements serve.Dispatcher: block until every accepted job is
// terminal — fleet jobs drain through workers (or expire onto the local
// pool), then the local pool itself is closed and drained.
func (c *Coordinator) Wait(ctx context.Context) error {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		c.mu.Lock()
		empty := len(c.jobs) == 0
		c.mu.Unlock()
		if empty {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	c.localCloseOne.Do(c.local.Close)
	if err := c.local.Wait(ctx); err != nil {
		return err
	}
	c.stopOnce.Do(func() { close(c.stopJanitor) })
	// Every accepted job is terminal; compact and release the journal so
	// the next process opens a snapshot instead of a long log.
	c.journalCloseOne.Do(func() { _ = c.journal.Close() })
	return nil
}

// HealthNotes implements serve.HealthNoter: the degraded-but-alive
// conditions /healthz reports with HTTP 200 and status "degraded". Each
// note leads with a stable machine-greppable token.
func (c *Coordinator) HealthNotes() []string {
	var notes []string
	c.mu.Lock()
	live := c.liveWorkersLocked(time.Now())
	c.mu.Unlock()
	if live == 0 {
		notes = append(notes, "no_live_workers: jobs execute on the coordinator's local fallback pool")
	}
	if ns := c.lastTierErrNS.Load(); ns > 0 && time.Since(time.Unix(0, ns)) <= tierErrWindow {
		notes = append(notes, "cache_tier_degraded: workers reported cache tier errors recently (computing locally, results still land)")
	}
	if c.journal.Broken() {
		notes = append(notes, "journal_degraded: a journal write failed; jobs still run but are no longer crash-durable")
	}
	return notes
}

// tierErrWindow is how long after the last worker-reported cache tier
// error /healthz keeps advertising cache_tier_degraded.
const tierErrWindow = 60 * time.Second

// ---- worker-facing protocol ----

// Handler returns the /fleet/v1/* endpoints; mount it alongside the
// server's public API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/v1/register", c.handleRegister)
	mux.HandleFunc("POST /fleet/v1/unregister", c.handleUnregister)
	mux.HandleFunc("POST /fleet/v1/lease", c.handleLease)
	mux.HandleFunc("POST /fleet/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fleet/v1/result", c.handleResult)
	return mux
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "worker_id required"})
		return
	}
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID, time.Now())
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, RegisterResponse{
		LeaseTTLMs:  c.opts.LeaseTTL.Milliseconds(),
		HeartbeatMs: (c.opts.LeaseTTL / 3).Milliseconds(),
		PollWaitMs:  c.opts.PollWait.Milliseconds(),
	})
}

func (c *Coordinator) handleUnregister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	delete(c.workers, req.WorkerID)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": StatusOK})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "worker_id required"})
		return
	}
	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > c.opts.PollWait {
		wait = c.opts.PollWait
	}
	if grant, ok := c.grantLease(r.Context(), req.WorkerID, wait); ok {
		writeJSON(w, http.StatusOK, grant)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// grantLease pops the first ready job and leases it to workerID, parking
// up to wait for one to appear.
func (c *Coordinator) grantLease(ctx context.Context, workerID string, wait time.Duration) (*LeaseGrant, bool) {
	deadline := time.Now().Add(wait)
	for {
		now := time.Now()
		c.mu.Lock()
		c.touchWorkerLocked(workerID, now)
		fj, drop, nextReady := c.popReadyLocked(now)
		var grant *LeaseGrant
		if fj != nil {
			if grant = c.leaseLocked(fj, workerID, now); grant == nil {
				// Canceled between queue and grant; reaped from the maps
				// in leaseLocked, finalised below with the other drops.
				drop = append(drop, fj)
			}
		}
		wake := c.wake
		c.mu.Unlock()
		// Finalise canceled-while-queued jobs outside the lock: serve
		// callbacks take s.mu, and s.mu → c.mu is the established order
		// (handleSubmit holds s.mu across Submit).
		for _, d := range drop {
			c.srv.DropCanceled(d.j)
			c.journalTerm(d.j)
		}
		if grant != nil {
			return grant, true
		}
		sleep := time.Until(deadline)
		if sleep <= 0 {
			return nil, false
		}
		// A backoff-delayed job may become ready before new work arrives.
		if nextReady > 0 && nextReady < sleep {
			sleep = nextReady
		}
		timer := time.NewTimer(sleep)
		select {
		case <-wake:
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, false
		}
		timer.Stop()
	}
}

// popReadyLocked removes and returns the first grantable job, the
// canceled jobs it swept past (for the caller to finalise outside the
// lock), and the delay until the soonest backoff-delayed job is ready
// (0 when none are waiting on backoff).
func (c *Coordinator) popReadyLocked(now time.Time) (ready *fleetJob, drop []*fleetJob, nextReady time.Duration) {
	keep := c.queue[:0]
	for i, fj := range c.queue {
		if ready != nil {
			keep = append(keep, c.queue[i:]...)
			break
		}
		if fj.j.State().Terminal() || fj.j.Context().Err() != nil {
			delete(c.jobs, fj.j.ID)
			drop = append(drop, fj)
			continue
		}
		if fj.readyAt.After(now) {
			if d := fj.readyAt.Sub(now); nextReady == 0 || d < nextReady {
				nextReady = d
			}
			keep = append(keep, fj)
			continue
		}
		ready = fj
	}
	c.queue = keep
	return ready, drop, nextReady
}

// leaseLocked grants fj to workerID; c.mu must be held. It returns nil
// when the job cannot start (canceled between queue and grant), in which
// case the job has been reaped from the fleet maps.
func (c *Coordinator) leaseLocked(fj *fleetJob, workerID string, now time.Time) *LeaseGrant {
	if !fj.j.MarkRunning() {
		delete(c.jobs, fj.j.ID)
		return nil
	}
	c.epoch++
	fj.attempt++
	fj.lease = &lease{id: leaseID(c.epoch), worker: workerID, expires: now.Add(c.opts.LeaseTTL)}
	c.leasesGranted.Add(1)
	c.srv.CountExecution()
	c.journal.Lease(fj.j.ID, c.epoch, workerID, fj.attempt)
	return &LeaseGrant{
		JobID:      fj.j.ID,
		Lease:      fj.lease.id,
		Key:        fj.j.Key,
		Attempt:    fj.attempt,
		DeadlineMs: c.opts.JobDeadline.Milliseconds(),
		Request:    json.RawMessage(fj.j.RequestJSON()),
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID, now)
	fj := c.jobs[req.JobID]
	if fj == nil || fj.lease == nil || fj.lease.id != req.Lease {
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, HeartbeatResponse{Status: StatusLost})
		return
	}
	fj.lease.expires = now.Add(c.opts.LeaseTTL)
	j := fj.j
	c.mu.Unlock()
	if req.Progress != nil {
		c.srv.PublishProgress(j, *req.Progress)
	}
	if j.Context().Err() != nil || j.State() == serve.JobCanceled {
		writeJSON(w, http.StatusOK, HeartbeatResponse{Status: StatusCanceled})
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Status: StatusOK})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, ResultResponse{Status: c.acceptResult(&req)})
}

// acceptResult applies one result report to the lease state machine.
func (c *Coordinator) acceptResult(req *ResultRequest) string {
	// Fold the worker's cache tier telemetry before any lease arbitration:
	// even a stale report carries real observations of tier health.
	if req.CachePutRetries > 0 {
		c.srv.Metrics().CacheRemotePutRetries.Add(uint64(req.CachePutRetries))
	}
	if req.CacheTierErrors > 0 {
		c.tierErrors.Add(uint64(req.CacheTierErrors))
		c.lastTierErrNS.Store(time.Now().UnixNano())
	}
	now := time.Now()
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID, now)
	fj := c.jobs[req.JobID]
	if fj == nil {
		c.mu.Unlock()
		return StatusUnknown
	}
	current := fj.lease != nil && fj.lease.id == req.Lease
	if !current {
		// A report from a superseded lease. Successful payloads are
		// deterministic and content-addressed — byte-identical to what
		// the active retry would produce — so accept one if the job is
		// still open and save the retry the work (its holder learns via
		// StatusLost on its next heartbeat). Failures and give-backs
		// from stale leases are discarded: the active attempt decides.
		if !req.Requeue && !req.Outcome.Canceled && req.Outcome.Error == "" && len(req.Outcome.Payload) > 0 {
			c.removeLocked(fj)
			c.staleAccepted.Add(1)
			c.mu.Unlock()
			c.srv.FinishRemote(fj.j, req.Outcome)
			c.journalTerm(fj.j)
			return StatusAccepted
		}
		c.staleResults.Add(1)
		c.mu.Unlock()
		return StatusStale
	}
	if req.Requeue {
		exhausted := c.requeueLocked(fj, now)
		c.mu.Unlock()
		if exhausted {
			c.failExhausted(fj)
			return StatusAccepted
		}
		return StatusRequeued
	}
	c.removeLocked(fj)
	c.mu.Unlock()
	c.srv.FinishRemote(fj.j, req.Outcome)
	c.journalTerm(fj.j)
	return StatusAccepted
}

// removeLocked deletes fj from the fleet maps (it is about to be
// finalised); c.mu must be held.
func (c *Coordinator) removeLocked(fj *fleetJob) {
	delete(c.jobs, fj.j.ID)
	fj.lease = nil
	for i, q := range c.queue {
		if q == fj {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
}

// requeueLocked returns fj to the queue with backoff after a lease
// expiry or give-back. It reports true when the job's attempts are
// exhausted, in which case the caller must finalise it as failed
// outside the lock (the job has been removed from the fleet maps).
func (c *Coordinator) requeueLocked(fj *fleetJob, now time.Time) (exhausted bool) {
	fj.lease = nil
	if fj.attempt >= c.opts.MaxAttempts {
		delete(c.jobs, fj.j.ID)
		return true
	}
	fj.j.MarkQueued()
	fj.readyAt = now.Add(Backoff(c.opts.RetryBase, c.opts.RetryMax, fj.attempt, c.rng.Float64()))
	c.queue = append(c.queue, fj)
	c.requeues.Add(1)
	c.journal.Requeue(fj.j.ID, fj.attempt)
	c.wakeLocked()
	return false
}

func (c *Coordinator) failExhausted(fj *fleetJob) {
	c.retriesExhausted.Add(1)
	c.srv.FinishRemote(fj.j, serve.RemoteOutcome{
		Error: fmt.Sprintf("fleet: job abandoned after %d lease attempts (workers died or stalled); giving up", fj.attempt),
	})
	c.journalTerm(fj.j)
}

// ---- janitor ----

// janitor sweeps expired leases back into the queue, reaps canceled
// queued jobs, and drains ready work to the local pool when no worker is
// live — the degraded mode that keeps a workerless coordinator serving.
func (c *Coordinator) janitor() {
	tick := time.NewTicker(c.opts.JanitorEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stopJanitor:
			return
		case <-tick.C:
		}
		c.sweep(time.Now())
	}
}

// sweep runs one janitor pass (split out for tests).
func (c *Coordinator) sweep(now time.Time) {
	var exhausted, localRun, dropped []*fleetJob
	c.mu.Lock()
	for _, fj := range c.jobs {
		if fj.lease != nil && fj.lease.expires.Before(now) {
			c.leaseExpiries.Add(1)
			if c.requeueLocked(fj, now) {
				exhausted = append(exhausted, fj)
			}
		}
	}
	// Reap canceled queued jobs and, with zero live workers, hand ready
	// jobs to the local pool rather than letting them wait for a worker
	// that may never come. The local Submit runs under c.mu (Scheduler's
	// lock is a leaf) so a job atomically moves fleet→local: it is never
	// in both, and never in neither.
	noWorkers := c.liveWorkersLocked(now) == 0
	keep := c.queue[:0]
	for _, fj := range c.queue {
		switch {
		case fj.j.State().Terminal() || fj.j.Context().Err() != nil:
			delete(c.jobs, fj.j.ID)
			dropped = append(dropped, fj)
		case noWorkers && !fj.readyAt.After(now) && c.local.Submit(fj.j) == nil:
			delete(c.jobs, fj.j.ID)
			localRun = append(localRun, fj)
		default:
			keep = append(keep, fj)
		}
	}
	c.queue = keep
	// Forget workers long past their liveness window.
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > 10*c.opts.WorkerTTL {
			delete(c.workers, id)
		}
	}
	c.mu.Unlock()

	for _, fj := range exhausted {
		c.failExhausted(fj)
	}
	for _, fj := range dropped {
		c.srv.DropCanceled(fj.j)
		c.journalTerm(fj.j)
	}
	c.localJobs.Add(uint64(len(localRun)))
}

// ---- metrics ----

// WritePromTo implements serve.PromWriter: the fleet-specific series
// appended to the server's /metrics exposition.
func (c *Coordinator) WritePromTo(w io.Writer) {
	c.mu.Lock()
	now := time.Now()
	live := c.liveWorkersLocked(now)
	queued := len(c.queue)
	leased := len(c.jobs) - queued
	c.mu.Unlock()
	fmt.Fprintf(w, "# HELP nord_fleet_workers_live Registered workers seen within the liveness window.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_workers_live gauge\n")
	fmt.Fprintf(w, "nord_fleet_workers_live %d\n", live)
	fmt.Fprintf(w, "# HELP nord_fleet_leases_active Jobs currently leased to workers.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_leases_active gauge\n")
	fmt.Fprintf(w, "nord_fleet_leases_active %d\n", leased)
	fmt.Fprintf(w, "# HELP nord_fleet_queue_depth Jobs waiting for a lease.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_queue_depth gauge\n")
	fmt.Fprintf(w, "nord_fleet_queue_depth %d\n", queued)
	fmt.Fprintf(w, "# HELP nord_fleet_leases_granted_total Lease grants (execution attempts).\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_leases_granted_total counter\n")
	fmt.Fprintf(w, "nord_fleet_leases_granted_total %d\n", c.leasesGranted.Load())
	fmt.Fprintf(w, "# HELP nord_fleet_lease_expiries_total Leases that expired without a heartbeat.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_lease_expiries_total counter\n")
	fmt.Fprintf(w, "nord_fleet_lease_expiries_total %d\n", c.leaseExpiries.Load())
	fmt.Fprintf(w, "# HELP nord_fleet_requeues_total Jobs returned to the queue after expiry or give-back.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_requeues_total counter\n")
	fmt.Fprintf(w, "nord_fleet_requeues_total %d\n", c.requeues.Load())
	fmt.Fprintf(w, "# HELP nord_fleet_stale_results_total Reports discarded for arriving under a superseded lease.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_stale_results_total counter\n")
	fmt.Fprintf(w, "nord_fleet_stale_results_total %d\n", c.staleResults.Load())
	fmt.Fprintf(w, "# HELP nord_fleet_stale_accepted_total Successful stale reports accepted (deterministic results).\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_stale_accepted_total counter\n")
	fmt.Fprintf(w, "nord_fleet_stale_accepted_total %d\n", c.staleAccepted.Load())
	fmt.Fprintf(w, "# HELP nord_fleet_local_jobs_total Jobs executed on the coordinator's local fallback pool.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_local_jobs_total counter\n")
	fmt.Fprintf(w, "nord_fleet_local_jobs_total %d\n", c.localJobs.Load())
	fmt.Fprintf(w, "# HELP nord_fleet_retries_exhausted_total Jobs failed after exhausting their lease attempts.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_retries_exhausted_total counter\n")
	fmt.Fprintf(w, "nord_fleet_retries_exhausted_total %d\n", c.retriesExhausted.Load())
	fmt.Fprintf(w, "# HELP nord_fleet_cache_tier_errors_total Cache tier errors reported by workers on result reports.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_cache_tier_errors_total counter\n")
	fmt.Fprintf(w, "nord_fleet_cache_tier_errors_total %d\n", c.tierErrors.Load())
	if c.journal == nil {
		return
	}
	st := c.journal.stats()
	fmt.Fprintf(w, "# HELP nord_fleet_journal_appends_total Journal records appended (fsynced) since open.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_journal_appends_total counter\n")
	fmt.Fprintf(w, "nord_fleet_journal_appends_total %d\n", st.appends)
	fmt.Fprintf(w, "# HELP nord_fleet_journal_append_errors_total Journal append failures (durability lost, jobs still run).\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_journal_append_errors_total counter\n")
	fmt.Fprintf(w, "nord_fleet_journal_append_errors_total %d\n", st.appendErrors)
	fmt.Fprintf(w, "# HELP nord_fleet_journal_snapshots_total Snapshot compactions (log truncations).\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_journal_snapshots_total counter\n")
	fmt.Fprintf(w, "nord_fleet_journal_snapshots_total %d\n", st.snapshots)
	fmt.Fprintf(w, "# HELP nord_fleet_journal_replayed_records_total Log records replayed at the last open.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_journal_replayed_records_total counter\n")
	fmt.Fprintf(w, "nord_fleet_journal_replayed_records_total %d\n", st.replayed)
	fmt.Fprintf(w, "# HELP nord_fleet_journal_torn_tails_total Torn (partially written) log tails discarded on replay.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_journal_torn_tails_total counter\n")
	fmt.Fprintf(w, "nord_fleet_journal_torn_tails_total %d\n", st.tornTails)
	fmt.Fprintf(w, "# HELP nord_fleet_journal_dup_terminals_total Duplicate terminal records tolerated on replay (first wins).\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_journal_dup_terminals_total counter\n")
	fmt.Fprintf(w, "nord_fleet_journal_dup_terminals_total %d\n", st.dupTerms)
	fmt.Fprintf(w, "# HELP nord_fleet_journal_replayed_jobs_total Jobs restored already-terminal from the journal at startup.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_journal_replayed_jobs_total counter\n")
	fmt.Fprintf(w, "nord_fleet_journal_replayed_jobs_total %d\n", c.journalReplayed.Load())
	fmt.Fprintf(w, "# HELP nord_fleet_journal_requeues_on_recovery_total Journaled jobs requeued for re-execution at startup.\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_journal_requeues_on_recovery_total counter\n")
	fmt.Fprintf(w, "nord_fleet_journal_requeues_on_recovery_total %d\n", c.journalRequeued.Load())
	fmt.Fprintf(w, "# HELP nord_fleet_journal_recovery_skipped_total Journaled jobs whose records no longer restore (skipped at startup).\n")
	fmt.Fprintf(w, "# TYPE nord_fleet_journal_recovery_skipped_total counter\n")
	fmt.Fprintf(w, "nord_fleet_journal_recovery_skipped_total %d\n", c.journalSkipped.Load())
}
