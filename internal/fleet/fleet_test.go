package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nord/internal/serve"
	"nord/internal/sim"
)

// ---- harness ----

type testFleet struct {
	srv   *serve.Server
	coord *Coordinator
	ts    *httptest.Server
}

// newTestFleet builds a coordinator-mode server: the serve API and the
// /fleet/v1 endpoints on one listener, mirroring cmd/nordserved.
func newTestFleet(t *testing.T, opts Options, cfg serve.Config) *testFleet {
	t.Helper()
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = 64 // fast cancellation under test timings
	}
	if cfg.ProgressEvery == 0 {
		cfg.ProgressEvery = 2000
	}
	var coord *Coordinator
	cfg.Dispatcher = func(s *serve.Server) serve.Dispatcher {
		coord = NewCoordinator(s, opts)
		return coord
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/fleet/", coord.Handler())
	mux.Handle("/", srv.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return &testFleet{srv: srv, coord: coord, ts: ts}
}

// chaosTransport is an http.RoundTripper with injectable failures: a
// temporary partition window or a permanent blackhole (killed process).
type chaosTransport struct {
	base http.RoundTripper

	mu    sync.Mutex
	until time.Time
	dead  bool
}

func (ct *chaosTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	ct.mu.Lock()
	blocked := ct.dead || time.Now().Before(ct.until)
	ct.mu.Unlock()
	if blocked {
		return nil, errors.New("chaos: network partitioned")
	}
	return ct.base.RoundTrip(r)
}

// blockFor drops every request for the next d (heals automatically).
func (ct *chaosTransport) blockFor(d time.Duration) {
	ct.mu.Lock()
	if u := time.Now().Add(d); u.After(ct.until) {
		ct.until = u
	}
	ct.mu.Unlock()
}

// kill blackholes the transport permanently.
func (ct *chaosTransport) kill() {
	ct.mu.Lock()
	ct.dead = true
	ct.mu.Unlock()
}

type testWorker struct {
	id     string
	w      *Worker
	chaos  *chaosTransport
	cancel context.CancelFunc
	done   chan struct{}
}

// startWorker runs a fleet worker against tf until stopped (or test end).
func startWorker(t *testing.T, tf *testFleet, id string, seed int64) *testWorker {
	t.Helper()
	return startWorkerURL(t, tf.ts.URL, id, seed, "")
}

// startWorkerURL is startWorker against an arbitrary coordinator URL (the
// restartable crash-recovery harness is not an httptest.Server) with an
// optional cache tier override ("" = the coordinator, "none" = disabled).
func startWorkerURL(t *testing.T, url, id string, seed int64, cacheTier string) *testWorker {
	t.Helper()
	chaos := &chaosTransport{base: http.DefaultTransport}
	w, err := NewWorker(WorkerOptions{
		Coordinator:   url,
		ID:            id,
		Client:        &http.Client{Transport: chaos},
		CacheTier:     cacheTier,
		ReconnectBase: 20 * time.Millisecond,
		ReconnectMax:  250 * time.Millisecond,
		CheckEvery:    64,
		ProgressEvery: 2000,
		Seed:          seed,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tw := &testWorker{id: id, w: w, chaos: chaos, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(tw.done)
		_ = w.Run(ctx)
	}()
	t.Cleanup(tw.stop)
	return tw
}

// stop shuts the worker down gracefully and waits for it to exit.
func (tw *testWorker) stop() {
	tw.cancel()
	<-tw.done
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %s waiting for %s", timeout, what)
}

func waitWorkers(t *testing.T, tf *testFleet, n int) {
	t.Helper()
	waitFor(t, 10*time.Second, fmt.Sprintf("%d live workers", n), func() bool {
		return tf.coord.Workers() >= n
	})
}

type submitResp struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
}

func submitJob(t *testing.T, tf *testFleet, body string) (int, submitResp) {
	t.Helper()
	return submitJobURL(t, tf.ts.URL, body)
}

func submitJobURL(t *testing.T, url, body string) (int, submitResp) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResp
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &sr)
	return resp.StatusCode, sr
}

func mustSubmit(t *testing.T, tf *testFleet, body string) string {
	t.Helper()
	return mustSubmitURL(t, tf.ts.URL, body)
}

func mustSubmitURL(t *testing.T, url, body string) string {
	t.Helper()
	code, sr := submitJobURL(t, url, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	return sr.ID
}

func getJob(t *testing.T, tf *testFleet, id string) serve.JobStatus {
	t.Helper()
	return getJobURL(t, tf.ts.URL, id)
}

func getJobURL(t *testing.T, url, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitJobState(t *testing.T, tf *testFleet, id string, want serve.JobState, timeout time.Duration) serve.JobStatus {
	t.Helper()
	return waitJobStateURL(t, tf.ts.URL, id, want, timeout)
}

func waitJobStateURL(t *testing.T, url, id string, want serve.JobState, timeout time.Duration) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := getJobURL(t, url, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q) while waiting for %s", id, st.State, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %s within %s", id, want, timeout)
	return serve.JobStatus{}
}

func synthJob(seed int64, measure int) string {
	return fmt.Sprintf(`{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":100,"measure":%d,"seed":%d}}`, measure, seed)
}

// localPayload executes body in-process, bypassing the fleet entirely:
// the byte-identical reference for every remote result.
func localPayload(t *testing.T, body string) []byte {
	t.Helper()
	var req serve.JobRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	payload, _, err := serve.ExecuteRequest(context.Background(), &req, sim.RunOptions{CheckEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func fleetMetric(t *testing.T, tf *testFleet, name string) float64 {
	t.Helper()
	return metricURL(t, tf.ts.URL, name)
}

func metricURL(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in /metrics output", name)
	return 0
}

// ---- unit: backoff ----

func TestBackoffBounds(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	for attempt := 1; attempt <= 10; attempt++ {
		raw := base << uint(attempt-1)
		if raw <= 0 || raw > max {
			raw = max
		}
		// random=0 pins the deterministic floor; random→1 the jitter cap.
		if got := Backoff(base, max, attempt, 0); got != raw {
			t.Errorf("attempt %d: floor %s, want %s", attempt, got, raw)
		}
		if got := Backoff(base, max, attempt, 0.999); got < raw || got >= raw+raw/2+time.Millisecond {
			t.Errorf("attempt %d: jittered %s outside [%s, %s)", attempt, got, raw, raw+raw/2)
		}
	}
	// Degenerate inputs stay sane: attempt<1 behaves like 1, base<=0 gets
	// a floor, and huge attempts cannot overflow past max.
	if got := Backoff(base, max, 0, 0); got != base {
		t.Errorf("attempt 0: %s, want %s", got, base)
	}
	if got := Backoff(0, 0, 1, 0); got <= 0 {
		t.Errorf("zero base produced %s", got)
	}
	if got := Backoff(base, max, 63, 0); got != max {
		t.Errorf("attempt 63: %s, want cap %s", got, max)
	}
}

// ---- integration: happy path ----

// TestFleetEndToEndMatchesLocal runs four jobs through a two-worker
// fleet and checks the acceptance criterion that matters most: results
// that crossed the wire are byte-identical to single-process runs, and
// every job reached a terminal state exactly once.
func TestFleetEndToEndMatchesLocal(t *testing.T) {
	opts := Options{
		LeaseTTL:     600 * time.Millisecond,
		PollWait:     150 * time.Millisecond,
		JanitorEvery: 25 * time.Millisecond,
		RetryBase:    20 * time.Millisecond,
		RetryMax:     100 * time.Millisecond,
		Seed:         1,
	}
	tf := newTestFleet(t, opts, serve.Config{})
	startWorker(t, tf, "w1", 11)
	startWorker(t, tf, "w2", 12)
	waitWorkers(t, tf, 2)

	const n = 4
	bodies := make([]string, n)
	ids := make([]string, n)
	for i := range bodies {
		bodies[i] = synthJob(int64(100+i), 20_000)
		ids[i] = mustSubmit(t, tf, bodies[i])
	}
	for i, id := range ids {
		st := waitJobState(t, tf, id, serve.JobDone, 120*time.Second)
		if want := localPayload(t, bodies[i]); !bytes.Equal(st.Result, want) {
			t.Errorf("job %s: fleet result differs from local run\nfleet: %s\nlocal: %s", id, st.Result, want)
		}
	}

	m := tf.srv.Metrics()
	if done, failed, canceled := m.JobsDone.Load(), m.JobsFailed.Load(), m.JobsCanceled.Load(); done != n || failed != 0 || canceled != 0 {
		t.Errorf("terminal accounting done=%d failed=%d canceled=%d, want %d/0/0", done, failed, canceled, n)
	}
	if local := tf.coord.localJobs.Load(); local != 0 {
		t.Errorf("%d jobs leaked to the local pool with two workers live", local)
	}

	// A re-submission is a cache hit serving the remote result's bytes.
	code, sr := submitJob(t, tf, bodies[0])
	if code != http.StatusOK || !sr.Cached {
		t.Fatalf("resubmit: HTTP %d cached=%v, want 200 + cache hit", code, sr.Cached)
	}
	if st := getJob(t, tf, sr.ID); !bytes.Equal(st.Result, localPayload(t, bodies[0])) {
		t.Errorf("cached result differs from local run")
	}
}

// ---- integration: failure handling ----

// TestFleetFailoverWithinLeaseTTL kills a worker (blackholed transport +
// canceled process) while it holds a lease, and requires the coordinator
// to requeue the job within roughly one lease TTL and a second worker to
// finish it — the ISSUE's headline failover criterion.
func TestFleetFailoverWithinLeaseTTL(t *testing.T) {
	opts := Options{
		LeaseTTL:     400 * time.Millisecond,
		PollWait:     100 * time.Millisecond,
		JanitorEvery: 20 * time.Millisecond,
		MaxAttempts:  6,
		RetryBase:    10 * time.Millisecond,
		RetryMax:     50 * time.Millisecond,
		Seed:         2,
	}
	tf := newTestFleet(t, opts, serve.Config{})
	w1 := startWorker(t, tf, "w1", 21)
	waitWorkers(t, tf, 1)

	body := synthJob(7, 400_000)
	id := mustSubmit(t, tf, body)
	waitJobState(t, tf, id, serve.JobRunning, 30*time.Second)

	// Kill w1 mid-job: no give-back can get through, so recovery must
	// come from lease expiry.
	w1.chaos.kill()
	w1.cancel()
	killedAt := time.Now()
	startWorker(t, tf, "w2", 22)

	waitFor(t, 3*opts.LeaseTTL, "lease expiry requeue", func() bool {
		return tf.coord.requeues.Load() >= 1
	})
	if lag := time.Since(killedAt); lag > 3*opts.LeaseTTL {
		t.Errorf("requeue took %s, want within ~one lease TTL (%s)", lag, opts.LeaseTTL)
	}

	st := waitJobState(t, tf, id, serve.JobDone, 120*time.Second)
	if want := localPayload(t, body); !bytes.Equal(st.Result, want) {
		t.Errorf("failover result differs from local run")
	}
	if tf.coord.leaseExpiries.Load() == 0 {
		t.Error("no lease expiry recorded for the killed worker")
	}
	if local := tf.coord.localJobs.Load(); local != 0 {
		t.Errorf("job fell back to the local pool (%d) instead of failing over to w2", local)
	}
	m := tf.srv.Metrics()
	if done := m.JobsDone.Load(); done != 1 {
		t.Errorf("JobsDone=%d, want exactly 1 (no double terminal transition)", done)
	}
}

// TestFleetGracefulGiveBack stops a worker cleanly mid-job: the shutdown
// path reports the job back (requeue) so it moves to the other worker
// immediately, without waiting out the lease TTL.
func TestFleetGracefulGiveBack(t *testing.T) {
	opts := Options{
		LeaseTTL:     10 * time.Second, // long: expiry would blow the test timeout
		PollWait:     100 * time.Millisecond,
		JanitorEvery: 50 * time.Millisecond,
		RetryBase:    10 * time.Millisecond,
		RetryMax:     50 * time.Millisecond,
		Seed:         3,
	}
	tf := newTestFleet(t, opts, serve.Config{})
	w1 := startWorker(t, tf, "w1", 31)
	waitWorkers(t, tf, 1)

	body := synthJob(8, 400_000)
	id := mustSubmit(t, tf, body)
	waitJobState(t, tf, id, serve.JobRunning, 30*time.Second)

	// Bring up the successor before stopping w1 so the fleet never goes
	// workerless (which would legitimately divert the job to the local
	// pool and mask the give-back path).
	startWorker(t, tf, "w2", 32)
	waitWorkers(t, tf, 2)
	w1.stop()

	st := waitJobState(t, tf, id, serve.JobDone, 120*time.Second)
	if want := localPayload(t, body); !bytes.Equal(st.Result, want) {
		t.Errorf("result after give-back differs from local run")
	}
	if tf.coord.requeues.Load() == 0 {
		t.Error("graceful shutdown did not requeue the in-flight job")
	}
	if exp := tf.coord.leaseExpiries.Load(); exp != 0 {
		t.Errorf("%d lease expiries; give-back should requeue without one", exp)
	}
	if local := tf.coord.localJobs.Load(); local != 0 {
		t.Errorf("job ran on the local pool (%d) instead of the second worker", local)
	}
}

// TestFleetLocalFallbackNoWorkers submits to a workerless coordinator:
// it must degrade to in-process execution instead of queueing forever.
func TestFleetLocalFallbackNoWorkers(t *testing.T) {
	opts := Options{
		LeaseTTL:     300 * time.Millisecond,
		JanitorEvery: 20 * time.Millisecond,
		LocalWorkers: 2,
		Seed:         4,
	}
	tf := newTestFleet(t, opts, serve.Config{})

	body := synthJob(9, 5_000)
	id := mustSubmit(t, tf, body)
	st := waitJobState(t, tf, id, serve.JobDone, 60*time.Second)
	if want := localPayload(t, body); !bytes.Equal(st.Result, want) {
		t.Errorf("local-fallback result differs from direct run")
	}
	if local := tf.coord.localJobs.Load(); local != 1 {
		t.Errorf("localJobs=%d, want 1", local)
	}
	if v := fleetMetric(t, tf, "nord_fleet_workers_live"); v != 0 {
		t.Errorf("nord_fleet_workers_live=%v, want 0", v)
	}
	if v := fleetMetric(t, tf, "nord_fleet_local_jobs_total"); v != 1 {
		t.Errorf("nord_fleet_local_jobs_total=%v, want 1", v)
	}
}

// TestFleetCancelPropagates cancels a job leased to a remote worker: the
// next heartbeat carries the cancellation, the worker stops within the
// sim layer's poll bound, and the job lands in canceled exactly once.
// It also pins remote progress reporting: heartbeat snapshots feed the
// job's status like a local run's would.
func TestFleetCancelPropagates(t *testing.T) {
	opts := Options{
		LeaseTTL:     450 * time.Millisecond,
		PollWait:     100 * time.Millisecond,
		JanitorEvery: 20 * time.Millisecond,
		Seed:         5,
	}
	tf := newTestFleet(t, opts, serve.Config{})
	startWorker(t, tf, "w1", 51)
	waitWorkers(t, tf, 1)

	// Effectively endless: only cancellation ends it.
	id := mustSubmit(t, tf, synthJob(10, 80_000_000))
	waitJobState(t, tf, id, serve.JobRunning, 30*time.Second)
	waitFor(t, 30*time.Second, "heartbeat-carried progress", func() bool {
		return getJob(t, tf, id).Progress != nil
	})

	req, _ := http.NewRequest(http.MethodDelete, tf.ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}

	waitFor(t, 30*time.Second, "job canceled", func() bool {
		return getJob(t, tf, id).State == serve.JobCanceled
	})
	if canceled := tf.srv.Metrics().JobsCanceled.Load(); canceled != 1 {
		t.Errorf("JobsCanceled=%d, want exactly 1", canceled)
	}
}

// TestFleetDeadlineFailsJob checks the per-job execution deadline rides
// the lease grant to the worker: a run that blows its wall-clock budget
// comes back failed (not canceled), with the deadline named.
func TestFleetDeadlineFailsJob(t *testing.T) {
	opts := Options{
		LeaseTTL:     600 * time.Millisecond,
		PollWait:     100 * time.Millisecond,
		JanitorEvery: 20 * time.Millisecond,
		JobDeadline:  200 * time.Millisecond,
		Seed:         6,
	}
	tf := newTestFleet(t, opts, serve.Config{})
	startWorker(t, tf, "w1", 61)
	waitWorkers(t, tf, 1)

	id := mustSubmit(t, tf, synthJob(11, 80_000_000))
	waitFor(t, 60*time.Second, "deadline failure", func() bool {
		return getJob(t, tf, id).State == serve.JobFailed
	})
	if st := getJob(t, tf, id); !strings.Contains(st.Error, "deadline") {
		t.Errorf("failure error %q does not name the deadline", st.Error)
	}
	m := tf.srv.Metrics()
	if failed, done := m.JobsFailed.Load(), m.JobsDone.Load(); failed != 1 || done != 0 {
		t.Errorf("failed=%d done=%d, want 1/0", failed, done)
	}
}

// TestFleetRetriesExhausted registers a "leech" worker that leases jobs
// but never heartbeats or reports — the wedged-worker failure mode. The
// job must cycle through MaxAttempts lease grants (each expiring) and
// then fail with a diagnosable error instead of looping forever.
func TestFleetRetriesExhausted(t *testing.T) {
	opts := Options{
		LeaseTTL:     100 * time.Millisecond,
		PollWait:     50 * time.Millisecond,
		JanitorEvery: 10 * time.Millisecond,
		MaxAttempts:  2,
		RetryBase:    10 * time.Millisecond,
		RetryMax:     20 * time.Millisecond,
		Seed:         7,
	}
	tf := newTestFleet(t, opts, serve.Config{})

	// The leech: registers and leases over the raw protocol, then sits on
	// every grant. Its polling keeps it "live", so the coordinator never
	// falls back to local execution — the retry budget must decide.
	leechCtx, stopLeech := context.WithCancel(context.Background())
	defer stopLeech()
	leechDone := make(chan struct{})
	post := func(path string, body any, out any) error {
		b, _ := json.Marshal(body)
		req, err := http.NewRequestWithContext(leechCtx, http.MethodPost, tf.ts.URL+path, bytes.NewReader(b))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := post("/fleet/v1/register", RegisterRequest{WorkerID: "leech"}, nil); err != nil {
		t.Fatal(err)
	}
	go func() {
		defer close(leechDone)
		for leechCtx.Err() == nil {
			var grant LeaseGrant
			_ = post("/fleet/v1/lease", LeaseRequest{WorkerID: "leech", WaitMs: 50}, &grant)
		}
	}()
	t.Cleanup(func() { stopLeech(); <-leechDone })

	id := mustSubmit(t, tf, synthJob(12, 5_000))
	waitFor(t, 60*time.Second, "retries exhausted", func() bool {
		return getJob(t, tf, id).State == serve.JobFailed
	})
	st := getJob(t, tf, id)
	if !strings.Contains(st.Error, "lease attempts") {
		t.Errorf("exhaustion error %q does not explain the lease attempts", st.Error)
	}
	if got := tf.coord.retriesExhausted.Load(); got != 1 {
		t.Errorf("retriesExhausted=%d, want 1", got)
	}
	if granted := tf.coord.leasesGranted.Load(); granted != uint64(opts.MaxAttempts) {
		t.Errorf("leasesGranted=%d, want exactly MaxAttempts=%d", granted, opts.MaxAttempts)
	}
	if failed := tf.srv.Metrics().JobsFailed.Load(); failed != 1 {
		t.Errorf("JobsFailed=%d, want exactly 1", failed)
	}
}
