package search

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nord/internal/noc"
	"nord/internal/power"
	"nord/internal/sim"
)

// fakeEval returns a deterministic, concurrency-safe EvalFunc scoring
// each candidate as a pure function of its config — a stand-in for the
// serve layer's sim-job evaluator. The cache key is the candidate's
// canonical sim config, so aliased genomes collapse exactly as they
// would against the real content-addressed cache.
func fakeEval(calls *atomic.Int64) EvalFunc {
	return func(ctx context.Context, cand Candidate) (Evaluation, error) {
		if calls != nil {
			calls.Add(1)
		}
		key, _ := json.Marshal(cand.Sim)
		c := cand.Config
		// Synthetic but shaped like the real trade-off: more VCs/buffers
		// cost area and energy but cut latency; higher load costs latency.
		lat := 20 + 40*c.Rate + 30/float64(c.VCs) + 10/float64(c.BufferDepth)
		energy := 1 + 0.2*float64(c.VCs) + 0.05*float64(c.BufferDepth) +
			0.1*float64(c.GateIdle) + 0.02*float64(c.WakeThreshold)
		area := 0.1 * float64(c.VCs*c.BufferDepth)
		return Evaluation{
			CacheKey: string(key),
			Request:  json.RawMessage(`{"kind":"synthetic"}`),
			Objectives: Objectives{
				LatencyCycles:   math.Round(lat*1e6) / 1e6,
				EnergyPerFlitPJ: energy,
				AreaMM2:         area,
			},
		}, nil
	}
}

func testSpec(alg string) Spec {
	sp := Spec{
		Algorithm:   alg,
		Seed:        7,
		Generations: 4,
		Population:  12,
		Measure:     16_000,
	}
	return sp.Filled()
}

func TestDominates(t *testing.T) {
	a := Objectives{LatencyCycles: 1, EnergyPerFlitPJ: 1, AreaMM2: 1}
	b := Objectives{LatencyCycles: 2, EnergyPerFlitPJ: 1, AreaMM2: 1}
	if !Dominates(a, b) || Dominates(b, a) {
		t.Fatal("strictly better in one objective must dominate")
	}
	if Dominates(a, a) {
		t.Fatal("a point must not dominate itself")
	}
	c := Objectives{LatencyCycles: 0.5, EnergyPerFlitPJ: 2, AreaMM2: 1}
	if Dominates(a, c) || Dominates(c, a) {
		t.Fatal("trade-off points must be mutually non-dominated")
	}
}

func TestNondominatedFronts(t *testing.T) {
	vecs := [][3]float64{
		{1, 1, 1}, // front 0
		{2, 2, 2}, // front 1 (dominated by 0)
		{1, 2, 0}, // front 0 (trades area against 0)
		{3, 3, 3}, // front 2
	}
	fronts := nondominatedFronts(vecs)
	if len(fronts) != 3 {
		t.Fatalf("got %d fronts, want 3: %v", len(fronts), fronts)
	}
	if len(fronts[0]) != 2 || len(fronts[1]) != 1 || len(fronts[2]) != 1 {
		t.Fatalf("front sizes wrong: %v", fronts)
	}
	if fronts[1][0] != 1 || fronts[2][0] != 3 {
		t.Fatalf("front membership wrong: %v", fronts)
	}
}

func TestCrowdingBoundariesAreInfinite(t *testing.T) {
	vecs := [][3]float64{
		{1, 5, 0}, {2, 4, 0}, {3, 3, 0}, {4, 2, 0}, {5, 1, 0},
	}
	front := []int{0, 1, 2, 3, 4}
	dist := crowdingDistances(front, vecs)
	if !math.IsInf(dist[0], 1) || !math.IsInf(dist[4], 1) {
		t.Fatalf("boundary points must get +Inf crowding: %v", dist)
	}
	for _, i := range []int{1, 2, 3} {
		if math.IsInf(dist[i], 1) || dist[i] <= 0 {
			t.Fatalf("interior point %d has crowding %v", i, dist[i])
		}
	}
}

// TestDecodeRepair pins the genome repair rules: NoRD is clamped to its
// 3-VC minimum, wake thresholds exist only for NoRD, and No_PG carries
// no gate-idle knob — so aliased genomes decode to the same canonical
// sim config (one cache key, one evaluation).
func TestDecodeRepair(t *testing.T) {
	sp := testSpec("nsga2")
	var nord, nopg int
	for i, d := range sp.Space.Designs {
		switch d {
		case "NoRD":
			nord = i
		case "No_PG":
			nopg = i
		}
	}
	// Space.VCs is [2,3,4,6] after fill; index 0 is the 2-VC value.
	g := Genome{axisDesign: nord, axisVCs: 0, axisGateIdle: 1, axisWake: 2}
	cand, err := sp.decode(g, sp.Measure)
	if err != nil {
		t.Fatal(err)
	}
	if cand.Config.VCs != 3 || cand.Sim.VCsPerClass != 3 {
		t.Fatalf("NoRD 2-VC genome not repaired to 3: %+v", cand.Config)
	}
	if cand.Config.WakeThreshold == 0 || cand.Sim.ThresholdPower != cand.Config.WakeThreshold {
		t.Fatalf("NoRD wake threshold not wired: %+v", cand.Config)
	}

	// Two NoRD genomes differing only in the repaired VC index alias to
	// one canonical config.
	g2 := g
	g2[axisVCs] = 1 // the explicit 3-VC value
	cand2, err := sp.decode(g2, sp.Measure)
	if err != nil {
		t.Fatal(err)
	}
	if cand.Sim != cand2.Sim {
		t.Fatalf("aliased genomes decode differently:\n%+v\n%+v", cand.Sim, cand2.Sim)
	}

	// A 2-VC conventional design on the torus is repaired to the 3-VC
	// minimum its dateline escape pair requires, and the alias name
	// "concentrated" canonicalizes to "cmesh".
	spTopo := testSpec("nsga2")
	spTopo.Space.Topologies = []string{"torus", "concentrated"}
	gt := Genome{axisDesign: nopg, axisTopology: 0, axisVCs: 0}
	ct, err := spTopo.decode(gt, spTopo.Measure)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Config.Topology != "torus" || ct.Config.VCs != 3 || ct.Sim.VCsPerClass != 3 {
		t.Fatalf("torus 2-VC genome not repaired: %+v", ct.Config)
	}
	gc := Genome{axisDesign: nopg, axisTopology: 1, axisVCs: 0}
	cc, err := spTopo.decode(gc, spTopo.Measure)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Config.Topology != "cmesh" || cc.Sim.Topology != "cmesh" {
		t.Fatalf("alias topology not canonicalized: %+v", cc.Config)
	}

	// No_PG never gates: its gate-idle and wake genes are inert, and the
	// decoded config canonicalizes them away.
	gp := Genome{axisDesign: nopg, axisVCs: 2, axisGateIdle: 0, axisWake: 0}
	gq := Genome{axisDesign: nopg, axisVCs: 2, axisGateIdle: 2, axisWake: 1}
	cp, _ := sp.decode(gp, sp.Measure)
	cq, _ := sp.decode(gq, sp.Measure)
	if cp.Config.GateIdle != 0 || cp.Config.WakeThreshold != 0 {
		t.Fatalf("No_PG carries gating knobs: %+v", cp.Config)
	}
	if cp.Sim != cq.Sim {
		t.Fatalf("No_PG gate-idle aliases decode differently:\n%+v\n%+v", cp.Sim, cq.Sim)
	}
}

// TestDriverDeterministic is the core contract: the same (seed, spec)
// reproduces the Pareto front byte for byte even though evaluations run
// concurrently and finish in timing-dependent order.
func TestDriverDeterministic(t *testing.T) {
	for _, alg := range []string{"nsga2", "halving"} {
		t.Run(alg, func(t *testing.T) {
			run := func() []byte {
				eval := fakeEval(nil)
				spec := testSpec(alg)
				// Exercise the topology axis: reruns must reproduce the
				// front byte for byte across mixed-topology candidates too.
				spec.Space.Topologies = []string{"mesh", "torus", "cmesh"}
				d := &Driver{
					Spec:        spec,
					Concurrency: 8,
					Eval: func(ctx context.Context, cand Candidate) (Evaluation, error) {
						// Jitter completion order to shake out ordering bugs.
						time.Sleep(time.Duration(len(cand.Config.Design)) * 100 * time.Microsecond)
						return eval(ctx, cand)
					},
				}
				res, err := d.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Front) == 0 {
					t.Fatal("empty front")
				}
				b, err := json.Marshal(res.Front)
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			a, b := run(), run()
			if !bytes.Equal(a, b) {
				t.Fatalf("front not reproducible:\n%s\n%s", a, b)
			}
		})
	}
}

// TestDriverFrontIsNondominated checks the output invariant directly:
// no front point dominates another, and generations are recorded.
func TestDriverFrontIsNondominated(t *testing.T) {
	d := &Driver{Spec: testSpec("nsga2"), Eval: fakeEval(nil)}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Front {
		if p.CacheKey == "" || len(p.Request) == 0 {
			t.Fatalf("front point %d missing provenance: %+v", i, p)
		}
		for k, q := range res.Front {
			if i != k && Dominates(p.Objectives, q.Objectives) {
				t.Fatalf("front point %d dominates %d", i, k)
			}
		}
	}
	if res.Stats.Generations != d.Spec.Generations {
		t.Fatalf("ran %d generations, want %d", res.Stats.Generations, d.Spec.Generations)
	}
	if res.Stats.Evaluations != d.Spec.Generations*d.Spec.Population {
		t.Fatalf("made %d evaluations, want %d", res.Stats.Evaluations, d.Spec.Generations*d.Spec.Population)
	}
}

// TestHalvingBudget pins the successive-halving schedule: each rung
// doubles the measured cycles up to the spec's full budget (floored at
// 1000), and the surviving population halves.
func TestHalvingBudget(t *testing.T) {
	var mu sync.Mutex
	perRung := map[int]map[int]int{} // measure -> count (by rung via gen)
	base := fakeEval(nil)
	d := &Driver{
		Spec: testSpec("halving"),
		Eval: func(ctx context.Context, cand Candidate) (Evaluation, error) {
			ev, err := base(ctx, cand)
			mu.Lock()
			m := cand.Sim.Measure
			if perRung[m] == nil {
				perRung[m] = map[int]int{}
			}
			perRung[m][m]++
			mu.Unlock()
			return ev, err
		},
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Generations=4, Measure=16000: rungs at 2000, 4000, 8000, 16000.
	for _, want := range []int{2000, 4000, 8000, 16000} {
		if perRung[want] == nil {
			t.Fatalf("no evaluations at measure %d; got %v", want, keysOf(perRung))
		}
	}
	if len(perRung) != 4 {
		t.Fatalf("unexpected rung budgets: %v", keysOf(perRung))
	}
	// Every front point comes from the final (full-budget) rung.
	for _, p := range res.Front {
		var req struct{}
		_ = req
		if p.Generation != d.Spec.Generations-1 {
			t.Fatalf("front point from rung %d, want final rung %d", p.Generation, d.Spec.Generations-1)
		}
	}
}

func keysOf(m map[int]map[int]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// TestHalvingMeasureFloor: tiny budgets never drop below the simulator's
// 1000-cycle floor.
func TestHalvingMeasureFloor(t *testing.T) {
	var mu sync.Mutex
	min := 1 << 30
	base := fakeEval(nil)
	sp := testSpec("halving")
	sp.Measure = 1000
	d := &Driver{
		Spec: sp,
		Eval: func(ctx context.Context, cand Candidate) (Evaluation, error) {
			mu.Lock()
			if cand.Sim.Measure < min {
				min = cand.Sim.Measure
			}
			mu.Unlock()
			return base(ctx, cand)
		},
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if min < 1000 {
		t.Fatalf("a rung measured %d cycles, below the 1000 floor", min)
	}
}

// TestInfeasibleConstraintDominated: infeasible candidates never reach
// the front but are counted, and they rank below every feasible point in
// selection.
func TestInfeasibleConstraintDominated(t *testing.T) {
	base := fakeEval(nil)
	d := &Driver{
		Spec: testSpec("nsga2"),
		Eval: func(ctx context.Context, cand Candidate) (Evaluation, error) {
			ev, err := base(ctx, cand)
			if cand.Config.Rate >= 0.30 {
				ev.Infeasible = true // pretend high load saturates
			}
			return ev, err
		},
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Infeasible == 0 {
		t.Skip("seed produced no high-rate candidates") // astronomically unlikely
	}
	for _, p := range res.Front {
		if p.Config.Rate >= 0.30 {
			t.Fatalf("infeasible candidate on the front: %+v", p.Config)
		}
	}
}

// TestDriverEvalErrorFailsSearch: a real evaluation error (not
// infeasibility) aborts the whole search.
func TestDriverEvalErrorFailsSearch(t *testing.T) {
	var n atomic.Int64
	d := &Driver{
		Spec: testSpec("nsga2"),
		Eval: func(ctx context.Context, cand Candidate) (Evaluation, error) {
			if n.Add(1) == 5 {
				return Evaluation{}, fmt.Errorf("backend exploded")
			}
			return fakeEval(nil)(ctx, cand)
		},
	}
	if _, err := d.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("eval error not surfaced: %v", err)
	}
}

// TestDriverCancel: canceling the context aborts in-flight evaluations
// and returns promptly with the cause.
func TestDriverCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	d := &Driver{
		Spec:        testSpec("nsga2"),
		Concurrency: 2,
		Eval: func(ctx context.Context, cand Candidate) (Evaluation, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return Evaluation{}, ctx.Err()
		},
	}
	errc := make(chan error, 1)
	go func() {
		_, err := d.Run(ctx)
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("canceled search returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled search did not return")
	}
}

// TestExtract covers objective extraction from a sim result, including
// the infeasibility edges.
func TestExtract(t *testing.T) {
	sp := testSpec("nsga2")
	var nordIdx int
	for i, d := range sp.Space.Designs {
		if d == "NoRD" {
			nordIdx = i
		}
	}
	cand, err := sp.decode(Genome{axisDesign: nordIdx, axisVCs: 2, axisDepth: 1, axisGateIdle: 1, axisWake: 1, axisRate: 1}, sp.Measure)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Result{
		Design: noc.NoRD, Nodes: 16, Cycles: 20_000,
		AvgPacketLatency: 25.5, Throughput: 0.1, PacketsDelivered: 8000,
		Energy: power.Breakdown{RouterDynamic: 1e-6, RouterStatic: 2e-6},
	}
	obj, ok := Extract(cand.Sim, res)
	if !ok {
		t.Fatal("healthy run classified infeasible")
	}
	if obj.LatencyCycles != 25.5 {
		t.Fatalf("latency %v", obj.LatencyCycles)
	}
	flits := 0.1 * 16 * 20_000
	wantE := 3e-6 / flits * 1e12
	if math.Abs(obj.EnergyPerFlitPJ-wantE) > 1e-9 {
		t.Fatalf("energy/flit %v, want %v", obj.EnergyPerFlitPJ, wantE)
	}
	if obj.AreaMM2 <= 0 {
		t.Fatalf("area %v", obj.AreaMM2)
	}

	// The area objective must feel the VC/depth genes.
	big, _ := sp.decode(Genome{axisDesign: nordIdx, axisVCs: 3, axisDepth: 2, axisGateIdle: 1, axisWake: 1, axisRate: 1}, sp.Measure)
	bigObj, _ := Extract(big.Sim, res)
	if bigObj.AreaMM2 <= obj.AreaMM2 {
		t.Fatalf("bigger router (VCs %d depth %d) not larger: %v <= %v",
			big.Config.VCs, big.Config.BufferDepth, bigObj.AreaMM2, obj.AreaMM2)
	}

	for _, bad := range []sim.Result{
		{Err: "deadlock"},
		{Nodes: 16, Cycles: 100, AvgPacketLatency: 10, Throughput: 0.1},     // zero delivered
		{Nodes: 16, Cycles: 100, PacketsDelivered: 5, Throughput: 0.1},      // zero latency
		{Nodes: 16, Cycles: 100, AvgPacketLatency: 10, PacketsDelivered: 5}, // zero flits
	} {
		if _, ok := Extract(cand.Sim, bad); ok {
			t.Fatalf("result %+v classified feasible", bad)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec("nsga2")
	if err := good.Validate(); err != nil {
		t.Fatalf("filled default spec invalid: %v", err)
	}
	for name, mut := range map[string]func(*Spec){
		"algorithm": func(sp *Spec) { sp.Algorithm = "annealing" },
		"gens":      func(sp *Spec) { sp.Generations = 65 },
		"pop":       func(sp *Spec) { sp.Population = 1 },
		"xrate":     func(sp *Spec) { sp.CrossoverRate = 1.5 },
		"measure":   func(sp *Spec) { sp.Measure = 10 },
		"pattern":   func(sp *Spec) { sp.Pattern = "zigzag" },
		"design":    func(sp *Spec) { sp.Space.Designs = []string{"NoRD", "NoRD"} },
		"topology":  func(sp *Spec) { sp.Space.Topologies = []string{"hypercube"} },
		"topo_dup":  func(sp *Spec) { sp.Space.Topologies = []string{"cmesh", "concentrated"} },
		"width":     func(sp *Spec) { sp.Space.Widths = []int{1} },
		"vcs":       func(sp *Spec) { sp.Space.VCs = []int{1} },
		"rate":      func(sp *Spec) { sp.Space.Rates = []float64{0} },
	} {
		sp := testSpec("nsga2")
		mut(&sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: bad spec accepted", name)
		}
	}
}

// TestSpaceCanonicalizes: unordered, duplicated axis values fill to the
// same canonical space (one cache key server-side).
func TestSpaceCanonicalizes(t *testing.T) {
	a := Space{VCs: []int{4, 2, 4, 3}, Rates: []float64{0.3, 0.1, 0.3}}
	b := Space{VCs: []int{2, 3, 4}, Rates: []float64{0.1, 0.3}}
	a.fill()
	b.fill()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("equivalent spaces canonicalize differently:\n%s\n%s", aj, bj)
	}
}

func TestWriteFrontCSV(t *testing.T) {
	pts := []Point{{
		Config: PointConfig{
			Design: "NoRD", Topology: "mesh", Width: 4, VCs: 3,
			BufferDepth: 5, GateIdle: 2, WakeThreshold: 6, Rate: 0.15,
		},
		CacheKey:   "abc123",
		Objectives: Objectives{LatencyCycles: 25.25, EnergyPerFlitPJ: 1.5, AreaMM2: 2.75},
		Generation: 3,
	}}
	var buf bytes.Buffer
	if err := WriteFrontCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "design,topology,width,vcs") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if lines[1] != "NoRD,mesh,4,3,5,2,6,0.15,25.25,1.5,2.75,3,abc123" {
		t.Fatalf("bad row: %s", lines[1])
	}
}
