// Package search implements automated design-space exploration over the
// NoRD simulator: NSGA-II-style multi-objective search (with a simpler
// successive-halving fallback) across the power-gating design knobs,
// scoring mean packet latency against energy-per-flit and router area.
//
// The search loop is deterministic: a seeded RNG drives every stochastic
// choice, candidate evaluations are pure functions of their configs, and
// all orderings are total (cache-key tie-breaks), so a spec with a fixed
// seed reproduces its Pareto front byte for byte. Candidate evaluation
// is delegated to an EvalFunc seam; the serve layer implements it by
// submitting each candidate as an ordinary content-addressed sim job,
// which dedups identical candidates fleet-wide and memoizes the frontier
// across generations and across users.
package search

import (
	"fmt"
	"sort"

	"nord/internal/noc"
	"nord/internal/sim"
	"nord/internal/topology"
	"nord/internal/traffic"
)

// Genome axes, one per explored knob. A genome is a vector of indices
// into the Space's per-axis value lists.
const (
	axisDesign = iota
	axisTopology
	axisWidth
	axisVCs
	axisDepth
	axisGateIdle
	axisWake
	axisRate
	numAxes
)

// Genome is one candidate's position in the space: an index per axis.
type Genome [numAxes]int

// Space lists the values each axis may take. Empty axes take defaults
// from DefaultSpace; Filled sorts and dedups every axis so semantically
// identical spaces canonicalize (and hash) identically.
type Space struct {
	Designs    []string `json:"designs,omitempty"`
	Topologies []string `json:"topologies,omitempty"`
	Widths     []int    `json:"widths,omitempty"`
	// VCs are virtual channels per class; NoRD candidates are repaired up
	// to its 3-VC minimum (ring escape pair + one adaptive).
	VCs          []int `json:"vcs,omitempty"`
	BufferDepths []int `json:"buffer_depths,omitempty"`
	// GateIdle is the consecutive-idle-cycle count before a router gates
	// off; ignored (and canonicalized away) for No_PG candidates.
	GateIdle []int `json:"gate_idle,omitempty"`
	// WakeThresholds are NoRD power-centric wakeup thresholds
	// (Params.ThresholdPower); canonicalized away for other designs.
	WakeThresholds []int     `json:"wake_thresholds,omitempty"`
	Rates          []float64 `json:"rates,omitempty"`
}

// DefaultSpace is the grid explored when the spec leaves Space empty: all
// four designs on the paper's 4x4 mesh with a modest microarchitecture
// and load sweep — small enough for interactive searches, rich enough
// that the latency/energy/area trade-off is real.
func DefaultSpace() Space {
	return Space{
		Designs:        []string{"No_PG", "Conv_PG", "Conv_PG_OPT", "NoRD"},
		Topologies:     []string{"mesh"},
		Widths:         []int{4},
		VCs:            []int{2, 3, 4, 6},
		BufferDepths:   []int{2, 5, 8},
		GateIdle:       []int{1, 2, 6},
		WakeThresholds: []int{2, 6, 12},
		Rates:          []float64{0.05, 0.15, 0.30},
	}
}

func (s *Space) fill() {
	def := DefaultSpace()
	if len(s.Designs) == 0 {
		s.Designs = def.Designs
	}
	if len(s.Topologies) == 0 {
		s.Topologies = def.Topologies
	}
	if len(s.Widths) == 0 {
		s.Widths = def.Widths
	}
	if len(s.VCs) == 0 {
		s.VCs = def.VCs
	}
	if len(s.BufferDepths) == 0 {
		s.BufferDepths = def.BufferDepths
	}
	if len(s.GateIdle) == 0 {
		s.GateIdle = def.GateIdle
	}
	if len(s.WakeThresholds) == 0 {
		s.WakeThresholds = def.WakeThresholds
	}
	if len(s.Rates) == 0 {
		s.Rates = def.Rates
	}
	// Canonical axis order: designs keep their given order (it is a label
	// set, already validated unique); numeric axes sort and dedup.
	s.Widths = dedupInts(s.Widths)
	s.VCs = dedupInts(s.VCs)
	s.BufferDepths = dedupInts(s.BufferDepths)
	s.GateIdle = dedupInts(s.GateIdle)
	s.WakeThresholds = dedupInts(s.WakeThresholds)
	s.Rates = dedupFloats(s.Rates)
}

func dedupInts(v []int) []int {
	sort.Ints(v)
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func dedupFloats(v []float64) []float64 {
	sort.Float64s(v)
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// axisLen returns the number of values on an axis.
func (s *Space) axisLen(axis int) int {
	switch axis {
	case axisDesign:
		return len(s.Designs)
	case axisTopology:
		return len(s.Topologies)
	case axisWidth:
		return len(s.Widths)
	case axisVCs:
		return len(s.VCs)
	case axisDepth:
		return len(s.BufferDepths)
	case axisGateIdle:
		return len(s.GateIdle)
	case axisWake:
		return len(s.WakeThresholds)
	case axisRate:
		return len(s.Rates)
	}
	return 0
}

// validate checks every axis value; errors are client errors.
func (s *Space) validate() error {
	if len(s.Designs) == 0 {
		return fmt.Errorf("search: space has no designs")
	}
	seen := map[noc.Design]bool{}
	for _, name := range s.Designs {
		d, err := noc.DesignByName(name)
		if err != nil {
			return fmt.Errorf("search: %w", err)
		}
		if seen[d] {
			return fmt.Errorf("search: duplicate design %q", name)
		}
		seen[d] = true
	}
	seenTopo := map[topology.Kind]bool{}
	for _, t := range s.Topologies {
		k, err := topology.KindByName(t)
		if err != nil {
			return fmt.Errorf("search: %w", err)
		}
		if seenTopo[k] {
			return fmt.Errorf("search: duplicate topology %q", t)
		}
		seenTopo[k] = true
	}
	for _, w := range s.Widths {
		if w < 2 {
			return fmt.Errorf("search: grid width %d below the 2x2 minimum", w)
		}
		if w > 256 {
			return fmt.Errorf("search: grid width %d above the 256 limit", w)
		}
	}
	for _, v := range s.VCs {
		if v < 2 {
			return fmt.Errorf("search: %d VCs per class below the 2-VC minimum", v)
		}
		if v > 64 {
			return fmt.Errorf("search: %d VCs per class above the 64-VC port limit", v)
		}
	}
	for _, d := range s.BufferDepths {
		if d < 1 {
			return fmt.Errorf("search: buffer depth %d must be positive", d)
		}
	}
	for _, g := range s.GateIdle {
		if g < 1 {
			return fmt.Errorf("search: gate_idle %d must be positive", g)
		}
	}
	for _, t := range s.WakeThresholds {
		if t < 1 {
			return fmt.Errorf("search: wake threshold %d must be positive", t)
		}
	}
	for _, r := range s.Rates {
		if r <= 0 || r > 1 {
			return fmt.Errorf("search: rate %g outside (0, 1] flits/node/cycle", r)
		}
	}
	return nil
}

// Spec is the POST /v1/search body: search hyperparameters plus the
// space to explore. The zero value of every field selects a default.
type Spec struct {
	// Algorithm is "nsga2" (default) or "halving" (successive halving:
	// each rung keeps the better half and doubles the measured cycles).
	Algorithm string `json:"algorithm,omitempty"`
	// Seed drives every stochastic choice of the search loop; identical
	// (seed, spec) pairs reproduce the front byte for byte.
	Seed        int64 `json:"seed"`
	Generations int   `json:"generations,omitempty"`
	Population  int   `json:"population,omitempty"`
	// CrossoverRate / MutationRate tune the NSGA-II variation operators.
	CrossoverRate float64 `json:"crossover_rate,omitempty"`
	MutationRate  float64 `json:"mutation_rate,omitempty"`
	// Pattern / Warmup / Measure / SimSeed configure every candidate's
	// simulation (warmup 0 selects 1000 cycles; measure 0 selects 20000 —
	// search evaluations trade precision for breadth).
	Pattern string `json:"pattern,omitempty"`
	Warmup  int    `json:"warmup,omitempty"`
	Measure int    `json:"measure,omitempty"`
	SimSeed int64  `json:"sim_seed,omitempty"`
	Space   Space  `json:"space,omitempty"`
}

// Filled returns the spec with every default resolved — the canonical
// form the serve layer hashes for its job key.
func (sp Spec) Filled() Spec {
	if sp.Algorithm == "" {
		sp.Algorithm = "nsga2"
	}
	if sp.Generations == 0 {
		sp.Generations = 6
	}
	if sp.Population == 0 {
		sp.Population = 16
	}
	if sp.CrossoverRate == 0 {
		sp.CrossoverRate = 0.9
	}
	if sp.MutationRate == 0 {
		sp.MutationRate = 0.15
	}
	if sp.Pattern == "" {
		sp.Pattern = "uniform"
	}
	if sp.Warmup == 0 {
		sp.Warmup = 1000
	}
	if sp.Measure == 0 {
		sp.Measure = 20_000
	}
	sp.Space.fill()
	return sp
}

// Validate checks a filled spec; errors are client errors.
func (sp *Spec) Validate() error {
	switch sp.Algorithm {
	case "nsga2", "halving":
	default:
		return fmt.Errorf("search: unknown algorithm %q (nsga2, halving)", sp.Algorithm)
	}
	if sp.Generations < 1 || sp.Generations > 64 {
		return fmt.Errorf("search: generations %d outside [1, 64]", sp.Generations)
	}
	if sp.Population < 2 || sp.Population > 256 {
		return fmt.Errorf("search: population %d outside [2, 256]", sp.Population)
	}
	if sp.CrossoverRate < 0 || sp.CrossoverRate > 1 {
		return fmt.Errorf("search: crossover_rate %g outside [0, 1]", sp.CrossoverRate)
	}
	if sp.MutationRate < 0 || sp.MutationRate > 1 {
		return fmt.Errorf("search: mutation_rate %g outside [0, 1]", sp.MutationRate)
	}
	if sp.Warmup < 0 {
		return fmt.Errorf("search: negative warmup %d", sp.Warmup)
	}
	if sp.Measure < 1000 {
		return fmt.Errorf("search: measure %d below the 1000-cycle floor", sp.Measure)
	}
	if _, err := traffic.PatternByName(sp.Pattern); err != nil {
		return fmt.Errorf("search: %w", err)
	}
	return sp.Space.validate()
}

// PointConfig is a candidate's decoded, repaired configuration — the
// human-readable provenance attached to every front point. Knobs a
// design does not use are zeroed (and omitted from JSON) so semantically
// identical candidates render, and cache-key, identically.
type PointConfig struct {
	Design        string  `json:"design"`
	Topology      string  `json:"topology"`
	Width         int     `json:"width"`
	VCs           int     `json:"vcs"`
	BufferDepth   int     `json:"buffer_depth"`
	GateIdle      int     `json:"gate_idle,omitempty"`
	WakeThreshold int     `json:"wake_threshold,omitempty"`
	Rate          float64 `json:"rate"`
}

// Candidate is a decoded genome: the provenance config plus the filled
// simulation config whose canonical JSON is the candidate's identity.
type Candidate struct {
	Config PointConfig
	Sim    sim.SynthConfig
}

// decode maps a genome onto a runnable candidate, repairing genes a
// design cannot express so aliased genomes collapse onto one cache key:
// NoRD's VC count is clamped to its 3-VC minimum (and every design's on
// the torus, whose dateline pair needs 2 escape VCs + 1 adaptive), wake
// thresholds only exist for NoRD, No_PG never gates so its gate-idle
// gene is inert, and topology aliases ("concentrated") canonicalize.
func (sp *Spec) decode(g Genome, measure int) (Candidate, error) {
	s := &sp.Space
	design, err := noc.DesignByName(s.Designs[g[axisDesign]])
	if err != nil {
		return Candidate{}, err
	}
	kind, err := topology.KindByName(s.Topologies[g[axisTopology]])
	if err != nil {
		return Candidate{}, err
	}
	pc := PointConfig{
		Design:      design.String(),
		Topology:    kind.String(),
		Width:       s.Widths[g[axisWidth]],
		VCs:         s.VCs[g[axisVCs]],
		BufferDepth: s.BufferDepths[g[axisDepth]],
		Rate:        s.Rates[g[axisRate]],
	}
	if (design == noc.NoRD || kind == topology.KindTorus) && pc.VCs < 3 {
		pc.VCs = 3
	}
	if design != noc.NoPG {
		pc.GateIdle = s.GateIdle[g[axisGateIdle]]
	}
	if design == noc.NoRD {
		pc.WakeThreshold = s.WakeThresholds[g[axisWake]]
	}
	warmup := sp.Warmup
	if warmup == 0 {
		warmup = sim.ZeroWarmup
	}
	cfg := sim.SynthConfig{
		Design:         design,
		Width:          pc.Width,
		Height:         pc.Width,
		Topology:       pc.Topology,
		Pattern:        sp.Pattern,
		Rate:           pc.Rate,
		Warmup:         warmup,
		Measure:        measure,
		Seed:           sp.SimSeed,
		VCsPerClass:    pc.VCs,
		BufferDepth:    pc.BufferDepth,
		GateIdleCycles: pc.GateIdle,
		ThresholdPower: pc.WakeThreshold,
	}.Filled()
	return Candidate{Config: pc, Sim: cfg}, nil
}

// randomGenome draws a uniform genome from the space.
func (sp *Spec) randomGenome(intn func(int) int) Genome {
	var g Genome
	for a := 0; a < numAxes; a++ {
		g[a] = intn(sp.Space.axisLen(a))
	}
	return g
}
