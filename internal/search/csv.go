package search

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteFrontCSV renders a Pareto front as CSV, one row per point, floats
// at full round-trip precision.
func WriteFrontCSV(w io.Writer, pts []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"design", "topology", "width", "vcs", "buffer_depth", "gate_idle",
		"wake_threshold", "rate", "latency_cycles", "energy_per_flit_pj",
		"area_mm2", "generation", "cache_key",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, p := range pts {
		if err := cw.Write([]string{
			p.Config.Design,
			p.Config.Topology,
			strconv.Itoa(p.Config.Width),
			strconv.Itoa(p.Config.VCs),
			strconv.Itoa(p.Config.BufferDepth),
			strconv.Itoa(p.Config.GateIdle),
			strconv.Itoa(p.Config.WakeThreshold),
			f(p.Config.Rate),
			f(p.Objectives.LatencyCycles),
			f(p.Objectives.EnergyPerFlitPJ),
			f(p.Objectives.AreaMM2),
			strconv.Itoa(p.Generation),
			p.CacheKey,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
