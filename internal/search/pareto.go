package search

import (
	"math"
	"sort"
)

var inf = math.Inf(1)

// dominates reports whether a Pareto-dominates b: no worse in every
// objective and strictly better in at least one (all minimized).
func dominates(a, b [3]float64) bool {
	better := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

// Dominates reports whether a Pareto-dominates b (all objectives
// minimized) — exported for tests and downstream tooling.
func Dominates(a, b Objectives) bool { return dominates(a.vector(), b.vector()) }

// nondominatedFronts performs the NSGA-II fast non-dominated sort,
// returning successive fronts of indices into vecs (front 0 is the
// Pareto front). The O(n^2) pairwise pass is fine at search population
// sizes.
func nondominatedFronts(vecs [][3]float64) [][]int {
	n := len(vecs)
	domCount := make([]int, n)    // how many points dominate i
	dominated := make([][]int, n) // points i dominates
	var front []int
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i == k {
				continue
			}
			if dominates(vecs[i], vecs[k]) {
				dominated[i] = append(dominated[i], k)
			} else if dominates(vecs[k], vecs[i]) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			front = append(front, i)
		}
	}
	var fronts [][]int
	for len(front) > 0 {
		fronts = append(fronts, front)
		var next []int
		for _, i := range front {
			for _, k := range dominated[i] {
				domCount[k]--
				if domCount[k] == 0 {
					next = append(next, k)
				}
			}
		}
		front = next
	}
	return fronts
}

// crowdingDistances computes the NSGA-II crowding distance for one front
// (indices into vecs); boundary points get +Inf so extremes survive
// environmental selection.
func crowdingDistances(front []int, vecs [][3]float64) map[int]float64 {
	dist := make(map[int]float64, len(front))
	for _, i := range front {
		dist[i] = 0
	}
	if len(front) <= 2 {
		for _, i := range front {
			dist[i] = inf
		}
		return dist
	}
	order := make([]int, len(front))
	for m := 0; m < 3; m++ {
		copy(order, front)
		sort.Slice(order, func(a, b int) bool {
			if vecs[order[a]][m] != vecs[order[b]][m] {
				return vecs[order[a]][m] < vecs[order[b]][m]
			}
			return order[a] < order[b]
		})
		lo, hi := vecs[order[0]][m], vecs[order[len(order)-1]][m]
		dist[order[0]] = inf
		dist[order[len(order)-1]] = inf
		if hi == lo {
			continue
		}
		for k := 1; k < len(order)-1; k++ {
			if dist[order[k]] == inf {
				continue
			}
			dist[order[k]] += (vecs[order[k+1]][m] - vecs[order[k-1]][m]) / (hi - lo)
		}
	}
	return dist
}

// paretoFilter returns the indices of the non-dominated members of vecs.
func paretoFilter(vecs [][3]float64) []int {
	var out []int
	for i := range vecs {
		dominatedBy := false
		for k := range vecs {
			if k != i && dominates(vecs[k], vecs[i]) {
				dominatedBy = true
				break
			}
		}
		if !dominatedBy {
			out = append(out, i)
		}
	}
	return out
}
