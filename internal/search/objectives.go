package search

import (
	"encoding/json"

	"nord/internal/noc"
	"nord/internal/power"
	"nord/internal/sim"
)

// Objectives is a candidate's objective vector; all three are minimized.
type Objectives struct {
	// LatencyCycles is the mean packet latency over the measured window.
	LatencyCycles float64 `json:"latency_cycles"`
	// EnergyPerFlitPJ is total network energy divided by delivered flits.
	EnergyPerFlitPJ float64 `json:"energy_per_flit_pj"`
	// AreaMM2 is the total router area of the mesh, scaled to the
	// candidate's VC count and buffer depth.
	AreaMM2 float64 `json:"area_mm2"`
}

func (o Objectives) vector() [3]float64 {
	return [3]float64{o.LatencyCycles, o.EnergyPerFlitPJ, o.AreaMM2}
}

// powerDesign maps the noc design enum onto the power/area model's; the
// two packages deliberately share ordinals.
func powerDesign(d noc.Design) power.Design { return power.Design(int(d)) }

// Extract computes the objective vector from a finished run. ok is false
// for infeasible candidates — saturated or deadlocked configurations
// that delivered nothing measurable; they are constraint-dominated by
// every feasible point rather than failing the search.
func Extract(cfg sim.SynthConfig, res sim.Result) (Objectives, bool) {
	if res.Err != "" || res.PacketsDelivered == 0 || res.AvgPacketLatency <= 0 {
		return Objectives{}, false
	}
	flits := res.Throughput * float64(res.Nodes) * float64(res.Cycles)
	if flits <= 0 {
		return Objectives{}, false
	}
	model, err := power.New(cfg.Tech)
	if err != nil {
		return Objectives{}, false
	}
	routerArea := model.RouterAreaFor(powerDesign(cfg.Design), cfg.VCsPerClass, cfg.BufferDepth).Total()
	return Objectives{
		LatencyCycles:   res.AvgPacketLatency,
		EnergyPerFlitPJ: res.Energy.Total() / flits * 1e12,
		AreaMM2:         routerArea * float64(res.Nodes),
	}, true
}

// Evaluation is one candidate's scored outcome, as produced by an
// EvalFunc. CacheKey is the candidate's content address (the dedup
// identity across generations); Request is the exact job body that
// evaluated it (provenance: re-POST it to /v1/jobs to reproduce the
// point); Cached reports whether this evaluation was served without a
// fresh simulation.
type Evaluation struct {
	CacheKey   string          `json:"cache_key"`
	Request    json.RawMessage `json:"request,omitempty"`
	Cached     bool            `json:"-"`
	Infeasible bool            `json:"-"`
	Objectives Objectives      `json:"objectives"`
}

// Point is one member of the Pareto front, with full provenance.
type Point struct {
	Config     PointConfig     `json:"config"`
	CacheKey   string          `json:"cache_key"`
	Request    json.RawMessage `json:"request,omitempty"`
	Objectives Objectives      `json:"objectives"`
	// Generation is the generation (or halving rung) the point was first
	// evaluated in.
	Generation int `json:"generation"`
}

// Stats summarizes a finished search. Unlike Front, Stats is NOT part of
// the determinism contract: CacheHits depends on what earlier searches
// left in the server's cache.
type Stats struct {
	Generations int `json:"generations"`
	Evaluations int `json:"evaluations"`
	CacheHits   int `json:"cache_hits"`
	Infeasible  int `json:"infeasible"`
}

// Result is a finished search: the Pareto front (byte-for-byte
// reproducible for a fixed seed and spec) plus run statistics.
type Result struct {
	Algorithm string  `json:"algorithm"`
	Seed      int64   `json:"seed"`
	Front     []Point `json:"front"`
	Stats     Stats   `json:"stats"`
}
