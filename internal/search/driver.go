package search

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// EvalFunc scores one candidate. Implementations must be safe for
// concurrent calls and must honor ctx; the serve layer's implementation
// submits the candidate as an ordinary content-addressed sim job and
// waits for it. Determinism contract: for a fixed candidate the returned
// CacheKey, Request and Objectives must not depend on timing or on other
// in-flight evaluations (Cached may — it is excluded from the front).
type EvalFunc func(ctx context.Context, cand Candidate) (Evaluation, error)

// Update is a per-generation progress snapshot.
type Update struct {
	Generation  int // 1-based, just completed
	Generations int
	Evaluations int // cumulative
	CacheHits   int // cumulative
	FrontSize   int // current non-dominated count over all feasible evals
}

// Driver runs one search to completion.
type Driver struct {
	Spec Spec     // filled and validated
	Eval EvalFunc // required
	// Concurrency bounds in-flight evaluations (default 4). Evaluation
	// results are collected by population index, so concurrency does not
	// perturb the search trajectory.
	Concurrency int
	// Progress, when non-nil, is called after each generation on the
	// driver goroutine.
	Progress func(Update)
}

// record is one evaluated candidate.
type record struct {
	genome Genome
	cand   Candidate
	eval   Evaluation
	gen    int
}

// Run executes the search. The returned front is deterministic for a
// fixed (seed, spec): the seeded RNG runs only on this goroutine,
// parallel evaluations land by index, and every ordering falls back to
// the cache key. Stats is run-dependent (cache warmth) and excluded from
// that contract.
func (d *Driver) Run(ctx context.Context) (*Result, error) {
	if d.Eval == nil {
		return nil, fmt.Errorf("search: Driver.Eval is required")
	}
	switch d.Spec.Algorithm {
	case "nsga2":
		return d.runNSGA2(ctx)
	case "halving":
		return d.runHalving(ctx)
	}
	return nil, fmt.Errorf("search: unknown algorithm %q", d.Spec.Algorithm)
}

func (d *Driver) concurrency() int {
	if d.Concurrency > 0 {
		return d.Concurrency
	}
	return 4
}

// evalAll evaluates a population concurrently, collecting results by
// index. The first evaluation error cancels the rest and fails the
// search (infeasible candidates are not errors — see Extract).
func (d *Driver) evalAll(ctx context.Context, gen, measure int, pop []Genome, st *Stats) ([]*record, error) {
	recs := make([]*record, len(pop))
	cands := make([]Candidate, len(pop))
	for i, g := range pop {
		c, err := d.Spec.decode(g, measure)
		if err != nil {
			return nil, err
		}
		cands[i] = c
	}
	ectx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, d.concurrency())
	for i := range pop {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ectx.Done():
				return
			}
			defer func() { <-sem }()
			ev, err := d.Eval(ectx, cands[i])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel()
				return
			}
			recs[i] = &record{genome: pop[i], cand: cands[i], eval: ev, gen: gen}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	for _, r := range recs {
		st.Evaluations++
		if r.eval.Cached {
			st.CacheHits++
		}
		if r.eval.Infeasible {
			st.Infeasible++
		}
	}
	return recs, nil
}

// rankPop computes NSGA-II (rank, crowding) for a population of records.
// Feasible records are ranked by fast non-dominated sort; infeasible
// ones share a final rank below every feasible front (constraint
// domination) with zero crowding.
func rankPop(recs []*record) (rank []int, crowd []float64) {
	rank = make([]int, len(recs))
	crowd = make([]float64, len(recs))
	var feas []int
	var vecs [][3]float64
	for i, r := range recs {
		if r.eval.Infeasible {
			rank[i] = -1 // placeholder, fixed below
		} else {
			feas = append(feas, i)
			vecs = append(vecs, r.eval.Objectives.vector())
		}
	}
	fronts := nondominatedFronts(vecs)
	for fr, front := range fronts {
		dist := crowdingDistances(front, vecs)
		for _, vi := range front {
			rank[feas[vi]] = fr
			crowd[feas[vi]] = dist[vi]
		}
	}
	for i := range recs {
		if rank[i] == -1 {
			rank[i] = len(fronts)
		}
	}
	return rank, crowd
}

// better is the total order used by tournaments and environmental
// selection: lower rank, then higher crowding, then lower cache key (the
// deterministic tie-break).
func better(i, k int, rank []int, crowd []float64, recs []*record) bool {
	if rank[i] != rank[k] {
		return rank[i] < rank[k]
	}
	if crowd[i] != crowd[k] {
		return crowd[i] > crowd[k]
	}
	return recs[i].eval.CacheKey < recs[k].eval.CacheKey
}

func (d *Driver) runNSGA2(ctx context.Context) (*Result, error) {
	sp := &d.Spec
	rng := rand.New(rand.NewSource(sp.Seed))
	var st Stats
	// archive accumulates every feasible evaluation by cache key, keeping
	// the earliest generation; the final front is drawn from it so points
	// discovered early and bred out later still count.
	archive := map[string]*record{}

	pop := make([]Genome, sp.Population)
	for i := range pop {
		pop[i] = sp.randomGenome(rng.Intn)
	}
	recs, err := d.evalAll(ctx, 0, sp.Measure, pop, &st)
	if err != nil {
		return nil, err
	}
	mergeArchive(archive, recs)
	st.Generations = 1
	d.report(1, archive, &st)

	for gen := 1; gen < sp.Generations; gen++ {
		rank, crowd := rankPop(recs)
		tournament := func() int {
			a, b := rng.Intn(len(recs)), rng.Intn(len(recs))
			if better(a, b, rank, crowd, recs) {
				return a
			}
			return b
		}
		offspring := make([]Genome, sp.Population)
		for i := range offspring {
			p1, p2 := tournament(), tournament()
			child := recs[p1].genome
			if rng.Float64() < sp.CrossoverRate {
				// Uniform crossover: each axis from either parent.
				for a := 0; a < numAxes; a++ {
					if rng.Intn(2) == 1 {
						child[a] = recs[p2].genome[a]
					}
				}
			}
			for a := 0; a < numAxes; a++ {
				if rng.Float64() < sp.MutationRate {
					child[a] = rng.Intn(sp.Space.axisLen(a))
				}
			}
			offspring[i] = child
		}
		offRecs, err := d.evalAll(ctx, gen, sp.Measure, offspring, &st)
		if err != nil {
			return nil, err
		}
		mergeArchive(archive, offRecs)
		// Environmental selection (mu+lambda): parents and offspring
		// compete, deduped by cache key so one configuration cannot crowd
		// the next generation with copies of itself.
		combined := dedupRecords(append(append([]*record{}, recs...), offRecs...))
		crank, ccrowd := rankPop(combined)
		order := make([]int, len(combined))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return better(order[a], order[b], crank, ccrowd, combined)
		})
		n := sp.Population
		if n > len(order) {
			n = len(order)
		}
		next := make([]*record, n)
		for i := 0; i < n; i++ {
			next[i] = combined[order[i]]
		}
		recs = next
		st.Generations = gen + 1
		d.report(gen+1, archive, &st)
	}
	return d.finish(archive, &st), nil
}

// runHalving is the successive-halving fallback: every rung halves the
// surviving population (by NSGA-II rank/crowding) and doubles the
// measured cycles, so the full budget is only spent on promising
// candidates. The front is drawn from the final rung (full-budget
// evaluations only — mixed budgets are not comparable).
func (d *Driver) runHalving(ctx context.Context) (*Result, error) {
	sp := &d.Spec
	rng := rand.New(rand.NewSource(sp.Seed))
	var st Stats

	pop := make([]Genome, sp.Population)
	for i := range pop {
		pop[i] = sp.randomGenome(rng.Intn)
	}
	rungs := sp.Generations
	var recs []*record
	for r := 0; r < rungs; r++ {
		measure := sp.Measure >> (rungs - 1 - r)
		if measure < 1000 {
			measure = 1000
		}
		var err error
		recs, err = d.evalAll(ctx, r, measure, pop, &st)
		if err != nil {
			return nil, err
		}
		recs = dedupRecords(recs)
		st.Generations = r + 1
		final := map[string]*record{}
		mergeArchive(final, recs)
		d.report(r+1, final, &st)
		if r == rungs-1 {
			return d.finish(final, &st), nil
		}
		rank, crowd := rankPop(recs)
		order := make([]int, len(recs))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return better(order[a], order[b], rank, crowd, recs)
		})
		keep := (len(order) + 1) / 2
		pop = pop[:0]
		for i := 0; i < keep; i++ {
			pop = append(pop, recs[order[i]].genome)
		}
	}
	return d.finish(map[string]*record{}, &st), nil
}

// mergeArchive folds feasible records into the archive, keeping the
// earliest-generation record per cache key.
func mergeArchive(archive map[string]*record, recs []*record) {
	for _, r := range recs {
		if r == nil || r.eval.Infeasible {
			continue
		}
		if prev, ok := archive[r.eval.CacheKey]; !ok || r.gen < prev.gen {
			archive[r.eval.CacheKey] = r
		}
	}
}

// dedupRecords drops duplicate cache keys, keeping first occurrence, in
// input order.
func dedupRecords(recs []*record) []*record {
	seen := map[string]bool{}
	out := recs[:0]
	for _, r := range recs {
		if r == nil || seen[r.eval.CacheKey] {
			continue
		}
		seen[r.eval.CacheKey] = true
		out = append(out, r)
	}
	return out
}

// frontOf extracts the non-dominated points of the archive, sorted by
// objective vector (then cache key) for a deterministic rendering.
func frontOf(archive map[string]*record) []Point {
	recs := make([]*record, 0, len(archive))
	for _, r := range archive {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].eval.CacheKey < recs[b].eval.CacheKey })
	vecs := make([][3]float64, len(recs))
	for i, r := range recs {
		vecs[i] = r.eval.Objectives.vector()
	}
	idx := paretoFilter(vecs)
	pts := make([]Point, 0, len(idx))
	for _, i := range idx {
		r := recs[i]
		pts = append(pts, Point{
			Config:     r.cand.Config,
			CacheKey:   r.eval.CacheKey,
			Request:    r.eval.Request,
			Objectives: r.eval.Objectives,
			Generation: r.gen,
		})
	}
	sort.Slice(pts, func(a, b int) bool {
		av, bv := pts[a].Objectives.vector(), pts[b].Objectives.vector()
		for m := range av {
			if av[m] != bv[m] {
				return av[m] < bv[m]
			}
		}
		return pts[a].CacheKey < pts[b].CacheKey
	})
	return pts
}

func (d *Driver) report(gen int, archive map[string]*record, st *Stats) {
	if d.Progress == nil {
		return
	}
	d.Progress(Update{
		Generation:  gen,
		Generations: d.Spec.Generations,
		Evaluations: st.Evaluations,
		CacheHits:   st.CacheHits,
		FrontSize:   len(frontOf(archive)),
	})
}

func (d *Driver) finish(archive map[string]*record, st *Stats) *Result {
	return &Result{
		Algorithm: d.Spec.Algorithm,
		Seed:      d.Spec.Seed,
		Front:     frontOf(archive),
		Stats:     *st,
	}
}
