// Load sweep: the Figure 14 experiment in miniature — latency and NoC
// power across the load range for No_PG, Conv_PG_OPT and NoRD, showing
// the three regions the paper describes (low load: power gating wins and
// NoRD detours; medium: designs converge; saturation: NoRD's ring escape
// saturates slightly earlier).
//
//	go run ./examples/loadsweep
package main

import (
	"fmt"
	"log"

	"nord"
)

func main() {
	rates := []float64{0.02, 0.05, 0.10, 0.20, 0.30, 0.40}
	designs := []nord.Design{nord.NoPG, nord.ConvPGOpt, nord.NoRD}

	fmt.Printf("%8s", "rate")
	for _, d := range designs {
		fmt.Printf(" | %11v lat  pwr", d)
	}
	fmt.Println()
	for _, rate := range rates {
		fmt.Printf("%8.2f", rate)
		for _, d := range designs {
			res, err := nord.RunSynthetic(nord.SynthConfig{
				Design:  d,
				Rate:    rate,
				Warmup:  5_000,
				Measure: 30_000,
				Seed:    7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" | %11.1f %8.1fW", res.AvgPacketLatency, res.AvgPowerW)
		}
		fmt.Println()
	}
	fmt.Println("\nlow load: gated designs burn less power; NoRD's latency penalty is detours,")
	fmt.Println("Conv_PG_OPT's is wakeups. High load: everything converges toward No_PG.")
}
