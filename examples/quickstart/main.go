// Quickstart: simulate a 4x4 mesh under uniform-random traffic with NoRD
// power-gating and print the headline measurements.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nord"
)

func main() {
	// Run the paper's primary configuration (Table 1 defaults): a 4x4
	// mesh of 4-stage wormhole routers at a light uniform-random load.
	res, err := nord.RunSynthetic(nord.SynthConfig{
		Design:  nord.NoRD,
		Rate:    0.05, // flits/node/cycle
		Warmup:  10_000,
		Measure: 50_000,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("NoRD on a 4x4 mesh at 5%% load:\n")
	fmt.Printf("  average packet latency  %.1f cycles\n", res.AvgPacketLatency)
	fmt.Printf("  routers gated off       %.0f%% of the time\n", 100*res.OffFraction)
	fmt.Printf("  router wakeups          %d\n", res.Wakeups)
	fmt.Printf("  NoC power               %.2f W\n", res.AvgPowerW)

	// Compare with the no-power-gating baseline.
	base, err := nord.RunSynthetic(nord.SynthConfig{
		Design: nord.NoPG, Rate: 0.05, Warmup: 10_000, Measure: 50_000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nversus No_PG: %.0f%% of the baseline's router static energy, %+.0f%% latency\n",
		100*res.Energy.RouterStatic/base.Energy.RouterStatic,
		100*(res.AvgPacketLatency/base.AvgPacketLatency-1))
}
