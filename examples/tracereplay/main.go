// Trace-driven comparison: record the coherence traffic of one
// full-system workload once, then replay the identical packet stream
// across all four power-gating designs — the standard trace methodology
// for isolating the network's contribution.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nord"
)

func main() {
	// 1. Record: one full-system run (cores + caches + directory) on the
	// No_PG baseline produces the packet trace.
	tr, rec, err := nord.RecordWorkloadTrace(nord.WorkloadConfig{
		Design:    nord.NoPG,
		Benchmark: "fluidanimate",
		Scale:     0.1,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "fluidanimate.trace.gz")
	if err := tr.Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d packets over %d cycles -> %s\n\n", len(tr.Events), rec.ExecTime, path)

	// 2. Replay: the same traffic hits each design; only the network
	// differs, so the comparison is apples to apples.
	fmt.Printf("%-13s %10s %10s %10s %10s\n", "design", "latency", "wakeups", "off%", "power(W)")
	for _, d := range nord.Designs() {
		res, err := nord.ReplayTrace(nord.TraceConfig{Design: d, Path: path}, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s %10.1f %10d %9.0f%% %10.2f\n",
			d, res.AvgPacketLatency, res.Wakeups, 100*res.OffFraction, res.AvgPowerW)
	}
	fmt.Println("\nNoRD rides the bypass ring instead of waking routers: an order of")
	fmt.Println("magnitude fewer wakeups at lower latency than conventional gating.")
}
