// PARSEC-like comparison: run full-system workloads (cores, caches, MSI
// directory coherence over the NoC) under all four power-gating designs
// and print the paper's headline metrics per design (the Figures 8-12
// story at a reduced instruction count).
//
//	go run ./examples/parsec                    # three representative apps
//	go run ./examples/parsec blackscholes x264  # choose your own
package main

import (
	"fmt"
	"log"
	"os"

	"nord"
)

func main() {
	benchmarks := []string{"blackscholes", "ferret", "x264"}
	if len(os.Args) > 1 {
		benchmarks = os.Args[1:]
	}

	for _, b := range benchmarks {
		fmt.Printf("== %s ==\n", b)
		fmt.Printf("%-13s %10s %10s %10s %12s %10s\n",
			"design", "exec", "latency", "wakeups", "static(uJ)", "off%")
		var base nord.Result
		for _, d := range nord.Designs() {
			res, err := nord.RunWorkload(nord.WorkloadConfig{
				Design:    d,
				Benchmark: b,
				Scale:     0.1, // 6k instructions per core for a quick demo
				Seed:      42,
			})
			if err != nil {
				log.Fatal(err)
			}
			if d == nord.NoPG {
				base = res
			}
			fmt.Printf("%-13s %10d %10.1f %10d %12.3f %9.0f%%\n",
				d, res.ExecTime, res.AvgPacketLatency, res.Wakeups,
				res.Energy.RouterStatic*1e6, 100*res.OffFraction)
		}
		fmt.Printf("(No_PG is the performance lower bound: exec %d, latency %.1f)\n\n",
			base.ExecTime, base.AvgPacketLatency)
	}
}
