// Planner: the Section 4.4 asymmetric-threshold workflow — compute the
// Figure 6 trade-off with the offline Floyd-Warshall planner, pick the
// performance-centric router class, and show its effect on a NoRD run.
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"log"

	"nord"
)

func main() {
	// The planner picks the routers whose being powered on best shortens
	// average node-to-node distance (the Figure 6 knee).
	set, err := nord.PerfCentricSet(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("performance-centric routers (4x4): %v\n", set)
	fmt.Println("these wake at threshold 1 (early) and sleep late; the rest at threshold 3")

	run := func(noPerf bool) nord.Result {
		res, err := nord.RunSynthetic(nord.SynthConfig{
			Design:        nord.NoRD,
			Rate:          0.08,
			Warmup:        5_000,
			Measure:       40_000,
			Seed:          21,
			NoPerfCentric: noPerf,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	asym := run(false)
	sym := run(true)
	fmt.Printf("\n%-28s %10s %10s %12s\n", "", "latency", "wakeups", "static (uJ)")
	fmt.Printf("%-28s %10.1f %10d %12.3f\n", "asymmetric thresholds", asym.AvgPacketLatency, asym.Wakeups, asym.Energy.RouterStatic*1e6)
	fmt.Printf("%-28s %10.1f %10d %12.3f\n", "symmetric (all power-class)", sym.AvgPacketLatency, sym.Wakeups, sym.Energy.RouterStatic*1e6)
	fmt.Println("\nasymmetric thresholds trade a little static energy for lower latency")
	fmt.Println("by keeping a small, well-placed router subset awake (Section 4.4).")
}
