package nord_test

import (
	"fmt"

	"nord"
)

// The smallest possible NoRD simulation: a 4x4 mesh under light uniform
// random traffic, reporting how much of the time routers slept.
func ExampleRunSynthetic() {
	res, err := nord.RunSynthetic(nord.SynthConfig{
		Design:  nord.NoRD,
		Rate:    0.02,
		Warmup:  2_000,
		Measure: 10_000,
		Seed:    1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Design, "delivered", res.PacketsDelivered > 0, "gated some routers:", res.OffFraction > 0.2)
	// Output: NoRD delivered true gated some routers: true
}

// The offline planner picks the performance-centric routers for the
// asymmetric wakeup thresholds of Section 4.4.
func ExamplePerfCentricSet() {
	set, err := nord.PerfCentricSet(4, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println(set)
	// Output: [2 4 5 6 10 14]
}

// The power model reproduces the paper's Figure 1(a) anchors exactly.
func ExampleNewPowerModel() {
	m, err := nord.NewPowerModel(nord.Tech{NodeNM: 45, Voltage: 1.1, FreqGHz: 3.0})
	if err != nil {
		panic(err)
	}
	fmt.Printf("static share at PARSEC-average load: %.1f%%\n", 100*m.StaticShareAtReferenceLoad())
	// Output: static share at PARSEC-average load: 35.4%
}

// Full-system runs execute a PARSEC-like workload on the coherence
// substrate and report execution time.
func ExampleRunWorkload() {
	res, err := nord.RunWorkload(nord.WorkloadConfig{
		Design:    nord.ConvPGOpt,
		Benchmark: "swaptions",
		Scale:     0.02, // tiny quota for a fast example
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("finished:", res.ExecTime > 0, "woke routers:", res.Wakeups > 0)
	// Output: finished: true woke routers: true
}
