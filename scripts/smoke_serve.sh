#!/bin/sh
# End-to-end smoke test for nordserved: boot the service on an ephemeral
# port, submit a small 4x4 synthetic job, poll it to completion, resubmit
# the identical request and assert a cache hit, sanity-check /metrics,
# then drain the server with SIGTERM. Needs only sh + curl + grep/sed.
set -eu

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
LOG="$WORKDIR/nordserved.log"
BIN="$WORKDIR/nordserved"
SRV_PID=""

cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill -TERM "$SRV_PID" 2>/dev/null || true
        wait "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "SMOKE FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

echo "== building nordserved"
go build -o "$BIN" ./cmd/nordserved

echo "== booting on an ephemeral port"
"$BIN" -addr 127.0.0.1:0 -workers 2 -cache-dir "$WORKDIR/cache" >"$LOG" 2>&1 &
SRV_PID=$!

ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^nordserved listening on //p' "$LOG")
    [ -n "$ADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
done
[ -n "$ADDR" ] && echo "   listening on $ADDR" || fail "no listen line in log"

BASE="http://$ADDR"
JOB='{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":1000,"measure":20000,"seed":7}}'

echo "== healthz"
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || fail "healthz not ok"

echo "== submitting a 4x4 synthetic job"
SUB=$(curl -fsS "$BASE/v1/jobs" -d "$JOB")
echo "   $SUB"
ID=$(echo "$SUB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "no job id in $SUB"
echo "$SUB" | grep -q '"cached":false' || fail "first submission claimed a cache hit"

echo "== polling $ID to completion"
STATE=""
for _ in $(seq 1 100); do
    STATUS=$(curl -fsS "$BASE/v1/jobs/$ID")
    STATE=$(echo "$STATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$STATE" in
        done) break ;;
        failed|canceled) fail "job ended in state $STATE: $STATUS" ;;
    esac
    sleep 0.2
done
[ "$STATE" = done ] || fail "job stuck in state '$STATE'"
echo "$STATUS" | grep -q '"avg_packet_latency"\|"result"' || fail "done job carries no result: $STATUS"

echo "== resubmitting the identical job (must be a cache hit)"
RESUB=$(curl -fsS "$BASE/v1/jobs" -d "$JOB")
echo "   $RESUB"
echo "$RESUB" | grep -q '"cached":true' || fail "resubmission missed the cache: $RESUB"

echo "== checking /metrics"
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^nord_sims_executed_total 1$' || fail "expected exactly one executed sim"
echo "$METRICS" | grep -q '^nord_cache_hits_total 1$' || fail "expected one cache hit"
echo "$METRICS" | grep -q '^nord_cache_misses_total 1$' || fail "expected one cache miss"
echo "$METRICS" | grep -q '^nord_jobs_total{state="done"} 1$' || fail "expected one done job"

echo "== submitting a traced job and streaming /trace"
TRACED_JOB='{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":1000,"measure":20000,"seed":7,"trace_events":true}}'
TSUB=$(curl -fsS "$BASE/v1/jobs" -d "$TRACED_JOB")
echo "   $TSUB"
TID=$(echo "$TSUB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$TID" ] || fail "no traced job id in $TSUB"
echo "$TSUB" | grep -q '"cached":false' || fail "traced job must not hit the untraced cache: $TSUB"
# The stream blocks until the job finishes, so this also acts as the poll.
TRACE=$(curl -fsS --max-time 60 "$BASE/v1/jobs/$TID/trace")
echo "$TRACE" | grep -q '"type":"event"' || fail "trace stream has no event lines"
echo "$TRACE" | grep -q '"kind":"gate_off"' || fail "trace stream has no gate_off events"
echo "$TRACE" | grep -q '"kind":"wake_start"' || fail "trace stream has no wake_start events"
END=$(echo "$TRACE" | grep '"type":"end"')
[ -n "$END" ] || fail "trace stream has no end line"
echo "   $END"
echo "$END" | grep -q '"done":true' || fail "trace end line not terminal: $END"
echo "$END" | grep -q '"state":"done"' || fail "traced job did not finish: $END"
# An untraced job must refuse the trace stream with guidance.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs/$ID/trace")
[ "$CODE" = 409 ] || fail "untraced job trace returned $CODE, want 409"

echo "== checking per-design metrics"
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^nord_sim_wakeups_total{design="NoRD"} [1-9]' || fail "no NoRD wakeups counted"
echo "$METRICS" | grep -q '^nord_sim_detours_total{design="No_PG"} 0$' || fail "missing zero-valued detour series"

echo "== draining with SIGTERM"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "server exited non-zero on drain"
SRV_PID=""

echo "SMOKE PASS"
